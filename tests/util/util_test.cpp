#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "gapsched/parallel/thread_pool.hpp"
#include "gapsched/util/prng.hpp"
#include "gapsched/util/stopwatch.hpp"
#include "gapsched/util/table.hpp"

namespace gapsched {
namespace {

TEST(Prng, DeterministicForSameSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
  }
}

TEST(Prng, RespectsBounds) {
  Prng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Prng, IndexCoversRange) {
  Prng rng(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.index(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Prng, ForkDecorrelates) {
  Prng parent(1);
  Prng c1 = parent.fork();
  Prng c2 = parent.fork();
  EXPECT_NE(c1.seed(), c2.seed());
}

TEST(Prng, ShufflePermutes) {
  Prng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Stopwatch, MeasuresNonNegative) {
  Stopwatch sw;
  EXPECT_GE(sw.seconds(), 0.0);
  sw.reset();
  EXPECT_GE(sw.millis(), 0.0);
}

TEST(Table, PrintsAlignedRows) {
  Table t({"name", "value"});
  t.row().add("alpha").add(std::int64_t{12});
  t.row().add("b").add(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().add(1).add(2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(pool, 64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

}  // namespace
}  // namespace gapsched

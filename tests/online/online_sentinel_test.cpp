// Near-infeasible and degenerate-input coverage for the online solvers,
// mirroring dp/dp_sentinel_test.cpp: empty instances, everyone pinned to
// one instant, saturated windows that flip infeasible one job past
// capacity, and tight random combs cross-checked against the offline
// ground truth for the feasibility verdict.

#include <gtest/gtest.h>

#include "gapsched/exact/brute_force.hpp"
#include "gapsched/online/online_edf.hpp"
#include "gapsched/online/online_powerdown.hpp"
#include "gapsched/oracle/oracle.hpp"
#include "gapsched/util/prng.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(OnlineSentinel, EmptyInstances) {
  Instance inst;
  const OnlineResult edf = online_edf(inst);
  EXPECT_TRUE(edf.feasible);
  EXPECT_EQ(edf.transitions, 0);
  EXPECT_EQ(edf.schedule.size(), 0u);

  const OnlinePowerdownResult pd = online_powerdown(inst, 2.0);
  EXPECT_TRUE(pd.feasible);
  EXPECT_DOUBLE_EQ(pd.power, 0.0);
  EXPECT_EQ(pd.transitions, 0);
}

TEST(OnlineSentinel, OverloadedPointIsCleanlyInfeasible) {
  for (int n = 2; n <= 6; ++n) {
    Instance inst;
    inst.processors = 1;
    for (int j = 0; j < n; ++j) {
      inst.jobs.push_back(Job{TimeSet::window(5, 5)});
    }
    EXPECT_FALSE(online_edf(inst).feasible) << n;
    EXPECT_FALSE(online_powerdown(inst, 2.0).feasible) << n;
    EXPECT_FALSE(online_powerdown(inst, 0.0, 0.0).feasible) << n;
  }
}

TEST(OnlineSentinel, SaturatedWindowFlipsAtCapacity) {
  const Time h = 5;
  Instance inst;
  inst.processors = 1;
  for (Time cap = 0; cap < h; ++cap) {
    inst.jobs.push_back(Job{TimeSet::window(0, h - 1)});
  }
  // Exactly full: EDF fills [0, h) back to back; one busy run.
  const OnlineResult full = online_edf(inst);
  ASSERT_TRUE(full.feasible);
  EXPECT_EQ(full.transitions, 1);
  const oracle::ScheduleAudit audit = oracle::audit_schedule(inst, full.schedule);
  EXPECT_TRUE(audit.valid) << audit.violation_summary();
  EXPECT_EQ(audit.transitions, full.transitions);

  const OnlinePowerdownResult pd_full = online_powerdown(inst, 2.0);
  ASSERT_TRUE(pd_full.feasible);
  EXPECT_EQ(pd_full.transitions, 1);
  EXPECT_DOUBLE_EQ(pd_full.power, static_cast<double>(h) + 2.0);

  // One job past capacity: both must flag infeasibility, not crash.
  inst.jobs.push_back(Job{TimeSet::window(0, h - 1)});
  EXPECT_FALSE(online_edf(inst).feasible);
  EXPECT_FALSE(online_powerdown(inst, 2.0).feasible);
}

TEST(OnlineSentinel, SingleUnitWindows) {
  // A single pinned job, and two pinned jobs with a gap: the smallest
  // non-empty cases on both sides of a wake-up decision.
  Instance one = Instance::one_interval({{7, 7}});
  const OnlineResult r1 = online_edf(one);
  ASSERT_TRUE(r1.feasible);
  EXPECT_EQ(r1.transitions, 1);
  EXPECT_EQ(r1.schedule.at(0)->time, 7);

  Instance two = Instance::one_interval({{0, 0}, {2, 2}});
  const OnlineResult r2 = online_edf(two);
  ASSERT_TRUE(r2.feasible);
  EXPECT_EQ(r2.transitions, 2);
  // Threshold > gap bridges; threshold 0 sleeps immediately.
  const OnlinePowerdownResult bridged = online_powerdown(two, 5.0);
  ASSERT_TRUE(bridged.feasible);
  EXPECT_EQ(bridged.transitions, 1);
  const OnlinePowerdownResult slept = online_powerdown(two, 5.0, 0.0);
  ASSERT_TRUE(slept.feasible);
  EXPECT_EQ(slept.transitions, 2);
}

TEST(OnlineSentinel, TightCombsAgreeWithOfflineFeasibility) {
  // EDF is feasibility-optimal for unit jobs on one processor, so its
  // verdict must match the exhaustive reference on every tight draw —
  // and when feasible, its schedule must survive the oracle.
  for (std::uint64_t site = 0; site < 16; ++site) {
    const std::uint64_t seed = testing::seed_for(2000 + site);
    GAPSCHED_TRACE_SEED(seed);
    Prng rng(seed);
    Instance inst;
    inst.processors = 1;
    const std::size_t n = 7;
    for (std::size_t j = 0; j < n; ++j) {
      const Time a = static_cast<Time>(rng.index(n + 2));
      const Time d = a + static_cast<Time>(rng.index(2));
      inst.jobs.push_back(Job{TimeSet::window(a, d)});
    }
    const ExactGapResult ref = brute_force_min_transitions(inst);
    const OnlineResult edf = online_edf(inst);
    EXPECT_EQ(edf.feasible, ref.feasible);
    const OnlinePowerdownResult pd = online_powerdown(inst, 1.5);
    EXPECT_EQ(pd.feasible, ref.feasible);
    if (edf.feasible) {
      const oracle::ScheduleAudit audit =
          oracle::audit_schedule(inst, edf.schedule);
      EXPECT_TRUE(audit.valid) << audit.violation_summary();
      EXPECT_EQ(audit.transitions, edf.transitions);
      // Online can never beat offline OPT.
      EXPECT_GE(edf.transitions, ref.transitions);
    }
    if (pd.feasible) {
      const oracle::ScheduleAudit audit =
          oracle::audit_schedule(inst, pd.schedule);
      ASSERT_TRUE(audit.valid) << audit.violation_summary();
      EXPECT_GE(pd.power, oracle::min_power(audit, 1.5) - 1e-9);
    }
  }
}

}  // namespace
}  // namespace gapsched

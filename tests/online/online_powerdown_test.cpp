#include "gapsched/online/online_powerdown.hpp"

#include <gtest/gtest.h>

#include "gapsched/dp/power_dp.hpp"
#include "gapsched/gen/generators.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(OnlinePowerdown, EmptyInstance) {
  Instance inst;
  OnlinePowerdownResult r = online_powerdown(inst, 2.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 0.0);
}

TEST(OnlinePowerdown, SingleSpanPaysOneWake) {
  Instance inst = Instance::one_interval({{0, 5}, {0, 5}});
  OnlinePowerdownResult r = online_powerdown(inst, 3.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
  EXPECT_DOUBLE_EQ(r.power, 2.0 + 3.0);
}

TEST(OnlinePowerdown, ShortGapIsBridged) {
  // EDF runs at 0 and 4; idle 3 <= threshold alpha=5 -> bridged.
  Instance inst = Instance::one_interval({{0, 0}, {4, 4}});
  OnlinePowerdownResult r = online_powerdown(inst, 5.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
  EXPECT_DOUBLE_EQ(r.power, 2.0 + 5.0 + 3.0);
}

TEST(OnlinePowerdown, LongGapSleepsAfterThreshold) {
  Instance inst = Instance::one_interval({{0, 0}, {20, 20}});
  const double alpha = 4.0;
  OnlinePowerdownResult r = online_powerdown(inst, alpha);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 2);
  // 2 exec + initial wake + lingering alpha + re-wake alpha.
  EXPECT_DOUBLE_EQ(r.power, 2.0 + alpha + alpha + alpha);
}

TEST(OnlinePowerdown, CustomThreshold) {
  Instance inst = Instance::one_interval({{0, 0}, {20, 20}});
  // Threshold 0: sleep immediately; no lingering cost.
  OnlinePowerdownResult r = online_powerdown(inst, 4.0, 0.0);
  EXPECT_DOUBLE_EQ(r.power, 2.0 + 4.0 + 0.0 + 4.0);
}

TEST(OnlinePowerdown, InfeasiblePropagates) {
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}});
  EXPECT_FALSE(online_powerdown(inst, 1.0).feasible);
}

// Per-idle-period 2-competitiveness of the threshold policy on top of the
// EDF schedule: online power <= 2 * optimal bridging of the SAME schedule
// plus the shared execution cost.
class ThresholdCompetitive : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdCompetitive, WithinTwiceSameScheduleOptimum) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 163 + 3);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst = gen_uniform_one_interval(rng, 8, 20, 5, 1);
  const double alpha = 0.5 + static_cast<double>(rng.index(12));
  OnlinePowerdownResult r = online_powerdown(inst, alpha);
  if (!r.feasible) return;
  const double same_schedule_opt =
      r.schedule.profile().optimal_power(alpha);
  EXPECT_GE(r.power + 1e-9, same_schedule_opt);
  EXPECT_LE(r.power, 2.0 * same_schedule_opt + 1e-9);
}

TEST_P(ThresholdCompetitive, NeverBelowOfflineOptimum) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 167 + 5);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst = gen_feasible_one_interval(rng, 7, 14, 3, 1);
  const double alpha = 1.0 + static_cast<double>(rng.index(6));
  OnlinePowerdownResult online = online_powerdown(inst, alpha);
  PowerDpResult offline = solve_power_dp(inst, alpha);
  ASSERT_TRUE(online.feasible);
  ASSERT_TRUE(offline.feasible);
  EXPECT_GE(online.power + 1e-9, offline.power);
}

INSTANTIATE_TEST_SUITE_P(Random, ThresholdCompetitive, ::testing::Range(0, 30));

}  // namespace
}  // namespace gapsched

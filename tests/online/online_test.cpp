#include "gapsched/online/online_edf.hpp"

#include <gtest/gtest.h>

#include "gapsched/baptiste/baptiste.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(OnlineEdf, EmptyInstance) {
  Instance inst;
  OnlineResult r = online_edf(inst);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 0);
}

TEST(OnlineEdf, RunsImmediately) {
  Instance inst = Instance::one_interval({{0, 10}, {0, 10}});
  OnlineResult r = online_edf(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.at(0)->time + r.schedule.at(1)->time, 1);  // times 0,1
  EXPECT_EQ(r.transitions, 1);
}

TEST(OnlineEdf, EarliestDeadlinePriority) {
  // Tight job released later must preempt queue order.
  Instance inst = Instance::one_interval({{0, 10}, {1, 1}});
  OnlineResult r = online_edf(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.at(1)->time, 1);
}

TEST(OnlineEdf, DetectsInfeasible) {
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}});
  EXPECT_FALSE(online_edf(inst).feasible);
}

TEST(OnlineEdf, SleepsThroughDeadTime) {
  Instance inst = Instance::one_interval({{0, 0}, {100, 100}});
  OnlineResult r = online_edf(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 2);
}

TEST(OnlineEdf, ScheduleIsValid) {
  const std::uint64_t seed = testing::seed_for(99);
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  for (int it = 0; it < 20; ++it) {
    Instance inst = gen_uniform_one_interval(rng, 8, 12, 4, 1);
    OnlineResult r = online_edf(inst);
    EXPECT_EQ(r.feasible, is_feasible(inst)) << it;
    if (r.feasible) {
      EXPECT_EQ(r.schedule.validate(inst), "") << it;
    }
  }
}

// The paper's Omega(n) lower bound family: offline packs everything into
// O(1) spans; the obligatory online strategy burns Theta(n) spans.
class AdversarialFamily : public ::testing::TestWithParam<int> {};

TEST_P(AdversarialFamily, OnlinePaysLinearly) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  Instance inst = gen_online_adversarial(n);
  OnlineResult online = online_edf(inst);
  ASSERT_TRUE(online.feasible);
  BaptisteResult offline = solve_baptiste(inst);
  ASSERT_TRUE(offline.feasible);
  // Offline: loose jobs hide inside/beside the tight comb: O(1) extra spans.
  EXPECT_LE(offline.spans, static_cast<std::int64_t>(n) / 2 + 2);
  // Online: the n loose jobs run immediately as one span; every tight job
  // then adds its own span: Theta(n).
  EXPECT_GE(online.transitions, static_cast<std::int64_t>(n));
  EXPECT_GT(online.transitions, 2 * offline.spans);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AdversarialFamily,
                         ::testing::Values(4, 6, 8, 10));

}  // namespace
}  // namespace gapsched

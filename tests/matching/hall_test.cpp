#include "gapsched/matching/hall.hpp"

#include <gtest/gtest.h>

#include "gapsched/gen/generators.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(Hall, FeasibleHasNoCertificate) {
  Instance inst = Instance::one_interval({{0, 3}, {0, 3}});
  EXPECT_FALSE(hall_certificate(inst).has_value());
}

TEST(Hall, TwoJobsOneSlot) {
  Instance inst = Instance::one_interval({{5, 5}, {5, 5}});
  auto v = hall_certificate(inst);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->jobs.size(), 2u);
  EXPECT_EQ(v->times, (std::vector<Time>{5}));
  EXPECT_TRUE(is_valid_violation(inst, *v));
}

TEST(Hall, WindowOverflow) {
  // Four jobs squeezed into a 3-slot window.
  Instance inst = Instance::one_interval({{0, 2}, {0, 2}, {0, 2}, {0, 2}});
  auto v = hall_certificate(inst);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(is_valid_violation(inst, *v));
  EXPECT_GE(v->jobs.size(), 4u);
  EXPECT_LE(v->times.size(), 3u);
}

TEST(Hall, RespectsProcessors) {
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}}, 2);
  EXPECT_FALSE(hall_certificate(inst).has_value());
  Instance tight = Instance::one_interval({{0, 0}, {0, 0}, {0, 0}}, 2);
  auto v = hall_certificate(tight);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(is_valid_violation(tight, *v));
}

TEST(Hall, MultiIntervalViolator) {
  // Three jobs sharing the same two isolated times.
  Instance inst;
  for (int j = 0; j < 3; ++j) {
    inst.jobs.push_back(Job{TimeSet({{0, 0}, {10, 10}})});
  }
  auto v = hall_certificate(inst);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(is_valid_violation(inst, *v));
}

TEST(Hall, RejectsBogusViolation) {
  Instance inst = Instance::one_interval({{0, 3}, {0, 3}});
  HallViolation bogus;
  bogus.jobs = {0, 1};
  bogus.times = {0};  // jobs can escape to 1..3
  EXPECT_FALSE(is_valid_violation(inst, bogus));
}

// Certificate extraction agrees with the feasibility oracle and always
// validates, across random families.
class HallProperty : public ::testing::TestWithParam<int> {};

TEST_P(HallProperty, CertificateIffInfeasible) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 239 + 5);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  const int p = 1 + static_cast<int>(rng.index(2));
  Instance inst = (GetParam() % 2 == 0)
                      ? gen_uniform_one_interval(rng, 9, 9, 3, p)
                      : gen_unit_points(rng, 8, 12, 2, p);
  const bool feasible = is_feasible(inst);
  auto v = hall_certificate(inst);
  EXPECT_EQ(v.has_value(), !feasible);
  if (v.has_value()) {
    EXPECT_TRUE(is_valid_violation(inst, *v)) << "param " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Random, HallProperty, ::testing::Range(0, 40));

}  // namespace
}  // namespace gapsched

#include "gapsched/matching/bipartite.hpp"
#include "gapsched/matching/hopcroft_karp.hpp"

#include <gtest/gtest.h>

#include "gapsched/util/prng.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(Kuhn, PerfectMatchingOnSquare) {
  Bipartite g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  KuhnMatcher m(g);
  EXPECT_EQ(m.solve(), 2u);
  EXPECT_NE(m.mate_of_left(0), m.mate_of_left(1));
}

TEST(Kuhn, ReportsDeficiency) {
  // Two left vertices share one right vertex.
  Bipartite g(2, 1);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  KuhnMatcher m(g);
  EXPECT_EQ(m.solve(), 1u);
}

TEST(Kuhn, SeedIsRespected) {
  Bipartite g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  KuhnMatcher m(g);
  ASSERT_TRUE(m.seed(0, 0));
  EXPECT_EQ(m.solve(), 2u);
  // Seeded jobs stay matched; job 1 must have displaced 0 to right 1? No:
  // augmenting may reroute 0 to 1 but 0 remains matched.
  EXPECT_NE(m.mate_of_left(0), KuhnMatcher::npos);
  EXPECT_NE(m.mate_of_left(1), KuhnMatcher::npos);
}

TEST(Kuhn, SeedConflictRejected) {
  Bipartite g(2, 1);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  KuhnMatcher m(g);
  ASSERT_TRUE(m.seed(0, 0));
  EXPECT_FALSE(m.seed(1, 0));
}

TEST(HopcroftKarp, MatchesKnownValue) {
  Bipartite g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  g.add_edge(1, 1);
  g.add_edge(2, 1);
  EXPECT_EQ(hopcroft_karp(g).cardinality, 2u);
}

TEST(HopcroftKarp, EmptyGraph) {
  Bipartite g(0, 0);
  EXPECT_EQ(hopcroft_karp(g).cardinality, 0u);
}

TEST(HopcroftKarp, MatchingIsConsistent) {
  Bipartite g(4, 4);
  for (std::size_t l = 0; l < 4; ++l) {
    for (std::size_t r = 0; r < 4; ++r) {
      if ((l + r) % 2 == 0) g.add_edge(l, r);
    }
  }
  MatchingResult res = hopcroft_karp(g);
  for (std::size_t l = 0; l < 4; ++l) {
    const std::size_t r = res.mate_of_left[l];
    if (r != KuhnMatcher::npos) {
      EXPECT_EQ(res.mate_of_right[r], l);
    }
  }
}

// Property: Kuhn and Hopcroft-Karp agree on random graphs.
class MatcherAgreement : public ::testing::TestWithParam<int> {};

TEST_P(MatcherAgreement, SameCardinality) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  const std::size_t nl = 1 + rng.index(12);
  const std::size_t nr = 1 + rng.index(12);
  Bipartite g(nl, nr);
  for (std::size_t l = 0; l < nl; ++l) {
    for (std::size_t r = 0; r < nr; ++r) {
      if (rng.chance(0.3)) g.add_edge(l, r);
    }
  }
  KuhnMatcher kuhn(g);
  EXPECT_EQ(kuhn.solve(), hopcroft_karp(g).cardinality);
}

INSTANTIATE_TEST_SUITE_P(Random, MatcherAgreement, ::testing::Range(0, 60));

}  // namespace
}  // namespace gapsched

#include "gapsched/matching/feasibility.hpp"

#include <gtest/gtest.h>

#include "gapsched/gen/generators.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(Feasibility, SimpleFeasible) {
  Instance inst = Instance::one_interval({{0, 1}, {0, 1}});
  EXPECT_TRUE(is_feasible(inst));
}

TEST(Feasibility, SimpleInfeasible) {
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}});
  EXPECT_FALSE(is_feasible(inst));
}

TEST(Feasibility, MoreProcessorsMakeItFeasible) {
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}}, 2);
  EXPECT_TRUE(is_feasible(inst));
}

TEST(Feasibility, ExcludingRegionFlipsFeasibility) {
  Instance inst = Instance::one_interval({{0, 2}, {0, 2}, {0, 2}});
  EXPECT_TRUE(is_feasible(inst));
  EXPECT_FALSE(is_feasible_excluding(inst, TimeSet({{1, 1}})));
  Instance loose = Instance::one_interval({{0, 3}, {0, 3}, {0, 3}});
  EXPECT_TRUE(is_feasible_excluding(loose, TimeSet({{1, 1}})));
}

TEST(Feasibility, AnyFeasibleScheduleIsValid) {
  Instance inst = Instance::one_interval({{0, 1}, {0, 1}, {1, 3}}, 2);
  auto s = any_feasible_schedule(inst);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->validate(inst), "");
}

TEST(Feasibility, AnyFeasibleScheduleOnInfeasible) {
  Instance inst = Instance::one_interval({{2, 2}, {2, 2}});
  EXPECT_FALSE(any_feasible_schedule(inst).has_value());
}

TEST(ExtendSchedule, KeepsExistingPlacements) {
  Instance inst = Instance::one_interval({{0, 5}, {0, 5}, {3, 4}});
  Schedule partial(3);
  partial.place(0, 5);
  auto full = extend_schedule(inst, partial);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->validate(inst), "");
  EXPECT_EQ(full->at(0)->time, 5);
}

TEST(ExtendSchedule, InfeasibleReturnsNull) {
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}});
  EXPECT_FALSE(extend_schedule(inst, Schedule(2)).has_value());
}

TEST(ExtendSchedule, RejectsOverfullSeed) {
  Instance inst = Instance::one_interval({{0, 3}, {0, 3}});
  Schedule partial(2);
  partial.place(0, 1);
  partial.place(1, 1);  // two jobs at one time, p = 1
  EXPECT_FALSE(extend_schedule(inst, partial).has_value());
}

// Lemma 3 property: extending a partial schedule of n' jobs with g spans
// yields at most g + (n - n') spans (each augmenting path adds exactly one
// used time slot).
class Lemma3Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma3Property, SpanGrowthBounded) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 97 + 3);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst = gen_feasible_one_interval(rng, 10, 20, 3);
  ASSERT_TRUE(is_feasible(inst));

  // Build a partial schedule from any feasible schedule by dropping jobs.
  auto base = any_feasible_schedule(inst);
  ASSERT_TRUE(base.has_value());
  Schedule partial = *base;
  std::size_t dropped = 0;
  for (std::size_t j = 0; j < inst.n(); ++j) {
    if (rng.chance(0.4)) {
      partial.unschedule(j);
      ++dropped;
    }
  }
  const std::int64_t g_before = partial.profile().spans();
  auto full = extend_schedule(inst, partial);
  ASSERT_TRUE(full.has_value());
  ASSERT_EQ(full->validate(inst), "");
  EXPECT_LE(full->profile().spans(),
            g_before + static_cast<std::int64_t>(dropped));
  // Previously used times remain used.
  for (Time t : partial.times()) {
    const auto used = full->times();
    EXPECT_TRUE(std::binary_search(used.begin(), used.end(), t));
  }
}

INSTANTIATE_TEST_SUITE_P(Random, Lemma3Property, ::testing::Range(0, 40));

}  // namespace
}  // namespace gapsched

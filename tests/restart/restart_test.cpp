#include "gapsched/restart/restart_greedy.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gapsched/gen/generators.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(RestartGreedy, EmptyInstance) {
  Instance inst;
  RestartResult r = restart_greedy(inst, 3);
  EXPECT_EQ(r.scheduled, 0u);
}

TEST(RestartGreedy, ZeroBudgetSchedulesNothing) {
  Instance inst = Instance::one_interval({{0, 5}, {0, 5}});
  RestartResult r = restart_greedy(inst, 0);
  EXPECT_EQ(r.scheduled, 0u);
}

TEST(RestartGreedy, OneIntervalTakesTheLongestFillable) {
  // Cluster of 3 packable jobs vs a lone job far away.
  Instance inst = Instance::one_interval({{0, 2}, {0, 2}, {0, 2}, {50, 50}});
  RestartResult r = restart_greedy(inst, 1);
  EXPECT_EQ(r.scheduled, 3u);
  ASSERT_EQ(r.working_intervals.size(), 1u);
  EXPECT_EQ(r.working_intervals[0].length(), 3);
}

TEST(RestartGreedy, SecondIntervalPicksTheRemainder) {
  Instance inst = Instance::one_interval({{0, 2}, {0, 2}, {0, 2}, {50, 50}});
  RestartResult r = restart_greedy(inst, 2);
  EXPECT_EQ(r.scheduled, 4u);
  EXPECT_EQ(r.working_intervals.size(), 2u);
}

TEST(RestartGreedy, SpansBoundRespected) {
  Prng rng(606);
  Instance inst = gen_multi_interval(rng, 12, 30, 2, 3);
  for (std::size_t k : {1u, 2u, 3u, 5u}) {
    RestartResult r = restart_greedy(inst, k);
    EXPECT_LE(r.working_intervals.size(), k);
    EXPECT_EQ(r.schedule.validate(inst, /*require_complete=*/false), "");
    // The committed intervals are exactly the schedule's spans.
    EXPECT_EQ(r.schedule.profile().spans(),
              static_cast<std::int64_t>(r.working_intervals.size()));
    EXPECT_EQ(r.schedule.scheduled_count(), r.scheduled);
  }
}

TEST(RestartGreedy, ThroughputMonotoneInBudget) {
  Prng rng(707);
  Instance inst = gen_multi_interval(rng, 10, 26, 2, 2);
  std::size_t prev = 0;
  for (std::size_t k = 0; k <= 6; ++k) {
    const std::size_t got = restart_greedy(inst, k).scheduled;
    EXPECT_GE(got, prev);
    prev = got;
  }
}

TEST(RestartExact, MatchesHandExample) {
  Instance inst = Instance::one_interval({{0, 2}, {0, 2}, {0, 2}, {50, 50}});
  EXPECT_EQ(restart_exact_max_jobs(inst, 1), 3u);
  EXPECT_EQ(restart_exact_max_jobs(inst, 2), 4u);
}

// Theorem 11 guarantee (experiment F3 in miniature): greedy >= OPT / (2
// sqrt(n)) on random instances, and greedy <= OPT.
class Theorem11Guarantee : public ::testing::TestWithParam<int> {};

TEST_P(Theorem11Guarantee, RatioBounded) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 53 + 29);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst = gen_multi_interval(rng, 8, 20, 2, 2);
  const std::size_t k = 1 + rng.index(3);
  const std::size_t greedy = restart_greedy(inst, k).scheduled;
  const std::size_t opt = restart_exact_max_jobs(inst, k);
  EXPECT_LE(greedy, opt);
  const double bound = 2.0 * std::sqrt(static_cast<double>(inst.n()));
  EXPECT_GE(static_cast<double>(greedy) * bound + 1e-9,
            static_cast<double>(opt))
      << "greedy=" << greedy << " opt=" << opt << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Random, Theorem11Guarantee, ::testing::Range(0, 30));

}  // namespace
}  // namespace gapsched

#include "gapsched/core/candidate_times.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace gapsched {
namespace {

TEST(CandidateTimes, CoversSmallWindowsEntirely) {
  Instance inst = Instance::one_interval({{0, 3}, {5, 6}});
  std::vector<Time> theta = candidate_times(inst, false);
  for (Time t : {0, 1, 2, 3, 5, 6}) {
    EXPECT_TRUE(std::binary_search(theta.begin(), theta.end(), t)) << t;
  }
}

TEST(CandidateTimes, SortedAndUnique) {
  Instance inst = Instance::one_interval({{0, 100}, {3, 50}, {40, 90}});
  std::vector<Time> theta = candidate_times(inst);
  ASSERT_FALSE(theta.empty());
  for (std::size_t i = 1; i < theta.size(); ++i) {
    EXPECT_LT(theta[i - 1], theta[i]);
  }
}

TEST(CandidateTimes, WideWindowIsCompressed) {
  // One job with a huge window: only the O(n)-radius neighbourhoods of its
  // release and deadline are candidates.
  Instance inst = Instance::one_interval({{0, 1000000}});
  std::vector<Time> theta = candidate_times(inst, false);
  EXPECT_LE(theta.size(), 8u);  // [0, 0+n+1] and [d-n-1, d] with n = 1
  EXPECT_TRUE(std::binary_search(theta.begin(), theta.end(), Time{0}));
  EXPECT_TRUE(std::binary_search(theta.begin(), theta.end(), Time{1000000}));
}

TEST(CandidateTimes, NeighbourhoodRadiusIsN) {
  Instance inst = Instance::one_interval({{0, 100}, {0, 100}, {0, 100}});
  std::vector<Time> theta = candidate_times(inst, false);
  // Releases 0..n+1 = 0..4 and deadlines 100-4..100 must be present.
  for (Time t : {0, 1, 2, 3, 4, 96, 97, 98, 99, 100}) {
    EXPECT_TRUE(std::binary_search(theta.begin(), theta.end(), t)) << t;
  }
  EXPECT_FALSE(std::binary_search(theta.begin(), theta.end(), Time{50}));
}

TEST(CandidateTimes, PlusOneClosureAddsSeams) {
  Instance inst = Instance::one_interval({{0, 2}, {10, 12}});
  std::vector<Time> closed = candidate_times(inst, true);
  // 3 = 2+1 must be present (window seam), 13 clipped to horizon max 12.
  EXPECT_TRUE(std::binary_search(closed.begin(), closed.end(), Time{3}));
  EXPECT_FALSE(std::binary_search(closed.begin(), closed.end(), Time{13}));
}

TEST(CandidateTimes, MultiIntervalUsesAllowedTimes) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet({{2, 3}, {8, 8}})});
  inst.jobs.push_back(Job{TimeSet({{5, 5}})});
  std::vector<Time> theta = candidate_times(inst, false);
  EXPECT_EQ(theta, (std::vector<Time>{2, 3, 5, 8}));
}

TEST(CandidateTimes, QuadraticBound) {
  // n jobs: |theta| should be O(n^2), not O(horizon).
  std::vector<std::pair<Time, Time>> windows;
  for (int i = 0; i < 10; ++i) {
    windows.push_back({i * 100000, i * 100000 + 50000});
  }
  Instance inst = Instance::one_interval(windows);
  std::vector<Time> theta = candidate_times(inst);
  EXPECT_LE(theta.size(), 4u * 10u * 12u);
}

}  // namespace
}  // namespace gapsched

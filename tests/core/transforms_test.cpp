#include "gapsched/core/transforms.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gapsched/exact/brute_force.hpp"
#include "gapsched/exact/power_brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(CompressDeadTime, ShrinksDesertsToOneUnit) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet::window(100, 102)});
  inst.jobs.push_back(Job{TimeSet::window(5000, 5001)});
  CompressedInstance c = compress_dead_time(inst);
  // New layout: [0,2], dead unit 3, [4,5].
  EXPECT_EQ(c.instance.jobs[0].allowed, TimeSet::window(0, 2));
  EXPECT_EQ(c.instance.jobs[1].allowed, TimeSet::window(4, 5));
}

TEST(CompressDeadTime, TimeMapsRoundTrip) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet({{10, 12}, {90, 91}})});
  CompressedInstance c = compress_dead_time(inst);
  for (Time t : {10, 11, 12, 90, 91}) {
    EXPECT_EQ(c.to_original(c.to_compressed(t)), t);
  }
}

TEST(CompressDeadTime, AdjacentJobsStayAdjacent) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet::window(7, 8)});
  inst.jobs.push_back(Job{TimeSet::window(9, 10)});
  CompressedInstance c = compress_dead_time(inst);
  // Touching windows are one live region: [0,1] and [2,3].
  EXPECT_EQ(c.instance.jobs[0].allowed, TimeSet::window(0, 1));
  EXPECT_EQ(c.instance.jobs[1].allowed, TimeSet::window(2, 3));
}

TEST(CompressDeadTime, EmptyInstance) {
  Instance inst;
  CompressedInstance c = compress_dead_time(inst);
  EXPECT_EQ(c.instance.n(), 0u);
}

// Property: compression preserves the optimal transition count exactly.
class CompressionPreservesGaps : public ::testing::TestWithParam<int> {};

TEST_P(CompressionPreservesGaps, OptimaMatch) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 211 + 17);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  // Sparse instances with real deserts.
  Instance inst;
  inst.processors = 1 + static_cast<int>(rng.index(2));
  const std::size_t n = 5 + rng.index(3);
  for (std::size_t j = 0; j < n; ++j) {
    const Time base = rng.uniform(0, 6) * 100;
    const Time lo = base + rng.uniform(0, 5);
    inst.jobs.push_back(Job{TimeSet::window(lo, lo + rng.uniform(0, 4))});
  }
  CompressedInstance c = compress_dead_time(inst);
  c.instance.processors = inst.processors;
  const ExactGapResult a = brute_force_min_transitions(inst);
  const ExactGapResult b = brute_force_min_transitions(c.instance);
  ASSERT_EQ(a.feasible, b.feasible);
  if (a.feasible) {
    EXPECT_EQ(a.transitions, b.transitions);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, CompressionPreservesGaps,
                         ::testing::Range(0, 30));

// ------------------------------------------------- length-aware capping --

TEST(CompressDeadTimeCapped, TruncatesRunsAtTheCapOnly) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet::window(0, 1)});    // run of 2 follows
  inst.jobs.push_back(Job{TimeSet::window(4, 5)});    // run of 10 follows
  inst.jobs.push_back(Job{TimeSet::window(16, 17)});
  const CompressedInstance c = compress_dead_time_capped(inst, 4);
  // Layout: [0,1], dead 2 (under the cap, kept), [4,5], dead min(10,4)=4,
  // [10,11].
  EXPECT_EQ(c.instance.jobs[0].allowed, TimeSet::window(0, 1));
  EXPECT_EQ(c.instance.jobs[1].allowed, TimeSet::window(4, 5));
  EXPECT_EQ(c.instance.jobs[2].allowed, TimeSet::window(10, 11));
  EXPECT_EQ(c.dead_time_removed(), 6);
  for (Time t : {0, 1, 4, 5, 16, 17}) {
    EXPECT_EQ(c.to_original(c.to_compressed(t)), t);
  }
}

TEST(CompressDeadTimeCapped, CapOneIsPlainCompression) {
  Prng rng(testing::seed_for(815));
  const Instance inst = gen_uniform_one_interval(rng, 7, 400, 4);
  const CompressedInstance one = compress_dead_time(inst);
  const CompressedInstance capped = compress_dead_time_capped(inst, 1);
  ASSERT_EQ(one.instance.n(), capped.instance.n());
  for (std::size_t j = 0; j < inst.n(); ++j) {
    EXPECT_EQ(one.instance.jobs[j].allowed, capped.instance.jobs[j].allowed);
  }
}

TEST(CompressDeadTimeCapped, AlreadyCompactInstancesAreUntouched) {
  const Instance inst = Instance::one_interval({{0, 2}, {4, 6}, {9, 10}});
  const CompressedInstance c = compress_dead_time_capped(inst, 3);
  EXPECT_EQ(c.dead_time_removed(), 0);
  for (std::size_t j = 0; j < inst.n(); ++j) {
    EXPECT_EQ(c.instance.jobs[j].allowed, inst.jobs[j].allowed);
  }
}

// Property: with cap = ceil(alpha) + 1 the power optimum is exactly
// preserved; the tier-1 sample here is small — the >=500-instance-per-family
// sweep with shrinking lives in tests/fuzz.
class CappedCompressionPreservesPower : public ::testing::TestWithParam<int> {
};

TEST_P(CappedCompressionPreservesPower, OptimaMatch) {
  const std::uint64_t prng_seed =
      testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 223 + 19);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  const double alpha = 0.5 * static_cast<double>(rng.uniform(0, 10));
  const Time cap = static_cast<Time>(std::ceil(alpha)) + 1;
  Instance inst;
  const std::size_t n = 4 + rng.index(3);
  for (std::size_t j = 0; j < n; ++j) {
    const Time base = rng.uniform(0, 5) * 9;  // deserts straddling alpha
    const Time lo = base + rng.uniform(0, 4);
    inst.jobs.push_back(Job{TimeSet::window(lo, lo + rng.uniform(0, 3))});
  }
  const CompressedInstance c = compress_dead_time_capped(inst, cap);
  const ExactPowerResult a = brute_force_min_power(inst, alpha);
  const ExactPowerResult b = brute_force_min_power(c.instance, alpha);
  ASSERT_EQ(a.feasible, b.feasible);
  if (a.feasible) {
    EXPECT_NEAR(a.power, b.power, 1e-9 * std::max(1.0, a.power))
        << "alpha " << alpha << ", cap " << cap;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, CappedCompressionPreservesPower,
                         ::testing::Range(0, 30));

// -------------------------------------------------------- dead-run stretch --

TEST(StretchDeadTime, DilatesLongRunsAndKeepsShortOnes) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet::window(3, 4)});    // run of 2 follows
  inst.jobs.push_back(Job{TimeSet::window(7, 8)});    // run of 5 follows
  inst.jobs.push_back(Job{TimeSet::window(14, 15)});
  const Instance wide = stretch_dead_time(inst, 3, 4);
  // Origin kept; run of 2 (< min_run 4) kept; run of 5 -> 15.
  EXPECT_EQ(wide.jobs[0].allowed, TimeSet::window(3, 4));
  EXPECT_EQ(wide.jobs[1].allowed, TimeSet::window(7, 8));
  EXPECT_EQ(wide.jobs[2].allowed, TimeSet::window(24, 25));
}

TEST(StretchDeadTime, FactorOneIsIdentity) {
  Prng rng(testing::seed_for(816));
  const Instance inst = gen_uniform_one_interval(rng, 8, 300, 5);
  const Instance same = stretch_dead_time(inst, 1, 1);
  ASSERT_EQ(same.n(), inst.n());
  for (std::size_t j = 0; j < inst.n(); ++j) {
    EXPECT_EQ(same.jobs[j].allowed, inst.jobs[j].allowed);
  }
}

TEST(StretchDeadTime, CappedCompressionNormalizesStretchedCopies) {
  // The tentpole's cache-normalization property at the transform level:
  // stretching dead runs at or above the cap and then compressing with
  // that cap lands on the same instance the unstretched original
  // compresses to.
  Instance inst;
  inst.jobs.push_back(Job{TimeSet::window(0, 2)});
  inst.jobs.push_back(Job{TimeSet::window(9, 10)});   // run of 6
  inst.jobs.push_back(Job{TimeSet::window(30, 32)});  // run of 19
  const Time cap = 4;
  const Instance wide = stretch_dead_time(inst, 7, cap);
  const CompressedInstance a = compress_dead_time_capped(inst, cap);
  const CompressedInstance b = compress_dead_time_capped(wide, cap);
  ASSERT_EQ(a.instance.n(), b.instance.n());
  for (std::size_t j = 0; j < inst.n(); ++j) {
    EXPECT_EQ(a.instance.jobs[j].allowed, b.instance.jobs[j].allowed);
  }
  EXPECT_GT(b.dead_time_removed(), a.dead_time_removed());
}

}  // namespace
}  // namespace gapsched

#include "gapsched/core/transforms.hpp"

#include <gtest/gtest.h>

#include "gapsched/exact/brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(CompressDeadTime, ShrinksDesertsToOneUnit) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet::window(100, 102)});
  inst.jobs.push_back(Job{TimeSet::window(5000, 5001)});
  CompressedInstance c = compress_dead_time(inst);
  // New layout: [0,2], dead unit 3, [4,5].
  EXPECT_EQ(c.instance.jobs[0].allowed, TimeSet::window(0, 2));
  EXPECT_EQ(c.instance.jobs[1].allowed, TimeSet::window(4, 5));
}

TEST(CompressDeadTime, TimeMapsRoundTrip) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet({{10, 12}, {90, 91}})});
  CompressedInstance c = compress_dead_time(inst);
  for (Time t : {10, 11, 12, 90, 91}) {
    EXPECT_EQ(c.to_original(c.to_compressed(t)), t);
  }
}

TEST(CompressDeadTime, AdjacentJobsStayAdjacent) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet::window(7, 8)});
  inst.jobs.push_back(Job{TimeSet::window(9, 10)});
  CompressedInstance c = compress_dead_time(inst);
  // Touching windows are one live region: [0,1] and [2,3].
  EXPECT_EQ(c.instance.jobs[0].allowed, TimeSet::window(0, 1));
  EXPECT_EQ(c.instance.jobs[1].allowed, TimeSet::window(2, 3));
}

TEST(CompressDeadTime, EmptyInstance) {
  Instance inst;
  CompressedInstance c = compress_dead_time(inst);
  EXPECT_EQ(c.instance.n(), 0u);
}

// Property: compression preserves the optimal transition count exactly.
class CompressionPreservesGaps : public ::testing::TestWithParam<int> {};

TEST_P(CompressionPreservesGaps, OptimaMatch) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 211 + 17);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  // Sparse instances with real deserts.
  Instance inst;
  inst.processors = 1 + static_cast<int>(rng.index(2));
  const std::size_t n = 5 + rng.index(3);
  for (std::size_t j = 0; j < n; ++j) {
    const Time base = rng.uniform(0, 6) * 100;
    const Time lo = base + rng.uniform(0, 5);
    inst.jobs.push_back(Job{TimeSet::window(lo, lo + rng.uniform(0, 4))});
  }
  CompressedInstance c = compress_dead_time(inst);
  c.instance.processors = inst.processors;
  const ExactGapResult a = brute_force_min_transitions(inst);
  const ExactGapResult b = brute_force_min_transitions(c.instance);
  ASSERT_EQ(a.feasible, b.feasible);
  if (a.feasible) {
    EXPECT_EQ(a.transitions, b.transitions);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, CompressionPreservesGaps,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace gapsched

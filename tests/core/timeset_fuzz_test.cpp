// Differential fuzzing of TimeSet against a std::set<Time> reference model:
// random operation chains must agree pointwise with naive set semantics.

#include <gtest/gtest.h>

#include <set>

#include "gapsched/core/timeset.hpp"
#include "gapsched/util/prng.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

// Reference model.
std::set<Time> materialize(const TimeSet& ts) {
  std::set<Time> out;
  for (const Interval& iv : ts.intervals()) {
    for (Time t = iv.lo; t <= iv.hi; ++t) out.insert(t);
  }
  return out;
}

TimeSet random_set(Prng& rng, Time lo, Time hi) {
  std::vector<Interval> ivs;
  const std::size_t k = 1 + rng.index(5);
  for (std::size_t i = 0; i < k; ++i) {
    const Time a = rng.uniform(lo, hi);
    ivs.push_back({a, a + rng.uniform(0, 5)});
  }
  return TimeSet(std::move(ivs));
}

class TimeSetFuzz : public ::testing::TestWithParam<int> {};

TEST_P(TimeSetFuzz, OperationChainMatchesReference) {
  const std::uint64_t seed =
      testing::seed_for(static_cast<std::uint64_t>(GetParam()));
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  TimeSet current = random_set(rng, 0, 40);
  std::set<Time> model = materialize(current);

  for (int step = 0; step < 12; ++step) {
    const int op = static_cast<int>(rng.index(5));
    if (op == 0) {  // unite
      TimeSet other = random_set(rng, 0, 40);
      for (Time t : materialize(other)) model.insert(t);
      current = current.unite(other);
    } else if (op == 1) {  // subtract
      TimeSet other = random_set(rng, 0, 40);
      for (Time t : materialize(other)) model.erase(t);
      current = current.subtract(other);
    } else if (op == 2) {  // intersect
      TimeSet other = random_set(rng, 0, 40);
      const std::set<Time> om = materialize(other);
      std::set<Time> kept;
      for (Time t : model) {
        if (om.count(t)) kept.insert(t);
      }
      model = std::move(kept);
      current = current.intersect(other);
    } else if (op == 3) {  // shift
      const Time d = rng.uniform(-3, 3);
      std::set<Time> shifted;
      for (Time t : model) shifted.insert(t + d);
      model = std::move(shifted);
      current = current.shifted(d);
    } else {  // restrict
      const Time a = rng.uniform(-5, 45);
      const Time b = a + rng.uniform(0, 20);
      std::set<Time> kept;
      for (Time t : model) {
        if (a <= t && t <= b) kept.insert(t);
      }
      model = std::move(kept);
      current = current.restricted_to({a, b});
    }

    // Full pointwise agreement plus invariants.
    ASSERT_EQ(current.size(), static_cast<std::int64_t>(model.size()))
        << "step " << step << " op " << op;
    for (Time t = -10; t <= 55; ++t) {
      ASSERT_EQ(current.contains(t), model.count(t) > 0)
          << "t=" << t << " step " << step;
    }
    // Normalization invariants: sorted, disjoint, non-adjacent, non-empty.
    const auto& ivs = current.intervals();
    for (std::size_t i = 0; i < ivs.size(); ++i) {
      ASSERT_LE(ivs[i].lo, ivs[i].hi);
      if (i > 0) {
        ASSERT_GT(ivs[i].lo, ivs[i - 1].hi + 1);
      }
    }
    if (!model.empty()) {
      ASSERT_EQ(current.min(), *model.begin());
      ASSERT_EQ(current.max(), *model.rbegin());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Chains, TimeSetFuzz, ::testing::Range(0, 50));

}  // namespace
}  // namespace gapsched

#include "gapsched/core/profile.hpp"

#include <gtest/gtest.h>

namespace gapsched {
namespace {

TEST(Profile, EmptyProfile) {
  OccupancyProfile p = OccupancyProfile::from_times({});
  EXPECT_EQ(p.transitions(), 0);
  EXPECT_EQ(p.busy_time(), 0);
  EXPECT_EQ(p.max_occupancy(), 0);
  EXPECT_EQ(p.spans(), 0);
  EXPECT_DOUBLE_EQ(p.optimal_power(3.0), 0.0);
}

TEST(Profile, SingleRunSingleProcessor) {
  OccupancyProfile p = OccupancyProfile::from_times({3, 4, 5});
  EXPECT_EQ(p.transitions(), 1);
  EXPECT_EQ(p.spans(), 1);
  EXPECT_EQ(p.interior_gaps(), 0);
  EXPECT_EQ(p.busy_time(), 3);
}

TEST(Profile, TwoRunsSingleProcessor) {
  OccupancyProfile p = OccupancyProfile::from_times({1, 2, 9});
  EXPECT_EQ(p.transitions(), 2);
  EXPECT_EQ(p.spans(), 2);
  EXPECT_EQ(p.interior_gaps(), 1);
}

TEST(Profile, StaircaseTransitions) {
  // occupancy: t=0 ->2, t=1 ->1, t=2 ->3. Increments: 2, 0, 2 -> 4.
  OccupancyProfile p = OccupancyProfile::from_times({0, 0, 1, 2, 2, 2});
  EXPECT_EQ(p.transitions(), 4);
  EXPECT_EQ(p.max_occupancy(), 3);
  EXPECT_EQ(p.interior_gaps(), 1);
}

TEST(Profile, NonAdjacentRunsWakeEverything) {
  // Two busy times far apart with occupancy 2 each: 4 transitions.
  OccupancyProfile p = OccupancyProfile::from_times({0, 0, 10, 10});
  EXPECT_EQ(p.transitions(), 4);
  EXPECT_EQ(p.spans(), 2);
}

// The 3-job example from DESIGN.md showing that only transition counting
// makes Lemma 1 sound: jobs forced at t=0, t=2 and a flexible one. Both
// staircase profiles have 3 transitions; a non-staircase schedule on 3
// processors also makes 3 wake-ups. Transitions are profile-invariant where
// "interior gaps" are not.
TEST(Profile, Lemma1CounterexampleAccounting) {
  OccupancyProfile stacked = OccupancyProfile::from_times({0, 0, 2});
  OccupancyProfile spread = OccupancyProfile::from_times({0, 2, 2});
  EXPECT_EQ(stacked.transitions(), 3);
  EXPECT_EQ(spread.transitions(), 3);
  // Interior-gap counting would differ between processor assignments.
  EXPECT_EQ(stacked.interior_gaps(), 1);
}

TEST(Profile, OptimalPowerBridgesShortGaps) {
  // Busy at 0 and 3: idle run of 2. alpha=5 -> bridge (cost 2).
  OccupancyProfile p = OccupancyProfile::from_times({0, 3});
  EXPECT_DOUBLE_EQ(p.optimal_power(5.0), 2 + 5.0 + 2.0);
  // alpha=1 -> sleep (cost 1 wake).
  EXPECT_DOUBLE_EQ(p.optimal_power(1.0), 2 + 1.0 + 1.0);
  // alpha exactly the idle length: either choice, same cost.
  EXPECT_DOUBLE_EQ(p.optimal_power(2.0), 2 + 2.0 + 2.0);
}

TEST(Profile, OptimalPowerPerLevel) {
  // occupancy: t=0:2, t=1:1, t=2:2. Level 1: contiguous, wake once.
  // Level 2: busy at 0 and 2, idle 1 unit -> bridge iff alpha >= 1.
  OccupancyProfile p = OccupancyProfile::from_times({0, 0, 1, 2, 2});
  const double alpha = 4.0;
  EXPECT_DOUBLE_EQ(p.optimal_power(alpha), 5 + alpha + (alpha + 1.0));
  const double tiny = 0.5;
  EXPECT_DOUBLE_EQ(p.optimal_power(tiny), 5 + tiny + (tiny + tiny));
}

TEST(Profile, PowerWithoutBridgingMatchesDefinition) {
  OccupancyProfile p = OccupancyProfile::from_times({0, 0, 5});
  EXPECT_DOUBLE_EQ(p.power_without_bridging(2.5),
                   3.0 + 2.5 * static_cast<double>(p.transitions()));
}

TEST(Profile, OptimalPowerNeverExceedsNoBridging) {
  for (int v = 0; v < 50; ++v) {
    // Pseudo-random small time multisets.
    std::vector<Time> times;
    unsigned x = static_cast<unsigned>(v) * 747796405u + 1;
    const int cnt = 1 + static_cast<int>(x % 8u);
    for (int i = 0; i < cnt; ++i) {
      x = x * 1664525u + 1013904223u;
      times.push_back(static_cast<Time>(x % 12u));
    }
    OccupancyProfile p = OccupancyProfile::from_times(times);
    for (double alpha : {0.0, 0.5, 1.0, 2.0, 7.0}) {
      EXPECT_LE(p.optimal_power(alpha), p.power_without_bridging(alpha) + 1e-9)
          << "v=" << v << " alpha=" << alpha;
      // Power is at least busy time plus one wake of the deepest level.
      EXPECT_GE(p.optimal_power(alpha),
                static_cast<double>(p.busy_time()) + alpha - 1e-9);
    }
  }
}

}  // namespace
}  // namespace gapsched

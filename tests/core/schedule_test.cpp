#include "gapsched/core/schedule.hpp"

#include <gtest/gtest.h>

#include "gapsched/gen/generators.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

Instance two_proc_instance() {
  return Instance::one_interval({{0, 3}, {0, 3}, {2, 5}}, /*processors=*/2);
}

TEST(Schedule, PlaceAndQuery) {
  Schedule s(3);
  EXPECT_EQ(s.scheduled_count(), 0u);
  s.place(0, 2, 0);
  s.place(2, 5);
  EXPECT_TRUE(s.is_scheduled(0));
  EXPECT_FALSE(s.is_scheduled(1));
  EXPECT_EQ(s.scheduled_count(), 2u);
  EXPECT_EQ(s.at(0)->time, 2);
  EXPECT_EQ(s.at(2)->processor, Placement::kUnassigned);
  s.unschedule(0);
  EXPECT_FALSE(s.is_scheduled(0));
}

TEST(Schedule, ValidateCatchesDisallowedTime) {
  Instance inst = two_proc_instance();
  Schedule s(3);
  s.place(0, 0);
  s.place(1, 1);
  s.place(2, 1);  // job 2 releases at 2
  EXPECT_NE(s.validate(inst), "");
}

TEST(Schedule, ValidateCatchesOvercapacity) {
  Instance inst = two_proc_instance();
  Schedule s(3);
  s.place(0, 2);
  s.place(1, 2);
  s.place(2, 2);  // three jobs, two processors
  EXPECT_NE(s.validate(inst), "");
}

TEST(Schedule, ValidateCatchesProcessorCollision) {
  Instance inst = two_proc_instance();
  Schedule s(3);
  s.place(0, 2, 1);
  s.place(1, 2, 1);
  s.place(2, 3, 0);
  EXPECT_NE(s.validate(inst), "");
}

TEST(Schedule, ValidateAcceptsGoodSchedule) {
  Instance inst = two_proc_instance();
  Schedule s(3);
  s.place(0, 0, 0);
  s.place(1, 1, 0);
  s.place(2, 2, 0);
  EXPECT_EQ(s.validate(inst), "");
}

TEST(Schedule, ValidatePartial) {
  Instance inst = two_proc_instance();
  Schedule s(3);
  s.place(0, 0);
  EXPECT_NE(s.validate(inst, /*require_complete=*/true), "");
  EXPECT_EQ(s.validate(inst, /*require_complete=*/false), "");
}

TEST(Schedule, StaircaseAssignmentIsValidAndMatchesProfile) {
  Instance inst = two_proc_instance();
  Schedule s(3);
  s.place(0, 2);
  s.place(1, 2);
  s.place(2, 3);
  s.assign_processors_staircase();
  EXPECT_EQ(s.validate(inst), "");
  // In staircase form, per-processor run starts equal profile transitions.
  EXPECT_EQ(s.per_processor_transitions(inst), s.profile().transitions());
}

// Property: staircase per-processor transitions == profile transitions on
// random feasible-by-construction multiprocessor instances.
class StaircaseProperty : public ::testing::TestWithParam<int> {};

TEST_P(StaircaseProperty, PerProcessorMatchesProfile) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) + 77);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  const int p = 1 + GetParam() % 3;
  Instance inst = gen_feasible_one_interval(rng, 8, 12, 2, p);
  // Anchor schedule: place each job at its window midpoint may violate
  // capacity; instead schedule at anchors via brute placement: each job at
  // its release, clamped by capacity using later times.
  Schedule s(inst.n());
  std::vector<int> used(64, 0);
  for (std::size_t j = 0; j < inst.n(); ++j) {
    for (Time t = inst.jobs[j].release(); t <= inst.jobs[j].deadline(); ++t) {
      if (used[static_cast<std::size_t>(t)] < p) {
        ++used[static_cast<std::size_t>(t)];
        s.place(j, t);
        break;
      }
    }
    if (!s.is_scheduled(j)) GTEST_SKIP() << "greedy packing failed";
  }
  s.assign_processors_staircase();
  ASSERT_EQ(s.validate(inst), "");
  EXPECT_EQ(s.per_processor_transitions(inst), s.profile().transitions());
}

INSTANTIATE_TEST_SUITE_P(Random, StaircaseProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace gapsched

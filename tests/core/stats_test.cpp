#include "gapsched/core/stats.hpp"

#include <gtest/gtest.h>

#include "gapsched/gen/generators.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(Stats, EmptyInstance) {
  InstanceStats s = compute_stats(Instance{});
  EXPECT_EQ(s.jobs, 0u);
  EXPECT_EQ(s.horizon, 0);
}

TEST(Stats, SimpleInstance) {
  Instance inst = Instance::one_interval({{0, 4}, {2, 2}}, 2);
  InstanceStats s = compute_stats(inst);
  EXPECT_EQ(s.jobs, 2u);
  EXPECT_EQ(s.processors, 2);
  EXPECT_EQ(s.horizon, 5);
  EXPECT_EQ(s.live_time, 5);
  EXPECT_EQ(s.max_slack, 4);
  EXPECT_DOUBLE_EQ(s.mean_slack, 2.0);
  EXPECT_DOUBLE_EQ(s.pinned_fraction, 0.5);
  EXPECT_DOUBLE_EQ(s.contention, 2.0 / (5.0 * 2.0));
  EXPECT_EQ(s.max_intervals, 1u);
}

TEST(Stats, MultiIntervalLiveTime) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet({{0, 1}, {10, 11}})});
  inst.jobs.push_back(Job{TimeSet({{10, 12}})});
  InstanceStats s = compute_stats(inst);
  EXPECT_EQ(s.live_time, 2 + 3);  // {0,1} u {10,11,12}
  EXPECT_EQ(s.max_intervals, 2u);
}

TEST(Stats, ContentionAboveOneImpliesInfeasible) {
  for (int seed = 0; seed < 30; ++seed) {
    const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(seed) * 227 + 1);
    GAPSCHED_TRACE_SEED(prng_seed);
    Prng rng(prng_seed);
    Instance inst = gen_uniform_one_interval(rng, 8, 8, 3, 1);
    InstanceStats s = compute_stats(inst);
    if (s.contention > 1.0) {
      EXPECT_FALSE(is_feasible(inst)) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace gapsched

#include "gapsched/core/timeset.hpp"

#include <gtest/gtest.h>

namespace gapsched {
namespace {

TEST(TimeSet, NormalizesOverlappingAndAdjacentIntervals) {
  TimeSet s({{5, 9}, {1, 3}, {4, 6}, {15, 15}});
  // [1,3] and [4,6] are adjacent -> merge; [5,9] overlaps -> merge.
  ASSERT_EQ(s.interval_count(), 2u);
  EXPECT_EQ(s.intervals()[0], (Interval{1, 9}));
  EXPECT_EQ(s.intervals()[1], (Interval{15, 15}));
  EXPECT_EQ(s.size(), 10);
}

TEST(TimeSet, DropsEmptyIntervals) {
  TimeSet s({{3, 2}, {7, 7}});
  ASSERT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s.min(), 7);
  EXPECT_EQ(s.max(), 7);
}

TEST(TimeSet, WindowAndPoints) {
  EXPECT_EQ(TimeSet::window(2, 5).size(), 4);
  TimeSet pts = TimeSet::points({9, 3, 3, 5});
  EXPECT_EQ(pts.size(), 3);
  EXPECT_TRUE(pts.is_unit_points());
  EXPECT_FALSE(TimeSet::window(1, 2).is_unit_points());
}

TEST(TimeSet, Contains) {
  TimeSet s({{1, 3}, {7, 9}});
  for (Time t : {1, 2, 3, 7, 8, 9}) EXPECT_TRUE(s.contains(t)) << t;
  for (Time t : {0, 4, 5, 6, 10}) EXPECT_FALSE(s.contains(t)) << t;
}

TEST(TimeSet, Intersect) {
  TimeSet a({{0, 10}, {20, 30}});
  TimeSet b({{5, 25}});
  TimeSet c = a.intersect(b);
  ASSERT_EQ(c.interval_count(), 2u);
  EXPECT_EQ(c.intervals()[0], (Interval{5, 10}));
  EXPECT_EQ(c.intervals()[1], (Interval{20, 25}));
}

TEST(TimeSet, IntersectEmpty) {
  TimeSet a({{0, 3}});
  TimeSet b({{5, 8}});
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(TimeSet, Subtract) {
  TimeSet a({{0, 10}});
  TimeSet b({{3, 4}, {8, 12}});
  TimeSet c = a.subtract(b);
  ASSERT_EQ(c.interval_count(), 2u);
  EXPECT_EQ(c.intervals()[0], (Interval{0, 2}));
  EXPECT_EQ(c.intervals()[1], (Interval{5, 7}));
}

TEST(TimeSet, SubtractEverything) {
  TimeSet a({{2, 6}});
  EXPECT_TRUE(a.subtract(TimeSet({{0, 9}})).empty());
}

TEST(TimeSet, SubtractNothing) {
  TimeSet a({{2, 6}});
  EXPECT_EQ(a.subtract(TimeSet({{10, 20}})), a);
}

TEST(TimeSet, Unite) {
  TimeSet a({{0, 2}});
  TimeSet b({{3, 5}});
  EXPECT_EQ(a.unite(b), TimeSet::window(0, 5));
}

TEST(TimeSet, Shifted) {
  TimeSet a({{1, 2}, {5, 5}});
  TimeSet s = a.shifted(10);
  EXPECT_EQ(s.intervals()[0], (Interval{11, 12}));
  EXPECT_EQ(s.intervals()[1], (Interval{15, 15}));
}

TEST(TimeSet, RestrictedTo) {
  TimeSet a({{0, 10}});
  EXPECT_EQ(a.restricted_to({4, 6}), TimeSet::window(4, 6));
  EXPECT_TRUE(a.restricted_to({12, 14}).empty());
  EXPECT_TRUE(a.restricted_to({6, 4}).empty());
}

TEST(TimeSet, ToVector) {
  TimeSet a({{1, 3}, {6, 6}});
  EXPECT_EQ(a.to_vector(), (std::vector<Time>{1, 2, 3, 6}));
}

// Property sweep: subtract/intersect/unite agree with pointwise semantics.
class TimeSetAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(TimeSetAlgebra, MatchesPointwiseSemantics) {
  const int seed = GetParam();
  // Deterministic pseudo-random small sets over [0, 30).
  auto make = [](int s) {
    std::vector<Interval> ivs;
    unsigned x = static_cast<unsigned>(s) * 2654435761u + 1;
    const int k = 1 + static_cast<int>(x % 4u);
    for (int i = 0; i < k; ++i) {
      x = x * 1664525u + 1013904223u;
      const Time lo = static_cast<Time>(x % 30u);
      x = x * 1664525u + 1013904223u;
      const Time hi = lo + static_cast<Time>(x % 6u);
      ivs.push_back({lo, hi});
    }
    return TimeSet(std::move(ivs));
  };
  TimeSet a = make(seed);
  TimeSet b = make(seed + 1000);
  for (Time t = -2; t < 40; ++t) {
    const bool in_a = a.contains(t), in_b = b.contains(t);
    EXPECT_EQ(a.intersect(b).contains(t), in_a && in_b) << t;
    EXPECT_EQ(a.subtract(b).contains(t), in_a && !in_b) << t;
    EXPECT_EQ(a.unite(b).contains(t), in_a || in_b) << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, TimeSetAlgebra, ::testing::Range(0, 25));

}  // namespace
}  // namespace gapsched

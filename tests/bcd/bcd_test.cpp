// Unit suite for the Baptiste-Chrobak-Durr polynomial solver family
// (src/bcd): handcrafted optima for both objectives, randomized parity
// against the subset-DP ground truth at brute-forceable sizes, the alias
// contract with solve_baptiste, the shape-guard and budget-valve error
// paths, and large-n smoke solves (n = 2000) with closed-form optima —
// the sizes the exponential families cannot touch, kept fast enough for
// tier1 precisely because the DP is polynomial.

#include "gapsched/bcd/bcd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gapsched/baptiste/baptiste.hpp"
#include "gapsched/exact/brute_force.hpp"
#include "gapsched/exact/power_brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/oracle/oracle.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

constexpr double kAlpha = 2.5;

// ------------------------------------------------------- handcrafted gap --

TEST(Bcd, EmptyInstanceIsFeasibleWithNoTransitions) {
  const BcdGapResult r = solve_bcd_gap(Instance{});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 0);
}

TEST(Bcd, SingleSpanWhenPackable) {
  const Instance inst = Instance::one_interval({{0, 5}, {0, 5}, {0, 5}});
  const BcdGapResult r = solve_bcd_gap(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
  EXPECT_EQ(r.schedule.validate(inst), "");
}

TEST(Bcd, ForcedGapsCountBlocks) {
  const Instance inst = Instance::one_interval({{0, 0}, {10, 10}, {20, 20}});
  const BcdGapResult r = solve_bcd_gap(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 3);
}

TEST(Bcd, InterleavesLooseJobsBetweenTightOnes) {
  // Tight jobs at 10, 12, 14; the loose pair fills 11 and 13: one span.
  const Instance inst = Instance::one_interval(
      {{10, 10}, {12, 12}, {14, 14}, {0, 20}, {0, 20}});
  const BcdGapResult r = solve_bcd_gap(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
}

TEST(Bcd, Infeasible) {
  const Instance inst = Instance::one_interval({{0, 0}, {0, 0}});
  const BcdGapResult r = solve_bcd_gap(inst);
  EXPECT_TRUE(r.error.empty());
  EXPECT_FALSE(r.feasible);
}

TEST(Bcd, IgnoresProcessorCount) {
  const Instance inst =
      Instance::one_interval({{0, 1}, {0, 1}}, /*processors=*/4);
  const BcdGapResult r = solve_bcd_gap(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);  // solved as p = 1
}

// ----------------------------------------------------- handcrafted power --

TEST(Bcd, PowerPacksIntoOneBlock) {
  const Instance inst = Instance::one_interval({{0, 5}, {0, 5}, {0, 5}});
  const BcdPowerResult r = solve_bcd_power(inst, kAlpha);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 3.0 + kAlpha);  // n active slots + one wake-up
}

TEST(Bcd, PowerBridgesShortGapAndSleepsLongGap) {
  // Slots 0, 2, 10 are forced: the 1-slot gap is bridged (cost 1 < alpha),
  // the 7-slot gap sleeps (cost alpha).
  const Instance inst = Instance::one_interval({{0, 0}, {2, 2}, {10, 10}});
  const BcdPowerResult r = solve_bcd_power(inst, kAlpha);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 3.0 + kAlpha + 1.0 + kAlpha);
}

TEST(Bcd, PowerZeroAlphaChargesActiveTimeOnly) {
  const Instance inst = Instance::one_interval({{0, 0}, {5, 9}, {20, 20}});
  const BcdPowerResult r = solve_bcd_power(inst, 0.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 3.0);  // gaps are free at alpha = 0
}

TEST(Bcd, PowerDelaysAJobToMergeGaps) {
  // The loose job can run anywhere in [0, 10]; parking it adjacent to one
  // of the tight jobs beats opening a third block. Optimum: blocks {0} and
  // {9, 10} (or {0, 1} and {10}), one interior gap of 8 -> alpha.
  const Instance inst = Instance::one_interval({{0, 0}, {10, 10}, {0, 10}});
  const BcdPowerResult r = solve_bcd_power(inst, kAlpha);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 3.0 + kAlpha + kAlpha);
  const oracle::ScheduleAudit audit = oracle::audit_schedule(inst, r.schedule);
  ASSERT_TRUE(audit.valid && audit.complete);
  EXPECT_NEAR(oracle::min_power(audit, kAlpha), r.power, 1e-9);
}

// ----------------------------------------------------------- error paths --

TEST(Bcd, RejectsMultiIntervalJobs) {
  Instance inst;
  inst.processors = 1;
  inst.jobs.push_back(Job{TimeSet::points({0, 5})});
  const BcdGapResult g = solve_bcd_gap(inst);
  EXPECT_FALSE(g.error.empty());
  const BcdPowerResult p = solve_bcd_power(inst, kAlpha);
  EXPECT_FALSE(p.error.empty());
}

TEST(Bcd, RejectsAbsurdAlpha) {
  const Instance inst = Instance::one_interval({{0, 1}});
  EXPECT_FALSE(solve_bcd_power(inst, 1e18).error.empty());
}

TEST(Bcd, StateBudgetValveRejectsInsteadOfAnswering) {
  const Instance inst =
      Instance::one_interval({{0, 3}, {1, 4}, {2, 5}, {3, 6}});
  bcd::BcdOptions opts;
  opts.max_states = 1;
  const BcdGapResult r = solve_bcd_gap(inst, opts);
  EXPECT_FALSE(r.error.empty());
  EXPECT_FALSE(r.feasible);
}

TEST(Bcd, EntryBudgetValveRejectsInsteadOfAnswering) {
  const Instance inst =
      Instance::one_interval({{0, 30}, {5, 35}, {10, 40}, {15, 45}});
  bcd::BcdOptions opts;
  opts.max_entries = 4;
  const BcdGapResult r = solve_bcd_gap(inst, opts);
  EXPECT_FALSE(r.error.empty());
  EXPECT_FALSE(r.feasible);
}

// ------------------------------------------------- brute-force agreement --

class BcdVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(BcdVsBruteForce, GapAgrees) {
  const std::uint64_t seed =
      testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 29 + 11);
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  // Mix of tight and loose draws; ~half are infeasible, exercising the
  // empty-frontier verdict.
  const Instance inst = gen_uniform_one_interval(rng, 7, 12, 5, 1);
  const ExactGapResult bf = brute_force_min_transitions(inst);
  const BcdGapResult r = solve_bcd_gap(inst);
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.feasible, bf.feasible);
  if (bf.feasible) {
    EXPECT_EQ(r.transitions, bf.transitions);
    EXPECT_EQ(r.schedule.validate(inst), "");
  }
}

TEST_P(BcdVsBruteForce, PowerAgrees) {
  const std::uint64_t seed =
      testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 31 + 17);
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  const Instance inst = gen_uniform_one_interval(rng, 6, 11, 5, 1);
  // Sweep alpha through the integer-boundary cases (0, fractional, whole).
  const double alpha = (GetParam() % 3 == 0) ? 0.0
                       : (GetParam() % 3 == 1) ? kAlpha
                                               : 3.0;
  const ExactPowerResult bf = brute_force_min_power(inst, alpha);
  const BcdPowerResult r = solve_bcd_power(inst, alpha);
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_EQ(r.feasible, bf.feasible);
  if (bf.feasible) {
    EXPECT_NEAR(r.power, bf.power, 1e-9 * (1.0 + std::abs(bf.power)));
    EXPECT_EQ(r.schedule.validate(inst), "");
    const oracle::ScheduleAudit audit =
        oracle::audit_schedule(inst, r.schedule);
    ASSERT_TRUE(audit.valid && audit.complete);
    // The claimed optimum must be exactly the realized schedule's power.
    EXPECT_NEAR(oracle::min_power(audit, alpha), r.power,
                1e-9 * (1.0 + std::abs(r.power)));
  }
}

INSTANTIATE_TEST_SUITE_P(Random, BcdVsBruteForce, ::testing::Range(0, 40));

// ---------------------------------------------------------- alias parity --

TEST(Bcd, BaptisteAliasForwardsToBcd) {
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t seed =
        testing::seed_for(static_cast<std::uint64_t>(i) * 41 + 3);
    GAPSCHED_TRACE_SEED(seed);
    Prng rng(seed);
    const Instance inst = gen_uniform_one_interval(rng, 8, 14, 5, 1);
    const BcdGapResult r = solve_bcd_gap(inst);
    const BaptisteResult b = solve_baptiste(inst);
    ASSERT_EQ(b.feasible, r.feasible);
    if (r.feasible) {
      EXPECT_EQ(b.spans, r.transitions);
      EXPECT_EQ(b.gaps, r.transitions - 1);
    }
  }
}

// --------------------------------------------------------- large-n smoke --

TEST(Bcd, SolvesDenseChainAtTwoThousandJobs) {
  // Window [j, j + 3] for j = 0..1999: slot j for job j packs everything
  // into one block, so the optimum is a single transition.
  std::vector<std::pair<Time, Time>> windows;
  for (Time j = 0; j < 2000; ++j) windows.push_back({j, j + 3});
  const Instance inst = Instance::one_interval(windows);
  const BcdGapResult r = solve_bcd_gap(inst);
  ASSERT_TRUE(r.error.empty()) << r.error;
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
  EXPECT_EQ(r.schedule.validate(inst), "");
  EXPECT_GE(r.states, 2000u);  // genuinely visited the whole prefix chain
}

TEST(Bcd, SolvesClusteredTwoThousandJobsWithClosedFormPower) {
  // 50 clusters of 40 tight jobs, 100 apart: each cluster is one block,
  // every interior gap (60 slots) far exceeds alpha. Gap optimum = 50
  // blocks; power optimum = n + alpha + 49 * alpha.
  std::vector<std::pair<Time, Time>> windows;
  for (Time c = 0; c < 50; ++c) {
    for (Time j = 0; j < 40; ++j) {
      windows.push_back({c * 100 + j, c * 100 + j});
    }
  }
  const Instance inst = Instance::one_interval(windows);
  const BcdGapResult g = solve_bcd_gap(inst);
  ASSERT_TRUE(g.error.empty()) << g.error;
  ASSERT_TRUE(g.feasible);
  EXPECT_EQ(g.transitions, 50);
  const BcdPowerResult p = solve_bcd_power(inst, kAlpha);
  ASSERT_TRUE(p.error.empty()) << p.error;
  ASSERT_TRUE(p.feasible);
  EXPECT_NEAR(p.power, 2000.0 + kAlpha + 49.0 * kAlpha, 1e-6);
}

}  // namespace
}  // namespace gapsched

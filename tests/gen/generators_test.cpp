#include "gapsched/gen/generators.hpp"

#include <gtest/gtest.h>

#include "gapsched/matching/feasibility.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(Generators, UniformShapes) {
  const std::uint64_t seed = testing::seed_for(1);
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  Instance inst = gen_uniform_one_interval(rng, 20, 50, 5, 2);
  EXPECT_EQ(inst.n(), 20u);
  EXPECT_EQ(inst.processors, 2);
  EXPECT_TRUE(inst.is_one_interval());
  for (const Job& j : inst.jobs) {
    EXPECT_GE(j.release(), 0);
    EXPECT_LE(j.deadline() - j.release() + 1, 5);
  }
}

TEST(Generators, FeasibleFamilyIsFeasible) {
  const std::uint64_t seed = testing::seed_for(2);
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  for (int it = 0; it < 15; ++it) {
    const int p = 1 + static_cast<int>(rng.index(3));
    Instance inst = gen_feasible_one_interval(rng, 10, 15, 3, p);
    EXPECT_TRUE(is_feasible(inst)) << "it=" << it << " p=" << p;
  }
}

TEST(Generators, BurstyIsFeasibleWhenSized) {
  const std::uint64_t seed = testing::seed_for(3);
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  Instance inst = gen_bursty(rng, 4, 3, 30, 8, 1);
  EXPECT_EQ(inst.n(), 12u);
  EXPECT_TRUE(is_feasible(inst));
}

TEST(Generators, MultiIntervalAnchored) {
  const std::uint64_t seed = testing::seed_for(4);
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  Instance inst = gen_multi_interval(rng, 8, 30, 3, 2);
  EXPECT_TRUE(is_feasible(inst));
  EXPECT_LE(inst.max_intervals_per_job(), 3u);
}

TEST(Generators, UnitPointsAnchored) {
  const std::uint64_t seed = testing::seed_for(5);
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  Instance inst = gen_unit_points(rng, 8, 20, 3);
  EXPECT_TRUE(is_feasible(inst));
  for (const Job& j : inst.jobs) {
    EXPECT_LE(j.allowed.size(), 3);
  }
}

TEST(Generators, AdversarialShape) {
  Instance inst = gen_online_adversarial(5);
  EXPECT_EQ(inst.n(), 10u);
  EXPECT_TRUE(is_feasible(inst));
  // Tight jobs have unit slack.
  for (std::size_t j = 5; j < 10; ++j) {
    EXPECT_EQ(inst.jobs[j].allowed.size(), 2);
  }
}

TEST(Generators, DeterministicUnderSeed) {
  const std::uint64_t seed = testing::seed_for(77);
  GAPSCHED_TRACE_SEED(seed);
  Prng a(seed), b(seed);
  Instance ia = gen_uniform_one_interval(a, 10, 30, 4, 1);
  Instance ib = gen_uniform_one_interval(b, 10, 30, 4, 1);
  for (std::size_t j = 0; j < ia.n(); ++j) {
    EXPECT_EQ(ia.jobs[j].allowed, ib.jobs[j].allowed);
  }
}

}  // namespace
}  // namespace gapsched

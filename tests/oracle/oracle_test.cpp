// The oracle layer itself: hand-checked audits and refutations. The oracle
// is the layer everything else trusts, so its own tests avoid solvers
// entirely where possible and pin against hand-computed numbers.

#include "gapsched/oracle/oracle.hpp"

#include <gtest/gtest.h>

#include "gapsched/engine/engine.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/util/prng.hpp"
#include "../support/test_seed.hpp"

namespace gapsched::oracle {
namespace {

using engine::Objective;
using engine::SolveRequest;
using engine::SolveResult;

// ------------------------------------------------------------------ audit --

TEST(OracleAudit, EmptyScheduleOfEmptyInstance) {
  const ScheduleAudit a = audit_schedule(Instance{}, Schedule{});
  EXPECT_TRUE(a.valid);
  EXPECT_TRUE(a.complete);
  EXPECT_EQ(a.scheduled, 0u);
  EXPECT_EQ(a.transitions, 0);
  EXPECT_EQ(a.spans, 0);
  EXPECT_DOUBLE_EQ(min_power(a, 3.0), 0.0);
}

TEST(OracleAudit, HandComputedCosts) {
  // One processor; busy at {0, 1, 2, 5, 9}: 3 spans, 3 transitions.
  Instance inst = Instance::one_interval(
      {{0, 0}, {1, 1}, {2, 2}, {5, 5}, {9, 9}});
  Schedule s(5);
  for (std::size_t i = 0; i < 5; ++i) {
    s.place(i, inst.jobs[i].release());
  }
  const ScheduleAudit a = audit_schedule(inst, s);
  ASSERT_TRUE(a.valid) << a.violation_summary();
  EXPECT_EQ(a.busy_time, 5);
  EXPECT_EQ(a.max_occupancy, 1);
  EXPECT_EQ(a.transitions, 3);
  EXPECT_EQ(a.spans, 3);
  // Gaps: 2 (between 2 and 5) and 3 (between 5 and 9). With alpha = 2.5
  // the first is bridged (2 < 2.5), the second sleeps (pay alpha):
  // 5 busy + 2.5 initial wake + 2 bridge + 2.5 re-wake = 12.
  EXPECT_DOUBLE_EQ(min_power(a, 2.5), 12.0);
  // Huge alpha: bridge everything; one wake + busy + all idle bridged.
  EXPECT_DOUBLE_EQ(min_power(a, 100.0), 5.0 + 100.0 + 2.0 + 3.0);
  // alpha = 0: wake-ups free, sleep in every gap.
  EXPECT_DOUBLE_EQ(min_power(a, 0.0), 5.0);
}

TEST(OracleAudit, MultiprocessorStaircaseCosts) {
  // p = 2, occupancy {t0: 2, t1: 1, t3: 2}: staircase transitions =
  // 2 + 0 + 2 = 4 (both levels wake at 0; both re-wake at 3), spans = 2.
  Instance inst = Instance::one_interval(
      {{0, 0}, {0, 0}, {1, 1}, {3, 3}, {3, 3}}, 2);
  Schedule s(5);
  for (std::size_t i = 0; i < 5; ++i) s.place(i, inst.jobs[i].release());
  const ScheduleAudit a = audit_schedule(inst, s);
  ASSERT_TRUE(a.valid) << a.violation_summary();
  EXPECT_EQ(a.max_occupancy, 2);
  EXPECT_EQ(a.transitions, 4);
  EXPECT_EQ(a.spans, 2);
  // alpha = 1: level 1 has gap 1 (time 2) bridged at cost 1; level 2 has
  // gap {1, 2} of length 2, sleeping (cost alpha = 1) ties bridging's 2 —
  // pay min = 1. Total = 5 busy + 2 wakes + 1 + 1 = 9.
  EXPECT_DOUBLE_EQ(min_power(a, 1.0), 9.0);
}

TEST(OracleAudit, CollectsEveryViolation) {
  Instance inst = Instance::one_interval({{0, 2}, {0, 2}, {5, 6}}, 1);
  Schedule s(3);
  s.place(0, 1, 0);
  s.place(1, 1, 0);  // same time AND same processor as job 0 (p = 1: over
                     // capacity too)
  s.place(2, 3);     // outside [5, 6]
  const ScheduleAudit a = audit_schedule(inst, s);
  EXPECT_FALSE(a.valid);
  // Three distinct violations: disallowed time, capacity, collision.
  EXPECT_EQ(a.violations.size(), 3u) << a.violation_summary();
}

TEST(OracleAudit, IncompleteAndSizeMismatch) {
  Instance inst = Instance::one_interval({{0, 2}, {0, 2}});
  Schedule partial(2);
  partial.place(0, 0);
  EXPECT_FALSE(audit_schedule(inst, partial, true).valid);
  const ScheduleAudit relaxed = audit_schedule(inst, partial, false);
  EXPECT_TRUE(relaxed.valid);
  EXPECT_EQ(relaxed.scheduled, 1u);
  EXPECT_FALSE(relaxed.complete);

  EXPECT_FALSE(audit_schedule(inst, Schedule(3)).valid);
}

TEST(OracleAudit, OutOfRangeProcessor) {
  Instance inst = Instance::one_interval({{0, 2}}, 2);
  Schedule s(1);
  s.place(0, 0, 2);  // processors are 0 and 1
  EXPECT_FALSE(audit_schedule(inst, s).valid);
}

TEST(OracleAudit, AgreesWithProfileImplementation) {
  // Cross-implementation agreement on random schedules: the oracle's sweep
  // and core/profile.hpp were written independently and must coincide.
  for (std::uint64_t site = 0; site < 20; ++site) {
    const std::uint64_t seed = testing::seed_for(site);
    GAPSCHED_TRACE_SEED(seed);
    Prng rng(seed);
    const int p = 1 + static_cast<int>(rng.index(3));
    Instance inst = gen_feasible_one_interval(rng, 10, 14, 3, p);
    // Any allowed placement is fine for this comparison (may be invalid
    // w.r.t. capacity; restrict to an anchor-ish draw: each job at its
    // release, trimmed to capacity by skipping overfull times).
    Schedule s(inst.n());
    std::vector<std::pair<Time, int>> used;
    for (std::size_t i = 0; i < inst.n(); ++i) {
      for (const Interval& iv : inst.jobs[i].allowed.intervals()) {
        bool placed = false;
        for (Time t = iv.lo; t <= iv.hi && !placed; ++t) {
          int count = 0;
          for (const auto& [ut, uc] : used) {
            if (ut == t) count = uc;
          }
          if (count < p) {
            s.place(i, t);
            bool found = false;
            for (auto& [ut, uc] : used) {
              if (ut == t) {
                ++uc;
                found = true;
              }
            }
            if (!found) used.emplace_back(t, 1);
            placed = true;
          }
        }
        if (placed) break;
      }
    }
    const ScheduleAudit a = audit_schedule(inst, s, false);
    ASSERT_TRUE(a.valid) << a.violation_summary();
    const OccupancyProfile profile = s.profile();
    EXPECT_EQ(a.transitions, profile.transitions());
    EXPECT_EQ(a.spans, profile.spans());
    EXPECT_EQ(a.busy_time, profile.busy_time());
    EXPECT_EQ(a.max_occupancy, profile.max_occupancy());
    for (double alpha : {0.0, 0.5, 1.0, 2.5, 7.0}) {
      EXPECT_DOUBLE_EQ(min_power(a, alpha), profile.optimal_power(alpha))
          << "alpha=" << alpha;
    }
  }
}

// ----------------------------------------------------------- check_result --

SolveRequest gap_request(Instance inst) {
  SolveRequest req;
  req.instance = std::move(inst);
  req.objective = Objective::kGaps;
  return req;
}

TEST(OracleCheck, AcceptsHonestGapClaim) {
  Instance inst = Instance::one_interval({{0, 1}, {0, 1}});
  SolveResult res;
  res.ok = true;
  res.feasible = true;
  res.schedule = Schedule(2);
  res.schedule.place(0, 0);
  res.schedule.place(1, 1);
  res.transitions = 1;
  res.cost = 1.0;
  res.stats.scheduled = 2;
  EXPECT_EQ(check_result(gap_request(inst), res, true), "");
}

TEST(OracleCheck, RefutesWrongTransitionCount) {
  Instance inst = Instance::one_interval({{0, 1}, {0, 1}});
  SolveResult res;
  res.ok = true;
  res.feasible = true;
  res.schedule = Schedule(2);
  res.schedule.place(0, 0);
  res.schedule.place(1, 1);
  res.transitions = 2;  // lie: the schedule has 1
  res.cost = 2.0;
  res.stats.scheduled = 2;
  EXPECT_NE(check_result(gap_request(inst), res, true), "");
}

TEST(OracleCheck, RefutesInvalidSchedule) {
  Instance inst = Instance::one_interval({{0, 1}, {5, 6}});
  SolveResult res;
  res.ok = true;
  res.feasible = true;
  res.schedule = Schedule(2);
  res.schedule.place(0, 0);
  res.schedule.place(1, 0);  // job 1 outside its window, and over capacity
  res.transitions = 1;
  res.cost = 1.0;
  res.stats.scheduled = 2;
  const std::string diag = check_result(gap_request(inst), res, true);
  EXPECT_NE(diag.find("invalid schedule"), std::string::npos) << diag;
}

TEST(OracleCheck, PowerClaimBelowFloorIsRefuted) {
  Instance inst = Instance::one_interval({{0, 0}, {9, 9}});
  SolveRequest req;
  req.instance = inst;
  req.objective = Objective::kPower;
  req.params.alpha = 2.0;
  SolveResult res;
  res.ok = true;
  res.feasible = true;
  res.schedule = Schedule(2);
  res.schedule.place(0, 0);
  res.schedule.place(1, 9);
  res.stats.scheduled = 2;
  // Floor: 2 busy + 2 wake + 2 re-wake (gap 8 > alpha) = 6.
  res.cost = 6.0;
  EXPECT_EQ(check_result(req, res, true), "");
  res.cost = 5.0;  // below any execution of this schedule
  EXPECT_NE(check_result(req, res, false), "");
  res.cost = 7.5;  // a heuristic may overpay...
  EXPECT_EQ(check_result(req, res, false), "");
  EXPECT_NE(check_result(req, res, true), "");  // ...an exact solver may not
}

TEST(OracleCheck, ThroughputBudgetIsEnforced) {
  Instance inst = Instance::one_interval({{0, 0}, {5, 5}, {10, 10}});
  SolveRequest req;
  req.instance = inst;
  req.objective = Objective::kThroughput;
  req.params.max_spans = 2;
  SolveResult res;
  res.ok = true;
  res.feasible = true;
  res.schedule = Schedule(3);
  res.schedule.place(0, 0);
  res.schedule.place(1, 5);
  res.stats.scheduled = 2;
  res.cost = 2.0;
  EXPECT_EQ(check_result(req, res, false), "");

  res.schedule.place(2, 10);  // three spans on a budget of two
  res.stats.scheduled = 3;
  res.cost = 3.0;
  const std::string diag = check_result(req, res, false);
  EXPECT_NE(diag.find("spans"), std::string::npos) << diag;
}

TEST(OracleCheck, RejectionsAndInfeasiblePassTrivially) {
  SolveResult rejected = SolveResult::rejected("nope");
  EXPECT_EQ(check_result(SolveRequest{}, rejected, true), "");
  SolveResult infeasible;
  infeasible.ok = true;
  infeasible.feasible = false;
  EXPECT_EQ(check_result(SolveRequest{}, infeasible, true), "");
}

// --------------------------------------------------------- engine wiring --

/// Cache-off engine for the validate-flag pins (fresh solves, fresh audits).
engine::Engine& oracle_engine() {
  static engine::Engine eng({.cache = false});
  return eng;
}

TEST(OracleEngine, ValidateFlagAuditsRealSolves) {
  for (std::uint64_t site = 0; site < 6; ++site) {
    const std::uint64_t seed = testing::seed_for(1000 + site);
    GAPSCHED_TRACE_SEED(seed);
    Prng rng(seed);
    SolveRequest req;
    req.instance = gen_feasible_one_interval(rng, 8, 14, 3, 1);
    req.objective = Objective::kGaps;
    req.params.validate = true;
    const SolveResult r = oracle_engine().solve("gap_dp", req);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.audited);
    EXPECT_EQ(r.audit_error, "") << r.audit_error;

    req.objective = Objective::kPower;
    req.params.alpha = 2.5;
    const SolveResult p = oracle_engine().solve("power_dp", req);
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_TRUE(p.audited);
    EXPECT_EQ(p.audit_error, "") << p.audit_error;
  }
}

TEST(OracleEngine, ValidateOffMeansNoAudit) {
  SolveRequest req;
  req.instance = Instance::one_interval({{0, 1}});
  req.objective = Objective::kGaps;
  const SolveResult r = oracle_engine().solve("gap_dp", req);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.audited);
  EXPECT_EQ(r.audit_error, "");
}

}  // namespace
}  // namespace gapsched::oracle

// Scenario catalog: registry behaviour, per-seed determinism, and the
// advertised per-family guarantees (feasibility, shape, processor count)
// over a sweep of seeds.

#include "gapsched/scenarios/scenarios.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gapsched/io/serialize.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "../support/test_seed.hpp"

namespace gapsched::scenarios {
namespace {

TEST(ScenarioCatalog, HasTheExpectedFamilies) {
  const ScenarioCatalog& catalog = ScenarioCatalog::instance();
  EXPECT_GE(catalog.size(), 10u);
  const std::vector<std::string> names = catalog.names();
  const std::set<std::string> got(names.begin(), names.end());
  // The four seed generators plus the adversarial additions.
  for (const char* required :
       {"uniform_loose", "feasible_spread", "bursty_clusters",
        "multi_interval_decoys", "unit_points", "online_adversarial",
        "nested_windows", "sparse_spread", "power_longhaul", "hall_critical",
        "staircase_multiproc", "infeasible_by_one", "overloaded_point"}) {
    EXPECT_TRUE(got.count(required)) << required;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ScenarioCatalog, FindAndMakeAgree) {
  const ScenarioCatalog& catalog = ScenarioCatalog::instance();
  EXPECT_EQ(catalog.find("no_such_scenario"), nullptr);
  EXPECT_FALSE(make_scenario("no_such_scenario", 1).has_value());
  for (const Scenario* s : catalog.all()) {
    EXPECT_EQ(catalog.find(s->name), s);
    const auto inst = make_scenario(s->name, 42);
    ASSERT_TRUE(inst.has_value()) << s->name;
    EXPECT_EQ(instance_to_string(*inst), instance_to_string(s->make(42)))
        << s->name;
  }
}

TEST(ScenarioCatalog, DrawsAreDeterministicPerSeed) {
  for (const Scenario* s : ScenarioCatalog::instance().all()) {
    for (std::uint64_t seed : {1ull, 7ull, 12345678901234ull}) {
      EXPECT_EQ(instance_to_string(s->make(seed)),
                instance_to_string(s->make(seed)))
          << s->name << " seed " << seed;
    }
  }
}

TEST(ScenarioCatalog, DescriptorsMatchDraws) {
  for (const Scenario* s : ScenarioCatalog::instance().all()) {
    for (std::uint64_t site = 0; site < 8; ++site) {
      const std::uint64_t seed = testing::seed_for(site * 131 + s->jobs);
      GAPSCHED_TRACE_SEED(seed);
      const Instance inst = s->make(seed);
      EXPECT_EQ(inst.n(), s->jobs) << s->name;
      EXPECT_EQ(inst.processors, s->processors) << s->name;
      EXPECT_EQ(inst.validate(), "") << s->name;
      if (s->one_interval) {
        EXPECT_TRUE(inst.is_one_interval()) << s->name;
      }
      if (s->always_feasible) {
        EXPECT_TRUE(is_feasible(inst)) << s->name << " seed " << seed;
      }
      if (s->always_infeasible) {
        EXPECT_FALSE(is_feasible(inst)) << s->name << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace gapsched::scenarios

// Scenario catalog: registry behaviour, per-seed determinism, and the
// advertised per-family guarantees (feasibility, shape, processor count)
// over a sweep of seeds.

#include "gapsched/scenarios/scenarios.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gapsched/io/serialize.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "../support/test_seed.hpp"

namespace gapsched::scenarios {
namespace {

TEST(ScenarioCatalog, HasTheExpectedFamilies) {
  const ScenarioCatalog& catalog = ScenarioCatalog::instance();
  EXPECT_GE(catalog.size(), 10u);
  const std::vector<std::string> names = catalog.names();
  const std::set<std::string> got(names.begin(), names.end());
  // The four seed generators plus the adversarial additions.
  for (const char* required :
       {"uniform_loose", "feasible_spread", "bursty_clusters",
        "multi_interval_decoys", "unit_points", "online_adversarial",
        "nested_windows", "sparse_spread", "power_longhaul", "hall_critical",
        "staircase_multiproc", "infeasible_by_one", "overloaded_point",
        "straddled_clusters", "mega_mixed", "poly_chain"}) {
    EXPECT_TRUE(got.count(required)) << required;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ScenarioCatalog, FindAndMakeAgree) {
  const ScenarioCatalog& catalog = ScenarioCatalog::instance();
  EXPECT_EQ(catalog.find("no_such_scenario"), nullptr);
  EXPECT_FALSE(make_scenario("no_such_scenario", 1).has_value());
  for (const Scenario* s : catalog.all()) {
    EXPECT_EQ(catalog.find(s->name), s);
    const auto inst = make_scenario(s->name, 42);
    ASSERT_TRUE(inst.has_value()) << s->name;
    EXPECT_EQ(instance_to_string(*inst), instance_to_string(s->make(42)))
        << s->name;
  }
}

TEST(ScenarioCatalog, DrawsAreDeterministicPerSeed) {
  for (const Scenario* s : ScenarioCatalog::instance().all()) {
    for (std::uint64_t seed : {1ull, 7ull, 12345678901234ull}) {
      EXPECT_EQ(instance_to_string(s->make(seed)),
                instance_to_string(s->make(seed)))
          << s->name << " seed " << seed;
    }
  }
}

TEST(ScenarioCatalog, DescriptorsMatchDraws) {
  for (const Scenario* s : ScenarioCatalog::instance().all()) {
    for (std::uint64_t site = 0; site < 8; ++site) {
      const std::uint64_t seed = testing::seed_for(site * 131 + s->jobs);
      GAPSCHED_TRACE_SEED(seed);
      const Instance inst = s->make(seed);
      EXPECT_EQ(inst.n(), s->jobs) << s->name;
      EXPECT_EQ(inst.processors, s->processors) << s->name;
      EXPECT_EQ(inst.validate(), "") << s->name;
      if (s->one_interval) {
        EXPECT_TRUE(inst.is_one_interval()) << s->name;
      }
      if (s->always_feasible) {
        EXPECT_TRUE(is_feasible(inst)) << s->name << " seed " << seed;
      }
      if (s->always_infeasible) {
        EXPECT_FALSE(is_feasible(inst)) << s->name << " seed " << seed;
      }
    }
  }
}

TEST(ScenarioCatalog, MegaMixedMixesVerdictsAcrossSeeds) {
  // The mega-batch family advertises no per-seed guarantee; what it does
  // promise is that a modest seed sweep contains both verdicts.
  const Scenario* s = ScenarioCatalog::instance().find("mega_mixed");
  ASSERT_NE(s, nullptr);
  EXPECT_FALSE(s->always_feasible);
  EXPECT_FALSE(s->always_infeasible);
  int feasible = 0, infeasible = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    (is_feasible(s->make(seed)) ? feasible : infeasible) += 1;
  }
  EXPECT_GT(feasible, 0);
  EXPECT_GT(infeasible, 0);
}

TEST(ScenarioCatalog, StretchedWrapperDilatesDeadRunsOnly) {
  // The wrapper is a dynamic name: not in the static catalog, but
  // make_scenario resolves it against any base family, composing with
  // seeds. Dead runs of at least kStretchMinRun dilate by k; live spans
  // and the origin are untouched.
  EXPECT_EQ(ScenarioCatalog::instance().find("stretched:3:sparse_spread"),
            nullptr);
  const auto base = make_scenario("sparse_spread", 7);
  const auto wide = make_scenario("stretched:3:sparse_spread", 7);
  ASSERT_TRUE(base.has_value());
  ASSERT_TRUE(wide.has_value());
  ASSERT_EQ(wide->n(), base->n());
  EXPECT_EQ(wide->earliest_release(), base->earliest_release());
  EXPECT_GT(wide->latest_deadline() - wide->earliest_release(),
            base->latest_deadline() - base->earliest_release());
  for (std::size_t j = 0; j < base->n(); ++j) {
    EXPECT_EQ(wide->jobs[j].allowed.size(), base->jobs[j].allowed.size());
  }

  // Malformed wrapper specs are unknown names, not crashes or zero-dilation
  // draws.
  EXPECT_FALSE(make_scenario("stretched:sparse_spread", 7).has_value());
  EXPECT_FALSE(make_scenario("stretched:0:sparse_spread", 7).has_value());
  EXPECT_FALSE(make_scenario("stretched:3:", 7).has_value());
  EXPECT_FALSE(make_scenario("stretched:x:sparse_spread", 7).has_value());
  EXPECT_FALSE(make_scenario("stretched:3:no_such", 7).has_value());

  // Wrappers nest: stretching by 2 then 3 equals stretching by 6 on a
  // family whose dead runs are all at (or above) the dilation floor.
  const auto nested = make_scenario("stretched:2:stretched:3:sparse_spread", 7);
  const auto six = make_scenario("stretched:6:sparse_spread", 7);
  ASSERT_TRUE(nested.has_value() && six.has_value());
  EXPECT_EQ(instance_to_string(*nested), instance_to_string(*six));

  // The factor bound applies to the COMBINED dilation of nested layers, so
  // stacking per-layer-legal factors cannot multiply into Time overflow.
  EXPECT_TRUE(make_scenario("stretched:1000000:sparse_spread", 7).has_value());
  EXPECT_FALSE(
      make_scenario("stretched:1000000:stretched:1000000:sparse_spread", 7)
          .has_value());
  EXPECT_FALSE(make_scenario("stretched:1000001:sparse_spread", 7)
                   .has_value());
  // Factor 1 is the identity wrapper, not an unknown name.
  const auto one = make_scenario("stretched:1:sparse_spread", 7);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(instance_to_string(*one), instance_to_string(*base));
}

TEST(ScenarioCatalog, PolyScaleIsDynamicAndMatchesPolyChainShape) {
  // Dynamic name only: the static catalog must never feed thousand-job
  // draws to registry-wide sweeps that include the exponential solvers.
  EXPECT_EQ(ScenarioCatalog::instance().find("poly_scale:100"), nullptr);

  for (const std::size_t n : {std::size_t{1}, std::size_t{100},
                              std::size_t{500}, std::size_t{2000}}) {
    const auto inst = make_scenario("poly_scale:" + std::to_string(n), 7);
    ASSERT_TRUE(inst.has_value()) << n;
    EXPECT_EQ(inst->n(), n);
    EXPECT_EQ(inst->processors, 1);
    EXPECT_EQ(inst->validate(), "");
    EXPECT_TRUE(inst->is_one_interval());
  }
  // Feasible by construction at every size and seed (anchors strictly
  // increase); spot-check with the matching oracle at a bench-able size.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto inst = make_scenario("poly_scale:100", seed);
    ASSERT_TRUE(inst.has_value());
    EXPECT_TRUE(is_feasible(*inst)) << "seed " << seed;
  }
  // The static poly_chain family is the same generator pinned at n = 12.
  const auto chain = make_scenario("poly_chain", 7);
  const auto scaled = make_scenario("poly_scale:12", 7);
  ASSERT_TRUE(chain.has_value() && scaled.has_value());
  EXPECT_EQ(instance_to_string(*chain), instance_to_string(*scaled));

  // Deterministic per (name, seed); distinct across seeds.
  const auto again = make_scenario("poly_scale:500", 3);
  const auto same = make_scenario("poly_scale:500", 3);
  ASSERT_TRUE(again.has_value() && same.has_value());
  EXPECT_EQ(instance_to_string(*again), instance_to_string(*same));

  // Malformed or out-of-range sizes are unknown names, not crashes.
  EXPECT_FALSE(make_scenario("poly_scale:", 7).has_value());
  EXPECT_FALSE(make_scenario("poly_scale:0", 7).has_value());
  EXPECT_FALSE(make_scenario("poly_scale:x", 7).has_value());
  EXPECT_FALSE(make_scenario("poly_scale:5001", 7).has_value());
  EXPECT_FALSE(make_scenario("poly_scale:99999999999999999999", 7)
                   .has_value());

  // Composes under the stretch wrapper like any base family.
  const auto stretched = make_scenario("stretched:3:poly_scale:50", 7);
  ASSERT_TRUE(stretched.has_value());
  EXPECT_EQ(stretched->n(), 50u);
}

TEST(ScenarioCatalog, PolyWideIsOneConnectedWideRun) {
  // Dynamic-only, like poly_scale (never in catalog-wide sweeps).
  EXPECT_EQ(ScenarioCatalog::instance().find("poly_wide:100"), nullptr);

  for (const std::size_t n : {std::size_t{1}, std::size_t{20},
                              std::size_t{2000}}) {
    const auto inst = make_scenario("poly_wide:" + std::to_string(n), 7);
    ASSERT_TRUE(inst.has_value()) << n;
    EXPECT_EQ(inst->n(), n);
    EXPECT_EQ(inst->processors, 1);
    EXPECT_EQ(inst->validate(), "");
    EXPECT_TRUE(inst->is_one_interval());
  }

  // The family's whole point: windows chain into ONE connected usable run
  // (no dead run for the prep pipeline to compress or cut) whose length
  // grows ~600 slots per job — past n ~ 1750 that alone overflows the
  // exponential DPs' 2^20 candidate-time axis.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto inst = make_scenario("poly_wide:2000", seed);
    ASSERT_TRUE(inst.has_value());
    std::vector<std::pair<Time, Time>> windows;
    for (const Job& job : inst->jobs) {
      windows.push_back({job.release(), job.deadline()});
    }
    std::sort(windows.begin(), windows.end());
    Time covered_hi = windows.front().second;
    Time mass = 0;
    for (const auto& [lo, hi] : windows) {
      ASSERT_LE(lo, covered_hi + 1) << "hole before " << lo;
      covered_hi = std::max(covered_hi, hi);
      mass = covered_hi - windows.front().first + 1;
    }
    EXPECT_GT(mass, Time{1} << 20) << "seed " << seed;
  }

  // Feasible by construction at every seed; spot-check in range.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto inst = make_scenario("poly_wide:40", seed);
    ASSERT_TRUE(inst.has_value());
    EXPECT_TRUE(is_feasible(*inst)) << "seed " << seed;
  }

  // Deterministic per (name, seed); malformed sizes are unknown names.
  const auto a = make_scenario("poly_wide:50", 3);
  const auto b = make_scenario("poly_wide:50", 3);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(instance_to_string(*a), instance_to_string(*b));
  EXPECT_FALSE(make_scenario("poly_wide:", 7).has_value());
  EXPECT_FALSE(make_scenario("poly_wide:0", 7).has_value());
  EXPECT_FALSE(make_scenario("poly_wide:5001", 7).has_value());
}

}  // namespace
}  // namespace gapsched::scenarios

#include "gapsched/io/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gapsched/gen/generators.hpp"
#include "gapsched/io/csv.hpp"

namespace gapsched {
namespace {

TEST(Serialize, InstanceRoundTrip) {
  Instance inst;
  inst.processors = 3;
  inst.jobs.push_back(Job{TimeSet({{0, 5}})});
  inst.jobs.push_back(Job{TimeSet({{2, 3}, {10, 12}})});
  const std::string text = instance_to_string(inst);
  std::string error;
  auto parsed = instance_from_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->processors, 3);
  ASSERT_EQ(parsed->n(), 2u);
  EXPECT_EQ(parsed->jobs[0].allowed, inst.jobs[0].allowed);
  EXPECT_EQ(parsed->jobs[1].allowed, inst.jobs[1].allowed);
}

TEST(Serialize, RandomInstanceRoundTrips) {
  Prng rng(515);
  for (int it = 0; it < 10; ++it) {
    Instance inst = gen_multi_interval(rng, 6, 20, 3, 2, 2);
    auto parsed = instance_from_string(instance_to_string(inst));
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->n(), inst.n());
    for (std::size_t j = 0; j < inst.n(); ++j) {
      EXPECT_EQ(parsed->jobs[j].allowed, inst.jobs[j].allowed);
    }
  }
}

TEST(Serialize, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(instance_from_string("not an instance", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(instance_from_string("gapsched-instance v1\nprocessors 0\n",
                                    &error)
                   .has_value());
  EXPECT_FALSE(
      instance_from_string(
          "gapsched-instance v1\nprocessors 1\njobs 1\njob 1 5 3\n", &error)
          .has_value());  // empty interval
}

TEST(Serialize, CommentsAndBlanksIgnored) {
  const std::string text =
      "# a comment\n\ngapsched-instance v1\n"
      "processors 1  # inline\n\njobs 1\njob 1 0 4\n";
  auto parsed = instance_from_string(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->jobs[0].allowed, TimeSet::window(0, 4));
}

TEST(Serialize, ScheduleRoundTrip) {
  Schedule s(3);
  s.place(0, 7, 1);
  s.place(2, 9);
  std::ostringstream os;
  write_schedule(os, s);
  std::istringstream is(os.str());
  auto parsed = read_schedule(is);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->at(0)->time, 7);
  EXPECT_EQ(parsed->at(0)->processor, 1);
  EXPECT_FALSE(parsed->is_scheduled(1));
  EXPECT_EQ(parsed->at(2)->processor, Placement::kUnassigned);
}

TEST(Csv, WritesFile) {
  Table t({"x", "y"});
  t.row().add(1).add(2);
  const std::string path = "/tmp/gapsched_csv_test.csv";
  ASSERT_TRUE(write_csv(path, t));
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "x,y");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gapsched

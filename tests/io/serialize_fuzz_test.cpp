// Robustness fuzzing of the instance parser: mutated documents must either
// parse to a well-formed instance or fail cleanly with a diagnostic — never
// crash and never produce an invalid Instance.

#include <gtest/gtest.h>

#include "gapsched/gen/generators.hpp"
#include "gapsched/io/serialize.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

class SerializeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SerializeFuzz, MutatedDocumentsHandledCleanly) {
  const std::uint64_t seed =
      testing::seed_for(100 + static_cast<std::uint64_t>(GetParam()));
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  Instance inst = gen_multi_interval(rng, 5, 15, 2, 2);
  std::string text = instance_to_string(inst);

  // Apply 1-4 random byte mutations (replace, delete, insert).
  const int mutations = 1 + static_cast<int>(rng.index(4));
  for (int mu = 0; mu < mutations && !text.empty(); ++mu) {
    const std::size_t pos = rng.index(text.size());
    const int kind = static_cast<int>(rng.index(3));
    const char c = static_cast<char>('0' + rng.index(75));
    if (kind == 0) {
      text[pos] = c;
    } else if (kind == 1) {
      text.erase(pos, 1);
    } else {
      text.insert(pos, 1, c);
    }
  }

  std::string error;
  auto parsed = instance_from_string(text, &error);
  if (parsed.has_value()) {
    // Whatever parsed must be internally consistent.
    EXPECT_EQ(parsed->validate(), "");
    for (const Job& j : parsed->jobs) {
      EXPECT_FALSE(j.allowed.empty());
    }
  } else {
    EXPECT_FALSE(error.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Mutations, SerializeFuzz, ::testing::Range(0, 60));

TEST(SerializeFuzz, TruncationsHandledCleanly) {
  const std::uint64_t seed = testing::seed_for(99);
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  Instance inst = gen_multi_interval(rng, 4, 12, 2, 2);
  const std::string text = instance_to_string(inst);
  for (std::size_t len = 0; len < text.size(); len += 3) {
    std::string error;
    auto parsed = instance_from_string(text.substr(0, len), &error);
    if (parsed.has_value()) {
      EXPECT_EQ(parsed->validate(), "");
    }
  }
}

}  // namespace
}  // namespace gapsched

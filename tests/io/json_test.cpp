// io/json.hpp — the engine's JSON request/response codec: round trips,
// default handling, and malformed-document rejection.

#include <gtest/gtest.h>

#include <cmath>

#include "gapsched/engine/engine.hpp"
#include "gapsched/io/json.hpp"

namespace gapsched::io {
namespace {

using engine::Objective;
using engine::SolveRequest;
using engine::SolveResult;

TEST(JsonCodec, RequestRoundTripsThroughTheWireFormat) {
  SolveRequest request;
  request.objective = Objective::kPower;
  request.params.alpha = 2.5;
  request.params.max_spans = 3;
  request.params.powerdown_threshold = 1.25;
  request.params.swap_size = 1;
  request.params.block_size = 4;
  request.params.time_limit_s = 0.5;
  request.params.validate = true;
  request.params.decompose = false;
  request.instance.processors = 2;
  request.instance.jobs.push_back(Job{TimeSet::window(0, 5)});
  request.instance.jobs.push_back(
      Job{TimeSet{{Interval{2, 3}, Interval{8, 9}}}});

  const std::string text = request_to_json("power_dp", request);
  std::string solver, error;
  const auto parsed = request_from_json(text, &solver, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(solver, "power_dp");
  EXPECT_EQ(parsed->objective, Objective::kPower);
  EXPECT_DOUBLE_EQ(parsed->params.alpha, 2.5);
  EXPECT_EQ(parsed->params.max_spans, 3u);
  EXPECT_DOUBLE_EQ(parsed->params.powerdown_threshold, 1.25);
  EXPECT_EQ(parsed->params.swap_size, 1);
  EXPECT_EQ(parsed->params.block_size, 4);
  EXPECT_DOUBLE_EQ(parsed->params.time_limit_s, 0.5);
  EXPECT_TRUE(parsed->params.validate);
  EXPECT_FALSE(parsed->params.decompose);
  EXPECT_EQ(parsed->instance.processors, 2);
  ASSERT_EQ(parsed->instance.n(), 2u);
  EXPECT_EQ(parsed->instance.jobs[0].allowed, request.instance.jobs[0].allowed);
  EXPECT_EQ(parsed->instance.jobs[1].allowed, request.instance.jobs[1].allowed);
}

TEST(JsonCodec, OmittedParamsKeepDefaults) {
  std::string solver, error;
  const auto parsed = request_from_json(
      R"({"solver": "gap_dp", "instance": {"jobs": [[[0, 4]], [[2, 6]]]}})",
      &solver, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(solver, "gap_dp");
  EXPECT_EQ(parsed->objective, Objective::kGaps);
  EXPECT_EQ(parsed->instance.processors, 1);
  EXPECT_DOUBLE_EQ(parsed->params.alpha, 2.0);
  EXPECT_TRUE(parsed->params.decompose);
}

TEST(JsonCodec, ResultRoundTripsIncludingTheSchedule) {
  // A real engine answer, not a hand-built document.
  engine::Engine eng;
  SolveRequest request;
  request.instance = Instance::one_interval({{0, 3}, {1, 4}, {10, 12}});
  request.params.validate = true;
  const SolveResult solved = eng.solve("gap_dp", request);
  ASSERT_TRUE(solved.ok) << solved.error;

  std::string error;
  const auto parsed = result_from_json(result_to_json(solved), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->ok, solved.ok);
  EXPECT_EQ(parsed->feasible, solved.feasible);
  EXPECT_DOUBLE_EQ(parsed->cost, solved.cost);
  EXPECT_EQ(parsed->transitions, solved.transitions);
  EXPECT_EQ(parsed->audited, solved.audited);
  EXPECT_EQ(parsed->audit_error, solved.audit_error);
  EXPECT_EQ(parsed->stats.states, solved.stats.states);
  EXPECT_EQ(parsed->stats.components, solved.stats.components);
  EXPECT_EQ(parsed->schedule, solved.schedule);
}

TEST(JsonCodec, EverySolveStatsFieldRoundTrips) {
  // Hand-fill every field of the stats struct with a distinct value so a
  // writer or reader that drops one is caught here, not by a consumer.
  SolveResult r;
  r.ok = true;
  r.feasible = true;
  r.cost = 7.5;
  r.transitions = 3;
  r.stats.wall_ms = 12.25;
  r.stats.states = 101;
  r.stats.nodes = 102;
  r.stats.scheduled = 103;
  r.stats.components = 104;
  r.stats.cache_hit = true;
  r.stats.component_cache_hits = 105;
  r.stats.components_deduped = 106;
  r.stats.dead_time_removed = -107;
  r.stats.memo_arena_solves = 108;
  r.stats.memo_hash_solves = 109;
  r.stats.memo_parallel_solves = 110;
  r.stats.memo_find_calls = 111;
  r.stats.memo_probe_steps = 112;
  r.stats.memo_pruned = 113;
  for (std::size_t i = 0; i < engine::kPipelineStageCount; ++i) {
    r.stats.stages[i].ran = (i % 2) == 0;
    r.stats.stages[i].ms = 0.5 * static_cast<double>(i + 1);
  }

  std::string error;
  const auto parsed = result_from_json(result_to_json(r), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const engine::SolveStats& s = parsed->stats;
  EXPECT_DOUBLE_EQ(s.wall_ms, 12.25);
  EXPECT_EQ(s.states, 101u);
  EXPECT_EQ(s.nodes, 102u);
  EXPECT_EQ(s.scheduled, 103u);
  EXPECT_EQ(s.components, 104u);
  EXPECT_TRUE(s.cache_hit);
  EXPECT_EQ(s.component_cache_hits, 105u);
  EXPECT_EQ(s.components_deduped, 106u);
  EXPECT_EQ(s.dead_time_removed, -107);
  EXPECT_EQ(s.memo_arena_solves, 108u);
  EXPECT_EQ(s.memo_hash_solves, 109u);
  EXPECT_EQ(s.memo_parallel_solves, 110u);
  EXPECT_EQ(s.memo_find_calls, 111u);
  EXPECT_EQ(s.memo_probe_steps, 112u);
  EXPECT_EQ(s.memo_pruned, 113u);
  for (std::size_t i = 0; i < engine::kPipelineStageCount; ++i) {
    EXPECT_EQ(s.stages[i].ran, (i % 2) == 0) << "stage " << i;
    EXPECT_DOUBLE_EQ(s.stages[i].ms, 0.5 * static_cast<double>(i + 1))
        << "stage " << i;
  }
}

TEST(JsonCodec, MalformedStageEntriesAreRejected) {
  std::string error;
  // Unknown stage names and non-object entries are diagnostics, not
  // silently dropped keys.
  EXPECT_FALSE(result_from_json(
                   R"({"ok": true,
                       "stats": {"stages": {"warp": {"ran": true, "ms": 1}}}})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("warp"), std::string::npos) << error;
  EXPECT_FALSE(result_from_json(
                   R"({"ok": true, "stats": {"stages": {"dispatch": 3}}})",
                   &error)
                   .has_value());
  EXPECT_FALSE(
      result_from_json(R"({"ok": true, "stats": {"stages": []}})", &error)
          .has_value());
}

TEST(JsonCodec, RejectedAndInfeasibleResultsRoundTrip) {
  SolveResult rejected = SolveResult::rejected("out of envelope");
  std::string error;
  auto parsed = result_from_json(result_to_json(rejected), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->error, "out of envelope");

  SolveResult infeasible;
  infeasible.ok = true;
  infeasible.feasible = false;
  parsed = result_from_json(result_to_json(infeasible), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->ok);
  EXPECT_FALSE(parsed->feasible);
  EXPECT_EQ(parsed->schedule.size(), 0u);
}

TEST(JsonCodec, MalformedDocumentsAreRejectedWithDiagnostics) {
  std::string solver, error;
  EXPECT_FALSE(request_from_json("", &solver, &error).has_value());
  EXPECT_FALSE(error.empty());

  EXPECT_FALSE(request_from_json("[1, 2]", &solver, &error).has_value());
  EXPECT_FALSE(
      request_from_json(R"({"instance": {"jobs": []}})", &solver, &error)
          .has_value());  // no solver
  EXPECT_FALSE(request_from_json(
                   R"({"solver": "gap_dp", "objective": "profit",
                       "instance": {"jobs": []}})",
                   &solver, &error)
                   .has_value());  // unknown objective
  EXPECT_FALSE(request_from_json(
                   R"({"solver": "gap_dp",
                       "instance": {"jobs": [[[0]]]}})",
                   &solver, &error)
                   .has_value());  // interval is not a pair
  EXPECT_FALSE(request_from_json(
                   R"({"solver": "gap_dp", "instance": {"jobs": []}} x)",
                   &solver, &error)
                   .has_value());  // trailing garbage

  // Out-of-range integers must be parse errors, not silent truncations
  // to plausible-looking values.
  EXPECT_FALSE(request_from_json(
                   R"({"solver": "gap_dp",
                       "instance": {"processors": 4294967297,
                                    "jobs": [[[0, 4]]]}})",
                   &solver, &error)
                   .has_value());
  EXPECT_FALSE(request_from_json(
                   R"({"solver": "powermin_approx",
                       "params": {"swap_size": 4294967298},
                       "instance": {"jobs": [[[0, 4]]]}})",
                   &solver, &error)
                   .has_value());

  EXPECT_FALSE(result_from_json("{", &error).has_value());
  EXPECT_FALSE(
      result_from_json(R"({"ok": true, "schedule": {"jobs": 1,
                           "slots": [{"job": 5, "time": 0,
                                      "processor": -1}]}})",
                       &error)
          .has_value());  // slot out of range
}

TEST(JsonCodec, DuplicateKeysAreRejected) {
  // A duplicated key is ambiguous (first-wins vs last-wins depends on the
  // reader), so the codec refuses the document with a diagnostic naming
  // the key — at the top level, inside params, and inside nested objects.
  std::string solver, error;
  EXPECT_FALSE(request_from_json(
                   R"({"solver": "gap_dp", "solver": "power_dp",
                       "instance": {"jobs": [[[0, 4]]]}})",
                   &solver, &error)
                   .has_value());
  EXPECT_NE(error.find("duplicate object key"), std::string::npos) << error;
  EXPECT_NE(error.find("solver"), std::string::npos) << error;

  EXPECT_FALSE(request_from_json(
                   R"({"solver": "power_dp",
                       "params": {"alpha": 1, "alpha": 9},
                       "instance": {"jobs": [[[0, 4]]]}})",
                   &solver, &error)
                   .has_value());
  EXPECT_NE(error.find("duplicate object key 'alpha'"), std::string::npos)
      << error;

  EXPECT_FALSE(
      result_from_json(R"({"ok": true, "cost": 1, "cost": 2})", &error)
          .has_value());
  EXPECT_NE(error.find("duplicate object key 'cost'"), std::string::npos)
      << error;

  // Identical keys in DIFFERENT objects are fine (two slots both have
  // "job" fields).
  const auto ok = result_from_json(
      R"({"ok": true, "schedule": {"jobs": 2, "slots": [
            {"job": 0, "time": 1, "processor": -1},
            {"job": 1, "time": 2, "processor": -1}]}})",
      &error);
  EXPECT_TRUE(ok.has_value()) << error;
}

TEST(JsonCodec, EveryTruncationOfAValidDocumentIsACleanError) {
  // Truncated wire input at every byte boundary: never a crash, never a
  // silent success, always a diagnostic.
  SolveRequest request;
  request.instance = Instance::one_interval({{0, 5}, {2, 3}});
  request.params.alpha = 2.5;
  const std::string full = request_to_json("power_dp", request);
  std::string solver, error;
  for (std::size_t len = 0; len < full.size(); ++len) {
    error.clear();
    const auto parsed =
        request_from_json(full.substr(0, len), &solver, &error);
    EXPECT_FALSE(parsed.has_value()) << "prefix length " << len;
    EXPECT_FALSE(error.empty()) << "prefix length " << len;
  }
  EXPECT_TRUE(request_from_json(full, &solver, &error).has_value()) << error;
}

TEST(JsonCodec, NumericOverflowIsACleanErrorNotATruncation) {
  std::string error;
  // An integer field fed a value past int64 must be a parse error (the
  // strtoll overflow path), not a wrapped or clamped plausible value.
  EXPECT_FALSE(
      result_from_json(
          R"({"ok": true, "transitions": 123456789012345678901234567890})",
          &error)
          .has_value());
  EXPECT_FALSE(error.empty());
  // Same for a stats counter.
  EXPECT_FALSE(result_from_json(
                   R"({"ok": true,
                       "stats": {"states": 99999999999999999999999999}})",
                   &error)
                   .has_value());
  // A double field with an overflowing exponent parses to infinity rather
  // than crashing; the request stays well-formed and downstream range
  // checks own the verdict.
  std::string solver;
  const auto inf_alpha = request_from_json(
      R"({"solver": "power_dp", "params": {"alpha": 1e99999},
          "instance": {"jobs": [[[0, 4]]]}})",
      &solver, &error);
  ASSERT_TRUE(inf_alpha.has_value()) << error;
  EXPECT_TRUE(std::isinf(inf_alpha->params.alpha));
}

TEST(JsonCodec, StringEscapesSurvive) {
  SolveResult r = SolveResult::rejected("line\none\t\"quoted\" \\ back");
  std::string error;
  const auto parsed = result_from_json(result_to_json(r), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->error, "line\none\t\"quoted\" \\ back");
}

TEST(JsonCodec, CacheStatsRoundTrip) {
  engine::CacheStats stats;
  stats.hits = 101;
  stats.misses = 17;
  stats.insertions = 15;
  stats.evictions = 2;
  stats.entries = 13;
  stats.capacity = 64;
  stats.disk_hits = 9;
  stats.disk_rejects = 4;
  stats.spilled = 21;
  stats.disk_entries = 19;
  std::string error;
  const auto parsed = cache_stats_from_json(cache_stats_to_json(stats), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->hits, 101u);
  EXPECT_EQ(parsed->misses, 17u);
  EXPECT_EQ(parsed->insertions, 15u);
  EXPECT_EQ(parsed->evictions, 2u);
  EXPECT_EQ(parsed->entries, 13u);
  EXPECT_EQ(parsed->capacity, 64u);
  EXPECT_EQ(parsed->disk_hits, 9u);
  EXPECT_EQ(parsed->disk_rejects, 4u);
  EXPECT_EQ(parsed->spilled, 21u);
  EXPECT_EQ(parsed->disk_entries, 19u);
}

TEST(JsonCodec, CacheStatsToleratesMissingFields) {
  // Forward compatibility: a stats document from an older writer (or a
  // trimmed stats frame) parses with the absent tallies at zero.
  std::string error;
  const auto parsed =
      cache_stats_from_json(R"({"gapsched": "cache_stats", "hits": 3})",
                            &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->hits, 3u);
  EXPECT_EQ(parsed->misses, 0u);
  EXPECT_EQ(parsed->capacity, 0u);
  // A mistyped tally is still an error, not a silent zero.
  EXPECT_FALSE(
      cache_stats_from_json(R"({"hits": "three"})", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(JsonCodec, PipelineStatsRoundTripPerStage) {
  engine::pipeline::PipelineStats stats;
  stats.requests = 42;
  for (std::size_t i = 0; i < engine::kPipelineStageCount; ++i) {
    stats.stages[i].runs = 10 * i + 1;
    stats.stages[i].skips = i;
    stats.stages[i].total_ms = 0.25 * static_cast<double>(i);
  }
  std::string error;
  const auto parsed =
      pipeline_stats_from_json(pipeline_stats_to_json(stats), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->requests, 42u);
  for (std::size_t i = 0; i < engine::kPipelineStageCount; ++i) {
    EXPECT_EQ(parsed->stages[i].runs, stats.stages[i].runs) << i;
    EXPECT_EQ(parsed->stages[i].skips, stats.stages[i].skips) << i;
    EXPECT_DOUBLE_EQ(parsed->stages[i].total_ms, stats.stages[i].total_ms)
        << i;
  }
}

TEST(JsonCodec, PipelineStatsToleratesMissingStagesAndRejectsUnknownOnes) {
  std::string error;
  const auto bare = pipeline_stats_from_json(R"({"requests": 7})", &error);
  ASSERT_TRUE(bare.has_value()) << error;
  EXPECT_EQ(bare->requests, 7u);
  for (std::size_t i = 0; i < engine::kPipelineStageCount; ++i) {
    EXPECT_EQ(bare->stages[i].runs, 0u);
  }
  // A subset of stages is fine (missing ones stay zero)…
  const auto partial = pipeline_stats_from_json(
      R"({"requests": 7,
          "stages": {"dispatch": {"runs": 5, "skips": 2, "total_ms": 1.5}}})",
      &error);
  ASSERT_TRUE(partial.has_value()) << error;
  EXPECT_EQ(
      partial->stages[static_cast<std::size_t>(
                          engine::PipelineStage::kDispatch)]
          .runs,
      5u);
  // …but a stage name the enum does not know is a hard error: it means a
  // writer/reader version skew the tallies cannot absorb silently.
  EXPECT_FALSE(pipeline_stats_from_json(
                   R"({"stages": {"warp_drive": {"runs": 1}}})", &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

TEST(JsonCodec, ServerStatsRoundTripWithShards) {
  ServerStatsWire wire;
  wire.cache.hits = 9;
  wire.cache.misses = 4;
  wire.pipeline.requests = 13;
  for (std::int64_t s = 0; s < 3; ++s) {
    ShardStatsWire shard;
    shard.shard = s;
    shard.requests = 10 + static_cast<std::uint64_t>(s);
    shard.rejected = 1;
    shard.timed_out = 2;
    shard.refuted = 0;
    shard.cache_hits = 5;
    shard.component_cache_hits = 7;
    shard.pipeline.requests = shard.requests;
    wire.shards.push_back(shard);
  }
  std::string error;
  const auto parsed = server_stats_from_json(server_stats_to_json(wire),
                                             &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->cache.hits, 9u);
  EXPECT_EQ(parsed->pipeline.requests, 13u);
  ASSERT_EQ(parsed->shards.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(parsed->shards[s].shard, static_cast<std::int64_t>(s));
    EXPECT_EQ(parsed->shards[s].requests, 10 + s);
    EXPECT_EQ(parsed->shards[s].timed_out, 2u);
    EXPECT_EQ(parsed->shards[s].component_cache_hits, 7u);
    EXPECT_EQ(parsed->shards[s].pipeline.requests, 10 + s);
  }
}

TEST(JsonCodec, FrameHeadParsesHeaderFieldsAndIgnoresTheBody) {
  std::string error;
  const auto head = frame_head_from_json(
      R"({"frame": "request", "id": 12, "deadline_ms": 250.5,
          "solver": "gap_dp", "instance": {"jobs": [[[0, 4]]]}})",
      &error);
  ASSERT_TRUE(head.has_value()) << error;
  EXPECT_EQ(head->frame, "request");
  EXPECT_EQ(head->id, 12);
  EXPECT_DOUBLE_EQ(head->deadline_ms, 250.5);
  // Defaults when absent: id -1, no deadline, empty message.
  const auto bare = frame_head_from_json(R"({"frame": "drain"})", &error);
  ASSERT_TRUE(bare.has_value()) << error;
  EXPECT_EQ(bare->id, -1);
  EXPECT_DOUBLE_EQ(bare->deadline_ms, 0.0);
  EXPECT_TRUE(bare->message.empty());
  // No "frame" discriminator → not a frame.
  EXPECT_FALSE(frame_head_from_json(R"({"id": 3})", &error).has_value());
  EXPECT_FALSE(error.empty());
  // A negative deadline is malformed, not a free pass.
  EXPECT_FALSE(frame_head_from_json(
                   R"({"frame": "request", "deadline_ms": -5})", &error)
                   .has_value());
}

}  // namespace
}  // namespace gapsched::io

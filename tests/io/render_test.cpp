#include "gapsched/io/render.hpp"

#include <gtest/gtest.h>

#include "gapsched/dp/gap_dp.hpp"

namespace gapsched {
namespace {

TEST(Render, EmptyInstance) {
  Instance inst;
  EXPECT_EQ(render_gantt(inst, Schedule(0)), "(empty instance)\n");
}

TEST(Render, SingleProcessorRow) {
  Instance inst = Instance::one_interval({{0, 2}, {0, 2}});
  Schedule s(2);
  s.place(0, 0, 0);
  s.place(1, 2, 0);
  const std::string g = render_gantt(inst, s);
  EXPECT_NE(g.find("P0"), std::string::npos);
  EXPECT_NE(g.find("0.1"), std::string::npos);  // busy, idle, busy
}

TEST(Render, MultiProcessorRows) {
  Instance inst = Instance::one_interval({{0, 1}, {0, 1}}, 2);
  Schedule s(2);
  s.place(0, 0);
  s.place(1, 0);
  const std::string g = render_gantt(inst, s);
  EXPECT_NE(g.find("P0"), std::string::npos);
  EXPECT_NE(g.find("P1"), std::string::npos);
}

TEST(Render, ElidesLongDeserts) {
  Instance inst = Instance::one_interval({{0, 0}, {1000, 1000}});
  Schedule s(2);
  s.place(0, 0, 0);
  s.place(1, 1000, 0);
  const std::string g = render_gantt(inst, s);
  EXPECT_NE(g.find("~999~"), std::string::npos);
  EXPECT_LT(g.size(), 200u);  // not a thousand columns
}

TEST(Render, StaircaseAppliedToUnassigned) {
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}}, 2);
  Schedule s(2);
  s.place(0, 0);  // no processor
  s.place(1, 0);
  const std::string g = render_gantt(inst, s);
  // Both processors show a job at time 0.
  EXPECT_NE(g.find("P0   0"), std::string::npos);
  EXPECT_NE(g.find("P1   1"), std::string::npos);
}

TEST(Render, DescribeSchedule) {
  Instance inst = Instance::one_interval({{0, 0}, {5, 5}});
  GapDpResult r = solve_gap_dp(inst);
  const std::string d = describe_schedule(r.schedule, 2.0);
  EXPECT_NE(d.find("transitions=2"), std::string::npos);
  EXPECT_NE(d.find("busy=2"), std::string::npos);
}

}  // namespace
}  // namespace gapsched

// Empirical validation of every Section 2/4/5 reduction's value
// correspondence, using exact solvers on both sides (experiments T4/T5/F6
// in miniature).

#include <gtest/gtest.h>

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/exact/brute_force.hpp"
#include "gapsched/exact/power_brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/reductions/arithmetic_embedding.hpp"
#include "gapsched/reductions/multi_to_three_unit.hpp"
#include "gapsched/reductions/multi_to_two_interval.hpp"
#include "gapsched/reductions/setcover_to_disjoint_unit.hpp"
#include "gapsched/reductions/setcover_to_powermin.hpp"
#include "gapsched/reductions/two_unit_disjoint.hpp"
#include "gapsched/setcover/setcover.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

// ---------- Theorem 4/5/6: set cover -> power min / gap scheduling ----------

TEST(SetCoverToPowerMin, StructureIsSane) {
  Prng rng(11);
  SetCoverInstance sc = gen_random_set_cover(rng, 6, 4, 3);
  SetCoverReduction red = reduce_setcover_to_powermin(sc);
  EXPECT_EQ(red.instance.n(), sc.universe + 1);
  EXPECT_EQ(red.instance.validate(), "");
  EXPECT_DOUBLE_EQ(red.alpha, 6.0);
  // Intervals are far apart.
  for (std::size_t i = 1; i < red.set_intervals.size(); ++i) {
    EXPECT_GT(red.set_intervals[i].lo - red.set_intervals[i - 1].hi, 6 * 6 * 6);
  }
}

TEST(SetCoverToPowerMin, Theorem5AlphaOverride) {
  Prng rng(12);
  SetCoverInstance sc = gen_random_set_cover(rng, 6, 4, 3);
  SetCoverReduction red = reduce_setcover_to_powermin(
      sc, static_cast<double>(sc.max_set_size()));
  EXPECT_DOUBLE_EQ(red.alpha, static_cast<double>(sc.max_set_size()));
}

class SetCoverGapEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SetCoverGapEquivalence, CoverEqualsTransitionsMinusOne) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 61 + 19);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  SetCoverInstance sc = gen_random_set_cover(rng, 5 + rng.index(3), 4, 3);
  const SetCoverResult cover = exact_set_cover(sc);
  ASSERT_TRUE(cover.coverable);

  SetCoverReduction red = reduce_setcover_to_powermin(sc);
  const ExactGapResult sched = brute_force_min_transitions(red.instance);
  ASSERT_TRUE(sched.feasible);
  // Theorem 6 value map.
  EXPECT_EQ(sched.transitions,
            SetCoverReduction::cover_to_transitions(cover.chosen.size()));
  // The cover read off the optimal schedule is a valid optimal cover.
  const auto extracted = red.cover_from_schedule(sched.schedule);
  EXPECT_TRUE(is_valid_cover(sc, extracted));
  EXPECT_EQ(extracted.size(), cover.chosen.size());
}

INSTANTIATE_TEST_SUITE_P(Random, SetCoverGapEquivalence,
                         ::testing::Range(0, 15));

class SetCoverPowerEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SetCoverPowerEquivalence, CoverDeterminesPower) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 67 + 23);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  SetCoverInstance sc = gen_random_set_cover(rng, 5, 4, 3);
  const SetCoverResult cover = exact_set_cover(sc);
  ASSERT_TRUE(cover.coverable);
  SetCoverReduction red = reduce_setcover_to_powermin(sc);
  const ExactPowerResult pw = brute_force_min_power(red.instance, red.alpha);
  ASSERT_TRUE(pw.feasible);
  EXPECT_NEAR(pw.power, red.cover_to_power(cover.chosen.size()), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Random, SetCoverPowerEquivalence,
                         ::testing::Range(0, 10));

// ---------- Theorem 7: multi-interval -> 2-interval ----------

class TwoIntervalEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TwoIntervalEquivalence, OptimaDifferByExtraBlock) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 71 + 31);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  // Small multi-interval instances with >= 3 intervals on some jobs.
  Instance inst;
  inst.processors = 1;
  const std::size_t n = 3;
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<Interval> ivs;
    const std::size_t k = 1 + rng.index(4);  // 1..4 intervals
    for (std::size_t i = 0; i < k; ++i) {
      const Time lo = rng.uniform(0, 14);
      ivs.push_back({lo, lo + rng.uniform(0, 1)});
    }
    inst.jobs.push_back(Job{TimeSet(std::move(ivs))});
  }
  TwoIntervalReduction red = reduce_multi_to_two_interval(inst);
  EXPECT_LE(red.instance.max_intervals_per_job(), 2u);

  const ExactGapResult orig = brute_force_min_transitions(inst);
  const ExactGapResult redu = brute_force_min_transitions(red.instance);
  ASSERT_EQ(orig.feasible, redu.feasible);
  if (orig.feasible) {
    EXPECT_EQ(redu.transitions, red.original_to_reduced(orig.transitions))
        << "extra block " << red.has_extra_block;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, TwoIntervalEquivalence,
                         ::testing::Range(0, 20));

// ---------- Theorem 8: multi-interval -> 3-unit ----------

class ThreeUnitEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ThreeUnitEquivalence, OptimaDifferByExtraBlock) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 73 + 37);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst;
  inst.processors = 1;
  for (std::size_t j = 0; j < 3; ++j) {
    std::vector<Time> pts;
    const std::size_t k = 1 + rng.index(5);  // 1..5 unit times
    for (std::size_t i = 0; i < k; ++i) pts.push_back(rng.uniform(0, 12));
    inst.jobs.push_back(Job{TimeSet::points(pts)});
  }
  ThreeUnitReduction red = reduce_multi_to_three_unit(inst);
  for (const Job& j : red.instance.jobs) {
    // A "3-unit" job semantically: at most three allowed times (adjacent
    // unit times may be stored as one merged interval).
    EXPECT_LE(j.allowed.size(), 3);
  }
  const ExactGapResult orig = brute_force_min_transitions(inst);
  const ExactGapResult redu = brute_force_min_transitions(red.instance);
  ASSERT_EQ(orig.feasible, redu.feasible);
  if (orig.feasible) {
    EXPECT_EQ(redu.transitions, red.original_to_reduced(orig.transitions));
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ThreeUnitEquivalence,
                         ::testing::Range(0, 20));

// ---------- Theorem 9: two-unit <-> disjoint-unit ----------

class TwoUnitDisjointEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(TwoUnitDisjointEquivalence, ForwardWithinOne) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 79 + 41);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  // Random feasible 2-unit instance.
  Instance inst = gen_unit_points(rng, 6, 14, 2);
  TwoUnitDisjointReduction red = reduce_two_unit_to_disjoint(inst);
  ASSERT_TRUE(red.feasible_input);

  const ExactGapResult a =
      brute_force_min_transitions(red.compressed_source.instance);
  ASSERT_TRUE(a.feasible);
  if (red.instance.n() == 0) return;  // complement is empty: nothing to check
  const ExactGapResult b = brute_force_min_transitions(red.instance);
  ASSERT_TRUE(b.feasible);
  EXPECT_LE(std::llabs(a.transitions - b.transitions), 1)
      << "two-unit opt " << a.transitions << " vs disjoint opt "
      << b.transitions;
}

TEST_P(TwoUnitDisjointEquivalence, BackwardWithinOne) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 83 + 43);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  // Random disjoint-unit instance: partition a ground set of times.
  Instance inst;
  inst.processors = 1;
  Time t = 0;
  for (int j = 0; j < 4; ++j) {
    std::vector<Time> pts;
    const std::size_t k = 1 + rng.index(3);
    for (std::size_t i = 0; i < k; ++i) {
      t += 1 + rng.uniform(0, 3);
      pts.push_back(t);
    }
    inst.jobs.push_back(Job{TimeSet::points(pts)});
  }
  TwoUnitDisjointReduction red = reduce_disjoint_to_two_unit(inst);
  ASSERT_TRUE(red.feasible_input);
  for (const Job& j : red.instance.jobs) EXPECT_LE(j.allowed.size(), 2);

  const ExactGapResult a =
      brute_force_min_transitions(red.compressed_source.instance);
  ASSERT_TRUE(a.feasible);
  if (red.instance.n() == 0) return;
  const ExactGapResult b = brute_force_min_transitions(red.instance);
  ASSERT_TRUE(b.feasible);
  EXPECT_LE(std::llabs(a.transitions - b.transitions), 1);
}

INSTANTIATE_TEST_SUITE_P(Random, TwoUnitDisjointEquivalence,
                         ::testing::Range(0, 20));

// ---------- Theorem 10: B-set cover -> disjoint-unit ----------

class DisjointUnitSetCover : public ::testing::TestWithParam<int> {};

TEST_P(DisjointUnitSetCover, TransitionsEqualCover) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 89 + 47);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  SetCoverInstance sc = gen_random_set_cover(rng, 5, 4, 3);
  const SetCoverResult cover = exact_set_cover(sc);
  ASSERT_TRUE(cover.coverable);

  DisjointUnitReduction red = reduce_setcover_to_disjoint_unit(sc);
  EXPECT_TRUE(red.instance.is_unit_points());
  const ExactGapResult sched = brute_force_min_transitions(red.instance);
  ASSERT_TRUE(sched.feasible);
  EXPECT_EQ(sched.transitions,
            DisjointUnitReduction::cover_to_transitions(cover.chosen.size()));
}

INSTANTIATE_TEST_SUITE_P(Random, DisjointUnitSetCover,
                         ::testing::Range(0, 12));

// ---------- Section 2: multiprocessor <-> arithmetic intervals ----------

class ArithmeticEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ArithmeticEquivalence, EmbeddedOptimumMatchesMultiprocessor) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 97 + 53);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  const int p = 2 + static_cast<int>(rng.index(2));
  Instance inst = gen_uniform_one_interval(rng, 5, 7, 3, p);

  ArithmeticEmbedding emb = embed_multiprocessor(inst);
  EXPECT_EQ(emb.embedded.processors, 1);
  for (const Job& j : emb.embedded.jobs) {
    EXPECT_EQ(j.allowed.interval_count(), static_cast<std::size_t>(p));
  }

  const ExactGapResult multi = brute_force_min_transitions(inst);
  const ExactGapResult single = brute_force_min_transitions(emb.embedded);
  ASSERT_EQ(multi.feasible, single.feasible);
  if (!multi.feasible) return;
  EXPECT_EQ(multi.transitions, single.transitions);
  // Unembedding yields a valid multiprocessor schedule of the same cost.
  Schedule back = emb.unembed_schedule(single.schedule);
  EXPECT_EQ(back.validate(inst), "");
  EXPECT_EQ(back.per_processor_transitions(inst), single.transitions);
}

INSTANTIATE_TEST_SUITE_P(Random, ArithmeticEquivalence,
                         ::testing::Range(0, 20));

// The multiproc DP agrees with the embedding too (ties Theorem 1 to the
// Section 2 observation).
TEST(ArithmeticEquivalence, DpMatchesEmbeddedBruteForce) {
  Prng rng(2024);
  for (int it = 0; it < 8; ++it) {
    Instance inst = gen_feasible_one_interval(rng, 6, 8, 2, 2);
    ArithmeticEmbedding emb = embed_multiprocessor(inst);
    const GapDpResult dp = solve_gap_dp(inst);
    const ExactGapResult single = brute_force_min_transitions(emb.embedded);
    ASSERT_TRUE(dp.feasible);
    ASSERT_TRUE(single.feasible);
    EXPECT_EQ(dp.transitions, single.transitions) << it;
  }
}

}  // namespace
}  // namespace gapsched

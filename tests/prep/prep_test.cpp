// gapsched::prep — canonicalization, independent-component decomposition,
// recombination, and the engine pipeline built on them:
//
//   * canonicalize() is idempotent and preserves the job multiset,
//   * decompose() cuts at separation threshold + 1 and not at threshold
//     (the exactly-n vs n+1 boundary the engine relies on),
//   * recombined optima equal the undecomposed optima (sum + zero bridge
//     term by the threshold construction) for both exact objectives,
//   * the engine pipeline fans components out, survives the oracle, and
//     the packed-key guard fires only when a single component is genuinely
//     too big.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gapsched/core/transforms.hpp"
#include "gapsched/dp/dp_common.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/oracle/oracle.hpp"
#include "gapsched/prep/prep.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

using engine::Objective;
using engine::SolveRequest;
using engine::SolveResult;

SolveRequest request(Instance inst, Objective obj, double alpha = 2.5,
                     bool decompose = true) {
  SolveRequest req;
  req.instance = std::move(inst);
  req.objective = obj;
  req.params.alpha = alpha;
  req.params.validate = true;
  req.params.decompose = decompose;
  return req;
}

/// These suites pin the stateless pipeline itself (decomposition,
/// compression, recombination), so the engine's solve cache stays off —
/// cache-on semantics live in tests/engine/engine_cache_test.cpp.
SolveResult engine_solve(const char* solver, const SolveRequest& req) {
  static engine::Engine eng({.cache = false});
  return eng.solve(solver, req);
}

// ----------------------------------------------------------- canonicalize --

TEST(Canonicalize, SortsShiftsAndMapsBack) {
  const Instance inst =
      Instance::one_interval({{12, 14}, {5, 9}, {5, 7}, {20, 21}}, 2);
  const prep::Canonical canon = prep::canonicalize(inst);
  ASSERT_EQ(canon.instance.n(), 4u);
  EXPECT_EQ(canon.shift, 5);
  EXPECT_EQ(canon.instance.processors, 2);
  // Sorted by (release, deadline), origin at 0.
  EXPECT_EQ(canon.instance.jobs[0].release(), 0);
  EXPECT_EQ(canon.instance.jobs[0].deadline(), 2);
  EXPECT_EQ(canon.instance.jobs[1].deadline(), 4);
  EXPECT_EQ(canon.instance.jobs[3].release(), 15);
  // order maps canonical position -> original index.
  EXPECT_EQ(canon.order, (std::vector<std::size_t>{2, 1, 0, 3}));
  // Job multiset is preserved under the map.
  for (std::size_t i = 0; i < canon.order.size(); ++i) {
    EXPECT_EQ(canon.instance.jobs[i].allowed,
              inst.jobs[canon.order[i]].allowed.shifted(-canon.shift));
  }
}

TEST(Canonicalize, IsIdempotent) {
  Prng rng(testing::seed_for(910));
  const Instance inst = gen_uniform_one_interval(rng, 9, 30, 6);
  const prep::Canonical once = prep::canonicalize(inst);
  const prep::Canonical twice = prep::canonicalize(once.instance);
  EXPECT_EQ(twice.shift, 0);
  std::vector<std::size_t> identity(inst.n());
  for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  EXPECT_EQ(twice.order, identity);
  EXPECT_EQ(twice.instance.jobs.size(), once.instance.jobs.size());
  for (std::size_t i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(twice.instance.jobs[i].allowed, once.instance.jobs[i].allowed);
  }
}

TEST(Canonicalize, EmptyInstance) {
  const prep::Canonical canon = prep::canonicalize(Instance{});
  EXPECT_EQ(canon.instance.n(), 0u);
  EXPECT_EQ(canon.shift, 0);
  EXPECT_TRUE(canon.order.empty());
}

// -------------------------------------------------------------- decompose --

TEST(Decompose, CutsStrictlyAboveThresholdOnly) {
  // Two pinned clusters: [0,1] busy and a second pair starting at `gap`
  // dead units later. With n = 4 jobs the engine cuts at separation > 4.
  const auto with_separation = [](Time dead) {
    return Instance::one_interval(
        {{0, 0}, {1, 1}, {2 + dead, 2 + dead}, {3 + dead, 3 + dead}});
  };
  // Separation exactly n: one component.
  const prep::Decomposition at_n = prep::decompose(with_separation(4), 4);
  EXPECT_EQ(at_n.components.size(), 1u);
  EXPECT_TRUE(at_n.separations.empty());
  // Separation n + 1: two components, and the dead run is recorded.
  const prep::Decomposition above = prep::decompose(with_separation(5), 4);
  ASSERT_EQ(above.components.size(), 2u);
  ASSERT_EQ(above.separations.size(), 1u);
  EXPECT_EQ(above.separations[0], 5);
  // Component contents: re-anchored at 0 with original ids preserved.
  EXPECT_EQ(above.components[0].jobs, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(above.components[1].jobs, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(above.components[1].shift, 7);
  EXPECT_EQ(above.components[1].instance.jobs[0].release(), 0);
}

TEST(Decompose, MultiIntervalJobWeldsClusters) {
  // Job 2's allowed set straddles both clusters, so its span keeps them in
  // one component even though the clusters alone are far apart.
  Instance inst;
  inst.jobs.push_back(Job{TimeSet::window(0, 1)});
  inst.jobs.push_back(Job{TimeSet::window(40, 41)});
  inst.jobs.push_back(Job{TimeSet{{Interval{0, 1}, Interval{40, 41}}}});
  EXPECT_EQ(prep::decompose(inst, 3).components.size(), 1u);
  inst.jobs.pop_back();
  EXPECT_EQ(prep::decompose(inst, 3).components.size(), 2u);
}

TEST(Decompose, SparseSpreadSplitsPerJob) {
  // Far-apart pinned jobs: every job is its own component.
  std::vector<std::pair<Time, Time>> windows;
  for (int i = 0; i < 6; ++i) {
    windows.emplace_back(i * 50, i * 50 + 1);
  }
  const Instance inst = Instance::one_interval(windows);
  const prep::Decomposition dec =
      prep::decompose(inst, static_cast<Time>(inst.n()));
  EXPECT_EQ(dec.components.size(), 6u);
  for (const prep::Component& c : dec.components) {
    EXPECT_EQ(c.instance.n(), 1u);
    EXPECT_EQ(c.instance.earliest_release(), 0);
  }
}

TEST(Decompose, RecombineRestoresIdsAndTimes) {
  const Instance inst =
      Instance::one_interval({{0, 1}, {30, 31}, {1, 2}, {32, 33}});
  const prep::Decomposition dec = prep::decompose(inst, 4);
  ASSERT_EQ(dec.components.size(), 2u);
  std::vector<Schedule> parts;
  for (const prep::Component& comp : dec.components) {
    Schedule s(comp.instance.n());
    for (std::size_t j = 0; j < comp.instance.n(); ++j) {
      s.place(j, comp.instance.jobs[j].release());
    }
    parts.push_back(std::move(s));
  }
  const Schedule whole = prep::recombine(dec, parts, inst.n());
  ASSERT_TRUE(whole.complete());
  for (std::size_t i = 0; i < inst.n(); ++i) {
    EXPECT_EQ(whole.at(i)->time, inst.jobs[i].release()) << i;
  }
}

// ---------------------------------------- optima are additive across cuts --

TEST(Decompose, RecombinedOptimaEqualUndecomposedOptima) {
  // Clustered draws with real dead runs between bursts.
  for (int draw = 0; draw < 4; ++draw) {
    const std::uint64_t seed = testing::seed_for(920 + draw);
    GAPSCHED_TRACE_SEED(seed);
    Prng rng(seed);
    std::vector<std::pair<Time, Time>> windows;
    Time base = 0;
    for (int cluster = 0; cluster < 3; ++cluster) {
      for (int j = 0; j < 3; ++j) {
        const Time lo = base + rng.uniform(0, 2);
        windows.emplace_back(lo, lo + rng.uniform(0, 2));
      }
      base += 40;  // far beyond n = 9 and alpha
    }
    const Instance inst = Instance::one_interval(windows);

    const engine::Solver* gap =
        engine::SolverRegistry::instance().find("gap_dp");
    const engine::Solver* power =
        engine::SolverRegistry::instance().find("power_dp");
    ASSERT_NE(gap, nullptr);
    ASSERT_NE(power, nullptr);

    const SolveResult gap_on = gap->solve(request(inst, Objective::kGaps));
    const SolveResult gap_off =
        gap->solve(request(inst, Objective::kGaps, 2.5, false));
    ASSERT_TRUE(gap_on.ok && gap_off.ok) << gap_on.error << gap_off.error;
    EXPECT_GT(gap_on.stats.components, 1u);
    EXPECT_EQ(gap_off.stats.components, 0u);
    EXPECT_EQ(gap_on.feasible, gap_off.feasible);
    EXPECT_EQ(gap_on.transitions, gap_off.transitions);
    EXPECT_EQ(gap_on.cost, gap_off.cost);
    EXPECT_EQ(gap_on.audit_error, "");
    EXPECT_EQ(gap_off.audit_error, "");

    const SolveResult pow_on = power->solve(request(inst, Objective::kPower));
    const SolveResult pow_off =
        power->solve(request(inst, Objective::kPower, 2.5, false));
    ASSERT_TRUE(pow_on.ok && pow_off.ok) << pow_on.error << pow_off.error;
    EXPECT_GT(pow_on.stats.components, 1u);
    EXPECT_EQ(pow_on.feasible, pow_off.feasible);
    EXPECT_NEAR(pow_on.cost, pow_off.cost, 1e-9 * std::max(1.0, pow_off.cost));
    EXPECT_EQ(pow_on.audit_error, "");
    EXPECT_EQ(pow_off.audit_error, "");
  }
}

TEST(Decompose, RecombinedCostIsComponentSumPlusZeroBridges) {
  // The engine's recombined cost must equal the plain sum of per-component
  // optima: with cuts longer than max(n, ceil(alpha)), the closed-form
  // bridge term min(gap, alpha) equals the fresh wake-up alpha that each
  // right-hand component already prices, so the extra term is zero.
  const Instance inst =
      Instance::one_interval({{0, 2}, {1, 3}, {50, 52}, {100, 101}});
  const double alpha = 2.5;
  const prep::Decomposition dec = prep::decompose(inst, 4);
  ASSERT_EQ(dec.components.size(), 3u);

  std::int64_t gap_sum = 0;
  double power_sum = 0.0;
  for (const prep::Component& comp : dec.components) {
    const GapDpResult g = solve_gap_dp(comp.instance);
    ASSERT_TRUE(g.error.empty() && g.feasible);
    gap_sum += g.transitions;
    const PowerDpResult p = solve_power_dp(comp.instance, alpha);
    ASSERT_TRUE(p.error.empty() && p.feasible);
    power_sum += p.power;
  }

  const SolveResult gap_whole = engine_solve(
      "gap_dp", request(inst, Objective::kGaps, alpha));
  ASSERT_TRUE(gap_whole.ok && gap_whole.feasible);
  EXPECT_EQ(gap_whole.transitions, gap_sum);

  const SolveResult pow_whole = engine_solve(
      "power_dp", request(inst, Objective::kPower, alpha));
  ASSERT_TRUE(pow_whole.ok && pow_whole.feasible);
  EXPECT_NEAR(pow_whole.cost, power_sum, 1e-9 * std::max(1.0, power_sum));
  // And the oracle's independent bridge-cost floor agrees exactly.
  const oracle::ScheduleAudit audit =
      oracle::audit_schedule(inst, pow_whole.schedule);
  ASSERT_TRUE(audit.valid) << audit.violation_summary();
  EXPECT_NEAR(oracle::min_power(audit, alpha), power_sum,
              1e-9 * std::max(1.0, power_sum));
}

TEST(Decompose, InfeasibleComponentMakesWholeInfeasible) {
  // Left cluster feasible, right cluster overloaded (3 jobs, 2 slots, 1
  // processor).
  const Instance inst = Instance::one_interval(
      {{0, 1}, {1, 2}, {60, 61}, {60, 61}, {60, 61}});
  const SolveResult r =
      engine_solve("gap_dp", request(inst, Objective::kGaps));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.stats.components, 1u);
  EXPECT_FALSE(r.feasible);
}

// --------------------------------- engine pipeline at scale + guard sites --

TEST(Decompose, ManySingletonComponentsMatchClosedForm) {
  // 40 pinned jobs, 40 singleton components (solved inline — components
  // this small stay off the ThreadPool). Optima are known in closed form
  // (one span per job).
  std::vector<std::pair<Time, Time>> windows;
  for (int i = 0; i < 40; ++i) {
    const Time t = static_cast<Time>(i) * 60;
    windows.emplace_back(t, t);
  }
  const Instance inst = Instance::one_interval(windows);
  const double alpha = 3.0;

  const SolveResult gap =
      engine_solve("gap_dp", request(inst, Objective::kGaps, alpha));
  ASSERT_TRUE(gap.ok) << gap.error;
  ASSERT_TRUE(gap.feasible);
  EXPECT_EQ(gap.stats.components, 40u);
  EXPECT_EQ(gap.transitions, 40);
  EXPECT_TRUE(gap.schedule.complete());
  EXPECT_EQ(gap.audit_error, "");

  const SolveResult power =
      engine_solve("power_dp", request(inst, Objective::kPower, alpha));
  ASSERT_TRUE(power.ok) << power.error;
  ASSERT_TRUE(power.feasible);
  EXPECT_EQ(power.stats.components, 40u);
  EXPECT_NEAR(power.cost, 40.0 * (1.0 + alpha), 1e-9);
  EXPECT_EQ(power.audit_error, "");
}

TEST(Decompose, ThreadPoolFanoutMatchesClosedFormForLargeComponents) {
  // 3 clusters of 18 pinned jobs each: the largest component crosses the
  // parallel fan-out bar, so this exercises the ThreadPool path end to
  // end. Within a cluster the 18 consecutive pinned jobs form one busy
  // run, so the optimum is one transition per cluster.
  std::vector<std::pair<Time, Time>> windows;
  for (int cluster = 0; cluster < 3; ++cluster) {
    const Time base = static_cast<Time>(cluster) * 500;
    for (int j = 0; j < 18; ++j) {
      windows.emplace_back(base + j, base + j);
    }
  }
  const Instance inst = Instance::one_interval(windows);

  const SolveResult gap =
      engine_solve("gap_dp", request(inst, Objective::kGaps));
  ASSERT_TRUE(gap.ok) << gap.error;
  ASSERT_TRUE(gap.feasible);
  EXPECT_EQ(gap.stats.components, 3u);
  EXPECT_EQ(gap.transitions, 3);
  EXPECT_TRUE(gap.schedule.complete());
  EXPECT_EQ(gap.audit_error, "");
}

TEST(Decompose, UnlocksInstancesOverThePackedKeyJobLimit) {
  // 4200 pinned far-apart jobs: over the monolithic DP's n <= 4095
  // packed-key limit, but trivially solvable once decomposed. With the
  // pipeline off, the guard must reject cleanly instead of aliasing memo
  // keys.
  std::vector<std::pair<Time, Time>> windows;
  for (int i = 0; i < 4200; ++i) {
    const Time t = static_cast<Time>(i) * 5000;  // spacing > n so prep cuts
    windows.emplace_back(t, t);
  }
  const Instance inst = Instance::one_interval(windows);

  const SolveResult on =
      engine_solve("gap_dp", request(inst, Objective::kGaps));
  ASSERT_TRUE(on.ok) << on.error;
  ASSERT_TRUE(on.feasible);
  EXPECT_EQ(on.stats.components, 4200u);
  EXPECT_EQ(on.transitions, 4200);
  EXPECT_EQ(on.audit_error, "");

  const SolveResult off = engine_solve(
      "gap_dp", request(inst, Objective::kGaps, 2.5, false));
  EXPECT_FALSE(off.ok);
  EXPECT_NE(off.error.find("packed-key"), std::string::npos) << off.error;
}

// ------------------------------ dead-time compression in the pipeline --
// Gap-objective pipeline solves run on dead-time-compressed components
// (core/transforms): interior runs no job can use shrink to one unit. The
// transition objective is exactly preserved; power is skipped because its
// idle-bridging term min(gap, alpha) depends on real gap lengths.

TEST(Compression, GapPipelinePreservesOptimaAndShrinksTheAxis) {
  // One cluster with a 3-unit interior dead run (separation <= n, so
  // decomposition cannot cut it — only compression removes it).
  const Instance inst = Instance::one_interval({{0, 1}, {1, 2}, {6, 7}});
  const SolveResult on =
      engine_solve("gap_dp", request(inst, Objective::kGaps));
  const SolveResult off =
      engine_solve("gap_dp", request(inst, Objective::kGaps, 2.5, false));
  ASSERT_TRUE(on.ok && off.ok) << on.error << off.error;
  ASSERT_TRUE(on.feasible && off.feasible);
  EXPECT_EQ(on.transitions, off.transitions);
  EXPECT_EQ(on.audit_error, "");
  EXPECT_EQ(off.audit_error, "");
  // The compressed candidate axis can only be smaller.
  EXPECT_LE(on.stats.states, off.stats.states);
  // The recombined schedule lives in original time coordinates.
  EXPECT_EQ(on.schedule.validate(inst), "");
}

TEST(Compression, WeldedClustersCompressAcrossTheDeadSpan) {
  // A multi-interval job welds two far-apart clusters into one component
  // (decompose cannot cut through its span), leaving a ~990-unit interior
  // dead run that only compression removes. The exact multi-interval
  // families must agree with their uncompressed selves.
  Instance inst;
  inst.jobs.push_back(Job{TimeSet::window(0, 1)});
  inst.jobs.push_back(Job{TimeSet{{Interval{0, 1}, Interval{1000, 1001}}}});
  inst.jobs.push_back(Job{TimeSet::window(1000, 1001)});
  for (const char* solver : {"brute_force", "span_search"}) {
    SCOPED_TRACE(solver);
    const SolveResult on =
        engine_solve(solver, request(inst, Objective::kGaps));
    const SolveResult off = engine_solve(
        solver, request(inst, Objective::kGaps, 2.5, false));
    ASSERT_TRUE(on.ok && off.ok) << on.error << off.error;
    ASSERT_TRUE(on.feasible && off.feasible);
    EXPECT_EQ(on.stats.components, 1u);  // welded: no cut, only compression
    EXPECT_EQ(on.transitions, off.transitions);
    EXPECT_EQ(on.audit_error, "");
    EXPECT_EQ(on.schedule.validate(inst), "");
  }
}

TEST(Compression, PowerPipelineCapsRunsAtCeilAlphaPlusOne) {
  // Ten pinned jobs spaced 8 dead units apart: every run is under the cut
  // threshold max(n, ceil(alpha)) = 10, so decomposition cannot remove any
  // of it — only the length-aware compression can, by truncating each run
  // of 8 to ceil(2.5) + 1 = 4 units. The power optimum must be exactly
  // preserved (each gap sits on the min(gap, alpha) = alpha plateau on
  // both sides of the map), and the dead-time saving must be reported.
  std::vector<std::pair<Time, Time>> windows;
  for (int i = 0; i < 10; ++i) {
    const Time t = static_cast<Time>(i) * 9;
    windows.emplace_back(t, t);
  }
  const Instance inst = Instance::one_interval(windows);
  const double alpha = 2.5;
  const SolveResult on = engine_solve(
      "power_dp", request(inst, Objective::kPower, alpha));
  const SolveResult off = engine_solve(
      "power_dp", request(inst, Objective::kPower, alpha, false));
  ASSERT_TRUE(on.ok && off.ok) << on.error << off.error;
  ASSERT_TRUE(on.feasible && off.feasible);
  EXPECT_EQ(on.stats.components, 1u);
  EXPECT_NEAR(on.cost, off.cost, 1e-9);
  // Closed form: 10 active units, one wake-up, 9 saturated bridge terms.
  EXPECT_NEAR(on.cost, 10.0 + alpha + 9 * alpha, 1e-9);
  EXPECT_EQ(on.audit_error, "");
  EXPECT_EQ(off.audit_error, "");
  // Each of the 9 runs shrank 8 -> 4. (Pinned jobs keep the Prop 2.1
  // candidate axis anchored at the pins, so the state count need not
  // shrink here — the axis-blowup savings are measured on wide-window
  // sparse scenarios in the T9 compression study.)
  EXPECT_EQ(on.stats.dead_time_removed, 9 * 4);
  EXPECT_EQ(off.stats.dead_time_removed, 0);
  EXPECT_LE(on.stats.states, off.stats.states);
  EXPECT_EQ(on.schedule.validate(inst), "");
}

TEST(Compression, PowerBridgesUnderAlphaAreNeverTruncated) {
  // Two pinned jobs separated by a 6-unit gap, alpha = 10: the power
  // optimum bridges the real gap (6 < alpha), so its exact length is
  // load-bearing. The cap ceil(alpha) + 1 = 11 exceeds the run, so the
  // pipeline must leave it alone — this pins the length-aware side of the
  // cap, where plain cap-1 compression would corrupt the optimum.
  const Instance inst = Instance::one_interval({{0, 0}, {7, 7}});
  const double alpha = 10.0;
  const SolveResult on = engine_solve(
      "power_dp", request(inst, Objective::kPower, alpha));
  const SolveResult off = engine_solve(
      "power_dp", request(inst, Objective::kPower, alpha, false));
  ASSERT_TRUE(on.ok && off.ok) << on.error << off.error;
  ASSERT_TRUE(on.feasible && off.feasible);
  EXPECT_NEAR(on.cost, off.cost, 1e-9);
  EXPECT_EQ(on.stats.dead_time_removed, 0);
  EXPECT_EQ(on.audit_error, "");

  // Sanity: at cap 1 (the gap objective's compression) the optimum
  // genuinely differs, so the equality above is evidence the cap is
  // length-aware, not a vacuous check.
  const CompressedInstance ci = compress_dead_time(inst);
  const PowerDpResult cap_one = solve_power_dp(ci.instance, alpha);
  ASSERT_TRUE(cap_one.feasible);
  EXPECT_NE(cap_one.power, on.cost);

  // And the deliberately-broken cap ceil(alpha) - 1 shrinks a saturated
  // bridge below alpha and corrupts the optimum — the mistake the fuzz
  // harness's pinned negative test catches at scale.
  const Instance tight = Instance::one_interval({{0, 0}, {11, 11}});
  const CompressedInstance bad = compress_dead_time_capped(
      tight, static_cast<Time>(std::ceil(alpha)) - 1);
  const PowerDpResult broken = solve_power_dp(bad.instance, alpha);
  const PowerDpResult truth = solve_power_dp(tight, alpha);
  ASSERT_TRUE(broken.feasible && truth.feasible);
  EXPECT_LT(broken.power, truth.power);
}

TEST(Compression, PowerCompressionOffIsHonoured) {
  // params.compress = false keeps dead runs at full length for both
  // objectives (cost must of course be unchanged — only the solved form
  // and the stats differ).
  std::vector<std::pair<Time, Time>> windows;
  for (int i = 0; i < 8; ++i) {
    const Time t = static_cast<Time>(i) * 8;
    windows.emplace_back(t, t);
  }
  const Instance inst = Instance::one_interval(windows);
  SolveRequest req = request(inst, Objective::kPower, 2.5);
  req.params.compress = false;
  const SolveResult plain = engine_solve("power_dp", req);
  ASSERT_TRUE(plain.ok && plain.feasible) << plain.error;
  EXPECT_EQ(plain.stats.dead_time_removed, 0);
  req.params.compress = true;
  const SolveResult squeezed = engine_solve("power_dp", req);
  ASSERT_TRUE(squeezed.ok && squeezed.feasible) << squeezed.error;
  EXPECT_GT(squeezed.stats.dead_time_removed, 0);
  EXPECT_NEAR(plain.cost, squeezed.cost, 1e-9);
}

TEST(Decompose, GuardFiresOnlyForOversizedSingleComponents) {
  // Three wide-window clusters whose joint candidate axis overflows the
  // dp::kThetaIndexBits (2^20) theta index, while each cluster alone stays
  // within every packed-key limit: decomposition is exactly what makes the
  // instance solvable, and the guard checks components, not the whole.
  // Each cluster spans ~700 * 520 candidate times, so the joint axis is
  // ~1.09M >= 2^20 but each cluster's ~365k is comfortably under.
  std::vector<std::pair<Time, Time>> windows;
  for (int cluster = 0; cluster < 3; ++cluster) {
    const Time base = static_cast<Time>(cluster) * 400000;
    for (int j = 0; j < 700; ++j) {
      const Time lo = base + static_cast<Time>(j) * 520;
      windows.emplace_back(lo, lo + 600);  // overlaps the next job's window
    }
  }
  const Instance inst = Instance::one_interval(windows);
  ASSERT_EQ(inst.n(), 2100u);

  // The monolithic axis is over the limit...
  dp::DpContext whole(inst);
  EXPECT_GE(whole.theta.size(), dp::kMaxThetaSize);
  EXPECT_NE(whole.limit_violation(), "");
  // ...and solve_gap_dp rejects it instead of corrupting its memo.
  const GapDpResult direct = solve_gap_dp(inst);
  EXPECT_FALSE(direct.error.empty());
  EXPECT_FALSE(direct.feasible);

  // But every component the engine would cut is individually inside the
  // limits (we do not run the component DPs here — 700 wide windows are
  // within capacity but far too slow for a unit test).
  const prep::Decomposition dec =
      prep::decompose(inst, static_cast<Time>(inst.n()));
  ASSERT_EQ(dec.components.size(), 3u);
  for (const prep::Component& comp : dec.components) {
    dp::DpContext ctx(comp.instance);
    EXPECT_EQ(ctx.limit_violation(), "")
        << "component with n = " << comp.instance.n();
  }
}

}  // namespace
}  // namespace gapsched

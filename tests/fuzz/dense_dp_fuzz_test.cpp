// Fuzz family for the widened DP execution layer: dense one-cluster
// instances with n > 255 — over the seed engine's old 8-bit packed-key
// ceiling, newly in scope for the 128-bit keys. For every draw the solver
// must be a pure function of the instance across every execution config:
//
//   * auto layout (arena when the state box is dense), forced hash memo,
//     and the parallel top-level candidate scan agree bit-identically on
//     feasibility, optimum, schedule, and reachable-state count
//     (pruning stays on in all three, so `states` is comparable),
//   * the schedule survives the independent oracle with the same
//     transition count,
//   * the engine pipeline (decompose + compress + recombine) lands on the
//     same optimum as the direct monolithic solve.
//
// A failing draw is shrunk to a locally minimal repro by job bisection and
// reported with the serialized instance and the seed that replays it.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "gapsched/dp/dp_common.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/io/serialize.hpp"
#include "gapsched/oracle/oracle.hpp"
#include "gapsched/parallel/thread_pool.hpp"
#include "gapsched/util/prng.hpp"
#include "fuzz_support.hpp"

namespace gapsched {
namespace {

constexpr double kAlpha = 2.5;

/// The cross-config gap invariant. Returns "" when every execution config
/// agrees and the oracle confirms the answer; else a one-line diagnostic.
std::string check_dense_gap(const Instance& inst) {
  if (!dp::DpContext(inst).limit_violation().empty()) {
    return "";  // outside the packed-key envelope: nothing to compare
  }
  const GapDpResult tuned = solve_gap_dp(inst);
  const GapDpResult hashed =
      solve_gap_dp(inst, dp::DpOptions{.layout = dp::MemoLayout::kHash});
  ThreadPool pool(2);
  dp::DpOptions par_opts;
  par_opts.pool = &pool;
  par_opts.parallel_min_box = 0;
  const GapDpResult par = solve_gap_dp(inst, par_opts);

  for (const auto& [other, tag] :
       {std::pair<const GapDpResult*, const char*>{&hashed, "hash"},
        std::pair<const GapDpResult*, const char*>{&par, "parallel"}}) {
    if (other->feasible != tuned.feasible) {
      return std::string(tag) + " config flipped feasibility";
    }
    if (tuned.feasible && (other->transitions != tuned.transitions ||
                           other->states != tuned.states ||
                           !(other->schedule == tuned.schedule))) {
      return std::string(tag) + " config diverged from the auto layout";
    }
  }
  if (!tuned.feasible) return "";

  const oracle::ScheduleAudit audit = oracle::audit_schedule(inst, tuned.schedule);
  if (!audit.valid || !audit.complete) {
    return "oracle rejected the schedule: " + audit.violation_summary();
  }
  if (audit.transitions != tuned.transitions) {
    return "oracle transition count " + std::to_string(audit.transitions) +
           " != claimed " + std::to_string(tuned.transitions);
  }

  // Engine pipeline parity: decomposition + compression must not move the
  // optimum the monolithic DP found.
  static engine::Engine eng({.cache = false});
  engine::SolveRequest req;
  req.instance = inst;
  req.objective = engine::Objective::kGaps;
  req.params.validate = true;
  const engine::SolveResult piped = eng.solve("gap_dp", req);
  if (!piped.ok) return "engine pipeline rejected a solvable instance: " + piped.error;
  if (!piped.feasible) return "engine pipeline flipped feasibility";
  if (piped.transitions != tuned.transitions) {
    return "engine pipeline optimum " + std::to_string(piped.transitions) +
           " != direct DP " + std::to_string(tuned.transitions);
  }
  if (!piped.audit_error.empty()) {
    return "engine audit failed: " + piped.audit_error;
  }
  return "";
}

/// Power cross-config invariant on the same draws (bit-identical across
/// configs; oracle min_power must match exactly-solved optima).
std::string check_dense_power(const Instance& inst) {
  if (!dp::DpContext(inst).limit_violation().empty()) return "";
  const PowerDpResult tuned = solve_power_dp(inst, kAlpha);
  const PowerDpResult hashed = solve_power_dp(
      inst, kAlpha, dp::DpOptions{.layout = dp::MemoLayout::kHash});
  if (hashed.feasible != tuned.feasible ||
      (tuned.feasible &&
       (hashed.power != tuned.power || hashed.states != tuned.states))) {
    return "hash config diverged from the auto layout (power)";
  }
  if (!tuned.feasible) return "";
  const oracle::ScheduleAudit audit =
      oracle::audit_schedule(inst, tuned.schedule);
  if (!audit.valid || !audit.complete) {
    return "oracle rejected the power schedule: " + audit.violation_summary();
  }
  const double floor = oracle::min_power(audit, kAlpha);
  if (!(std::abs(floor - tuned.power) <=
        1e-9 * (1.0 + std::abs(tuned.power)))) {
    return "oracle floor " + std::to_string(floor) +
           " disagrees with the power optimum " + std::to_string(tuned.power);
  }
  return "";
}

// ------------------------------------------------------- dense families --

/// Chained windows: lo = cumulative small steps, width a few units. One
/// cluster, feasible by construction (every job can run at its own lo).
Instance draw_dense_chain(Prng& rng, std::size_t n) {
  Instance inst;
  inst.processors = 1;
  Time t = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const Time width = 1 + static_cast<Time>(rng.index(4));
    inst.jobs.push_back(Job{TimeSet::window(t, t + width)});
    t += 1;  // unit steps: occupancy stays dense, nothing for prep to cut
  }
  return inst;
}

/// Anchored feasible draws on 1-2 processors with slack-widened windows.
Instance draw_dense_anchored(Prng& rng, std::size_t n) {
  const int p = 1 + static_cast<int>(rng.index(2));
  const Time horizon = static_cast<Time>(n / static_cast<std::size_t>(p)) +
                       4 + static_cast<Time>(rng.index(8));
  return gen_feasible_one_interval(rng, n, horizon, 3, p);
}

/// Bursty clusters close enough that decomposition may or may not cut,
/// exercising the pipeline-parity leg both ways.
Instance draw_dense_bursty(Prng& rng, std::size_t n) {
  const std::size_t per_burst = 16;
  const std::size_t bursts = n / per_burst;
  const Time window_len = 20;
  const Time spacing =
      window_len + static_cast<Time>(rng.index(2 * n));  // straddles the cut
  return gen_bursty(rng, bursts, per_burst, spacing, window_len, 1);
}

void sweep(const char* family,
           Instance (*draw)(Prng&, std::size_t),
           const fuzz::Checker& check, int stream, std::size_t draws) {
  for (std::size_t i = 0; i < draws; ++i) {
    const std::uint64_t seed = testing::seed_for(
        static_cast<std::uint64_t>(stream) * 1000 + i);
    GAPSCHED_TRACE_SEED(seed);
    SCOPED_TRACE(std::string(family) + " draw " + std::to_string(i));
    Prng rng(seed);
    const std::size_t n = 256 + rng.index(96);  // always past the old limit
    const Instance inst = draw(rng, n);
    const std::string diag = check(inst);
    if (!diag.empty()) {
      const Instance shrunk = fuzz::shrink_by_bisecting_jobs(inst, check);
      FAIL() << diag << "\nseed " << seed << "\nshrunk repro (n = "
             << shrunk.n() << "):\n" << instance_to_string(shrunk);
    }
  }
}

// The draws are two orders of magnitude bigger than the other fuzz
// families', so the sweep budget is iterations()/20 (>= 8) per family —
// still dozens of n > 255 monolithic solves per PR run.
std::size_t dense_draws() {
  const std::size_t scaled = fuzz::iterations() / 20;
  return scaled < 8 ? 8 : scaled;
}

TEST(DenseDpFuzz, ChainFamilyAllConfigsAgree) {
  sweep("dense_chain", draw_dense_chain, check_dense_gap, 81, dense_draws());
}

TEST(DenseDpFuzz, AnchoredFamilyAllConfigsAgree) {
  sweep("dense_anchored", draw_dense_anchored, check_dense_gap, 82,
        dense_draws());
}

TEST(DenseDpFuzz, BurstyFamilyPipelineParity) {
  sweep("dense_bursty", draw_dense_bursty, check_dense_gap, 83,
        dense_draws());
}

TEST(DenseDpFuzz, ChainFamilyPowerConfigsAgree) {
  // Power solves carry the heavier value type; half the gap budget.
  sweep("dense_chain_power", draw_dense_chain, check_dense_power, 84,
        dense_draws() / 2 + 1);
}

}  // namespace
}  // namespace gapsched

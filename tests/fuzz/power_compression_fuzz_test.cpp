// The tentpole invariant of the length-aware power compression, made a
// machine-checked property instead of a code comment:
//
//   for every instance I and wake-up cost alpha, solving the
//   cap-compressed image of I (interior dead runs truncated to
//   ceil(alpha) + 1) yields exactly the power optimum of I, and the
//   schedule mapped back to I's time axis survives the independent oracle
//   with min_power equal to that optimum.
//
// Generator-driven: >= 500 random instances per family (GAPSCHED_FUZZ_ITERS
// scales it; the nightly CI lane raises it on randomized seeds), spanning
// every power-relevant shape — sparse one-interval, feasible anchored,
// bursty, alpha-straddling dead runs, multi-interval, k-unit points, and
// multiprocessor. A failing draw is first shrunk to a locally minimal
// instance by bisecting jobs, then reported with the serialized repro and
// the seed that replays it.
//
// The harness itself is pinned by a negative test: the deliberately-broken
// cap ceil(alpha) - 1 (one unit short of sound) must be caught, both on a
// crafted boundary instance and within the fixed seed block.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <iterator>
#include <string>
#include <vector>

#include "gapsched/core/transforms.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/exact/power_brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/io/serialize.hpp"
#include "gapsched/oracle/oracle.hpp"
#include "fuzz_support.hpp"

namespace gapsched {
namespace {

constexpr double kTol = 1e-9;

double tol(double a, double b) {
  return kTol * std::max({1.0, std::fabs(a), std::fabs(b)});
}

Time sound_cap(double alpha) {
  return static_cast<Time>(std::ceil(alpha)) + 1;
}

/// One exact uncompressed power solve: the Theorem 2 DP where it applies,
/// the independent subset-DP reference for multi-interval shapes. `error`
/// non-empty means the instance is outside both envelopes (never expected
/// at fuzz sizes).
struct ExactPower {
  bool feasible = false;
  double power = 0.0;
  Schedule schedule;
  std::string error;
};

ExactPower solve_exact_power(const Instance& inst, double alpha) {
  ExactPower out;
  if (inst.is_one_interval()) {
    PowerDpResult r = solve_power_dp(inst, alpha);
    out.feasible = r.feasible;
    out.power = r.power;
    out.schedule = std::move(r.schedule);
    out.error = std::move(r.error);
    return out;
  }
  if (inst.n() <= 20) {
    ExactPowerResult r = brute_force_min_power(inst, alpha);
    out.feasible = r.feasible;
    out.power = r.power;
    out.schedule = std::move(r.schedule);
    return out;
  }
  out.error = "no exact power reference for this shape";
  return out;
}

/// Maps a schedule of the compressed instance back to the original axis.
Schedule decompress(const Schedule& in, const CompressedInstance& ci) {
  Schedule out(in.size());
  for (std::size_t j = 0; j < in.size(); ++j) {
    const std::optional<Placement>& slot = in.at(j);
    if (slot.has_value()) {
      out.place(j, ci.to_original(slot->time), slot->processor);
    }
  }
  return out;
}

/// The property under fuzz. Returns "" when compressing `inst` at `cap`
/// provably changes nothing about the power optimum; else a diagnostic.
/// Exposed with the cap as a parameter so the negative tests can aim the
/// same checker at a deliberately-broken cap. `*skipped` (when non-null)
/// reports that no reference solver accepted the instance, so a clean
/// return proved nothing — the sweep must not count it toward the
/// acceptance bar.
std::string check_power_compression(const Instance& inst, double alpha,
                                    Time cap, bool* skipped = nullptr) {
  if (skipped != nullptr) *skipped = false;
  const ExactPower reference = solve_exact_power(inst, alpha);
  if (!reference.error.empty()) {
    if (skipped != nullptr) *skipped = true;
    return "";  // outside every envelope
  }
  const CompressedInstance ci = compress_dead_time_capped(inst, cap);
  const ExactPower squeezed = solve_exact_power(ci.instance, alpha);
  if (!squeezed.error.empty()) {
    return "compressed image left the solver envelope: " + squeezed.error;
  }
  if (reference.feasible != squeezed.feasible) {
    return "feasibility flipped under compression (reference " +
           std::string(reference.feasible ? "feasible" : "infeasible") + ")";
  }
  if (!reference.feasible) return "";
  if (std::fabs(reference.power - squeezed.power) >
      tol(reference.power, squeezed.power)) {
    return "power optimum changed: uncompressed " +
           std::to_string(reference.power) + " vs compressed " +
           std::to_string(squeezed.power);
  }
  // Oracle floor: the decompressed schedule must be valid on the ORIGINAL
  // instance and its independently re-derived minimum power must equal the
  // claimed optimum (the solver is exact on both sides of the map).
  const Schedule mapped = decompress(squeezed.schedule, ci);
  const oracle::ScheduleAudit audit = oracle::audit_schedule(inst, mapped);
  if (!audit.valid) {
    return "decompressed schedule failed the oracle: " +
           audit.violation_summary();
  }
  const double floor = oracle::min_power(audit, alpha);
  if (std::fabs(floor - squeezed.power) > tol(floor, squeezed.power)) {
    return "oracle floor " + std::to_string(floor) +
           " disagrees with the compressed optimum " +
           std::to_string(squeezed.power);
  }
  return "";
}

// ----------------------------------------------------- the family sweep --

struct Family {
  const char* name;
  Instance (*draw)(Prng&);
};

/// Dead runs drawn tightly around the cap boundary for the sweep's alphas:
/// the family most likely to expose an off-by-one in the cap.
Instance draw_alpha_straddle(Prng& rng) {
  Instance inst;
  Time t = rng.uniform(0, 3);
  const std::size_t n = 5 + rng.index(3);
  for (std::size_t j = 0; j < n; ++j) {
    const Time width = rng.uniform(0, 2);
    inst.jobs.push_back(Job{TimeSet::window(t, t + width)});
    t += width + 1 + rng.uniform(1, 9);  // dead runs of 1..9 straddle caps
  }
  return inst;
}

const Family kFamilies[] = {
    {"uniform_sparse",
     [](Prng& rng) { return gen_uniform_one_interval(rng, 7, 60, 5); }},
    {"feasible_anchored",
     [](Prng& rng) { return gen_feasible_one_interval(rng, 8, 30, 2); }},
    {"bursty",
     [](Prng& rng) { return gen_bursty(rng, 3, 2, 16, 4); }},
    {"alpha_straddle", [](Prng& rng) { return draw_alpha_straddle(rng); }},
    {"multi_interval",
     [](Prng& rng) { return gen_multi_interval(rng, 6, 40, 2, 2); }},
    {"unit_points",
     [](Prng& rng) { return gen_unit_points(rng, 6, 30, 3); }},
    {"multiproc_spread",
     [](Prng& rng) { return gen_feasible_one_interval(rng, 7, 16, 2, 2); }},
};

/// The alphas each family cycles through (integer, fractional, zero, and
/// values far above every dead run).
constexpr double kAlphas[] = {0.0, 0.5, 1.0, 2.0, 2.5, 3.0, 4.5, 7.0};

TEST(PowerCompressionFuzz, CappedCompressionNeverChangesTheOptimum) {
  // Engine-level spot checks ride along on a slice of the sweep: the full
  // prep pipeline (decompose + compress + recombine) must agree with its
  // compression-off self, not just the bare transform.
  engine::Engine eng({.cache = false});
  std::size_t checked = 0;
  for (std::size_t f = 0; f < std::size(kFamilies); ++f) {
    const Family& family = kFamilies[f];
    SCOPED_TRACE(::testing::Message() << "family " << family.name);
    for (std::size_t i = 0; i < fuzz::iterations(); ++i) {
      const std::uint64_t seed = testing::seed_for(3000 + f * 1009 + i);
      GAPSCHED_TRACE_SEED(seed);
      Prng rng(seed);
      const Instance inst = family.draw(rng);
      const double alpha = kAlphas[i % std::size(kAlphas)];
      const Time cap = sound_cap(alpha);
      bool skipped = false;
      const std::string diag =
          check_power_compression(inst, alpha, cap, &skipped);
      if (!diag.empty()) {
        const Instance shrunk = fuzz::shrink_by_bisecting_jobs(
            inst, [&](const Instance& candidate) {
              return check_power_compression(candidate, alpha, cap);
            });
        ADD_FAILURE() << family.name << " iteration " << i << " (alpha "
                      << alpha << ", cap " << cap << "): " << diag
                      << "\nshrunk repro ("
                      << check_power_compression(shrunk, alpha, cap)
                      << "):\n"
                      << instance_to_string(shrunk);
        return;  // one shrunk repro is worth more than a failure storm
      }
      if (!skipped) ++checked;

      if (i % 16 == 0) {
        engine::SolveRequest req;
        req.instance = inst;
        req.objective = engine::Objective::kPower;
        req.params.alpha = alpha;
        req.params.validate = true;
        const char* solver =
            inst.is_one_interval() ? "power_dp" : "power_brute_force";
        const engine::SolveResult on = eng.solve(solver, req);
        req.params.compress = false;
        const engine::SolveResult off = eng.solve(solver, req);
        ASSERT_EQ(on.ok, off.ok) << on.error << off.error;
        if (!on.ok) continue;  // e.g. n over the brute-force cap
        EXPECT_EQ(on.audit_error, "") << solver << ": " << on.audit_error;
        EXPECT_EQ(off.audit_error, "") << solver << ": " << off.audit_error;
        ASSERT_EQ(on.feasible, off.feasible);
        if (on.feasible) {
          EXPECT_NEAR(on.cost, off.cost, tol(on.cost, off.cost)) << solver;
        }
      }
    }
  }
  // >= 500 instances per family with zero mismatches (the acceptance bar;
  // instances outside every solver envelope do not count as checked).
  EXPECT_GE(checked, std::size(kFamilies) * std::min<std::size_t>(
                                                fuzz::iterations(), 500));
}

// ------------------------------------------------- the harness is armed --

TEST(PowerCompressionFuzz, BrokenCapIsCaughtOnTheBoundaryInstance) {
  // alpha = 2.5: a dead run of exactly ceil(alpha) = 3 saturates the
  // bridge term min(3, 2.5) = 2.5. The broken cap ceil(alpha) - 1 = 2
  // shrinks that run below alpha, the bridge term drops to 2, and the
  // compressed "optimum" undercuts the true one — the checker must say so.
  const double alpha = 2.5;
  const Instance boundary = Instance::one_interval({{0, 0}, {4, 4}});
  ASSERT_EQ(check_power_compression(boundary, alpha, sound_cap(alpha)), "");
  const std::string diag =
      check_power_compression(boundary, alpha, sound_cap(alpha) - 2);
  ASSERT_NE(diag, "");
  EXPECT_NE(diag.find("power optimum changed"), std::string::npos) << diag;
}

TEST(PowerCompressionFuzz, BrokenCapIsCaughtInsideTheFixedSeedBlock) {
  // The same broken cap aimed at the boundary-hugging family over a pinned
  // seed block: the sweep itself (not just a crafted instance) must flag
  // it, and the sound cap must stay silent on the identical draws.
  const double alpha = 2.5;
  std::size_t caught = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    const std::uint64_t seed = testing::seed_for(4000 + i);
    GAPSCHED_TRACE_SEED(seed);
    Prng rng(seed);
    const Instance inst = draw_alpha_straddle(rng);
    ASSERT_EQ(check_power_compression(inst, alpha, sound_cap(alpha)), "");
    if (!check_power_compression(inst, alpha, sound_cap(alpha) - 2)
             .empty()) {
      ++caught;
    }
  }
  EXPECT_GT(caught, 0u) << "a cap one unit short of sound must not survive "
                           "a 100-draw boundary sweep";
}

TEST(PowerCompressionFuzz, ShrinkerProducesAMinimalFailingRepro) {
  // Arm the shrinker against the broken cap: burying the two boundary jobs
  // under feasible noise must still shrink to a failing instance that no
  // single job removal can reduce further.
  const double alpha = 2.5;
  const Time bad_cap = sound_cap(alpha) - 2;
  Instance noisy = Instance::one_interval(
      {{0, 0}, {4, 4}, {20, 25}, {21, 26}, {40, 45}, {60, 66}});
  const auto check = [&](const Instance& candidate) {
    return check_power_compression(candidate, alpha, bad_cap);
  };
  ASSERT_NE(check(noisy), "");
  const Instance shrunk = fuzz::shrink_by_bisecting_jobs(noisy, check);
  EXPECT_NE(check(shrunk), "");
  EXPECT_LE(shrunk.n(), 2u);
  for (std::size_t j = 0; j < shrunk.n(); ++j) {
    Instance less;
    less.processors = shrunk.processors;
    for (std::size_t k = 0; k < shrunk.n(); ++k) {
      if (k != j) less.jobs.push_back(shrunk.jobs[k]);
    }
    if (less.n() > 0) {
      EXPECT_EQ(check(less), "") << "shrunk repro is not 1-minimal";
    }
  }
}

}  // namespace
}  // namespace gapsched

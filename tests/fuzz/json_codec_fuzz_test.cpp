// io/json.hpp under adversarial bytes: every mutated, truncated, spliced,
// or duplicated document must either parse or come back as a clean
// nullopt-with-diagnostic — never a crash, hang, or silent garbage value.
// The CI sanitizer lane runs this suite under ASan/UBSan, which is what
// turns "never a crash" into a checkable property; the parsed-side
// invariants below (fields that did parse are internally consistent) hold
// even without the sanitizers.

#include <gtest/gtest.h>

#include <string>

#include "gapsched/engine/types.hpp"
#include "gapsched/io/json.hpp"
#include "fuzz_support.hpp"

namespace gapsched::io {
namespace {

engine::SolveRequest seed_request(Prng& rng) {
  engine::SolveRequest request;
  request.objective = engine::Objective::kPower;
  request.params.alpha = 0.5 * static_cast<double>(rng.uniform(0, 8));
  request.params.validate = rng.chance(0.5);
  request.instance.processors = 1 + static_cast<int>(rng.index(3));
  const std::size_t n = 1 + rng.index(6);
  for (std::size_t j = 0; j < n; ++j) {
    const Time lo = rng.uniform(0, 40);
    request.instance.jobs.push_back(
        Job{TimeSet{{Interval{lo, lo + rng.uniform(0, 5)},
                     Interval{lo + 50, lo + 52}}}});
  }
  return request;
}

TEST(JsonCodecFuzz, MutatedRequestsNeverCrashAndAlwaysDiagnose) {
  for (std::size_t i = 0; i < fuzz::iterations() * 4; ++i) {
    const std::uint64_t seed = testing::seed_for(5000 + i);
    GAPSCHED_TRACE_SEED(seed);
    Prng rng(seed);
    std::string doc = request_to_json("power_dp", seed_request(rng));
    fuzz::mutate_bytes(doc, rng);

    std::string solver, error;
    const auto parsed = request_from_json(doc, &solver, &error);
    if (parsed.has_value()) {
      // Whatever survived mutation must be internally consistent: the
      // named solver is non-empty and every job has a well-formed allowed
      // set representation (the parser never builds half-initialized
      // instances).
      EXPECT_FALSE(solver.empty());
      for (const Job& job : parsed->instance.jobs) {
        for (const Interval& iv : job.allowed.intervals()) {
          EXPECT_LE(iv.lo, iv.hi);
        }
      }
    } else {
      EXPECT_FALSE(error.empty()) << "rejection without a diagnostic";
    }
  }
}

TEST(JsonCodecFuzz, MutatedResultsNeverCrashAndAlwaysDiagnose) {
  for (std::size_t i = 0; i < fuzz::iterations() * 4; ++i) {
    const std::uint64_t seed = testing::seed_for(6000 + i);
    GAPSCHED_TRACE_SEED(seed);
    Prng rng(seed);
    engine::SolveResult result;
    result.ok = true;
    result.feasible = true;
    result.cost = 12.5;
    result.transitions = 3;
    result.stats.states = 99;
    result.stats.components = 4;
    result.stats.dead_time_removed = 17;
    result.schedule = Schedule(3);
    result.schedule.place(0, 5, 0);
    result.schedule.place(2, 9, 1);
    std::string doc = result_to_json(result);
    fuzz::mutate_bytes(doc, rng);

    std::string error;
    const auto parsed = result_from_json(doc, &error);
    if (!parsed.has_value()) {
      EXPECT_FALSE(error.empty()) << "rejection without a diagnostic";
    }
  }
}

TEST(JsonCodecFuzz, DeepNestingIsRejectedNotOverflowed) {
  // The recursive-descent parser is depth-limited; a pathological document
  // must come back as a diagnostic, not a stack overflow.
  std::string deep(5000, '[');
  deep += std::string(5000, ']');
  std::string error;
  EXPECT_FALSE(result_from_json(deep, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(JsonCodecFuzz, DepthLimitBoundaryIsExactlyKMaxParseDepth) {
  // Regression for the serving protocol's parse bound: nesting deeper than
  // kMaxParseDepth (64) is rejected AS a depth error, nesting exactly at
  // the limit is not. The boundary used to sit one past the documented
  // limit (65 levels slipped through).
  const auto nested = [](int levels) {
    return std::string(static_cast<std::size_t>(levels), '[') +
           std::string(static_cast<std::size_t>(levels), ']');
  };
  std::string error;
  // 64 levels: parses as a value (the later "not a response document"
  // rejection is a type error, not a depth error).
  EXPECT_FALSE(result_from_json(nested(kMaxParseDepth), &error).has_value());
  EXPECT_EQ(error.find("nested too deeply"), std::string::npos) << error;
  // 65 levels: the depth bound itself fires.
  EXPECT_FALSE(
      result_from_json(nested(kMaxParseDepth + 1), &error).has_value());
  EXPECT_NE(error.find("nested too deeply"), std::string::npos) << error;
  // The same boundary holds for nesting buried inside an ignored field of
  // an otherwise valid document: 63 inner levels under the root object
  // (total 64) parse, 64 (total 65) do not.
  const auto wrap = [&](int levels) {
    return "{\"ok\": true, \"junk\": " + nested(levels) + "}";
  };
  EXPECT_TRUE(result_from_json(wrap(kMaxParseDepth - 1), &error).has_value())
      << error;
  EXPECT_FALSE(result_from_json(wrap(kMaxParseDepth), &error).has_value());
  EXPECT_NE(error.find("nested too deeply"), std::string::npos) << error;
}

}  // namespace
}  // namespace gapsched::io

#pragma once
// Shared plumbing of the randomized fuzz suites (ctest label `fuzz`):
//
//   * iteration budgeting — GAPSCHED_FUZZ_ITERS scales every sweep (the CI
//     PR lane runs the fixed default block, the nightly lane raises it and
//     randomizes GAPSCHED_TEST_SEED),
//   * shrink-on-failure — ddmin-style job bisection that reduces a failing
//     instance to a locally minimal repro before it is reported,
//   * a byte mutator — the adversarial input generator the JSON codec is
//     fuzzed with under ASan.
//
// Every stream derives from tests/support/test_seed.hpp, so a failure
// always names the GAPSCHED_TEST_SEED that replays it.

#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "gapsched/core/instance.hpp"
#include "gapsched/util/prng.hpp"
#include "../support/test_seed.hpp"

namespace gapsched::fuzz {

/// Instances drawn per family and sweep. The default (500) is the PR-lane
/// fixed block the acceptance bar asks for; the nightly CI lane raises it.
inline std::size_t iterations() {
  static const std::size_t iters = [] {
    const char* env = std::getenv("GAPSCHED_FUZZ_ITERS");
    if (env != nullptr && *env != '\0') {
      const unsigned long long v = std::strtoull(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{500};
  }();
  return iters;
}

/// A property checker: returns "" when `inst` satisfies the invariant,
/// else a one-line diagnostic of the violation.
using Checker = std::function<std::string(const Instance&)>;

/// Removes jobs from a failing instance while `check` keeps failing:
/// first greedy half-drops (front/back), then single-job elimination to a
/// local minimum (1-minimal in the delta-debugging sense). Returns the
/// shrunk instance; `check(result)` is guaranteed non-empty.
inline Instance shrink_by_bisecting_jobs(Instance inst, const Checker& check) {
  const auto without = [](const Instance& in, std::size_t lo, std::size_t hi) {
    // Drops jobs [lo, hi).
    Instance out;
    out.processors = in.processors;
    for (std::size_t j = 0; j < in.n(); ++j) {
      if (j < lo || j >= hi) out.jobs.push_back(in.jobs[j]);
    }
    return out;
  };
  // Halving pass: repeatedly drop whichever half keeps the failure alive.
  for (bool shrunk = true; shrunk && inst.n() > 1;) {
    shrunk = false;
    const std::size_t mid = inst.n() / 2;
    for (const auto& [lo, hi] :
         {std::pair<std::size_t, std::size_t>{0, mid},
          std::pair<std::size_t, std::size_t>{mid, inst.n()}}) {
      Instance candidate = without(inst, lo, hi);
      if (candidate.n() > 0 && !check(candidate).empty()) {
        inst = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  // 1-minimal pass: no single job can be removed any more.
  for (bool shrunk = true; shrunk && inst.n() > 1;) {
    shrunk = false;
    for (std::size_t j = 0; j < inst.n(); ++j) {
      Instance candidate = without(inst, j, j + 1);
      if (!check(candidate).empty()) {
        inst = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return inst;
}

/// Mutates `doc` in place: byte flips, truncations, duplications, and
/// digit/structural-character splices — the adversarial wire inputs the
/// JSON codec must reject cleanly rather than crash on.
inline void mutate_bytes(std::string& doc, Prng& rng) {
  const std::size_t rounds = 1 + rng.index(8);
  for (std::size_t r = 0; r < rounds && !doc.empty(); ++r) {
    switch (rng.index(5)) {
      case 0:  // flip one byte to an arbitrary value
        doc[rng.index(doc.size())] =
            static_cast<char>(rng.uniform(0, 255));
        break;
      case 1:  // truncate
        doc.resize(rng.index(doc.size() + 1));
        break;
      case 2:  // duplicate a slice (nests structures, repeats keys)
        if (doc.size() >= 2) {
          const std::size_t lo = rng.index(doc.size() - 1);
          const std::size_t len = 1 + rng.index(doc.size() - lo - 1);
          doc.insert(rng.index(doc.size()), doc.substr(lo, len));
        }
        break;
      case 3: {  // splice a structural character
        static constexpr char kStructural[] = "{}[],:\"-0123456789eE.";
        doc[rng.index(doc.size())] =
            kStructural[rng.index(sizeof kStructural - 1)];
        break;
      }
      case 4:  // delete a slice
        if (doc.size() >= 2) {
          const std::size_t lo = rng.index(doc.size() - 1);
          doc.erase(lo, 1 + rng.index(doc.size() - lo - 1));
        }
        break;
    }
  }
}

}  // namespace gapsched::fuzz

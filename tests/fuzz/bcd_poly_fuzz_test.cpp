// Fuzz families for the polynomial bcd solvers ([BCD07]): randomized
// differential against the exponential window DPs wherever those are in
// range, and oracle-anchored self-consistency on chain draws far past the
// window DPs' envelope (n into the thousands, wide-window mixes).
//
//   * in-range: bcd_poly_gap/bcd_poly_power must agree with
//     solve_gap_dp/solve_power_dp on feasibility and the exact optimum, on
//     both narrow uniform draws (mixed feasibility) and wide-window chains
//     (the segment-frontier coalescing paths),
//   * poly-only: feasible-by-construction chains at n in the hundreds to
//     thousands, where the invariants are the independent oracle audit
//     (validity, completeness, exact transition/power accounting) and the
//     cross-objective bounds n + alpha <= power <= n + alpha * B_gap.
//
// A failing draw is shrunk to a locally minimal repro by job bisection and
// reported with the serialized instance and the seed that replays it.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "gapsched/bcd/bcd.hpp"
#include "gapsched/dp/dp_common.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/io/serialize.hpp"
#include "gapsched/oracle/oracle.hpp"
#include "gapsched/util/prng.hpp"
#include "fuzz_support.hpp"

namespace gapsched {
namespace {

constexpr double kAlpha = 2.5;

bool power_close(double a, double b) {
  return std::abs(a - b) <= 1e-9 * (1.0 + std::abs(a) + std::abs(b));
}

/// In-range differential: the polynomial families vs the exponential window
/// DPs, plus the oracle on every bcd schedule. "" when all agree.
std::string check_bcd_vs_window_dps(const Instance& inst) {
  if (!dp::DpContext(inst).limit_violation().empty()) {
    return "";  // outside the window DPs' envelope: no reference here
  }
  const GapDpResult ref = solve_gap_dp(inst);
  const BcdGapResult got = solve_bcd_gap(inst);
  if (!got.error.empty()) return "bcd gap refused the draw: " + got.error;
  if (got.feasible != ref.feasible) return "bcd gap flipped feasibility";
  if (ref.feasible) {
    if (got.transitions != ref.transitions) {
      return "bcd gap optimum " + std::to_string(got.transitions) +
             " != window DP " + std::to_string(ref.transitions);
    }
    const oracle::ScheduleAudit audit =
        oracle::audit_schedule(inst, got.schedule);
    if (!audit.valid || !audit.complete) {
      return "oracle rejected the bcd gap schedule: " +
             audit.violation_summary();
    }
    if (audit.transitions != got.transitions) {
      return "oracle transition count " + std::to_string(audit.transitions) +
             " != bcd claim " + std::to_string(got.transitions);
    }
  }

  const PowerDpResult pref = solve_power_dp(inst, kAlpha);
  const BcdPowerResult ppoly = solve_bcd_power(inst, kAlpha);
  if (!ppoly.error.empty()) return "bcd power refused the draw: " + ppoly.error;
  if (ppoly.feasible != pref.feasible) return "bcd power flipped feasibility";
  if (pref.feasible) {
    if (!power_close(ppoly.power, pref.power)) {
      return "bcd power optimum " + std::to_string(ppoly.power) +
             " != window DP " + std::to_string(pref.power);
    }
    const oracle::ScheduleAudit audit =
        oracle::audit_schedule(inst, ppoly.schedule);
    if (!audit.valid || !audit.complete) {
      return "oracle rejected the bcd power schedule: " +
             audit.violation_summary();
    }
    const double floor = oracle::min_power(audit, kAlpha);
    if (!power_close(floor, ppoly.power)) {
      return "oracle floor " + std::to_string(floor) +
             " disagrees with bcd power " + std::to_string(ppoly.power);
    }
  }
  return "";
}

/// Poly-only invariant for draws past the window DPs' practical range:
/// oracle-audited answers with exact cost accounting and the
/// cross-objective sandwich. Every family below draws feasible instances
/// (and stays feasible under the shrinker's job drops), so a "feasible"
/// verdict is also required.
std::string check_poly_only(const Instance& inst) {
  const BcdGapResult g = solve_bcd_gap(inst);
  if (!g.error.empty()) return "bcd gap refused the draw: " + g.error;
  if (!g.feasible) return "bcd gap called a feasible chain infeasible";
  const oracle::ScheduleAudit ga = oracle::audit_schedule(inst, g.schedule);
  if (!ga.valid || !ga.complete) {
    return "oracle rejected the bcd gap schedule: " + ga.violation_summary();
  }
  if (ga.transitions != g.transitions) {
    return "oracle transition count " + std::to_string(ga.transitions) +
           " != bcd claim " + std::to_string(g.transitions);
  }

  const BcdPowerResult p = solve_bcd_power(inst, kAlpha);
  if (!p.error.empty()) return "bcd power refused the draw: " + p.error;
  if (!p.feasible) return "bcd power called a feasible chain infeasible";
  const oracle::ScheduleAudit pa = oracle::audit_schedule(inst, p.schedule);
  if (!pa.valid || !pa.complete) {
    return "oracle rejected the bcd power schedule: " +
           pa.violation_summary();
  }
  const double floor = oracle::min_power(pa, kAlpha);
  if (!power_close(floor, p.power)) {
    return "oracle floor " + std::to_string(floor) +
           " disagrees with bcd power " + std::to_string(p.power);
  }
  // No schedule wakes up fewer than the gap optimum's B times, and every
  // interior seam of the gap-optimal schedule costs at most alpha.
  if (pa.transitions < g.transitions) {
    return "power schedule undercuts the gap optimum's block count";
  }
  const double n = static_cast<double>(inst.n());
  if (p.power < n + kAlpha - 1e-9 ||
      p.power > n + kAlpha * static_cast<double>(g.transitions) + 1e-9) {
    return "power optimum " + std::to_string(p.power) +
           " escaped the [n + a, n + a*B_gap] sandwich";
  }
  return "";
}

// --------------------------------------------------------------- families --

/// Narrow uniform one-interval draws, mixed feasibility.
Instance draw_uniform_small(Prng& rng) {
  const std::size_t n = 3 + rng.index(38);
  const Time horizon = static_cast<Time>(n) + 2 + static_cast<Time>(rng.index(12));
  return gen_uniform_one_interval(rng, n, horizon, 6, 1);
}

/// Wide-window chains still inside the window DPs' envelope: strides of
/// tens of slots, windows spanning 2-3 strides — the shapes whose usable
/// mass is orders of magnitude above n, exercising the segment frontiers'
/// flat-run coalescing against the per-slot reference DP.
Instance draw_wide_small(Prng& rng) {
  const std::size_t n = 4 + rng.index(12);
  const Time stride = 20 + static_cast<Time>(rng.index(40));
  Instance inst;
  inst.processors = 1;
  for (std::size_t j = 0; j < n; ++j) {
    const Time anchor =
        static_cast<Time>(j) * stride + static_cast<Time>(rng.index(
            static_cast<std::size_t>(stride) / 2));
    const Time lead = static_cast<Time>(rng.index(
        static_cast<std::size_t>(stride) / 2));
    const Time tail = 2 * stride + static_cast<Time>(rng.index(
        static_cast<std::size_t>(stride)));
    inst.jobs.push_back(Job{
        TimeSet::window(std::max<Time>(0, anchor - lead), anchor + tail)});
  }
  return inst;
}

/// Feasible chains at poly-only sizes: anchors strictly increase, windows
/// mix tight (a few slots) with occasional wider ones plus sleep-worthy
/// holes — the poly_scale/poly_wide shapes with randomized proportions.
/// Deadline inversions stay LOCAL (tails are bounded well below the
/// anchor drift): chains with deep inversions at every scale multiply the
/// release-band state space and are the budget valve's job to refuse, not
/// this family's to draw. Dropping any job subset preserves feasibility.
Instance draw_poly_large(Prng& rng) {
  const std::size_t n = 400 + rng.index(1601);
  Instance inst;
  inst.processors = 1;
  Time t = 2 + static_cast<Time>(rng.index(3));
  for (std::size_t j = 0; j < n; ++j) {
    if (rng.index(12) == 0) {
      const Time lead = static_cast<Time>(rng.index(6));
      const Time tail = 12 + static_cast<Time>(rng.index(20));
      inst.jobs.push_back(
          Job{TimeSet::window(std::max<Time>(0, t - lead), t + tail)});
    } else {
      const Time lead = static_cast<Time>(rng.index(2));
      const Time tail = 1 + static_cast<Time>(rng.index(3));
      inst.jobs.push_back(
          Job{TimeSet::window(std::max<Time>(0, t - lead), t + tail)});
    }
    t += rng.index(9) == 0 ? 4 + static_cast<Time>(rng.index(6))
                           : 1 + static_cast<Time>(rng.index(2));
  }
  return inst;
}

void sweep(const char* family, Instance (*draw)(Prng&),
           const fuzz::Checker& check, int stream, std::size_t draws) {
  for (std::size_t i = 0; i < draws; ++i) {
    const std::uint64_t seed = testing::seed_for(
        static_cast<std::uint64_t>(stream) * 1000 + i);
    GAPSCHED_TRACE_SEED(seed);
    SCOPED_TRACE(std::string(family) + " draw " + std::to_string(i));
    Prng rng(seed);
    const Instance inst = draw(rng);
    const std::string diag = check(inst);
    if (!diag.empty()) {
      const Instance shrunk = fuzz::shrink_by_bisecting_jobs(inst, check);
      FAIL() << diag << "\nseed " << seed << "\nshrunk repro (n = "
             << shrunk.n() << "):\n" << instance_to_string(shrunk);
    }
  }
}

/// Large-draw budget, mirroring the dense DP suite's scaling.
std::size_t big_draws() {
  const std::size_t scaled = fuzz::iterations() / 20;
  return scaled < 8 ? 8 : scaled;
}

TEST(BcdPolyFuzz, UniformSmallMatchesWindowDps) {
  sweep("bcd_uniform_small", draw_uniform_small, check_bcd_vs_window_dps, 91,
        fuzz::iterations());
}

TEST(BcdPolyFuzz, WideWindowsMatchWindowDps) {
  // Each draw runs the per-slot window DPs over hundreds of candidate
  // times; big-draw budget.
  sweep("bcd_wide_small", draw_wide_small, check_bcd_vs_window_dps, 92,
        big_draws());
}

TEST(BcdPolyFuzz, LargeChainsSurviveOracleAudit) {
  sweep("bcd_poly_large", draw_poly_large, check_poly_only, 93, big_draws());
}

}  // namespace
}  // namespace gapsched

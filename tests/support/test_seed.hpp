#pragma once
// Seed plumbing for the randomized tests: every randomized test derives its
// Prng seeds through here so that (a) a failing assertion always names the
// seed that produced the draw, via GAPSCHED_TRACE_SEED, and (b) setting
// GAPSCHED_TEST_SEED=<n> re-runs the whole randomized surface on a
// different — but still deterministic — stream, which is how a CI failure
// under a swept seed is reproduced locally.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "gapsched/util/prng.hpp"

namespace gapsched::testing {

/// Base seed of this test process: the GAPSCHED_TEST_SEED environment
/// variable when set, else a fixed default (so plain runs stay stable).
inline std::uint64_t base_seed() {
  static const std::uint64_t seed = [] {
    const char* env = std::getenv("GAPSCHED_TEST_SEED");
    if (env != nullptr && *env != '\0') {
      return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
    }
    return std::uint64_t{20070609};
  }();
  return seed;
}

/// Mixes the base seed with a test-site counter, so neighbouring sites draw
/// decorrelated streams under every base seed.
inline std::uint64_t seed_for(std::uint64_t site) {
  return splitmix64(base_seed() + 0x9e3779b97f4a7c15ull * site);
}

}  // namespace gapsched::testing

/// Marks the current scope with the PRNG seed in use: any assertion failing
/// inside it prints the seed, and the message names the env var that
/// replays it.
#define GAPSCHED_TRACE_SEED(seed_expr)                                  \
  SCOPED_TRACE(::testing::Message()                                     \
               << "prng seed = " << (seed_expr)                         \
               << " (base GAPSCHED_TEST_SEED = "                        \
               << ::gapsched::testing::base_seed() << ")")

// Handcrafted edge cases for the Theorem 1/2 dynamic programs: deadline
// ties, degenerate windows, capacity boundaries, and identical jobs — the
// corners where the (t1, t2, k, q, l1, l2) bookkeeping is easiest to get
// wrong.

#include <gtest/gtest.h>

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"

namespace gapsched {
namespace {

TEST(GapDpEdge, SingleJobSinglePoint) {
  Instance inst = Instance::one_interval({{7, 7}});
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
  EXPECT_EQ(r.schedule.at(0)->time, 7);
}

TEST(GapDpEdge, AllJobsSamePointNeedsExactCapacity) {
  for (int p = 1; p <= 4; ++p) {
    Instance inst = Instance::one_interval({{5, 5}, {5, 5}, {5, 5}}, p);
    GapDpResult r = solve_gap_dp(inst);
    EXPECT_EQ(r.feasible, p >= 3) << "p=" << p;
    if (r.feasible) {
      EXPECT_EQ(r.transitions, 3);
    }
  }
}

TEST(GapDpEdge, DeadlineTiesBrokenConsistently) {
  // Many jobs sharing one deadline; the (deadline, id) order must still
  // decompose correctly.
  Instance inst =
      Instance::one_interval({{0, 4}, {1, 4}, {2, 4}, {3, 4}, {4, 4}});
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
  EXPECT_EQ(r.schedule.validate(inst), "");
}

TEST(GapDpEdge, IdenticalJobsSaturateWindow) {
  // Window of 3 slots, exactly 3 identical jobs.
  Instance inst = Instance::one_interval({{2, 4}, {2, 4}, {2, 4}});
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
  // One more identical job tips it over.
  inst.jobs.push_back(Job{TimeSet::window(2, 4)});
  EXPECT_FALSE(solve_gap_dp(inst).feasible);
}

TEST(GapDpEdge, NestedWindows) {
  Instance inst = Instance::one_interval({{0, 9}, {3, 6}, {4, 5}, {4, 5}});
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);  // pack 3..6
  EXPECT_EQ(r.schedule.validate(inst), "");
}

TEST(GapDpEdge, ReverseStaircaseReleases) {
  // Later releases with earlier deadlines.
  Instance inst = Instance::one_interval({{0, 10}, {4, 6}, {5, 5}});
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
}

TEST(GapDpEdge, TwoClustersTwoProcessors) {
  // Each cluster saturates both processors for one unit.
  Instance inst =
      Instance::one_interval({{0, 0}, {0, 0}, {9, 9}, {9, 9}}, 2);
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 4);
}

TEST(GapDpEdge, LongChainOfPinnedJobs) {
  std::vector<std::pair<Time, Time>> windows;
  for (Time t = 0; t < 12; ++t) windows.push_back({t, t});
  Instance inst = Instance::one_interval(windows);
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);  // one unbroken span
}

TEST(PowerDpEdge, AlphaZeroIgnoresGaps) {
  Instance inst = Instance::one_interval({{0, 0}, {100, 100}});
  PowerDpResult r = solve_power_dp(inst, 0.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 2.0);
}

TEST(PowerDpEdge, FractionalAlpha) {
  Instance inst = Instance::one_interval({{0, 0}, {3, 3}});
  // idle 2 vs alpha 1.5: sleeping wins (1.5 < 2).
  PowerDpResult r = solve_power_dp(inst, 1.5);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 2.0 + 1.5 + 1.5);
}

TEST(PowerDpEdge, BridgingTieIsIndifferent) {
  Instance inst = Instance::one_interval({{0, 0}, {3, 3}});
  // idle 2 == alpha 2: either choice costs the same.
  PowerDpResult r = solve_power_dp(inst, 2.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 2.0 + 2.0 + 2.0);
}

TEST(PowerDpEdge, MovableJobShortensBridge) {
  // Job 1 can move adjacent to job 0; bridging becomes free.
  Instance inst = Instance::one_interval({{0, 0}, {1, 8}});
  PowerDpResult r = solve_power_dp(inst, 5.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 2.0 + 5.0);
  EXPECT_EQ(r.schedule.at(1)->time, 1);
}

TEST(PowerDpEdge, SecondProcessorCheaperThanWaiting) {
  // Two jobs forced at the same time on p=2: no serialization possible.
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}}, 2);
  PowerDpResult r = solve_power_dp(inst, 1.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 2.0 + 2.0);  // two wakes, two active units
}

}  // namespace
}  // namespace gapsched

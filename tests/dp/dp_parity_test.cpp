// Execution-layer parity: the DP's answer must be a pure function of the
// instance, not of how the memo is laid out, which dominated branches were
// pruned, or how many threads scanned the root candidates. Every config —
// hash vs dense arena, pruning on/off, 1/2/8 worker threads — must return
// bit-identical results (feasibility, optimum, schedule, reachable-state
// count) on the whole scenario catalog. This is what licenses the engine
// to pick layouts and thread counts opportunistically.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gapsched/dp/dp_common.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/parallel/thread_pool.hpp"
#include "gapsched/scenarios/scenarios.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

constexpr double kAlpha = 2.5;

std::vector<Instance> catalog_draws(int seeds_per_family) {
  std::vector<Instance> out;
  for (const scenarios::Scenario* sc :
       scenarios::ScenarioCatalog::instance().all()) {
    if (!sc->one_interval) continue;  // the Theorem 1/2 DPs are one-interval
    for (int s = 0; s < seeds_per_family; ++s) {
      Instance inst = sc->make(testing::seed_for(7000 + s));
      if (!dp::DpContext(inst).limit_violation().empty()) continue;
      out.push_back(std::move(inst));
    }
  }
  return out;
}

// `same_states` only holds between configs with the same pruning setting:
// pruning skips dominated subtrees entirely, so it shrinks the reachable
// (memoized) state set while leaving the optimum and schedule untouched.
void expect_gap_identical(const GapDpResult& a, const GapDpResult& b,
                          const std::string& what, bool same_states = true) {
  ASSERT_EQ(a.error.empty(), b.error.empty()) << what;
  ASSERT_EQ(a.feasible, b.feasible) << what;
  if (same_states) {
    EXPECT_EQ(a.states, b.states) << what;
  }
  if (!a.feasible) return;
  EXPECT_EQ(a.transitions, b.transitions) << what;
  EXPECT_EQ(a.schedule, b.schedule) << what;
}

void expect_power_identical(const PowerDpResult& a, const PowerDpResult& b,
                            const std::string& what, bool same_states = true) {
  ASSERT_EQ(a.error.empty(), b.error.empty()) << what;
  ASSERT_EQ(a.feasible, b.feasible) << what;
  if (same_states) {
    EXPECT_EQ(a.states, b.states) << what;
  }
  if (!a.feasible) return;
  // Bit-identical, not just near: every config explores the winning branch
  // with the same arithmetic.
  EXPECT_EQ(a.power, b.power) << what;
  EXPECT_EQ(a.schedule, b.schedule) << what;
}

// Arena vs hash memo, and pruning on vs off, across the catalog.
TEST(DpParity, ArenaVsHashAcrossScenarioCatalog) {
  dp::DpOptions hash_opts{.layout = dp::MemoLayout::kHash, .prune = true};
  dp::DpOptions hash_noprune{.layout = dp::MemoLayout::kHash, .prune = false};
  dp::DpOptions arena_opts{.layout = dp::MemoLayout::kArena, .prune = true};
  // Forcing the arena high enough that every catalog draw's state box fits
  // densely; draws whose box still exceeds it fall back to hash, which is
  // itself a config worth exercising.
  arena_opts.arena_max_entries = std::size_t{1} << 26;

  int arena_solves = 0;
  for (const Instance& inst : catalog_draws(2)) {
    const std::string what =
        "n=" + std::to_string(inst.n()) + " p=" + std::to_string(inst.processors);
    const GapDpResult g_hash = solve_gap_dp(inst, hash_opts);
    const GapDpResult g_plain = solve_gap_dp(inst, hash_noprune);
    const GapDpResult g_arena = solve_gap_dp(inst, arena_opts);
    expect_gap_identical(g_hash, g_plain, what + " gap prune/noprune",
                         /*same_states=*/false);
    expect_gap_identical(g_hash, g_arena, what + " gap hash/arena");
    if (g_arena.memo.layout == dp::MemoLayout::kArena) ++arena_solves;

    const PowerDpResult p_hash = solve_power_dp(inst, kAlpha, hash_opts);
    const PowerDpResult p_plain = solve_power_dp(inst, kAlpha, hash_noprune);
    const PowerDpResult p_arena = solve_power_dp(inst, kAlpha, arena_opts);
    expect_power_identical(p_hash, p_plain, what + " power prune/noprune",
                           /*same_states=*/false);
    expect_power_identical(p_hash, p_arena, what + " power hash/arena");
  }
  // The parity sweep must actually have exercised the dense layout.
  EXPECT_GT(arena_solves, 0);
}

// The parallel root scan must be bit-identical at every thread count. The
// merge folds chunk results in candidate order with strict <, reproducing
// the serial first-improvement order exactly.
TEST(DpParity, ParallelRootScanBitIdenticalAt1And2And8Threads) {
  const std::vector<Instance> draws = catalog_draws(1);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    dp::DpOptions par_opts;
    par_opts.pool = &pool;
    par_opts.parallel_min_box = 0;  // force the parallel path on any size
    for (const Instance& inst : draws) {
      const std::string what = "threads=" + std::to_string(threads) +
                               " n=" + std::to_string(inst.n()) +
                               " p=" + std::to_string(inst.processors);
      expect_gap_identical(solve_gap_dp(inst), solve_gap_dp(inst, par_opts),
                           what + " gap");
      expect_power_identical(solve_power_dp(inst, kAlpha),
                             solve_power_dp(inst, kAlpha, par_opts),
                             what + " power");
    }
  }
}

}  // namespace
}  // namespace gapsched

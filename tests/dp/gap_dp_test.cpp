// Exactness of the Theorem 1 dynamic program: cross-validated against the
// independent brute-force subset DP on handcrafted and random instances.

#include "gapsched/dp/gap_dp.hpp"

#include <gtest/gtest.h>

#include "gapsched/exact/brute_force.hpp"
#include "gapsched/gen/generators.hpp"

namespace gapsched {
namespace {

TEST(GapDp, EmptyInstance) {
  Instance inst;
  GapDpResult r = solve_gap_dp(inst);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 0);
}

TEST(GapDp, SingleJob) {
  Instance inst = Instance::one_interval({{5, 9}});
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
  EXPECT_EQ(r.schedule.validate(inst), "");
}

TEST(GapDp, TwoForcedApart) {
  Instance inst = Instance::one_interval({{0, 0}, {7, 7}});
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 2);
}

TEST(GapDp, BridgeJobJoinsSpans) {
  // Third job can sit at time 1, joining the forced jobs at 0 and 2.
  Instance inst = Instance::one_interval({{0, 0}, {2, 2}, {0, 5}});
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
}

TEST(GapDp, Infeasible) {
  Instance inst = Instance::one_interval({{1, 1}, {1, 1}});
  EXPECT_FALSE(solve_gap_dp(inst).feasible);
}

TEST(GapDp, InfeasibleBecauseWindowTooTight) {
  Instance inst = Instance::one_interval({{0, 1}, {0, 1}, {0, 1}});
  EXPECT_FALSE(solve_gap_dp(inst).feasible);
}

TEST(GapDp, TwoProcessorsStackForcedJobs) {
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}, {1, 1}}, 2);
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 2);
  EXPECT_EQ(r.schedule.validate(inst), "");
}

TEST(GapDp, SecondProcessorOnlyWhenNeeded) {
  // Four jobs, all with window [0, 3]: one processor suffices (1 wake-up)
  // even with p = 2.
  Instance inst = Instance::one_interval({{0, 3}, {0, 3}, {0, 3}, {0, 3}}, 2);
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
}

TEST(GapDp, CapacityForcesSecondProcessor) {
  // Four jobs in window [0,1]: needs both processors, 2 wake-ups.
  Instance inst = Instance::one_interval({{0, 1}, {0, 1}, {0, 1}, {0, 1}}, 2);
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 2);
}

TEST(GapDp, WideWindowCompressedTimeline) {
  // Two spread clusters with an enormous desert between them.
  Instance inst = Instance::one_interval(
      {{0, 2}, {0, 2}, {1000000, 1000002}, {1000000, 1000002}});
  GapDpResult r = solve_gap_dp(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 2);
}

TEST(GapDp, ScheduleAchievesReportedTransitions) {
  Prng rng(4242);
  for (int it = 0; it < 25; ++it) {
    Instance inst = gen_feasible_one_interval(
        rng, 7, 12, 3, 1 + static_cast<int>(rng.index(3)));
    GapDpResult r = solve_gap_dp(inst);
    ASSERT_TRUE(r.feasible) << it;
    ASSERT_EQ(r.schedule.validate(inst), "") << it;
    EXPECT_EQ(r.schedule.profile().transitions(), r.transitions) << it;
  }
}

// The headline exactness sweep (experiment T1 in miniature): DP equals the
// independent brute force on random instances across processor counts and
// job families.
struct SweepParams {
  std::uint64_t seed;
  std::size_t n;
  Time horizon;
  Time max_window;
  int processors;
  bool feasible_family;
};

class GapDpExactness : public ::testing::TestWithParam<SweepParams> {};

TEST_P(GapDpExactness, MatchesBruteForce) {
  const SweepParams p = GetParam();
  Prng rng(p.seed);
  for (int it = 0; it < 12; ++it) {
    Instance inst =
        p.feasible_family
            ? gen_feasible_one_interval(rng, p.n, p.horizon, p.max_window,
                                        p.processors)
            : gen_uniform_one_interval(rng, p.n, p.horizon, p.max_window,
                                       p.processors);
    const ExactGapResult bf = brute_force_min_transitions(inst);
    const GapDpResult dp = solve_gap_dp(inst);
    ASSERT_EQ(dp.feasible, bf.feasible) << "it=" << it << " seed=" << p.seed;
    if (bf.feasible) {
      EXPECT_EQ(dp.transitions, bf.transitions)
          << "it=" << it << " seed=" << p.seed << " n=" << p.n
          << " p=" << p.processors;
      EXPECT_EQ(dp.schedule.validate(inst), "");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GapDpExactness,
    ::testing::Values(
        SweepParams{101, 4, 8, 3, 1, false}, SweepParams{102, 5, 8, 4, 1, false},
        SweepParams{103, 6, 10, 4, 1, true}, SweepParams{104, 7, 9, 3, 1, true},
        SweepParams{105, 4, 6, 3, 2, false}, SweepParams{106, 5, 8, 4, 2, false},
        SweepParams{107, 6, 8, 3, 2, true}, SweepParams{108, 7, 10, 4, 2, true},
        SweepParams{109, 4, 6, 3, 3, false}, SweepParams{110, 6, 7, 4, 3, true},
        SweepParams{111, 8, 12, 5, 1, true}, SweepParams{112, 8, 10, 4, 2, true},
        SweepParams{113, 5, 5, 5, 2, false}, SweepParams{114, 6, 6, 2, 3, false},
        SweepParams{115, 9, 14, 4, 1, true}, SweepParams{116, 9, 12, 3, 3, true}),
    [](const auto& info) {
      const SweepParams& p = info.param;
      return "n" + std::to_string(p.n) + "_p" + std::to_string(p.processors) +
             "_s" + std::to_string(p.seed);
    });

}  // namespace
}  // namespace gapsched

// Regression coverage for the shared infinite-cost sentinel (dp::kInfCost),
// the saturating addition that guards it, and the packed-key memo table —
// exercised through near-infeasible instances where most DP subproblems
// carry the sentinel value.

#include <gtest/gtest.h>

#include <unordered_map>

#include "gapsched/dp/dp_common.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/exact/brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/util/prng.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

// ----------------------------------------------------------------- add_sat --

TEST(AddSat, ClampsAtTheSentinel) {
  using dp::add_sat;
  using dp::kInfCost;
  EXPECT_EQ(add_sat(2, 3), 5);
  EXPECT_EQ(add_sat(0, 0), 0);
  EXPECT_EQ(add_sat(kInfCost, 0), kInfCost);
  EXPECT_EQ(add_sat(0, kInfCost), kInfCost);
  EXPECT_EQ(add_sat(kInfCost, kInfCost), kInfCost);
  EXPECT_EQ(add_sat(kInfCost - 1, 1), kInfCost);
  EXPECT_EQ(add_sat(kInfCost - 1, kInfCost - 1), kInfCost);
  EXPECT_EQ(add_sat(kInfCost - 5, 4), kInfCost - 1);
  // Repeated accumulation of sentinel values stays exactly at the sentinel
  // instead of drifting toward (and past) INT64_MAX.
  std::int64_t acc = dp::kInfCost;
  for (int i = 0; i < 1000; ++i) acc = add_sat(acc, kInfCost);
  EXPECT_EQ(acc, kInfCost);
}

// ------------------------------------------------- near-infeasible solves --

// Every job pinned to the same single time on one processor: only one job
// can run, so every k >= 2 subproblem is infeasible and the DP's value
// lattice is almost entirely kInfCost.
TEST(NearInfeasible, OverloadedPointIsCleanlyInfeasible) {
  for (int n = 2; n <= 6; ++n) {
    Instance inst;
    inst.processors = 1;
    for (int j = 0; j < n; ++j) {
      inst.jobs.push_back(Job{TimeSet::window(5, 5)});
    }
    const GapDpResult gap = solve_gap_dp(inst);
    EXPECT_FALSE(gap.feasible) << n;
    const PowerDpResult power = solve_power_dp(inst, 2.0);
    EXPECT_FALSE(power.feasible) << n;
  }
}

// A saturated pipeline: p processors, horizon h, exactly p*h unit jobs with
// full windows is feasible with a unique occupancy profile; one more job
// tips it infeasible. Both sides must agree with the brute force.
TEST(NearInfeasible, SaturatedWindowsFlipAtCapacity) {
  for (int p = 1; p <= 2; ++p) {
    const Time h = 4;
    Instance inst;
    inst.processors = p;
    for (Time cap = 0; cap < h * p; ++cap) {
      inst.jobs.push_back(Job{TimeSet::window(0, h - 1)});
    }
    const GapDpResult full = solve_gap_dp(inst);
    const ExactGapResult full_ref = brute_force_min_transitions(inst);
    ASSERT_TRUE(full.feasible) << p;
    EXPECT_EQ(full.transitions, full_ref.transitions) << p;

    inst.jobs.push_back(Job{TimeSet::window(0, h - 1)});
    const GapDpResult over = solve_gap_dp(inst);
    const ExactGapResult over_ref = brute_force_min_transitions(inst);
    EXPECT_FALSE(over.feasible) << p;
    EXPECT_FALSE(over_ref.feasible) << p;
    EXPECT_FALSE(solve_power_dp(inst, 3.0).feasible) << p;
  }
}

// Tight interleaved combs (every job's window is one or two units wide, with
// duplicates) drive the DP through long chains of infeasible subwindows;
// the optimum must still match the brute force on the feasible draws.
TEST(NearInfeasible, TightCombsMatchBruteForce) {
  for (int site = 0; site < 12; ++site) {
    const std::uint64_t seed = testing::seed_for(300 + site);
    GAPSCHED_TRACE_SEED(seed);
    Prng rng(seed);
    Instance inst;
    inst.processors = 1;
    const std::size_t n = 7;
    for (std::size_t j = 0; j < n; ++j) {
      const Time a = static_cast<Time>(rng.index(n + 2));
      const Time d = a + static_cast<Time>(rng.index(2));
      inst.jobs.push_back(Job{TimeSet::window(a, d)});
    }
    const GapDpResult dp = solve_gap_dp(inst);
    const ExactGapResult ref = brute_force_min_transitions(inst);
    EXPECT_EQ(dp.feasible, ref.feasible) << seed;
    if (dp.feasible) {
      EXPECT_EQ(dp.transitions, ref.transitions) << seed;
      // Transition counts of real schedules are small: far from sentinel
      // territory (the historical overflow risk was kInf-valued partials
      // leaking into sums, not true costs growing large).
      EXPECT_LT(dp.transitions, static_cast<std::int64_t>(n) + 1) << seed;
    }
  }
}

// ------------------------------------------------------------- memo table --

TEST(MemoTable, MatchesUnorderedMapReference) {
  dp::MemoTable<std::int64_t> table;
  std::unordered_map<std::uint64_t, std::int64_t> reference;
  const std::uint64_t seed = testing::seed_for(400);
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  // Enough inserts to force several growth rehashes past the 1024-slot
  // initial capacity, with structured keys like the DP produces.
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key =
        dp::pack_state(rng.index(300), rng.index(300), rng.index(40),
                       static_cast<int>(rng.index(4)),
                       static_cast<int>(rng.index(5)),
                       static_cast<int>(rng.index(5)));
    const std::int64_t value = static_cast<std::int64_t>(rng.index(1 << 20));
    if (reference.emplace(key, value).second) {
      dp::Choice choice;
      choice.tprime_idx = static_cast<std::size_t>(value);
      table.insert(key, value, choice);
    }
  }
  EXPECT_EQ(table.size(), reference.size());
  for (const auto& [key, value] : reference) {
    const auto* entry = table.find(key);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->value, value);
    EXPECT_EQ(entry->choice.tprime_idx, static_cast<std::size_t>(value));
  }
  EXPECT_EQ(table.find(~0ull), nullptr);
  EXPECT_EQ(table.find(dp::pack_state(301, 0, 0, 0, 0, 0)), nullptr);
}

}  // namespace
}  // namespace gapsched

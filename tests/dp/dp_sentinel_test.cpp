// Regression coverage for the shared infinite-cost sentinel (dp::kInfCost),
// the saturating addition that guards it, and the packed-key memo table —
// exercised through near-infeasible instances where most DP subproblems
// carry the sentinel value.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "gapsched/dp/dp_common.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/exact/brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/oracle/oracle.hpp"
#include "gapsched/util/prng.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

// ----------------------------------------------------------------- add_sat --

TEST(AddSat, ClampsAtTheSentinel) {
  using dp::add_sat;
  using dp::kInfCost;
  EXPECT_EQ(add_sat(2, 3), 5);
  EXPECT_EQ(add_sat(0, 0), 0);
  EXPECT_EQ(add_sat(kInfCost, 0), kInfCost);
  EXPECT_EQ(add_sat(0, kInfCost), kInfCost);
  EXPECT_EQ(add_sat(kInfCost, kInfCost), kInfCost);
  EXPECT_EQ(add_sat(kInfCost - 1, 1), kInfCost);
  EXPECT_EQ(add_sat(kInfCost - 1, kInfCost - 1), kInfCost);
  EXPECT_EQ(add_sat(kInfCost - 5, 4), kInfCost - 1);
  // Repeated accumulation of sentinel values stays exactly at the sentinel
  // instead of drifting toward (and past) INT64_MAX.
  std::int64_t acc = dp::kInfCost;
  for (int i = 0; i < 1000; ++i) acc = add_sat(acc, kInfCost);
  EXPECT_EQ(acc, kInfCost);
}

// ------------------------------------------------- near-infeasible solves --

// Every job pinned to the same single time on one processor: only one job
// can run, so every k >= 2 subproblem is infeasible and the DP's value
// lattice is almost entirely kInfCost.
TEST(NearInfeasible, OverloadedPointIsCleanlyInfeasible) {
  for (int n = 2; n <= 6; ++n) {
    Instance inst;
    inst.processors = 1;
    for (int j = 0; j < n; ++j) {
      inst.jobs.push_back(Job{TimeSet::window(5, 5)});
    }
    const GapDpResult gap = solve_gap_dp(inst);
    EXPECT_FALSE(gap.feasible) << n;
    const PowerDpResult power = solve_power_dp(inst, 2.0);
    EXPECT_FALSE(power.feasible) << n;
  }
}

// A saturated pipeline: p processors, horizon h, exactly p*h unit jobs with
// full windows is feasible with a unique occupancy profile; one more job
// tips it infeasible. Both sides must agree with the brute force.
TEST(NearInfeasible, SaturatedWindowsFlipAtCapacity) {
  for (int p = 1; p <= 2; ++p) {
    const Time h = 4;
    Instance inst;
    inst.processors = p;
    for (Time cap = 0; cap < h * p; ++cap) {
      inst.jobs.push_back(Job{TimeSet::window(0, h - 1)});
    }
    const GapDpResult full = solve_gap_dp(inst);
    const ExactGapResult full_ref = brute_force_min_transitions(inst);
    ASSERT_TRUE(full.feasible) << p;
    EXPECT_EQ(full.transitions, full_ref.transitions) << p;

    inst.jobs.push_back(Job{TimeSet::window(0, h - 1)});
    const GapDpResult over = solve_gap_dp(inst);
    const ExactGapResult over_ref = brute_force_min_transitions(inst);
    EXPECT_FALSE(over.feasible) << p;
    EXPECT_FALSE(over_ref.feasible) << p;
    EXPECT_FALSE(solve_power_dp(inst, 3.0).feasible) << p;
  }
}

// Tight interleaved combs (every job's window is one or two units wide, with
// duplicates) drive the DP through long chains of infeasible subwindows;
// the optimum must still match the brute force on the feasible draws.
TEST(NearInfeasible, TightCombsMatchBruteForce) {
  for (int site = 0; site < 12; ++site) {
    const std::uint64_t seed = testing::seed_for(300 + site);
    GAPSCHED_TRACE_SEED(seed);
    Prng rng(seed);
    Instance inst;
    inst.processors = 1;
    const std::size_t n = 7;
    for (std::size_t j = 0; j < n; ++j) {
      const Time a = static_cast<Time>(rng.index(n + 2));
      const Time d = a + static_cast<Time>(rng.index(2));
      inst.jobs.push_back(Job{TimeSet::window(a, d)});
    }
    const GapDpResult dp = solve_gap_dp(inst);
    const ExactGapResult ref = brute_force_min_transitions(inst);
    EXPECT_EQ(dp.feasible, ref.feasible) << seed;
    if (dp.feasible) {
      EXPECT_EQ(dp.transitions, ref.transitions) << seed;
      // Transition counts of real schedules are small: far from sentinel
      // territory (the historical overflow risk was kInf-valued partials
      // leaking into sums, not true costs growing large).
      EXPECT_LT(dp.transitions, static_cast<std::int64_t>(n) + 1) << seed;
    }
  }
}

// ------------------------------------------------------------- memo table --

TEST(MemoTable, MatchesUnorderedMapReference) {
  dp::MemoTable<std::int64_t> table;
  // pack_state now yields a 128-bit StateKey; mirror it as an ordered map
  // over the (hi, lo) pair.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::int64_t> reference;
  const std::uint64_t seed = testing::seed_for(400);
  GAPSCHED_TRACE_SEED(seed);
  Prng rng(seed);
  // Enough inserts to force many growth rehashes past the small initial
  // capacity, with structured keys like the DP produces.
  for (int i = 0; i < 20000; ++i) {
    const dp::StateKey key =
        dp::pack_state(rng.index(300), rng.index(300), rng.index(40),
                       static_cast<int>(rng.index(4)),
                       static_cast<int>(rng.index(5)),
                       static_cast<int>(rng.index(5)));
    const std::int64_t value = static_cast<std::int64_t>(rng.index(1 << 20));
    if (reference.emplace(std::make_pair(key.hi, key.lo), value).second) {
      dp::Choice choice{};
      choice.tprime_idx = static_cast<std::uint32_t>(value);
      table.insert(key, value, choice);
    }
  }
  EXPECT_EQ(table.size(), reference.size());
  for (const auto& [key, value] : reference) {
    const auto* entry = table.find(dp::StateKey{key.first, key.second});
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->value, value);
    EXPECT_EQ(entry->choice.tprime_idx, static_cast<std::uint32_t>(value));
  }
  EXPECT_EQ(table.find(dp::StateKey{~0ull, ~0ull}), nullptr);
  EXPECT_EQ(table.find(dp::pack_state(301, 0, 0, 0, 0, 0)), nullptr);
}

TEST(MemoTable, ExtremeCapacityHintsDoNotOverflow) {
  // The capacity loop used to evaluate `cap * 7 < expected * 10`, which
  // wraps for huge hints: expected = 2^61 turned into an allocation bomb
  // (the loop doubled cap toward 2^60 slots) and expected near SIZE_MAX
  // wrapped to a tiny target. Both extremes must now construct a modest,
  // fully functional table.
  for (const std::size_t hint :
       {std::size_t{1} << 61, std::numeric_limits<std::size_t>::max(),
        std::numeric_limits<std::size_t>::max() / 7}) {
    dp::MemoTable<std::int64_t> table(hint);
    for (std::uint64_t k = 0; k < 100; ++k) {
      table.insert(dp::pack_state(k, k, 1, 0, 1, 1),
                   static_cast<std::int64_t>(k), dp::Choice{});
    }
    EXPECT_EQ(table.size(), 100u);
    for (std::uint64_t k = 0; k < 100; ++k) {
      const auto* entry = table.find(dp::pack_state(k, k, 1, 0, 1, 1));
      ASSERT_NE(entry, nullptr) << k;
      EXPECT_EQ(entry->value, static_cast<std::int64_t>(k));
    }
  }
}

TEST(MemoTable, ModestHintsStillPreallocate) {
  // Sanity on the non-extreme path: a hint-sized table absorbs that many
  // inserts (the growth path stays correct regardless, per the reference
  // test above).
  dp::MemoTable<std::int64_t> table(5000);
  for (std::uint64_t k = 0; k < 5000; ++k) {
    table.insert(dp::StateKey{k, ~k}, static_cast<std::int64_t>(k),
                 dp::Choice{});
  }
  EXPECT_EQ(table.size(), 5000u);
  EXPECT_EQ(table.find(dp::StateKey{4999, ~std::uint64_t{4999}})->value, 4999);
}

// ------------------------------------------------- packed-key limit guard --

// |Theta| past 2^20 would alias pack_state keys silently (i1/i2 get
// dp::kThetaIndexBits bits each in the 128-bit key): distinct DP states
// would collide in the memo and the solver would return whatever the
// first-inserted state computed — wrong optima with no diagnostic. The
// guard must reject before the first pack_state call.
TEST(PackedKeyGuard, OversizedThetaIsRejectedNotCorrupted) {
  // 2100 jobs with wide, chained-overlap windows: every consecutive pair
  // overlaps (one cluster, nothing for prep to cut), the merged Prop 2.1
  // candidate axis covers the whole ~2100*520 span and exceeds 2^20
  // entries, while n stays under the 4095 job limit so the Theta
  // diagnostic is the one that fires.
  std::vector<std::pair<Time, Time>> windows;
  for (int j = 0; j < 2100; ++j) {
    const Time lo = static_cast<Time>(j) * 520;
    windows.emplace_back(lo, lo + 600);
  }
  const Instance inst = Instance::one_interval(windows);
  dp::DpContext ctx(inst);
  ASSERT_GE(ctx.theta.size(), dp::kMaxThetaSize);
  ASSERT_LE(inst.n(), dp::kMaxDpJobs);

  const GapDpResult gap = solve_gap_dp(inst);
  EXPECT_FALSE(gap.error.empty());
  EXPECT_NE(gap.error.find("candidate-time axis"), std::string::npos)
      << gap.error;
  EXPECT_FALSE(gap.feasible);
  EXPECT_EQ(gap.states, 0u);

  const PowerDpResult power = solve_power_dp(inst, 2.0);
  EXPECT_FALSE(power.error.empty());
  EXPECT_FALSE(power.feasible);
}

TEST(PackedKeyGuard, JobAndProcessorLimitsAreEnforced) {
  // n over 4095 (windows overlap so prep cannot help a direct call; the
  // chained windows keep |Theta| ~ n, far under the Theta limit, so the
  // job-limit diagnostic is the one that fires).
  Instance many;
  many.processors = 1;
  for (int j = 0; j < 4096; ++j) {
    many.jobs.push_back(Job{TimeSet::window(j, j + 1)});
  }
  const GapDpResult over_n = solve_gap_dp(many);
  EXPECT_FALSE(over_n.error.empty());
  EXPECT_NE(over_n.error.find("job limit"), std::string::npos) << over_n.error;

  // p over 4095.
  Instance wide = Instance::one_interval({{0, 3}, {1, 4}});
  wide.processors = 4096;
  const GapDpResult over_p = solve_gap_dp(wide);
  EXPECT_FALSE(over_p.error.empty());
  EXPECT_NE(over_p.error.find("processor limit"), std::string::npos)
      << over_p.error;

  // At the limits the DP still runs (sanity: the guard is strict, not
  // off-by-one): p = 4095 with two loose jobs is trivially feasible.
  wide.processors = 4095;
  const GapDpResult at_p = solve_gap_dp(wide);
  EXPECT_TRUE(at_p.error.empty());
  EXPECT_TRUE(at_p.feasible);
}

// The widened packed key must be honest at its corners: an instance at
// exactly n = kMaxDpJobs solves and audits clean, one past is rejected.
// The seed engine's 8-bit job axis rejected everything past n = 255.
TEST(PackedKeyGuard, ExactJobMaximumSolvesAndAuditsOnePastRejected) {
  std::vector<std::pair<Time, Time>> windows;
  windows.reserve(dp::kMaxDpJobs);
  for (std::size_t j = 0; j < dp::kMaxDpJobs; ++j) {
    windows.emplace_back(static_cast<Time>(j), static_cast<Time>(j));
  }
  const Instance inst = Instance::one_interval(windows);

  const GapDpResult gap = solve_gap_dp(inst);
  ASSERT_TRUE(gap.error.empty()) << gap.error;
  ASSERT_TRUE(gap.feasible);
  EXPECT_EQ(gap.transitions, 1);  // one unbroken busy span
  const oracle::ScheduleAudit gap_audit = oracle::audit_schedule(inst, gap.schedule);
  EXPECT_TRUE(gap_audit.valid) << gap_audit.violation_summary();
  EXPECT_TRUE(gap_audit.complete);
  EXPECT_EQ(gap_audit.transitions, gap.transitions);

  const double alpha = 2.0;
  const PowerDpResult power = solve_power_dp(inst, alpha);
  ASSERT_TRUE(power.error.empty()) << power.error;
  ASSERT_TRUE(power.feasible);
  // n active units plus one wake-up.
  EXPECT_DOUBLE_EQ(power.power, static_cast<double>(dp::kMaxDpJobs) + alpha);
  const oracle::ScheduleAudit power_audit =
      oracle::audit_schedule(inst, power.schedule);
  ASSERT_TRUE(power_audit.valid) << power_audit.violation_summary();
  EXPECT_DOUBLE_EQ(power.power, oracle::min_power(power_audit, alpha));

  // One past: rejected with the job-limit diagnostic, no solve attempted.
  windows.emplace_back(static_cast<Time>(dp::kMaxDpJobs),
                       static_cast<Time>(dp::kMaxDpJobs));
  const GapDpResult over = solve_gap_dp(Instance::one_interval(windows));
  EXPECT_FALSE(over.error.empty());
  EXPECT_NE(over.error.find("job limit"), std::string::npos) << over.error;
  EXPECT_EQ(over.states, 0u);
}

// An n > 255 one-cluster instance the seed engine rejected outright now
// solves exactly and survives the independent oracle audit.
TEST(PackedKeyGuard, FormerlyRejectedMidsizeInstanceSolvesExactly) {
  std::vector<std::pair<Time, Time>> windows;
  for (std::size_t j = 0; j < 300; ++j) {
    // Slack-2 chain: feasible, optimum still one busy span.
    windows.emplace_back(static_cast<Time>(j), static_cast<Time>(j) + 2);
  }
  const Instance inst = Instance::one_interval(windows);
  ASSERT_GT(inst.n(), 255u);  // the seed's packed-key ceiling

  const GapDpResult gap = solve_gap_dp(inst);
  ASSERT_TRUE(gap.error.empty()) << gap.error;
  ASSERT_TRUE(gap.feasible);
  EXPECT_EQ(gap.transitions, 1);
  const oracle::ScheduleAudit audit = oracle::audit_schedule(inst, gap.schedule);
  EXPECT_TRUE(audit.valid) << audit.violation_summary();
  EXPECT_TRUE(audit.complete);
  EXPECT_EQ(audit.transitions, gap.transitions);
}

}  // namespace
}  // namespace gapsched

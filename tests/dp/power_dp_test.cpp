// Exactness of the Theorem 2 power-minimization DP against the independent
// brute force, plus structural invariants of its schedules.

#include "gapsched/dp/power_dp.hpp"

#include <gtest/gtest.h>

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/exact/power_brute_force.hpp"
#include "gapsched/gen/generators.hpp"

namespace gapsched {
namespace {

TEST(PowerDp, EmptyInstance) {
  Instance inst;
  PowerDpResult r = solve_power_dp(inst, 2.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 0.0);
}

TEST(PowerDp, SingleJob) {
  Instance inst = Instance::one_interval({{0, 9}});
  PowerDpResult r = solve_power_dp(inst, 2.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 3.0);  // 1 active unit + one wake at alpha=2
}

TEST(PowerDp, BridgeVersusSleep) {
  Instance inst = Instance::one_interval({{0, 0}, {4, 4}});
  EXPECT_DOUBLE_EQ(solve_power_dp(inst, 5.0).power, 2.0 + 5.0 + 3.0);
  EXPECT_DOUBLE_EQ(solve_power_dp(inst, 1.0).power, 2.0 + 1.0 + 1.0);
}

TEST(PowerDp, Infeasible) {
  Instance inst = Instance::one_interval({{3, 3}, {3, 3}});
  EXPECT_FALSE(solve_power_dp(inst, 1.0).feasible);
}

TEST(PowerDp, TwoProcessors) {
  // Forced simultaneous jobs then one adjacent job.
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}, {1, 1}}, 2);
  PowerDpResult r = solve_power_dp(inst, 10.0);
  ASSERT_TRUE(r.feasible);
  // 3 active units + 2 wakes (second processor's idle unit at t=1 is not
  // kept active because nothing follows).
  EXPECT_DOUBLE_EQ(r.power, 3.0 + 20.0);
}

TEST(PowerDp, LargeAlphaMatchesGapObjective) {
  // For alpha far above every idle stretch, power = busy + alpha*transitions
  // and the optimal transition counts must agree with the gap DP.
  Prng rng(555);
  for (int it = 0; it < 10; ++it) {
    Instance inst = gen_feasible_one_interval(rng, 6, 10, 3, 2);
    const double alpha = 1000.0;
    PowerDpResult pw = solve_power_dp(inst, alpha);
    GapDpResult gp = solve_gap_dp(inst);
    ASSERT_TRUE(pw.feasible);
    ASSERT_TRUE(gp.feasible);
    // Bridging can shave at most (horizon) off; transitions dominate.
    const auto implied =
        static_cast<std::int64_t>((pw.power - 6.0) / alpha + 0.5);
    EXPECT_LE(implied, gp.transitions) << it;
  }
}

TEST(PowerDp, AlphaZero) {
  Prng rng(77);
  Instance inst = gen_feasible_one_interval(rng, 5, 9, 2, 1);
  PowerDpResult r = solve_power_dp(inst, 0.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 5.0);
}

struct PowerSweep {
  std::uint64_t seed;
  std::size_t n;
  Time horizon;
  Time max_window;
  int processors;
  double alpha;
};

class PowerDpExactness : public ::testing::TestWithParam<PowerSweep> {};

TEST_P(PowerDpExactness, MatchesBruteForce) {
  const PowerSweep p = GetParam();
  Prng rng(p.seed);
  for (int it = 0; it < 8; ++it) {
    Instance inst = (it % 2 == 0)
                        ? gen_feasible_one_interval(rng, p.n, p.horizon,
                                                    p.max_window, p.processors)
                        : gen_uniform_one_interval(rng, p.n, p.horizon,
                                                   p.max_window, p.processors);
    const ExactPowerResult bf = brute_force_min_power(inst, p.alpha);
    const PowerDpResult dp = solve_power_dp(inst, p.alpha);
    ASSERT_EQ(dp.feasible, bf.feasible) << "it=" << it;
    if (bf.feasible) {
      EXPECT_NEAR(dp.power, bf.power, 1e-9)
          << "it=" << it << " seed=" << p.seed << " alpha=" << p.alpha;
      EXPECT_EQ(dp.schedule.validate(inst), "");
      // The DP's schedule, evaluated by the independent profile-bridging
      // formula, must realize the claimed power.
      EXPECT_NEAR(dp.schedule.profile().optimal_power(p.alpha), dp.power, 1e-9)
          << "it=" << it;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PowerDpExactness,
    ::testing::Values(PowerSweep{201, 4, 8, 3, 1, 0.5},
                      PowerSweep{202, 5, 8, 4, 1, 2.0},
                      PowerSweep{203, 6, 10, 4, 1, 5.0},
                      PowerSweep{204, 5, 8, 3, 2, 1.0},
                      PowerSweep{205, 6, 8, 4, 2, 3.0},
                      PowerSweep{206, 4, 6, 3, 3, 2.5},
                      PowerSweep{207, 7, 10, 4, 1, 1.5},
                      PowerSweep{208, 7, 9, 3, 2, 0.0},
                      PowerSweep{209, 6, 9, 5, 2, 10.0},
                      PowerSweep{210, 8, 12, 4, 1, 4.0}),
    [](const auto& info) {
      const PowerSweep& p = info.param;
      return "n" + std::to_string(p.n) + "_p" + std::to_string(p.processors) +
             "_s" + std::to_string(p.seed);
    });

}  // namespace
}  // namespace gapsched

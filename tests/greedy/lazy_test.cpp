#include "gapsched/greedy/lazy.hpp"

#include <gtest/gtest.h>

#include "gapsched/baptiste/baptiste.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "gapsched/online/online_edf.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(Lazy, EmptyInstance) {
  Instance inst;
  LazyResult r = lazy_schedule(inst);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 0);
}

TEST(Lazy, DefersToTheDeadline) {
  Instance inst = Instance::one_interval({{0, 9}});
  LazyResult r = lazy_schedule(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.at(0)->time, 9);
}

TEST(Lazy, BatchesAtPressurePoints) {
  // Loose jobs plus a tight comb: laziness pushes the loose jobs into the
  // comb era instead of running them at time 0 like online EDF does.
  Instance inst = Instance::one_interval(
      {{0, 14}, {0, 14}, {10, 10}, {12, 12}, {14, 14}});
  LazyResult lazy = lazy_schedule(inst);
  OnlineResult eager = online_edf(inst);
  ASSERT_TRUE(lazy.feasible);
  ASSERT_TRUE(eager.feasible);
  EXPECT_EQ(lazy.transitions, 1);  // everything inside [10, 14]
  EXPECT_GT(eager.transitions, lazy.transitions);
}

TEST(Lazy, Infeasible) {
  Instance inst = Instance::one_interval({{4, 4}, {4, 4}});
  EXPECT_FALSE(lazy_schedule(inst).feasible);
}

TEST(Lazy, PinnedJobsRunOnTime) {
  Instance inst = Instance::one_interval({{3, 3}, {7, 7}});
  LazyResult r = lazy_schedule(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.at(0)->time, 3);
  EXPECT_EQ(r.schedule.at(1)->time, 7);
}

// Properties: always feasible on feasible input, valid schedules, and
// sandwiched between OPT and online EDF is NOT guaranteed — but >= OPT is.
class LazyProperty : public ::testing::TestWithParam<int> {};

TEST_P(LazyProperty, FeasibleAndAboveOpt) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 199 + 3);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst = gen_uniform_one_interval(rng, 9, 16, 5, 1);
  const bool feasible = is_feasible(inst);
  LazyResult r = lazy_schedule(inst);
  ASSERT_EQ(r.feasible, feasible);
  if (!feasible) return;
  EXPECT_EQ(r.schedule.validate(inst), "");
  EXPECT_EQ(r.schedule.profile().transitions(), r.transitions);
  const BaptisteResult opt = solve_baptiste(inst);
  EXPECT_GE(r.transitions, opt.spans);
}

INSTANTIATE_TEST_SUITE_P(Random, LazyProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace gapsched

#include "gapsched/greedy/fhkn_greedy.hpp"

#include <gtest/gtest.h>

#include "gapsched/baptiste/baptiste.hpp"
#include "gapsched/gen/generators.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(FhknGreedy, EmptyInstance) {
  Instance inst;
  FhknResult r = fhkn_greedy(inst);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 0);
}

TEST(FhknGreedy, Infeasible) {
  Instance inst = Instance::one_interval({{1, 1}, {1, 1}});
  EXPECT_FALSE(fhkn_greedy(inst).feasible);
}

TEST(FhknGreedy, PacksSingleCluster) {
  Instance inst = Instance::one_interval({{0, 5}, {0, 5}, {0, 5}});
  FhknResult r = fhkn_greedy(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.validate(inst), "");
  EXPECT_EQ(r.transitions, 1);
}

TEST(FhknGreedy, KeepsForcedGaps) {
  Instance inst = Instance::one_interval({{0, 0}, {10, 10}});
  FhknResult r = fhkn_greedy(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 2);
}

TEST(FhknGreedy, InterleavingInstance) {
  // Greedy should also manage to keep the loose jobs inside the tight comb.
  Instance inst = Instance::one_interval(
      {{10, 10}, {12, 12}, {14, 14}, {0, 20}, {0, 20}});
  FhknResult r = fhkn_greedy(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.validate(inst), "");
  EXPECT_LE(r.transitions, 3);  // 3-approx of the optimal single span
}

// Approximation-factor property (Table T2 in miniature): greedy within 3x of
// Baptiste's optimum on random one-interval instances, and always feasible.
class FhknRatio : public ::testing::TestWithParam<int> {};

TEST_P(FhknRatio, WithinFactorThree) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 71 + 11);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst = (GetParam() % 2 == 0)
                      ? gen_uniform_one_interval(rng, 8, 14, 5, 1)
                      : gen_feasible_one_interval(rng, 8, 16, 3, 1);
  const BaptisteResult opt = solve_baptiste(inst);
  const FhknResult grd = fhkn_greedy(inst);
  ASSERT_EQ(grd.feasible, opt.feasible);
  if (!opt.feasible) return;
  ASSERT_EQ(grd.schedule.validate(inst), "");
  EXPECT_EQ(grd.schedule.profile().transitions(), grd.transitions);
  EXPECT_GE(grd.transitions, opt.spans);  // optimality of the exact DP
  EXPECT_LE(grd.transitions, 3 * opt.spans) << "3-approximation violated";
}

INSTANTIATE_TEST_SUITE_P(Random, FhknRatio, ::testing::Range(0, 40));

}  // namespace
}  // namespace gapsched

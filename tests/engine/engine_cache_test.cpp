// The stateful Engine API: content-addressed solve cache semantics
// (hit-on-identical, miss-on-consumed-param-change, canonical-form
// equivalence), identical-component deduplication through the prep
// pipeline, streaming batch delivery, per-engine registries, LRU eviction,
// and the batch summary. The concurrency tests here also run under the CI
// ASan/UBSan lane.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "gapsched/core/hash.hpp"
#include "gapsched/core/transforms.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/prep/prep.hpp"
#include "../support/test_seed.hpp"

namespace gapsched::engine {
namespace {

Instance small_instance(std::uint64_t site) {
  Prng rng(testing::seed_for(site));
  return gen_feasible_one_interval(rng, 8, 16, 3, 1);
}

Instance shifted(const Instance& inst, Time delta) {
  Instance out;
  out.processors = inst.processors;
  for (const Job& j : inst.jobs) out.jobs.push_back(Job{j.allowed.shifted(delta)});
  return out;
}

Instance reversed(const Instance& inst) {
  Instance out;
  out.processors = inst.processors;
  out.jobs.assign(inst.jobs.rbegin(), inst.jobs.rend());
  return out;
}

/// `copies` byte-identical far-apart clusters of three jobs each.
Instance identical_clusters(int copies) {
  Instance out;
  const Time spacing = 8 + static_cast<Time>(copies) * 3 + 64;
  for (int i = 0; i < copies; ++i) {
    const Time base = static_cast<Time>(i) * spacing;
    out.jobs.push_back(Job{TimeSet::window(base, base + 4)});
    out.jobs.push_back(Job{TimeSet::window(base + 1, base + 5)});
    out.jobs.push_back(Job{TimeSet::window(base + 3, base + 7)});
  }
  return out;
}

// -------------------------------------------------------- cache semantics --

TEST(EngineCache, HitOnIdenticalRequest) {
  Engine eng;
  SolveRequest req{small_instance(30), Objective::kGaps, {}};

  const SolveResult first = eng.solve("gap_dp", req);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_FALSE(first.stats.cache_hit);

  const SolveResult second = eng.solve("gap_dp", req);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.stats.cache_hit);
  EXPECT_EQ(second.feasible, first.feasible);
  EXPECT_EQ(second.cost, first.cost);
  EXPECT_EQ(second.transitions, first.transitions);
  EXPECT_EQ(second.schedule, first.schedule);

  const CacheStats stats = eng.cache_stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.insertions, 1u);
}

TEST(EngineCache, MissOnConsumedParamChange) {
  Engine eng;
  const Instance inst = small_instance(31);

  // power_dp consumes alpha: changing it must key a fresh entry.
  SolveRequest power{inst, Objective::kPower, {}};
  power.params.alpha = 2.0;
  eng.solve("power_dp", power);
  EXPECT_TRUE(eng.solve("power_dp", power).stats.cache_hit);
  power.params.alpha = 2.5;
  EXPECT_FALSE(eng.solve("power_dp", power).stats.cache_hit);

  // restart_greedy consumes max_spans.
  SolveRequest tp{inst, Objective::kThroughput, {}};
  tp.params.max_spans = 1;
  eng.solve("restart_greedy", tp);
  EXPECT_TRUE(eng.solve("restart_greedy", tp).stats.cache_hit);
  tp.params.max_spans = 2;
  EXPECT_FALSE(eng.solve("restart_greedy", tp).stats.cache_hit);

  // powermin_approx consumes swap_size / block_size.
  SolveRequest apx{inst, Objective::kPower, {}};
  eng.solve("powermin_approx", apx);
  EXPECT_TRUE(eng.solve("powermin_approx", apx).stats.cache_hit);
  apx.params.swap_size = 1;
  EXPECT_FALSE(eng.solve("powermin_approx", apx).stats.cache_hit);
  apx.params.block_size = 3;
  EXPECT_FALSE(eng.solve("powermin_approx", apx).stats.cache_hit);
}

TEST(EngineCache, UnconsumedParamDoesNotBustTheCache) {
  Engine eng;
  SolveRequest req{small_instance(32), Objective::kGaps, {}};
  req.params.alpha = 2.0;
  eng.solve("gap_dp", req);
  // gap_dp reads no alpha (SolverInfo::params), so the key is unchanged —
  // and so are validate / time_limit_s, which are post-processing concerns.
  req.params.alpha = 9.0;
  req.params.time_limit_s = 1e6;
  EXPECT_TRUE(eng.solve("gap_dp", req).stats.cache_hit);
}

TEST(EngineCache, CanonicalEquivalenceHitsAndSurvivesTheOracle) {
  Engine eng;
  const Instance base = small_instance(33);
  SolveRequest req{base, Objective::kGaps, {}};
  const SolveResult first = eng.solve("gap_dp", req);
  ASSERT_TRUE(first.ok && first.feasible) << first.error;

  // Time-shifted and job-permuted copies canonicalize — and therefore hash
  // — identically (the core digest pins the same equivalence).
  EXPECT_EQ(digest(prep::canonicalize(base).instance),
            digest(prep::canonicalize(shifted(base, 97)).instance));
  EXPECT_EQ(digest(prep::canonicalize(base).instance),
            digest(prep::canonicalize(reversed(base)).instance));

  SolveRequest moved{shifted(base, 97), Objective::kGaps, {}};
  moved.params.validate = true;  // the oracle audits the mapped-back answer
  const SolveResult hit = eng.solve("gap_dp", moved);
  ASSERT_TRUE(hit.ok) << hit.error;
  EXPECT_TRUE(hit.stats.cache_hit);
  EXPECT_EQ(hit.cost, first.cost);
  EXPECT_TRUE(hit.audited);
  EXPECT_EQ(hit.audit_error, "");
  EXPECT_EQ(hit.schedule.validate(moved.instance), "");

  SolveRequest permuted{reversed(base), Objective::kGaps, {}};
  permuted.params.validate = true;
  const SolveResult hit2 = eng.solve("gap_dp", permuted);
  ASSERT_TRUE(hit2.ok) << hit2.error;
  EXPECT_TRUE(hit2.stats.cache_hit);
  EXPECT_EQ(hit2.cost, first.cost);
  EXPECT_EQ(hit2.audit_error, "");
  EXPECT_EQ(hit2.schedule.validate(permuted.instance), "");
}

// The whole-instance path (families outside the decomposition pipeline)
// also canonicalizes: a heuristic's cached answer serves shifted copies.
TEST(EngineCache, WholeInstancePathCanonicalizes) {
  Engine eng;
  const Instance base = small_instance(34);
  SolveRequest req{base, Objective::kGaps, {}};
  const SolveResult first = eng.solve("fhkn_greedy", req);
  ASSERT_TRUE(first.ok) << first.error;

  SolveRequest moved{shifted(base, 41), Objective::kGaps, {}};
  moved.params.validate = true;
  const SolveResult hit = eng.solve("fhkn_greedy", moved);
  ASSERT_TRUE(hit.ok) << hit.error;
  EXPECT_TRUE(hit.stats.cache_hit);
  EXPECT_EQ(hit.cost, first.cost);
  EXPECT_EQ(hit.audit_error, "");
}

// A cold miss must behave exactly like the stateless path: heuristic
// families are job-order sensitive, so the engine solves the requester's
// original instance and only the STORED entry is rewritten in canonical
// coordinates.
TEST(EngineCache, ColdMissMatchesTheStatelessPathBitForBit) {
  // Deliberately unsorted, origin off zero: canonicalization would both
  // permute and shift this instance.
  const Instance inst =
      Instance::one_interval({{12, 14}, {5, 9}, {10, 13}, {5, 7}, {8, 15}});
  Engine cached;
  Engine stateless({.cache = false});
  for (const char* solver : {"fhkn_greedy", "lazy", "online_edf", "gap_dp"}) {
    SCOPED_TRACE(solver);
    SolveRequest req{inst, Objective::kGaps, {}};
    const SolveResult cold = cached.solve(solver, req);
    const SolveResult plain = stateless.solve(solver, req);
    ASSERT_TRUE(cold.ok && plain.ok) << cold.error << plain.error;
    EXPECT_FALSE(cold.stats.cache_hit);
    EXPECT_EQ(cold.feasible, plain.feasible);
    EXPECT_EQ(cold.cost, plain.cost);
    EXPECT_EQ(cold.schedule, plain.schedule);
  }
}

TEST(EngineCache, CacheOffEngineNeverHits) {
  Engine eng({.cache = false});
  SolveRequest req{small_instance(35), Objective::kGaps, {}};
  eng.solve("gap_dp", req);
  const SolveResult second = eng.solve("gap_dp", req);
  EXPECT_FALSE(second.stats.cache_hit);
  const CacheStats stats = eng.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

// ------------------------------------------------------- component dedup --

TEST(EngineCache, IdenticalComponentDedupOn300Clusters) {
  Engine eng;
  const Instance inst = identical_clusters(300);
  ASSERT_EQ(inst.n(), 900u);

  // Ground truth: one cluster solved directly.
  const GapDpResult cluster = solve_gap_dp(identical_clusters(1));
  ASSERT_TRUE(cluster.feasible);

  SolveRequest req{inst, Objective::kGaps, {}};
  req.params.validate = true;
  const SolveResult r = eng.solve("gap_dp", req);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.stats.components, 300u);
  EXPECT_EQ(r.stats.components_deduped, 299u);
  EXPECT_FALSE(r.stats.cache_hit);  // the representative was a fresh solve
  EXPECT_EQ(r.transitions, 300 * cluster.transitions);
  EXPECT_TRUE(r.schedule.complete());
  EXPECT_EQ(r.audit_error, "");

  // Second request: the lone representative now hits the cache, so the
  // whole answer is served without a solver call.
  const SolveResult warm = eng.solve("gap_dp", req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(warm.stats.component_cache_hits, 1u);
  EXPECT_EQ(warm.stats.components_deduped, 299u);
  EXPECT_EQ(warm.transitions, r.transitions);
  EXPECT_EQ(warm.audit_error, "");
  // states always sum the work embodied in the answer's unique parts —
  // the cached entry reports the DP states that originally produced it,
  // matching the cold solve's accounting.
  EXPECT_EQ(warm.stats.states, r.stats.states);
  EXPECT_GT(warm.stats.states, 0u);
}

// The length-aware power compression normalizes cache keys across dead-run
// lengths: a time-stretched copy of a power workload (every interior dead
// run dilated beyond the cap ceil(alpha) + 1) compresses to the same
// canonical components and is served entirely from the cache.
TEST(EngineCache, PowerCompressionNormalizesStretchedCopies) {
  Engine eng;
  // One sparse chain: runs of 5 between pinned jobs stay under the cut
  // threshold max(n, ceil(alpha)) = 10 even after doubling, so the dead
  // runs live INSIDE the single component before and after the stretch and
  // only compression can normalize them.
  std::vector<std::pair<Time, Time>> windows;
  for (int i = 0; i < 10; ++i) {
    const Time t = static_cast<Time>(i) * 6;
    windows.emplace_back(t, t);
  }
  const Instance inst = Instance::one_interval(windows);
  SolveRequest req{inst, Objective::kPower, {}};
  req.params.alpha = 2.5;  // cap = 4 < run length 5: every run truncates
  req.params.validate = true;
  const SolveResult cold = eng.solve("power_dp", req);
  ASSERT_TRUE(cold.ok && cold.feasible) << cold.error;
  EXPECT_FALSE(cold.stats.cache_hit);
  EXPECT_GT(cold.stats.dead_time_removed, 0);
  EXPECT_EQ(cold.audit_error, "");

  // Dilate every dead run 5 -> 10: a different instance on a longer
  // horizon, but the same canonical compressed form.
  SolveRequest stretched{stretch_dead_time(inst, 2, 4), Objective::kPower,
                         {}};
  stretched.params.alpha = 2.5;
  stretched.params.validate = true;
  ASSERT_NE(stretched.instance.latest_deadline(), inst.latest_deadline());
  const SolveResult warm = eng.solve("power_dp", stretched);
  ASSERT_TRUE(warm.ok && warm.feasible) << warm.error;
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_DOUBLE_EQ(warm.cost, cold.cost);
  EXPECT_EQ(warm.audit_error, "");
  EXPECT_EQ(warm.schedule.validate(stretched.instance), "");

  // Without compression the stretched copy keys apart and must re-solve.
  SolveRequest raw = stretched;
  raw.params.compress = false;
  const SolveResult fresh = eng.solve("power_dp", raw);
  ASSERT_TRUE(fresh.ok) << fresh.error;
  EXPECT_FALSE(fresh.stats.cache_hit);
  EXPECT_DOUBLE_EQ(fresh.cost, cold.cost);
}

// Dead-time compression makes gap-objective components that differ only in
// interior dead-run lengths share one canonical key: {0},{4} and {0},{5}
// both compress to {0},{2}.
TEST(EngineCache, CompressionDedupsComponentsWithDifferentDeadRuns) {
  Instance inst = Instance::one_interval({{0, 0}, {4, 4}, {100, 100},
                                          {105, 105}});
  Engine eng;
  SolveRequest req{inst, Objective::kGaps, {}};
  req.params.validate = true;
  const SolveResult r = eng.solve("gap_dp", req);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.stats.components, 2u);
  EXPECT_EQ(r.stats.components_deduped, 1u);
  // Each pinned pair needs two spans; the dedup must not distort costs.
  EXPECT_EQ(r.transitions, 4);
  EXPECT_EQ(r.audit_error, "");
  // The shared compressed schedule maps back through each component's own
  // dead-run lengths.
  EXPECT_EQ(r.schedule.at(0)->time, 0);
  EXPECT_EQ(r.schedule.at(1)->time, 4);
  EXPECT_EQ(r.schedule.at(2)->time, 100);
  EXPECT_EQ(r.schedule.at(3)->time, 105);
}

// --------------------------------------------------------------- streaming --

TEST(EngineStream, DeliversEveryResultOnceAndKeepsRequestOrder) {
  Engine eng;
  std::vector<BatchJob> jobs;
  for (int seed = 0; seed < 12; ++seed) {
    jobs.push_back({"gap_dp", {small_instance(600 + seed),
                               Objective::kGaps, {}}});
  }
  jobs.push_back({"no_such_solver", {small_instance(1), Objective::kGaps, {}}});

  std::set<std::size_t> delivered;
  std::size_t callbacks = 0;
  const std::vector<SolveResult> results = eng.solve_stream(
      jobs, [&](std::size_t index, const SolveResult& r) {
        // Callback invocations are serialized by the engine; no locking.
        ++callbacks;
        EXPECT_TRUE(delivered.insert(index).second) << "duplicate " << index;
        if (jobs[index].solver == "no_such_solver") {
          EXPECT_FALSE(r.ok);
        }
      });
  ASSERT_EQ(results.size(), jobs.size());
  EXPECT_EQ(callbacks, jobs.size());
  EXPECT_EQ(delivered.size(), jobs.size());

  // Request order in the returned vector, and each slot answers its own
  // request (exact costs are canonical-form independent).
  for (std::size_t i = 0; i + 1 < jobs.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << i;
    const GapDpResult direct = solve_gap_dp(jobs[i].request.instance);
    EXPECT_EQ(results[i].feasible, direct.feasible) << i;
    if (direct.feasible) {
      EXPECT_EQ(results[i].transitions, direct.transitions) << i;
    }
  }
  EXPECT_FALSE(results.back().ok);
}

TEST(EngineStream, ConcurrentStreamsShareTheCacheSafely) {
  // Two threads stream overlapping batches through one engine: the solve
  // cache (and its component dedup) is hammered concurrently. Run under
  // the CI ASan lane, this is the thread-safety check for the cache.
  Engine eng;
  std::vector<BatchJob> jobs;
  for (int seed = 0; seed < 6; ++seed) {
    jobs.push_back({"gap_dp", {identical_clusters(20 + seed),
                               Objective::kGaps, {}}});
    jobs.push_back({"power_dp", {small_instance(700 + seed),
                                 Objective::kPower, {}}});
  }

  std::vector<SolveResult> a, b;
  std::atomic<int> delivered{0};
  const Engine::StreamCallback count = [&](std::size_t,
                                           const SolveResult&) {
    delivered.fetch_add(1);
  };
  std::thread ta([&] { a = eng.solve_stream(jobs, count); });
  std::thread tb([&] { b = eng.solve_stream(jobs, count); });
  ta.join();
  tb.join();

  EXPECT_EQ(delivered.load(), static_cast<int>(2 * jobs.size()));
  ASSERT_EQ(a.size(), jobs.size());
  ASSERT_EQ(b.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(a[i].ok) << a[i].error;
    ASSERT_TRUE(b[i].ok) << b[i].error;
    EXPECT_EQ(a[i].feasible, b[i].feasible) << i;
    EXPECT_EQ(a[i].cost, b[i].cost) << i;
    EXPECT_EQ(a[i].schedule, b[i].schedule) << i;
  }
}

// ------------------------------------------------------------- registries --

TEST(EngineRegistry, IsOwnedPerEngine) {
  class FakeSolver final : public Solver {
   public:
    FakeSolver() {
      info_.name = "per_engine_fake";
      info_.summary = "test double";
      info_.paper_ref = "n/a";
      info_.complexity = "O(1)";
    }
    const SolverInfo& info() const override { return info_; }

   protected:
    SolveResult do_solve(const SolveRequest&) const override {
      SolveResult r;
      r.ok = true;
      r.feasible = true;
      return r;
    }

   private:
    SolverInfo info_;
  };

  Engine eng;
  EXPECT_EQ(eng.registry().size(), SolverRegistry::instance().size());
  ASSERT_TRUE(eng.registry().add(std::make_unique<FakeSolver>()));
  EXPECT_NE(eng.registry().find("per_engine_fake"), nullptr);
  // The process-wide registry (the deprecated shims' registry) is
  // untouched, and so is a sibling engine.
  EXPECT_EQ(SolverRegistry::instance().find("per_engine_fake"), nullptr);
  Engine sibling;
  EXPECT_EQ(sibling.registry().find("per_engine_fake"), nullptr);
}

// ----------------------------------------------------------- LRU eviction --

TEST(SolveCacheLru, EvictsLeastRecentlyUsed) {
  SolveCache cache(/*capacity=*/2);
  const SolverInfo& info = SolverRegistry::instance().find("gap_dp")->info();
  const auto key_for = [&](Time t) {
    return make_cache_key(info, Objective::kGaps, SolveParams{},
                          Instance::one_interval({{t, t}}));
  };
  SolveResult r;
  r.ok = true;
  r.feasible = true;

  cache.insert(key_for(1), r);
  cache.insert(key_for(2), r);
  EXPECT_TRUE((cache.lookup(key_for(1)) != nullptr));  // 1 becomes MRU
  cache.insert(key_for(3), r);                        // evicts 2
  EXPECT_TRUE((cache.lookup(key_for(1)) != nullptr));
  EXPECT_FALSE((cache.lookup(key_for(2)) != nullptr));
  EXPECT_TRUE((cache.lookup(key_for(3)) != nullptr));

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.capacity, 2u);
}

TEST(SolveCacheLru, NormalizesStoredResults) {
  SolveCache cache;
  const SolverInfo& info = SolverRegistry::instance().find("gap_dp")->info();
  const CacheKey key = make_cache_key(info, Objective::kGaps, SolveParams{},
                                      Instance::one_interval({{0, 0}}));
  SolveResult r;
  r.ok = true;
  r.feasible = true;
  r.timed_out = true;
  r.audited = true;
  r.audit_error = "stale";
  r.stats.wall_ms = 123.0;
  r.stats.cache_hit = true;
  cache.insert(key, r);
  const auto hit = cache.lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_FALSE(hit->timed_out);
  EXPECT_FALSE(hit->audited);
  EXPECT_EQ(hit->audit_error, "");
  EXPECT_EQ(hit->stats.wall_ms, 0.0);
  EXPECT_FALSE(hit->stats.cache_hit);
}

// ------------------------------------------------------------- summaries --

TEST(BatchSummaryTest, CountsTimedOutRejectedAndRefutedSeparately) {
  Engine eng;
  std::vector<BatchJob> jobs;
  jobs.push_back({"gap_dp", {small_instance(40), Objective::kGaps, {}}});
  jobs.push_back({"no_such_solver", {small_instance(41),
                                     Objective::kGaps, {}}});
  BatchJob slow{"gap_dp", {small_instance(42), Objective::kGaps, {}}};
  slow.request.params.time_limit_s = 1e-12;  // everything exceeds this
  jobs.push_back(std::move(slow));

  const std::vector<SolveResult> results = eng.solve_batch(jobs);
  const BatchSummary summary = summarize(results);
  EXPECT_EQ(summary.total, 3u);
  EXPECT_EQ(summary.ok, 2u);
  EXPECT_EQ(summary.rejected, 1u);
  // The fix this pins: a timed-out result is counted, and it disqualifies
  // the batch from unqualified success even though its entry is `ok`.
  EXPECT_EQ(summary.timed_out, 1u);
  EXPECT_FALSE(summary.success());

  jobs.pop_back();
  jobs.erase(jobs.begin() + 1);
  const BatchSummary clean = summarize(eng.solve_batch(jobs));
  EXPECT_EQ(clean.rejected, 0u);
  EXPECT_EQ(clean.timed_out, 0u);
  EXPECT_TRUE(clean.success());
}

}  // namespace
}  // namespace gapsched::engine

// Engine layer: registry completeness, dispatch parity with the direct
// solver entry points, request validation, and deterministic batched
// solving across thread counts. Everything dispatches through
// engine::Engine — the deprecated solve_with/solve_many shims are gone —
// with the solve cache off, so each call here is an independent stateless
// solve.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gapsched/baptiste/baptiste.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/exact/brute_force.hpp"
#include "gapsched/exact/power_brute_force.hpp"
#include "gapsched/exact/span_search.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/greedy/fhkn_greedy.hpp"
#include "gapsched/greedy/lazy.hpp"
#include "gapsched/online/online_edf.hpp"
#include "gapsched/online/online_powerdown.hpp"
#include "gapsched/powermin/powermin_approx.hpp"
#include "gapsched/restart/restart_greedy.hpp"
#include "../support/test_seed.hpp"

namespace gapsched::engine {
namespace {

Instance small_instance(std::uint64_t site) {
  // Routed through the shared seed plumbing so GAPSCHED_TEST_SEED sweeps
  // the whole engine suite onto fresh draws.
  Prng rng(testing::seed_for(site));
  return gen_feasible_one_interval(rng, 8, 16, 3, 1);
}

/// One shared cache-off engine: each solve is stateless and independent,
/// the configuration the parity and validation pins below assume.
SolveResult engine_solve(std::string_view solver, const SolveRequest& req) {
  static Engine eng({.cache = false});
  return eng.solve(solver, req);
}

/// A fresh cache-off engine with its own pool of `threads` workers (the
/// determinism sweeps compare batches across pool sizes).
std::vector<SolveResult> batch_solve(const std::vector<BatchJob>& jobs,
                                     std::size_t threads) {
  Engine eng({.threads = threads, .cache = false});
  return eng.solve_batch(jobs);
}

// ---------------------------------------------------------------- registry --

TEST(Registry, ListsEveryFamily) {
  const std::vector<std::string> names = SolverRegistry::instance().names();
  const std::set<std::string> got(names.begin(), names.end());
  const std::set<std::string> want = {
      "gap_dp",      "power_dp",         "baptiste",
      "bcd_poly_gap", "bcd_poly_power",
      "brute_force", "power_brute_force", "span_search",
      "fhkn_greedy", "lazy",             "powermin_approx",
      "restart_greedy", "online_edf",    "online_powerdown"};
  EXPECT_EQ(got, want);
  EXPECT_EQ(SolverRegistry::instance().size(), want.size());
}

TEST(Registry, InfoIsWellFormed) {
  for (const Solver* solver : SolverRegistry::instance().all()) {
    const SolverInfo& info = solver->info();
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.summary.empty());
    EXPECT_FALSE(info.paper_ref.empty());
    EXPECT_FALSE(info.complexity.empty());
    // Objective names round-trip through the string mapping.
    const auto parsed = objective_from_string(to_string(info.objective));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, info.objective);
    // find() returns the same object the listing exposed.
    EXPECT_EQ(SolverRegistry::instance().find(info.name), solver);
  }
}

TEST(Registry, ObjectivePartitionCoversAllSolvers) {
  std::size_t total = 0;
  for (Objective obj : {Objective::kGaps, Objective::kPower,
                        Objective::kThroughput}) {
    for (const Solver* solver : SolverRegistry::instance().for_objective(obj)) {
      EXPECT_EQ(solver->info().objective, obj);
      ++total;
    }
  }
  EXPECT_EQ(total, SolverRegistry::instance().size());
}

/// Minimal solver used to probe registration edge cases.
class FakeSolver final : public Solver {
 public:
  explicit FakeSolver(std::string name) {
    info_.name = std::move(name);
    info_.summary = "test double";
    info_.paper_ref = "n/a";
    info_.complexity = "O(1)";
  }
  const SolverInfo& info() const override { return info_; }

 protected:
  SolveResult do_solve(const SolveRequest&) const override { return {}; }

 private:
  SolverInfo info_;
};

TEST(Registry, RejectsDuplicateNames) {
  SolverRegistry& registry = SolverRegistry::instance();
  const Solver* original = registry.find("gap_dp");
  ASSERT_NE(original, nullptr);
  const std::size_t before = registry.size();
  // A second registration under an existing name is refused and must not
  // displace (or invalidate pointers to) the original solver.
  EXPECT_FALSE(registry.add(std::make_unique<FakeSolver>("gap_dp")));
  EXPECT_EQ(registry.size(), before);
  EXPECT_EQ(registry.find("gap_dp"), original);
  EXPECT_EQ(original->info().paper_ref, "Theorem 1 (Section 2)");
}

TEST(Registry, UnknownNameIsRejected) {
  EXPECT_EQ(SolverRegistry::instance().find("nonexistent"), nullptr);
  const SolveResult r = engine_solve("nonexistent", SolveRequest{});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown solver"), std::string::npos);
}

// ------------------------------------------------- dispatch == direct call --
// Parity is pinned with the prep pipeline off: with it on, the engine may
// legitimately solve canonicalized / dead-time-compressed coordinates and
// return a different (equal-cost) optimal schedule than the direct call.
// Cost-level pipeline-on-vs-off equality lives in tests/prep and
// tests/differential.

TEST(Dispatch, GapSolversMatchDirectCalls) {
  for (int seed = 0; seed < 8; ++seed) {
    const Instance inst = small_instance(100 + seed);
    SolveRequest req{inst, Objective::kGaps, {}};
    req.params.decompose = false;

    const GapDpResult dp = solve_gap_dp(inst);
    const SolveResult via_dp = engine_solve("gap_dp", req);
    ASSERT_TRUE(via_dp.ok) << via_dp.error;
    EXPECT_EQ(via_dp.feasible, dp.feasible);
    EXPECT_EQ(via_dp.transitions, dp.transitions);
    EXPECT_EQ(via_dp.stats.states, dp.states);
    EXPECT_EQ(via_dp.schedule, dp.schedule);

    const BaptisteResult bp = solve_baptiste(inst);
    const SolveResult via_bp = engine_solve("baptiste", req);
    EXPECT_EQ(via_bp.transitions, bp.spans);

    const ExactGapResult bf = brute_force_min_transitions(inst);
    const SolveResult via_bf = engine_solve("brute_force", req);
    EXPECT_EQ(via_bf.transitions, bf.transitions);

    const SpanSearchResult ss = span_search_min_transitions(inst);
    const SolveResult via_ss = engine_solve("span_search", req);
    EXPECT_EQ(via_ss.transitions, ss.transitions);
    EXPECT_EQ(via_ss.stats.nodes, ss.nodes);

    const FhknResult greedy = fhkn_greedy(inst);
    const SolveResult via_greedy = engine_solve("fhkn_greedy", req);
    EXPECT_EQ(via_greedy.transitions, greedy.transitions);

    const LazyResult lz = lazy_schedule(inst);
    const SolveResult via_lazy = engine_solve("lazy", req);
    EXPECT_EQ(via_lazy.transitions, lz.transitions);

    const OnlineResult oe = online_edf(inst);
    const SolveResult via_online = engine_solve("online_edf", req);
    EXPECT_EQ(via_online.transitions, oe.transitions);
  }
}

TEST(Dispatch, PowerSolversMatchDirectCalls) {
  for (int seed = 0; seed < 8; ++seed) {
    const Instance inst = small_instance(200 + seed);
    const double alpha = 0.5 + seed;
    SolveRequest req{inst, Objective::kPower, {}};
    req.params.alpha = alpha;
    req.params.decompose = false;

    const PowerDpResult dp = solve_power_dp(inst, alpha);
    const SolveResult via_dp = engine_solve("power_dp", req);
    ASSERT_TRUE(via_dp.ok) << via_dp.error;
    EXPECT_EQ(via_dp.feasible, dp.feasible);
    EXPECT_DOUBLE_EQ(via_dp.cost, dp.power);
    EXPECT_EQ(via_dp.schedule, dp.schedule);

    const ExactPowerResult bf = brute_force_min_power(inst, alpha);
    const SolveResult via_bf = engine_solve("power_brute_force", req);
    EXPECT_DOUBLE_EQ(via_bf.cost, bf.power);

    const PowerMinApproxResult apx = powermin_approx(inst, alpha);
    const SolveResult via_apx = engine_solve("powermin_approx", req);
    EXPECT_DOUBLE_EQ(via_apx.cost, apx.power);
    EXPECT_EQ(via_apx.transitions, apx.transitions);

    const OnlinePowerdownResult pd = online_powerdown(inst, alpha);
    const SolveResult via_pd = engine_solve("online_powerdown", req);
    EXPECT_DOUBLE_EQ(via_pd.cost, pd.power);
  }
}

TEST(Dispatch, ThroughputSolverMatchesDirectCall) {
  Prng rng(4242);
  const Instance inst = gen_multi_interval(rng, 9, 20, 2, 2);
  for (std::size_t k = 1; k <= 3; ++k) {
    SolveRequest req{inst, Objective::kThroughput, {}};
    req.params.max_spans = k;
    const RestartResult direct = restart_greedy(inst, k);
    const SolveResult via = engine_solve("restart_greedy", req);
    ASSERT_TRUE(via.ok) << via.error;
    EXPECT_EQ(via.stats.scheduled, direct.scheduled);
    EXPECT_EQ(via.cost, static_cast<double>(direct.scheduled));
    EXPECT_EQ(via.schedule, direct.schedule);
  }
}

// -------------------------------------------------------------- validation --

TEST(Validation, WrongObjectiveIsRejected) {
  SolveRequest req{small_instance(7), Objective::kPower, {}};
  const SolveResult r = engine_solve("gap_dp", req);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("objective"), std::string::npos);
}

TEST(Validation, OneIntervalRequirementIsEnforced) {
  Prng rng(11);
  SolveRequest req{gen_multi_interval(rng, 6, 18, 2, 2), Objective::kGaps, {}};
  ASSERT_FALSE(req.instance.is_one_interval());
  EXPECT_FALSE(engine_solve("gap_dp", req).ok);
  EXPECT_FALSE(engine_solve("baptiste", req).ok);
  EXPECT_FALSE(engine_solve("lazy", req).ok);
  // The multi-interval-capable families accept the same request.
  EXPECT_TRUE(engine_solve("brute_force", req).ok);
  EXPECT_TRUE(engine_solve("span_search", req).ok);
}

TEST(Validation, SizeAndProcessorCapsAreEnforced) {
  Prng rng(13);
  SolveRequest big{gen_feasible_one_interval(rng, 24, 48, 2, 1),
                   Objective::kGaps, {}};
  const SolveResult r = engine_solve("brute_force", big);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("capped"), std::string::npos);

  SolveRequest multi{gen_feasible_one_interval(rng, 6, 8, 2, 2),
                     Objective::kGaps, {}};
  ASSERT_EQ(multi.instance.processors, 2);
  EXPECT_FALSE(engine_solve("fhkn_greedy", multi).ok);
  EXPECT_FALSE(engine_solve("span_search", multi).ok);
  EXPECT_TRUE(engine_solve("gap_dp", multi).ok);
}

TEST(Validation, BadParametersAreRejected) {
  SolveRequest req{small_instance(17), Objective::kPower, {}};
  req.params.alpha = -1.0;
  EXPECT_FALSE(engine_solve("power_dp", req).ok);

  SolveRequest tp{small_instance(18), Objective::kThroughput, {}};
  tp.params.max_spans = 0;
  EXPECT_FALSE(engine_solve("restart_greedy", tp).ok);
}

TEST(Validation, MalformedInstanceIsRejected) {
  SolveRequest req;
  req.objective = Objective::kGaps;
  req.instance.processors = 0;
  req.instance.jobs.push_back(Job{TimeSet::window(0, 3)});
  const SolveResult r = engine_solve("gap_dp", req);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("invalid instance"), std::string::npos);
}

TEST(Validation, TimeLimitFlagsLongSolves) {
  SolveRequest req{small_instance(19), Objective::kGaps, {}};
  req.params.time_limit_s = 1e-12;  // everything exceeds this
  const SolveResult r = engine_solve("gap_dp", req);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.timed_out);

  req.params.time_limit_s = 1e6;  // nothing exceeds this
  EXPECT_FALSE(engine_solve("gap_dp", req).timed_out);
}

// ------------------------------------------------------------- solve_batch --

/// Strips wall-clock noise so batches can be compared bitwise.
struct Essence {
  bool ok, feasible;
  double cost;
  std::int64_t transitions;
  Schedule schedule;
  std::size_t states;
  bool operator==(const Essence&) const = default;
};

std::vector<Essence> essence(const std::vector<SolveResult>& results) {
  std::vector<Essence> out;
  out.reserve(results.size());
  for (const SolveResult& r : results) {
    out.push_back(
        {r.ok, r.feasible, r.cost, r.transitions, r.schedule, r.stats.states});
  }
  return out;
}

TEST(EngineBatch, DeterministicAcrossThreadCounts) {
  std::vector<BatchJob> jobs;
  const char* solvers[] = {"gap_dp", "baptiste", "fhkn_greedy", "power_dp",
                           "restart_greedy"};
  for (int seed = 0; seed < 10; ++seed) {
    for (const char* solver : solvers) {
      BatchJob job;
      job.solver = solver;
      job.request.instance = small_instance(300 + seed);
      const Objective obj =
          SolverRegistry::instance().find(solver)->info().objective;
      job.request.objective = obj;
      job.request.params.max_spans = 2;
      jobs.push_back(std::move(job));
    }
  }

  const std::vector<Essence> one = essence(batch_solve(jobs, 1));
  const std::vector<Essence> two = essence(batch_solve(jobs, 2));
  const std::vector<Essence> eight = essence(batch_solve(jobs, 8));
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);

  // And each slot answers its own request: spot-check against direct calls.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(one[i].ok) << i;
    const SolveResult direct = engine_solve(jobs[i].solver, jobs[i].request);
    EXPECT_EQ(one[i].cost, direct.cost) << i;
  }
}

TEST(EngineBatch, UnknownSolverYieldsPerEntryRejection) {
  std::vector<BatchJob> jobs(3);
  jobs[0] = {"gap_dp", {small_instance(1), Objective::kGaps, {}}};
  jobs[1] = {"no_such_solver", {small_instance(2), Objective::kGaps, {}}};
  jobs[2] = {"baptiste", {small_instance(3), Objective::kGaps, {}}};
  const std::vector<SolveResult> results = batch_solve(jobs, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("unknown solver"), std::string::npos);
  EXPECT_TRUE(results[2].ok);
}

TEST(EngineBatch, SingleSolverBatchKeepsRequestOrder) {
  std::vector<BatchJob> jobs;
  for (int seed = 0; seed < 6; ++seed) {
    BatchJob job{"gap_dp", {small_instance(400 + seed), Objective::kGaps, {}}};
    // Raw-path parity against the direct DP call (see the Dispatch note).
    job.request.params.decompose = false;
    jobs.push_back(std::move(job));
  }
  const std::vector<SolveResult> results = batch_solve(jobs, 3);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const GapDpResult direct = solve_gap_dp(jobs[i].request.instance);
    ASSERT_TRUE(results[i].ok);
    EXPECT_EQ(results[i].transitions, direct.transitions) << i;
    EXPECT_EQ(results[i].schedule, direct.schedule) << i;
  }
}

}  // namespace
}  // namespace gapsched::engine

// The Session execution layer and the staged solve pipeline's observable
// semantics: per-stage ran/skip verdicts in SolveStats::stages, the
// Session/Engine PipelineStats roll-up, solve_stream callback ordering and
// request-order guarantees, concurrent streams contending on one shared
// cache, and the no-double-audit invariant (cache hits are re-audited
// exactly once, by the serving request). The concurrency tests here also
// run under the CI ASan/UBSan and TSan lanes.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "gapsched/engine/engine.hpp"
#include "gapsched/engine/session.hpp"
#include "gapsched/gen/generators.hpp"
#include "../support/test_seed.hpp"

namespace gapsched::engine {
namespace {

Instance small_instance(std::uint64_t site) {
  Prng rng(testing::seed_for(site));
  return gen_feasible_one_interval(rng, 8, 16, 3, 1);
}

/// `copies` byte-identical far-apart clusters of three jobs each.
Instance identical_clusters(int copies) {
  Instance out;
  const Time spacing = 8 + static_cast<Time>(copies) * 3 + 64;
  for (int i = 0; i < copies; ++i) {
    const Time base = static_cast<Time>(i) * spacing;
    out.jobs.push_back(Job{TimeSet::window(base, base + 4)});
    out.jobs.push_back(Job{TimeSet::window(base + 1, base + 5)});
    out.jobs.push_back(Job{TimeSet::window(base + 3, base + 7)});
  }
  return out;
}

const StageStats& stage(const SolveResult& r, PipelineStage s) {
  return r.stats.stages[static_cast<std::size_t>(s)];
}

// ------------------------------------------------ stage ran/skip verdicts --

TEST(PipelineStages, DecomposedSolveReportsThePrepStages) {
  Engine eng;
  SolveRequest req{identical_clusters(3), Objective::kGaps, {}};
  const SolveResult r = eng.solve("gap_dp", req);
  ASSERT_TRUE(r.ok) << r.error;
  // Decomposed route: per-component canonicalization happens inside
  // Decompose, so the whole-instance Canonicalize stage is skipped.
  EXPECT_FALSE(stage(r, PipelineStage::kCanonicalize).ran);
  EXPECT_TRUE(stage(r, PipelineStage::kDecompose).ran);
  EXPECT_TRUE(stage(r, PipelineStage::kCompress).ran);
  EXPECT_TRUE(stage(r, PipelineStage::kCacheLookup).ran);
  EXPECT_TRUE(stage(r, PipelineStage::kDispatch).ran);
  EXPECT_TRUE(stage(r, PipelineStage::kRecombine).ran);
  EXPECT_FALSE(stage(r, PipelineStage::kAudit).ran);  // no --validate
}

TEST(PipelineStages, WholeInstanceCacheHitSkipsDispatch) {
  Engine eng;
  // Heuristic family: never decomposed, so the whole-instance cache route.
  SolveRequest req{small_instance(910), Objective::kGaps, {}};
  const SolveResult cold = eng.solve("fhkn_greedy", req);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_TRUE(stage(cold, PipelineStage::kCanonicalize).ran);
  EXPECT_FALSE(stage(cold, PipelineStage::kDecompose).ran);
  EXPECT_TRUE(stage(cold, PipelineStage::kCacheLookup).ran);
  EXPECT_TRUE(stage(cold, PipelineStage::kDispatch).ran);
  EXPECT_FALSE(stage(cold, PipelineStage::kRecombine).ran);

  const SolveResult warm = eng.solve("fhkn_greedy", req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.stats.cache_hit);
  // The hit is served without invoking the family adapter; Recombine maps
  // the stored canonical schedule back to the requester's coordinates.
  EXPECT_FALSE(stage(warm, PipelineStage::kDispatch).ran);
  EXPECT_TRUE(stage(warm, PipelineStage::kRecombine).ran);
}

TEST(PipelineStages, AllComponentsCachedSkipsDispatch) {
  Engine eng;
  SolveRequest req{identical_clusters(4), Objective::kGaps, {}};
  const SolveResult cold = eng.solve("gap_dp", req);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_TRUE(stage(cold, PipelineStage::kDispatch).ran);

  const SolveResult warm = eng.solve("gap_dp", req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(warm.cost, cold.cost);
  EXPECT_FALSE(stage(warm, PipelineStage::kDispatch).ran);
  EXPECT_TRUE(stage(warm, PipelineStage::kRecombine).ran);
}

TEST(PipelineStages, CacheOffEngineSkipsTheCacheStages) {
  Engine eng({.cache = false});
  SolveRequest req{small_instance(911), Objective::kGaps, {}};
  const SolveResult r = eng.solve("fhkn_greedy", req);
  ASSERT_TRUE(r.ok) << r.error;
  // No cache: nothing to key, nothing to look up — straight to Dispatch.
  EXPECT_FALSE(stage(r, PipelineStage::kCanonicalize).ran);
  EXPECT_FALSE(stage(r, PipelineStage::kCacheLookup).ran);
  EXPECT_TRUE(stage(r, PipelineStage::kDispatch).ran);
  EXPECT_FALSE(stage(r, PipelineStage::kRecombine).ran);
}

TEST(PipelineStages, AuditRunsExactlyForValidatedRequests) {
  Engine eng;
  SolveRequest req{small_instance(912), Objective::kGaps, {}};
  req.params.validate = true;
  const SolveResult cold = eng.solve("gap_dp", req);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_TRUE(cold.audited);
  EXPECT_TRUE(stage(cold, PipelineStage::kAudit).ran);

  // A cache hit under --validate is re-audited by the serving request (the
  // stored entry carries no audit state), still exactly once.
  const SolveResult warm = eng.solve("gap_dp", req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.audited);
  EXPECT_TRUE(warm.audit_error.empty()) << warm.audit_error;
  EXPECT_TRUE(stage(warm, PipelineStage::kAudit).ran);

  req.params.validate = false;
  const SolveResult unaudited = eng.solve("gap_dp", req);
  ASSERT_TRUE(unaudited.ok) << unaudited.error;
  EXPECT_FALSE(unaudited.audited);
  EXPECT_FALSE(stage(unaudited, PipelineStage::kAudit).ran);
}

// ------------------------------------------------- the session stats roll-up --

TEST(Session, PipelineStatsTallyRunsAndSkipsAcrossRequests) {
  Engine eng;
  SolveRequest req{small_instance(913), Objective::kGaps, {}};
  req.params.validate = true;
  eng.solve("gap_dp", req);  // cold: dispatch runs
  eng.solve("gap_dp", req);  // warm: served from the cache

  const pipeline::PipelineStats stats = eng.pipeline_stats();
  EXPECT_EQ(stats.requests, 2u);
  const auto& dispatch =
      stats.stages[static_cast<std::size_t>(PipelineStage::kDispatch)];
  const auto& lookup =
      stats.stages[static_cast<std::size_t>(PipelineStage::kCacheLookup)];
  const auto& audit =
      stats.stages[static_cast<std::size_t>(PipelineStage::kAudit)];
  EXPECT_EQ(dispatch.runs, 1u);
  EXPECT_EQ(dispatch.skips, 1u);
  EXPECT_EQ(lookup.runs, 2u);
  EXPECT_EQ(lookup.skips, 0u);
  // Both requests asked for validation; both answers were audited — the
  // hit re-audits against the requester's own instance, exactly once each.
  EXPECT_EQ(audit.runs, 2u);
  EXPECT_EQ(audit.skips, 0u);
  // Every stage row accounts for every absorbed request.
  for (const pipeline::StageTally& t : stats.stages) {
    EXPECT_EQ(t.runs + t.skips, stats.requests);
  }

  eng.session().reset_pipeline_stats();
  EXPECT_EQ(eng.pipeline_stats().requests, 0u);
}

TEST(Session, RejectionsAreAbsorbedAsAllSkipRows) {
  Engine eng;
  SolveRequest req{small_instance(914), Objective::kGaps, {}};
  const SolveResult unknown = eng.solve("no_such_solver", req);
  EXPECT_FALSE(unknown.ok);

  SolveRequest wrong = req;
  wrong.objective = Objective::kPower;  // gap_dp rejects at check()
  const SolveResult rejected = eng.solve("gap_dp", wrong);
  EXPECT_FALSE(rejected.ok);

  const pipeline::PipelineStats stats = eng.pipeline_stats();
  EXPECT_EQ(stats.requests, 2u);
  for (const pipeline::StageTally& t : stats.stages) {
    EXPECT_EQ(t.runs, 0u);
    EXPECT_EQ(t.skips, 2u);
  }
}

// ---------------------------------------------------- streaming semantics --

TEST(Session, StreamCallbacksAreSerializedAndCoverEveryIndexOnce) {
  Engine eng({.threads = 4});
  std::vector<BatchJob> jobs;
  for (int i = 0; i < 24; ++i) {
    jobs.push_back({"gap_dp",
                    {small_instance(920 + static_cast<std::uint64_t>(i)),
                     Objective::kGaps,
                     {}}});
  }

  std::atomic<int> in_callback{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::size_t> delivered;
  const std::vector<SolveResult> results =
      eng.solve_stream(jobs, [&](std::size_t index, const SolveResult& r) {
        // Invocations are serialized: no two callbacks may overlap.
        if (in_callback.fetch_add(1) != 0) overlapped = true;
        EXPECT_TRUE(r.ok) << r.error;
        delivered.push_back(index);
        in_callback.fetch_sub(1);
      });

  EXPECT_FALSE(overlapped.load());
  ASSERT_EQ(results.size(), jobs.size());
  // Completion order is unconstrained, but every index arrives exactly
  // once, and the returned vector restores request order: results[i]
  // answers jobs[i] (solver families are deterministic, so re-solving the
  // same request must reproduce the streamed answer bit for bit).
  EXPECT_EQ(std::set<std::size_t>(delivered.begin(), delivered.end()).size(),
            jobs.size());
  Engine check({.cache = false});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const SolveResult expect = check.solve("gap_dp", jobs[i].request);
    EXPECT_EQ(results[i].cost, expect.cost) << "index " << i;
    EXPECT_EQ(results[i].schedule, expect.schedule) << "index " << i;
  }
}

TEST(Session, ConcurrentStreamsShareOneEngineWithoutDoubleAudit) {
  // Several threads stream overlapping batches through ONE engine: the
  // shared cache serves hits across streams, every stream keeps request
  // order, and each audited answer is audited by its own request exactly
  // once (audit runs == validated requests, never more).
  Engine eng({.threads = 2});
  constexpr int kStreams = 4;
  constexpr int kJobsPerStream = 12;
  std::vector<BatchJob> jobs;
  for (int i = 0; i < kJobsPerStream; ++i) {
    // Only 3 distinct instances per stream -> heavy cache contention.
    SolveRequest req{small_instance(940 + static_cast<std::uint64_t>(i % 3)),
                     Objective::kGaps,
                     {}};
    req.params.validate = true;
    jobs.push_back({"gap_dp", req});
  }

  std::vector<std::vector<SolveResult>> all(kStreams);
  std::vector<std::thread> threads;
  std::atomic<std::size_t> callbacks{0};
  for (int t = 0; t < kStreams; ++t) {
    threads.emplace_back([&, t] {
      all[t] = eng.solve_stream(
          jobs, [&](std::size_t, const SolveResult&) { ++callbacks; });
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(callbacks.load(), static_cast<std::size_t>(kStreams) *
                                  kJobsPerStream);
  const SolveResult expect0 = Engine({.cache = false}).solve(
      "gap_dp", jobs[0].request);
  for (int t = 0; t < kStreams; ++t) {
    ASSERT_EQ(all[t].size(), jobs.size());
    for (std::size_t i = 0; i < all[t].size(); ++i) {
      const SolveResult& r = all[t][i];
      ASSERT_TRUE(r.ok) << r.error;
      EXPECT_TRUE(r.audited);
      EXPECT_TRUE(r.audit_error.empty()) << r.audit_error;
      // Request order held under contention: entry i answers jobs[i].
      EXPECT_EQ(r.cost, all[0][i].cost) << "stream " << t << " index " << i;
    }
    EXPECT_EQ(all[t][0].cost, expect0.cost);
  }

  // No double-audit: the Audit stage ran once per request — absorbed runs
  // equal the number of validated requests, even though most answers were
  // cache hits re-served across streams.
  const pipeline::PipelineStats stats = eng.pipeline_stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::uint64_t>(kStreams) * kJobsPerStream);
  const auto& audit =
      stats.stages[static_cast<std::size_t>(PipelineStage::kAudit)];
  EXPECT_EQ(audit.runs, stats.requests);
  EXPECT_EQ(audit.skips, 0u);
}

TEST(Session, StandaloneSessionSharesRegistryAndCacheWithAnother) {
  // Two sessions around one registry and one cache — the server-tenant
  // shape. A solve through one session warms the other.
  auto registry = SolverRegistry::create_with_builtins();
  SolveCache cache(128);
  Session a(*registry, &cache, 2);
  Session b(*registry, &cache, 2);

  SolveRequest req{small_instance(950), Objective::kGaps, {}};
  const SolveResult cold = a.solve("gap_dp", req);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.stats.cache_hit);

  const SolveResult warm = b.solve("gap_dp", req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(warm.cost, cold.cost);

  // Each session keeps its own roll-up.
  EXPECT_EQ(a.pipeline_stats().requests, 1u);
  EXPECT_EQ(b.pipeline_stats().requests, 1u);
}

TEST(Session, ChurningShortLivedSessionsLeaveSharedStateIntact) {
  // The server's churn pattern: many short-lived Sessions (one per
  // connection) come and go concurrently around one registry + one cache.
  // Warmth accumulated by a dead Session must keep serving the living,
  // and tallies aggregated outside the Sessions must survive all of them.
  auto registry = SolverRegistry::create_with_builtins();
  SolveCache cache(256);

  constexpr int kThreads = 8;
  constexpr int kSessionsPerThread = 12;
  constexpr int kSites = 5;  // distinct instances, so hits are guaranteed

  std::atomic<std::uint64_t> solves{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> failures{0};
  pipeline::PipelineStats folded;  // aggregated as each Session dies
  std::mutex folded_mu;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int s = 0; s < kSessionsPerThread; ++s) {
        Session session(*registry, &cache, /*threads=*/1);
        for (int r = 0; r < kSites; ++r) {
          const auto site =
              960 + static_cast<std::uint64_t>((t + s + r) % kSites);
          SolveRequest req{small_instance(site), Objective::kGaps, {}};
          req.params.validate = true;
          const SolveResult result = session.solve("gap_dp", req);
          if (!result.ok || !result.audit_error.empty()) ++failures;
          ++solves;
          if (result.stats.cache_hit) ++hits;
        }
        const pipeline::PipelineStats stats = session.pipeline_stats();
        std::lock_guard<std::mutex> lk(folded_mu);
        folded.requests += stats.requests;
        for (std::size_t i = 0; i < kPipelineStageCount; ++i) {
          folded.stages[i].runs += stats.stages[i].runs;
          folded.stages[i].skips += stats.stages[i].skips;
          folded.stages[i].total_ms += stats.stages[i].total_ms;
        }
        // Session destroyed here; the cache and the fold live on.
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const auto expected = static_cast<std::uint64_t>(kThreads) *
                        kSessionsPerThread * kSites;
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(solves.load(), expected);
  // The fold — assembled entirely from Sessions that no longer exist —
  // accounts for every request.
  EXPECT_EQ(folded.requests, expected);
  const auto& audit =
      folded.stages[static_cast<std::size_t>(PipelineStage::kAudit)];
  EXPECT_EQ(audit.runs, expected);
  // Only kSites distinct instances exist: all but the cold solves were
  // served from cache warmed by (mostly) already-destroyed Sessions.
  EXPECT_GE(hits.load(), expected - kSites * kThreads);
  EXPECT_GT(hits.load(), 0u);
  const CacheStats after = cache.stats();
  EXPECT_EQ(after.hits, hits.load());
  EXPECT_EQ(after.entries, static_cast<std::size_t>(kSites));

  // The shared state is still serviceable after the churn: a fresh
  // Session gets a warm answer immediately.
  Session survivor(*registry, &cache, 1);
  SolveRequest req{small_instance(960), Objective::kGaps, {}};
  const SolveResult warm = survivor.solve("gap_dp", req);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.stats.cache_hit);
}

}  // namespace
}  // namespace gapsched::engine

#include "gapsched/setcover/setcover.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

SetCoverInstance small_instance() {
  SetCoverInstance inst;
  inst.universe = 5;
  inst.sets = {{0, 1, 2}, {2, 3}, {3, 4}, {0, 4}};
  return inst;
}

TEST(SetCover, GreedyCovers) {
  SetCoverInstance inst = small_instance();
  SetCoverResult r = greedy_set_cover(inst);
  ASSERT_TRUE(r.coverable);
  EXPECT_TRUE(is_valid_cover(inst, r.chosen));
}

TEST(SetCover, ExactFindsOptimum) {
  SetCoverInstance inst = small_instance();
  SetCoverResult r = exact_set_cover(inst);
  ASSERT_TRUE(r.coverable);
  EXPECT_TRUE(is_valid_cover(inst, r.chosen));
  EXPECT_EQ(r.chosen.size(), 2u);  // {0,1,2} + {3,4}
}

TEST(SetCover, UncoverableDetected) {
  SetCoverInstance inst;
  inst.universe = 3;
  inst.sets = {{0, 1}};
  EXPECT_FALSE(greedy_set_cover(inst).coverable);
  EXPECT_FALSE(exact_set_cover(inst).coverable);
}

TEST(SetCover, EmptyUniverse) {
  SetCoverInstance inst;
  inst.universe = 0;
  inst.sets = {{}};
  EXPECT_TRUE(exact_set_cover(inst).coverable);
  EXPECT_TRUE(exact_set_cover(inst).chosen.empty());
}

TEST(SetCover, MaxSetSize) {
  EXPECT_EQ(small_instance().max_set_size(), 3u);
}

TEST(SetCover, GeneratorProducesCoverable) {
  Prng rng(808);
  for (int it = 0; it < 20; ++it) {
    SetCoverInstance inst = gen_random_set_cover(rng, 10, 6, 4);
    EXPECT_EQ(inst.universe, 10u);
    EXPECT_LE(inst.max_set_size(), 4u);
    EXPECT_TRUE(greedy_set_cover(inst).coverable) << it;
  }
}

// Greedy is within (1 + ln n) of exact, and never below it.
class GreedyQuality : public ::testing::TestWithParam<int> {};

TEST_P(GreedyQuality, WithinLogFactor) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 101 + 3);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  SetCoverInstance inst = gen_random_set_cover(rng, 12, 8, 4);
  const SetCoverResult greedy = greedy_set_cover(inst);
  const SetCoverResult exact = exact_set_cover(inst);
  ASSERT_TRUE(greedy.coverable);
  ASSERT_TRUE(exact.coverable);
  EXPECT_TRUE(is_valid_cover(inst, greedy.chosen));
  EXPECT_TRUE(is_valid_cover(inst, exact.chosen));
  EXPECT_GE(greedy.chosen.size(), exact.chosen.size());
  const double bound = 1.0 + std::log(12.0);
  EXPECT_LE(static_cast<double>(greedy.chosen.size()),
            bound * static_cast<double>(exact.chosen.size()) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, GreedyQuality, ::testing::Range(0, 30));

}  // namespace
}  // namespace gapsched

#include "gapsched/powermin/powermin_approx.hpp"

#include <gtest/gtest.h>

#include "gapsched/exact/power_brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/matching/feasibility.hpp"

namespace gapsched {
namespace {

TEST(PowerMinApprox, EmptyInstance) {
  Instance inst;
  PowerMinApproxResult r = powermin_approx(inst, 2.0);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 0.0);
}

TEST(PowerMinApprox, InfeasibleDetected) {
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}});
  EXPECT_FALSE(powermin_approx(inst, 2.0).feasible);
}

TEST(PowerMinApprox, PacksAdjacentPairs) {
  // Four jobs each allowed in [0, 3]: two packed pairs, one span possible.
  Instance inst = Instance::one_interval({{0, 3}, {0, 3}, {0, 3}, {0, 3}});
  PowerMinApproxResult r = powermin_approx(inst, 4.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.validate(inst), "");
  EXPECT_GE(r.pairs_packed, 1u);
  // The guarantee: power <= (1 + (2/3+eps) alpha) * OPT, OPT = 4 + 4.
  EXPECT_LE(r.power, theorem3_bound(4.0) * 8.0 + 1e-9);
}

TEST(PowerMinApprox, MultiIntervalJobs) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet({{0, 1}, {10, 11}})});
  inst.jobs.push_back(Job{TimeSet({{0, 1}, {20, 21}})});
  inst.jobs.push_back(Job{TimeSet({{10, 11}})});
  PowerMinApproxResult r = powermin_approx(inst, 3.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.validate(inst), "");
}

TEST(PowerMinApprox, ReportsConsistentMetrics) {
  Prng rng(31337);
  Instance inst = gen_multi_interval(rng, 8, 24, 3, 2);
  const double alpha = 2.0;
  PowerMinApproxResult r = powermin_approx(inst, alpha);
  ASSERT_TRUE(r.feasible);
  const OccupancyProfile prof = r.schedule.profile();
  EXPECT_EQ(r.transitions, prof.transitions());
  EXPECT_NEAR(r.power, prof.optimal_power(alpha), 1e-9);
  EXPECT_NEAR(r.power_no_bridge, prof.power_without_bridging(alpha), 1e-9);
  EXPECT_LE(r.power, r.power_no_bridge + 1e-9);
}

// Corollary 1's block-length parameter: larger k still yields valid
// schedules within the trivial envelope.
TEST(PowerMinApprox, BlockSizeThree) {
  Prng rng(90210);
  for (int it = 0; it < 8; ++it) {
    Instance inst = gen_multi_interval(rng, 9, 24, 2, 3);
    if (!is_feasible(inst)) continue;
    PowerMinApproxOptions opts;
    opts.block_size = 3;
    const double alpha = 3.0;
    const PowerMinApproxResult r = powermin_approx(inst, alpha, opts);
    ASSERT_TRUE(r.feasible);
    ASSERT_EQ(r.schedule.validate(inst), "");
    const ExactPowerResult opt = brute_force_min_power(inst, alpha);
    EXPECT_GE(r.power + 1e-9, opt.power);
    EXPECT_LE(r.power, (1.0 + alpha) * opt.power + 1e-6);
  }
}

TEST(PowerMinApprox, BlockSizeFour) {
  Prng rng(90211);
  Instance inst = gen_multi_interval(rng, 10, 26, 2, 4);
  PowerMinApproxOptions opts;
  opts.block_size = 4;
  const PowerMinApproxResult r = powermin_approx(inst, 2.0, opts);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.validate(inst), "");
}

// Theorem 3's guarantee, tested against the exact optimum (experiment F2 in
// miniature): ratio <= 1 + (2/3 + eps) * alpha, and never below 1.
struct Tcase {
  std::uint64_t seed;
  double alpha;
  int swap;
};

class Theorem3Guarantee : public ::testing::TestWithParam<Tcase> {};

TEST_P(Theorem3Guarantee, RatioWithinBound) {
  const Tcase tc = GetParam();
  Prng rng(tc.seed);
  for (int it = 0; it < 6; ++it) {
    Instance inst = gen_multi_interval(rng, 7, 20, 2, 2);
    if (!is_feasible(inst)) continue;
    const ExactPowerResult opt = brute_force_min_power(inst, tc.alpha);
    ASSERT_TRUE(opt.feasible);
    PowerMinApproxOptions opts;
    opts.swap_size = tc.swap;
    const PowerMinApproxResult apx = powermin_approx(inst, tc.alpha, opts);
    ASSERT_TRUE(apx.feasible);
    ASSERT_EQ(apx.schedule.validate(inst), "");
    EXPECT_GE(apx.power + 1e-9, opt.power) << "approx beat the optimum?!";
    // The Theorem 3 factor needs the full [HS89] local search; weaker swap
    // sizes still satisfy the trivial 1 + alpha envelope.
    const double factor =
        tc.swap >= 2 ? theorem3_bound(tc.alpha) : 1.0 + tc.alpha;
    EXPECT_LE(apx.power, factor * opt.power + 1e-6)
        << "seed=" << tc.seed << " alpha=" << tc.alpha << " it=" << it;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem3Guarantee,
    ::testing::Values(Tcase{1, 0.5, 2}, Tcase{2, 1.0, 2}, Tcase{3, 2.0, 2},
                      Tcase{4, 4.0, 2}, Tcase{5, 8.0, 2}, Tcase{6, 2.0, 1},
                      Tcase{7, 2.0, 0}, Tcase{8, 16.0, 2}),
    [](const auto& info) {
      return "a" + std::to_string(static_cast<int>(info.param.alpha * 10)) +
             "_s" + std::to_string(info.param.swap) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace gapsched

// Property tests of Lemma 4 itself: for any busy set with n units in M
// spans and any k, some residue class has >= (n - M(k-1))/k aligned
// fully-busy blocks.

#include "gapsched/powermin/lemma4.hpp"

#include <gtest/gtest.h>

#include "gapsched/core/profile.hpp"
#include "gapsched/util/prng.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(Lemma4, SingleLongRun) {
  // [0, 9]: 10 units, 1 span. k=2: bound (10-1)/2 = 4.5; residue 0 has
  // blocks at 0,2,4,6,8 = 5.
  std::vector<Time> busy;
  for (Time t = 0; t < 10; ++t) busy.push_back(t);
  AlignedBlocks b = best_aligned_blocks(busy, 2);
  EXPECT_EQ(b.block_starts.size(), 5u);
  EXPECT_GE(static_cast<double>(b.block_starts.size()),
            lemma4_bound(10, 1, 2));
}

TEST(Lemma4, OffsetRunPicksBestResidue) {
  // [1, 6]: residue-0 blocks at 2,4; residue-1 blocks at 1,3,5.
  std::vector<Time> busy{1, 2, 3, 4, 5, 6};
  AlignedBlocks b = best_aligned_blocks(busy, 2);
  EXPECT_EQ(b.residue, 1);
  EXPECT_EQ(b.block_starts, (std::vector<Time>{1, 3, 5}));
}

TEST(Lemma4, ShortSpansGiveNothing) {
  std::vector<Time> busy{0, 5, 10};  // three singleton spans, k=2
  AlignedBlocks b = best_aligned_blocks(busy, 2);
  EXPECT_TRUE(b.block_starts.empty());
  EXPECT_LE(lemma4_bound(3, 3, 2), 0.0);  // the bound is vacuous here
}

TEST(Lemma4, BlocksAreDisjointAndBusy) {
  std::vector<Time> busy{0, 1, 2, 3, 7, 8, 9, 10, 11};
  for (int k : {2, 3, 4}) {
    AlignedBlocks b = best_aligned_blocks(busy, k);
    for (std::size_t i = 0; i < b.block_starts.size(); ++i) {
      const Time t = b.block_starts[i];
      EXPECT_EQ(((t % k) + k) % k, b.residue);
      for (int m = 0; m < k; ++m) {
        EXPECT_TRUE(std::find(busy.begin(), busy.end(), t + m) != busy.end());
      }
      if (i > 0) {
        EXPECT_GE(t - b.block_starts[i - 1], k);
      }
    }
  }
}

// The lemma's inequality on random busy sets.
class Lemma4Property : public ::testing::TestWithParam<int> {};

TEST_P(Lemma4Property, BoundHolds) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 233 + 9);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  // Random spans: 1-5 runs of length 1-8.
  std::vector<Time> busy;
  Time t = rng.uniform(0, 5);
  const int runs = 1 + static_cast<int>(rng.index(5));
  for (int r = 0; r < runs; ++r) {
    const Time len = 1 + rng.uniform(0, 7);
    for (Time i = 0; i < len; ++i) busy.push_back(t + i);
    t += len + 1 + rng.uniform(0, 4);
  }
  const OccupancyProfile prof = OccupancyProfile::from_times(busy);
  const std::int64_t n = prof.busy_time();
  const std::int64_t m = prof.spans();
  for (int k : {2, 3, 4, 5}) {
    AlignedBlocks b = best_aligned_blocks(busy, k);
    EXPECT_GE(static_cast<double>(b.block_starts.size()) + 1e-9,
              lemma4_bound(n, m, k))
        << "k=" << k << " n=" << n << " M=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, Lemma4Property, ::testing::Range(0, 40));

}  // namespace
}  // namespace gapsched

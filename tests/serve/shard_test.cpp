// serve/shard.hpp — canonical-key routing, the bounded queues behind the
// server's backpressure, and the shard pool's ordering/drain contracts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "gapsched/engine/registry.hpp"
#include "gapsched/serve/shard.hpp"

namespace gapsched::serve {
namespace {

engine::SolveRequest chain_request(Time shift, bool reversed) {
  engine::SolveRequest request;
  request.objective = engine::Objective::kGaps;
  std::vector<Job> jobs = {Job{TimeSet::window(shift + 0, shift + 4)},
                           Job{TimeSet::window(shift + 3, shift + 9)},
                           Job{TimeSet::window(shift + 20, shift + 26)}};
  if (reversed) std::reverse(jobs.begin(), jobs.end());
  request.instance.jobs = std::move(jobs);
  return request;
}

TEST(ServeShard, CanonicalEquivalentRequestsShareAKey) {
  const auto registry = engine::SolverRegistry::create_with_builtins();
  const engine::Solver* solver = registry->find("gap_dp");
  ASSERT_NE(solver, nullptr);
  // Time-shifted and job-permuted copies canonicalize identically, so they
  // route to the same shard — where the first solve fills the shared cache
  // and the copies dedup instead of racing.
  const std::uint64_t base = shard_key(*solver, chain_request(0, false));
  EXPECT_EQ(base, shard_key(*solver, chain_request(1000, false)));
  EXPECT_EQ(base, shard_key(*solver, chain_request(0, true)));
  EXPECT_EQ(base, shard_key(*solver, chain_request(77, true)));
  // Different content and different solver both re-key.
  engine::SolveRequest other = chain_request(0, false);
  other.instance.jobs.push_back(Job{TimeSet::window(40, 45)});
  EXPECT_NE(base, shard_key(*solver, other));
  const engine::Solver* power = registry->find("power_dp");
  ASSERT_NE(power, nullptr);
  EXPECT_NE(base, shard_key(*power, chain_request(0, false)));
}

TEST(ServeShard, ShardOfStaysInRangeAndSpreads) {
  std::set<std::size_t> seen;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    const std::size_t shard = shard_of(key * 0x9e3779b97f4a7c15ull + 1, 8);
    ASSERT_LT(shard, 8u);
    seen.insert(shard);
  }
  EXPECT_EQ(seen.size(), 8u);  // all shards reachable
  EXPECT_EQ(shard_of(123456789, 1), 0u);
  EXPECT_EQ(shard_of(123456789, 0), 0u);  // degenerate guard
}

TEST(ServeShard, BoundedQueueIsFifoAndDrainsAfterClose) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  queue.close();
  EXPECT_FALSE(queue.push(99));  // closed: no new work
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);  // accepted items still drain, in order
  }
  EXPECT_FALSE(queue.pop().has_value());  // closed and empty
}

TEST(ServeShard, BoundedQueueBlocksProducersAtCapacity) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    queue.push(3);  // must block until a pop frees a slot
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());  // still parked: that is backpressure
  EXPECT_EQ(queue.pop().value_or(-1), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(queue.pop().value_or(-1), 2);
  EXPECT_EQ(queue.pop().value_or(-1), 3);
}

TEST(ServeShard, ShardPoolRunsOneShardSeriallyInSubmissionOrder) {
  ShardPool pool(4, 64);
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.submit(2, [&, i] {
      std::lock_guard<std::mutex> lk(mu);
      order.push_back(i);
    }));
  }
  pool.drain();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(ServeShard, ShardPoolDrainCompletesAcceptedWorkThenRefuses) {
  ShardPool pool(2, 64);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.submit(static_cast<std::size_t>(i), [&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++done;
    }));
  }
  pool.drain();
  EXPECT_EQ(done.load(), 20);  // nothing accepted was dropped
  EXPECT_FALSE(pool.submit(0, [&] { ++done; }));  // draining: refused
  pool.drain();                                   // idempotent
  EXPECT_EQ(done.load(), 20);
}

TEST(ServeShard, TallyAbsorbsResultOutcomes) {
  ShardTally tally;
  engine::SolveResult ok;
  ok.ok = true;
  ok.feasible = true;
  ok.stats.cache_hit = true;
  ok.stats.component_cache_hits = 2;
  tally.absorb(ok);
  engine::SolveResult rejected = engine::SolveResult::rejected("nope");
  rejected.timed_out = true;
  tally.absorb(rejected);
  engine::SolveResult refuted;
  refuted.ok = true;
  refuted.audited = true;
  refuted.audit_error = "cost mismatch";
  tally.absorb(refuted);

  EXPECT_EQ(tally.requests, 3u);
  EXPECT_EQ(tally.rejected, 1u);
  EXPECT_EQ(tally.timed_out, 1u);
  EXPECT_EQ(tally.refuted, 1u);
  EXPECT_EQ(tally.cache_hits, 1u);
  EXPECT_EQ(tally.component_cache_hits, 2u);

  const io::ShardStatsWire wire = tally.wire(3);
  EXPECT_EQ(wire.shard, 3);
  EXPECT_EQ(wire.requests, 3u);
  EXPECT_EQ(wire.refuted, 1u);
  EXPECT_EQ(wire.cache_hits, 1u);
}

}  // namespace
}  // namespace gapsched::serve

// serve/protocol.hpp — NDJSON frame builders, the line reassembly buffer,
// and host:port parsing. Every frame a builder emits must be a single
// line that the io/json.hpp readers parse straight back (one codec on
// both sides of the wire).

#include <gtest/gtest.h>

#include <string>

#include "gapsched/io/json.hpp"
#include "gapsched/serve/protocol.hpp"

namespace gapsched::serve {
namespace {

engine::SolveRequest sample_request() {
  engine::SolveRequest request;
  request.objective = engine::Objective::kPower;
  request.params.alpha = 2.5;
  request.params.validate = true;
  request.instance.jobs.push_back(Job{TimeSet::window(0, 5)});
  request.instance.jobs.push_back(Job{TimeSet::window(9, 14)});
  return request;
}

TEST(ServeProtocol, FramesAreSingleLines) {
  const engine::SolveRequest request = sample_request();
  engine::SolveResult result;
  result.ok = true;
  result.feasible = true;
  result.cost = 3.5;
  io::ServerStatsWire stats;
  stats.shards.resize(2);
  for (const std::string& frame :
       {hello_frame(4, 12), request_frame(7, "power_dp", request, 250.0),
        result_frame(7, result), stats_request_frame(), stats_frame(stats),
        drain_frame(), error_frame(-1, "multi\nline\tmessage")}) {
    EXPECT_EQ(frame.find('\n'), std::string::npos) << frame;
    EXPECT_FALSE(frame.empty());
    EXPECT_EQ(frame.front(), '{');
    EXPECT_EQ(frame.back(), '}');
  }
}

TEST(ServeProtocol, RequestFrameRoundTripsThroughTheSharedCodec) {
  const engine::SolveRequest request = sample_request();
  const std::string frame = request_frame(42, "power_dp", request, 125.5);

  std::string error;
  const auto head = io::frame_head_from_json(frame, &error);
  ASSERT_TRUE(head.has_value()) << error;
  EXPECT_EQ(head->frame, "request");
  EXPECT_EQ(head->id, 42);
  EXPECT_DOUBLE_EQ(head->deadline_ms, 125.5);

  // The SAME line parses as a request document: the header fields ride at
  // the top level next to the body and the readers ignore what they do
  // not know.
  std::string solver;
  const auto parsed = io::request_from_json(frame, &solver, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(solver, "power_dp");
  EXPECT_EQ(parsed->objective, engine::Objective::kPower);
  EXPECT_DOUBLE_EQ(parsed->params.alpha, 2.5);
  EXPECT_TRUE(parsed->params.validate);
  ASSERT_EQ(parsed->instance.n(), 2u);
  EXPECT_EQ(parsed->instance.jobs[1].allowed, TimeSet::window(9, 14));
}

TEST(ServeProtocol, RequestFrameOmitsZeroDeadline) {
  const std::string frame =
      request_frame(1, "gap_dp", sample_request(), 0.0);
  EXPECT_EQ(frame.find("deadline_ms"), std::string::npos);
  std::string error;
  const auto head = io::frame_head_from_json(frame, &error);
  ASSERT_TRUE(head.has_value()) << error;
  EXPECT_DOUBLE_EQ(head->deadline_ms, 0.0);
}

TEST(ServeProtocol, ResultFrameRoundTripsThroughTheSharedCodec) {
  engine::SolveResult result;
  result.ok = true;
  result.feasible = true;
  result.cost = 7.0;
  result.transitions = 7;
  result.timed_out = true;
  result.audited = true;
  result.stats.cache_hit = true;
  result.stats.component_cache_hits = 3;
  const std::string frame = result_frame(9, result);

  std::string error;
  const auto head = io::frame_head_from_json(frame, &error);
  ASSERT_TRUE(head.has_value()) << error;
  EXPECT_EQ(head->frame, "result");
  EXPECT_EQ(head->id, 9);

  const auto parsed = io::result_from_json(frame, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->ok);
  EXPECT_TRUE(parsed->feasible);
  EXPECT_DOUBLE_EQ(parsed->cost, 7.0);
  EXPECT_TRUE(parsed->timed_out);
  EXPECT_TRUE(parsed->audited);
  EXPECT_TRUE(parsed->stats.cache_hit);
}

TEST(ServeProtocol, StatsFrameCarriesTheServerStatsDocument) {
  io::ServerStatsWire wire;
  wire.cache.hits = 5;
  wire.cache.misses = 2;
  wire.pipeline.requests = 7;
  io::ShardStatsWire shard;
  shard.shard = 1;
  shard.requests = 7;
  shard.cache_hits = 5;
  wire.shards.push_back(shard);

  const std::string frame = stats_frame(wire);
  std::string error;
  const auto head = io::frame_head_from_json(frame, &error);
  ASSERT_TRUE(head.has_value()) << error;
  EXPECT_EQ(head->frame, "stats");
  const auto parsed = io::server_stats_from_json(frame, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->cache.hits, 5u);
  ASSERT_EQ(parsed->shards.size(), 1u);
  EXPECT_EQ(parsed->shards[0].requests, 7u);
}

TEST(ServeProtocol, ErrorFrameEscapesItsMessage) {
  const std::string frame =
      error_frame(3, "bad \"frame\": \\ tab\there\nnewline");
  std::string error;
  const auto head = io::frame_head_from_json(frame, &error);
  ASSERT_TRUE(head.has_value()) << error;
  EXPECT_EQ(head->frame, "error");
  EXPECT_EQ(head->id, 3);
  EXPECT_EQ(head->message, "bad \"frame\": \\ tab\there\nnewline");
}

TEST(ServeProtocol, LineBufferReassemblesAcrossChunks) {
  LineBuffer lines(1024);
  lines.append("{\"frame\":\"a\"}\n{\"fr");
  auto first = lines.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, "{\"frame\":\"a\"}");
  EXPECT_FALSE(lines.next().has_value());  // second line incomplete
  lines.append("ame\":\"b\"}\r\n\n\n{\"frame\":\"c\"}\n");
  auto second = lines.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, "{\"frame\":\"b\"}");  // \r trimmed
  auto third = lines.next();               // blank keep-alives skipped
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(*third, "{\"frame\":\"c\"}");
  EXPECT_FALSE(lines.next().has_value());
  EXPECT_FALSE(lines.overflowed());
}

TEST(ServeProtocol, LineBufferPoisonsOnOverlongLines) {
  LineBuffer lines(16);
  EXPECT_TRUE(lines.append("0123456789"));
  EXPECT_FALSE(lines.next().has_value());
  EXPECT_FALSE(lines.overflowed());
  // Crossing the cap without a newline in sight poisons the buffer.
  EXPECT_FALSE(lines.append("0123456789"));
  EXPECT_TRUE(lines.overflowed());
  EXPECT_FALSE(lines.next().has_value());
  // Poisoned means poisoned: later appends stay refused.
  EXPECT_FALSE(lines.append("x\n"));
}

TEST(ServeProtocol, LineBufferCapAppliesPerLineNotPerSession) {
  LineBuffer lines(16);
  // Many short lines streamed through a small buffer never overflow.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(lines.append("0123456789\n"));
    const auto line = lines.next();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(*line, "0123456789");
  }
  EXPECT_FALSE(lines.overflowed());
}

TEST(ServeProtocol, ParseHostPortAcceptsAndRejects) {
  std::string host;
  int port = 0;
  ASSERT_TRUE(parse_host_port("127.0.0.1:7421", &host, &port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7421);
  ASSERT_TRUE(parse_host_port("localhost:1", &host, &port));
  EXPECT_EQ(host, "localhost");
  EXPECT_EQ(port, 1);
  EXPECT_FALSE(parse_host_port("no-port", &host, &port));
  EXPECT_FALSE(parse_host_port(":7421", &host, &port));
  EXPECT_FALSE(parse_host_port("host:", &host, &port));
  EXPECT_FALSE(parse_host_port("host:0", &host, &port));
  EXPECT_FALSE(parse_host_port("host:99999", &host, &port));
  EXPECT_FALSE(parse_host_port("host:12ab", &host, &port));
}

}  // namespace
}  // namespace gapsched::serve

// serve/server.hpp — the full serving loop over loopback TCP: mixed bursts
// with costs cross-checked against a local engine, the client reorder
// contract, graceful drain mid-burst, queue-expired deadlines, malformed
// and oversized frames, and stats aggregation. Under the CI sanitizer
// lanes this suite doubles as the thread-safety gate for the whole
// acceptor/reader/shard/writer topology.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gapsched/engine/engine.hpp"
#include "gapsched/scenarios/scenarios.hpp"
#include "gapsched/serve/loadgen.hpp"
#include "gapsched/serve/protocol.hpp"
#include "gapsched/serve/server.hpp"

namespace gapsched::serve {
namespace {

ServerOptions loopback(std::size_t shards) {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.shards = shards;
  return options;
}

engine::SolveRequest scenario_request(const std::string& name,
                                      std::uint64_t seed,
                                      engine::Objective objective) {
  auto instance = scenarios::make_scenario(name, seed);
  EXPECT_TRUE(instance.has_value()) << name;
  engine::SolveRequest request;
  if (instance.has_value()) request.instance = std::move(*instance);
  request.objective = objective;
  request.params.validate = true;
  return request;
}

/// Sends `frames` and collects every response until `expected` result or
/// error frames arrived (hello/stats chatter skipped).
struct Collected {
  std::map<std::int64_t, engine::SolveResult> results;
  /// Error frames in arrival order; ids repeat (unattributable frames all
  /// answer with id -1), so this is not a map.
  std::vector<std::pair<std::int64_t, std::string>> errors;
  std::string transport_error;

  std::size_t errors_for(std::int64_t id) const {
    std::size_t n = 0;
    for (const auto& [eid, message] : errors) n += eid == id ? 1 : 0;
    return n;
  }
};

void exchange(ClientChannel& channel, const std::vector<std::string>& frames,
              std::size_t expected, Collected* got) {
  for (const std::string& frame : frames) {
    if (!channel.send(frame, &got->transport_error)) return;
  }
  while (got->results.size() + got->errors.size() < expected) {
    const auto line = channel.next_frame(&got->transport_error);
    if (!line.has_value()) {
      if (got->transport_error.empty()) got->transport_error = "early EOF";
      return;
    }
    std::string error;
    const auto head = io::frame_head_from_json(*line, &error);
    ASSERT_TRUE(head.has_value()) << error << " in " << *line;
    if (head->frame == "hello" || head->frame == "stats" ||
        head->frame == "drain") {
      continue;
    }
    if (head->frame == "error") {
      got->errors.emplace_back(head->id, head->message);
      continue;
    }
    ASSERT_EQ(head->frame, "result") << *line;
    const auto result = io::result_from_json(*line, &error);
    ASSERT_TRUE(result.has_value()) << error;
    got->results[head->id] = *result;
  }
}

TEST(ServeServer, MixedBurstMatchesTheLocalEngineAndReordersById) {
  Server server(loopback(3));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  struct Case {
    std::string scenario;
    std::string solver;
    engine::Objective objective;
  };
  const std::vector<Case> cases = {
      {"mega_mixed", "gap_dp", engine::Objective::kGaps},
      {"sparse_spread", "gap_dp", engine::Objective::kGaps},
      {"poly_scale:120", "bcd_poly_gap", engine::Objective::kGaps},
      {"stretched:8:power_longhaul", "power_dp", engine::Objective::kPower},
      {"nested_windows", "power_dp", engine::Objective::kPower},
  };

  // The local referee: same registry family, same requests, solved
  // in-process.
  engine::Engine local;
  std::vector<engine::SolveRequest> requests;
  std::vector<double> expected_costs;
  std::vector<bool> expected_feasible;
  std::vector<std::string> frames;
  std::int64_t id = 0;
  for (int round = 0; round < 4; ++round) {
    for (const Case& c : cases) {
      engine::SolveRequest request = scenario_request(
          c.scenario, 100 + static_cast<std::uint64_t>(round), c.objective);
      const engine::Solver* solver = local.registry().find(c.solver);
      ASSERT_NE(solver, nullptr) << c.solver;
      const engine::SolveResult reference = local.solve(*solver, request);
      ASSERT_TRUE(reference.ok) << reference.error;
      EXPECT_TRUE(reference.audit_error.empty()) << reference.audit_error;
      expected_costs.push_back(reference.cost);
      expected_feasible.push_back(reference.feasible);
      frames.push_back(request_frame(id++, c.solver, request));
      requests.push_back(std::move(request));
    }
  }

  auto channel = ClientChannel::dial("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(channel.has_value()) << error;
  Collected got;
  ASSERT_NO_FATAL_FAILURE(
      exchange(*channel, frames, frames.size(), &got));
  ASSERT_TRUE(got.transport_error.empty()) << got.transport_error;
  ASSERT_EQ(got.errors.size(), 0u);
  ASSERT_EQ(got.results.size(), frames.size());
  // Responses streamed in completion order; the id-keyed map IS the
  // client-side reorder. Every id maps back onto its local referee.
  for (std::int64_t i = 0; i < id; ++i) {
    ASSERT_TRUE(got.results.count(i)) << "missing response " << i;
    const engine::SolveResult& remote = got.results[i];
    EXPECT_TRUE(remote.ok) << remote.error;
    EXPECT_EQ(remote.feasible,
              expected_feasible[static_cast<std::size_t>(i)])
        << i;
    EXPECT_DOUBLE_EQ(remote.cost, expected_costs[static_cast<std::size_t>(i)])
        << i;
    EXPECT_TRUE(remote.audit_error.empty()) << remote.audit_error;
  }
  server.drain();
}

TEST(ServeServer, LoadgenBurstOverSharedCacheHasNoDropsOrRefutations) {
  Server server(loopback(4));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  LoadOptions options;
  options.port = server.port();
  options.connections = 4;
  options.window = 8;
  std::vector<LoadSpec> specs(2);
  specs[0].scenario = "mega_mixed";
  specs[0].solver = "gap_dp";
  specs[0].requests = 80;
  specs[0].seed_base = 11;
  specs[0].duplicate_every = 3;  // canonical duplicates → shared-cache hits
  specs[1].scenario = "stretched:8:power_longhaul";
  specs[1].solver = "power_dp";
  specs[1].objective = engine::Objective::kPower;
  specs[1].requests = 40;
  specs[1].seed_base = 21;
  specs[1].duplicate_every = 4;

  const LoadReport report = run_load(options, specs);
  EXPECT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.sent, 120u);
  EXPECT_EQ(report.received, 120u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.refuted, 0u);
  EXPECT_EQ(report.duplicate_ids, 0u);
  EXPECT_EQ(report.unknown_ids, 0u);

  // Stats aggregation: the per-shard tallies must sum to the burst.
  ASSERT_TRUE(report.server_stats_ok);
  std::uint64_t shard_requests = 0;
  std::uint64_t shard_cache_hits = 0;
  for (const io::ShardStatsWire& shard : report.server_stats.shards) {
    shard_requests += shard.requests;
    shard_cache_hits += shard.cache_hits;
    EXPECT_EQ(shard.refuted, 0u);
  }
  EXPECT_EQ(shard_requests, 120u);
  // The duplicates guarantee whole-solve cache hits somewhere.
  EXPECT_GT(shard_cache_hits, 0u);
  EXPECT_GT(report.server_stats.cache.hits, 0u);
  EXPECT_EQ(report.server_stats.pipeline.requests, shard_requests);
  server.drain();
}

TEST(ServeServer, DrainMidBurstCompletesInFlightAndRejectsNew) {
  // One shard so the burst queues deep enough that drain() is still
  // completing accepted work when the late request lands.
  ServerOptions options = loopback(1);
  options.shard_queue = 256;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  auto channel = ClientChannel::dial("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(channel.has_value()) << error;

  // Validated thousand-job bcd solves: a few ms each, serial on the one
  // shard — the drain below spends a long, test-visible window completing
  // them, during which the late request must bounce.
  constexpr int kBurst = 20;
  for (std::int64_t i = 0; i < kBurst; ++i) {
    const engine::SolveRequest request =
        scenario_request("poly_scale:2000", 500 + static_cast<std::uint64_t>(i),
                         engine::Objective::kGaps);
    ASSERT_TRUE(
        channel->send(request_frame(i, "bcd_poly_gap", request), &error))
        << error;
  }
  // Barrier: the reader handles frames serially, so once the stats frame
  // below is answered, every one of the kBurst requests has been ACCEPTED onto
  // the shard — "in flight" in the drain contract's sense. (Without this,
  // requests still sitting unread in the TCP buffer when the drain begins
  // are legitimately rejected as new work.)
  std::map<std::int64_t, engine::SolveResult> results;
  ASSERT_TRUE(channel->send(stats_request_frame(), &error)) << error;
  for (bool synced = false; !synced;) {
    const auto line = channel->next_frame(&error);
    ASSERT_TRUE(line.has_value()) << error;
    std::string parse_error;
    const auto head = io::frame_head_from_json(*line, &parse_error);
    ASSERT_TRUE(head.has_value()) << parse_error;
    if (head->frame == "result") {
      // Early finishers can beat the stats reply onto the wire; keep them.
      const auto result = io::result_from_json(*line, &parse_error);
      ASSERT_TRUE(result.has_value()) << parse_error;
      results[head->id] = *result;
    }
    synced = head->frame == "stats";
  }

  std::thread drainer([&] { server.drain(); });
  while (!server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The server is draining but its reader is still alive: a new request
  // must bounce with a clean error frame, not a hang or a silent close.
  const engine::SolveRequest late =
      scenario_request("sparse_spread", 1, engine::Objective::kGaps);
  const bool late_sent =
      channel->send(request_frame(999, "gap_dp", late), &error);

  bool late_rejected = false;
  for (;;) {
    const auto line = channel->next_frame(&error);
    if (!line.has_value()) break;  // drain finished: EOF
    std::string parse_error;
    const auto head = io::frame_head_from_json(*line, &parse_error);
    ASSERT_TRUE(head.has_value()) << parse_error;
    if (head->frame == "hello" || head->frame == "stats") continue;
    if (head->frame == "error") {
      EXPECT_EQ(head->id, 999);
      EXPECT_NE(head->message.find("draining"), std::string::npos)
          << head->message;
      late_rejected = true;
      continue;
    }
    ASSERT_EQ(head->frame, "result");
    const auto result = io::result_from_json(*line, &parse_error);
    ASSERT_TRUE(result.has_value()) << parse_error;
    results[head->id] = *result;
  }
  drainer.join();

  // Every request accepted before the drain completed with a real answer.
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kBurst));
  for (std::int64_t i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(results.count(i)) << "dropped in-flight request " << i;
    EXPECT_TRUE(results[i].ok) << results[i].error;
  }
  // And the late one was refused explicitly (when its frame still made it
  // onto the wire before the writer closed).
  if (late_sent) {
    EXPECT_TRUE(late_rejected);
  }
}

TEST(ServeServer, DeadlineExpiredInQueueAnswersTimedOutWithoutSolving) {
  // One shard: park a queue of real work in front of the dead-lined
  // request so it expires while waiting.
  Server server(loopback(1));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  auto channel = ClientChannel::dial("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(channel.has_value()) << error;

  std::vector<std::string> frames;
  for (std::int64_t i = 0; i < 10; ++i) {
    frames.push_back(request_frame(
        i, "gap_dp",
        scenario_request("mega_mixed", 900 + static_cast<std::uint64_t>(i),
                         engine::Objective::kGaps)));
  }
  // 0.01 ms: expired long before the shard reaches it.
  frames.push_back(request_frame(
      10, "gap_dp",
      scenario_request("sparse_spread", 2, engine::Objective::kGaps), 0.01));

  Collected got;
  ASSERT_NO_FATAL_FAILURE(exchange(*channel, frames, frames.size(), &got));
  ASSERT_TRUE(got.transport_error.empty()) << got.transport_error;
  ASSERT_EQ(got.results.size(), frames.size());
  const engine::SolveResult& expired = got.results[10];
  EXPECT_FALSE(expired.ok);
  EXPECT_TRUE(expired.timed_out);
  EXPECT_NE(expired.error.find("deadline"), std::string::npos)
      << expired.error;
  // The queued-ahead work was untouched by the expiry.
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(got.results[i].ok) << got.results[i].error;
  }
  server.drain();
}

TEST(ServeServer, MalformedFramesDiagnoseAndTheConnectionSurvives) {
  Server server(loopback(2));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  auto channel = ClientChannel::dial("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(channel.has_value()) << error;

  const std::vector<std::string> frames = {
      "this is not json",                        // parse error
      R"({"id": 5})",                            // no frame discriminator
      R"({"frame": "teleport", "id": 6})",       // unknown frame type
      R"({"frame": "request", "id": -3})",       // bad id
      // A malformed request body (instance must be an object).
      R"({"frame": "request", "id": 7, "solver": "gap_dp", "instance": "zap"})",
      request_frame(8, "no_such_solver",
                    scenario_request("sparse_spread", 3,
                                     engine::Objective::kGaps)),
      // After all that abuse, a well-formed request still answers.
      request_frame(9, "gap_dp",
                    scenario_request("sparse_spread", 3,
                                     engine::Objective::kGaps)),
  };
  Collected got;
  ASSERT_NO_FATAL_FAILURE(exchange(*channel, frames, frames.size(), &got));
  ASSERT_TRUE(got.transport_error.empty()) << got.transport_error;
  // Unparseable, untyped, and bad-id frames each answered with their own
  // error frame (unattributable ones under id -1)…
  EXPECT_EQ(got.errors_for(-1), 3u);
  EXPECT_EQ(got.errors_for(6), 1u);
  EXPECT_EQ(got.errors_for(7), 1u);
  // …an unknown solver is a *solved* rejection (it traveled a shard)…
  ASSERT_EQ(got.results.count(8), 1u);
  EXPECT_FALSE(got.results[8].ok);
  // …and the connection still serves real work afterwards.
  ASSERT_EQ(got.results.count(9), 1u);
  EXPECT_TRUE(got.results[9].ok) << got.results[9].error;
  server.drain();
}

TEST(ServeServer, OversizedFramesCloseTheConnectionWithADiagnostic) {
  ServerOptions options = loopback(1);
  options.max_frame_bytes = 2048;
  Server server(options);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  auto channel = ClientChannel::dial("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(channel.has_value()) << error;

  std::string huge = "{\"frame\": \"request\", \"id\": 1, \"pad\": \"";
  huge.append(8192, 'x');
  huge += "\"}";
  ASSERT_TRUE(channel->send(huge, &error)) << error;

  bool diagnosed = false;
  for (;;) {
    const auto line = channel->next_frame(&error);
    if (!line.has_value()) break;  // server closed the connection
    std::string parse_error;
    const auto head = io::frame_head_from_json(*line, &parse_error);
    ASSERT_TRUE(head.has_value()) << parse_error;
    if (head->frame == "error") {
      EXPECT_NE(head->message.find("exceeds"), std::string::npos)
          << head->message;
      diagnosed = true;
    }
  }
  EXPECT_TRUE(diagnosed);
  server.drain();
}

TEST(ServeServer, DrainFrameAcksAndSurfacesTheRequestToTheFrontEnd) {
  Server server(loopback(2));
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  EXPECT_FALSE(server.drain_requested());
  auto channel = ClientChannel::dial("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(channel.has_value()) << error;
  ASSERT_TRUE(channel->send(drain_frame(), &error)) << error;
  bool acked = false;
  while (!acked) {
    const auto line = channel->next_frame(&error);
    ASSERT_TRUE(line.has_value()) << error;
    std::string parse_error;
    const auto head = io::frame_head_from_json(*line, &parse_error);
    ASSERT_TRUE(head.has_value()) << parse_error;
    if (head->frame == "drain") acked = true;
  }
  // The front end (gapsched_serve's main) is what reacts to the request.
  EXPECT_TRUE(server.wait_drain_requested(5.0));
  server.drain();
  EXPECT_TRUE(server.draining());
}

}  // namespace
}  // namespace gapsched::serve

// Engine-level behavior of the persistent store tier: warm restarts serve
// oracle-gated disk hits with costs identical to the cold run, the
// cost-weighted spill threshold keeps cheap solves off disk, two live
// Engines share one store file through the tail rescan, and the solve
// cache's disk counters surface through Engine::cache_stats(). These also
// run under the CI ASan/TSan lanes (Store* filter).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "gapsched/engine/engine.hpp"
#include "gapsched/scenarios/scenarios.hpp"
#include "gapsched/store/store.hpp"

namespace gapsched::store {
namespace {

constexpr const char* kSolver = "gap_dp";

std::string temp_path(const std::string& name) {
  std::string path = ::testing::TempDir() + "gapsched_" + name + ".store";
  std::remove(path.c_str());
  return path;
}

std::vector<engine::SolveRequest> scenario_requests() {
  std::vector<engine::SolveRequest> requests;
  for (const char* name : {"sparse_spread", "hall_critical", "nested_windows"}) {
    const auto inst = scenarios::make_scenario(name, 11);
    EXPECT_TRUE(inst.has_value()) << name;
    engine::SolveRequest req;
    req.instance = *inst;
    req.params.validate = true;  // every answer independently re-audited
    requests.push_back(std::move(req));
  }
  return requests;
}

engine::EngineOptions store_options(const std::string& path,
                                    double spill_min_ms = 0.0) {
  engine::EngineOptions opt;
  opt.store_path = path;
  opt.store_spill_min_ms = spill_min_ms;
  return opt;
}

TEST(StoreEngine, WarmRestartServesDiskHitsAtColdCosts) {
  const std::string path = temp_path("warm_restart");
  const std::vector<engine::SolveRequest> requests = scenario_requests();
  std::vector<double> cold_costs;
  std::vector<bool> cold_feasible;
  {
    engine::Engine cold(store_options(path));
    ASSERT_EQ(cold.store_error(), "");
    for (const engine::SolveRequest& req : requests) {
      const engine::SolveResult res = cold.solve(kSolver, req);
      ASSERT_TRUE(res.ok) << res.error;
      EXPECT_EQ(res.audit_error, "");
      cold_costs.push_back(res.cost);
      cold_feasible.push_back(res.feasible);
    }
    cold.flush_store();
    const engine::CacheStats stats = cold.cache_stats();
    EXPECT_GT(stats.spilled, 0u);
    EXPECT_EQ(stats.spilled, stats.disk_entries);
    EXPECT_EQ(stats.disk_hits, 0u);  // nothing to warm from on a cold run
  }
  // A restart: fresh process state, same store file. Every answer must be
  // bit-identical to the cold reference and pass its own oracle audit —
  // the disk tier may only ever change *where* an answer comes from.
  engine::Engine warm(store_options(path));
  ASSERT_EQ(warm.store_error(), "");
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const engine::SolveResult res = warm.solve(kSolver, requests[i]);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.feasible, cold_feasible[i]);
    EXPECT_EQ(res.cost, cold_costs[i]);
    EXPECT_EQ(res.audit_error, "");
  }
  const engine::CacheStats stats = warm.cache_stats();
  EXPECT_GT(stats.disk_hits, 0u);
  EXPECT_EQ(stats.disk_rejects, 0u);
}

TEST(StoreEngine, SpillThresholdKeepsCheapSolvesOffDisk) {
  const std::string path = temp_path("spill_threshold");
  engine::Engine eng(store_options(path, /*spill_min_ms=*/1e9));
  ASSERT_EQ(eng.store_error(), "");
  for (const engine::SolveRequest& req : scenario_requests()) {
    const engine::SolveResult res = eng.solve(kSolver, req);
    ASSERT_TRUE(res.ok) << res.error;
  }
  eng.flush_store();
  // No scenario solve clears a 1e9 ms bar: the store stays empty — the
  // cost-weighted admission gate is what separates "worth a disk record"
  // from "cheaper to recompute".
  const engine::CacheStats stats = eng.cache_stats();
  EXPECT_EQ(stats.spilled, 0u);
  EXPECT_EQ(stats.disk_entries, 0u);
  ASSERT_NE(eng.store(), nullptr);
  EXPECT_EQ(eng.store()->size(), 0u);
}

TEST(StoreEngine, TwoLiveEnginesShareOneStore) {
  const std::string path = temp_path("two_engines");
  const std::vector<engine::SolveRequest> requests = scenario_requests();
  // Both engines are alive at once — the CLI-session-next-to-server shape.
  engine::Engine writer(store_options(path));
  engine::Engine reader(store_options(path));
  ASSERT_EQ(writer.store_error(), "");
  ASSERT_EQ(reader.store_error(), "");

  std::vector<double> costs;
  for (const engine::SolveRequest& req : requests) {
    costs.push_back(writer.solve(kSolver, req).cost);
  }
  writer.flush_store();  // the hand-off barrier before another process reads

  // The reader's store handle indexed an empty file at construction; its
  // first index miss rescans the grown tail and finds the writer's
  // records — no reopen, no restart.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const engine::SolveResult res = reader.solve(kSolver, requests[i]);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.cost, costs[i]);
    EXPECT_EQ(res.audit_error, "");
  }
  const engine::CacheStats stats = reader.cache_stats();
  EXPECT_GT(stats.disk_hits, 0u);
  EXPECT_EQ(stats.disk_rejects, 0u);
  // The reader re-solved nothing expensive, so it spilled nothing new.
  EXPECT_EQ(stats.spilled, 0u);
}

TEST(StoreEngine, StoreRequiresTheCache) {
  const std::string path = temp_path("no_cache");
  engine::EngineOptions opt;
  opt.cache = false;
  opt.store_path = path;
  engine::Engine eng(opt);
  // No cache tier means no disk tier to sit behind it; the engine still
  // constructs and solves, just without any store.
  EXPECT_EQ(eng.store(), nullptr);
  const auto inst = scenarios::make_scenario("sparse_spread", 3);
  ASSERT_TRUE(inst.has_value());
  engine::SolveRequest req;
  req.instance = *inst;
  req.params.validate = true;
  const engine::SolveResult res = eng.solve(kSolver, req);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.audit_error, "");
}

}  // namespace
}  // namespace gapsched::store

// Corruption battery for the persistent solve store: every corruption
// class — foreign magic, wrong format version, broken record framing,
// flipped bytes in each record region, torn tails, and a forged checksum
// that only the oracle can catch — must degrade an Engine to a fresh
// solve (counted in disk_rejects / store_error), never to a wrong answer.
//
// Method: warm a real store through an Engine once, keep the pristine file
// bytes, then replay the same requests against per-test corrupted copies
// with params.validate on, asserting byte-for-byte cost agreement with
// the cold reference and a clean independent oracle audit.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gapsched/core/hash.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/scenarios/scenarios.hpp"
#include "gapsched/store/store.hpp"

namespace gapsched::store {
namespace {

constexpr const char* kSolver = "gap_dp";

std::string temp_path(const std::string& name) {
  std::string path = ::testing::TempDir() + "gapsched_" + name + ".store";
  std::remove(path.c_str());
  return path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// The warm fixture, built once: a store file populated by a real Engine,
/// the requests that populated it, and the cold reference costs.
struct WarmFixture {
  std::string bytes;  // pristine store file content
  std::vector<engine::SolveRequest> requests;
  std::vector<double> costs;
  std::vector<bool> feasible;
};

const WarmFixture& warm_fixture() {
  static const WarmFixture* fixture = [] {
    auto* fx = new WarmFixture();
    for (const char* name : {"sparse_spread", "hall_critical"}) {
      const auto inst = scenarios::make_scenario(name, 7);
      EXPECT_TRUE(inst.has_value()) << name;
      engine::SolveRequest req;
      req.instance = *inst;
      req.params.validate = true;
      fx->requests.push_back(std::move(req));
    }
    const std::string path = temp_path("warm_fixture");
    {
      engine::EngineOptions opt;
      opt.store_path = path;
      opt.store_spill_min_ms = 0.0;  // persist everything, however cheap
      engine::Engine eng(opt);
      EXPECT_EQ(eng.store_error(), "");
      for (const engine::SolveRequest& req : fx->requests) {
        const engine::SolveResult res = eng.solve(kSolver, req);
        EXPECT_TRUE(res.ok) << res.error;
        EXPECT_EQ(res.audit_error, "");
        fx->costs.push_back(res.cost);
        fx->feasible.push_back(res.feasible);
      }
      eng.flush_store();
      EXPECT_GT(eng.cache_stats().spilled, 0u);
    }
    fx->bytes = read_file(path);
    EXPECT_GT(fx->bytes.size(), kFileHeaderBytes);
    return fx;
  }();
  return *fixture;
}

/// Replays the fixture's requests on an Engine over `path`, asserting
/// every answer matches the cold reference and survives its own audit.
/// Returns the engine's cache stats after the replay.
engine::CacheStats replay_and_check(const std::string& path,
                                    bool expect_store_open) {
  const WarmFixture& fx = warm_fixture();
  engine::EngineOptions opt;
  opt.store_path = path;
  opt.store_spill_min_ms = 0.0;
  engine::Engine eng(opt);
  if (expect_store_open) {
    EXPECT_EQ(eng.store_error(), "");
    EXPECT_NE(eng.store(), nullptr);
  } else {
    EXPECT_NE(eng.store_error(), "");
    EXPECT_EQ(eng.store(), nullptr);
  }
  for (std::size_t i = 0; i < fx.requests.size(); ++i) {
    const engine::SolveResult res = eng.solve(kSolver, fx.requests[i]);
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.feasible, fx.feasible[i]);
    EXPECT_EQ(res.cost, fx.costs[i]);
    EXPECT_EQ(res.audit_error, "");  // independent oracle re-derivation
  }
  eng.flush_store();
  return eng.cache_stats();
}

/// Offsets of the records in the pristine file, via a read-only handle on
/// a scratch copy (the copy is then discarded).
std::vector<RecordInfo> pristine_records() {
  const std::string path = temp_path("records_probe");
  write_file(path, warm_fixture().bytes);
  std::string error;
  auto store = DiskStore::open(path, {}, &error);
  EXPECT_NE(store, nullptr) << error;
  std::vector<RecordInfo> records = store->records();
  EXPECT_GE(records.size(), 2u);
  return records;
}

// ----------------------------------------------------------------- tests --

TEST(StoreCorruption, IntactStoreServesOracleVerifiedDiskHits) {
  // Control: the un-corrupted file must produce disk hits (each re-audited
  // against the requester's instance before admission) and zero rejects.
  const std::string path = temp_path("intact");
  write_file(path, warm_fixture().bytes);
  const engine::CacheStats stats = replay_and_check(path, true);
  EXPECT_GT(stats.disk_hits, 0u);
  EXPECT_EQ(stats.disk_rejects, 0u);
}

TEST(StoreCorruption, ForeignMagicFailsOpenAndEngineFallsBack) {
  std::string bytes = warm_fixture().bytes;
  bytes[0] = 'X';  // no longer "gapstore"
  const std::string path = temp_path("bad_magic");
  write_file(path, bytes);

  std::string error;
  EXPECT_EQ(DiskStore::open(path, {}, &error), nullptr);
  EXPECT_NE(error.find("bad magic"), std::string::npos) << error;

  // The engine runs memory-only — a broken store can cost speed, never
  // correctness or startup.
  const engine::CacheStats stats = replay_and_check(path, false);
  EXPECT_EQ(stats.disk_hits, 0u);
}

TEST(StoreCorruption, WrongFormatVersionIsAbandonedCold) {
  std::string bytes = warm_fixture().bytes;
  bytes[8] = 99;  // version u32 (little-endian low byte) at offset 8
  const std::string path = temp_path("bad_version");
  write_file(path, bytes);

  std::string error;
  EXPECT_EQ(DiskStore::open(path, {}, &error), nullptr);
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  const engine::CacheStats stats = replay_and_check(path, false);
  EXPECT_EQ(stats.disk_hits, 0u);
}

TEST(StoreCorruption, BrokenRecordMagicLosesTheFramedTail) {
  const std::vector<RecordInfo> records = pristine_records();
  std::string bytes = warm_fixture().bytes;
  // Destroy the first record's magic: the per-record framing is gone, so
  // everything from here on is unrecoverable and dropped.
  bytes[records[0].offset] ^= 0xFF;
  const std::string path = temp_path("bad_rmagic");
  write_file(path, bytes);

  const engine::CacheStats stats = replay_and_check(path, true);
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_GE(stats.disk_rejects, 1u);
}

TEST(StoreCorruption, FlippedByteInEachRecordRegionIsRejected) {
  const std::vector<RecordInfo> records = pristine_records();
  const RecordInfo& rec = records[0];
  // One flipped byte per checksummed record region: the length fields,
  // the digest, the recorded cost, the key text, the payload, and the
  // checksum itself. Every one must quarantine exactly that record while
  // the later records stay reachable (the framing after it lines up).
  const std::size_t probes[] = {
      rec.offset + 4,               // key_len
      rec.offset + 16,              // digest
      rec.offset + 24,              // cost_ms
      rec.offset + kRecordHeaderBytes,         // first key byte
      rec.offset + rec.bytes - kRecordChecksumBytes - 1,  // last payload byte
      rec.offset + rec.bytes - 1,   // checksum
  };
  for (const std::size_t at : probes) {
    SCOPED_TRACE("flipped byte at offset " + std::to_string(at));
    std::string bytes = warm_fixture().bytes;
    ASSERT_LT(at, bytes.size());
    bytes[at] ^= 0x20;
    const std::string path = temp_path("flip_" + std::to_string(at));
    write_file(path, bytes);

    // The store itself skips the broken record and keeps the rest.
    {
      std::string error;
      auto store = DiskStore::open(path, {}, &error);
      ASSERT_NE(store, nullptr) << error;
      const StoreStats sstats = store->stats();
      // A corrupted length field can desynchronize the framing instead of
      // just failing the checksum; either way the record must be rejected
      // and never served.
      EXPECT_GE(sstats.rejected_records, 1u);
      EXPECT_LE(store->size(), records.size() - 1);
    }

    const engine::CacheStats stats = replay_and_check(path, true);
    EXPECT_GE(stats.disk_rejects, 1u);
  }
}

TEST(StoreCorruption, TruncationMidRecordRecoversThePrefix) {
  const std::vector<RecordInfo> records = pristine_records();
  const RecordInfo& last = records.back();
  std::string bytes = warm_fixture().bytes;
  // Cut the file in the middle of the last record — the torn-write shape
  // a crashed writer without fsync leaves behind.
  bytes.resize(last.offset + last.bytes / 2);
  const std::string path = temp_path("torn");
  write_file(path, bytes);

  {
    std::string error;
    auto store = DiskStore::open(path, {}, &error);
    ASSERT_NE(store, nullptr) << error;
    EXPECT_EQ(store->size(), records.size() - 1);
    // Recovery discards exactly the partial record bytes left on disk.
    EXPECT_EQ(store->stats().truncated_bytes, last.bytes / 2);
  }

  const engine::CacheStats stats = replay_and_check(path, true);
  EXPECT_GT(stats.disk_hits, 0u);  // the intact prefix still serves
}

TEST(StoreCorruption, ForgedChecksumIsCaughtOnlyByTheOracle) {
  // The adversarial class: corrupt a payload AND recompute the record
  // checksum so framing and checksum verification both pass. The store
  // happily serves the record — the oracle re-audit in the pipeline is
  // the only line of defense, and it must hold.
  const std::vector<RecordInfo> records = pristine_records();
  std::string bytes = warm_fixture().bytes;
  std::size_t forged = 0;
  for (const RecordInfo& rec : records) {
    std::string record = bytes.substr(rec.offset, rec.bytes);
    // Bump the leading digit of the payload's "cost" field in place: the
    // JSON stays valid and parseable, the claimed cost is simply wrong.
    const std::size_t cost_at = record.find("\"cost\": ");
    if (cost_at == std::string::npos) continue;
    char& digit = record[cost_at + 8];
    if (digit < '0' || digit > '9') continue;
    digit = digit == '9' ? '8' : static_cast<char>(digit + 1);
    // Recompute FNV-1a over everything before the checksum and patch it.
    const std::uint64_t sum = fnv1a64(std::string_view(
        record.data(), record.size() - kRecordChecksumBytes));
    for (std::size_t b = 0; b < kRecordChecksumBytes; ++b) {
      record[record.size() - kRecordChecksumBytes + b] =
          static_cast<char>((sum >> (8 * b)) & 0xFF);
    }
    bytes.replace(rec.offset, rec.bytes, record);
    ++forged;
  }
  ASSERT_GT(forged, 0u);
  const std::string path = temp_path("forged");
  write_file(path, bytes);

  // The store layer is fooled: every forged record scans clean and loads.
  {
    std::string error;
    auto store = DiskStore::open(path, {}, &error);
    ASSERT_NE(store, nullptr) << error;
    EXPECT_EQ(store->size(), records.size());
    EXPECT_EQ(store->stats().rejected_records, 0u);
  }

  // The engine is not: the oracle re-audit refutes the forged cost before
  // admission, the solve falls back fresh, and the answer stays right.
  const engine::CacheStats stats = replay_and_check(path, true);
  EXPECT_GE(stats.disk_rejects, 1u);
}

}  // namespace
}  // namespace gapsched::store

// Direct tests of gapsched::store::DiskStore — the on-disk second tier of
// the solve cache: record round-trips and reopen persistence, idempotent
// appends, key-identity checks behind the digest, simulated-crash recovery
// (torn tails truncated, intact prefix preserved, appends resume),
// cross-handle sharing (flock is per-open-file-description, so two handles
// in one process contend exactly like two processes), a multi-thread
// hammer for the ASan/TSan lanes, and keep-most-expensive compaction.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gapsched/core/hash.hpp"
#include "gapsched/store/store.hpp"

namespace gapsched::store {
namespace {

/// A fresh path under the test temp dir; any stale file is removed so the
/// store is created from scratch.
std::string fresh_path(const std::string& name) {
  std::string path = ::testing::TempDir() + "gapsched_" + name + ".store";
  std::remove(path.c_str());
  std::remove((path + ".compact").c_str());
  return path;
}

std::unique_ptr<DiskStore> must_open(const std::string& path,
                                     StoreOptions options = {}) {
  std::string error;
  auto store = DiskStore::open(path, options, &error);
  EXPECT_NE(store, nullptr) << error;
  return store;
}

std::string key_of(int i) { return "key-" + std::to_string(i); }
std::string payload_of(int i) {
  return "{\"payload\":" + std::to_string(i) + "}";
}
std::uint64_t digest_of(int i) { return fnv1a64(key_of(i)); }

/// Appends records 0..n-1 with cost `cost_ms` each.
void fill(DiskStore& store, int n, double cost_ms = 1.0) {
  for (int i = 0; i < n; ++i) {
    std::string error;
    ASSERT_TRUE(store.append(digest_of(i), key_of(i), payload_of(i), cost_ms,
                             &error))
        << error;
  }
}

// ------------------------------------------------------------ round trip --

TEST(StoreFormat, RoundTripAndReopen) {
  const std::string path = fresh_path("roundtrip");
  {
    auto store = must_open(path);
    fill(*store, 5);
    EXPECT_EQ(store->size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(store->contains(digest_of(i)));
      const auto payload = store->load(digest_of(i), key_of(i));
      ASSERT_TRUE(payload.has_value());
      EXPECT_EQ(*payload, payload_of(i));
    }
    const StoreStats stats = store->stats();
    EXPECT_EQ(stats.appends, 5u);
    EXPECT_EQ(stats.loads, 5u);
    EXPECT_EQ(stats.rejected_records, 0u);
    EXPECT_EQ(stats.truncated_bytes, 0u);
  }
  // A fresh handle (a restart) indexes every record from the file alone.
  auto store = must_open(path);
  EXPECT_EQ(store->size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const auto payload = store->load(digest_of(i), key_of(i));
    ASSERT_TRUE(payload.has_value());
    EXPECT_EQ(*payload, payload_of(i));
  }
  EXPECT_EQ(store->stats().rejected_records, 0u);
}

TEST(StoreFormat, AppendIsIdempotentPerDigest) {
  const std::string path = fresh_path("idempotent");
  auto store = must_open(path);
  fill(*store, 1);
  const std::size_t bytes = store->stats().file_bytes;
  // Same digest again: first writer wins, no bytes added, still success.
  EXPECT_TRUE(store->append(digest_of(0), key_of(0), "{\"other\":1}", 9.0));
  EXPECT_EQ(store->size(), 1u);
  EXPECT_EQ(store->stats().file_bytes, bytes);
  EXPECT_EQ(store->load(digest_of(0), key_of(0)), payload_of(0));
}

TEST(StoreFormat, RecordLayoutMatchesRecordBytes) {
  const std::string path = fresh_path("layout");
  auto store = must_open(path);
  fill(*store, 2);
  const std::vector<RecordInfo> records = store->records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].offset, kFileHeaderBytes);
  EXPECT_EQ(records[0].bytes,
            record_bytes(key_of(0).size(), payload_of(0).size()));
  EXPECT_EQ(records[1].offset, records[0].offset + records[0].bytes);
  EXPECT_EQ(store->stats().file_bytes,
            records[1].offset + records[1].bytes);
}

TEST(StoreFormat, LoadRejectsKeyMismatchBehindSameDigest) {
  const std::string path = fresh_path("keymismatch");
  auto store = must_open(path);
  const std::uint64_t digest = 0xfeedfacecafebeefull;
  ASSERT_TRUE(store->append(digest, "the real key", "payload", 1.0));
  // A digest collision (or a forged record) must never alias another key:
  // the stored key text is compared byte for byte on load.
  EXPECT_FALSE(store->load(digest, "an impostor key").has_value());
  EXPECT_GE(store->stats().rejected_records, 1u);
  // The record is quarantined — even the true key cannot revive it without
  // a rescan, and contains() no longer advertises it.
  EXPECT_FALSE(store->contains(digest));
}

TEST(StoreFormat, InvalidateDropsOnlyTheIndexEntry) {
  const std::string path = fresh_path("invalidate");
  auto store = must_open(path);
  fill(*store, 3);
  const std::size_t bytes = store->stats().file_bytes;
  store->invalidate(digest_of(1));
  EXPECT_FALSE(store->contains(digest_of(1)));
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->stats().file_bytes, bytes);  // bytes stay until compaction
  EXPECT_TRUE(store->load(digest_of(0), key_of(0)).has_value());
  EXPECT_TRUE(store->load(digest_of(2), key_of(2)).has_value());
}

// ---------------------------------------------------------- crash safety --

TEST(StoreCrash, TornTailIsTruncatedAndAppendsResume) {
  const std::string path = fresh_path("torn_tail");
  {
    auto store = must_open(path);
    fill(*store, 3);
    // Simulated crash: the next append writes only the first 10 bytes of
    // its record (a cut-off header), skips the fsync, and poisons the
    // handle the way a dead process would abandon it.
    std::string error;
    StoreOptions fault;
    fault.fail_append_after = 10;
    auto crasher = must_open(path, fault);
    EXPECT_FALSE(
        crasher->append(digest_of(99), key_of(99), payload_of(99), 1.0,
                        &error));
    EXPECT_NE(error.find("simulated crash"), std::string::npos) << error;
    // The poisoned handle refuses further writes — no half-alive zombie.
    EXPECT_FALSE(
        crasher->append(digest_of(98), key_of(98), payload_of(98), 1.0));
  }
  // Recovery on reopen: the intact prefix is fully readable, the torn tail
  // is measured and truncated away, and the store accepts appends again.
  auto store = must_open(path);
  EXPECT_EQ(store->size(), 3u);
  EXPECT_EQ(store->stats().truncated_bytes, 10u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(store->load(digest_of(i), key_of(i)), payload_of(i));
  }
  std::string error;
  ASSERT_TRUE(
      store->append(digest_of(7), key_of(7), payload_of(7), 1.0, &error))
      << error;
  EXPECT_EQ(store->load(digest_of(7), key_of(7)), payload_of(7));

  // And the post-recovery file is again clean for the next restart.
  auto again = must_open(path);
  EXPECT_EQ(again->size(), 4u);
  EXPECT_EQ(again->stats().truncated_bytes, 0u);
}

TEST(StoreCrash, CrashInsideRecordHeaderRecovers) {
  const std::string path = fresh_path("torn_header");
  {
    auto store = must_open(path);
    fill(*store, 1);
    StoreOptions fault;
    fault.fail_append_after = 3;  // not even the record magic survives
    auto crasher = must_open(path, fault);
    EXPECT_FALSE(
        crasher->append(digest_of(50), key_of(50), payload_of(50), 1.0));
  }
  auto store = must_open(path);
  EXPECT_EQ(store->size(), 1u);
  EXPECT_EQ(store->stats().truncated_bytes, 3u);
  EXPECT_EQ(store->load(digest_of(0), key_of(0)), payload_of(0));
}

TEST(StoreCrash, CrashAtZeroBytesLeavesFileUntouched) {
  const std::string path = fresh_path("torn_zero");
  {
    auto store = must_open(path);
    fill(*store, 2);
  }
  // fail_append_after counts written bytes; a crash "before the first
  // byte" is modeled by a 0-byte cap clamping to... nothing at all is a
  // degenerate case the option treats as a full record, so use 1 byte.
  {
    StoreOptions fault;
    fault.fail_append_after = 1;
    auto crasher = must_open(path, fault);
    EXPECT_FALSE(
        crasher->append(digest_of(60), key_of(60), payload_of(60), 1.0));
  }
  auto store = must_open(path);
  EXPECT_EQ(store->size(), 2u);
  EXPECT_EQ(store->stats().truncated_bytes, 1u);
}

// --------------------------------------------------------------- sharing --

TEST(StoreSharing, SecondHandleSeesAppendsViaTailRescan) {
  const std::string path = fresh_path("share_rescan");
  auto writer = must_open(path);
  auto reader = must_open(path);  // opened while the file is still empty
  EXPECT_EQ(reader->size(), 0u);
  fill(*writer, 4);
  // The reader's index misses, so load() rescans the grown tail under a
  // lock and finds the records the writer published — no reopen needed.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(reader->load(digest_of(i), key_of(i)), payload_of(i));
  }
  EXPECT_EQ(reader->size(), 4u);
  EXPECT_EQ(reader->stats().rejected_records, 0u);
}

TEST(StoreSharing, RefreshPicksUpForeignRecordsWithoutALoad) {
  const std::string path = fresh_path("share_refresh");
  auto writer = must_open(path);
  auto reader = must_open(path);
  fill(*writer, 3);
  EXPECT_FALSE(reader->contains(digest_of(0)));  // index-only probe: stale
  reader->refresh();
  EXPECT_EQ(reader->size(), 3u);
  EXPECT_TRUE(reader->contains(digest_of(0)));
}

TEST(StoreSharing, ConcurrentHandlesNeverInterleaveRecords) {
  // The cross-process sharing contract, exercised in-process: flock(2) is
  // per-open-file-description, so these four handles contend exactly like
  // four processes. Every thread hammers its own digest range through its
  // own handle; if the append lock failed to cover write+fsync+publish,
  // record bytes would interleave and the final scan would reject records.
  const std::string path = fresh_path("share_hammer");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 24;
  std::vector<std::unique_ptr<DiskStore>> handles;
  for (int t = 0; t < kThreads; ++t) handles.push_back(must_open(path));

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      DiskStore& store = *handles[static_cast<std::size_t>(t)];
      for (int i = 0; i < kPerThread; ++i) {
        const int id = t * kPerThread + i;
        // Payload length varies per record so any interleaving would
        // desynchronize the framing of everything after it.
        std::string payload = payload_of(id);
        payload.append(static_cast<std::size_t>(id % 37), '#');
        if (!store.append(digest_of(id), key_of(id), payload, 1.0)) {
          failures.fetch_add(1);
        }
        // Interleave reads of other threads' records into the traffic.
        const int other = ((t + 1) % kThreads) * kPerThread + i;
        (void)store.load(digest_of(other), key_of(other));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // A fresh handle replays the file from scratch: every record must be
  // intact, none rejected, none torn.
  auto verify = must_open(path);
  EXPECT_EQ(verify->size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  const StoreStats stats = verify->stats();
  EXPECT_EQ(stats.rejected_records, 0u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  for (int id = 0; id < kThreads * kPerThread; ++id) {
    std::string expect = payload_of(id);
    expect.append(static_cast<std::size_t>(id % 37), '#');
    EXPECT_EQ(verify->load(digest_of(id), key_of(id)), expect);
  }
}

// ------------------------------------------------------------ compaction --

TEST(StoreCompaction, KeepsTheMostExpensiveRecords) {
  const std::string path = fresh_path("compaction");
  StoreOptions options;
  // Room for only a handful of records: appends will trip compaction.
  options.max_bytes = 6 * record_bytes(key_of(0).size(),
                                       payload_of(0).size());
  auto store = must_open(path, options);
  // Ascending cost: the earliest (cheapest) records are the sacrifice.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(store->append(digest_of(i), key_of(i), payload_of(i),
                              static_cast<double>(i + 1)));
  }
  const StoreStats stats = store->stats();
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_GT(stats.dropped_records, 0u);
  EXPECT_LE(stats.file_bytes, options.max_bytes);
  // The most expensive record ever written must have survived every pass.
  EXPECT_EQ(store->load(digest_of(15), key_of(15)), payload_of(15));
  // The cheapest is gone.
  EXPECT_FALSE(store->contains(digest_of(0)));
  // Survivors are exactly the top of the cost order: every kept record
  // costs at least as much as every dropped one.
  double min_kept = 1e18;
  for (const RecordInfo& rec : store->records()) {
    min_kept = std::min(min_kept, rec.cost_ms);
  }
  for (int i = 0; i < 16; ++i) {
    if (!store->contains(digest_of(i))) {
      EXPECT_LT(static_cast<double>(i + 1), min_kept + 0.5);
    }
  }
  // The compacted file reopens clean.
  auto again = must_open(path, options);
  EXPECT_EQ(again->size(), store->size());
  EXPECT_EQ(again->stats().rejected_records, 0u);
}

TEST(StoreCompaction, WriterOnReplacedInodeReopensAndContinues) {
  const std::string path = fresh_path("compaction_race");
  StoreOptions budget;
  budget.max_bytes = 6 * record_bytes(key_of(0).size(),
                                      payload_of(0).size());
  auto compactor = must_open(path, budget);
  auto bystander = must_open(path);  // unbounded handle on the same file
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(compactor->append(digest_of(i), key_of(i), payload_of(i),
                                  static_cast<double>(i + 1)));
  }
  ASSERT_GE(compactor->stats().compactions, 1u);
  // The bystander still holds the pre-compaction inode; its next append
  // must detect the replacement (dev/ino check under the lock), reopen the
  // new file, and land its record there — not on the orphaned inode.
  ASSERT_TRUE(
      bystander->append(digest_of(100), key_of(100), payload_of(100), 50.0));
  EXPECT_EQ(compactor->load(digest_of(100), key_of(100)), payload_of(100));
  auto verify = must_open(path);
  EXPECT_TRUE(verify->contains(digest_of(100)));
  EXPECT_EQ(verify->stats().rejected_records, 0u);
}

// ------------------------------------------------------------ bad opens --

TEST(StoreFormat, OversizedFieldsAreRefusedAtAppend) {
  const std::string path = fresh_path("oversize");
  auto store = must_open(path);
  std::string error;
  const std::string big(kMaxFieldBytes + 1, 'x');
  EXPECT_FALSE(store->append(1, big, "p", 1.0, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(store->size(), 0u);
}

}  // namespace
}  // namespace gapsched::store

#include "gapsched/exact/brute_force.hpp"
#include "gapsched/exact/power_brute_force.hpp"

#include <gtest/gtest.h>

#include "gapsched/gen/generators.hpp"
#include "gapsched/matching/feasibility.hpp"

namespace gapsched {
namespace {

TEST(BruteForce, EmptyInstance) {
  Instance inst;
  ExactGapResult r = brute_force_min_transitions(inst);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 0);
}

TEST(BruteForce, SingleJob) {
  Instance inst = Instance::one_interval({{3, 7}});
  ExactGapResult r = brute_force_min_transitions(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
  EXPECT_EQ(r.schedule.validate(inst), "");
}

TEST(BruteForce, TwoForcedApartJobs) {
  Instance inst = Instance::one_interval({{0, 0}, {5, 5}});
  ExactGapResult r = brute_force_min_transitions(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 2);
}

TEST(BruteForce, ContiguousPacking) {
  Instance inst = Instance::one_interval({{0, 4}, {0, 4}, {0, 4}});
  ExactGapResult r = brute_force_min_transitions(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
}

TEST(BruteForce, Infeasible) {
  Instance inst = Instance::one_interval({{2, 2}, {2, 2}});
  EXPECT_FALSE(brute_force_min_transitions(inst).feasible);
}

TEST(BruteForce, MultiprocessorStacksJobs) {
  // Two jobs forced at the same time need two wake-ups on two processors;
  // the third continues on processor 0.
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}, {1, 1}}, 2);
  ExactGapResult r = brute_force_min_transitions(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 2);
}

TEST(BruteForce, DesignDocThreeJobExample) {
  // Jobs at {0}, {0 or 2}, {2} (p large): min transitions is 3 whatever the
  // flexible job does.
  Instance inst;
  inst.processors = 3;
  inst.jobs.push_back(Job{TimeSet::points({0})});
  inst.jobs.push_back(Job{TimeSet::points({0, 2})});
  inst.jobs.push_back(Job{TimeSet::points({2})});
  ExactGapResult r = brute_force_min_transitions(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 3);
}

TEST(BruteForce, MultiIntervalJobPrefersAdjacency) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet::window(0, 0)});
  inst.jobs.push_back(Job{TimeSet({{1, 1}, {10, 10}})});
  ExactGapResult r = brute_force_min_transitions(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
  EXPECT_EQ(r.schedule.at(1)->time, 1);
}

TEST(BruteForce, FeasibilityAgreesWithMatchingOracle) {
  Prng rng(1234);
  for (int it = 0; it < 40; ++it) {
    Instance inst =
        gen_uniform_one_interval(rng, 6, 8, 3, 1 + static_cast<int>(rng.index(2)));
    EXPECT_EQ(brute_force_min_transitions(inst).feasible, is_feasible(inst))
        << "iteration " << it;
  }
}

TEST(PowerBruteForce, SingleJobCost) {
  Instance inst = Instance::one_interval({{0, 5}});
  ExactPowerResult r = brute_force_min_power(inst, 2.5);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 1.0 + 2.5);
}

TEST(PowerBruteForce, BridgeVersusSleep) {
  // Jobs forced at 0 and 4: idle 3 units between.
  Instance inst = Instance::one_interval({{0, 0}, {4, 4}});
  // alpha = 5: bridging (3) is cheaper than rewaking (5).
  EXPECT_DOUBLE_EQ(brute_force_min_power(inst, 5.0).power, 2.0 + 5.0 + 3.0);
  // alpha = 1: sleeping (1) is cheaper.
  EXPECT_DOUBLE_EQ(brute_force_min_power(inst, 1.0).power, 2.0 + 1.0 + 1.0);
}

TEST(PowerBruteForce, MovableJobAvoidsIdle) {
  Instance inst = Instance::one_interval({{0, 0}, {0, 4}});
  ExactPowerResult r = brute_force_min_power(inst, 3.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 2.0 + 3.0);  // both adjacent, one wake
}

TEST(PowerBruteForce, ScheduleCostMatchesProfileEvaluation) {
  Prng rng(99);
  for (int it = 0; it < 30; ++it) {
    Instance inst = gen_feasible_one_interval(rng, 6, 10, 2);
    const double alpha = 0.5 * static_cast<double>(rng.index(10));
    ExactPowerResult r = brute_force_min_power(inst, alpha);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.schedule.validate(inst), "");
    EXPECT_NEAR(r.power, r.schedule.profile().optimal_power(alpha), 1e-9)
        << "iteration " << it;
  }
}

TEST(PowerBruteForce, AlphaZeroCostsBusyTimeOnly) {
  Prng rng(7);
  Instance inst = gen_feasible_one_interval(rng, 5, 9, 2);
  ExactPowerResult r = brute_force_min_power(inst, 0.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.power, 5.0);
}

}  // namespace
}  // namespace gapsched

#include "gapsched/exact/span_search.hpp"

#include <gtest/gtest.h>

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/exact/brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(SpanSearch, EmptyInstance) {
  Instance inst;
  SpanSearchResult r = span_search_min_transitions(inst);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 0);
}

TEST(SpanSearch, SingleSpanPacking) {
  Instance inst = Instance::one_interval({{0, 4}, {0, 4}, {0, 4}});
  SpanSearchResult r = span_search_min_transitions(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
  EXPECT_EQ(r.schedule.validate(inst), "");
}

TEST(SpanSearch, ForcedTwoSpans) {
  Instance inst = Instance::one_interval({{0, 0}, {9, 9}});
  SpanSearchResult r = span_search_min_transitions(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 2);
}

TEST(SpanSearch, Infeasible) {
  Instance inst = Instance::one_interval({{3, 3}, {3, 3}});
  EXPECT_FALSE(span_search_min_transitions(inst).feasible);
}

TEST(SpanSearch, MultiIntervalChoice) {
  Instance inst;
  inst.jobs.push_back(Job{TimeSet::window(0, 0)});
  inst.jobs.push_back(Job{TimeSet({{1, 1}, {10, 10}})});
  SpanSearchResult r = span_search_min_transitions(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.transitions, 1);
}

TEST(SpanSearch, HandlesMidSizeInstances) {
  Prng rng(3003);
  Instance inst = gen_multi_interval(rng, 18, 50, 2, 3);
  SpanSearchResult r = span_search_min_transitions(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.validate(inst), "");
  EXPECT_EQ(r.schedule.profile().transitions(), r.transitions);
}

// Cross-validation against the subset-DP brute force on multi-interval
// instances and against the Theorem 1 DP on one-interval instances.
class SpanSearchAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SpanSearchAgreement, MatchesBruteForce) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 149 + 7);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst = (GetParam() % 2 == 0)
                      ? gen_multi_interval(rng, 7, 16, 2, 2)
                      : gen_unit_points(rng, 7, 14, 3);
  const ExactGapResult bf = brute_force_min_transitions(inst);
  const SpanSearchResult ss = span_search_min_transitions(inst);
  ASSERT_EQ(ss.feasible, bf.feasible);
  if (bf.feasible) {
    EXPECT_EQ(ss.transitions, bf.transitions);
    EXPECT_EQ(ss.schedule.validate(inst), "");
  }
}

TEST_P(SpanSearchAgreement, MatchesGapDpOnOneInterval) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 151 + 11);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst = gen_uniform_one_interval(rng, 8, 12, 4, 1);
  const GapDpResult dp = solve_gap_dp(inst);
  const SpanSearchResult ss = span_search_min_transitions(inst);
  ASSERT_EQ(ss.feasible, dp.feasible);
  if (dp.feasible) {
    EXPECT_EQ(ss.transitions, dp.transitions);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SpanSearchAgreement, ::testing::Range(0, 30));

}  // namespace
}  // namespace gapsched

// Metamorphic properties of the exact solvers: known-answer tests need a
// ground truth, but these relations must hold between *pairs* of solves on
// transformed instances with no ground truth at all:
//
//   * time-shift invariance — shifting every window by +c preserves
//     feasibility and both objective optima (gap counts and idle-run
//     lengths are translation invariant),
//   * job-order permutation invariance — the optimum is a function of the
//     multiset of jobs,
//   * processor-count monotonicity — adding processors never worsens the
//     optimum (any p-processor schedule is a (p+1)-processor schedule),
//   * time-stretch invariance — dilating every interior dead run that is
//     already longer than alpha leaves BOTH optima unchanged: dead runs
//     are unusable (gap objective) and every dilated idle run stays on the
//     min(gap, alpha) = alpha plateau (power objective). This is the
//     pre-compression ground truth for the engine's length-aware capped
//     compression, exercised both through core/transforms directly and
//     through the catalog's `stretched:<k>` wrapper.
//
// Runs under the `long` ctest label next to the differential suite.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "gapsched/core/transforms.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/scenarios/scenarios.hpp"
#include "gapsched/util/prng.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

using engine::Objective;
using engine::SolveRequest;
using engine::SolveResult;

constexpr double kAlpha = 2.5;

/// One-interval single-processor catalog scenarios: the exact DP envelope
/// every property below exercises.
std::vector<const scenarios::Scenario*> dp_scenarios() {
  std::vector<const scenarios::Scenario*> out;
  for (const scenarios::Scenario* s :
       scenarios::ScenarioCatalog::instance().all()) {
    if (s->one_interval && s->processors == 1) out.push_back(s);
  }
  return out;
}

SolveResult solve(const char* solver, Instance inst, Objective obj) {
  // The engine's solve cache stays OFF here on purpose: shifted and
  // permuted instances share a canonical form, so with the cache on every
  // invariance below would be satisfied by construction (one solve, N
  // lookups) instead of by N independent solves. The cache-on equivalences
  // are pinned separately in tests/engine/engine_cache_test.cpp.
  static engine::Engine eng({.cache = false});
  SolveRequest req;
  req.instance = std::move(inst);
  req.objective = obj;
  req.params.alpha = kAlpha;
  req.params.validate = true;
  SolveResult r = eng.solve(solver, req);
  EXPECT_EQ(r.audit_error, "") << solver << ": " << r.audit_error;
  return r;
}

Instance shifted(const Instance& inst, Time delta) {
  Instance out;
  out.processors = inst.processors;
  out.jobs.reserve(inst.n());
  for (const Job& j : inst.jobs) {
    out.jobs.push_back(Job{j.allowed.shifted(delta)});
  }
  return out;
}

TEST(Metamorphic, TimeShiftInvariance) {
  for (const scenarios::Scenario* sc : dp_scenarios()) {
    SCOPED_TRACE(::testing::Message() << "scenario " << sc->name);
    for (int draw = 0; draw < 2; ++draw) {
      const std::uint64_t seed = testing::seed_for(500 + 13 * draw);
      GAPSCHED_TRACE_SEED(seed);
      const Instance inst = sc->make(seed);
      const SolveResult base = solve("gap_dp", inst, Objective::kGaps);
      const SolveResult pbase = solve("power_dp", inst, Objective::kPower);
      ASSERT_TRUE(base.ok && pbase.ok) << base.error << pbase.error;
      for (Time delta : {Time{1}, Time{97}}) {
        const SolveResult moved =
            solve("gap_dp", shifted(inst, delta), Objective::kGaps);
        ASSERT_TRUE(moved.ok) << moved.error;
        EXPECT_EQ(base.feasible, moved.feasible) << "delta " << delta;
        if (base.feasible) {
          EXPECT_EQ(base.transitions, moved.transitions) << "delta " << delta;
        }

        const SolveResult pmoved =
            solve("power_dp", shifted(inst, delta), Objective::kPower);
        ASSERT_TRUE(pmoved.ok) << pmoved.error;
        EXPECT_EQ(pbase.feasible, pmoved.feasible) << "delta " << delta;
        if (pbase.feasible) {
          EXPECT_DOUBLE_EQ(pbase.cost, pmoved.cost) << "delta " << delta;
        }
      }
    }
  }
}

TEST(Metamorphic, JobOrderPermutationInvariance) {
  for (const scenarios::Scenario* sc : dp_scenarios()) {
    SCOPED_TRACE(::testing::Message() << "scenario " << sc->name);
    const std::uint64_t seed = testing::seed_for(600);
    GAPSCHED_TRACE_SEED(seed);
    const Instance inst = sc->make(seed);

    Prng perm_rng(testing::seed_for(601));
    for (int round = 0; round < 3; ++round) {
      std::vector<std::size_t> order(inst.n());
      std::iota(order.begin(), order.end(), std::size_t{0});
      perm_rng.shuffle(order);
      Instance permuted;
      permuted.processors = inst.processors;
      for (std::size_t idx : order) permuted.jobs.push_back(inst.jobs[idx]);

      const SolveResult base = solve("gap_dp", inst, Objective::kGaps);
      const SolveResult perm = solve("gap_dp", permuted, Objective::kGaps);
      EXPECT_EQ(base.feasible, perm.feasible);
      if (base.feasible && perm.feasible) {
        EXPECT_EQ(base.transitions, perm.transitions);
      }

      const SolveResult pbase = solve("power_dp", inst, Objective::kPower);
      const SolveResult pperm = solve("power_dp", permuted, Objective::kPower);
      EXPECT_EQ(pbase.feasible, pperm.feasible);
      if (pbase.feasible && pperm.feasible) {
        EXPECT_DOUBLE_EQ(pbase.cost, pperm.cost);
      }
    }
  }
}

TEST(Metamorphic, TimeStretchInvariance) {
  // Dilating every interior dead run of length >= ceil(alpha) + 1 by k
  // must leave the gap and power optima unchanged — with no ground truth
  // needed. Pinned against every one-interval DP-envelope scenario, both
  // through the transform directly and through the catalog's dynamic
  // `stretched:<k>` wrapper (whose dilation floor kStretchMinRun covers
  // this suite's alpha).
  const Time floor = static_cast<Time>(std::ceil(kAlpha)) + 1;
  ASSERT_GE(floor, scenarios::kStretchMinRun)
      << "wrapper floor must stay sound for this suite's alpha";
  for (const scenarios::Scenario* sc : dp_scenarios()) {
    SCOPED_TRACE(::testing::Message() << "scenario " << sc->name);
    for (int draw = 0; draw < 2; ++draw) {
      const std::uint64_t seed = testing::seed_for(800 + 41 * draw);
      GAPSCHED_TRACE_SEED(seed);
      const Instance inst = sc->make(seed);
      const SolveResult base = solve("gap_dp", inst, Objective::kGaps);
      const SolveResult pbase = solve("power_dp", inst, Objective::kPower);
      ASSERT_TRUE(base.ok && pbase.ok) << base.error << pbase.error;
      for (Time k : {Time{2}, Time{13}}) {
        const Instance wide = stretch_dead_time(inst, k, floor);
        const SolveResult moved = solve("gap_dp", wide, Objective::kGaps);
        ASSERT_TRUE(moved.ok) << moved.error;
        EXPECT_EQ(base.feasible, moved.feasible) << "k " << k;
        if (base.feasible) {
          EXPECT_EQ(base.transitions, moved.transitions) << "k " << k;
        }

        const SolveResult pmoved = solve("power_dp", wide, Objective::kPower);
        ASSERT_TRUE(pmoved.ok) << pmoved.error;
        EXPECT_EQ(pbase.feasible, pmoved.feasible) << "k " << k;
        if (pbase.feasible) {
          EXPECT_DOUBLE_EQ(pbase.cost, pmoved.cost) << "k " << k;
        }
      }

      // The wrapper draws the same dilated family by name.
      const auto wrapped =
          scenarios::make_scenario("stretched:5:" + sc->name, seed);
      ASSERT_TRUE(wrapped.has_value());
      const SolveResult wgap = solve("gap_dp", *wrapped, Objective::kGaps);
      const SolveResult wpow = solve("power_dp", *wrapped, Objective::kPower);
      ASSERT_TRUE(wgap.ok && wpow.ok) << wgap.error << wpow.error;
      EXPECT_EQ(base.feasible, wgap.feasible);
      EXPECT_EQ(pbase.feasible, wpow.feasible);
      if (base.feasible) EXPECT_EQ(base.transitions, wgap.transitions);
      if (pbase.feasible) EXPECT_DOUBLE_EQ(pbase.cost, wpow.cost);
    }
  }
}

TEST(Metamorphic, ProcessorCountMonotonicity) {
  for (const scenarios::Scenario* sc : dp_scenarios()) {
    SCOPED_TRACE(::testing::Message() << "scenario " << sc->name);
    for (int draw = 0; draw < 2; ++draw) {
      const std::uint64_t seed = testing::seed_for(700 + 31 * draw);
      GAPSCHED_TRACE_SEED(seed);
      Instance inst = sc->make(seed);

      std::int64_t prev_gap = -1;
      double prev_power = -1.0;
      bool prev_feasible = false;
      for (int p = 1; p <= 3; ++p) {
        inst.processors = p;
        const SolveResult gap = solve("gap_dp", inst, Objective::kGaps);
        const SolveResult power = solve("power_dp", inst, Objective::kPower);
        ASSERT_TRUE(gap.ok && power.ok) << gap.error << power.error;
        EXPECT_EQ(gap.feasible, power.feasible) << "p=" << p;
        // Feasibility is monotone in p.
        if (prev_feasible) {
          EXPECT_TRUE(gap.feasible) << "lost feasibility growing p to " << p;
        }
        if (gap.feasible && prev_gap >= 0) {
          EXPECT_LE(gap.transitions, prev_gap) << "p=" << p;
        }
        if (power.feasible && prev_power >= 0.0) {
          EXPECT_LE(power.cost, prev_power + 1e-9) << "p=" << p;
        }
        prev_feasible = gap.feasible;
        if (gap.feasible) prev_gap = gap.transitions;
        if (power.feasible) prev_power = power.cost;
      }
    }
  }
}

}  // namespace
}  // namespace gapsched

// Registry-wide differential testing: every catalog scenario is fanned
// through Engine::solve_batch across every registered solver family, and the
// results are pinned against each other and against the independent oracle:
//
//   * exact families agree on feasibility and on the objective value,
//   * every returned schedule and cost survives the oracle audit,
//   * no heuristic ever beats the exact optimum,
//   * the throughput greedy never beats the exhaustive restart optimum.
//
// The whole sweep runs through a persistent engine::Engine with its solve
// cache ON: identical components dedup, repeated canonical forms hit the
// cache, and every served answer — cached or fresh — must still survive the
// oracle and agree with its exact peers. This doubles as the cache's
// soundness sweep across the catalog.
//
// Runs under the `long` ctest label. Failures print the scenario name and
// the PRNG seed; replay with GAPSCHED_TEST_SEED=<base> (see README).

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "gapsched/engine/engine.hpp"
#include "gapsched/restart/restart_greedy.hpp"
#include "gapsched/scenarios/scenarios.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

using engine::BatchJob;
using engine::Objective;
using engine::SolveResult;
using engine::Solver;
using engine::SolverRegistry;
using scenarios::Scenario;
using scenarios::ScenarioCatalog;

constexpr int kSeedsPerScenario = 6;
constexpr double kAlpha = 2.5;
constexpr std::size_t kMaxSpans = 2;

/// Relative tolerance for double-valued power costs (the exact DPs and the
/// oracle accumulate the same quantities in different orders).
double power_tol(double a, double b) {
  return 1e-9 * std::max({1.0, std::fabs(a), std::fabs(b)});
}

TEST(Differential, RegistryWideAgreementOnCatalog) {
  engine::Engine eng;  // solve cache ON: cached answers face the same bar
  const SolverRegistry& registry = eng.registry();
  const std::vector<const Solver*> solvers = registry.all();
  ASSERT_EQ(solvers.size(), 14u) << "differential suite expects every "
                                    "registered family to participate";
  const std::vector<const Scenario*> catalog =
      ScenarioCatalog::instance().all();
  ASSERT_GE(catalog.size(), 10u);

  std::map<std::string, int> solved_cells;  // family -> cells it answered

  for (std::size_t sc_idx = 0; sc_idx < catalog.size(); ++sc_idx) {
    const Scenario* sc = catalog[sc_idx];
    SCOPED_TRACE(::testing::Message() << "scenario " << sc->name);
    for (int draw = 0; draw < kSeedsPerScenario; ++draw) {
      const std::uint64_t seed = testing::seed_for(sc_idx * 97 + draw);
      GAPSCHED_TRACE_SEED(seed);
      const Instance inst = sc->make(seed);

      std::vector<BatchJob> batch;
      batch.reserve(solvers.size());
      for (const Solver* solver : solvers) {
        BatchJob job;
        job.solver = solver->info().name;
        job.request.instance = inst;
        job.request.objective = solver->info().objective;
        job.request.params.alpha = kAlpha;
        job.request.params.max_spans = kMaxSpans;
        job.request.params.validate = true;
        batch.push_back(std::move(job));
      }
      const std::vector<SolveResult> results = eng.solve_batch(batch);
      ASSERT_EQ(results.size(), solvers.size());

      // -- oracle: every produced answer survives the independent audit --
      for (std::size_t i = 0; i < solvers.size(); ++i) {
        if (!results[i].ok) continue;  // envelope rejection, not an answer
        ++solved_cells[solvers[i]->info().name];
        EXPECT_TRUE(results[i].audited) << solvers[i]->info().name;
        EXPECT_EQ(results[i].audit_error, "")
            << solvers[i]->info().name << ": " << results[i].audit_error;
      }

      // -- exact families agree with each other ---------------------------
      // Feasibility is one question across both complete-schedule
      // objectives, so every exact verdict must match.
      int feasible_verdict = -1;  // -1 unknown, else 0/1
      std::int64_t gap_opt = -1;
      const char* gap_opt_from = nullptr;
      double power_opt = -1.0;
      const char* power_opt_from = nullptr;
      for (std::size_t i = 0; i < solvers.size(); ++i) {
        const engine::SolverInfo& info = solvers[i]->info();
        if (!info.exact || !results[i].ok) continue;
        const int feas = results[i].feasible ? 1 : 0;
        if (feasible_verdict == -1) {
          feasible_verdict = feas;
        } else {
          EXPECT_EQ(feas, feasible_verdict)
              << info.name << " disagrees on feasibility";
        }
        if (!results[i].feasible) continue;
        if (info.objective == Objective::kGaps) {
          if (gap_opt_from == nullptr) {
            gap_opt = results[i].transitions;
            gap_opt_from = info.name.c_str();
          } else {
            EXPECT_EQ(results[i].transitions, gap_opt)
                << info.name << " vs " << gap_opt_from;
          }
        } else if (info.objective == Objective::kPower) {
          if (power_opt_from == nullptr) {
            power_opt = results[i].cost;
            power_opt_from = info.name.c_str();
          } else {
            EXPECT_NEAR(results[i].cost, power_opt,
                        power_tol(results[i].cost, power_opt))
                << info.name << " vs " << power_opt_from;
          }
        }
      }

      // -- the catalog's advertised guarantees hold -----------------------
      ASSERT_NE(feasible_verdict, -1)
          << "no exact solver accepted this scenario";
      if (sc->always_feasible) {
        EXPECT_EQ(feasible_verdict, 1);
      }
      if (sc->always_infeasible) {
        EXPECT_EQ(feasible_verdict, 0);
      }

      // -- heuristics are bounded below by the exact optimum --------------
      for (std::size_t i = 0; i < solvers.size(); ++i) {
        const engine::SolverInfo& info = solvers[i]->info();
        if (info.exact || !results[i].ok || !results[i].feasible) continue;
        if (info.objective == Objective::kThroughput) continue;
        // A complete schedule that passed the oracle certifies feasibility,
        // so an exact "infeasible" verdict would be a contradiction.
        EXPECT_EQ(feasible_verdict, 1)
            << info.name << " produced a valid schedule on an instance the "
            << "exact solvers call infeasible";
        if (info.objective == Objective::kGaps && gap_opt_from != nullptr) {
          EXPECT_GE(results[i].transitions, gap_opt)
              << info.name << " beat the exact optimum " << gap_opt_from;
        }
        if (info.objective == Objective::kPower && power_opt_from != nullptr) {
          EXPECT_GE(results[i].cost,
                    power_opt - power_tol(results[i].cost, power_opt))
              << info.name << " beat the exact optimum " << power_opt_from;
        }
      }

      // -- throughput: greedy never beats the exhaustive optimum ----------
      const Time horizon =
          inst.n() == 0 ? 0 : inst.latest_deadline() - inst.earliest_release();
      if (inst.n() <= 9 && inst.processors == 1 && horizon <= 40) {
        for (std::size_t i = 0; i < solvers.size(); ++i) {
          if (solvers[i]->info().objective != Objective::kThroughput ||
              !results[i].ok) {
            continue;
          }
          const std::size_t exact_max = restart_exact_max_jobs(inst, kMaxSpans);
          EXPECT_LE(results[i].stats.scheduled, exact_max)
              << solvers[i]->info().name << " beat the exhaustive optimum";
        }
      }
    }
  }

  // Acceptance: all 14 families actually answered somewhere in the sweep.
  for (const Solver* solver : solvers) {
    EXPECT_GE(solved_cells[solver->info().name], 1)
        << solver->info().name << " never ran inside its envelope";
  }
}

// The prep decomposition pipeline (on by default for the exact gap/power
// families) must be invisible in every verdict: identical feasibility and
// objective value, and oracle-clean schedules, for every family on every
// catalog scenario. Heuristic and throughput families ignore the flag, so
// for them this doubles as a determinism check.
TEST(Differential, DecompositionOnVsOffAgreesAcrossCatalog) {
  // Cache OFF here: the on/off pair must be two genuinely independent
  // solves, not one solve and one canonical-key lookup of it.
  engine::Engine eng({.cache = false});
  const SolverRegistry& registry = eng.registry();
  const std::vector<const Solver*> solvers = registry.all();
  const std::vector<const Scenario*> catalog =
      ScenarioCatalog::instance().all();

  constexpr int kDraws = 3;
  for (std::size_t sc_idx = 0; sc_idx < catalog.size(); ++sc_idx) {
    const Scenario* sc = catalog[sc_idx];
    SCOPED_TRACE(::testing::Message() << "scenario " << sc->name);
    for (int draw = 0; draw < kDraws; ++draw) {
      const std::uint64_t seed = testing::seed_for(7000 + sc_idx * 53 + draw);
      GAPSCHED_TRACE_SEED(seed);
      const Instance inst = sc->make(seed);

      // Adjacent batch slots: [2i] decomposed (default), [2i+1] monolithic.
      std::vector<BatchJob> batch;
      batch.reserve(2 * solvers.size());
      for (const Solver* solver : solvers) {
        BatchJob job;
        job.solver = solver->info().name;
        job.request.instance = inst;
        job.request.objective = solver->info().objective;
        job.request.params.alpha = kAlpha;
        job.request.params.max_spans = kMaxSpans;
        job.request.params.validate = true;
        BatchJob mono = job;
        mono.request.params.decompose = false;
        batch.push_back(std::move(job));
        batch.push_back(std::move(mono));
      }
      const std::vector<SolveResult> results = eng.solve_batch(batch);
      ASSERT_EQ(results.size(), 2 * solvers.size());

      for (std::size_t i = 0; i < solvers.size(); ++i) {
        const engine::SolverInfo& info = solvers[i]->info();
        const SolveResult& on = results[2 * i];
        const SolveResult& off = results[2 * i + 1];
        SCOPED_TRACE(::testing::Message() << "family " << info.name);
        ASSERT_EQ(on.ok, off.ok) << on.error << " vs " << off.error;
        if (!on.ok) continue;
        EXPECT_EQ(on.audit_error, "") << on.audit_error;
        EXPECT_EQ(off.audit_error, "") << off.audit_error;
        ASSERT_EQ(on.feasible, off.feasible);
        if (!on.feasible) continue;
        if (info.objective == Objective::kPower) {
          EXPECT_NEAR(on.cost, off.cost, power_tol(on.cost, off.cost));
        } else {
          EXPECT_EQ(on.cost, off.cost);
          EXPECT_EQ(on.transitions, off.transitions);
        }
        EXPECT_EQ(on.schedule.scheduled_count(), off.schedule.scheduled_count());
      }
    }
  }
}

}  // namespace
}  // namespace gapsched

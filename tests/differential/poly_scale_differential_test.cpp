// Differential testing past the exponential envelope: the poly_scale:<n>
// families at n in {100, 500, 2000} are sizes where the Theorem 1/2 window
// DPs can no longer serve as practical ground truth, and the poly_wide:<n>
// family at n = 2000 is one they genuinely REJECT (its connected wide-window
// run carries ~1.2M distinct candidate times, past the 2^20 packed-key
// axis — pinned below). The ground-truth story up there is cross-checking:
//
//   * both polynomial families survive the independent oracle audit
//     (validity, completeness, exact cost accounting),
//   * `baptiste` (the alias) and `bcd_poly_gap` answer identically,
//   * the two objectives bound each other: power in
//     [n + alpha, n + alpha * B_gap], and no schedule beats the gap
//     optimum's block count,
//   * the heuristic ladder sits above the exact optimum.
//
// Plus the in-range regression pin: on the whole static catalog the alias
// and the new family are indistinguishable. Runs under the `long` label.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "gapsched/engine/engine.hpp"
#include "gapsched/scenarios/scenarios.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

using engine::BatchJob;
using engine::Objective;
using engine::SolveResult;
using scenarios::Scenario;
using scenarios::ScenarioCatalog;

constexpr int kSeedsPerSize = 6;
constexpr double kAlpha = 2.5;

engine::Engine& shared_engine() {
  static engine::Engine eng;  // cache ON: served answers face the same bar
  return eng;
}

SolveResult solve_one(const std::string& solver, const Instance& inst,
                      Objective objective) {
  engine::SolveRequest req;
  req.instance = inst;
  req.objective = objective;
  req.params.alpha = kAlpha;
  req.params.validate = true;
  return shared_engine().solve(solver, req);
}

TEST(PolyScaleDifferential, PolynomialFamiliesCrossCheckAtScale) {
  for (const std::size_t n : {std::size_t{100}, std::size_t{500},
                              std::size_t{2000}}) {
    const std::string name = "poly_scale:" + std::to_string(n);
    for (int draw = 0; draw < kSeedsPerSize; ++draw) {
      const std::uint64_t seed = testing::seed_for(n * 131 + draw);
      GAPSCHED_TRACE_SEED(seed);
      SCOPED_TRACE(::testing::Message() << name << " draw " << draw);
      const auto inst = scenarios::make_scenario(name, seed);
      ASSERT_TRUE(inst.has_value());

      const SolveResult gap =
          solve_one("bcd_poly_gap", *inst, Objective::kGaps);
      ASSERT_TRUE(gap.ok) << gap.error;
      ASSERT_TRUE(gap.feasible);  // family is feasible by construction
      EXPECT_TRUE(gap.audited);
      EXPECT_EQ(gap.audit_error, "") << gap.audit_error;
      EXPECT_GE(gap.transitions, 1);

      // The alias is the same algorithm behind the historical name.
      const SolveResult alias =
          solve_one("baptiste", *inst, Objective::kGaps);
      ASSERT_TRUE(alias.ok) << alias.error;
      ASSERT_TRUE(alias.feasible);
      EXPECT_EQ(alias.transitions, gap.transitions);
      EXPECT_EQ(alias.audit_error, "");

      const SolveResult power =
          solve_one("bcd_poly_power", *inst, Objective::kPower);
      ASSERT_TRUE(power.ok) << power.error;
      ASSERT_TRUE(power.feasible);
      EXPECT_TRUE(power.audited);
      // The engine audit holds exact power families to cost ==
      // oracle::min_power(schedule): the min-power floor at this scale.
      EXPECT_EQ(power.audit_error, "") << power.audit_error;

      // Cross-objective bounds tie the two optima together. Lower: n active
      // slots plus one wake-up. Upper: the gap-optimal schedule's B blocks
      // cost at most n + alpha * B (every interior seam <= alpha).
      const double dn = static_cast<double>(n);
      EXPECT_GE(power.cost, dn + kAlpha - 1e-9);
      EXPECT_LE(power.cost,
                dn + kAlpha * static_cast<double>(gap.transitions) + 1e-9);
      // And no complete schedule undercuts the gap optimum's block count —
      // in particular the power-optimal one.
      EXPECT_GE(power.transitions, gap.transitions);

      // Heuristic ladder: work-conserving EDF completes every feasible
      // one-interval instance and can only sit above the exact optimum.
      const SolveResult edf =
          solve_one("online_edf", *inst, Objective::kGaps);
      ASSERT_TRUE(edf.ok) << edf.error;
      ASSERT_TRUE(edf.feasible);
      EXPECT_EQ(edf.audit_error, "");
      EXPECT_GE(edf.transitions, gap.transitions);
    }
  }
}

// In-range optimality differential on the WIDE shape: at small n the
// poly_wide windows (hundreds of usable slots per job) are still inside the
// window DPs' envelope, so exact agreement here is what certifies the bcd
// segment frontiers before the sizes where the window DPs drop out.
TEST(PolyScaleDifferential, WideWindowsAgreeWithWindowDpsInRange) {
  for (const std::size_t n :
       {std::size_t{4}, std::size_t{8}, std::size_t{12}, std::size_t{20}}) {
    const std::string name = "poly_wide:" + std::to_string(n);
    for (int draw = 0; draw < 3; ++draw) {
      const std::uint64_t seed = testing::seed_for(n * 977 + draw);
      GAPSCHED_TRACE_SEED(seed);
      SCOPED_TRACE(::testing::Message() << name << " draw " << draw);
      const auto inst = scenarios::make_scenario(name, seed);
      ASSERT_TRUE(inst.has_value());

      const SolveResult dp_gap = solve_one("gap_dp", *inst, Objective::kGaps);
      const SolveResult bcd_gap =
          solve_one("bcd_poly_gap", *inst, Objective::kGaps);
      ASSERT_TRUE(dp_gap.ok) << dp_gap.error;
      ASSERT_TRUE(bcd_gap.ok) << bcd_gap.error;
      ASSERT_TRUE(dp_gap.feasible);
      ASSERT_TRUE(bcd_gap.feasible);
      EXPECT_EQ(bcd_gap.transitions, dp_gap.transitions);
      EXPECT_EQ(bcd_gap.audit_error, "") << bcd_gap.audit_error;

      const SolveResult dp_pow = solve_one("power_dp", *inst, Objective::kPower);
      const SolveResult bcd_pow =
          solve_one("bcd_poly_power", *inst, Objective::kPower);
      ASSERT_TRUE(dp_pow.ok) << dp_pow.error;
      ASSERT_TRUE(bcd_pow.ok) << bcd_pow.error;
      ASSERT_TRUE(dp_pow.feasible);
      ASSERT_TRUE(bcd_pow.feasible);
      EXPECT_NEAR(bcd_pow.cost, dp_pow.cost, 1e-9);
      EXPECT_EQ(bcd_pow.audit_error, "") << bcd_pow.audit_error;
    }
  }
}

// The acceptance pin for "sizes the exponential DPs cannot reach": the
// poly_wide:2000 draw is one connected run of ~1.2M usable slots, so the
// Theorem 1/2 families reject over their packed-key candidate-time axis
// (2^20 distinct times) — and with no dead run anywhere, the prep
// compression/decomposition cannot rescue them. The polynomial families
// answer the very same instance through the very same engine: their
// segment frontiers never materialize the width.
TEST(PolyScaleDifferential, ExponentialDpsRejectWherePolynomialSolves) {
  const auto inst = scenarios::make_scenario("poly_wide:2000",
                                             testing::seed_for(424242));
  ASSERT_TRUE(inst.has_value());

  const SolveResult gap_dp = solve_one("gap_dp", *inst, Objective::kGaps);
  EXPECT_FALSE(gap_dp.ok) << "gap_dp unexpectedly accepted n = 2000 wide";
  EXPECT_FALSE(gap_dp.error.empty());

  const SolveResult power_dp =
      solve_one("power_dp", *inst, Objective::kPower);
  EXPECT_FALSE(power_dp.ok) << "power_dp unexpectedly accepted n = 2000 wide";
  EXPECT_FALSE(power_dp.error.empty());

  const SolveResult bcd_gap =
      solve_one("bcd_poly_gap", *inst, Objective::kGaps);
  ASSERT_TRUE(bcd_gap.ok) << bcd_gap.error;
  EXPECT_TRUE(bcd_gap.feasible);
  EXPECT_EQ(bcd_gap.audit_error, "") << bcd_gap.audit_error;
  const SolveResult bcd_power =
      solve_one("bcd_poly_power", *inst, Objective::kPower);
  ASSERT_TRUE(bcd_power.ok) << bcd_power.error;
  EXPECT_TRUE(bcd_power.feasible);
  EXPECT_EQ(bcd_power.audit_error, "") << bcd_power.audit_error;

  // The same bounds that tie the two objectives together in range.
  EXPECT_GE(bcd_power.cost, 2000.0 + kAlpha - 1e-9);
  EXPECT_LE(bcd_power.cost,
            2000.0 + kAlpha * static_cast<double>(bcd_gap.transitions) + 1e-9);
  EXPECT_GE(bcd_power.transitions, bcd_gap.transitions);
}

// Regression pin for the alias satellite: across the whole static catalog
// (including the envelope rejections: multi-interval shapes and p > 1 are
// refused by both names for the same reason), `baptiste` and `bcd_poly_gap`
// are indistinguishable.
TEST(PolyScaleDifferential, BaptisteAliasMatchesBcdPolyGapOnCatalog) {
  const std::vector<const Scenario*> catalog =
      ScenarioCatalog::instance().all();
  ASSERT_GE(catalog.size(), 16u);
  constexpr int kDraws = 3;
  for (std::size_t sc_idx = 0; sc_idx < catalog.size(); ++sc_idx) {
    const Scenario* sc = catalog[sc_idx];
    SCOPED_TRACE(::testing::Message() << "scenario " << sc->name);
    for (int draw = 0; draw < kDraws; ++draw) {
      const std::uint64_t seed = testing::seed_for(9000 + sc_idx * 61 + draw);
      GAPSCHED_TRACE_SEED(seed);
      const Instance inst = sc->make(seed);
      const SolveResult alias =
          solve_one("baptiste", inst, Objective::kGaps);
      const SolveResult poly =
          solve_one("bcd_poly_gap", inst, Objective::kGaps);
      ASSERT_EQ(alias.ok, poly.ok) << alias.error << " vs " << poly.error;
      if (!alias.ok) continue;
      ASSERT_EQ(alias.feasible, poly.feasible);
      EXPECT_EQ(alias.audit_error, "");
      EXPECT_EQ(poly.audit_error, "");
      if (!alias.feasible) continue;
      EXPECT_EQ(alias.transitions, poly.transitions);
      EXPECT_EQ(alias.schedule.scheduled_count(),
                poly.schedule.scheduled_count());
    }
  }
}

}  // namespace
}  // namespace gapsched

#include "gapsched/setpack/set_packing.hpp"

#include <gtest/gtest.h>

#include "gapsched/util/prng.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

SetPackingInstance triangle_instance() {
  // Universe {0..5}; greedy picking set 0 first blocks the two disjoint
  // sets 1 and 2; the (1 -> 2) swap recovers them.
  SetPackingInstance inst;
  inst.universe = 6;
  inst.sets = {{0, 1, 2}, {0, 3, 4}, {1, 2, 5}};
  return inst;
}

TEST(SetPacking, GreedyIsMaximalAndValid) {
  SetPackingInstance inst = triangle_instance();
  PackingResult r = greedy_packing(inst);
  EXPECT_TRUE(is_valid_packing(inst, r.chosen));
  EXPECT_EQ(r.chosen.size(), 1u);  // greedy takes set 0, blocking the rest
}

TEST(SetPacking, OneToTwoSwapImproves) {
  SetPackingInstance inst = triangle_instance();
  PackingResult r = local_search_packing(inst, 1);
  EXPECT_TRUE(is_valid_packing(inst, r.chosen));
  EXPECT_EQ(r.chosen.size(), 2u);  // {set 1, set 2}
}

TEST(SetPacking, TwoToThreeSwapImproves) {
  // Two chosen sets block three disjoint replacements.
  SetPackingInstance inst;
  inst.universe = 12;
  inst.sets = {{0, 1, 2},   // A (greedy picks first)
               {3, 4, 5},   // B (greedy picks second)
               {0, 3, 6},   // needs A,B out
               {1, 4, 7},   // needs A,B out
               {2, 5, 8}};  // needs A,B out
  PackingResult greedy = local_search_packing(inst, 1);
  EXPECT_EQ(greedy.chosen.size(), 2u);  // 1->2 swap cannot fix this
  PackingResult deep = local_search_packing(inst, 2);
  EXPECT_TRUE(is_valid_packing(inst, deep.chosen));
  EXPECT_EQ(deep.chosen.size(), 3u);
}

TEST(SetPacking, EmptyInstance) {
  SetPackingInstance inst;
  EXPECT_TRUE(greedy_packing(inst).chosen.empty());
  EXPECT_TRUE(local_search_packing(inst, 2).chosen.empty());
}

TEST(SetPacking, DisjointSetsAllChosen) {
  SetPackingInstance inst;
  inst.universe = 9;
  inst.sets = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  EXPECT_EQ(greedy_packing(inst).chosen.size(), 3u);
}

TEST(SetPacking, ValidityDetectsOverlap) {
  SetPackingInstance inst = triangle_instance();
  EXPECT_FALSE(is_valid_packing(inst, {0, 1}));  // share element 0
  EXPECT_FALSE(is_valid_packing(inst, {7}));     // out of range
}

// Property: swap size never hurts, and all outputs are valid packings.
class SwapMonotone : public ::testing::TestWithParam<int> {};

TEST_P(SwapMonotone, LargerSwapsNeverSmaller) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 131 + 13);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  SetPackingInstance inst;
  inst.universe = 18;
  const std::size_t sets = 12 + rng.index(10);
  for (std::size_t s = 0; s < sets; ++s) {
    std::vector<std::size_t> set;
    while (set.size() < 3) {
      const std::size_t e = rng.index(inst.universe);
      if (std::find(set.begin(), set.end(), e) == set.end()) set.push_back(e);
    }
    std::sort(set.begin(), set.end());
    inst.sets.push_back(std::move(set));
  }
  const std::size_t s0 = local_search_packing(inst, 0).chosen.size();
  const std::size_t s1 = local_search_packing(inst, 1).chosen.size();
  const std::size_t s2 = local_search_packing(inst, 2).chosen.size();
  EXPECT_TRUE(is_valid_packing(inst, local_search_packing(inst, 2).chosen));
  EXPECT_LE(s0, s1);
  EXPECT_LE(s1, s2);
}

INSTANTIATE_TEST_SUITE_P(Random, SwapMonotone, ::testing::Range(0, 30));

}  // namespace
}  // namespace gapsched

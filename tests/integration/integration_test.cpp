// Cross-module integration: every solver against every other on shared
// workload families, plus end-to-end pipelines (serialize -> solve,
// compress -> solve, reduce -> solve -> extract). Solver dispatch goes
// through the engine registry — this file is also the end-to-end exercise
// of the engine seam the CLI and benches rely on.

#include <gtest/gtest.h>

#include "gapsched/core/transforms.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/io/serialize.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "gapsched/powermin/powermin_approx.hpp"
#include "gapsched/reductions/setcover_to_powermin.hpp"
#include "gapsched/restart/restart_greedy.hpp"
#include "gapsched/setcover/setcover.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

/// Shared cache-off engine: these pins assume independent stateless solves.
engine::Engine& shared_engine() {
  static engine::Engine eng({.cache = false});
  return eng;
}

// Four exact solvers and two approximations on the same one-interval
// single-processor instances: full consistency matrix, solved as one
// mixed-solver engine batch.
class SolverMatrix : public ::testing::TestWithParam<int> {};

TEST_P(SolverMatrix, AllSolversConsistent) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 173 + 7);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst = (GetParam() % 2 == 0)
                      ? gen_uniform_one_interval(rng, 8, 12, 4, 1)
                      : gen_feasible_one_interval(rng, 8, 16, 3, 1);

  const bool feasible = is_feasible(inst);
  engine::SolveRequest gaps{inst, engine::Objective::kGaps, {}};
  const std::vector<engine::BatchJob> batch = {
      {"brute_force", gaps}, {"gap_dp", gaps},     {"baptiste", gaps},
      {"span_search", gaps}, {"fhkn_greedy", gaps}, {"online_edf", gaps},
  };
  const std::vector<engine::SolveResult> results =
      shared_engine().solve_batch(batch);
  const engine::SolveResult& bf = results[0];

  // Every request was inside its solver's envelope, and feasibility is
  // unanimous.
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << batch[i].solver << ": " << results[i].error;
    EXPECT_EQ(results[i].feasible, feasible) << batch[i].solver;
  }
  if (!feasible) return;

  // All exact solvers agree on the optimum, and every produced schedule is
  // valid for the instance.
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].schedule.validate(inst), "") << batch[i].solver;
  }
  EXPECT_EQ(results[1].transitions, bf.transitions);  // gap_dp
  EXPECT_EQ(results[2].transitions, bf.transitions);  // baptiste
  EXPECT_EQ(results[3].transitions, bf.transitions);  // span_search

  // Approximations sandwiched between OPT and their guarantees.
  const engine::SolveResult& greedy = results[4];
  const engine::SolveResult& online = results[5];
  EXPECT_GE(greedy.transitions, bf.transitions);
  EXPECT_LE(greedy.transitions, 3 * bf.transitions);
  EXPECT_GE(online.transitions, bf.transitions);

  // At huge alpha the power optimum bridges every idle stretch (idle cost
  // is tiny next to a re-wake), so it pays for at most the gap optimum's
  // transitions and at least one wake-up.
  const double alpha = 1e6;
  engine::SolveRequest power{inst, engine::Objective::kPower, {}};
  power.params.alpha = alpha;
  const engine::SolveResult pw = shared_engine().solve("power_dp", power);
  ASSERT_TRUE(pw.ok) << pw.error;
  ASSERT_TRUE(pw.feasible);
  const double implied = (pw.cost - static_cast<double>(inst.n())) / alpha;
  EXPECT_LE(implied, static_cast<double>(bf.transitions) + 0.01);
  EXPECT_GE(implied, 1.0 - 0.01);
}

INSTANTIATE_TEST_SUITE_P(Random, SolverMatrix, ::testing::Range(0, 25));

// Serialization round trip preserves solver results bit for bit.
class SerializeSolve : public ::testing::TestWithParam<int> {};

TEST_P(SerializeSolve, SameOptimumAfterRoundTrip) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 179 + 11);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst = gen_multi_interval(rng, 7, 18, 2, 2,
                                     1 + static_cast<int>(rng.index(2)));
  auto parsed = instance_from_string(instance_to_string(inst));
  ASSERT_TRUE(parsed.has_value());
  const engine::SolveResult a = shared_engine().solve(
      "brute_force", {inst, engine::Objective::kGaps, {}});
  const engine::SolveResult b = shared_engine().solve(
      "brute_force", {*parsed, engine::Objective::kGaps, {}});
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.feasible, b.feasible);
  if (a.feasible) {
    EXPECT_EQ(a.transitions, b.transitions);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SerializeSolve, ::testing::Range(0, 15));

// Dead-time compression composes with the full solver stack.
TEST(Pipelines, CompressThenSolve) {
  Instance inst;
  inst.processors = 1;
  inst.jobs.push_back(Job{TimeSet::window(1000, 1002)});
  inst.jobs.push_back(Job{TimeSet::window(1000, 1002)});
  inst.jobs.push_back(Job{TimeSet::window(90000, 90001)});
  CompressedInstance c = compress_dead_time(inst);
  const GapDpResult orig = solve_gap_dp(inst);
  const GapDpResult comp = solve_gap_dp(c.instance);
  ASSERT_TRUE(orig.feasible);
  ASSERT_TRUE(comp.feasible);
  EXPECT_EQ(orig.transitions, comp.transitions);
  // Mapping compressed schedule times back gives original-legal times.
  for (std::size_t j = 0; j < inst.n(); ++j) {
    const Time t = c.to_original(comp.schedule.at(j)->time);
    EXPECT_TRUE(inst.jobs[j].allowed.contains(t)) << j;
  }
}

// End-to-end hardness pipeline: set cover -> scheduling instance -> greedy
// scheduling heuristic (Theorem 3 machinery) -> extracted cover is valid.
TEST(Pipelines, SetCoverThroughSchedulingHeuristic) {
  Prng rng(424242);
  SetCoverInstance sc = gen_random_set_cover(rng, 8, 6, 3);
  SetCoverReduction red = reduce_setcover_to_powermin(sc);
  // The Theorem 3 pipeline produces a feasible schedule...
  PowerMinApproxResult apx = powermin_approx(red.instance, red.alpha);
  ASSERT_TRUE(apx.feasible);
  ASSERT_EQ(apx.schedule.validate(red.instance), "");
  // ...whose extracted cover is valid (though not necessarily optimal).
  const auto cover = red.cover_from_schedule(apx.schedule);
  EXPECT_TRUE(is_valid_cover(sc, cover));
  const SetCoverResult exact = exact_set_cover(sc);
  EXPECT_GE(cover.size(), exact.chosen.size());
}

// Restart greedy with an unbounded budget schedules every job of a
// feasible instance.
TEST(Pipelines, RestartWithFullBudgetCompletes) {
  Prng rng(515151);
  Instance inst = gen_multi_interval(rng, 10, 24, 2, 2);
  ASSERT_TRUE(is_feasible(inst));
  RestartResult r = restart_greedy(inst, inst.n());
  EXPECT_EQ(r.scheduled, inst.n());
  EXPECT_EQ(r.schedule.validate(inst), "");
}

// The Theorem 3 approximation can never beat the exact Theorem 2 DP on
// one-interval instances (where both apply).
class ApproxVsExactPower : public ::testing::TestWithParam<int> {};

TEST_P(ApproxVsExactPower, ApproxAboveExact) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 191 + 13);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst = gen_feasible_one_interval(rng, 8, 16, 3, 1);
  const double alpha = 0.5 + static_cast<double>(rng.index(8));
  engine::SolveRequest req{inst, engine::Objective::kPower, {}};
  req.params.alpha = alpha;
  const engine::SolveResult opt = shared_engine().solve("power_dp", req);
  const engine::SolveResult apx =
      shared_engine().solve("powermin_approx", req);
  ASSERT_TRUE(opt.ok && apx.ok) << opt.error << apx.error;
  ASSERT_TRUE(opt.feasible);
  ASSERT_TRUE(apx.feasible);
  EXPECT_GE(apx.cost + 1e-9, opt.cost);
  EXPECT_LE(apx.cost, (1.0 + alpha) * opt.cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, ApproxVsExactPower, ::testing::Range(0, 20));

}  // namespace
}  // namespace gapsched

// Cross-module integration: every solver against every other on shared
// workload families, plus end-to-end pipelines (serialize -> solve,
// compress -> solve, reduce -> solve -> extract).

#include <gtest/gtest.h>

#include "gapsched/baptiste/baptiste.hpp"
#include "gapsched/core/transforms.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/exact/brute_force.hpp"
#include "gapsched/exact/span_search.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/greedy/fhkn_greedy.hpp"
#include "gapsched/io/serialize.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "gapsched/online/online_edf.hpp"
#include "gapsched/powermin/powermin_approx.hpp"
#include "gapsched/reductions/setcover_to_powermin.hpp"
#include "gapsched/restart/restart_greedy.hpp"
#include "gapsched/setcover/setcover.hpp"

namespace gapsched {
namespace {

// Four exact solvers and two approximations on the same one-interval
// single-processor instances: full consistency matrix.
class SolverMatrix : public ::testing::TestWithParam<int> {};

TEST_P(SolverMatrix, AllSolversConsistent) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 173 + 7);
  Instance inst = (GetParam() % 2 == 0)
                      ? gen_uniform_one_interval(rng, 8, 12, 4, 1)
                      : gen_feasible_one_interval(rng, 8, 16, 3, 1);

  const bool feasible = is_feasible(inst);
  const ExactGapResult bf = brute_force_min_transitions(inst);
  const GapDpResult dp = solve_gap_dp(inst);
  const BaptisteResult bp = solve_baptiste(inst);
  const SpanSearchResult ss = span_search_min_transitions(inst);
  const FhknResult greedy = fhkn_greedy(inst);
  const OnlineResult online = online_edf(inst);

  // Feasibility is unanimous.
  EXPECT_EQ(bf.feasible, feasible);
  EXPECT_EQ(dp.feasible, feasible);
  EXPECT_EQ(bp.feasible, feasible);
  EXPECT_EQ(ss.feasible, feasible);
  EXPECT_EQ(greedy.feasible, feasible);
  EXPECT_EQ(online.feasible, feasible);
  if (!feasible) return;

  // All exact solvers agree on the optimum.
  EXPECT_EQ(dp.transitions, bf.transitions);
  EXPECT_EQ(bp.spans, bf.transitions);
  EXPECT_EQ(ss.transitions, bf.transitions);

  // Approximations sandwiched between OPT and their guarantees.
  EXPECT_GE(greedy.transitions, bf.transitions);
  EXPECT_LE(greedy.transitions, 3 * bf.transitions);
  EXPECT_GE(online.transitions, bf.transitions);

  // At huge alpha the power optimum bridges every idle stretch (idle cost
  // is tiny next to a re-wake), so it pays for at most the gap optimum's
  // transitions and at least one wake-up.
  const double alpha = 1e6;
  const PowerDpResult pw = solve_power_dp(inst, alpha);
  ASSERT_TRUE(pw.feasible);
  const double implied = (pw.power - static_cast<double>(inst.n())) / alpha;
  EXPECT_LE(implied, static_cast<double>(bf.transitions) + 0.01);
  EXPECT_GE(implied, 1.0 - 0.01);
}

INSTANTIATE_TEST_SUITE_P(Random, SolverMatrix, ::testing::Range(0, 25));

// Serialization round trip preserves solver results bit for bit.
class SerializeSolve : public ::testing::TestWithParam<int> {};

TEST_P(SerializeSolve, SameOptimumAfterRoundTrip) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 179 + 11);
  Instance inst = gen_multi_interval(rng, 7, 18, 2, 2,
                                     1 + static_cast<int>(rng.index(2)));
  auto parsed = instance_from_string(instance_to_string(inst));
  ASSERT_TRUE(parsed.has_value());
  const ExactGapResult a = brute_force_min_transitions(inst);
  const ExactGapResult b = brute_force_min_transitions(*parsed);
  EXPECT_EQ(a.feasible, b.feasible);
  if (a.feasible) {
    EXPECT_EQ(a.transitions, b.transitions);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SerializeSolve, ::testing::Range(0, 15));

// Dead-time compression composes with the full solver stack.
TEST(Pipelines, CompressThenSolve) {
  Instance inst;
  inst.processors = 1;
  inst.jobs.push_back(Job{TimeSet::window(1000, 1002)});
  inst.jobs.push_back(Job{TimeSet::window(1000, 1002)});
  inst.jobs.push_back(Job{TimeSet::window(90000, 90001)});
  CompressedInstance c = compress_dead_time(inst);
  const GapDpResult orig = solve_gap_dp(inst);
  const GapDpResult comp = solve_gap_dp(c.instance);
  ASSERT_TRUE(orig.feasible);
  ASSERT_TRUE(comp.feasible);
  EXPECT_EQ(orig.transitions, comp.transitions);
  // Mapping compressed schedule times back gives original-legal times.
  for (std::size_t j = 0; j < inst.n(); ++j) {
    const Time t = c.to_original(comp.schedule.at(j)->time);
    EXPECT_TRUE(inst.jobs[j].allowed.contains(t)) << j;
  }
}

// End-to-end hardness pipeline: set cover -> scheduling instance -> greedy
// scheduling heuristic (Theorem 3 machinery) -> extracted cover is valid.
TEST(Pipelines, SetCoverThroughSchedulingHeuristic) {
  Prng rng(424242);
  SetCoverInstance sc = gen_random_set_cover(rng, 8, 6, 3);
  SetCoverReduction red = reduce_setcover_to_powermin(sc);
  // The Theorem 3 pipeline produces a feasible schedule...
  PowerMinApproxResult apx = powermin_approx(red.instance, red.alpha);
  ASSERT_TRUE(apx.feasible);
  ASSERT_EQ(apx.schedule.validate(red.instance), "");
  // ...whose extracted cover is valid (though not necessarily optimal).
  const auto cover = red.cover_from_schedule(apx.schedule);
  EXPECT_TRUE(is_valid_cover(sc, cover));
  const SetCoverResult exact = exact_set_cover(sc);
  EXPECT_GE(cover.size(), exact.chosen.size());
}

// Restart greedy with an unbounded budget schedules every job of a
// feasible instance.
TEST(Pipelines, RestartWithFullBudgetCompletes) {
  Prng rng(515151);
  Instance inst = gen_multi_interval(rng, 10, 24, 2, 2);
  ASSERT_TRUE(is_feasible(inst));
  RestartResult r = restart_greedy(inst, inst.n());
  EXPECT_EQ(r.scheduled, inst.n());
  EXPECT_EQ(r.schedule.validate(inst), "");
}

// The Theorem 3 approximation can never beat the exact Theorem 2 DP on
// one-interval instances (where both apply).
class ApproxVsExactPower : public ::testing::TestWithParam<int> {};

TEST_P(ApproxVsExactPower, ApproxAboveExact) {
  Prng rng(static_cast<std::uint64_t>(GetParam()) * 191 + 13);
  Instance inst = gen_feasible_one_interval(rng, 8, 16, 3, 1);
  const double alpha = 0.5 + static_cast<double>(rng.index(8));
  const PowerDpResult opt = solve_power_dp(inst, alpha);
  const PowerMinApproxResult apx = powermin_approx(inst, alpha);
  ASSERT_TRUE(opt.feasible);
  ASSERT_TRUE(apx.feasible);
  EXPECT_GE(apx.power + 1e-9, opt.power);
  EXPECT_LE(apx.power, (1.0 + alpha) * opt.power + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Random, ApproxVsExactPower, ::testing::Range(0, 20));

}  // namespace
}  // namespace gapsched

#include "gapsched/baptiste/baptiste.hpp"

#include <gtest/gtest.h>

#include "gapsched/exact/brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "../support/test_seed.hpp"

namespace gapsched {
namespace {

TEST(Baptiste, SingleSpanWhenPackable) {
  Instance inst = Instance::one_interval({{0, 5}, {0, 5}, {0, 5}});
  BaptisteResult r = solve_baptiste(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.spans, 1);
  EXPECT_EQ(r.gaps, 0);
}

TEST(Baptiste, ForcedGaps) {
  Instance inst = Instance::one_interval({{0, 0}, {10, 10}, {20, 20}});
  BaptisteResult r = solve_baptiste(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.spans, 3);
  EXPECT_EQ(r.gaps, 2);
}

TEST(Baptiste, IgnoresProcessorCount) {
  Instance inst = Instance::one_interval({{0, 1}, {0, 1}}, /*processors=*/4);
  BaptisteResult r = solve_baptiste(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.spans, 1);  // solved as p = 1: both jobs in one span
}

TEST(Baptiste, Infeasible) {
  Instance inst = Instance::one_interval({{0, 0}, {0, 0}});
  EXPECT_FALSE(solve_baptiste(inst).feasible);
}

// The classic tradeoff: wait for tight jobs and fill between them.
TEST(Baptiste, InterleavesLooseJobsBetweenTightOnes) {
  // Tight jobs at 10, 12, 14; loose jobs can fill 11 and 13: one span.
  Instance inst = Instance::one_interval(
      {{10, 10}, {12, 12}, {14, 14}, {0, 20}, {0, 20}});
  BaptisteResult r = solve_baptiste(inst);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.spans, 1);
}

class BaptisteVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(BaptisteVsBruteForce, Agrees) {
  const std::uint64_t prng_seed = testing::seed_for(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
  GAPSCHED_TRACE_SEED(prng_seed);
  Prng rng(prng_seed);
  Instance inst = gen_uniform_one_interval(rng, 6, 10, 4, 1);
  const ExactGapResult bf = brute_force_min_transitions(inst);
  const BaptisteResult bp = solve_baptiste(inst);
  ASSERT_EQ(bp.feasible, bf.feasible);
  if (bf.feasible) {
    EXPECT_EQ(bp.spans, bf.transitions);
    EXPECT_EQ(bp.schedule.validate(inst), "");
  }
}

INSTANTIATE_TEST_SUITE_P(Random, BaptisteVsBruteForce, ::testing::Range(0, 30));

}  // namespace
}  // namespace gapsched

// Sensor duty-cycling: the paper's motivating power-management scenario.
//
// A battery-powered sensor node must take n measurements; each measurement
// is only possible during certain windows (when its phenomenon is
// observable), i.e. a multi-interval job. Waking the radio/CPU from deep
// sleep costs alpha energy units; staying awake costs 1 per time unit.
// This is exactly multi-interval power minimization (Section 3).
//
// The example runs the Theorem 3 approximation pipeline, shows the packed
// measurement pairs, and compares against the exact optimum (the instance
// is small enough for the brute force).

#include <iostream>

#include "gapsched/exact/power_brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/io/render.hpp"
#include "gapsched/powermin/powermin_approx.hpp"

using namespace gapsched;

int main() {
  const double alpha = 5.0;  // wake-up cost dominates one time unit

  // Ten measurements over a 60-unit horizon; each observable in its anchor
  // window plus one alternative window.
  Prng rng(2007);
  Instance sensors = gen_multi_interval(rng, /*n=*/10, /*horizon=*/60,
                                        /*intervals=*/2, /*interval_len=*/3);

  std::cout << "Sensor node: 10 measurements, wake cost alpha=" << alpha
            << "\n\n";

  PowerMinApproxResult apx = powermin_approx(sensors, alpha);
  if (!apx.feasible) {
    std::cerr << "no feasible measurement plan\n";
    return 1;
  }
  std::cout << "Theorem 3 approximation:\n";
  std::cout << render_gantt(sensors, apx.schedule);
  std::cout << "  packed adjacent pairs: " << apx.pairs_packed
            << " (residue class " << apx.residue << ")\n";
  std::cout << "  energy with smart idling: " << apx.power << "\n";
  std::cout << "  energy if sleeping every gap: " << apx.power_no_bridge
            << "\n\n";

  ExactPowerResult opt = brute_force_min_power(sensors, alpha);
  std::cout << "Exact optimum (brute force): " << opt.power << "\n";
  std::cout << "  approximation ratio: " << apx.power / opt.power
            << "  (guarantee " << theorem3_bound(alpha) << ", trivial "
            << 1.0 + alpha << ")\n";
  return 0;
}

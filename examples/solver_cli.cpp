// Command-line front end of the solver engine: every algorithm family is
// reached through the SolverRegistry, never by hand-wired calls.
//
//   $ ./solver_cli --list                        # enumerate the registry
//   $ ./solver_cli gap_dp instance.txt           # Theorem 1 exact
//   $ ./solver_cli power_dp --alpha 2.5 instance.txt
//   $ ./solver_cli powermin_approx --alpha 2.5 instance.txt
//   $ ./solver_cli fhkn_greedy instance.txt
//   $ ./solver_cli restart_greedy --spans 3 instance.txt
//
// Legacy spellings (gaps / power / power-approx / greedy / throughput) are
// kept as aliases of the registry names.
//
// Prints the objective value, a Gantt chart, metrics, and the schedule in
// the io/serialize.hpp text format.

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "gapsched/engine/registry.hpp"
#include "gapsched/io/render.hpp"
#include "gapsched/io/serialize.hpp"
#include "gapsched/scenarios/scenarios.hpp"
#include "gapsched/util/table.hpp"

using namespace gapsched;

namespace {

int usage() {
  std::cerr << "usage: solver_cli --list | --scenarios\n"
            << "       solver_cli <solver> [options] <instance>\n"
            << "instance: a file in the io/serialize.hpp format, or\n"
            << "          scenario:<name>[:<seed>] from the scenario catalog\n"
            << "options:\n"
            << "  --alpha <a>      wake-up cost (power solvers; default 2)\n"
            << "  --spans <k>      span budget (throughput solvers)\n"
            << "  --threshold <t>  idle threshold (online_powerdown)\n"
            << "  --swap <s>       set-packing swap size (powermin_approx)\n"
            << "  --block <k>      Lemma 5 block size (powermin_approx)\n"
            << "  --validate       re-check the answer with the independent\n"
            << "                   schedule oracle (any solver; exit 3 on a\n"
            << "                   refuted answer)\n"
            << "  --no-decompose   skip the prep pipeline that splits far-\n"
            << "                   apart job clusters into independent\n"
            << "                   components (exact gap/power solvers;\n"
            << "                   decomposition is on by default)\n"
            << "run 'solver_cli --list' for the registered solvers and\n"
            << "'solver_cli --scenarios' for the named workload families\n";
  return 2;
}

int list_solvers() {
  Table table({"solver", "objective", "exact", "paper", "complexity",
               "summary"});
  for (const engine::Solver* solver : engine::SolverRegistry::instance().all()) {
    const engine::SolverInfo& info = solver->info();
    table.row()
        .add(info.name)
        .add(std::string(engine::to_string(info.objective)))
        .add(info.exact ? "yes" : "no")
        .add(info.paper_ref)
        .add(info.complexity)
        .add(info.summary);
  }
  table.print(std::cout);
  return 0;
}

int list_scenarios() {
  Table table({"scenario", "jobs", "p", "shape", "guarantee", "summary"});
  for (const scenarios::Scenario* s :
       scenarios::ScenarioCatalog::instance().all()) {
    table.row()
        .add(s->name)
        .add(s->jobs)
        .add(s->processors)
        .add(s->one_interval ? "one-interval" : "multi-interval")
        .add(s->always_feasible
                 ? "feasible"
                 : (s->always_infeasible ? "infeasible" : "either"))
        .add(s->summary);
  }
  table.print(std::cout);
  return 0;
}

/// Maps the pre-engine CLI verbs onto registry names.
std::string canonical_name(const std::string& mode) {
  if (mode == "gaps") return "gap_dp";
  if (mode == "power") return "power_dp";
  if (mode == "power-approx") return "powermin_approx";
  if (mode == "greedy") return "fhkn_greedy";
  if (mode == "throughput") return "restart_greedy";
  return mode;
}

std::optional<Instance> load(const std::string& path) {
  // scenario:<name>[:<seed>] draws from the catalog instead of a file.
  if (path.rfind("scenario:", 0) == 0) {
    std::string spec = path.substr(9);
    std::uint64_t seed = 1;
    if (const auto colon = spec.find(':'); colon != std::string::npos) {
      try {
        seed = std::stoull(spec.substr(colon + 1));
      } catch (const std::exception&) {
        std::cerr << "bad scenario seed in '" << path << "'\n";
        return std::nullopt;
      }
      spec.resize(colon);
    }
    auto inst = scenarios::make_scenario(spec, seed);
    if (!inst) {
      std::cerr << "unknown scenario '" << spec
                << "' (see solver_cli --scenarios)\n";
    }
    return inst;
  }
  std::ifstream is(path);
  if (!is) {
    std::cerr << "cannot open " << path << "\n";
    return std::nullopt;
  }
  std::string error;
  auto inst = read_instance(is, &error);
  if (!inst) std::cerr << "parse error: " << error << "\n";
  return inst;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  if (args[0] == "--list" || args[0] == "list") return list_solvers();
  if (args[0] == "--scenarios" || args[0] == "scenarios") {
    return list_scenarios();
  }
  if (args.size() < 2) return usage();

  const std::string name = canonical_name(args[0]);
  const engine::Solver* solver = engine::SolverRegistry::instance().find(name);
  if (solver == nullptr) {
    std::cerr << "unknown solver '" << args[0] << "' (see solver_cli --list)\n";
    return 2;
  }

  engine::SolveRequest request;
  request.objective = solver->info().objective;
  // Flags may appear anywhere; non-flag arguments are collected and
  // resolved afterwards so the legacy "power <alpha> <file>" and
  // "throughput <k> <file>" spellings still work.
  std::vector<std::string> positionals;
  std::vector<std::string> flags_seen;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!arg.empty() && arg[0] == '-') flags_seen.push_back(arg);
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    try {
      if (arg == "--alpha") {
        auto v = value();
        if (!v) return usage();
        request.params.alpha = std::stod(*v);
      } else if (arg == "--spans") {
        auto v = value();
        if (!v) return usage();
        request.params.max_spans = std::stoul(*v);
      } else if (arg == "--threshold") {
        auto v = value();
        if (!v) return usage();
        request.params.powerdown_threshold = std::stod(*v);
      } else if (arg == "--swap") {
        auto v = value();
        if (!v) return usage();
        request.params.swap_size = std::stoi(*v);
      } else if (arg == "--block") {
        auto v = value();
        if (!v) return usage();
        request.params.block_size = std::stoi(*v);
      } else if (arg == "--validate") {
        request.params.validate = true;
      } else if (arg == "--no-decompose") {
        request.params.decompose = false;
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "unknown option '" << arg << "'\n";
        return usage();
      } else {
        positionals.push_back(arg);
      }
    } catch (const std::exception&) {
      std::cerr << "bad numeric argument near '" << arg << "'\n";
      return 2;
    }
  }
  // A flag the selected solver does not consume (per its SolverInfo::params
  // declaration) is an error, not a silent no-op.
  const unsigned consumed = solver->info().params;
  for (const std::string& flag : flags_seen) {
    bool applies = false;
    if (flag == "--validate") {
      applies = true;  // the oracle audits every family
    } else if (flag == "--no-decompose") {
      // Only the exact gap/power families consume the flag, but clearing a
      // default-on optimization is never a surprising no-op — accept it
      // everywhere like --validate.
      applies = true;
    } else if (flag == "--alpha") {
      applies = (consumed & engine::kUsesAlpha) != 0;
    } else if (flag == "--spans") {
      applies = (consumed & engine::kUsesMaxSpans) != 0;
    } else if (flag == "--threshold") {
      applies = (consumed & engine::kUsesThreshold) != 0;
    } else if (flag == "--swap" || flag == "--block") {
      applies = (consumed & engine::kUsesPacking) != 0;
    }
    if (!applies) {
      std::cerr << "option '" << flag << "' does not apply to solver '"
                << name << "'\n";
      return usage();
    }
  }
  if (positionals.empty() || positionals.size() > 2) return usage();
  const std::string file = positionals.back();
  if (positionals.size() == 2) {
    // Legacy positional parameter before the file name; only the power and
    // throughput verbs ever had one, anything else is a stray argument and
    // an error (not silently ignored).
    const std::string& param = positionals.front();
    try {
      if (request.objective == engine::Objective::kPower) {
        request.params.alpha = std::stod(param);
      } else if (request.objective == engine::Objective::kThroughput) {
        request.params.max_spans = std::stoul(param);
      } else {
        std::cerr << "unexpected argument '" << param << "'\n";
        return usage();
      }
    } catch (const std::exception&) {
      std::cerr << "bad numeric argument near '" << param << "'\n";
      return 2;
    }
  }

  auto inst = load(file);
  if (!inst) return 1;
  request.instance = std::move(*inst);

  const engine::SolveResult result = solver->solve(request);
  if (!result.ok) {
    std::cerr << "rejected: " << result.error << "\n";
    return 2;
  }
  if (result.audited && !result.audit_error.empty()) {
    std::cerr << "oracle REFUTED the answer: " << result.audit_error << "\n";
    return 3;
  }
  if (!result.feasible) {
    std::cout << "infeasible\n";
    return 1;
  }

  const engine::SolverInfo& info = solver->info();
  std::cout << info.name << " (" << engine::to_string(info.objective)
            << (info.exact ? ", exact" : ", heuristic") << "): cost "
            << result.cost;
  if (request.objective == engine::Objective::kThroughput) {
    std::cout << " of " << request.instance.n() << " jobs in "
              << result.transitions << " span(s)";
  }
  std::cout << "  [" << result.stats.wall_ms << " ms]\n";
  if (result.stats.components > 1) {
    std::cout << "prep: solved as " << result.stats.components
              << " independent components\n";
  }
  std::cout << render_gantt(request.instance, result.schedule);
  // The metrics line reports power at the requested alpha for power solves
  // and at alpha = 1 otherwise, matching the pre-engine CLI's output.
  const double report_alpha = request.objective == engine::Objective::kPower
                                  ? request.params.alpha
                                  : 1.0;
  std::cout << describe_schedule(result.schedule, report_alpha) << "\n";
  if (result.audited) {
    std::cout << "oracle: schedule and cost independently verified\n";
  }
  std::cout << "\n";
  write_schedule(std::cout, result.schedule);
  return 0;
}

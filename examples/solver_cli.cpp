// Command-line front end of the solver engine: every algorithm family is
// reached through a persistent gapsched::engine::Engine (registry + solve
// cache + worker pool), never by hand-wired calls.
//
//   $ ./solver_cli --list                        # enumerate the registry
//   $ ./solver_cli gap_dp instance.txt           # Theorem 1 exact
//   $ ./solver_cli power_dp --alpha 2.5 instance.txt
//   $ ./solver_cli powermin_approx --alpha 2.5 instance.txt
//   $ ./solver_cli fhkn_greedy instance.txt
//   $ ./solver_cli restart_greedy --spans 3 instance.txt
//   $ ./solver_cli gap_dp --json scenario:sparse_spread:7   # io/json codec
//
// Legacy spellings (gaps / power / power-approx / greedy / throughput) are
// kept as aliases of the registry names.
//
// Default output: the objective value, a Gantt chart, metrics, and the
// schedule in the io/serialize.hpp text format. With --json, the result is
// emitted as the io/json.hpp response document instead (machine-readable;
// stdout carries only the JSON). --cache-stats prints the engine's solve-
// cache hit/miss tallies to stderr at exit.
//
// With --connect host:port the request is not solved in-process: it is
// framed through serve/protocol.hpp, sent to a running gapsched_serve, and
// the streamed result frame is rendered exactly like a local solve. In that
// mode --cache-stats prints the SERVER's stats frame (same codec).
//
// Exit codes: 0 solved; 1 infeasible; 2 bad usage / rejected request;
// 3 oracle refuted the answer (--validate); 4 the solve exceeded
// --time-limit (the answer is printed but must be treated as advisory);
// 5 client transport failure under --connect (connection refused, server
// closed early, or a malformed frame — the request's outcome is unknown).

#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "gapsched/engine/engine.hpp"
#include "gapsched/io/json.hpp"
#include "gapsched/io/render.hpp"
#include "gapsched/io/serialize.hpp"
#include "gapsched/scenarios/scenarios.hpp"
#include "gapsched/serve/protocol.hpp"
#include "gapsched/util/table.hpp"

using namespace gapsched;

namespace {

int usage() {
  std::cerr << "usage: solver_cli --list | --scenarios\n"
            << "       solver_cli <solver> [options] <instance>\n"
            << "instance: a file in the io/serialize.hpp format, or\n"
            << "          scenario:<name>[:<seed>] from the scenario catalog\n"
            << "options:\n"
            << "  --alpha <a>      wake-up cost (power solvers; default 2)\n"
            << "  --spans <k>      span budget (throughput solvers)\n"
            << "  --threshold <t>  idle threshold (online_powerdown)\n"
            << "  --swap <s>       set-packing swap size (powermin_approx)\n"
            << "  --block <k>      Lemma 5 block size (powermin_approx)\n"
            << "  --validate       re-check the answer with the independent\n"
            << "                   schedule oracle (any solver; exit 3 on a\n"
            << "                   refuted answer)\n"
            << "  --no-decompose   skip the prep pipeline that splits far-\n"
            << "                   apart job clusters into independent\n"
            << "                   components (exact gap/power solvers;\n"
            << "                   decomposition is on by default)\n"
            << "  --no-compress    keep interior dead runs at full length\n"
            << "                   instead of the pipeline's length-aware\n"
            << "                   compression (1 unit for gap solves,\n"
            << "                   ceil(alpha)+1 for power solves)\n"
            << "  --time-limit <s> advisory wall-clock budget in seconds;\n"
            << "                   exit 4 when the solve ran longer\n"
            << "  --json           emit the result as the io/json.hpp JSON\n"
            << "                   response document (machine-readable)\n"
            << "  --cache-stats    print the engine's solve-cache tallies\n"
            << "                   and the per-stage pipeline counters as\n"
            << "                   io/json.hpp stats documents on stderr\n"
            << "                   (the same codec as the server's stats\n"
            << "                   frame); under --connect, prints the\n"
            << "                   server's stats frame instead\n"
            << "  --store <path>   persistent on-disk solve store (created\n"
            << "                   if missing), shared with other CLI runs\n"
            << "                   and gapsched_serve --store; every loaded\n"
            << "                   entry is re-audited by the oracle before\n"
            << "                   it may serve\n"
            << "  --spill-min-ms <x> only persist solves that took >= x ms\n"
            << "                   (default 0.1)\n"
            << "  --store-max-bytes <n> store size budget; compaction keeps\n"
            << "                   the most expensive entries\n"
            << "  --warm <specs>   no single instance: pre-solve a comma-\n"
            << "                   separated list of instance specs (files\n"
            << "                   or scenario:<name>[:<seed>]; the word\n"
            << "                   'catalog' expands to every static\n"
            << "                   catalog scenario) into the --store,\n"
            << "                   validating each answer; exit 3 if any\n"
            << "                   is refuted\n"
            << "  --connect <h:p>  do not solve locally: send the request\n"
            << "                   to a running gapsched_serve at host:port\n"
            << "                   over the NDJSON frame protocol and\n"
            << "                   render its streamed result frame\n"
            << "exit codes:\n"
            << "  0  solved\n"
            << "  1  infeasible (or the instance could not be loaded)\n"
            << "  2  bad usage, unknown solver, or the engine rejected the\n"
            << "     request (outside the solver's envelope)\n"
            << "  3  the independent oracle REFUTED the answer under\n"
            << "     --validate (a solver bug, not a bad request)\n"
            << "  4  the solve exceeded --time-limit; the printed answer\n"
            << "     is advisory\n"
            << "  5  --connect transport failure: connection refused, the\n"
            << "     server closed before answering, or a malformed frame\n"
            << "     arrived (the request's outcome is unknown)\n"
            << "run 'solver_cli --list' for the registered solvers and\n"
            << "'solver_cli --scenarios' for the named workload families\n";
  return 2;
}

int list_solvers(const engine::Engine& eng) {
  Table table({"solver", "objective", "exact", "paper", "complexity",
               "summary"});
  for (const engine::Solver* solver : eng.registry().all()) {
    const engine::SolverInfo& info = solver->info();
    table.row()
        .add(info.name)
        .add(std::string(engine::to_string(info.objective)))
        .add(info.exact ? "yes" : "no")
        .add(info.paper_ref)
        .add(info.complexity)
        .add(info.summary);
  }
  table.print(std::cout);
  return 0;
}

int list_scenarios() {
  Table table({"scenario", "jobs", "p", "shape", "guarantee", "summary"});
  for (const scenarios::Scenario* s :
       scenarios::ScenarioCatalog::instance().all()) {
    table.row()
        .add(s->name)
        .add(s->jobs)
        .add(s->processors)
        .add(s->one_interval ? "one-interval" : "multi-interval")
        .add(s->always_feasible
                 ? "feasible"
                 : (s->always_infeasible ? "infeasible" : "either"))
        .add(s->summary);
  }
  table.print(std::cout);
  std::cout << "\nwrapper: scenario:stretched:<k>:<name>[:<seed>] dilates "
               "every interior dead run of length >= "
            << scenarios::kStretchMinRun << " by k\n";
  return 0;
}

/// Maps the pre-engine CLI verbs onto registry names.
std::string canonical_name(const std::string& mode) {
  if (mode == "gaps") return "gap_dp";
  if (mode == "power") return "power_dp";
  if (mode == "power-approx") return "powermin_approx";
  if (mode == "greedy") return "fhkn_greedy";
  if (mode == "throughput") return "restart_greedy";
  return mode;
}

std::optional<Instance> load(const std::string& path) {
  // scenario:<name>[:<seed>] draws from the catalog instead of a file.
  // Wrapper names contain colons of their own (stretched:<k>:<base>), so
  // the seed is the LAST segment, and only when it is all digits.
  if (path.rfind("scenario:", 0) == 0) {
    std::string spec = path.substr(9);
    std::uint64_t seed = 1;
    if (const auto colon = spec.rfind(':'); colon != std::string::npos) {
      const std::string tail = spec.substr(colon + 1);
      const bool numeric =
          !tail.empty() && tail.find_first_not_of("0123456789") ==
                               std::string::npos;
      if (numeric) {
        try {
          seed = std::stoull(tail);
        } catch (const std::exception&) {
          std::cerr << "bad scenario seed in '" << path << "'\n";
          return std::nullopt;
        }
        spec.resize(colon);
      }
    }
    auto inst = scenarios::make_scenario(spec, seed);
    if (!inst) {
      std::cerr << "unknown scenario '" << spec
                << "' (see solver_cli --scenarios)\n";
    }
    return inst;
  }
  std::ifstream is(path);
  if (!is) {
    std::cerr << "cannot open " << path << "\n";
    return std::nullopt;
  }
  std::string error;
  auto inst = read_instance(is, &error);
  if (!inst) std::cerr << "parse error: " << error << "\n";
  return inst;
}

void print_cache_stats(const engine::Engine& eng) {
  // The same stats codec the server's `stats` frame uses: a cache_stats
  // document and a pipeline_stats document (per-stage runs/skips/wall
  // time), both from io/json.hpp.
  std::cerr << io::cache_stats_to_json(eng.cache_stats()) << "\n"
            << io::pipeline_stats_to_json(eng.pipeline_stats()) << "\n";
}

/// Solves over the wire against a running gapsched_serve. Returns 0 with
/// *result filled from the server's result frame, 2 when the server
/// answered with an error frame (rejection), or 5 on transport failure —
/// connection refused, early close, or a malformed frame.
int remote_solve(const std::string& spec, const std::string& solver,
                 const engine::SolveRequest& request, bool want_stats,
                 engine::SolveResult* result) {
  std::string host;
  int port = 0;
  if (!serve::parse_host_port(spec, &host, &port)) {
    std::cerr << "--connect expects host:port, got '" << spec << "'\n";
    return 2;
  }
  std::string error;
  auto channel = serve::ClientChannel::dial(host, port, &error);
  if (!channel.has_value()) {
    std::cerr << "connect to " << spec << " failed: " << error
              << " (is gapsched_serve running there?)\n";
    return 5;
  }
  constexpr std::int64_t kId = 1;
  if (!channel->send(serve::request_frame(kId, solver, request), &error)) {
    std::cerr << "send to " << spec << " failed: " << error << "\n";
    return 5;
  }
  if (want_stats && !channel->send(serve::stats_request_frame(), &error)) {
    std::cerr << "send to " << spec << " failed: " << error << "\n";
    return 5;
  }
  bool have_result = false;
  bool have_stats = !want_stats;
  while (!have_result || !have_stats) {
    const auto line = channel->next_frame(&error);
    if (!line.has_value()) {
      std::cerr << (error.empty()
                        ? "server closed the connection before answering"
                        : "recv from " + spec + " failed: " + error)
                << "\n";
      return 5;
    }
    std::string parse_error;
    const auto head = io::frame_head_from_json(*line, &parse_error);
    if (!head.has_value()) {
      std::cerr << "malformed frame from server: " << parse_error << "\n";
      return 5;
    }
    if (head->frame == "hello") continue;
    if (head->frame == "error") {
      std::cerr << "server rejected the request: " << head->message << "\n";
      return 2;
    }
    if (head->frame == "result" && head->id == kId) {
      auto parsed = io::result_from_json(*line, &parse_error);
      if (!parsed.has_value()) {
        std::cerr << "malformed result frame: " << parse_error << "\n";
        return 5;
      }
      *result = std::move(*parsed);
      have_result = true;
      continue;
    }
    if (head->frame == "stats") {
      // Relay the server's stats frame body verbatim — one codec both ways.
      std::cerr << *line << "\n";
      have_stats = true;
      continue;
    }
    std::cerr << "unexpected frame '" << head->frame << "' from server\n";
    return 5;
  }
  return 0;
}

/// Cache-warming mode: pre-solves a comma-separated list of instance specs
/// into the engine's persistent store, oracle-validating every answer, and
/// blocks until the write-behind spills are durable. A later process (CLI
/// or server) opening the same store starts warm.
int warm_store(engine::Engine& eng, const engine::Solver& solver,
               const engine::SolveRequest& base, const std::string& spec_list) {
  std::vector<std::string> specs;
  std::size_t begin = 0;
  while (begin <= spec_list.size()) {
    const std::size_t comma = spec_list.find(',', begin);
    const std::string token = spec_list.substr(
        begin, comma == std::string::npos ? std::string::npos : comma - begin);
    begin = comma == std::string::npos ? spec_list.size() + 1 : comma + 1;
    if (token.empty()) continue;
    if (token == "catalog") {
      for (const scenarios::Scenario* s :
           scenarios::ScenarioCatalog::instance().all()) {
        specs.push_back("scenario:" + s->name);
      }
    } else {
      specs.push_back(token);
    }
  }
  if (specs.empty()) {
    std::cerr << "--warm needs at least one instance spec\n";
    return 2;
  }
  std::size_t feasible = 0;
  std::size_t infeasible = 0;
  std::size_t rejected = 0;
  for (const std::string& spec : specs) {
    auto inst = load(spec);
    if (!inst) return 2;
    engine::SolveRequest req = base;
    req.instance = std::move(*inst);
    req.params.validate = true;  // a warmed entry must enter oracle-clean
    const engine::SolveResult result = eng.solve(solver, req);
    if (result.audited && !result.audit_error.empty()) {
      std::cerr << "warm " << spec
                << ": oracle REFUTED the answer: " << result.audit_error
                << "\n";
      return 3;
    }
    if (!result.ok) {
      // Outside this solver's envelope: skipped, not fatal — a catalog
      // sweep legitimately crosses objectives and size limits.
      ++rejected;
      std::cout << "warm " << spec << ": rejected (" << result.error << ")\n";
      continue;
    }
    if (result.feasible) {
      ++feasible;
    } else {
      ++infeasible;
    }
    std::cout << "warm " << spec << ": "
              << (result.feasible ? "cost " + std::to_string(result.cost)
                                  : std::string("infeasible"))
              << "  [" << result.stats.wall_ms << " ms]\n";
  }
  eng.flush_store();
  const engine::CacheStats stats = eng.cache_stats();
  std::cout << "warmed " << specs.size() << " spec(s): " << feasible
            << " feasible, " << infeasible << " infeasible, " << rejected
            << " rejected; " << stats.spilled << " spilled, "
            << stats.disk_entries << " record(s) in the store\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  if (args[0] == "--list" || args[0] == "list") {
    return list_solvers(engine::Engine{});
  }
  if (args[0] == "--scenarios" || args[0] == "scenarios") {
    return list_scenarios();
  }
  if (args.size() < 2) return usage();

  engine::SolveRequest request;
  engine::EngineOptions eng_options;
  bool emit_json = false;
  bool cache_stats = false;
  std::string connect_spec;
  std::string warm_spec;
  // Flags may appear anywhere; non-flag arguments are collected and
  // resolved afterwards so the legacy "power <alpha> <file>" and
  // "throughput <k> <file>" spellings still work.
  std::vector<std::string> positionals;
  std::vector<std::string> flags_seen;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!arg.empty() && arg[0] == '-') flags_seen.push_back(arg);
    auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    try {
      if (arg == "--alpha") {
        auto v = value();
        if (!v) return usage();
        request.params.alpha = std::stod(*v);
      } else if (arg == "--spans") {
        auto v = value();
        if (!v) return usage();
        request.params.max_spans = std::stoul(*v);
      } else if (arg == "--threshold") {
        auto v = value();
        if (!v) return usage();
        request.params.powerdown_threshold = std::stod(*v);
      } else if (arg == "--swap") {
        auto v = value();
        if (!v) return usage();
        request.params.swap_size = std::stoi(*v);
      } else if (arg == "--block") {
        auto v = value();
        if (!v) return usage();
        request.params.block_size = std::stoi(*v);
      } else if (arg == "--time-limit") {
        auto v = value();
        if (!v) return usage();
        request.params.time_limit_s = std::stod(*v);
        if (request.params.time_limit_s < 0.0) {
          std::cerr << "--time-limit must be >= 0 (0 = unlimited)\n";
          return 2;
        }
      } else if (arg == "--validate") {
        request.params.validate = true;
      } else if (arg == "--no-decompose") {
        request.params.decompose = false;
      } else if (arg == "--no-compress") {
        request.params.compress = false;
      } else if (arg == "--json") {
        emit_json = true;
      } else if (arg == "--cache-stats") {
        cache_stats = true;
      } else if (arg == "--connect") {
        auto v = value();
        if (!v) return usage();
        connect_spec = *v;
      } else if (arg == "--store") {
        auto v = value();
        if (!v) return usage();
        eng_options.store_path = *v;
      } else if (arg == "--spill-min-ms") {
        auto v = value();
        if (!v) return usage();
        eng_options.store_spill_min_ms = std::stod(*v);
      } else if (arg == "--store-max-bytes") {
        auto v = value();
        if (!v) return usage();
        eng_options.store_max_bytes = std::stoul(*v);
      } else if (arg == "--warm") {
        auto v = value();
        if (!v) return usage();
        warm_spec = *v;
      } else if (!arg.empty() && arg[0] == '-') {
        std::cerr << "unknown option '" << arg << "'\n";
        return usage();
      } else {
        positionals.push_back(arg);
      }
    } catch (const std::exception&) {
      std::cerr << "bad numeric argument near '" << arg << "'\n";
      return 2;
    }
  }
  // The store and warming are local-engine concerns; combining them with a
  // remote solve would silently create and populate a file the remote
  // server never sees. Checked before the Engine exists (constructing it
  // would already create the store file).
  if (!connect_spec.empty() &&
      (!eng_options.store_path.empty() || !warm_spec.empty())) {
    std::cerr << "--store/--warm are local; with --connect, start the server "
                 "with gapsched_serve --store instead\n";
    return 2;
  }
  if (!warm_spec.empty() && eng_options.store_path.empty()) {
    std::cerr << "--warm populates a persistent store; add --store <path>\n";
    return 2;
  }

  // One persistent engine for the whole invocation: registry, solve cache,
  // worker pool, and (with --store) the persistent disk tier.
  engine::Engine eng(eng_options);
  if (!eng_options.store_path.empty() && eng.store() == nullptr) {
    // A corrupt or foreign store file costs persistence, never the solve.
    std::cerr << "warning: running without the store: " << eng.store_error()
              << "\n";
  }
  const std::string name = canonical_name(args[0]);
  const engine::Solver* solver = eng.registry().find(name);
  if (solver == nullptr) {
    std::cerr << "unknown solver '" << args[0] << "' (see solver_cli --list)\n";
    return 2;
  }
  request.objective = solver->info().objective;

  // A flag the selected solver does not consume (per its SolverInfo::params
  // declaration) is an error, not a silent no-op.
  const unsigned consumed = solver->info().params;
  for (const std::string& flag : flags_seen) {
    bool applies = false;
    if (flag == "--validate" || flag == "--json" || flag == "--cache-stats" ||
        flag == "--time-limit" || flag == "--connect" || flag == "--store" ||
        flag == "--spill-min-ms" || flag == "--store-max-bytes" ||
        flag == "--warm") {
      applies = true;  // engine-level concerns, meaningful for every family
    } else if (flag == "--no-decompose" || flag == "--no-compress") {
      // Only the exact gap/power families consume these flags, but clearing
      // a default-on optimization is never a surprising no-op — accept them
      // everywhere like --validate.
      applies = true;
    } else if (flag == "--alpha") {
      applies = (consumed & engine::kUsesAlpha) != 0;
    } else if (flag == "--spans") {
      applies = (consumed & engine::kUsesMaxSpans) != 0;
    } else if (flag == "--threshold") {
      applies = (consumed & engine::kUsesThreshold) != 0;
    } else if (flag == "--swap" || flag == "--block") {
      applies = (consumed & engine::kUsesPacking) != 0;
    }
    if (!applies) {
      std::cerr << "option '" << flag << "' does not apply to solver '"
                << name << "'\n";
      return usage();
    }
  }
  if (!warm_spec.empty()) {
    if (!positionals.empty()) {
      std::cerr << "--warm takes its instances from its own spec list; "
                   "unexpected argument '"
                << positionals.front() << "'\n";
      return 2;
    }
    const int rc = warm_store(eng, *solver, request, warm_spec);
    if (cache_stats) print_cache_stats(eng);
    return rc;
  }
  if (positionals.empty() || positionals.size() > 2) return usage();
  const std::string file = positionals.back();
  if (positionals.size() == 2) {
    // Legacy positional parameter before the file name; only the power and
    // throughput verbs ever had one, anything else is a stray argument and
    // an error (not silently ignored).
    const std::string& param = positionals.front();
    try {
      if (request.objective == engine::Objective::kPower) {
        request.params.alpha = std::stod(param);
      } else if (request.objective == engine::Objective::kThroughput) {
        request.params.max_spans = std::stoul(param);
      } else {
        std::cerr << "unexpected argument '" << param << "'\n";
        return usage();
      }
    } catch (const std::exception&) {
      std::cerr << "bad numeric argument near '" << param << "'\n";
      return 2;
    }
  }

  auto inst = load(file);
  if (!inst) return 1;
  request.instance = std::move(*inst);

  engine::SolveResult result;
  if (connect_spec.empty()) {
    result = eng.solve(*solver, request);
    // Make the write-behind spill durable before reporting stats (and
    // before exit hands the store file to the next process).
    eng.flush_store();
    if (cache_stats) print_cache_stats(eng);
  } else {
    const int rc = remote_solve(connect_spec, name, request, cache_stats,
                                &result);
    if (rc != 0) return rc;
  }

  // Machine-readable mode: the response document is the whole stdout.
  if (emit_json) std::cout << io::result_to_json(result) << "\n";

  if (!result.ok) {
    std::cerr << "rejected: " << result.error << "\n";
    return 2;
  }
  if (result.audited && !result.audit_error.empty()) {
    std::cerr << "oracle REFUTED the answer: " << result.audit_error << "\n";
    return 3;
  }
  if (result.timed_out) {
    std::cerr << "time limit exceeded (" << result.stats.wall_ms << " ms > "
              << request.params.time_limit_s * 1e3
              << " ms); treat the answer as advisory\n";
  }
  if (!result.feasible) {
    if (!emit_json) std::cout << "infeasible\n";
    return result.timed_out ? 4 : 1;
  }
  if (emit_json) return result.timed_out ? 4 : 0;

  const engine::SolverInfo& info = solver->info();
  std::cout << info.name << " (" << engine::to_string(info.objective)
            << (info.exact ? ", exact" : ", heuristic") << "): cost "
            << result.cost;
  if (request.objective == engine::Objective::kThroughput) {
    std::cout << " of " << request.instance.n() << " jobs in "
              << result.transitions << " span(s)";
  }
  std::cout << "  [" << result.stats.wall_ms << " ms]\n";
  if (result.stats.components > 1 || result.stats.dead_time_removed > 0) {
    std::cout << "prep: solved as " << result.stats.components
              << " independent component(s)";
    if (result.stats.components_deduped > 0) {
      std::cout << " (" << result.stats.components_deduped
                << " deduplicated as identical)";
    }
    if (result.stats.dead_time_removed > 0) {
      std::cout << ", " << result.stats.dead_time_removed
                << " dead time unit(s) compressed away";
    }
    std::cout << "\n";
  }
  std::cout << render_gantt(request.instance, result.schedule);
  // The metrics line reports power at the requested alpha for power solves
  // and at alpha = 1 otherwise, matching the pre-engine CLI's output.
  const double report_alpha = request.objective == engine::Objective::kPower
                                  ? request.params.alpha
                                  : 1.0;
  std::cout << describe_schedule(result.schedule, report_alpha) << "\n";
  if (result.audited) {
    std::cout << "oracle: schedule and cost independently verified\n";
  }
  std::cout << "\n";
  write_schedule(std::cout, result.schedule);
  return result.timed_out ? 4 : 0;
}

// Command-line solver: reads an instance file (io/serialize.hpp format) and
// solves the requested objective.
//
//   $ ./solver_cli gaps instance.txt            # Theorem 1 exact
//   $ ./solver_cli power 2.5 instance.txt       # Theorem 2 exact, alpha=2.5
//   $ ./solver_cli power-approx 2.5 instance.txt# Theorem 3 approximation
//   $ ./solver_cli greedy instance.txt          # FHKN 3-approximation
//   $ ./solver_cli throughput 3 instance.txt    # Theorem 11, k=3 spans
//
// Prints the schedule in the text format plus a Gantt chart and metrics.

#include <fstream>
#include <iostream>
#include <string>

#include "gapsched/baptiste/baptiste.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/greedy/fhkn_greedy.hpp"
#include "gapsched/io/render.hpp"
#include "gapsched/io/serialize.hpp"
#include "gapsched/powermin/powermin_approx.hpp"
#include "gapsched/restart/restart_greedy.hpp"

using namespace gapsched;

namespace {

int usage() {
  std::cerr
      << "usage: solver_cli gaps <file>\n"
      << "       solver_cli power <alpha> <file>\n"
      << "       solver_cli power-approx <alpha> <file>\n"
      << "       solver_cli greedy <file>\n"
      << "       solver_cli throughput <k> <file>\n";
  return 2;
}

std::optional<Instance> load(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "cannot open " << path << "\n";
    return std::nullopt;
  }
  std::string error;
  auto inst = read_instance(is, &error);
  if (!inst) std::cerr << "parse error: " << error << "\n";
  return inst;
}

void report(const Instance& inst, const Schedule& s, double alpha) {
  std::cout << render_gantt(inst, s);
  std::cout << describe_schedule(s, alpha) << "\n\n";
  write_schedule(std::cout, s);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string mode = argv[1];

  if (mode == "gaps" && argc == 3) {
    auto inst = load(argv[2]);
    if (!inst) return 1;
    GapDpResult r = solve_gap_dp(*inst);
    if (!r.feasible) {
      std::cout << "infeasible\n";
      return 1;
    }
    std::cout << "optimal transitions: " << r.transitions << "\n";
    report(*inst, r.schedule, 1.0);
    return 0;
  }
  if (mode == "power" && argc == 4) {
    const double alpha = std::stod(argv[2]);
    auto inst = load(argv[3]);
    if (!inst) return 1;
    PowerDpResult r = solve_power_dp(*inst, alpha);
    if (!r.feasible) {
      std::cout << "infeasible\n";
      return 1;
    }
    std::cout << "optimal power: " << r.power << "\n";
    report(*inst, r.schedule, alpha);
    return 0;
  }
  if (mode == "power-approx" && argc == 4) {
    const double alpha = std::stod(argv[2]);
    auto inst = load(argv[3]);
    if (!inst) return 1;
    PowerMinApproxResult r = powermin_approx(*inst, alpha);
    if (!r.feasible) {
      std::cout << "infeasible\n";
      return 1;
    }
    std::cout << "approximate power: " << r.power << " (guarantee factor "
              << theorem3_bound(alpha) << ")\n";
    report(*inst, r.schedule, alpha);
    return 0;
  }
  if (mode == "greedy" && argc == 3) {
    auto inst = load(argv[2]);
    if (!inst) return 1;
    FhknResult r = fhkn_greedy(*inst);
    if (!r.feasible) {
      std::cout << "infeasible\n";
      return 1;
    }
    std::cout << "greedy transitions: " << r.transitions
              << " (3-approximation)\n";
    report(*inst, r.schedule, 1.0);
    return 0;
  }
  if (mode == "throughput" && argc == 4) {
    const std::size_t k = std::stoul(argv[2]);
    auto inst = load(argv[3]);
    if (!inst) return 1;
    RestartResult r = restart_greedy(*inst, k);
    std::cout << "scheduled " << r.scheduled << "/" << inst->n()
              << " jobs in " << r.working_intervals.size() << " spans\n";
    report(*inst, r.schedule, 1.0);
    return 0;
  }
  return usage();
}

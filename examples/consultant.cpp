// The paper's own Theorem 11 story (Section 6): a consultant bills by the
// day. Each task can be done at specified hours on specified days; the
// consultant goes home when idle, and calling them back costs a fresh
// billable day. With a budget of k days, how much work can you get done?
//
// This is the minimum-restart problem: maximize scheduled jobs subject to
// at most k gaps. The example runs the O(sqrt(n)) greedy for increasing
// budgets and compares against the exhaustive optimum.

#include <iostream>

#include "gapsched/io/render.hpp"
#include "gapsched/restart/restart_greedy.hpp"

using namespace gapsched;

int main() {
  // Twelve tasks; times are "hour slots" (day d, hour h) = 24 d + h.
  auto at = [](Time day, Time hour) { return 24 * day + hour; };
  Instance tasks;
  tasks.processors = 1;
  // A morning block of joint work on day 0...
  for (Time h = 9; h <= 12; ++h) {
    tasks.jobs.push_back(Job{TimeSet::window(at(0, 9), at(0, 12))});
  }
  // ...two meetings pinned on day 1...
  tasks.jobs.push_back(Job{TimeSet::window(at(1, 10), at(1, 11))});
  tasks.jobs.push_back(Job{TimeSet::window(at(1, 10), at(1, 11))});
  // ...and flexible tasks doable on day 1 afternoon or day 2.
  for (int i = 0; i < 6; ++i) {
    tasks.jobs.push_back(
        Job{TimeSet({{at(1, 14), at(1, 16)}, {at(2, 9), at(2, 11)}})});
  }

  std::cout << "tasks: " << tasks.n() << "\n\n";
  for (std::size_t budget = 1; budget <= 4; ++budget) {
    RestartResult plan = restart_greedy(tasks, budget);
    const std::size_t opt = restart_exact_max_jobs(tasks, budget);
    std::cout << "budget " << budget << " visit(s): greedy schedules "
              << plan.scheduled << " tasks (optimal " << opt << ")\n";
    for (const Interval& w : plan.working_intervals) {
      std::cout << "  visit: day " << w.lo / 24 << " hours " << w.lo % 24
                << ".." << w.hi % 24 << " (" << w.length() << " tasks)\n";
    }
    std::cout << "\n";
  }
  return 0;
}

// Power/gap tradeoff explorer: for one workload, how do the gap-optimal
// and power-optimal schedules differ as the wake-up cost alpha varies?
//
// Reproduces the Theorem 2 "subtle difference" interactively: a
// power-minimizing processor may stay active through a short gap, so for
// mid-range alpha the power optimum accepts extra wake-ups in exchange for
// tighter bridges, while for tiny and huge alpha the two objectives
// coincide. Also demonstrates instance statistics and the Hall certificate
// on an infeasible variant.

#include <iostream>
#include <vector>

#include "gapsched/core/stats.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/io/render.hpp"
#include "gapsched/matching/hall.hpp"

using namespace gapsched;

int main() {
  // A workload on which the two objectives genuinely diverge for mid-range
  // alpha (found by sweeping the T6 experiment family).
  Instance inst = Instance::one_interval({
      {1, 1},
      {10, 13},
      {0, 1},
      {14, 15},
      {5, 5},
      {8, 9},
      {15, 17},
      {1, 4},
      {7, 9},
  });

  const InstanceStats stats = compute_stats(inst);
  std::cout << "workload: " << stats.jobs << " jobs, horizon "
            << stats.horizon << ", mean slack " << stats.mean_slack
            << ", contention " << stats.contention << "\n\n";

  const GapDpResult gap = solve_gap_dp(inst);
  std::cout << "gap-optimal schedule (" << gap.transitions
            << " wake-ups):\n"
            << render_gantt(inst, gap.schedule) << "\n";

  // The alpha sweep is a batch of independent power solves: fan it out
  // through the engine's batch driver (results stay sweep-ordered; each
  // alpha keys its own cache entry, so re-running the sweep would be free).
  const std::vector<double> alphas = {0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 50.0};
  std::vector<engine::BatchJob> sweep;
  for (double alpha : alphas) {
    engine::BatchJob job{"power_dp", {inst, engine::Objective::kPower, {}}};
    job.request.params.alpha = alpha;
    sweep.push_back(std::move(job));
  }
  engine::Engine eng;
  const std::vector<engine::SolveResult> optima = eng.solve_batch(sweep);

  std::cout << "alpha   power_opt   power_of_gap_opt   same_schedule?\n";
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    const double alpha = alphas[i];
    const double gap_power = gap.schedule.profile().optimal_power(alpha);
    std::cout << alpha << "\t" << optima[i].cost << "\t\t" << gap_power
              << "\t\t"
              << (gap_power - optima[i].cost < 1e-9 ? "yes" : "NO") << "\n";
  }

  // An overloaded variant: the Hall certificate explains why.
  std::cout << "\noverloaded variant:\n";
  Instance bad = inst;
  bad.jobs.push_back(Job{TimeSet::window(0, 1)});  // third job in [0,1]
  if (auto v = hall_certificate(bad)) {
    std::cout << "infeasible: " << v->jobs.size()
              << " jobs compete for times {";
    for (Time t : v->times) std::cout << " " << t;
    std::cout << " } (" << v->times.size() << " slots)\n";
  }
  return 0;
}

// Rack-level batch scheduling: the Section 2 multiprocessor problem.
//
// A rack of p identical servers receives unit-length batch jobs, each with
// an arrival time and a deadline. Every server that wakes from its low-power
// state pays a fixed energy cost, so the operator wants a deadline-feasible
// assignment minimizing total wake-ups across the rack (multiprocessor gap
// scheduling, solved exactly by the Theorem 1 DP — polynomial in both n and
// p). The example also shows the Lemma 1 staircase structure and the effect
// of rack size on feasibility.

#include <iostream>

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/io/render.hpp"

using namespace gapsched;

int main() {
  // Morning and afternoon bursts of 6 jobs each, windows of 3 slots: one
  // server cannot absorb a burst, three can.
  Prng rng(42);
  Instance workload = gen_bursty(rng, /*bursts=*/2, /*per_burst=*/6,
                                 /*spacing=*/12, /*window_len=*/3,
                                 /*processors=*/1);

  for (int servers : {1, 2, 3, 4}) {
    Instance rack = workload;
    rack.processors = servers;
    GapDpResult r = solve_gap_dp(rack);
    std::cout << "rack with " << servers << " server(s): ";
    if (!r.feasible) {
      std::cout << "INFEASIBLE (burst exceeds capacity)\n\n";
      continue;
    }
    std::cout << r.transitions << " wake-ups\n";
    std::cout << render_gantt(rack, r.schedule);
    // Lemma 1: at every time the busy servers are a prefix P0..Pk.
    std::cout << "  (staircase form: lower-numbered servers are always the "
                 "busy ones)\n\n";
  }
  return 0;
}

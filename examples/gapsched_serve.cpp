// gapsched_serve — the long-lived solve server over the engine::Session
// seam (serve/server.hpp): NDJSON frames over TCP, canonical-key-sharded
// workers, one shared SolverRegistry + SolveCache, one Session per
// connection.
//
//   $ ./gapsched_serve --port 7421 --shards 4
//   gapsched_serve listening on 127.0.0.1:7421 (4 shards, 16 solvers)
//
// Shutdown is always graceful: SIGTERM, SIGINT, or a client "drain" frame
// stops the acceptor, completes every request already accepted onto a
// shard, flushes every connection, and exits 0. An exit code of 0 is the
// contract that no accepted request was dropped.

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "gapsched/serve/server.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int) { g_signal = 1; }

int usage() {
  std::cerr
      << "usage: gapsched_serve [options]\n"
      << "  --host <addr>        bind address (default 127.0.0.1)\n"
      << "  --port <p>           TCP port; 0 picks an ephemeral port and\n"
      << "                       prints it (default 0)\n"
      << "  --shards <n>         worker shards; 0 = min(4, cores)\n"
      << "  --shard-queue <n>    per-shard task queue depth (default 128)\n"
      << "  --outbound-queue <n> per-connection outbound frame queue depth\n"
      << "                       (default 256)\n"
      << "  --cache-capacity <n> shared solve-cache entry cap\n"
      << "                       (default 65536)\n"
      << "  --store <path>       persistent on-disk solve store shared by\n"
      << "                       all shards, CLI sessions, and restarts\n"
      << "                       (created if missing; loads oracle-gated)\n"
      << "  --spill-min-ms <x>   only persist solves that took >= x ms\n"
      << "                       (default 0.1)\n"
      << "  --store-max-bytes <n> store size budget; compaction keeps the\n"
      << "                       most expensive entries (default unbounded)\n"
      << "protocol: newline-delimited JSON frames (request/result/stats/\n"
      << "drain/error); results stream in completion order, clients\n"
      << "reorder by id. SIGTERM or a drain frame triggers a graceful\n"
      << "drain; exit 0 means no accepted request was dropped.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  gapsched::serve::ServerOptions options;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    try {
      if (arg == "--host") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        options.host = *v;
      } else if (arg == "--port") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        options.port = std::stoi(*v);
      } else if (arg == "--shards") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        options.shards = std::stoul(*v);
      } else if (arg == "--shard-queue") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        options.shard_queue = std::stoul(*v);
      } else if (arg == "--outbound-queue") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        options.outbound_queue = std::stoul(*v);
      } else if (arg == "--cache-capacity") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        options.cache_capacity = std::stoul(*v);
      } else if (arg == "--store") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        options.store_path = *v;
      } else if (arg == "--spill-min-ms") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        options.store_spill_min_ms = std::stod(*v);
      } else if (arg == "--store-max-bytes") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        options.store_max_bytes = std::stoul(*v);
      } else {
        std::cerr << "unknown option '" << arg << "'\n";
        return usage();
      }
    } catch (const std::exception&) {
      std::cerr << "bad numeric argument near '" << arg << "'\n";
      return 2;
    }
  }

  gapsched::serve::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "cannot start server on " << options.host << ":"
              << options.port << ": " << error << "\n";
    return 1;
  }
  // The READY line is the startup contract scripts wait on (the ephemeral
  // port is only known here).
  std::cout << "gapsched_serve listening on " << options.host << ":"
            << server.port() << " (" << server.shards() << " shards, "
            << server.registry().size() << " solvers"
            << (options.store_path.empty() ? std::string()
                                           : ", store " + options.store_path)
            << ")" << std::endl;

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  // Park until SIGTERM/SIGINT or a client drain frame. The wait wakes
  // every 200 ms to poll the signal flag (signal handlers cannot notify a
  // condition variable safely).
  while (g_signal == 0) {
    if (server.wait_drain_requested(0.2)) break;
  }

  std::cout << "gapsched_serve draining ("
            << (g_signal != 0 ? "signal" : "drain frame") << ")"
            << std::endl;
  server.drain();

  const gapsched::io::ServerStatsWire stats = server.stats();
  std::uint64_t requests = 0;
  std::uint64_t refuted = 0;
  for (const auto& shard : stats.shards) {
    requests += shard.requests;
    refuted += shard.refuted;
  }
  std::cout << "gapsched_serve drained: " << requests << " request(s), "
            << stats.cache.hits << " cache hit(s), " << refuted
            << " refutation(s)";
  if (!options.store_path.empty()) {
    std::cout << ", " << stats.cache.spilled << " spilled, "
              << stats.cache.disk_hits << " disk hit(s)";
  }
  std::cout << std::endl;
  return 0;
}

// gapsched_loadgen — client-side load generator for gapsched_serve
// (serve/loadgen.hpp): opens N connections, drives a mixed scenario burst
// with a sliding window per connection, verifies the reorder contract
// (results stream in completion order; the client restores request order
// by id), and fails loudly.
//
//   $ ./gapsched_loadgen --connect 127.0.0.1:7421 --requests 600 --seed 7
//
// Exit codes: 0 every request got exactly one response and nothing was
// refuted; 1 dropped/refuted/duplicated responses or a server error frame;
// 5 transport failure (connection refused, early close, malformed frame).
//
// The default mix exercises all three serving axes: mega_mixed
// (decomposition + component dedup), poly_scale (the polynomial bcd
// family at size), and stretched power_longhaul (compression-normalized
// cache keys). Every request carries params.validate, so each response
// was independently re-derived by the server-side oracle before it
// counted as ok.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "gapsched/serve/loadgen.hpp"
#include "gapsched/serve/protocol.hpp"
#include "gapsched/util/table.hpp"

using namespace gapsched;

namespace {

int usage() {
  std::cerr
      << "usage: gapsched_loadgen --connect <host:port> [options]\n"
      << "  --requests <n>     total burst size, dealt across the mix\n"
      << "                     (default 600)\n"
      << "  --connections <n>  concurrent client connections (default 4)\n"
      << "  --window <n>       in-flight requests per connection\n"
      << "                     (default 16)\n"
      << "  --seed <s>         base seed of every family (default 1)\n"
      << "  --no-validate      skip the server-side oracle audit\n"
      << "exit codes: 0 clean; 1 dropped/refuted/error responses;\n"
      << "5 transport failure\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::LoadOptions options;
  std::string connect_spec;
  std::size_t total_requests = 600;
  std::uint64_t seed = 1;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    try {
      if (arg == "--connect") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        connect_spec = *v;
      } else if (arg == "--requests") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        total_requests = std::stoul(*v);
      } else if (arg == "--connections") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        options.connections = std::stoul(*v);
      } else if (arg == "--window") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        options.window = std::stoul(*v);
      } else if (arg == "--seed") {
        const std::string* v = value();
        if (v == nullptr) return usage();
        seed = std::stoull(*v);
      } else if (arg == "--no-validate") {
        options.validate = false;
      } else {
        std::cerr << "unknown option '" << arg << "'\n";
        return usage();
      }
    } catch (const std::exception&) {
      std::cerr << "bad numeric argument near '" << arg << "'\n";
      return 2;
    }
  }
  if (connect_spec.empty() ||
      !serve::parse_host_port(connect_spec, &options.host, &options.port)) {
    std::cerr << "--connect <host:port> is required\n";
    return usage();
  }
  if (total_requests == 0) {
    std::cerr << "--requests must be >= 1\n";
    return 2;
  }

  // The canonical mix: 50% mega_mixed/gap_dp with every 4th request a
  // canonical duplicate (shard+cache dedup), 25% poly_scale/bcd_poly_gap,
  // 25% stretched power_longhaul/power_dp.
  std::vector<serve::LoadSpec> specs(3);
  specs[0].scenario = "mega_mixed";
  specs[0].solver = "gap_dp";
  specs[0].objective = engine::Objective::kGaps;
  specs[0].requests = total_requests / 2;
  specs[0].seed_base = seed;
  specs[0].duplicate_every = 4;
  specs[1].scenario = "poly_scale:300";
  specs[1].solver = "bcd_poly_gap";
  specs[1].objective = engine::Objective::kGaps;
  specs[1].requests = total_requests / 4;
  specs[1].seed_base = seed + 1000;
  specs[1].duplicate_every = 5;
  specs[2].scenario = "stretched:16:power_longhaul";
  specs[2].solver = "power_dp";
  specs[2].objective = engine::Objective::kPower;
  specs[2].params.alpha = 2.5;
  specs[2].requests =
      total_requests - specs[0].requests - specs[1].requests;
  specs[2].seed_base = seed + 2000;
  specs[2].duplicate_every = 4;

  const serve::LoadReport report = serve::run_load(options, specs);

  Table table({"family", "sent", "recv", "ok", "hit-p50ms", "p95ms", "p99ms",
               "timeout", "refuted", "errors"});
  for (const serve::FamilyReport& fam : report.families) {
    table.row()
        .add(fam.label)
        .add(fam.sent)
        .add(fam.received)
        .add(fam.ok)
        .add(fam.latency.p50_ms)
        .add(fam.latency.p95_ms)
        .add(fam.latency.p99_ms)
        .add(fam.timed_out)
        .add(fam.refuted)
        .add(fam.error_frames);
  }
  table.print(std::cout);
  std::cout << "\nburst: " << report.sent << " sent, " << report.received
            << " received, " << report.dropped << " dropped, "
            << report.refuted << " refuted, " << report.out_of_order
            << " out-of-order arrival(s) reordered by id\n"
            << "throughput: " << report.throughput_rps << " req/s over "
            << report.wall_s << " s\n";
  if (report.server_stats_ok) {
    std::uint64_t shard_requests = 0;
    for (const auto& shard : report.server_stats.shards) {
      shard_requests += shard.requests;
    }
    std::cout << "server: " << shard_requests << " request(s) across "
              << report.server_stats.shards.size() << " shard(s), "
              << report.server_stats.cache.hits << " cache hit(s) / "
              << report.server_stats.cache.misses << " miss(es)\n";
  }

  if (!report.error.empty()) {
    std::cerr << "loadgen error: " << report.error << "\n";
    const bool transport = report.error.rfind("connect:", 0) == 0 ||
                           report.error.rfind("send:", 0) == 0 ||
                           report.error.rfind("recv:", 0) == 0 ||
                           report.error.rfind("stats fetch:", 0) == 0 ||
                           report.error == "connection closed early";
    return transport ? 5 : 1;
  }
  return report.ok ? 0 : 1;
}

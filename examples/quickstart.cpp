// Quickstart: build an instance, solve it exactly for both objectives, and
// inspect the schedules.
//
//   $ ./quickstart
//
// Walks through the core API: Instance construction, the Theorem 1 gap DP,
// the Theorem 2 power DP, schedule validation and metrics — then the same
// solves again through a persistent engine::Engine, the uniform stateful
// entry point the CLI and benches use (registry + solve cache + pool).

#include <iostream>

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/io/render.hpp"

using namespace gapsched;

int main() {
  // Five unit jobs on one processor. Job windows are inclusive [release,
  // deadline] intervals; three tight jobs form a comb and two loose jobs
  // can hide inside it (the classic gap-scheduling tradeoff).
  Instance inst = Instance::one_interval({
      {10, 10},  // tight
      {12, 12},  // tight
      {14, 14},  // tight
      {0, 20},   // loose
      {0, 20},   // loose
  });

  std::cout << "Gap scheduling (minimize sleep->active transitions)\n";
  GapDpResult gap = solve_gap_dp(inst);
  if (!gap.feasible) {
    std::cerr << "instance infeasible\n";
    return 1;
  }
  std::cout << render_gantt(inst, gap.schedule);
  std::cout << describe_schedule(gap.schedule, /*alpha=*/2.0) << "\n\n";
  // The optimal schedule packs everything into one span: the loose jobs
  // run at times 11 and 13, between the tight jobs.

  std::cout << "Power minimization (alpha = 2 transition cost)\n";
  PowerDpResult power = solve_power_dp(inst, 2.0);
  std::cout << render_gantt(inst, power.schedule);
  std::cout << "optimal power = " << power.power << "\n\n";

  // Schedules are plain data: validate and query them.
  std::cout << "validation: '" << gap.schedule.validate(inst) << "' (empty = OK)\n";
  for (std::size_t j = 0; j < inst.n(); ++j) {
    std::cout << "job " << j << " runs at t=" << gap.schedule.at(j)->time
              << "\n";
  }

  // The engine view of the same solves: construct one Engine (it owns the
  // solver registry, a content-addressed solve cache, and the batch worker
  // pool), hand it a SolveRequest, get a uniform SolveResult back. This is
  // how the CLI dispatches and how Engine::solve_batch fans out.
  std::cout << "\nvia the engine:\n";
  engine::Engine eng;
  for (const char* name : {"gap_dp", "power_dp"}) {
    engine::SolveRequest request;
    request.instance = inst;
    request.objective = eng.registry().find(name)->info().objective;
    request.params.alpha = 2.0;
    const engine::SolveResult r = eng.solve(name, request);
    std::cout << "  " << name << ": cost " << r.cost << " ("
              << r.stats.wall_ms << " ms)\n";
    // A repeated solve is served from the cache: same canonical instance,
    // same consumed parameters, so the content-addressed key matches.
    const engine::SolveResult again = eng.solve(name, request);
    std::cout << "  " << name << " again: cost " << again.cost << " ("
              << (again.stats.cache_hit ? "cache hit" : "cache miss")
              << ", " << again.stats.wall_ms << " ms)\n";
  }
  const engine::CacheStats cs = eng.cache_stats();
  std::cout << "cache: " << cs.hits << " hits, " << cs.misses
            << " misses, " << cs.entries << " entries\n";
  return 0;
}

// F6 — Section 2's equivalence: p-processor scheduling == single-processor
// multi-interval scheduling with homogeneous arithmetic intervals.
// Paper claim: laying the processors' timelines end to end (period longer
// than the horizon) turns a window [a, d] into the arithmetic progression
// [a, d], [a+x, d+x], ..., preserving the gap structure exactly.
// Protocol: random multiprocessor instances; compare the Theorem 1 DP on
// the original against the exact brute force on the embedded instance, and
// unembed the schedule back. Shape: equality on 100%; the DP is the far
// cheaper route.

#include "bench_common.hpp"

#include <mutex>

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/exact/brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/reductions/arithmetic_embedding.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("F6 (Section 2: arithmetic-interval equivalence)",
                "embedded optimum == multiprocessor optimum on 100%");

  constexpr int kTrials = 30;
  Table table({"p", "trials", "equal", "unembed_valid", "dp_ms_mean",
               "embedded_bf_ms_mean"});
  ThreadPool pool;
  std::mutex mu;

  for (int p : {2, 3, 4}) {
    int equal = 0, valid = 0, used = 0;
    double dp_ms = 0.0, bf_ms = 0.0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 613 + static_cast<std::uint64_t>(p));
      Instance inst = gen_feasible_one_interval(rng, 7, 9, 2, p);
      ArithmeticEmbedding emb = embed_multiprocessor(inst);

      Stopwatch sw1;
      const GapDpResult dp = solve_gap_dp(inst);
      const double t1 = sw1.millis();
      Stopwatch sw2;
      const ExactGapResult bf = brute_force_min_transitions(emb.embedded);
      const double t2 = sw2.millis();

      std::lock_guard<std::mutex> lk(mu);
      ++used;
      dp_ms += t1;
      bf_ms += t2;
      if (dp.feasible && bf.feasible && dp.transitions == bf.transitions) {
        ++equal;
        Schedule back = emb.unembed_schedule(bf.schedule);
        if (back.validate(inst).empty() &&
            back.per_processor_transitions(inst) == bf.transitions) {
          ++valid;
        }
      }
    });
    table.row()
        .add(p)
        .add(used)
        .add(std::to_string(equal) + "/" + std::to_string(used))
        .add(std::to_string(valid) + "/" + std::to_string(used))
        .add(used ? dp_ms / used : 0.0, 2)
        .add(used ? bf_ms / used : 0.0, 2);
  }
  bench::emit(argv[0], table);
  return 0;
}

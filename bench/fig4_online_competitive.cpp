// F4 — the online lower bound (Section 1).
// Paper claim: any online algorithm guaranteed to find feasible schedules
// has competitive ratio >= n for gap scheduling: on the adversarial family
// it must start the n loose jobs immediately, paying Theta(n) spans, while
// the offline optimum interleaves them with the tight comb in O(1) spans.
// Protocol: n sweep of the paper's family; report online vs offline
// transitions and their ratio. Shape: ratio grows linearly in n.

#include "bench_common.hpp"

#include "gapsched/baptiste/baptiste.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/online/online_edf.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("F4 (online Omega(n) lower bound)",
                "online/offline transition ratio grows linearly in n");

  Table table({"n", "jobs", "online_transitions", "offline_transitions",
               "ratio", "ratio/n"});

  for (std::size_t n : {4, 6, 8, 10, 12, 14, 16}) {
    Instance inst = gen_online_adversarial(n);
    const OnlineResult online = online_edf(inst);
    const BaptisteResult offline = solve_baptiste(inst);
    const double ratio = static_cast<double>(online.transitions) /
                         static_cast<double>(offline.spans);
    table.row()
        .add(n)
        .add(inst.n())
        .add(online.transitions)
        .add(offline.spans)
        .add(ratio, 2)
        .add(ratio / static_cast<double>(n), 3);
  }
  bench::emit(argv[0], table);
  return 0;
}

#pragma once
// Shared support for the experiment binaries: every experiment prints the
// table/series it reproduces (DESIGN.md experiment index), echoes its seed,
// and drops a CSV next to the binary for re-plotting.

#include <iostream>
#include <string>

#include "gapsched/io/csv.hpp"
#include "gapsched/parallel/thread_pool.hpp"
#include "gapsched/util/prng.hpp"
#include "gapsched/util/stopwatch.hpp"
#include "gapsched/util/table.hpp"

namespace gapsched::bench {

/// Master seed used by every experiment (printed for reproducibility).
constexpr std::uint64_t kSeed = 20070609;  // SPAA 2007 vintage

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "=== " << id << " ===\n";
  std::cout << "paper claim: " << claim << "\n";
  std::cout << "seed: " << kSeed << "\n\n";
}

/// Prints the table and writes `<argv0>.csv`.
inline void emit(const std::string& argv0, const Table& table) {
  table.print(std::cout);
  const std::string csv = argv0 + ".csv";
  if (write_csv(csv, table)) {
    std::cout << "\n[csv] " << csv << "\n";
  }
  std::cout << std::endl;
}

}  // namespace gapsched::bench

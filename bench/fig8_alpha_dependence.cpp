// F8 — Theorems 4.2/5: the approximation factor's dependence on alpha.
// Paper claim: no polynomial algorithm for multi-interval power
// minimization has a factor independent of alpha (Section 4.2), and the
// factor must grow like Omega(lg alpha) (Theorem 5, via B-set cover with
// alpha = B).
// Protocol: the Theorem 5 family with alpha = B for growing B: drive the
// reduced instance with the greedy set cover (the natural poly-time
// heuristic on this family) and compare its power to the optimal cover's.
// Shape: the heuristic/OPT power gap grows with B (tracking the greedy
// cover's ~ln B slack), illustrating why a B-independent factor is
// impossible for a set-cover-powered family.

#include "bench_common.hpp"

#include <mutex>

#include "gapsched/reductions/setcover_to_powermin.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("F8 (Theorem 5: alpha-dependence of power-min approximation)",
                "heuristic/OPT power ratio grows with alpha = B");

  constexpr int kTrials = 30;
  Table table({"B(=alpha)", "universe", "mean_cover_opt", "mean_cover_greedy",
               "mean_power_ratio", "max_power_ratio"});
  ThreadPool pool;
  std::mutex mu;

  for (std::size_t b : {2u, 3u, 4u, 6u, 8u}) {
    const std::size_t universe = 2 * b + 6;
    const std::size_t sets = universe;  // redundancy so greedy can err
    double cover_opt = 0.0, cover_greedy = 0.0, sum_r = 0.0, max_r = 0.0;
    int used = 0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 829 + b * 11);
      SetCoverInstance sc = gen_random_set_cover(rng, universe, sets, b);
      const SetCoverResult exact = exact_set_cover(sc);
      const SetCoverResult greedy = greedy_set_cover(sc);
      if (!exact.coverable) return;
      SetCoverReduction red =
          reduce_setcover_to_powermin(sc, static_cast<double>(b));
      // Power achieved by scheduling along each cover (Theorem 4's forward
      // map; exact by T4's validation).
      const double p_opt = red.cover_to_power(exact.chosen.size());
      const double p_greedy = red.cover_to_power(greedy.chosen.size());
      const double ratio = p_greedy / p_opt;
      std::lock_guard<std::mutex> lk(mu);
      ++used;
      cover_opt += static_cast<double>(exact.chosen.size());
      cover_greedy += static_cast<double>(greedy.chosen.size());
      sum_r += ratio;
      max_r = std::max(max_r, ratio);
    });
    if (used == 0) used = 1;
    table.row()
        .add(b)
        .add(universe)
        .add(cover_opt / used, 2)
        .add(cover_greedy / used, 2)
        .add(sum_r / used, 4)
        .add(max_r, 4);
  }
  bench::emit(argv[0], table);
  return 0;
}

// F3 — Theorem 11: throughput under a gap budget.
// Paper claim: the k-round greedy is an O(sqrt(n))-approximation for
// maximizing scheduled jobs subject to at most k gaps.
// Protocol: k sweep on random multi-interval instances small enough for the
// exhaustive optimum; report greedy vs OPT and the worst observed ratio
// against the 2 sqrt(n) envelope. Shape: throughput monotone in k; ratio
// far inside the envelope.

#include "bench_common.hpp"

#include <cmath>
#include <mutex>

#include "gapsched/gen/generators.hpp"
#include "gapsched/restart/restart_greedy.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("F3 (Theorem 11: restart-bounded throughput)",
                "greedy within O(sqrt(n)) of OPT; monotone in k");

  constexpr std::size_t kN = 9;
  constexpr int kTrials = 25;

  Table table({"k", "mean_greedy", "mean_opt", "mean_ratio", "min_ratio",
               "envelope_1/(2sqrt_n)"});
  ThreadPool pool;
  std::mutex mu;

  for (std::size_t k = 1; k <= 5; ++k) {
    double sum_g = 0.0, sum_o = 0.0, sum_r = 0.0, min_r = 2.0;
    int used = 0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 887);
      Instance inst = gen_multi_interval(rng, kN, 22, 2, 2);
      const std::size_t greedy = restart_greedy(inst, k).scheduled;
      const std::size_t opt = restart_exact_max_jobs(inst, k);
      std::lock_guard<std::mutex> lk(mu);
      ++used;
      sum_g += static_cast<double>(greedy);
      sum_o += static_cast<double>(opt);
      if (opt > 0) {
        const double r = static_cast<double>(greedy) / static_cast<double>(opt);
        sum_r += r;
        min_r = std::min(min_r, r);
      } else {
        sum_r += 1.0;
      }
    });
    table.row()
        .add(k)
        .add(used ? sum_g / used : 0.0, 2)
        .add(used ? sum_o / used : 0.0, 2)
        .add(used ? sum_r / used : 0.0, 3)
        .add(min_r, 3)
        .add(1.0 / (2.0 * std::sqrt(static_cast<double>(kN))), 3);
  }
  bench::emit(argv[0], table);
  return 0;
}

// T9 — scenario catalog sweep (methodology table).
// Runs every named scenario in gapsched::scenarios through a representative
// solver set (the exact gap and power anchors plus the heuristic ladder and
// the throughput greedy) with oracle validation on, and tabulates per
// scenario: shape, feasibility verdict, exact optima, heuristic gaps to the
// optimum, and the audit tally. This is the registry-wide coverage table
// backing the differential suite (tests/differential/) — the same catalog,
// addressable by the same names from the CLI (`solver_cli --scenarios`).
//
// A second section measures the engine's prep decomposition pipeline: the
// exact DPs on every one-interval scenario with decomposition on (the
// default) vs off, reporting component counts and the wall-time speedup.
// Sparse far-apart families (sparse_spread, power_longhaul) are the ones
// the pipeline exists for.
//
// A third section measures the engine's content-addressed solve cache:
// (a) the repeated catalog sweep — the same exact-anchor batch solved twice
// through Engine::solve_stream with the cache on vs off (second pass with
// the cache on is pure canonical-key lookups), and (b) N-identical-cluster
// instances where the prep pipeline deduplicates the N byte-identical
// components down to one DP solve, so the dedup speedup grows with N. Both
// studies re-run fully audited afterwards: every cached answer must still
// survive the independent oracle.
//
// Everything lands in BENCH_tab9.json (per-family wall times, component
// counts, audit tallies, cache speedups) — the machine-readable perf
// baseline CI archives. The binary exits non-zero when the oracle refutes
// any exact family's answer, so the CI benchmark lane doubles as a
// correctness gate.

#include "bench_common.hpp"
#include "json_report.hpp"

#include <cmath>

#include "gapsched/core/transforms.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/scenarios/scenarios.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("T9 (scenario catalog sweep)",
                "every named scenario, exact anchors + heuristics, "
                "oracle-audited; prep decomposition on-vs-off");

  constexpr int kTrials = 8;
  constexpr double kAlpha = 2.5;
  constexpr std::size_t kMaxSpans = 2;
  // The sweep and decomposition sections run cache-off so their wall times
  // stay comparable across commits; the cache study below owns its engines.
  engine::Engine eng({.cache = false});
  const engine::SolverRegistry& registry = eng.registry();
  const std::vector<const engine::Solver*> solvers = registry.all();

  bench::Json report = bench::Json::object();
  report.set("bench", "tab9_scenario_sweep")
      .set("seed", bench::kSeed)
      .set("alpha", kAlpha)
      .set("trials", kTrials);
  bench::Json scenario_rows = bench::Json::array();
  int refuted_exact = 0;

  Table table({"scenario", "n", "p", "feas", "gap_opt", "power_opt",
               "greedy/opt", "apx_power/opt", "restart", "oracle"});

  for (const scenarios::Scenario* sc :
       scenarios::ScenarioCatalog::instance().all()) {
    std::vector<engine::BatchJob> batch;
    for (int trial = 0; trial < kTrials; ++trial) {
      const Instance inst = sc->make(bench::kSeed + trial);
      for (const engine::Solver* solver : solvers) {
        engine::BatchJob job;
        job.solver = solver->info().name;
        job.request.instance = inst;
        job.request.objective = solver->info().objective;
        job.request.params.alpha = kAlpha;
        job.request.params.max_spans = kMaxSpans;
        job.request.params.validate = true;
        batch.push_back(std::move(job));
      }
    }
    const std::vector<engine::SolveResult> results = eng.solve_batch(batch);

    int feasible = 0, infeasible = 0;
    std::size_t audits = 0, audit_passes = 0;
    double gap_opt_sum = 0, power_opt_sum = 0, greedy_sum = 0, apx_sum = 0;
    double restart_sum = 0;
    int gap_opts = 0, power_opts = 0, greedys = 0, apxs = 0, restarts = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const engine::SolveResult& r = results[i];
      if (!r.ok) continue;  // outside this family's envelope
      const engine::Solver* solver = registry.find(batch[i].solver);
      if (r.audited) {
        ++audits;
        if (r.audit_error.empty()) {
          ++audit_passes;
        } else {
          if (solver != nullptr && solver->info().exact) ++refuted_exact;
          std::cerr << "T9: oracle refuted " << batch[i].solver << " on "
                    << sc->name << ": " << r.audit_error << "\n";
        }
      }
      const std::string& name = batch[i].solver;
      if (name == "gap_dp" || name == "brute_force") {
        r.feasible ? ++feasible : ++infeasible;
      }
      if (!r.feasible) continue;
      if (name == "gap_dp" || (name == "brute_force" && !sc->one_interval)) {
        gap_opt_sum += r.cost;
        ++gap_opts;
      } else if (name == "power_dp" ||
                 (name == "power_brute_force" && !sc->one_interval)) {
        power_opt_sum += r.cost;
        ++power_opts;
      } else if (name == "fhkn_greedy") {
        greedy_sum += r.cost;
        ++greedys;
      } else if (name == "powermin_approx") {
        apx_sum += r.cost;
        ++apxs;
      } else if (name == "restart_greedy") {
        restart_sum += r.cost;
        ++restarts;
      }
    }
    const auto mean = [](double sum, int count) {
      return count > 0 ? sum / count : std::nan("");
    };
    const double gap_opt = mean(gap_opt_sum, gap_opts);
    const double power_opt = mean(power_opt_sum, power_opts);
    table.row()
        .add(sc->name)
        .add(sc->jobs)
        .add(sc->processors)
        .add(std::to_string(feasible) + "/" +
             std::to_string(feasible + infeasible))
        .add(gap_opt, 2)
        .add(power_opt, 2)
        .add(mean(greedy_sum, greedys) / gap_opt, 3)
        .add(mean(apx_sum, apxs) / power_opt, 3)
        .add(mean(restart_sum, restarts), 2)
        .add(std::to_string(audit_passes) + "/" + std::to_string(audits));
    scenario_rows.push(
        bench::Json::object()
            .set("scenario", sc->name)
            .set("n", sc->jobs)
            .set("p", sc->processors)
            .set("feasible_trials", feasible)
            .set("verdict_trials", feasible + infeasible)
            .set("gap_opt_mean", gap_opt)
            .set("power_opt_mean", power_opt)
            .set("greedy_over_opt", mean(greedy_sum, greedys) / gap_opt)
            .set("apx_power_over_opt", mean(apx_sum, apxs) / power_opt)
            .set("restart_mean", mean(restart_sum, restarts))
            .set("audits", audits)
            .set("audit_passes", audit_passes));
  }
  bench::emit(argv[0], table);

  // ------------------- prep decomposition + compression study --
  // Exact DPs in three pipeline modes:
  //   raw    decompose off (monolithic DP, full candidate axis),
  //   dec    decompose on, dead-time compression off,
  //   full   decompose on + length-aware compression (the default:
  //          interior runs truncated to 1 unit for gaps, ceil(alpha)+1
  //          for power).
  // Two regimes:
  //   scale 1   every one-interval catalog scenario as drawn (n = 5..13;
  //             at this size the joint DP costs microseconds and the
  //             per-component setup dominates — recorded honestly),
  //   scale 8   sparse_spread / power_longhaul tiled 8x along the
  //             timeline. Tiling keeps the intra-tile dead runs (~35-70
  //             units) BELOW the tiled instance's cut threshold n = 48/64,
  //             so decomposition cuts only the inter-tile runs and
  //             compression truncates the intra-tile ones (dead_cut
  //             reports how much).
  // Per cell: trials x reps solves per mode, summed wall time, mean
  // component count, dec_x = raw/dec, comp_x = dec/full, total = raw/full.
  // Serial solves keep timing clean. Honest reading of comp_x: the Prop
  // 2.1 candidate set lives inside the allowed-window union, so truncating
  // dead runs does NOT shrink the DP state count — comp_x hovers a little
  // under 1 (the transform's overhead on microsecond solves). What the
  // cap buys the power objective is canonical-form normalization, measured
  // below: length-varied clusters dedup to one solve (b2) and stretched
  // copies hit the cache (c).
  std::cout << "=== prep decomposition + compression: exact DPs ===\n\n";
  Table dtable({"scenario", "scale", "n", "solver", "components", "dead_cut",
                "full_ms", "dec_ms", "raw_ms", "dec_x", "comp_x", "total_x"});
  bench::Json decomp_rows = bench::Json::array();

  // Tiles `copies` independent draws of `sc` far enough apart that every
  // tile is its own cluster at the tiled instance's cut threshold.
  const auto tile = [](const scenarios::Scenario& sc, std::uint64_t seed,
                       int copies) {
    Instance out;
    Time offset = 0;
    for (int i = 0; i < copies; ++i) {
      const Instance draw = sc.make(seed + static_cast<std::uint64_t>(i));
      out.processors = draw.processors;
      const Time span = draw.latest_deadline() - draw.earliest_release();
      for (const Job& job : draw.jobs) {
        out.jobs.push_back(Job{job.allowed.shifted(offset)});
      }
      // Next tile starts one full job-count past this one's deadline: the
      // dead run exceeds any threshold max(n_total, ceil(alpha)) can ask.
      offset += span + static_cast<Time>(sc.jobs) * (copies + 1) + 64;
    }
    return out;
  };

  struct Cell {
    const scenarios::Scenario* sc;
    int scale;
    int trials;
    int reps;
  };
  std::vector<Cell> cells;
  for (const scenarios::Scenario* sc :
       scenarios::ScenarioCatalog::instance().all()) {
    if (!sc->one_interval) continue;
    cells.push_back({sc, 1, kTrials, 5});
  }
  const scenarios::ScenarioCatalog& catalog =
      scenarios::ScenarioCatalog::instance();
  for (const char* name : {"sparse_spread", "power_longhaul"}) {
    cells.push_back({catalog.find(name), 8, 4, 2});
  }

  for (const Cell& cell : cells) {
    const scenarios::Scenario* sc = cell.sc;
    for (const char* name : {"gap_dp", "power_dp"}) {
      const engine::Solver* solver = registry.find(name);
      double full_ms = 0.0, dec_ms = 0.0, raw_ms = 0.0;
      double components_sum = 0.0, dead_cut_sum = 0.0;
      std::size_t n = 0;
      std::size_t solves = 0;
      bool rejected = false;
      for (int trial = 0; trial < cell.trials && !rejected; ++trial) {
        engine::SolveRequest req;
        req.instance = cell.scale == 1
                           ? sc->make(bench::kSeed + trial)
                           : tile(*sc, bench::kSeed + trial, cell.scale);
        n = req.instance.n();
        req.objective = solver->info().objective;
        req.params.alpha = kAlpha;
        req.params.validate = true;
        for (int rep = 0; rep < cell.reps; ++rep) {
          req.params.decompose = true;
          req.params.compress = true;
          const engine::SolveResult full = eng.solve(*solver, req);
          req.params.compress = false;
          const engine::SolveResult dec = eng.solve(*solver, req);
          req.params.decompose = false;
          const engine::SolveResult raw = eng.solve(*solver, req);
          if (!full.ok || !dec.ok || !raw.ok) {
            rejected = true;  // outside the family's envelope; skip cell
            break;
          }
          for (const engine::SolveResult* r : {&full, &dec, &raw}) {
            if (r->audited && !r->audit_error.empty()) {
              ++refuted_exact;
              std::cerr << "T9: oracle refuted " << name << " (mode "
                        << (r == &full ? "full" : (r == &dec ? "dec" : "raw"))
                        << ") on " << sc->name << " x" << cell.scale << ": "
                        << r->audit_error << "\n";
            }
          }
          full_ms += full.stats.wall_ms;
          dec_ms += dec.stats.wall_ms;
          raw_ms += raw.stats.wall_ms;
          components_sum += static_cast<double>(full.stats.components);
          dead_cut_sum += static_cast<double>(full.stats.dead_time_removed);
          ++solves;
        }
      }
      if (rejected || solves == 0) continue;
      const double components_mean = components_sum / solves;
      const double dead_cut_mean = dead_cut_sum / solves;
      const double dec_x = dec_ms > 0.0 ? raw_ms / dec_ms : 0.0;
      const double comp_x = full_ms > 0.0 ? dec_ms / full_ms : 0.0;
      const double total_x = full_ms > 0.0 ? raw_ms / full_ms : 0.0;
      dtable.row()
          .add(sc->name)
          .add(cell.scale)
          .add(n)
          .add(name)
          .add(components_mean, 2)
          .add(dead_cut_mean, 1)
          .add(full_ms, 3)
          .add(dec_ms, 3)
          .add(raw_ms, 3)
          .add(dec_x, 2)
          .add(comp_x, 2)
          .add(total_x, 2);
      decomp_rows.push(bench::Json::object()
                           .set("scenario", sc->name)
                           .set("scale", cell.scale)
                           .set("n", n)
                           .set("solver", name)
                           .set("trials", cell.trials)
                           .set("reps", cell.reps)
                           .set("components_mean", components_mean)
                           .set("dead_time_removed_mean", dead_cut_mean)
                           .set("on_ms", full_ms)
                           .set("nocompress_ms", dec_ms)
                           .set("off_ms", raw_ms)
                           .set("decomp_speedup", dec_x)
                           .set("compress_speedup", comp_x)
                           .set("speedup", total_x));
    }
  }
  dtable.print(std::cout);
  std::cout << "\n";

  // ------------------------------------------------- solve cache study --
  // (a) Repeated catalog sweep: one exact-anchor batch (every one-interval
  // scenario x {gap_dp, power_dp, baptiste} x kTrials draws), solved twice
  // through Engine::solve_stream. With the cache on, the second pass is
  // pure canonical-key lookups; with it off, every solve re-runs the DP.
  // Timing passes run validate-off (the oracle costs the same either way
  // and would blur the cache effect); a fully audited cache-on pass runs
  // afterwards and feeds the refuted_exact gate — cached answers get no
  // free pass from the oracle.
  std::cout << "=== solve cache: repeat sweep + identical-component dedup "
               "===\n\n";
  const char* kAnchors[] = {"gap_dp", "power_dp", "baptiste"};
  std::vector<engine::BatchJob> sweep_batch;
  for (const scenarios::Scenario* sc :
       scenarios::ScenarioCatalog::instance().all()) {
    if (!sc->one_interval) continue;
    for (int trial = 0; trial < kTrials; ++trial) {
      const Instance inst = sc->make(bench::kSeed + trial);
      for (const char* name : kAnchors) {
        engine::BatchJob job;
        job.solver = name;
        job.request.instance = inst;
        job.request.objective = registry.find(name)->info().objective;
        job.request.params.alpha = kAlpha;
        sweep_batch.push_back(std::move(job));
      }
    }
  }
  engine::Engine cached;                     // cache on (the default)
  engine::Engine uncached({.cache = false});
  const auto timed_stream = [&](engine::Engine& e) {
    std::size_t delivered = 0;
    Stopwatch sw;
    const std::vector<engine::SolveResult> results = e.solve_stream(
        sweep_batch,
        [&](std::size_t, const engine::SolveResult&) { ++delivered; });
    const double ms = sw.millis();
    if (delivered != sweep_batch.size()) {
      std::cerr << "T9: solve_stream delivered " << delivered << " of "
                << sweep_batch.size() << " results\n";
      ++refuted_exact;  // a broken stream is a bug, not a perf datum
    }
    return std::make_pair(ms, engine::summarize(results));
  };
  const auto [pass1_on_ms, sum1] = timed_stream(cached);
  const auto [pass2_on_ms, sum2] = timed_stream(cached);
  timed_stream(uncached);  // warm the pool, as pass 1 did for `cached`
  const auto [pass2_off_ms, sum_off] = timed_stream(uncached);
  const double sweep_speedup =
      pass2_on_ms > 0.0 ? pass2_off_ms / pass2_on_ms : 0.0;

  // Audited cache-on pass: every result now comes from the cache and every
  // answer is re-derived by the independent oracle against the requester's
  // own instance.
  std::vector<engine::BatchJob> audited_batch = sweep_batch;
  for (engine::BatchJob& job : audited_batch) {
    job.request.params.validate = true;
  }
  const engine::BatchSummary audited_sum =
      engine::summarize(cached.solve_batch(audited_batch));
  refuted_exact += static_cast<int>(audited_sum.refuted);

  Table ctable({"pass", "requests", "ms", "cache_hits", "speedup"});
  ctable.row().add("1 (cache on, cold)").add(sweep_batch.size())
      .add(pass1_on_ms, 2).add(sum1.cache_hits + sum1.component_cache_hits)
      .add("");
  ctable.row().add("2 (cache on, warm)").add(sweep_batch.size())
      .add(pass2_on_ms, 2).add(sum2.cache_hits + sum2.component_cache_hits)
      .add(sweep_speedup, 2);
  ctable.row().add("2 (cache off)").add(sweep_batch.size())
      .add(pass2_off_ms, 2)
      .add(sum_off.cache_hits + sum_off.component_cache_hits).add("");
  ctable.print(std::cout);
  std::cout << "audited cache-on pass: " << audited_sum.audited
            << " audits, " << audited_sum.refuted << " refuted, "
            << audited_sum.cache_hits << " whole-request hits\n\n";

  bench::Json sweep_json = bench::Json::object();
  sweep_json.set("requests", sweep_batch.size())
      .set("pass1_on_ms", pass1_on_ms)
      .set("pass2_on_ms", pass2_on_ms)
      .set("pass2_off_ms", pass2_off_ms)
      .set("second_pass_speedup", sweep_speedup)
      .set("pass2_cache_hits", sum2.cache_hits + sum2.component_cache_hits)
      .set("audited", audited_sum.audited)
      .set("audited_refuted", audited_sum.refuted);

  // (b) N identical clusters: the decomposed components are byte-identical
  // post canonicalization + compression, so the pipeline solves one and
  // reuses it N-1 times — the dedup win grows with N. The cache-off engine
  // solves all N components from scratch (same decomposition, no reuse).
  const auto identical_clusters = [](int copies) {
    // One fixed 10-job cluster with real slack (windows overlap, span ~26)
    // so the per-component DP does non-trivial work, tiled far enough
    // apart that every tile is its own component at any cut threshold the
    // tiled instance can ask for (> max(n_total, ceil(alpha))).
    Instance out;
    const Time spacing = 26 + static_cast<Time>(copies) * 10 + 64;
    for (int i = 0; i < copies; ++i) {
      const Time base = static_cast<Time>(i) * spacing;
      for (int j = 0; j < 10; ++j) {
        const Time lo = base + static_cast<Time>(j) * 2;
        out.jobs.push_back(Job{TimeSet::window(lo, lo + 7)});
      }
    }
    return out;
  };
  Table dedup_table({"clusters", "n", "solver", "deduped", "on_ms", "off_ms",
                     "speedup"});
  bench::Json dedup_rows = bench::Json::array();
  constexpr int kDedupReps = 3;  // summed: single solves are jitter-prone
  for (const int copies : {8, 32, 128, 300}) {
    const Instance inst = identical_clusters(copies);
    for (const char* name : {"gap_dp", "power_dp"}) {
      const engine::Solver* solver = registry.find(name);
      engine::SolveRequest req;
      req.instance = inst;
      req.objective = solver->info().objective;
      req.params.alpha = kAlpha;

      double on_ms = 0.0, off_ms = 0.0;
      engine::SolveResult on;
      bool bad = false;
      for (int rep = 0; rep < kDedupReps && !bad; ++rep) {
        // Fresh per-rep engine: each "on" solve measures intra-request
        // dedup on a cold cache, not a warm lookup.
        engine::Engine fresh;
        Stopwatch sw;
        on = fresh.solve(name, req);
        on_ms += sw.millis();
        sw.reset();
        const engine::SolveResult off = uncached.solve(name, req);
        off_ms += sw.millis();
        if (!on.ok || !off.ok || on.cost != off.cost) {
          std::cerr << "T9: cache dedup mismatch on " << copies
                    << " clusters (" << name << "): "
                    << (on.ok ? (off.ok ? "cost differs" : off.error)
                              : on.error)
                    << "\n";
          ++refuted_exact;
          bad = true;
          break;
        }
        if (rep > 0) continue;
        // Audited warm re-solve: all components served from the cache,
        // and the oracle re-derives the recombined answer.
        engine::SolveRequest audited = req;
        audited.params.validate = true;
        const engine::SolveResult warm = fresh.solve(name, audited);
        if (!warm.stats.cache_hit || !warm.audit_error.empty()) {
          std::cerr << "T9: audited warm solve failed on " << copies
                    << " clusters (" << name << "): "
                    << (warm.audit_error.empty() ? "not a cache hit"
                                                 : warm.audit_error)
                    << "\n";
          ++refuted_exact;
        }
      }
      if (bad) continue;
      const double speedup = on_ms > 0.0 ? off_ms / on_ms : 0.0;
      dedup_table.row()
          .add(copies)
          .add(inst.n())
          .add(name)
          .add(on.stats.components_deduped)
          .add(on_ms, 3)
          .add(off_ms, 3)
          .add(speedup, 2);
      dedup_rows.push(bench::Json::object()
                          .set("clusters", copies)
                          .set("n", inst.n())
                          .set("solver", name)
                          .set("components", on.stats.components)
                          .set("components_deduped",
                               on.stats.components_deduped)
                          .set("on_ms", on_ms)
                          .set("off_ms", off_ms)
                          .set("speedup", speedup));
    }
  }
  dedup_table.print(std::cout);
  std::cout << "\n";

  // (b2) Decomposition x compression, multiplicatively: N far-apart
  // clusters whose window patterns are identical but whose INTERIOR dead
  // runs all differ (cluster i's runs are cap + i units — every one past
  // the cap, every one under the cut threshold). Decomposition cuts the
  // clusters apart either way; without compression all N components key
  // apart and solve separately, with the length-aware compression they
  // collapse onto ONE canonical form, so the pipeline does a single DP
  // solve plus N-1 dedup reuses. The speedup is compression's alone (both
  // engines cache, both decompose) and grows with N — the sparse
  // long-horizon power win the ROADMAP item asked for.
  std::cout << "=== decomposition x compression: length-varied clusters "
               "===\n\n";
  const Time kCap = static_cast<Time>(std::ceil(kAlpha)) + 1;
  const auto varied_clusters = [&](int copies) {
    Instance out;
    Time base = 0;
    for (int i = 0; i < copies; ++i) {
      // 8 six-slot windows per cluster (real per-cluster DP work),
      // interior runs of cap + i.
      Time t = base;
      for (int j = 0; j < 8; ++j) {
        out.jobs.push_back(Job{TimeSet::window(t, t + 5)});
        t += 6 + kCap + static_cast<Time>(i);
      }
      base = t + static_cast<Time>(copies) * 8 + 64;  // always cut here
    }
    return out;
  };
  Table varied_table({"clusters", "n", "solver", "deduped_on", "deduped_off",
                      "on_ms", "off_ms", "speedup"});
  bench::Json varied_rows = bench::Json::array();
  for (const int copies : {8, 32, 128}) {
    const Instance inst = varied_clusters(copies);
    for (const char* name : {"power_dp", "gap_dp"}) {
      engine::SolveRequest req;
      req.instance = inst;
      req.objective = registry.find(name)->info().objective;
      req.params.alpha = kAlpha;
      double on_ms = 0.0, off_ms = 0.0;
      engine::SolveResult on, off;
      bool bad = false;
      for (int rep = 0; rep < kDedupReps && !bad; ++rep) {
        engine::Engine fresh_on, fresh_off;  // cold caches each rep
        req.params.compress = true;
        Stopwatch sw;
        on = fresh_on.solve(name, req);
        on_ms += sw.millis();
        req.params.compress = false;
        sw.reset();
        off = fresh_off.solve(name, req);
        off_ms += sw.millis();
        if (!on.ok || !off.ok || on.cost != off.cost) {
          std::cerr << "T9: varied-run compression mismatch on " << copies
                    << " clusters (" << name << ")\n";
          ++refuted_exact;
          bad = true;
          break;
        }
        if (rep > 0) continue;
        engine::SolveRequest audited = req;
        audited.params.compress = true;
        audited.params.validate = true;
        const engine::SolveResult checked = fresh_on.solve(name, audited);
        if (!checked.audit_error.empty()) {
          std::cerr << "T9: oracle refuted the compressed varied-run solve ("
                    << name << "): " << checked.audit_error << "\n";
          ++refuted_exact;
        }
      }
      if (bad) continue;
      const double speedup = on_ms > 0.0 ? off_ms / on_ms : 0.0;
      varied_table.row()
          .add(copies)
          .add(inst.n())
          .add(name)
          .add(on.stats.components_deduped)
          .add(off.stats.components_deduped)
          .add(on_ms, 3)
          .add(off_ms, 3)
          .add(speedup, 2);
      varied_rows.push(bench::Json::object()
                           .set("clusters", copies)
                           .set("n", inst.n())
                           .set("solver", name)
                           .set("components", on.stats.components)
                           .set("deduped_compress_on",
                                on.stats.components_deduped)
                           .set("deduped_compress_off",
                                off.stats.components_deduped)
                           .set("on_ms", on_ms)
                           .set("off_ms", off_ms)
                           .set("speedup", speedup));
    }
  }
  varied_table.print(std::cout);
  std::cout << "\n";

  // (c) Cache-key normalization across dead-run lengths: the length-aware
  // compression makes a time-stretched copy of a power workload (every
  // interior dead run dilated by k, all runs already past the cap
  // ceil(alpha) + 1) compress to the SAME canonical components, so the
  // stretched copy is served entirely from the cache — one solve covers
  // the whole dilation family. Chain instances keep the dead runs below
  // the cut threshold before and after stretching (runs of 5 -> 20 vs
  // n = 24), so normalization is compression's doing, not decomposition's.
  std::cout << "=== solve cache: stretched-copy normalization (power) ===\n\n";
  const auto chain = [](int jobs, Time spacing) {
    Instance out;
    for (int i = 0; i < jobs; ++i) {
      const Time t = static_cast<Time>(i) * spacing;
      out.jobs.push_back(Job{TimeSet::window(t, t)});
    }
    return out;
  };
  Table stretch_table({"solver", "n", "k", "components", "hits", "served"});
  bench::Json stretch_rows = bench::Json::array();
  for (const char* name : {"power_dp", "gap_dp"}) {
    // k is bounded by the cut threshold: dilated runs (5k) must stay under
    // n = 24 or the stretched copy decomposes differently by design.
    for (const Time k : {Time{2}, Time{4}}) {
      engine::Engine fresh;
      engine::SolveRequest req;
      req.instance = chain(24, 6);  // dead runs of 5 > cap 4, < n = 24
      req.objective = registry.find(name)->info().objective;
      req.params.alpha = kAlpha;
      req.params.validate = true;
      const engine::SolveResult cold = fresh.solve(name, req);
      engine::SolveRequest stretched = req;
      stretched.instance =
          stretch_dead_time(req.instance, k, scenarios::kStretchMinRun);
      const engine::SolveResult warm = fresh.solve(name, stretched);
      const bool served = warm.stats.cache_hit;
      if (!cold.ok || !warm.ok || !served || cold.cost != warm.cost ||
          !warm.audit_error.empty()) {
        std::cerr << "T9: stretched copy missed the cache (" << name
                  << ", k=" << k << "): "
                  << (warm.ok ? warm.audit_error : warm.error) << "\n";
        ++refuted_exact;
      }
      stretch_table.row()
          .add(name)
          .add(req.instance.n())
          .add(k)
          .add(warm.stats.components)
          .add(warm.stats.component_cache_hits)
          .add(served ? "cache" : "MISS");
      stretch_rows.push(bench::Json::object()
                            .set("solver", name)
                            .set("n", req.instance.n())
                            .set("k", k)
                            .set("components", warm.stats.components)
                            .set("component_cache_hits",
                                 warm.stats.component_cache_hits)
                            .set("served_from_cache", served));
    }
  }
  stretch_table.print(std::cout);
  std::cout << "\n";

  bench::Json cache_json = bench::Json::object();
  cache_json.set("repeat_sweep", std::move(sweep_json))
      .set("identical_clusters", std::move(dedup_rows))
      .set("length_varied_clusters", std::move(varied_rows))
      .set("stretch_normalization", std::move(stretch_rows));

  // --------------------------------------------- pipeline stage profile --
  // Per-stage roll-up of the engines' staged solve pipeline
  // (engine/pipeline.hpp): how often each of the seven stages ran vs was
  // skipped, and where the wall time went. Two complementary request
  // mixes: the cache-on engine that served the repeat sweep (pass 2 and
  // the audited pass are dominated by CacheLookup hits, so Dispatch shows
  // heavy skips), and the cache-off sweep engine (no cache stages, all
  // Dispatch). All seven stages are reported for both — run counts are
  // workload-determined and pinned; wall times are the perf datum.
  std::cout << "=== pipeline stage profile ===\n\n";
  Table ptable({"stage", "cached_runs", "cached_skips", "cached_ms",
                "uncached_runs", "uncached_skips", "uncached_ms"});
  bench::Json stage_rows = bench::Json::array();
  const engine::pipeline::PipelineStats cached_stats = cached.pipeline_stats();
  const engine::pipeline::PipelineStats uncached_stats = eng.pipeline_stats();
  for (std::size_t i = 0; i < engine::kPipelineStageCount; ++i) {
    const std::string stage_name(
        engine::to_string(static_cast<engine::PipelineStage>(i)));
    const engine::pipeline::StageTally& on = cached_stats.stages[i];
    const engine::pipeline::StageTally& off = uncached_stats.stages[i];
    ptable.row()
        .add(stage_name)
        .add(on.runs)
        .add(on.skips)
        .add(on.total_ms, 3)
        .add(off.runs)
        .add(off.skips)
        .add(off.total_ms, 3);
    stage_rows.push(bench::Json::object()
                        .set("stage", stage_name)
                        .set("cached_runs", on.runs)
                        .set("cached_skips", on.skips)
                        .set("cached_ms", on.total_ms)
                        .set("uncached_runs", off.runs)
                        .set("uncached_skips", off.skips)
                        .set("uncached_ms", off.total_ms));
  }
  ptable.print(std::cout);
  std::cout << "cached engine: " << cached_stats.requests
            << " request(s); uncached sweep engine: "
            << uncached_stats.requests << " request(s)\n\n";
  bench::Json pipeline_json = bench::Json::object();
  pipeline_json.set("cached_requests", cached_stats.requests)
      .set("uncached_requests", uncached_stats.requests)
      .set("stages", std::move(stage_rows));

  report.set("scenarios", std::move(scenario_rows))
      .set("decomposition", std::move(decomp_rows))
      .set("cache_study", std::move(cache_json))
      .set("pipeline_stages", std::move(pipeline_json))
      .set("refuted_exact", refuted_exact);
  bench::emit_json("tab9", report);

  // CI gate: a refuted exact answer is a solver bug, not a perf datum.
  return refuted_exact == 0 ? 0 : 1;
}

// T9 — scenario catalog sweep (methodology table).
// Runs every named scenario in gapsched::scenarios through a representative
// solver set (the exact gap and power anchors plus the heuristic ladder and
// the throughput greedy) with oracle validation on, and tabulates per
// scenario: shape, feasibility verdict, exact optima, heuristic gaps to the
// optimum, and the audit tally. This is the registry-wide coverage table
// backing the differential suite (tests/differential/) — the same catalog,
// addressable by the same names from the CLI (`solver_cli --scenarios`).

#include "bench_common.hpp"

#include <cmath>

#include "gapsched/engine/solve_many.hpp"
#include "gapsched/scenarios/scenarios.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("T9 (scenario catalog sweep)",
                "every named scenario, exact anchors + heuristics, "
                "oracle-audited");

  constexpr int kTrials = 8;
  constexpr double kAlpha = 2.5;
  constexpr std::size_t kMaxSpans = 2;
  const engine::SolverRegistry& registry = engine::SolverRegistry::instance();
  const std::vector<const engine::Solver*> solvers = registry.all();

  Table table({"scenario", "n", "p", "feas", "gap_opt", "power_opt",
               "greedy/opt", "apx_power/opt", "restart", "oracle"});
  ThreadPool pool;

  for (const scenarios::Scenario* sc :
       scenarios::ScenarioCatalog::instance().all()) {
    std::vector<engine::BatchJob> batch;
    for (int trial = 0; trial < kTrials; ++trial) {
      const Instance inst = sc->make(bench::kSeed + trial);
      for (const engine::Solver* solver : solvers) {
        engine::BatchJob job;
        job.solver = solver->info().name;
        job.request.instance = inst;
        job.request.objective = solver->info().objective;
        job.request.params.alpha = kAlpha;
        job.request.params.max_spans = kMaxSpans;
        job.request.params.validate = true;
        batch.push_back(std::move(job));
      }
    }
    const std::vector<engine::SolveResult> results =
        engine::solve_many(batch, pool);

    int feasible = 0, infeasible = 0;
    std::size_t audits = 0, audit_passes = 0;
    double gap_opt_sum = 0, power_opt_sum = 0, greedy_sum = 0, apx_sum = 0;
    double restart_sum = 0;
    int gap_opts = 0, power_opts = 0, greedys = 0, apxs = 0, restarts = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const engine::SolveResult& r = results[i];
      if (!r.ok) continue;  // outside this family's envelope
      if (r.audited) {
        ++audits;
        if (r.audit_error.empty()) {
          ++audit_passes;
        } else {
          std::cerr << "T9: oracle refuted " << batch[i].solver << " on "
                    << sc->name << ": " << r.audit_error << "\n";
        }
      }
      const std::string& name = batch[i].solver;
      if (name == "gap_dp" || name == "brute_force") {
        r.feasible ? ++feasible : ++infeasible;
      }
      if (!r.feasible) continue;
      if (name == "gap_dp" || (name == "brute_force" && !sc->one_interval)) {
        gap_opt_sum += r.cost;
        ++gap_opts;
      } else if (name == "power_dp" ||
                 (name == "power_brute_force" && !sc->one_interval)) {
        power_opt_sum += r.cost;
        ++power_opts;
      } else if (name == "fhkn_greedy") {
        greedy_sum += r.cost;
        ++greedys;
      } else if (name == "powermin_approx") {
        apx_sum += r.cost;
        ++apxs;
      } else if (name == "restart_greedy") {
        restart_sum += r.cost;
        ++restarts;
      }
    }
    const auto mean = [](double sum, int count) {
      return count > 0 ? sum / count : std::nan("");
    };
    const double gap_opt = mean(gap_opt_sum, gap_opts);
    const double power_opt = mean(power_opt_sum, power_opts);
    table.row()
        .add(sc->name)
        .add(sc->jobs)
        .add(sc->processors)
        .add(std::to_string(feasible) + "/" +
             std::to_string(feasible + infeasible))
        .add(gap_opt, 2)
        .add(power_opt, 2)
        .add(mean(greedy_sum, greedys) / gap_opt, 3)
        .add(mean(apx_sum, apxs) / power_opt, 3)
        .add(mean(restart_sum, restarts), 2)
        .add(std::to_string(audit_passes) + "/" + std::to_string(audits));
  }
  bench::emit(argv[0], table);
  return 0;
}

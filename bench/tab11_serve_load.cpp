// T11 — the serving stack under a mixed loopback burst: an in-process
// gapsched_serve endpoint (sharded, one Session per connection, shared
// SolveCache) driven by the loadgen client at >= 5k requests across the
// three solver families: mega_mixed/gap_dp (exact window DP on mixed
// catalog draws), poly_scale/bcd_poly_gap (the polynomial [BCD07] family
// at n in the hundreds), and stretched power_longhaul/power_dp (the
// power-objective DP, alpha = 2.5). Every request carries
// params.validate = true, so each answer survives the server-side oracle
// audit; every 4th-ish request reuses its family's base seed, giving
// canonical-identical traffic that must route to a single shard and dedup
// in the shared cache.
//
// What the table and BENCH_tab11.json pin: per-family latency order
// statistics (p50/p95/p99 over the sliding-window round trip), whole-burst
// throughput, per-shard request/cache-hit tallies from the server's own
// stats frame, and the reorder evidence — responses observed out of
// submission order, proving the completion-order stream is real and the
// client-side id reorder is doing work.
//
// The lane is a correctness gate like T9/T10: exit is non-zero on any
// drop (request without a response), oracle refutation, protocol error
// (unknown/duplicate id, error frame answering a well-formed request), or
// a burst that never reordered anything (window 16 over heterogeneous
// latencies makes in-order completion of every response implausible).

#include "bench_common.hpp"
#include "json_report.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "gapsched/serve/loadgen.hpp"
#include "gapsched/serve/server.hpp"

using namespace gapsched;

namespace {

serve::LoadSpec family(std::string scenario, std::string solver,
                       engine::Objective objective, std::size_t requests,
                       std::uint64_t seed_base, std::size_t duplicate_every,
                       double alpha = 0.0) {
  serve::LoadSpec spec;
  spec.scenario = std::move(scenario);
  spec.solver = std::move(solver);
  spec.objective = objective;
  spec.requests = requests;
  spec.seed_base = seed_base;
  spec.duplicate_every = duplicate_every;
  if (alpha > 0.0) spec.params.alpha = alpha;
  return spec;
}

}  // namespace

int main(int, char**) {
  bench::banner("T11 (serve load)",
                "sharded JSON solve server: >= 5k validated mixed requests "
                "over loopback, zero drops, zero refutations, reordered");

  serve::ServerOptions options;
  options.shards = 4;
  serve::Server server(options);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "T11: server failed to start: %s\n", error.c_str());
    return 1;
  }

  // 5120 requests: half cheap exact DP traffic, the rest split between the
  // polynomial bcd family (hundreds of jobs per instance) and the power DP.
  std::vector<serve::LoadSpec> specs;
  specs.push_back(family("mega_mixed", "gap_dp", engine::Objective::kGaps,
                         2560, 11000, 4));
  specs.push_back(family("poly_scale:300", "bcd_poly_gap",
                         engine::Objective::kGaps, 1280, 12000, 5));
  specs.push_back(family("stretched:16:power_longhaul", "power_dp",
                         engine::Objective::kPower, 1280, 13000, 4,
                         /*alpha=*/2.5));

  serve::LoadOptions load;
  load.port = server.port();
  load.connections = 6;
  load.window = 16;
  const serve::LoadReport report = serve::run_load(load, specs);
  server.drain();

  if (!report.error.empty()) {
    std::fprintf(stderr, "T11: burst failed: %s\n", report.error.c_str());
    return 1;
  }

  std::printf("%-40s %8s %9s %9s %9s %9s\n", "family", "n", "p50 ms",
              "p95 ms", "p99 ms", "max ms");
  for (const serve::FamilyReport& fam : report.families) {
    std::printf("%-40s %8zu %9.3f %9.3f %9.3f %9.3f\n", fam.label.c_str(),
                fam.latency.count, fam.latency.p50_ms, fam.latency.p95_ms,
                fam.latency.p99_ms, fam.latency.max_ms);
  }
  std::printf("\nburst: %llu sent, %llu received, %llu dropped, "
              "%llu refuted, %llu out-of-order, %.2f s wall, %.0f req/s\n",
              static_cast<unsigned long long>(report.sent),
              static_cast<unsigned long long>(report.received),
              static_cast<unsigned long long>(report.dropped),
              static_cast<unsigned long long>(report.refuted),
              static_cast<unsigned long long>(report.out_of_order),
              report.wall_s, report.throughput_rps);
  if (report.server_stats_ok) {
    for (const io::ShardStatsWire& shard : report.server_stats.shards) {
      const double hit_rate =
          shard.requests > 0
              ? static_cast<double>(shard.cache_hits) /
                    static_cast<double>(shard.requests)
              : 0.0;
      std::printf("shard %lld: %llu requests, %llu cache hits (%.1f%%)\n",
                  static_cast<long long>(shard.shard),
                  static_cast<unsigned long long>(shard.requests),
                  static_cast<unsigned long long>(shard.cache_hits),
                  100.0 * hit_rate);
    }
  }

  bench::Json families = bench::Json::array();
  for (const serve::FamilyReport& fam : report.families) {
    families.push(bench::Json::object()
                      .set("family", fam.label)
                      .set("requests", fam.sent)
                      .set("received", fam.received)
                      .set("ok", fam.ok)
                      .set("infeasible", fam.infeasible)
                      .set("refuted", fam.refuted)
                      .set("p50_ms", fam.latency.p50_ms)
                      .set("p95_ms", fam.latency.p95_ms)
                      .set("p99_ms", fam.latency.p99_ms)
                      .set("mean_ms", fam.latency.mean_ms)
                      .set("max_ms", fam.latency.max_ms));
  }
  bench::Json shards = bench::Json::array();
  if (report.server_stats_ok) {
    for (const io::ShardStatsWire& shard : report.server_stats.shards) {
      shards.push(
          bench::Json::object()
              .set("shard", shard.shard)
              .set("requests", shard.requests)
              .set("cache_hits", shard.cache_hits)
              .set("component_cache_hits", shard.component_cache_hits)
              .set("refuted", shard.refuted)
              .set("cache_hit_rate",
                   shard.requests > 0
                       ? static_cast<double>(shard.cache_hits) /
                             static_cast<double>(shard.requests)
                       : 0.0));
    }
  }
  bench::Json root =
      bench::Json::object()
          .set("experiment", "tab11_serve_load")
          .set("connections", load.connections)
          .set("window", load.window)
          .set("shards", static_cast<std::int64_t>(server.shards()))
          .set("sent", report.sent)
          .set("received", report.received)
          .set("dropped", report.dropped)
          .set("refuted", report.refuted)
          .set("error_frames", report.error_frames)
          .set("duplicate_ids", report.duplicate_ids)
          .set("unknown_ids", report.unknown_ids)
          .set("out_of_order", report.out_of_order)
          .set("wall_s", report.wall_s)
          .set("throughput_rps", report.throughput_rps)
          .set("cache",
               bench::Json::object()
                   .set("hits", report.server_stats.cache.hits)
                   .set("misses", report.server_stats.cache.misses)
                   .set("entries", report.server_stats.cache.entries))
          .set("families", std::move(families))
          .set("per_shard", std::move(shards));
  bench::emit_json("tab11", root);

  int failures = 0;
  if (!report.ok) {
    std::fprintf(stderr, "T11 FAIL: burst verdict not ok (%s)\n",
                 report.error.empty() ? "drops/refutations/protocol"
                                      : report.error.c_str());
    ++failures;
  }
  if (report.out_of_order == 0) {
    std::fprintf(stderr,
                 "T11 FAIL: no response ever arrived out of submission "
                 "order — the completion-order stream is not exercised\n");
    ++failures;
  }
  if (!report.server_stats_ok) {
    std::fprintf(stderr, "T11 FAIL: server stats frame missing\n");
    ++failures;
  } else if (report.server_stats.cache.hits == 0) {
    std::fprintf(stderr,
                 "T11 FAIL: duplicate traffic produced zero cache hits\n");
    ++failures;
  }
  if (failures == 0) {
    std::printf("\nT11 PASS: %llu/%llu answered, 0 dropped, 0 refuted\n",
                static_cast<unsigned long long>(report.received),
                static_cast<unsigned long long>(report.sent));
  }
  return failures == 0 ? 0 : 1;
}

// T5 — Theorems 7, 8, 9, 10: the special-case reductions preserve optima.
// Paper claims: 2-interval and 3-unit gap scheduling are as hard as general
// multi-interval (optimum preserved up to the extra block's +1); two-unit
// and disjoint-unit gap scheduling are equivalent up to +-1; B-set cover
// embeds exactly into disjoint-unit scheduling.
// Protocol: random sources, exact solvers on both sides of each reduction.
// Shape: 100% of instances satisfy the claimed value map.

#include "bench_common.hpp"

#include <mutex>

#include "gapsched/exact/brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/reductions/multi_to_three_unit.hpp"
#include "gapsched/reductions/multi_to_two_interval.hpp"
#include "gapsched/reductions/setcover_to_disjoint_unit.hpp"
#include "gapsched/reductions/two_unit_disjoint.hpp"
#include "gapsched/setcover/setcover.hpp"

using namespace gapsched;

namespace {

constexpr int kTrials = 30;

Instance random_multi(Prng& rng, std::size_t n, std::size_t max_ivs,
                      Time horizon) {
  Instance inst;
  inst.processors = 1;
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<Interval> ivs;
    const std::size_t k = 1 + rng.index(max_ivs);
    for (std::size_t i = 0; i < k; ++i) {
      const Time lo = rng.uniform(0, horizon);
      ivs.push_back({lo, lo + rng.uniform(0, 1)});
    }
    inst.jobs.push_back(Job{TimeSet(std::move(ivs))});
  }
  return inst;
}

}  // namespace

int main(int, char** argv) {
  bench::banner("T5 (Theorems 7/8/9/10: special-case reductions)",
                "value maps hold on 100% of random instances");

  Table table({"reduction", "trials", "checked", "map_holds"});
  ThreadPool pool;
  std::mutex mu;

  // Theorem 7: multi-interval -> 2-interval (+1 for the extra block).
  {
    int checked = 0, ok = 0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 331);
      Instance inst = random_multi(rng, 3, 4, 14);
      TwoIntervalReduction red = reduce_multi_to_two_interval(inst);
      const ExactGapResult a = brute_force_min_transitions(inst);
      const ExactGapResult b = brute_force_min_transitions(red.instance);
      std::lock_guard<std::mutex> lk(mu);
      ++checked;
      if (a.feasible == b.feasible &&
          (!a.feasible ||
           b.transitions == red.original_to_reduced(a.transitions))) {
        ++ok;
      }
    });
    table.row().add("thm7_multi_to_2interval").add(kTrials).add(checked).add(
        std::to_string(ok) + "/" + std::to_string(checked));
  }

  // Theorem 8: multi-interval -> 3-unit (+1 for the extra block).
  {
    int checked = 0, ok = 0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 733);
      Instance inst;
      inst.processors = 1;
      for (int j = 0; j < 3; ++j) {
        std::vector<Time> pts;
        const std::size_t k = 1 + rng.index(5);
        for (std::size_t i = 0; i < k; ++i) pts.push_back(rng.uniform(0, 12));
        inst.jobs.push_back(Job{TimeSet::points(pts)});
      }
      ThreeUnitReduction red = reduce_multi_to_three_unit(inst);
      const ExactGapResult a = brute_force_min_transitions(inst);
      const ExactGapResult b = brute_force_min_transitions(red.instance);
      std::lock_guard<std::mutex> lk(mu);
      ++checked;
      if (a.feasible == b.feasible &&
          (!a.feasible ||
           b.transitions == red.original_to_reduced(a.transitions))) {
        ++ok;
      }
    });
    table.row().add("thm8_multi_to_3unit").add(kTrials).add(checked).add(
        std::to_string(ok) + "/" + std::to_string(checked));
  }

  // Theorem 9 forward: two-unit -> disjoint-unit (within +-1).
  {
    int checked = 0, ok = 0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 1117);
      Instance inst = gen_unit_points(rng, 6, 14, 2);
      TwoUnitDisjointReduction red = reduce_two_unit_to_disjoint(inst);
      if (!red.feasible_input || red.instance.n() == 0) return;
      const ExactGapResult a =
          brute_force_min_transitions(red.compressed_source.instance);
      const ExactGapResult b = brute_force_min_transitions(red.instance);
      std::lock_guard<std::mutex> lk(mu);
      ++checked;
      if (a.feasible && b.feasible &&
          std::llabs(a.transitions - b.transitions) <= 1) {
        ++ok;
      }
    });
    table.row().add("thm9_2unit_to_disjoint").add(kTrials).add(checked).add(
        std::to_string(ok) + "/" + std::to_string(checked));
  }

  // Theorem 9 backward: disjoint-unit -> two-unit (within +-1).
  {
    int checked = 0, ok = 0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 1327);
      Instance inst;
      inst.processors = 1;
      Time t = 0;
      for (int j = 0; j < 4; ++j) {
        std::vector<Time> pts;
        const std::size_t k = 1 + rng.index(3);
        for (std::size_t i = 0; i < k; ++i) {
          t += 1 + rng.uniform(0, 3);
          pts.push_back(t);
        }
        inst.jobs.push_back(Job{TimeSet::points(pts)});
      }
      TwoUnitDisjointReduction red = reduce_disjoint_to_two_unit(inst);
      if (!red.feasible_input || red.instance.n() == 0) return;
      const ExactGapResult a =
          brute_force_min_transitions(red.compressed_source.instance);
      const ExactGapResult b = brute_force_min_transitions(red.instance);
      std::lock_guard<std::mutex> lk(mu);
      ++checked;
      if (a.feasible && b.feasible &&
          std::llabs(a.transitions - b.transitions) <= 1) {
        ++ok;
      }
    });
    table.row().add("thm9_disjoint_to_2unit").add(kTrials).add(checked).add(
        std::to_string(ok) + "/" + std::to_string(checked));
  }

  // Theorem 10: B-set cover -> disjoint-unit (exact equality).
  {
    int checked = 0, ok = 0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 1429);
      SetCoverInstance sc = gen_random_set_cover(rng, 5, 4, 3);
      const SetCoverResult cover = exact_set_cover(sc);
      if (!cover.coverable) return;
      DisjointUnitReduction red = reduce_setcover_to_disjoint_unit(sc);
      const ExactGapResult sched = brute_force_min_transitions(red.instance);
      std::lock_guard<std::mutex> lk(mu);
      ++checked;
      if (sched.feasible &&
          sched.transitions == DisjointUnitReduction::cover_to_transitions(
                                   cover.chosen.size())) {
        ++ok;
      }
    });
    table.row().add("thm10_setcover_to_disjoint").add(kTrials).add(checked).add(
        std::to_string(ok) + "/" + std::to_string(checked));
  }

  bench::emit(argv[0], table);
  return 0;
}

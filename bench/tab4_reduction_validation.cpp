// T4 — Theorems 4/6 reduction validation.
// Paper claim: set cover of size k <=> reduced instance schedulable with k
// gaps (k+1 transitions) <=> power (n+1) + alpha (k+1); hence gap/power
// scheduling inherit set cover's Omega(lg n) inapproximability.
// Protocol: random set-cover instances; solve the cover exactly, solve the
// reduced scheduling instance exactly, check the value maps; also drive the
// schedule from the greedy (ln n) cover and report its tracked ratio.
// Shape: 100% equality on both maps; greedy-driven schedules track the
// greedy cover's ratio exactly.

#include "bench_common.hpp"

#include <mutex>

#include "gapsched/exact/brute_force.hpp"
#include "gapsched/exact/power_brute_force.hpp"
#include "gapsched/reductions/setcover_to_powermin.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("T4 (Theorems 4/6: set cover <-> gaps/power)",
                "exact value correspondence on 100% of instances");

  struct Shape {
    const char* name;
    std::size_t universe, sets, max_size;
  };
  constexpr Shape kShapes[] = {
      {"u5_s4_b3", 5, 4, 3},
      {"u6_s5_b3", 6, 5, 3},
      {"u7_s5_b4", 7, 5, 4},
      {"u8_s6_b3", 8, 6, 3},
  };
  constexpr int kTrials = 25;

  Table table({"shape", "trials", "gap_map_ok", "power_map_ok",
               "extract_ok", "mean_cover", "mean_greedy_cover"});
  ThreadPool pool;
  std::mutex mu;

  for (const Shape& s : kShapes) {
    int gap_ok = 0, power_ok = 0, extract_ok = 0;
    double sum_cover = 0.0, sum_greedy = 0.0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 271 +
               static_cast<std::uint64_t>(&s - kShapes) * 13);
      SetCoverInstance sc =
          gen_random_set_cover(rng, s.universe, s.sets, s.max_size);
      const SetCoverResult exact = exact_set_cover(sc);
      const SetCoverResult greedy = greedy_set_cover(sc);
      if (!exact.coverable) return;

      SetCoverReduction red = reduce_setcover_to_powermin(sc);
      const ExactGapResult sched = brute_force_min_transitions(red.instance);
      const ExactPowerResult power =
          brute_force_min_power(red.instance, red.alpha);

      const bool gmap =
          sched.feasible &&
          sched.transitions ==
              SetCoverReduction::cover_to_transitions(exact.chosen.size());
      const bool pmap =
          power.feasible &&
          std::abs(power.power - red.cover_to_power(exact.chosen.size())) <
              1e-6;
      const auto extracted = red.cover_from_schedule(sched.schedule);
      const bool emap = is_valid_cover(sc, extracted) &&
                        extracted.size() == exact.chosen.size();

      std::lock_guard<std::mutex> lk(mu);
      if (gmap) ++gap_ok;
      if (pmap) ++power_ok;
      if (emap) ++extract_ok;
      sum_cover += static_cast<double>(exact.chosen.size());
      sum_greedy += static_cast<double>(greedy.chosen.size());
    });
    table.row()
        .add(s.name)
        .add(kTrials)
        .add(std::to_string(gap_ok) + "/" + std::to_string(kTrials))
        .add(std::to_string(power_ok) + "/" + std::to_string(kTrials))
        .add(std::to_string(extract_ok) + "/" + std::to_string(kTrials))
        .add(sum_cover / kTrials, 2)
        .add(sum_greedy / kTrials, 2);
  }
  bench::emit(argv[0], table);
  return 0;
}

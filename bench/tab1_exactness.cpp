// T1 — Theorems 1 & 2 exactness.
// Paper claim: the dynamic program solves multiprocessor gap scheduling and
// power minimization optimally in polynomial time.
// Protocol: random instances across families and processor counts; the DP
// must match the independent brute-force subset DP on every instance (both
// objectives), and its schedules must be valid and achieve the claimed cost.

#include "bench_common.hpp"

#include <atomic>

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/exact/brute_force.hpp"
#include "gapsched/exact/power_brute_force.hpp"
#include "gapsched/gen/generators.hpp"

using namespace gapsched;

namespace {

struct Family {
  const char* name;
  std::size_t n;
  Time horizon;
  Time window;
  int processors;
  bool feasible_family;
};

constexpr Family kFamilies[] = {
    {"uniform_p1", 7, 10, 4, 1, false}, {"uniform_p2", 7, 9, 4, 2, false},
    {"uniform_p3", 6, 8, 3, 3, false},  {"anchored_p1", 8, 14, 3, 1, true},
    {"anchored_p2", 8, 10, 3, 2, true}, {"anchored_p3", 7, 8, 2, 3, true},
    {"tight_p1", 8, 8, 2, 1, false},    {"tight_p2", 9, 7, 2, 2, false},
};

constexpr int kTrials = 60;

}  // namespace

int main(int, char** argv) {
  bench::banner("T1 (exactness of Theorems 1-2)",
                "DP == brute force on 100% of instances, both objectives");

  Table table({"family", "n", "p", "trials", "feasible", "gap_agree",
               "power_agree", "sched_valid"});
  ThreadPool pool;

  for (const Family& f : kFamilies) {
    std::atomic<int> feasible{0}, gap_agree{0}, power_agree{0}, valid{0};
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 1009 +
               static_cast<std::uint64_t>(&f - kFamilies) * 77);
      Instance inst =
          f.feasible_family
              ? gen_feasible_one_interval(rng, f.n, f.horizon, f.window,
                                          f.processors)
              : gen_uniform_one_interval(rng, f.n, f.horizon, f.window,
                                         f.processors);
      const double alpha = 0.5 * static_cast<double>(1 + rng.index(8));

      const ExactGapResult bf = brute_force_min_transitions(inst);
      const GapDpResult dp = solve_gap_dp(inst);
      const ExactPowerResult pbf = brute_force_min_power(inst, alpha);
      const PowerDpResult pdp = solve_power_dp(inst, alpha);

      if (bf.feasible) feasible.fetch_add(1);
      if (bf.feasible == dp.feasible &&
          (!bf.feasible || bf.transitions == dp.transitions)) {
        gap_agree.fetch_add(1);
      }
      if (pbf.feasible == pdp.feasible &&
          (!pbf.feasible || std::abs(pbf.power - pdp.power) < 1e-9)) {
        power_agree.fetch_add(1);
      }
      if (!bf.feasible ||
          (dp.schedule.validate(inst).empty() &&
           dp.schedule.profile().transitions() == dp.transitions &&
           pdp.schedule.validate(inst).empty())) {
        valid.fetch_add(1);
      }
    });
    table.row()
        .add(f.name)
        .add(f.n)
        .add(f.processors)
        .add(kTrials)
        .add(feasible.load())
        .add(std::to_string(gap_agree.load()) + "/" + std::to_string(kTrials))
        .add(std::to_string(power_agree.load()) + "/" +
             std::to_string(kTrials))
        .add(std::to_string(valid.load()) + "/" + std::to_string(kTrials));
  }
  bench::emit(argv[0], table);
  return 0;
}

#pragma once
// Machine-readable benchmark baselines: a minimal ordered JSON value plus a
// writer that drops BENCH_<tag>.json next to the running binary's CWD. The
// T7/T8/T9 experiment binaries emit one file each so CI can archive the
// perf trajectory (per-family wall times, component counts, audit tallies)
// without scraping the human-oriented tables.
//
// Deliberately tiny: objects keep insertion order, numbers are either exact
// 64-bit integers or shortest-round-trip doubles, and NaN/inf — which JSON
// cannot spell — degrade to null so a family that never ran stays readable
// downstream.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace gapsched::bench {

class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double d) : kind_(Kind::kDouble), double_(d) {}
  Json(int i) : kind_(Kind::kInt), int_(i) {}
  Json(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  Json(std::size_t u) : kind_(Kind::kInt), int_(static_cast<std::int64_t>(u)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  /// Appends a key to an object; keys are emitted in insertion order.
  Json& set(std::string key, Json value) {
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Appends an element to an array.
  Json& push(Json value) {
    elements_.push_back(std::move(value));
    return *this;
  }

  std::string dump(int indent = 2) const {
    std::string out;
    write(out, indent, 0);
    return out;
  }

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  static void escape(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  void write(std::string& out, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
    const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
    switch (kind_) {
      case Kind::kNull:
        out += "null";
        return;
      case Kind::kBool:
        out += bool_ ? "true" : "false";
        return;
      case Kind::kInt:
        out += std::to_string(int_);
        return;
      case Kind::kDouble: {
        if (!std::isfinite(double_)) {
          out += "null";  // JSON has no NaN/inf
          return;
        }
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", double_);
        // Prefer the shortest representation that round-trips.
        for (int prec = 1; prec < 17; ++prec) {
          char probe[32];
          std::snprintf(probe, sizeof probe, "%.*g", prec, double_);
          double back = 0.0;
          std::sscanf(probe, "%lf", &back);
          if (back == double_) {
            out += probe;
            return;
          }
        }
        out += buf;
        return;
      }
      case Kind::kString:
        escape(out, string_);
        return;
      case Kind::kArray: {
        if (elements_.empty()) {
          out += "[]";
          return;
        }
        out += "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          out += pad;
          elements_[i].write(out, indent, depth + 1);
          if (i + 1 < elements_.size()) out += ',';
          out += '\n';
        }
        out += close_pad + "]";
        return;
      }
      case Kind::kObject: {
        if (members_.empty()) {
          out += "{}";
          return;
        }
        out += "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          out += pad;
          escape(out, members_[i].first);
          out += ": ";
          members_[i].second.write(out, indent, depth + 1);
          if (i + 1 < members_.size()) out += ',';
          out += '\n';
        }
        out += close_pad + "}";
        return;
      }
    }
  }

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> elements_;                          // kArray
  std::vector<std::pair<std::string, Json>> members_;   // kObject
};

/// Writes `root` as BENCH_<tag>.json in the current directory and echoes
/// the path (mirrors the CSV drop of bench::emit).
inline void emit_json(const std::string& tag, const Json& root) {
  const std::string path = "BENCH_" + tag + ".json";
  std::ofstream os(path);
  os << root.dump() << "\n";
  if (os) {
    std::cout << "[json] " << path << "\n";
  } else {
    std::cerr << "[json] failed to write " << path << "\n";
  }
}

}  // namespace gapsched::bench

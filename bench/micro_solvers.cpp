// Microbenchmarks of the library's hot paths, emitting the machine-readable
// bench/baselines/BENCH_micro.json (schema gapsched-bench-micro/v1) via
// json_report.hpp so CI can diff per-solver ns/op and memo statistics
// between commits.
//
// The DP section A/Bs the Theorem 1/2 execution layer on fixed-seed dense
// scenarios:
//   baseline  hash memo + pruning off  (the pre-arena inner loop)
//   tuned     auto layout + pruning    (the engine's production config)
//   parallel  tuned + dp_pool()        (intra-component candidate scan)
// Every tuned answer is audited by the independent oracle and cross-checked
// against the baseline and the parallel run; any refutation makes the
// binary exit non-zero so the CI micro-bench lane fails loudly instead of
// archiving corrupt numbers.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gapsched/baptiste/baptiste.hpp"
#include "gapsched/core/candidate_times.hpp"
#include "gapsched/dp/dp_stats.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/greedy/fhkn_greedy.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "gapsched/oracle/oracle.hpp"
#include "gapsched/parallel/thread_pool.hpp"
#include "gapsched/powermin/powermin_approx.hpp"
#include "json_report.hpp"

namespace {

using namespace gapsched;

double g_target_ms = 60.0;  // per-sample budget; --min-time-ms overrides
int g_refutations = 0;

void refute(const std::string& what) {
  std::fprintf(stderr, "[REFUTED] %s\n", what.c_str());
  ++g_refutations;
}

/// Median-of-3-samples ns per call of `fn`; each sample repeats `fn` often
/// enough to fill the per-sample budget.
template <class Fn>
double time_ns(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warmup / first-touch
  auto once = clock::now();
  fn();
  double est_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - once)
          .count());
  if (est_ns < 1.0) est_ns = 1.0;
  const double budget_ns = g_target_ms * 1e6;
  std::size_t reps = static_cast<std::size_t>(budget_ns / est_ns);
  if (reps < 1) reps = 1;
  if (reps > 1000000) reps = 1000000;
  double best = 0.0;
  for (int sample = 0; sample < 3; ++sample) {
    const auto t0 = clock::now();
    for (std::size_t r = 0; r < reps; ++r) fn();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - t0)
            .count());
    const double per_op = ns / static_cast<double>(reps);
    if (sample == 0 || per_op < best) best = per_op;
  }
  return best;
}

Instance make_dense(std::size_t n, int p) {
  Prng rng(12345 + static_cast<std::uint64_t>(n) * 31 +
           static_cast<std::uint64_t>(p));
  return gen_feasible_one_interval(rng, n, 2 * static_cast<Time>(n), 3, p);
}

/// A pinned chain [j, j] x n: instances past the old n <= 255 packed-key
/// limit that the PR-5 engine rejected outright; the optimum is one
/// unbroken span.
Instance make_pinned_chain(std::size_t n) {
  std::vector<std::pair<Time, Time>> windows;
  windows.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    windows.emplace_back(static_cast<Time>(j), static_cast<Time>(j));
  }
  return Instance::one_interval(windows);
}

const char* layout_name(dp::MemoLayout layout) {
  switch (layout) {
    case dp::MemoLayout::kHash: return "hash";
    case dp::MemoLayout::kArena: return "arena";
    default: return "auto";
  }
}

bench::Json memo_json(const dp::MemoStats& m) {
  bench::Json j = bench::Json::object();
  j.set("layout", layout_name(m.layout));
  j.set("entries", m.entries);
  j.set("box_volume", static_cast<std::int64_t>(m.box_volume));
  j.set("find_calls", static_cast<std::int64_t>(m.find_calls));
  j.set("probe_steps", static_cast<std::int64_t>(m.probe_steps));
  j.set("pruned", static_cast<std::int64_t>(m.pruned));
  j.set("parallel", m.parallel);
  return j;
}

struct DpScenario {
  std::string name;
  bool power = false;
  double alpha = 2.0;
  Instance inst;
};

/// True when the seed (PR-5) engine's 64-bit packed keys rejected this
/// instance (n > 255 or |Theta| >= 2^16 or p > 255).
bool pr5_rejected(const Instance& inst) {
  if (inst.n() > 255 || inst.processors > 255) return true;
  return candidate_times(inst, /*plus_one_closure=*/true).size() >=
         (std::size_t{1} << 16);
}

bench::Json run_dp_scenario(const DpScenario& sc) {
  const dp::DpOptions baseline_opts{.layout = dp::MemoLayout::kHash,
                                    .prune = false};
  const dp::DpOptions tuned_opts{};  // auto layout + pruning (production)
  dp::DpOptions parallel_opts;
  parallel_opts.pool = &dp::dp_pool();
  parallel_opts.parallel_min_box = 0;

  bench::Json row = bench::Json::object();
  row.set("name", sc.name);
  row.set("objective", sc.power ? "power" : "gap");
  row.set("n", sc.inst.n());
  row.set("p", sc.inst.processors);
  if (sc.power) row.set("alpha", sc.alpha);
  const bool legacy_reject = pr5_rejected(sc.inst);
  row.set("pr5_rejected", legacy_reject);

  double base_ns = 0.0, tuned_ns = 0.0, par_ns = 0.0;
  if (sc.power) {
    const PowerDpResult base = solve_power_dp(sc.inst, sc.alpha, baseline_opts);
    const PowerDpResult tuned = solve_power_dp(sc.inst, sc.alpha, tuned_opts);
    const PowerDpResult par = solve_power_dp(sc.inst, sc.alpha, parallel_opts);
    if (!tuned.error.empty()) refute(sc.name + ": tuned solve rejected");
    if (base.feasible != tuned.feasible ||
        (tuned.feasible &&
         std::abs(base.power - tuned.power) >
             1e-9 * (1.0 + std::abs(tuned.power)))) {
      refute(sc.name + ": baseline/tuned power mismatch");
    }
    if (par.feasible != tuned.feasible ||
        (tuned.feasible && par.power != tuned.power)) {
      refute(sc.name + ": parallel power not bit-identical");
    }
    if (tuned.feasible) {
      const oracle::ScheduleAudit audit =
          oracle::audit_schedule(sc.inst, tuned.schedule);
      if (!audit.valid || !audit.complete) {
        refute(sc.name + ": oracle rejected tuned schedule: " +
               audit.violation_summary());
      } else {
        const double floor = oracle::min_power(audit, sc.alpha);
        if (std::abs(tuned.power - floor) > 1e-6 * (1.0 + std::abs(floor))) {
          refute(sc.name + ": tuned power != oracle min_power");
        }
      }
    }
    base_ns = time_ns([&] { solve_power_dp(sc.inst, sc.alpha, baseline_opts); });
    tuned_ns = time_ns([&] { solve_power_dp(sc.inst, sc.alpha, tuned_opts); });
    par_ns = time_ns([&] { solve_power_dp(sc.inst, sc.alpha, parallel_opts); });
    bench::Json base_j = bench::Json::object();
    base_j.set("ns_op", base_ns).set("memo", memo_json(base.memo));
    bench::Json tuned_j = bench::Json::object();
    tuned_j.set("ns_op", tuned_ns).set("memo", memo_json(tuned.memo));
    bench::Json par_j = bench::Json::object();
    par_j.set("ns_op", par_ns)
        .set("threads", dp::dp_pool().thread_count())
        .set("memo", memo_json(par.memo));
    row.set("baseline", std::move(base_j));
    row.set("tuned", std::move(tuned_j));
    row.set("parallel", std::move(par_j));
    row.set("feasible", tuned.feasible);
    row.set("states", tuned.states);
  } else {
    const GapDpResult base = solve_gap_dp(sc.inst, baseline_opts);
    const GapDpResult tuned = solve_gap_dp(sc.inst, tuned_opts);
    const GapDpResult par = solve_gap_dp(sc.inst, parallel_opts);
    if (!tuned.error.empty()) refute(sc.name + ": tuned solve rejected");
    if (base.feasible != tuned.feasible ||
        (tuned.feasible && base.transitions != tuned.transitions)) {
      refute(sc.name + ": baseline/tuned transitions mismatch");
    }
    if (par.feasible != tuned.feasible ||
        (tuned.feasible && par.transitions != tuned.transitions)) {
      refute(sc.name + ": parallel transitions not bit-identical");
    }
    if (tuned.feasible) {
      const oracle::ScheduleAudit audit =
          oracle::audit_schedule(sc.inst, tuned.schedule);
      if (!audit.valid || !audit.complete) {
        refute(sc.name + ": oracle rejected tuned schedule: " +
               audit.violation_summary());
      } else if (audit.transitions != tuned.transitions) {
        refute(sc.name + ": tuned transitions != oracle rederivation");
      }
    }
    base_ns = time_ns([&] { solve_gap_dp(sc.inst, baseline_opts); });
    tuned_ns = time_ns([&] { solve_gap_dp(sc.inst, tuned_opts); });
    par_ns = time_ns([&] { solve_gap_dp(sc.inst, parallel_opts); });
    bench::Json base_j = bench::Json::object();
    base_j.set("ns_op", base_ns).set("memo", memo_json(base.memo));
    bench::Json tuned_j = bench::Json::object();
    tuned_j.set("ns_op", tuned_ns).set("memo", memo_json(tuned.memo));
    bench::Json par_j = bench::Json::object();
    par_j.set("ns_op", par_ns)
        .set("threads", dp::dp_pool().thread_count())
        .set("memo", memo_json(par.memo));
    row.set("baseline", std::move(base_j));
    row.set("tuned", std::move(tuned_j));
    row.set("parallel", std::move(par_j));
    row.set("feasible", tuned.feasible);
    row.set("states", tuned.states);
  }
  row.set("speedup_tuned_vs_baseline",
          tuned_ns > 0.0 ? base_ns / tuned_ns : 0.0);
  row.set("speedup_parallel_vs_baseline",
          par_ns > 0.0 ? base_ns / par_ns : 0.0);
  std::printf("%-28s baseline %12.0f ns  tuned %12.0f ns  (%.2fx)  parallel "
              "%12.0f ns  (%.2fx)\n",
              sc.name.c_str(), base_ns, tuned_ns,
              tuned_ns > 0.0 ? base_ns / tuned_ns : 0.0, par_ns,
              par_ns > 0.0 ? base_ns / par_ns : 0.0);
  return row;
}

bench::Json solver_row(const std::string& name, double ns) {
  bench::Json row = bench::Json::object();
  row.set("name", name);
  row.set("ns_op", ns);
  std::printf("%-28s %12.0f ns\n", name.c_str(), ns);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--min-time-ms=", 14) == 0) {
      g_target_ms = std::atof(argv[a] + 14);
      if (g_target_ms <= 0.0) g_target_ms = 60.0;
    }
  }

  // Dense one-cluster DP scenarios: tight horizons keep every window
  // overlapping, so prep could not decompose these — they exercise exactly
  // the monolithic inner loop the arena + pruning target.
  std::vector<DpScenario> scenarios;
  scenarios.push_back({"gap_dense_n12_p1", false, 0.0, make_dense(12, 1)});
  scenarios.push_back({"gap_dense_n14_p1", false, 0.0, make_dense(14, 1)});
  scenarios.push_back({"gap_dense_n12_p2", false, 0.0, make_dense(12, 2)});
  scenarios.push_back({"gap_dense_n10_p4", false, 0.0, make_dense(10, 4)});
  scenarios.push_back({"power_dense_n10_p1", true, 2.0, make_dense(10, 1)});
  scenarios.push_back({"power_dense_n12_p1", true, 2.0, make_dense(12, 1)});
  scenarios.push_back({"power_dense_n8_p2", true, 2.0, make_dense(8, 2)});
  scenarios.push_back({"power_dense_n10_p2", true, 2.0, make_dense(10, 2)});
  scenarios.push_back({"power_dense_n8_p4", true, 2.0, make_dense(8, 4)});
  // Past the seed engine's n <= 255 limit: PR-5 rejected this outright.
  scenarios.push_back({"gap_chain_n300", false, 0.0, make_pinned_chain(300)});

  bench::Json dp_rows = bench::Json::array();
  for (const DpScenario& sc : scenarios) dp_rows.push(run_dp_scenario(sc));

  // Per-solver single-config timings (continuity with the older harness).
  bench::Json solver_rows = bench::Json::array();
  {
    Prng rng(777);
    Instance feas = gen_uniform_one_interval(rng, 64, 192, 6, 1);
    solver_rows.push(
        solver_row("feasibility_oracle_n64", time_ns([&] { is_feasible(feas); })));
    Instance greedy_inst = make_dense(20, 1);
    solver_rows.push(solver_row("fhkn_greedy_n20",
                                time_ns([&] { fhkn_greedy(greedy_inst); })));
    solver_rows.push(solver_row(
        "baptiste_n12", time_ns([&] { solve_baptiste(make_dense(12, 1)); })));
    Prng mrng(999);
    Instance multi = gen_multi_interval(mrng, 16, 48, 2, 2);
    solver_rows.push(solver_row(
        "powermin_approx_n16", time_ns([&] { powermin_approx(multi, 2.0); })));
    engine::Engine eng({.cache = false});
    engine::SolveRequest req;
    req.instance = make_dense(10, 1);
    req.objective = engine::Objective::kGaps;
    solver_rows.push(solver_row("engine_dispatch_gap_dp_n10",
                                time_ns([&] { eng.solve("gap_dp", req); })));
  }

  bench::Json root = bench::Json::object();
  root.set("schema", "gapsched-bench-micro/v1");
  root.set("target_ms_per_sample", g_target_ms);
  root.set("dp", std::move(dp_rows));
  root.set("solvers", std::move(solver_rows));
  root.set("refutations", g_refutations);
  bench::emit_json("micro", root);

  if (g_refutations > 0) {
    std::fprintf(stderr, "%d refutation(s); failing.\n", g_refutations);
    return 1;
  }
  return 0;
}

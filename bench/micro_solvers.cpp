// Google-benchmark microbenchmarks of the library's hot paths: the Theorem
// 1/2 dynamic programs, the matching feasibility oracle, and the Theorem 3
// pipeline. Complements the table-emitting experiment binaries with
// statistically robust per-call timings.

#include <benchmark/benchmark.h>

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/greedy/fhkn_greedy.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "gapsched/powermin/powermin_approx.hpp"

namespace {

using namespace gapsched;

Instance make_instance(std::int64_t n, int p) {
  Prng rng(12345 + static_cast<std::uint64_t>(n) * 31 +
           static_cast<std::uint64_t>(p));
  return gen_feasible_one_interval(rng, static_cast<std::size_t>(n),
                                   2 * static_cast<Time>(n), 3, p);
}

void BM_GapDp(benchmark::State& state) {
  Instance inst = make_instance(state.range(0), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_gap_dp(inst));
  }
}
BENCHMARK(BM_GapDp)
    ->Args({6, 1})
    ->Args({10, 1})
    ->Args({14, 1})
    ->Args({6, 2})
    ->Args({10, 2})
    ->Args({6, 4})
    ->Unit(benchmark::kMillisecond);

void BM_PowerDp(benchmark::State& state) {
  Instance inst = make_instance(state.range(0), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_power_dp(inst, 2.0));
  }
}
BENCHMARK(BM_PowerDp)
    ->Args({6, 1})
    ->Args({10, 1})
    ->Args({6, 2})
    ->Unit(benchmark::kMillisecond);

void BM_FeasibilityOracle(benchmark::State& state) {
  Prng rng(777);
  Instance inst = gen_uniform_one_interval(
      rng, static_cast<std::size_t>(state.range(0)), 3 * state.range(0), 6, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_feasible(inst));
  }
}
BENCHMARK(BM_FeasibilityOracle)->Arg(16)->Arg(64)->Arg(256);

void BM_FhknGreedy(benchmark::State& state) {
  Instance inst = make_instance(state.range(0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fhkn_greedy(inst));
  }
}
BENCHMARK(BM_FhknGreedy)->Arg(10)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_PowerMinApprox(benchmark::State& state) {
  Prng rng(999);
  Instance inst = gen_multi_interval(
      rng, static_cast<std::size_t>(state.range(0)), 3 * state.range(0), 2, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(powermin_approx(inst, 2.0));
  }
}
BENCHMARK(BM_PowerMinApprox)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

// Google-benchmark microbenchmarks of the library's hot paths: the Theorem
// 1/2 dynamic programs (and their packed-key memo table), the matching
// feasibility oracle, the Theorem 3 pipeline, and the engine layer's
// dispatch/batching overhead. Complements the table-emitting experiment
// binaries with statistically robust per-call timings.

#include <benchmark/benchmark.h>

#include "gapsched/dp/dp_common.hpp"
#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/greedy/fhkn_greedy.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "gapsched/powermin/powermin_approx.hpp"

namespace {

using namespace gapsched;

Instance make_instance(std::int64_t n, int p) {
  Prng rng(12345 + static_cast<std::uint64_t>(n) * 31 +
           static_cast<std::uint64_t>(p));
  return gen_feasible_one_interval(rng, static_cast<std::size_t>(n),
                                   2 * static_cast<Time>(n), 3, p);
}

void BM_GapDp(benchmark::State& state) {
  Instance inst = make_instance(state.range(0), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_gap_dp(inst));
  }
}
BENCHMARK(BM_GapDp)
    ->Args({6, 1})
    ->Args({10, 1})
    ->Args({14, 1})
    ->Args({6, 2})
    ->Args({10, 2})
    ->Args({6, 4})
    ->Unit(benchmark::kMillisecond);

void BM_PowerDp(benchmark::State& state) {
  Instance inst = make_instance(state.range(0), static_cast<int>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_power_dp(inst, 2.0));
  }
}
BENCHMARK(BM_PowerDp)
    ->Args({6, 1})
    ->Args({10, 1})
    ->Args({6, 2})
    ->Unit(benchmark::kMillisecond);

void BM_FeasibilityOracle(benchmark::State& state) {
  Prng rng(777);
  Instance inst = gen_uniform_one_interval(
      rng, static_cast<std::size_t>(state.range(0)), 3 * state.range(0), 6, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(is_feasible(inst));
  }
}
BENCHMARK(BM_FeasibilityOracle)->Arg(16)->Arg(64)->Arg(256);

void BM_FhknGreedy(benchmark::State& state) {
  Instance inst = make_instance(state.range(0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fhkn_greedy(inst));
  }
}
BENCHMARK(BM_FhknGreedy)->Arg(10)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_PowerMinApprox(benchmark::State& state) {
  Prng rng(999);
  Instance inst = gen_multi_interval(
      rng, static_cast<std::size_t>(state.range(0)), 3 * state.range(0), 2, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(powermin_approx(inst, 2.0));
  }
}
BENCHMARK(BM_PowerMinApprox)->Arg(8)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// The DP memo table in isolation: insert + re-find of pack_state-shaped
// keys (the per-state cost the packed-key layout optimizes).
void BM_DpMemoTable(benchmark::State& state) {
  Prng key_rng(31337);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < state.range(0); ++i) {
    keys.push_back(dp::pack_state(key_rng.index(200), key_rng.index(200),
                                  key_rng.index(30),
                                  static_cast<int>(key_rng.index(3)),
                                  static_cast<int>(key_rng.index(4)),
                                  static_cast<int>(key_rng.index(4))));
  }
  for (auto _ : state) {
    dp::MemoTable<std::int64_t> table;
    for (std::uint64_t key : keys) {
      if (table.find(key) == nullptr) table.insert(key, 1, {});
    }
    std::int64_t sum = 0;
    for (std::uint64_t key : keys) sum += table.find(key)->value;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DpMemoTable)->Arg(1000)->Arg(10000);

// Engine dispatch overhead: the same gap DP solve through the registry
// (request validation + virtual hop + stats plumbing) vs BM_GapDp above.
void BM_EngineDispatch(benchmark::State& state) {
  engine::Engine eng({.cache = false});
  engine::SolveRequest request;
  request.instance = make_instance(state.range(0), 1);
  request.objective = engine::Objective::kGaps;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.solve("gap_dp", request));
  }
}
BENCHMARK(BM_EngineDispatch)->Arg(6)->Arg(10)->Arg(14)->Unit(benchmark::kMillisecond);

// Batched driver throughput: a mixed shootout batch fanned over the
// engine's persistent worker pool (cache off: every rep re-solves).
void BM_SolveBatch(benchmark::State& state) {
  std::vector<engine::BatchJob> jobs;
  for (int i = 0; i < state.range(0); ++i) {
    engine::BatchJob job;
    job.solver = (i % 2 == 0) ? "gap_dp" : "baptiste";
    job.request.instance = make_instance(10, 1);
    job.request.objective = engine::Objective::kGaps;
    jobs.push_back(std::move(job));
  }
  engine::Engine eng({.cache = false});
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng.solve_batch(jobs));
  }
}
BENCHMARK(BM_SolveBatch)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

// T7 — exact-solver shootout (methodology table).
// Not a paper claim but the reproduction's measurement backbone: three
// independent exact solvers (the Theorem 1 DP, the subset-DP brute force,
// and the iterative-deepening span search) must agree while scaling very
// differently. This table documents the agreement and the practical size
// frontier of each, justifying which solver anchors which experiment.
//
// All solvers are reached through a persistent engine::Engine and fanned
// out with its batched driver (solve cache off — every trial is a distinct
// instance and the timings must stay comparable across commits); per-trial
// wall times come back in SolveResult::stats, so no hand-rolled
// stopwatch/mutex plumbing remains.
// Every request carries params.validate, so each returned schedule is also
// re-checked by the independent oracle; the table reports the audit tally,
// the per-row numbers land in BENCH_tab7.json, and either a refuted audit
// or exact-solver disagreement makes the binary exit non-zero (the CI
// benchmark lane's correctness gate — every family here is exact).

#include "bench_common.hpp"
#include "json_report.hpp"

#include <limits>

#include "gapsched/engine/engine.hpp"
#include "gapsched/gen/generators.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("T7 (exact solver shootout)",
                "three independent exact solvers agree; different scaling");

  constexpr int kTrials = 12;
  const char* kSolvers[] = {"gap_dp", "brute_force", "span_search"};
  Table table({"n", "family", "agree", "oracle", "dp_ms", "brute_ms",
               "span_ms"});
  bench::Json report = bench::Json::object();
  report.set("bench", "tab7_exact_solver_shootout")
      .set("seed", bench::kSeed)
      .set("trials", kTrials);
  bench::Json json_rows = bench::Json::array();
  int refuted = 0;
  int disagreements = 0;
  engine::Engine eng({.cache = false});

  struct Row {
    std::size_t n;
    const char* family;
    bool one_interval;
  };
  const Row rows[] = {
      {6, "one_interval", true},  {10, "one_interval", true},
      {14, "one_interval", true}, {6, "two_interval", false},
      {10, "two_interval", false}, {14, "two_interval", false},
  };

  for (const Row& row : rows) {
    std::vector<engine::SolveRequest> requests(kTrials);
    for (int trial = 0; trial < kTrials; ++trial) {
      Prng rng(bench::kSeed + static_cast<std::uint64_t>(trial) * 557 + row.n);
      requests[trial].instance =
          row.one_interval
              ? gen_feasible_one_interval(rng, row.n,
                                          static_cast<Time>(2 * row.n), 3, 1)
              : gen_multi_interval(rng, row.n,
                                   static_cast<Time>(3 * row.n), 2, 2);
      requests[trial].params.validate = true;
    }

    // One batched dispatch per solver; results come back trial-ordered.
    std::vector<std::vector<engine::SolveResult>> results;
    for (const char* name : kSolvers) {
      std::vector<engine::BatchJob> batch(kTrials);
      for (int trial = 0; trial < kTrials; ++trial) {
        batch[trial] = {name, requests[trial]};
      }
      results.push_back(eng.solve_batch(batch));
    }

    int agree = 0;
    int audits = 0, audit_passes = 0;
    double dp_ms = 0.0, bf_ms = 0.0, ss_ms = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const engine::SolveResult& dp = results[0][trial];
      const engine::SolveResult& bf = results[1][trial];
      const engine::SolveResult& ss = results[2][trial];
      // The Theorem 1 DP rejects multi-interval instances at dispatch
      // (expected, encoded as -1); a rejection from a reference solver
      // means the row outgrew its envelope and must not be read as mere
      // infeasibility — flag it loudly instead.
      const std::int64_t v_dp =
          dp.ok ? (dp.feasible ? dp.transitions : -2) : -1;
      const std::int64_t v_bf =
          bf.ok ? (bf.feasible ? bf.transitions : -2) : -3;
      const std::int64_t v_ss =
          ss.ok ? (ss.feasible ? ss.transitions : -2) : -4;
      if (!bf.ok || !ss.ok) {
        std::cerr << "T7: reference solver rejected n=" << row.n
                  << " trial " << trial << ": "
                  << (bf.ok ? ss.error : bf.error) << "\n";
      }
      if (v_bf == v_ss && (!row.one_interval || v_dp == v_bf)) ++agree;
      for (const engine::SolveResult* r : {&dp, &bf, &ss}) {
        if (!r->audited) continue;
        ++audits;
        if (r->audit_error.empty()) {
          ++audit_passes;
        } else {
          ++refuted;
          std::cerr << "T7: oracle refuted a result on n=" << row.n
                    << " trial " << trial << ": " << r->audit_error << "\n";
        }
      }
      if (dp.ok) dp_ms += dp.stats.wall_ms;
      bf_ms += bf.stats.wall_ms;
      ss_ms += ss.stats.wall_ms;
    }
    disagreements += kTrials - agree;
    table.row()
        .add(row.n)
        .add(row.family)
        .add(std::to_string(agree) + "/" + std::to_string(kTrials))
        .add(std::to_string(audit_passes) + "/" + std::to_string(audits))
        .add(row.one_interval ? dp_ms / kTrials : -1.0, 2)
        .add(bf_ms / kTrials, 2)
        .add(ss_ms / kTrials, 2);
    json_rows.push(
        bench::Json::object()
            .set("n", row.n)
            .set("family", row.family)
            .set("agree", agree)
            .set("audits", audits)
            .set("audit_passes", audit_passes)
            .set("dp_ms_mean",
                 row.one_interval ? dp_ms / kTrials
                                  : std::numeric_limits<double>::quiet_NaN())
            .set("brute_ms_mean", bf_ms / kTrials)
            .set("span_ms_mean", ss_ms / kTrials));
  }
  bench::emit(argv[0], table);
  report.set("rows", std::move(json_rows))
      .set("refuted_exact", refuted)
      .set("disagreements", disagreements);
  bench::emit_json("tab7", report);
  // CI gate: both an oracle-refuted answer and disagreement between the
  // independent exact solvers (the optimality cross-check an internally
  // consistent but suboptimal answer would slip past) are solver bugs.
  return refuted == 0 && disagreements == 0 ? 0 : 1;
}

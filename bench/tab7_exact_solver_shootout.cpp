// T7 — exact-solver shootout (methodology table).
// Not a paper claim but the reproduction's measurement backbone: three
// independent exact solvers (the Theorem 1 DP, the subset-DP brute force,
// and the iterative-deepening span search) must agree while scaling very
// differently. This table documents the agreement and the practical size
// frontier of each, justifying which solver anchors which experiment.

#include "bench_common.hpp"

#include <mutex>

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/exact/brute_force.hpp"
#include "gapsched/exact/span_search.hpp"
#include "gapsched/gen/generators.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("T7 (exact solver shootout)",
                "three independent exact solvers agree; different scaling");

  constexpr int kTrials = 12;
  Table table({"n", "family", "agree", "dp_ms", "brute_ms", "span_ms"});
  ThreadPool pool;
  std::mutex mu;

  struct Row {
    std::size_t n;
    const char* family;
    bool one_interval;
  };
  const Row rows[] = {
      {6, "one_interval", true},  {10, "one_interval", true},
      {14, "one_interval", true}, {6, "two_interval", false},
      {10, "two_interval", false}, {14, "two_interval", false},
  };

  for (const Row& row : rows) {
    int agree = 0, used = 0;
    double dp_ms = 0.0, bf_ms = 0.0, ss_ms = 0.0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 557 + row.n);
      Instance inst =
          row.one_interval
              ? gen_feasible_one_interval(rng, row.n,
                                          static_cast<Time>(2 * row.n), 3, 1)
              : gen_multi_interval(rng, row.n,
                                   static_cast<Time>(3 * row.n), 2, 2);
      double t_dp = -1.0;
      std::int64_t v_dp = -1;
      if (row.one_interval) {
        Stopwatch sw;
        const GapDpResult dp = solve_gap_dp(inst);
        t_dp = sw.millis();
        v_dp = dp.feasible ? dp.transitions : -2;
      }
      Stopwatch sw1;
      const ExactGapResult bf = brute_force_min_transitions(inst);
      const double t_bf = sw1.millis();
      Stopwatch sw2;
      const SpanSearchResult ss = span_search_min_transitions(inst);
      const double t_ss = sw2.millis();

      const std::int64_t v_bf = bf.feasible ? bf.transitions : -2;
      const std::int64_t v_ss = ss.feasible ? ss.transitions : -2;
      std::lock_guard<std::mutex> lk(mu);
      ++used;
      dp_ms += std::max(0.0, t_dp);
      bf_ms += t_bf;
      ss_ms += t_ss;
      if (v_bf == v_ss && (!row.one_interval || v_dp == v_bf)) ++agree;
    });
    table.row()
        .add(row.n)
        .add(row.family)
        .add(std::to_string(agree) + "/" + std::to_string(used))
        .add(row.one_interval ? dp_ms / used : -1.0, 2)
        .add(bf_ms / used, 2)
        .add(ss_ms / used, 2);
  }
  bench::emit(argv[0], table);
  return 0;
}

// T10 — polynomial bcd solvers vs the exponential window DPs: the
// crossover study backing the [BCD07] solver family.
//
// Section 1 (crossover, in-range): the poly_wide:<n> wide-window chains at
// n = 8..20 are inside every solver's envelope, so both families answer and
// must agree exactly (transitions equal, power within fp tolerance) — the
// differential gate — while the wall-time ratio shows the window DPs'
// per-slot candidate axis blowing up hundreds of times faster than the bcd
// segment frontiers. The crossover is not a distant asymptote: it sits
// below n = 8 on this shape.
//
// Section 2 (beyond the envelope): poly_scale / poly_wide at n = 100, 500,
// 2000, bcd-only with full oracle audits (the engine holds the power family
// to cost == oracle::min_power of its own schedule) plus the
// cross-objective sandwich n + a <= power <= n + a*B_gap. The window DPs
// are probed once, on poly_wide:2000, where they must REJECT: that draw is
// one connected usable run of ~1.2M slots, past the 2^20 packed-key
// candidate-time axis, with no dead run for the prep pipeline to cut. The
// recorded rejection plus bcd's millisecond answer on the very same
// instance is the acceptance pin of the polynomial-solver milestone.
//
// Everything lands in BENCH_tab10.json. Exit is non-zero when any
// differential pair disagrees, any oracle audit refutes an answer, or the
// expected envelope rejection fails to happen — the benchmark lane doubles
// as a correctness gate, as with T9.

#include "bench_common.hpp"
#include "json_report.hpp"

#include <cmath>
#include <string>

#include "gapsched/engine/engine.hpp"
#include "gapsched/scenarios/scenarios.hpp"

using namespace gapsched;

namespace {

constexpr double kAlpha = 2.5;
constexpr int kTrials = 3;

bool power_close(double a, double b) {
  return std::abs(a - b) <= 1e-9 * (1.0 + std::abs(a) + std::abs(b));
}

}  // namespace

int main(int, char** argv) {
  bench::banner("T10 (bcd crossover)",
                "polynomial [BCD07] solvers match the window DPs in range, "
                "then keep answering where those reject (n = 2000 wide)");

  engine::Engine eng({.cache = false});  // every solve timed for real
  int failures = 0;

  const auto solve = [&](const char* solver, const Instance& inst,
                         engine::Objective objective) {
    engine::SolveRequest req;
    req.instance = inst;
    req.objective = objective;
    req.params.alpha = kAlpha;
    req.params.validate = true;
    return eng.solve(solver, req);
  };

  bench::Json report = bench::Json::object();
  report.set("bench", "tab10_bcd_crossover")
      .set("seed", bench::kSeed)
      .set("alpha", kAlpha)
      .set("trials", kTrials);

  // ------------------------------------------- 1: in-range crossover --
  std::cout << "=== crossover: window DPs vs bcd on poly_wide, in range "
               "===\n\n";
  Table xtable({"n", "gap_dp_ms", "bcd_gap_ms", "gap_x", "power_dp_ms",
                "bcd_power_ms", "power_x", "agree"});
  bench::Json xrows = bench::Json::array();
  for (const std::size_t n :
       {std::size_t{8}, std::size_t{12}, std::size_t{16}, std::size_t{20}}) {
    const std::string name = "poly_wide:" + std::to_string(n);
    double dp_gap_ms = 0, bcd_gap_ms = 0, dp_pow_ms = 0, bcd_pow_ms = 0;
    bool agree = true;
    for (int trial = 0; trial < kTrials; ++trial) {
      const auto inst = scenarios::make_scenario(name, bench::kSeed + trial);
      if (!inst) {
        std::cerr << "T10: " << name << " failed to draw\n";
        ++failures;
        break;
      }
      const engine::SolveResult dg =
          solve("gap_dp", *inst, engine::Objective::kGaps);
      const engine::SolveResult bg =
          solve("bcd_poly_gap", *inst, engine::Objective::kGaps);
      const engine::SolveResult dp =
          solve("power_dp", *inst, engine::Objective::kPower);
      const engine::SolveResult bp =
          solve("bcd_poly_power", *inst, engine::Objective::kPower);
      for (const engine::SolveResult* r : {&dg, &bg, &dp, &bp}) {
        if (!r->ok || !r->feasible || !r->audit_error.empty()) {
          std::cerr << "T10: in-range solve failed on " << name << ": "
                    << (r->ok ? (r->feasible ? r->audit_error : "infeasible")
                              : r->error)
                    << "\n";
          ++failures;
          agree = false;
        }
      }
      if (!agree) continue;
      if (bg.transitions != dg.transitions ||
          !power_close(bp.cost, dp.cost)) {
        std::cerr << "T10: bcd disagrees with the window DPs on " << name
                  << " trial " << trial << "\n";
        ++failures;
        agree = false;
      }
      dp_gap_ms += dg.stats.wall_ms;
      bcd_gap_ms += bg.stats.wall_ms;
      dp_pow_ms += dp.stats.wall_ms;
      bcd_pow_ms += bp.stats.wall_ms;
    }
    const double gap_x = bcd_gap_ms > 0 ? dp_gap_ms / bcd_gap_ms : 0;
    const double power_x = bcd_pow_ms > 0 ? dp_pow_ms / bcd_pow_ms : 0;
    xtable.row()
        .add(n)
        .add(dp_gap_ms, 2)
        .add(bcd_gap_ms, 2)
        .add(gap_x, 1)
        .add(dp_pow_ms, 2)
        .add(bcd_pow_ms, 2)
        .add(power_x, 1)
        .add(agree ? "yes" : "NO");
    xrows.push(bench::Json::object()
                   .set("scenario", name)
                   .set("n", n)
                   .set("gap_dp_ms", dp_gap_ms)
                   .set("bcd_gap_ms", bcd_gap_ms)
                   .set("gap_speedup", gap_x)
                   .set("power_dp_ms", dp_pow_ms)
                   .set("bcd_power_ms", bcd_pow_ms)
                   .set("power_speedup", power_x)
                   .set("agree", agree));
  }
  bench::emit(argv[0], xtable);

  // ------------------------------------- 2: past the envelope, bcd only --
  std::cout << "=== scale: bcd past the window DPs' envelope ===\n\n";
  Table stable({"scenario", "n", "gap_ms", "gap_opt", "power_ms", "power_opt",
                "states", "segments", "oracle"});
  bench::Json srows = bench::Json::array();
  for (const char* family : {"poly_scale", "poly_wide"}) {
    for (const std::size_t n :
         {std::size_t{100}, std::size_t{500}, std::size_t{2000}}) {
      const std::string name =
          std::string(family) + ":" + std::to_string(n);
      double gap_ms = 0, pow_ms = 0, gap_opt = 0, pow_opt = 0;
      std::size_t states = 0, segments = 0;
      int audits = 0, audit_passes = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        const auto inst =
            scenarios::make_scenario(name, bench::kSeed + trial);
        if (!inst) {
          std::cerr << "T10: " << name << " failed to draw\n";
          ++failures;
          break;
        }
        const engine::SolveResult g =
            solve("bcd_poly_gap", *inst, engine::Objective::kGaps);
        const engine::SolveResult p =
            solve("bcd_poly_power", *inst, engine::Objective::kPower);
        for (const engine::SolveResult* r : {&g, &p}) {
          if (!r->ok || !r->feasible) {
            std::cerr << "T10: bcd refused " << name << ": "
                      << (r->ok ? "infeasible" : r->error) << "\n";
            ++failures;
            continue;
          }
          ++audits;
          if (r->audit_error.empty()) {
            ++audit_passes;
          } else {
            std::cerr << "T10: oracle refuted bcd on " << name << ": "
                      << r->audit_error << "\n";
            ++failures;
          }
        }
        if (!g.ok || !p.ok || !g.feasible || !p.feasible) continue;
        // Cross-objective sandwich: the only exact bound available up here.
        const double dn = static_cast<double>(n);
        const double ceiling =
            dn + kAlpha * static_cast<double>(g.transitions) + 1e-9;
        if (p.cost < dn + kAlpha - 1e-9 || p.cost > ceiling ||
            p.transitions < g.transitions) {
          std::cerr << "T10: cross-objective bounds broken on " << name
                    << "\n";
          ++failures;
        }
        gap_ms += g.stats.wall_ms;
        pow_ms += p.stats.wall_ms;
        gap_opt += static_cast<double>(g.transitions);
        pow_opt += p.cost;
        states += g.stats.states + p.stats.states;
        segments += g.stats.nodes + p.stats.nodes;
      }
      stable.row()
          .add(name)
          .add(n)
          .add(gap_ms, 2)
          .add(gap_opt / kTrials, 2)
          .add(pow_ms, 2)
          .add(pow_opt / kTrials, 2)
          .add(states / kTrials)
          .add(segments / kTrials)
          .add(std::to_string(audit_passes) + "/" + std::to_string(audits));
      srows.push(bench::Json::object()
                     .set("scenario", name)
                     .set("n", n)
                     .set("bcd_gap_ms", gap_ms)
                     .set("gap_opt_mean", gap_opt / kTrials)
                     .set("bcd_power_ms", pow_ms)
                     .set("power_opt_mean", pow_opt / kTrials)
                     .set("states_mean", states / kTrials)
                     .set("segments_mean", segments / kTrials)
                     .set("audits", audits)
                     .set("audit_passes", audit_passes));
    }
  }
  stable.print(std::cout);
  std::cout << "\n";

  // The envelope rejection pin: the window DPs must refuse poly_wide:2000
  // (one connected ~1.2M-slot usable run, candidate axis past 2^20) while
  // bcd answers the same instance through the same engine. The refusal is a
  // cheap precheck — this probe costs microseconds, not a giant DP.
  std::cout << "=== envelope: window DPs on poly_wide:2000 ===\n\n";
  const auto wide = scenarios::make_scenario("poly_wide:2000", bench::kSeed);
  bench::Json envelope = bench::Json::object();
  if (!wide) {
    std::cerr << "T10: poly_wide:2000 failed to draw\n";
    ++failures;
  } else {
    const engine::SolveResult dg =
        solve("gap_dp", *wide, engine::Objective::kGaps);
    const engine::SolveResult dp =
        solve("power_dp", *wide, engine::Objective::kPower);
    for (const auto& [label, r] :
         {std::pair<const char*, const engine::SolveResult*>{"gap_dp", &dg},
          {"power_dp", &dp}}) {
      if (r->ok) {
        std::cerr << "T10: " << label
                  << " unexpectedly accepted poly_wide:2000 — the envelope "
                     "pin is stale\n";
        ++failures;
      }
      std::cout << label << ": "
                << (r->ok ? "ACCEPTED (pin stale)" : r->error) << "\n";
      envelope.set(label, bench::Json::object()
                              .set("rejected", !r->ok)
                              .set("error", r->error));
    }
    std::cout << "\n";
  }

  report.set("crossover", std::move(xrows))
      .set("scale", std::move(srows))
      .set("envelope", std::move(envelope))
      .set("failures", failures);
  bench::emit_json("tab10", report);

  return failures == 0 ? 0 : 1;
}

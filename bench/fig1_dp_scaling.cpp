// F1 — Theorem 1 polynomial scaling.
// Paper claim: O(n^7 p^5) time, O(n^5 p^3) states — polynomial in both n
// and p (the surprise of Theorem 1: not n^O(p)).
// Protocol: anchored feasible instances, n and p sweeps; report wall time,
// reachable memoized states, and states as a fraction of the n^5 p^3 bound.
// The log-log growth rate (printed per successive n) should stay far below
// exponential and roughly constant, and the p columns should grow
// polynomially at fixed n.

#include "bench_common.hpp"

#include <cmath>
#include <mutex>

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/gen/generators.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("F1 (Theorem 1 scaling)",
                "runtime and state count polynomial in n and p");

  Table table({"n", "p", "ms_median", "states", "bound_n5p3", "states/bound",
               "loglog_slope_vs_prev_n"});
  ThreadPool pool;
  std::mutex mu;

  const std::size_t ns[] = {8, 12, 16, 20, 24, 28, 32, 40};
  const int ps[] = {1, 2, 4, 8};

  for (int p : ps) {
    double prev_ms = -1.0;
    std::size_t prev_n = 0;
    for (std::size_t n : ns) {
      // Median of 3 seeded repetitions, instances sized to stay feasible.
      std::vector<double> ms(3);
      std::vector<std::size_t> states(3);
      parallel_for(pool, 3, [&](std::size_t rep) {
        Prng rng(bench::kSeed + rep * 31 + n * 7 + static_cast<std::size_t>(p));
        Instance inst = gen_feasible_one_interval(
            rng, n, static_cast<Time>(2 * n), 3, p);
        Stopwatch sw;
        GapDpResult r = solve_gap_dp(inst);
        std::lock_guard<std::mutex> lk(mu);
        ms[rep] = sw.millis();
        states[rep] = r.states;
      });
      std::sort(ms.begin(), ms.end());
      std::sort(states.begin(), states.end());
      const double med = ms[1];
      const double bound = std::pow(static_cast<double>(n), 5) *
                           std::pow(static_cast<double>(p), 3);
      std::string slope = "-";
      if (prev_ms > 0.0 && med > 0.0) {
        const double s = std::log(med / prev_ms) /
                         std::log(static_cast<double>(n) /
                                  static_cast<double>(prev_n));
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2f", s);
        slope = buf;
      }
      table.row()
          .add(n)
          .add(p)
          .add(med, 2)
          .add(states[1])
          .add(static_cast<std::int64_t>(bound))
          .add(static_cast<double>(states[1]) / bound, 4)
          .add(slope);
      prev_ms = med;
      prev_n = n;
    }
  }
  bench::emit(argv[0], table);
  return 0;
}

// T8 — the heuristic ladder for one-interval gap scheduling.
// Paper context: Section 1 contrasts the obligatory online EDF (ratio
// Omega(n)) with the offline FHKN 3-approximation and the exact DP. This
// table ranks the ladder — eager online EDF, offline procrastination, FHKN
// greedy, exact DP — on shared families, with workload descriptors.
// Shape: greedy ~ OPT everywhere, and both one-shot strategies (eager EDF,
// lazy procrastination) degrade as slack grows — neither eagerness nor
// laziness alone exploits slack; the greedy's *global* feasibility-guided
// gap placement is what matters. (Lazy is in fact slightly worse than
// eager here: deferring to deadlines scatters forced runs.)
//
// The whole ladder goes through a persistent engine::Engine: one
// mixed-solver batch per family, fanned out by Engine::solve_batch with
// deterministic result ordering (solve cache off — distinct draws, honest
// timings). Every request carries params.validate: a rung's answer only
// counts after the independent oracle re-derives its transition count.

#include "bench_common.hpp"
#include "json_report.hpp"

#include "gapsched/core/stats.hpp"
#include "gapsched/engine/engine.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/matching/feasibility.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("T8 (heuristic ladder: online EDF / lazy / greedy / OPT)",
                "greedy ~ OPT; one-shot strategies (eager and lazy) degrade "
                "as slack grows");

  struct Family {
    const char* name;
    std::size_t n;
    Time horizon;
    Time window;
  };
  constexpr Family kFamilies[] = {
      {"tight", 10, 14, 2},
      {"medium", 10, 20, 5},
      {"loose", 10, 30, 12},
      {"very_loose", 10, 40, 25},
  };
  constexpr int kTrials = 30;
  // Ladder order: the table columns below index into this array.
  const char* kLadder[] = {"online_edf", "lazy", "fhkn_greedy", "baptiste"};
  constexpr std::size_t kRungs = std::size(kLadder);

  Table table({"family", "mean_slack", "contention", "oracle", "online",
               "lazy", "greedy", "opt", "online/opt", "lazy/opt",
               "greedy/opt"});
  bench::Json report = bench::Json::object();
  report.set("bench", "tab8_heuristic_ladder")
      .set("seed", bench::kSeed)
      .set("trials", kTrials);
  bench::Json json_rows = bench::Json::array();
  int refuted_exact = 0;  // the ladder's exact rung is baptiste
  engine::Engine eng({.cache = false});

  for (const Family& f : kFamilies) {
    // Draw the family and drop infeasible draws with the cheap matching
    // oracle before paying for any solver run.
    std::vector<Instance> instances;
    std::vector<engine::BatchJob> batch;
    instances.reserve(kTrials);
    batch.reserve(kTrials * kRungs);
    for (int trial = 0; trial < kTrials; ++trial) {
      Prng rng(bench::kSeed + static_cast<std::uint64_t>(trial) * 2221 +
               static_cast<std::uint64_t>(&f - kFamilies) * 7);
      Instance inst = gen_uniform_one_interval(rng, f.n, f.horizon, f.window, 1);
      if (!is_feasible(inst)) continue;
      for (const char* solver : kLadder) {
        engine::BatchJob job{solver, {inst, {}, {}}};
        job.request.params.validate = true;
        batch.push_back(std::move(job));
      }
      instances.push_back(std::move(inst));
    }
    const std::vector<engine::SolveResult> results = eng.solve_batch(batch);

    double sums[kRungs] = {};
    std::size_t counts[kRungs] = {};
    std::size_t audits = 0, audit_passes = 0;
    double slack_sum = 0, cont_sum = 0;
    std::size_t used = 0;
    for (std::size_t trial = 0; trial < instances.size(); ++trial) {
      ++used;
      for (std::size_t s = 0; s < kRungs; ++s) {
        const engine::SolveResult& r = results[trial * kRungs + s];
        // Pre-filtered feasible one-interval draws must be inside every
        // rung's envelope; anything else would silently deflate the means,
        // so failed rungs are excluded from their own denominator too.
        if (!r.ok || !r.feasible) {
          std::cerr << "T8: " << kLadder[s] << " failed on " << f.name
                    << " trial " << trial << ": "
                    << (r.ok ? "reported infeasible" : r.error) << "\n";
          continue;
        }
        ++audits;
        if (r.audit_error.empty()) {
          ++audit_passes;
        } else {
          if (s == kRungs - 1) ++refuted_exact;
          std::cerr << "T8: oracle refuted " << kLadder[s] << " on "
                    << f.name << " trial " << trial << ": " << r.audit_error
                    << "\n";
          continue;  // a refuted answer must not shape the ladder means
        }
        sums[s] += r.cost;
        ++counts[s];
      }
      const InstanceStats stats = compute_stats(instances[trial]);
      slack_sum += stats.mean_slack;
      cont_sum += stats.contention;
    }
    if (used == 0) used = 1;
    double means[kRungs];
    for (std::size_t s = 0; s < kRungs; ++s) {
      means[s] = counts[s] > 0 ? sums[s] / static_cast<double>(counts[s]) : -1;
    }
    const double opt_mean = means[kRungs - 1];
    table.row()
        .add(f.name)
        .add(slack_sum / static_cast<double>(used), 2)
        .add(cont_sum / static_cast<double>(used), 2)
        .add(std::to_string(audit_passes) + "/" + std::to_string(audits))
        .add(means[0], 2)
        .add(means[1], 2)
        .add(means[2], 2)
        .add(opt_mean, 2)
        .add(means[0] / opt_mean, 3)
        .add(means[1] / opt_mean, 3)
        .add(means[2] / opt_mean, 3);
    json_rows.push(bench::Json::object()
                       .set("family", f.name)
                       .set("mean_slack", slack_sum / used)
                       .set("contention", cont_sum / used)
                       .set("audits", audits)
                       .set("audit_passes", audit_passes)
                       .set("online_mean", means[0])
                       .set("lazy_mean", means[1])
                       .set("greedy_mean", means[2])
                       .set("opt_mean", opt_mean));
  }
  bench::emit(argv[0], table);
  report.set("rows", std::move(json_rows)).set("refuted_exact", refuted_exact);
  bench::emit_json("tab8", report);
  return refuted_exact == 0 ? 0 : 1;
}

// T8 — the heuristic ladder for one-interval gap scheduling.
// Paper context: Section 1 contrasts the obligatory online EDF (ratio
// Omega(n)) with the offline FHKN 3-approximation and the exact DP. This
// table ranks the ladder — eager online EDF, offline procrastination, FHKN
// greedy, exact DP — on shared families, with workload descriptors.
// Shape: greedy ~ OPT everywhere, and both one-shot strategies (eager EDF,
// lazy procrastination) degrade as slack grows — neither eagerness nor
// laziness alone exploits slack; the greedy's *global* feasibility-guided
// gap placement is what matters. (Lazy is in fact slightly worse than
// eager here: deferring to deadlines scatters forced runs.)

#include "bench_common.hpp"

#include <mutex>

#include "gapsched/baptiste/baptiste.hpp"
#include "gapsched/core/stats.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/greedy/fhkn_greedy.hpp"
#include "gapsched/greedy/lazy.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "gapsched/online/online_edf.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("T8 (heuristic ladder: online EDF / lazy / greedy / OPT)",
                "greedy ~ OPT; one-shot strategies (eager and lazy) degrade "
                "as slack grows");

  struct Family {
    const char* name;
    std::size_t n;
    Time horizon;
    Time window;
  };
  constexpr Family kFamilies[] = {
      {"tight", 10, 14, 2},
      {"medium", 10, 20, 5},
      {"loose", 10, 30, 12},
      {"very_loose", 10, 40, 25},
  };
  constexpr int kTrials = 30;

  Table table({"family", "mean_slack", "contention", "online", "lazy",
               "greedy", "opt", "online/opt", "lazy/opt", "greedy/opt"});
  ThreadPool pool;
  std::mutex mu;

  for (const Family& f : kFamilies) {
    double online_sum = 0, lazy_sum = 0, greedy_sum = 0, opt_sum = 0;
    double slack_sum = 0, cont_sum = 0;
    int used = 0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 2221 +
               static_cast<std::uint64_t>(&f - kFamilies) * 7);
      Instance inst =
          gen_uniform_one_interval(rng, f.n, f.horizon, f.window, 1);
      if (!is_feasible(inst)) return;
      const OnlineResult online = online_edf(inst);
      const LazyResult lazy = lazy_schedule(inst);
      const FhknResult greedy = fhkn_greedy(inst);
      const BaptisteResult opt = solve_baptiste(inst);
      const InstanceStats stats = compute_stats(inst);
      std::lock_guard<std::mutex> lk(mu);
      ++used;
      online_sum += static_cast<double>(online.transitions);
      lazy_sum += static_cast<double>(lazy.transitions);
      greedy_sum += static_cast<double>(greedy.transitions);
      opt_sum += static_cast<double>(opt.spans);
      slack_sum += stats.mean_slack;
      cont_sum += stats.contention;
    });
    if (used == 0) used = 1;
    table.row()
        .add(f.name)
        .add(slack_sum / used, 2)
        .add(cont_sum / used, 2)
        .add(online_sum / used, 2)
        .add(lazy_sum / used, 2)
        .add(greedy_sum / used, 2)
        .add(opt_sum / used, 2)
        .add(online_sum / opt_sum, 3)
        .add(lazy_sum / opt_sum, 3)
        .add(greedy_sum / opt_sum, 3);
  }
  bench::emit(argv[0], table);
  return 0;
}

// T6 — gap objective vs power objective (Theorems 1 vs 2).
// Paper claim: the two objectives coincide for exact one-interval solving
// "with a subtle difference": a power-minimizing processor may bridge short
// gaps in the active state, so gap-optimal and power-optimal schedules
// diverge for small alpha and converge as alpha grows past the idle
// lengths.
// Protocol: alpha sweep on fixed instances; compare power(power-opt),
// power(gap-opt schedule), and both schedules' transitions. Shape:
// power(gap-opt) >= power(power-opt), equality for large alpha.

#include "bench_common.hpp"

#include <mutex>

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/dp/power_dp.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/matching/feasibility.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("T6 (gap-optimal vs power-optimal schedules)",
                "objectives diverge at small alpha, converge at large alpha");

  const double alphas[] = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 32.0};
  constexpr int kTrials = 20;

  Table table({"alpha", "mean_power_opt", "mean_power_of_gap_opt",
               "overhead_pct", "mean_trans_power_opt", "mean_trans_gap_opt",
               "schedules_identical_pct"});
  ThreadPool pool;
  std::mutex mu;

  for (double alpha : alphas) {
    double p_opt = 0.0, p_gap = 0.0, t_p = 0.0, t_g = 0.0;
    int same = 0, used = 0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 97);  // same instances for all alpha
      Instance inst = gen_uniform_one_interval(rng, 9, 18, 4, 1);
      if (!is_feasible(inst)) return;
      const GapDpResult gap = solve_gap_dp(inst);
      const PowerDpResult power = solve_power_dp(inst, alpha);
      const double pg = gap.schedule.profile().optimal_power(alpha);
      std::lock_guard<std::mutex> lk(mu);
      ++used;
      p_opt += power.power;
      p_gap += pg;
      t_p += static_cast<double>(power.schedule.profile().transitions());
      t_g += static_cast<double>(gap.transitions);
      if (std::abs(pg - power.power) < 1e-9) ++same;
    });
    table.row()
        .add(alpha, 2)
        .add(used ? p_opt / used : 0.0, 2)
        .add(used ? p_gap / used : 0.0, 2)
        .add(p_opt > 0 ? 100.0 * (p_gap - p_opt) / p_opt : 0.0, 2)
        .add(used ? t_p / used : 0.0, 2)
        .add(used ? t_g / used : 0.0, 2)
        .add(used ? 100.0 * same / used : 0.0, 1);
  }
  bench::emit(argv[0], table);
  return 0;
}

// F2 — Theorem 3 approximation factor versus alpha.
// Paper claim: multi-interval power minimization admits a polynomial-time
// (1 + (2/3 + eps) alpha)-approximation; the trivial bound is 1 + alpha, and
// Section 4.2 shows some dependence on alpha is necessary.
// Protocol: alpha sweep on random multi-interval instances small enough for
// the exact brute force; report measured ratio vs both envelopes. Shape:
// measured <= theorem bound for all alpha, and the theorem bound beats the
// trivial envelope as alpha grows.

#include "bench_common.hpp"

#include <mutex>

#include "gapsched/exact/power_brute_force.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "gapsched/powermin/powermin_approx.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner(
      "F2 (Theorem 3: power-min approximation vs alpha)",
      "ratio <= 1 + (2/3+eps)*alpha, tighter than the trivial 1 + alpha");

  const double alphas[] = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0};
  constexpr int kTrials = 30;

  Table table({"alpha", "feasible", "mean_ratio", "max_ratio", "thm3_bound",
               "trivial_bound", "mean_pairs"});
  ThreadPool pool;
  std::mutex mu;

  for (double alpha : alphas) {
    int feasible = 0;
    double sum_ratio = 0.0, max_ratio = 0.0, sum_pairs = 0.0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 10007 +
               static_cast<std::uint64_t>(alpha * 16));
      Instance inst = gen_multi_interval(rng, 8, 24, 2, 2);
      if (!is_feasible(inst)) return;
      const ExactPowerResult opt = brute_force_min_power(inst, alpha);
      const PowerMinApproxResult apx = powermin_approx(inst, alpha);
      const double ratio = apx.power / opt.power;
      std::lock_guard<std::mutex> lk(mu);
      ++feasible;
      sum_ratio += ratio;
      max_ratio = std::max(max_ratio, ratio);
      sum_pairs += static_cast<double>(apx.pairs_packed);
    });
    table.row()
        .add(alpha, 2)
        .add(feasible)
        .add(feasible ? sum_ratio / feasible : 0.0, 3)
        .add(max_ratio, 3)
        .add(theorem3_bound(alpha), 3)
        .add(1.0 + alpha, 3)
        .add(feasible ? sum_pairs / feasible : 0.0, 2);
  }
  bench::emit(argv[0], table);
  return 0;
}

// T12 — persistent store warm-restart study (store/store.hpp).
// Measures what the on-disk solve cache tier is for: a catalog sweep of
// ms-scale exact solves run twice through SEPARATE Engine instances
// sharing one store file — the cold pass populates the store (every solve
// spilled, spill_min_ms = 0), the warm pass simulates a process restart
// (fresh Engine, fresh in-memory cache, same file) and must serve its
// answers from oracle-gated disk hits instead of re-running the DPs.
//
// Correctness gates (the bench exits non-zero, so the CI benchmark lane
// doubles as a regression test):
//   * zero oracle refutations in either pass (params.validate is on, and
//     every disk admission is independently re-audited in the pipeline);
//   * warm costs byte-identical to the cold reference;
//   * the warm pass actually hit the disk tier (> 0 disk hits, 0 rejects);
//   * warm-restart speedup >= 2x (sanity floor; the committed baseline
//     records the real figure, which should be well above 3x — a disk
//     record costs one JSON parse + one linear oracle sweep, against an
//     exponential-window or polynomial-BCD dynamic program).
//
// Everything lands in BENCH_tab12.json: per-row cold/warm wall times and
// speedups plus the store counters (spilled, disk_hits, disk_rejects,
// file_bytes) — the machine-readable baseline committed under
// bench/baselines/.

#include "bench_common.hpp"
#include "json_report.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "gapsched/engine/engine.hpp"
#include "gapsched/scenarios/scenarios.hpp"
#include "gapsched/store/store.hpp"

using namespace gapsched;

namespace {

struct SweepRow {
  const char* scenario;
  const char* solver;
  int trials;
  /// Rows with the prep pipeline on exercise component-record disk hits;
  /// rows with it off isolate the store's own economics (decompose +
  /// compress run on the warm path too, so they put a floor under warm
  /// wall time that has nothing to do with the disk tier).
  bool decompose;
};

/// Families chosen for ms-scale fresh solves: big mixed gap instances for
/// the window DP, the long-horizon power stressor for the power DP, and
/// 1200/2000-job chains for the polynomial BCD solver (the dominant rows;
/// their dispatch cost is where a restart burns its time).
constexpr SweepRow kSweep[] = {
    {"mega_mixed", "gap_dp", 4, true},
    {"power_longhaul", "power_dp", 4, true},
    {"poly_scale:1200", "bcd_poly_gap", 3, false},
    {"poly_scale:2000", "bcd_poly_gap", 2, false},
};

struct PassStats {
  std::vector<double> row_ms;     // per sweep row, summed over trials
  std::vector<double> costs;      // per request, in sweep order
  std::vector<bool> feasible;     // per request
  double total_ms = 0.0;
  int refuted = 0;
  engine::CacheStats cache;
};

PassStats run_pass(const std::string& store_path,
                   const std::vector<std::vector<engine::SolveRequest>>& rows,
                   const std::vector<const char*>& solvers) {
  engine::EngineOptions opt;
  opt.store_path = store_path;
  opt.store_spill_min_ms = 0.0;  // persist every solve, however cheap
  engine::Engine eng(opt);
  if (!eng.store_error().empty()) {
    std::fprintf(stderr, "T12 FAIL: store did not open: %s\n",
                 eng.store_error().c_str());
    std::exit(1);
  }
  PassStats out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    double row_ms = 0.0;
    for (const engine::SolveRequest& req : rows[r]) {
      Stopwatch watch;
      const engine::SolveResult res = eng.solve(solvers[r], req);
      row_ms += watch.millis();
      if (!res.ok || !res.audit_error.empty()) {
        std::fprintf(stderr, "T12 refutation: %s on %s: %s%s\n", solvers[r],
                     kSweep[r].scenario, res.error.c_str(),
                     res.audit_error.c_str());
        ++out.refuted;
      }
      out.costs.push_back(res.cost);
      out.feasible.push_back(res.feasible);
    }
    out.row_ms.push_back(row_ms);
    out.total_ms += row_ms;
  }
  eng.flush_store();  // make the pass durable before the engine goes away
  out.cache = eng.cache_stats();
  return out;
}

}  // namespace

int main(int, char** argv) {
  bench::banner("T12 (persistent store warm restart)",
                "a restarted engine serves oracle-gated disk hits instead "
                "of re-running its DPs; cold/warm sweep over one store");

  const std::string store_path = std::string(argv[0]) + ".store";
  std::remove(store_path.c_str());

  // Build every request up front so both passes replay the same sweep.
  std::vector<std::vector<engine::SolveRequest>> rows;
  std::vector<const char*> solvers;
  engine::Engine probe({.cache = false});
  for (const SweepRow& sweep : kSweep) {
    const engine::Solver* solver = probe.registry().find(sweep.solver);
    if (solver == nullptr) {
      std::fprintf(stderr, "T12 FAIL: unknown solver %s\n", sweep.solver);
      return 1;
    }
    std::vector<engine::SolveRequest> requests;
    for (int trial = 0; trial < sweep.trials; ++trial) {
      const auto inst =
          scenarios::make_scenario(sweep.scenario, bench::kSeed + trial);
      if (!inst.has_value()) {
        std::fprintf(stderr, "T12 FAIL: unknown scenario %s\n",
                     sweep.scenario);
        return 1;
      }
      engine::SolveRequest req;
      req.instance = *inst;
      req.objective = solver->info().objective;
      req.params.alpha = 2.5;
      req.params.decompose = sweep.decompose;
      req.params.validate = true;
      requests.push_back(std::move(req));
    }
    rows.push_back(std::move(requests));
    solvers.push_back(sweep.solver);
  }

  std::cout << "cold pass (populating " << store_path << ") ...\n";
  const PassStats cold = run_pass(store_path, rows, solvers);
  std::cout << "warm pass (restarted engine, same store) ...\n\n";
  const PassStats warm = run_pass(store_path, rows, solvers);

  int failures = cold.refuted + warm.refuted;
  if (failures > 0) {
    std::fprintf(stderr, "T12 FAIL: %d oracle refutation(s)\n", failures);
  }
  for (std::size_t i = 0; i < cold.costs.size(); ++i) {
    if (cold.costs[i] != warm.costs[i] ||
        cold.feasible[i] != warm.feasible[i]) {
      std::fprintf(stderr,
                   "T12 FAIL: warm answer %zu diverged from cold "
                   "(%.6f/%d vs %.6f/%d)\n",
                   i, warm.costs[i], int(warm.feasible[i]), cold.costs[i],
                   int(cold.feasible[i]));
      ++failures;
    }
  }
  if (warm.cache.disk_hits == 0) {
    std::fprintf(stderr, "T12 FAIL: warm pass never hit the disk tier\n");
    ++failures;
  }
  if (warm.cache.disk_rejects != 0) {
    std::fprintf(stderr,
                 "T12 FAIL: %zu disk reject(s) on an uncorrupted store\n",
                 warm.cache.disk_rejects);
    ++failures;
  }
  const double speedup =
      warm.total_ms > 0.0 ? cold.total_ms / warm.total_ms : 0.0;
  if (speedup < 2.0) {
    std::fprintf(stderr,
                 "T12 FAIL: warm restart speedup %.2fx below the 2x sanity "
                 "floor (cold %.1f ms, warm %.1f ms)\n",
                 speedup, cold.total_ms, warm.total_ms);
    ++failures;
  }

  Table table(
      {"scenario", "solver", "trials", "cold_ms", "warm_ms", "speedup"});
  bench::Json json_rows = bench::Json::array();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const double row_speedup =
        warm.row_ms[r] > 0.0 ? cold.row_ms[r] / warm.row_ms[r] : 0.0;
    table.row()
        .add(kSweep[r].scenario)
        .add(kSweep[r].solver)
        .add(kSweep[r].trials)
        .add(cold.row_ms[r], 2)
        .add(warm.row_ms[r], 2)
        .add(row_speedup, 2);
    json_rows.push(bench::Json::object()
                       .set("scenario", kSweep[r].scenario)
                       .set("solver", kSweep[r].solver)
                       .set("trials", kSweep[r].trials)
                       .set("cold_ms", cold.row_ms[r])
                       .set("warm_ms", warm.row_ms[r])
                       .set("speedup", row_speedup));
  }
  bench::emit(argv[0], table);

  bench::Json root =
      bench::Json::object()
          .set("experiment", "tab12_store_warm")
          .set("seed", bench::kSeed)
          .set("requests",
               static_cast<std::int64_t>(cold.costs.size()))
          .set("cold_ms", cold.total_ms)
          .set("warm_ms", warm.total_ms)
          .set("speedup", speedup)
          .set("refuted", cold.refuted + warm.refuted)
          .set("failures", failures)
          .set("store",
               bench::Json::object()
                   .set("spilled", cold.cache.spilled)
                   .set("disk_entries", cold.cache.disk_entries)
                   .set("warm_disk_hits", warm.cache.disk_hits)
                   .set("warm_disk_rejects", warm.cache.disk_rejects)
                   .set("warm_spilled", warm.cache.spilled))
          .set("rows", std::move(json_rows));
  bench::emit_json("tab12", root);

  std::remove(store_path.c_str());
  if (failures == 0) {
    std::printf(
        "\nT12 PASS: %zu requests, %zu disk hit(s), 0 refutations, "
        "warm restart %.2fx faster (cold %.1f ms, warm %.1f ms)\n",
        cold.costs.size(), warm.cache.disk_hits, speedup, cold.total_ms,
        warm.total_ms);
  }
  return failures == 0 ? 0 : 1;
}

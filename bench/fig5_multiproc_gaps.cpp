// F5 — multiprocessor structure (Section 2).
// Paper claim: the Theorem 1 DP is polynomial in p as well as n, and by
// Lemma 1 an optimal staircase solution exists. Adding processors can only
// help the transition count (and stops helping once capacity is no longer
// binding).
// Protocol: fixed bursty workload, p sweep; exact transitions, runtime and
// state counts per p. Shape: transitions non-increasing in p, flattening;
// states grow polynomially in p.

#include "bench_common.hpp"

#include "gapsched/dp/gap_dp.hpp"
#include "gapsched/gen/generators.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("F5 (multiprocessor benefit & Lemma 1 structure)",
                "transitions non-increasing in p; DP polynomial in p");

  Table table({"workload", "p", "feasible", "transitions", "ms", "states"});

  for (int variant = 0; variant < 3; ++variant) {
    Prng rng(bench::kSeed + static_cast<std::uint64_t>(variant) * 5);
    // Bursts wider than one processor can absorb.
    Instance base = gen_bursty(rng, 3, 4, 9, 3, 1);
    const std::string name = "bursty#" + std::to_string(variant);
    for (int p = 1; p <= 6; ++p) {
      Instance inst = base;
      inst.processors = p;
      Stopwatch sw;
      const GapDpResult r = solve_gap_dp(inst);
      table.row()
          .add(name)
          .add(p)
          .add(r.feasible ? "yes" : "no")
          .add(r.feasible ? std::to_string(r.transitions) : "-")
          .add(sw.millis(), 2)
          .add(r.states);
    }
  }
  bench::emit(argv[0], table);
  return 0;
}

// T3 — [HS89] set-packing local-search ablation.
// Paper claim (Lemma 5): the quality of the k-set packing black box drives
// the Theorem 3 bound; Hurkens-Schrijver local search approaches k/2.
// Protocol: the same instances through swap sizes 0 (greedy maximal),
// 1 (1->2 swaps) and 2 (2->3 swaps); report packed pairs, final spans and
// final power. Shape: monotone improvement with swap size, at higher cost.

#include "bench_common.hpp"

#include <mutex>

#include "gapsched/gen/generators.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "gapsched/powermin/powermin_approx.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("T3 ([HS89] swap-size ablation)",
                "packing size and final power improve monotonically with "
                "swap size");

  constexpr int kTrials = 30;
  constexpr double kAlpha = 4.0;

  Table table({"block_k", "swap_size", "trials", "mean_blocks",
               "mean_transitions", "mean_power", "mean_ms"});
  ThreadPool pool;
  std::mutex mu;

  for (int block = 2; block <= 3; ++block) {
    for (int swap = 0; swap <= 2; ++swap) {
      int used = 0;
      double blocks = 0.0, spans = 0.0, power = 0.0, ms = 0.0;
      parallel_for(pool, kTrials, [&](std::size_t trial) {
        Prng rng(bench::kSeed + trial * 42043);  // same instances per config
        Instance inst = gen_multi_interval(rng, 14, 40, 2, 2);
        if (!is_feasible(inst)) return;
        PowerMinApproxOptions opts;
        opts.swap_size = swap;
        opts.block_size = block;
        Stopwatch sw;
        const PowerMinApproxResult r = powermin_approx(inst, kAlpha, opts);
        const double elapsed = sw.millis();
        std::lock_guard<std::mutex> lk(mu);
        ++used;
        blocks += static_cast<double>(r.pairs_packed);
        spans += static_cast<double>(r.transitions);
        power += r.power;
        ms += elapsed;
      });
      table.row()
          .add(block)
          .add(swap)
          .add(used)
          .add(used ? blocks / used : 0.0, 2)
          .add(used ? spans / used : 0.0, 2)
          .add(used ? power / used : 0.0, 2)
          .add(used ? ms / used : 0.0, 2);
    }
  }
  bench::emit(argv[0], table);
  return 0;
}

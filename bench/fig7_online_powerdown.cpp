// F7 — online power-down baseline ([AIS04] setting, cited in Section 1).
// Paper context: online power saving admits a (3 + 2*sqrt(2)) ~ 5.83
// competitive strategy and no better than 2; the classic deterministic
// threshold policy (stay active alpha units, then sleep) is 2-competitive
// per idle period on top of the forced EDF schedule.
// Protocol: alpha sweep; online threshold policy vs the offline Theorem 2
// optimum, on neutral and adversarial workloads. Shape: ratio bounded well
// below 5.83 on neutral workloads and pushed toward/above 2 on the
// adversarial family (where the EDF schedule itself is bad).

#include "bench_common.hpp"

#include <mutex>

#include "gapsched/dp/power_dp.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/matching/feasibility.hpp"
#include "gapsched/online/online_powerdown.hpp"

using namespace gapsched;

int main(int, char** argv) {
  bench::banner("F7 (online power-down vs offline optimum)",
                "threshold policy competitive; adversarial family degrades "
                "the EDF side");

  const double alphas[] = {0.5, 1.0, 2.0, 4.0, 8.0};
  constexpr int kTrials = 25;

  Table table({"workload", "alpha", "mean_online", "mean_offline",
               "mean_ratio", "max_ratio"});
  ThreadPool pool;
  std::mutex mu;

  for (const char* family : {"uniform", "adversarial"}) {
    for (double alpha : alphas) {
      double sum_on = 0.0, sum_off = 0.0, sum_r = 0.0, max_r = 0.0;
      int used = 0;
      parallel_for(pool, kTrials, [&](std::size_t trial) {
        Prng rng(bench::kSeed + trial * 409 +
                 static_cast<std::uint64_t>(alpha * 8));
        Instance inst = std::string(family) == "uniform"
                            ? gen_uniform_one_interval(rng, 10, 24, 5, 1)
                            : gen_online_adversarial(5 + trial % 4);
        if (!is_feasible(inst)) return;
        const OnlinePowerdownResult online = online_powerdown(inst, alpha);
        const PowerDpResult offline = solve_power_dp(inst, alpha);
        const double ratio = online.power / offline.power;
        std::lock_guard<std::mutex> lk(mu);
        ++used;
        sum_on += online.power;
        sum_off += offline.power;
        sum_r += ratio;
        max_r = std::max(max_r, ratio);
      });
      table.row()
          .add(family)
          .add(alpha, 1)
          .add(used ? sum_on / used : 0.0, 2)
          .add(used ? sum_off / used : 0.0, 2)
          .add(used ? sum_r / used : 0.0, 3)
          .add(max_r, 3);
    }
  }
  bench::emit(argv[0], table);
  return 0;
}

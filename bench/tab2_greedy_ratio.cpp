// T2 — FHKN greedy approximation quality.
// Paper claim (Section 1, citing [FHKN06]): the greedy that repeatedly
// commits the largest feasibility-preserving gap is a 3-approximation for
// one-interval gap scheduling.
// Protocol: random one-interval families; report the observed ratio
// greedy/OPT (OPT = Baptiste DP). Shape: max ratio <= 3, mean well below.

#include "bench_common.hpp"

#include <mutex>

#include "gapsched/baptiste/baptiste.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/greedy/fhkn_greedy.hpp"

using namespace gapsched;

namespace {

struct Family {
  const char* name;
  std::size_t n;
  Time horizon;
  Time window;
  bool feasible_family;
};

constexpr Family kFamilies[] = {
    {"uniform_loose", 12, 30, 8, false}, {"uniform_tight", 12, 18, 3, false},
    {"anchored_sparse", 12, 40, 4, true}, {"anchored_dense", 14, 20, 3, true},
    {"bursty", 0, 0, 0, true},  // special-cased below
};

constexpr int kTrials = 40;

}  // namespace

int main(int, char** argv) {
  bench::banner("T2 (FHKN greedy ratio)",
                "greedy/OPT in [1, 3]; mean far below 3");

  Table table({"family", "trials", "feasible", "mean_ratio", "max_ratio",
               "greedy_optimal_pct"});
  ThreadPool pool;
  std::mutex mu;

  for (const Family& f : kFamilies) {
    int feasible = 0, optimal = 0;
    double sum_ratio = 0.0, max_ratio = 0.0;
    parallel_for(pool, kTrials, [&](std::size_t trial) {
      Prng rng(bench::kSeed + trial * 7919 +
               static_cast<std::uint64_t>(&f - kFamilies));
      Instance inst;
      if (std::string(f.name) == "bursty") {
        inst = gen_bursty(rng, 3, 4, 25, 8, 1);
      } else if (f.feasible_family) {
        inst = gen_feasible_one_interval(rng, f.n, f.horizon, f.window, 1);
      } else {
        inst = gen_uniform_one_interval(rng, f.n, f.horizon, f.window, 1);
      }
      const BaptisteResult opt = solve_baptiste(inst);
      if (!opt.feasible) return;
      const FhknResult grd = fhkn_greedy(inst);
      const double ratio = static_cast<double>(grd.transitions) /
                           static_cast<double>(opt.spans);
      std::lock_guard<std::mutex> lk(mu);
      ++feasible;
      sum_ratio += ratio;
      max_ratio = std::max(max_ratio, ratio);
      if (grd.transitions == opt.spans) ++optimal;
    });
    table.row()
        .add(f.name)
        .add(kTrials)
        .add(feasible)
        .add(feasible ? sum_ratio / feasible : 0.0, 3)
        .add(max_ratio, 3)
        .add(feasible ? 100.0 * optimal / feasible : 0.0, 1);
  }
  bench::emit(argv[0], table);
  return 0;
}

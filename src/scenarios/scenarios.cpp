#include "gapsched/scenarios/scenarios.hpp"

#include <algorithm>
#include <utility>

#include "gapsched/gen/generators.hpp"
#include "gapsched/util/prng.hpp"

namespace gapsched::scenarios {

namespace {

/// Decorrelates the per-family streams: the same user seed must not draw
/// the "same" randomness in every family.
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt) {
  return splitmix64(seed + 0x9e3779b97f4a7c15ull * salt);
}

// ------------------------------------------------- adversarial families --

/// Nested one-interval chain: window i is strictly inside window i - 1
/// ([b + i, b + 2n - 1 - i]); the innermost pair leaves two slots for the
/// last job. Stresses interval containment logic and forces global
/// placement decisions (a locally greedy choice in an outer window can
/// strand an inner job). Job order is shuffled so solvers cannot rely on
/// sortedness.
Instance make_nested_windows(std::uint64_t seed) {
  Prng rng(mix(seed, 7));
  constexpr std::size_t n = 8;
  const Time base = rng.uniform(0, 3);
  std::vector<std::pair<Time, Time>> windows;
  for (std::size_t i = 0; i < n; ++i) {
    const Time lo = base + static_cast<Time>(i);
    const Time hi = base + static_cast<Time>(2 * n - 1 - i);
    windows.emplace_back(lo, hi);
  }
  rng.shuffle(windows);
  return Instance::one_interval(windows);
}

/// Sparse spread: wide windows (11-15 slots) far apart, so every feasible
/// schedule pays one span per job — the max-gap and long-horizon power
/// stressor (every idle run is far longer than any reasonable alpha). The
/// wide windows make the whole-instance Prop 2.1 candidate axis pay
/// ~2(n+2) times per job while each single-job cluster needs only ~6
/// candidates, which is exactly the locality the prep decomposition
/// pipeline exploits (T9 records the on-vs-off speedup).
Instance make_sparse_spread(std::uint64_t seed) {
  Prng rng(mix(seed, 11));
  constexpr std::size_t n = 6;
  std::vector<std::pair<Time, Time>> windows;
  for (std::size_t i = 0; i < n; ++i) {
    const Time lo = static_cast<Time>(i) * 50 + rng.uniform(0, 3);
    windows.emplace_back(lo, lo + 10 + rng.uniform(0, 4));
  }
  return Instance::one_interval(windows);
}

/// Long horizon, few jobs, wide windows: the first two anchors sit close
/// enough that their idle run can dip below typical alpha values (the
/// bridging-decision side), while the remaining anchors leave idle runs
/// far above alpha over a ~400-unit timeline — the power solvers must make
/// non-trivial bridging decisions, and the monolithic DP pays the full
/// long-horizon candidate axis that the prep decomposition avoids.
Instance make_power_longhaul(std::uint64_t seed) {
  Prng rng(mix(seed, 13));
  constexpr Time kAnchors[] = {2, 14, 55, 115, 180, 250, 325, 405};
  std::vector<std::pair<Time, Time>> windows;
  for (Time anchor : kAnchors) {
    const Time t = anchor + rng.uniform(0, 4);
    const Time lo = std::max<Time>(0, t - rng.uniform(2, 7));
    windows.emplace_back(lo, t + rng.uniform(2, 7));
  }
  return Instance::one_interval(windows);
}

/// Hall-critical blocks: each block packs exactly b jobs into exactly b
/// slots (Hall's condition holds with equality), so every schedule is
/// forced and any perturbation tips infeasible. Exercises the tight side
/// of the feasibility machinery.
Instance make_hall_critical(std::uint64_t seed) {
  Prng rng(mix(seed, 17));
  constexpr std::size_t kBlocks = 3;
  constexpr Time kBlockLen = 3;
  std::vector<std::pair<Time, Time>> windows;
  Time start = rng.uniform(0, 2);
  for (std::size_t b = 0; b < kBlocks; ++b) {
    for (Time j = 0; j < kBlockLen; ++j) {
      windows.emplace_back(start, start + kBlockLen - 1);
    }
    start += kBlockLen + rng.uniform(2, 5);  // dead time between blocks
  }
  return Instance::one_interval(windows);
}

/// Multiprocessor staircase: pinned occupancy counts rise to p and fall
/// back ({1, 2, 3, 3, 2, 1} on p = 3), with a little seeded widening that
/// keeps the anchor schedule valid. Exercises the Lemma 1 staircase
/// accounting of the multiprocessor DPs.
Instance make_staircase_multiproc(std::uint64_t seed) {
  Prng rng(mix(seed, 19));
  constexpr int kCounts[] = {1, 2, 3, 3, 2, 1};
  Instance inst;
  inst.processors = 3;
  for (std::size_t t = 0; t < std::size(kCounts); ++t) {
    for (int c = 0; c < kCounts[t]; ++c) {
      const Time anchor = static_cast<Time>(t);
      const Time lo = std::max<Time>(0, anchor - rng.uniform(0, 1));
      inst.jobs.push_back(Job{TimeSet::window(lo, anchor + rng.uniform(0, 1))});
    }
  }
  return inst;
}

/// Infeasible by one: a Hall-critical block of b slots with b + 1 jobs
/// (one too many), plus feasible filler elsewhere. Solvers must report
/// infeasible without crashing or returning a partial answer.
Instance make_infeasible_by_one(std::uint64_t seed) {
  Prng rng(mix(seed, 23));
  constexpr Time kBlockLen = 4;
  const Time block = 8 + rng.uniform(0, 3);
  std::vector<std::pair<Time, Time>> windows;
  for (Time j = 0; j < kBlockLen + 1; ++j) {
    windows.emplace_back(block, block + kBlockLen - 1);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    // Filler strictly left of the block (clamped: the last window could
    // otherwise touch the block's first slot on small block draws).
    const Time lo = static_cast<Time>(i) * 2 + rng.uniform(0, 1);
    windows.emplace_back(lo, std::min<Time>(lo + 1, block - 1));
  }
  rng.shuffle(windows);
  return Instance::one_interval(windows);
}

/// Everyone at one instant: n jobs pinned to a single time on one
/// processor. The canonical near-infeasible sentinel stressor (every
/// subproblem of the DPs is infeasible).
Instance make_overloaded_point(std::uint64_t seed) {
  Prng rng(mix(seed, 29));
  const Time t = rng.uniform(0, 20);
  std::vector<std::pair<Time, Time>> windows(6, {t, t});
  return Instance::one_interval(windows);
}

Scenario wrap(std::string name, std::string summary,
              std::function<Instance(std::uint64_t)> make) {
  Scenario s;
  s.name = std::move(name);
  s.summary = std::move(summary);
  s.make = std::move(make);
  return s;
}

}  // namespace

ScenarioCatalog::ScenarioCatalog() {
  auto add = [this](Scenario s) {
    // Fill the per-seed-invariant descriptors from a probe draw.
    const Instance probe = s.make(1);
    s.jobs = probe.n();
    s.processors = probe.processors;
    scenarios_.emplace(s.name, std::move(s));
  };

  // -- the gen/ families, under stable names ------------------------------
  Scenario s = wrap("uniform_loose",
                    "uniform windows, moderate slack; may be infeasible",
                    [](std::uint64_t seed) {
                      Prng rng(mix(seed, 1));
                      return gen_uniform_one_interval(rng, 9, 18, 6);
                    });
  add(std::move(s));

  s = wrap("feasible_spread",
           "anchored one-interval jobs, slack 3; feasible by construction",
           [](std::uint64_t seed) {
             Prng rng(mix(seed, 2));
             return gen_feasible_one_interval(rng, 9, 18, 3);
           });
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("bursty_clusters",
           "3 bursts x 3 jobs, window 4; the sensor duty-cycle shape",
           [](std::uint64_t seed) {
             Prng rng(mix(seed, 3));
             return gen_bursty(rng, 3, 3, 12, 4);
           });
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("multi_interval_decoys",
           "anchored 2-interval jobs (Section 5 shape)",
           [](std::uint64_t seed) {
             Prng rng(mix(seed, 4));
             return gen_multi_interval(rng, 8, 20, 2, 2);
           });
  s.always_feasible = true;
  s.one_interval = false;
  add(std::move(s));

  s = wrap("unit_points", "anchored 3-unit point jobs (Section 5 shape)",
           [](std::uint64_t seed) {
             Prng rng(mix(seed, 5));
             return gen_unit_points(rng, 8, 18, 3);
           });
  s.always_feasible = true;
  s.one_interval = false;
  add(std::move(s));

  s = wrap("online_adversarial",
           "paper's Omega(n) online lower-bound family (deterministic)",
           [](std::uint64_t) { return gen_online_adversarial(5); });
  s.always_feasible = true;
  add(std::move(s));

  // -- adversarial additions ---------------------------------------------
  s = wrap("nested_windows", "strictly nested windows, shuffled job order",
           make_nested_windows);
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("sparse_spread",
           "wide windows far apart; one forced span per job",
           make_sparse_spread);
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("power_longhaul",
           "few wide-window jobs, long horizon; gaps straddle alpha",
           make_power_longhaul);
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("hall_critical",
           "zero-slack Hall-equality blocks; every schedule is forced",
           make_hall_critical);
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("staircase_multiproc",
           "p=3 staircase occupancy {1,2,3,3,2,1} with unit widening",
           make_staircase_multiproc);
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("infeasible_by_one",
           "Hall block with one job too many, plus feasible filler",
           make_infeasible_by_one);
  s.always_infeasible = true;
  add(std::move(s));

  s = wrap("overloaded_point", "all jobs pinned to one instant (p=1)",
           make_overloaded_point);
  s.always_infeasible = true;
  add(std::move(s));
}

const ScenarioCatalog& ScenarioCatalog::instance() {
  static const ScenarioCatalog catalog;
  return catalog;
}

const Scenario* ScenarioCatalog::find(std::string_view name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<const Scenario*> ScenarioCatalog::all() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, s] : scenarios_) out.push_back(&s);
  return out;
}

std::vector<std::string> ScenarioCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, s] : scenarios_) out.push_back(name);
  return out;
}

std::optional<Instance> make_scenario(std::string_view name,
                                      std::uint64_t seed) {
  const Scenario* s = ScenarioCatalog::instance().find(name);
  if (s == nullptr) return std::nullopt;
  return s->make(seed);
}

}  // namespace gapsched::scenarios

#include "gapsched/scenarios/scenarios.hpp"

#include <algorithm>
#include <utility>

#include "gapsched/core/transforms.hpp"
#include "gapsched/gen/generators.hpp"
#include "gapsched/util/prng.hpp"

namespace gapsched::scenarios {

namespace {

/// Decorrelates the per-family streams: the same user seed must not draw
/// the "same" randomness in every family.
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt) {
  return splitmix64(seed + 0x9e3779b97f4a7c15ull * salt);
}

// ------------------------------------------------- adversarial families --

/// Nested one-interval chain: window i is strictly inside window i - 1
/// ([b + i, b + 2n - 1 - i]); the innermost pair leaves two slots for the
/// last job. Stresses interval containment logic and forces global
/// placement decisions (a locally greedy choice in an outer window can
/// strand an inner job). Job order is shuffled so solvers cannot rely on
/// sortedness.
Instance make_nested_windows(std::uint64_t seed) {
  Prng rng(mix(seed, 7));
  constexpr std::size_t n = 8;
  const Time base = rng.uniform(0, 3);
  std::vector<std::pair<Time, Time>> windows;
  for (std::size_t i = 0; i < n; ++i) {
    const Time lo = base + static_cast<Time>(i);
    const Time hi = base + static_cast<Time>(2 * n - 1 - i);
    windows.emplace_back(lo, hi);
  }
  rng.shuffle(windows);
  return Instance::one_interval(windows);
}

/// Sparse spread: wide windows (11-15 slots) far apart, so every feasible
/// schedule pays one span per job — the max-gap and long-horizon power
/// stressor (every idle run is far longer than any reasonable alpha). The
/// wide windows make the whole-instance Prop 2.1 candidate axis pay
/// ~2(n+2) times per job while each single-job cluster needs only ~6
/// candidates, which is exactly the locality the prep decomposition
/// pipeline exploits (T9 records the on-vs-off speedup).
Instance make_sparse_spread(std::uint64_t seed) {
  Prng rng(mix(seed, 11));
  constexpr std::size_t n = 6;
  std::vector<std::pair<Time, Time>> windows;
  for (std::size_t i = 0; i < n; ++i) {
    const Time lo = static_cast<Time>(i) * 50 + rng.uniform(0, 3);
    windows.emplace_back(lo, lo + 10 + rng.uniform(0, 4));
  }
  return Instance::one_interval(windows);
}

/// Long horizon, few jobs, wide windows: the first two anchors sit close
/// enough that their idle run can dip below typical alpha values (the
/// bridging-decision side), while the remaining anchors leave idle runs
/// far above alpha over a ~400-unit timeline — the power solvers must make
/// non-trivial bridging decisions, and the monolithic DP pays the full
/// long-horizon candidate axis that the prep decomposition avoids.
Instance make_power_longhaul(std::uint64_t seed) {
  Prng rng(mix(seed, 13));
  constexpr Time kAnchors[] = {2, 14, 55, 115, 180, 250, 325, 405};
  std::vector<std::pair<Time, Time>> windows;
  for (Time anchor : kAnchors) {
    const Time t = anchor + rng.uniform(0, 4);
    const Time lo = std::max<Time>(0, t - rng.uniform(2, 7));
    windows.emplace_back(lo, t + rng.uniform(2, 7));
  }
  return Instance::one_interval(windows);
}

/// Hall-critical blocks: each block packs exactly b jobs into exactly b
/// slots (Hall's condition holds with equality), so every schedule is
/// forced and any perturbation tips infeasible. Exercises the tight side
/// of the feasibility machinery.
Instance make_hall_critical(std::uint64_t seed) {
  Prng rng(mix(seed, 17));
  constexpr std::size_t kBlocks = 3;
  constexpr Time kBlockLen = 3;
  std::vector<std::pair<Time, Time>> windows;
  Time start = rng.uniform(0, 2);
  for (std::size_t b = 0; b < kBlocks; ++b) {
    for (Time j = 0; j < kBlockLen; ++j) {
      windows.emplace_back(start, start + kBlockLen - 1);
    }
    start += kBlockLen + rng.uniform(2, 5);  // dead time between blocks
  }
  return Instance::one_interval(windows);
}

/// Multiprocessor staircase: pinned occupancy counts rise to p and fall
/// back ({1, 2, 3, 3, 2, 1} on p = 3), with a little seeded widening that
/// keeps the anchor schedule valid. Exercises the Lemma 1 staircase
/// accounting of the multiprocessor DPs.
Instance make_staircase_multiproc(std::uint64_t seed) {
  Prng rng(mix(seed, 19));
  constexpr int kCounts[] = {1, 2, 3, 3, 2, 1};
  Instance inst;
  inst.processors = 3;
  for (std::size_t t = 0; t < std::size(kCounts); ++t) {
    for (int c = 0; c < kCounts[t]; ++c) {
      const Time anchor = static_cast<Time>(t);
      const Time lo = std::max<Time>(0, anchor - rng.uniform(0, 1));
      inst.jobs.push_back(Job{TimeSet::window(lo, anchor + rng.uniform(0, 1))});
    }
  }
  return inst;
}

/// Infeasible by one: a Hall-critical block of b slots with b + 1 jobs
/// (one too many), plus feasible filler elsewhere. Solvers must report
/// infeasible without crashing or returning a partial answer.
Instance make_infeasible_by_one(std::uint64_t seed) {
  Prng rng(mix(seed, 23));
  constexpr Time kBlockLen = 4;
  const Time block = 8 + rng.uniform(0, 3);
  std::vector<std::pair<Time, Time>> windows;
  for (Time j = 0; j < kBlockLen + 1; ++j) {
    windows.emplace_back(block, block + kBlockLen - 1);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    // Filler strictly left of the block (clamped: the last window could
    // otherwise touch the block's first slot on small block draws).
    const Time lo = static_cast<Time>(i) * 2 + rng.uniform(0, 1);
    windows.emplace_back(lo, std::min<Time>(lo + 1, block - 1));
  }
  rng.shuffle(windows);
  return Instance::one_interval(windows);
}

/// Everyone at one instant: n jobs pinned to a single time on one
/// processor. The canonical near-infeasible sentinel stressor (every
/// subproblem of the DPs is infeasible).
Instance make_overloaded_point(std::uint64_t seed) {
  Prng rng(mix(seed, 29));
  const Time t = rng.uniform(0, 20);
  std::vector<std::pair<Time, Time>> windows(6, {t, t});
  return Instance::one_interval(windows);
}

/// Multi-interval power jobs straddling cluster cuts: two far-apart
/// clusters of one-interval jobs, welded into a single component by jobs
/// whose allowed set has one interval in each cluster. The prep pipeline
/// cannot cut through a straddler's span, so the long interior dead run
/// survives decomposition and only the length-aware compression can remove
/// it — the adversarial shape for the power objective's capped compression
/// (exercised by the multi-interval-capable exact families). Feasible by
/// construction: each cluster has at least as many slots as jobs that must
/// land in it, and straddlers can go either way.
Instance make_straddled_clusters(std::uint64_t seed) {
  Prng rng(mix(seed, 31));
  Instance inst;
  const Time left = rng.uniform(0, 3);
  const Time right = left + 40 + rng.uniform(0, 8);  // dead run >> n and alpha
  // Three anchored one-interval jobs per cluster (distinct anchors, a bit
  // of slack), so each cluster is feasible on its own.
  for (const Time base : {left, right}) {
    for (Time j = 0; j < 3; ++j) {
      const Time anchor = base + 2 * j;
      inst.jobs.push_back(
          Job{TimeSet::window(anchor, anchor + 1 + rng.uniform(0, 1))});
    }
  }
  // Two straddlers, each allowed a free slot in either cluster (the slot
  // past the anchored jobs' windows), welding the clusters together.
  for (int s = 0; s < 2; ++s) {
    inst.jobs.push_back(Job{TimeSet{{Interval{left + 7, left + 8 + s},
                                     Interval{right + 7, right + 8 + s}}}});
  }
  return inst;
}

/// Mixed feasible/infeasible mega-batch shape: several far-apart clusters
/// (a decomposition-friendly "mega" instance), where roughly half the
/// seeds overload exactly one cluster past Hall capacity. Differential
/// sweeps over many seeds therefore mix feasible and infeasible draws of
/// the same family — no per-seed guarantee is advertised — and the
/// infeasible draws pin that one bad component makes the recombined
/// verdict infeasible without disturbing its siblings.
Instance make_mega_mixed(std::uint64_t seed) {
  Prng rng(mix(seed, 37));
  constexpr int kClusters = 4;
  constexpr Time kBlockLen = 3;
  const bool overload = rng.uniform(0, 1) == 1;
  const int target = static_cast<int>(rng.uniform(0, kClusters - 1));
  std::vector<std::pair<Time, Time>> windows;
  Time base = rng.uniform(0, 3);
  for (int c = 0; c < kClusters; ++c) {
    // kBlockLen jobs in a kBlockLen-slot block (Hall equality)...
    for (Time j = 0; j < kBlockLen; ++j) {
      windows.emplace_back(base, base + kBlockLen - 1);
    }
    // ...plus, in the target cluster, the floater: pinned inside the full
    // block (one past Hall capacity — infeasible) or given the free slot
    // right after it (still feasible). Total job count is seed-invariant.
    if (c == target) {
      if (overload) {
        windows.emplace_back(base, base + kBlockLen - 1);
      } else {
        windows.emplace_back(base + kBlockLen, base + kBlockLen);
      }
    }
    base += kBlockLen + 40 + rng.uniform(0, 4);  // dead run >> n
  }
  rng.shuffle(windows);
  return Instance::one_interval(windows);
}

/// Scaling chain for the polynomial bcd solvers: anchors march right in
/// mostly unit steps with occasional sleep-worthy holes (> typical alpha),
/// windows widen a little on both sides so releases collide into shared
/// classes and deadlines locally invert — the shapes that exercise the
/// bcd release-class splits. Feasible by construction (job j at its anchor;
/// anchors are strictly increasing). Used both by the small static
/// `poly_chain` family and the dynamic `poly_scale:<n>` names that address
/// sizes far beyond the exponential DPs' envelopes.
Instance make_poly_scale(std::size_t n, std::uint64_t seed) {
  Prng rng(mix(seed, 43));
  Instance inst;
  inst.processors = 1;
  Time t = rng.uniform(0, 3);
  for (std::size_t j = 0; j < n; ++j) {
    const Time lead = rng.uniform(0, 2);
    const Time tail = 1 + rng.uniform(0, 3);
    inst.jobs.push_back(
        Job{TimeSet::window(std::max<Time>(0, t - lead), t + tail)});
    t += rng.uniform(0, 9) == 0 ? 5 + rng.uniform(0, 4) : 1;
  }
  return inst;
}

/// Wide-window companion to make_poly_scale: anchors march in kWideStride
/// steps and every window spans at least two strides, so the union of
/// windows is one connected run of usable time with no dead run anywhere —
/// nothing for the prep compression to shrink or the decomposition to cut.
/// The covered mass is ~n * kWideStride distinct candidate times: by
/// n = 2000 that overflows the exponential window DPs' 2^20 packed-key
/// theta axis, while the bcd families' segment frontiers never see the
/// width at all. Feasible by construction (job j at its anchor; anchors
/// strictly increase by more than the jitter).
Instance make_poly_wide(std::size_t n, std::uint64_t seed) {
  constexpr Time kWideStride = 600;
  Prng rng(mix(seed, 47));
  Instance inst;
  inst.processors = 1;
  for (std::size_t j = 0; j < n; ++j) {
    const Time anchor =
        static_cast<Time>(j) * kWideStride + rng.uniform(0, kWideStride / 2);
    const Time lead = rng.uniform(0, kWideStride / 2);
    const Time tail = 2 * kWideStride + rng.uniform(0, kWideStride / 4);
    inst.jobs.push_back(Job{
        TimeSet::window(std::max<Time>(0, anchor - lead), anchor + tail)});
  }
  return inst;
}

/// Parses "<prefix><n>" (1 <= n <= kMaxPolyScaleJobs) for the dynamically
/// sized families. Returns true and fills n on a well-formed name.
bool parse_sized_family(std::string_view name, std::string_view prefix,
                        std::size_t* n) {
  if (name.substr(0, prefix.size()) != prefix) return false;
  const std::string_view digits = name.substr(prefix.size());
  if (digits.empty()) return false;
  std::size_t jobs = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    jobs = jobs * 10 + static_cast<std::size_t>(c - '0');
    if (jobs > kMaxPolyScaleJobs) return false;
  }
  if (jobs < 1) return false;
  *n = jobs;
  return true;
}

/// Parses one "stretched:<k>:" layer off the front of `name`. Returns true
/// and fills k/base on a well-formed layer.
bool parse_stretched(std::string_view name, Time* k, std::string_view* base) {
  constexpr std::string_view kPrefix = "stretched:";
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  std::string_view rest = name.substr(kPrefix.size());
  const std::size_t colon = rest.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  Time factor = 0;
  for (char c : rest.substr(0, colon)) {
    if (c < '0' || c > '9') return false;
    factor = factor * 10 + (c - '0');
    if (factor > kMaxStretchFactor) return false;
  }
  if (factor < 1) return false;
  *k = factor;
  *base = rest.substr(colon + 1);
  return true;
}

Scenario wrap(std::string name, std::string summary,
              std::function<Instance(std::uint64_t)> make) {
  Scenario s;
  s.name = std::move(name);
  s.summary = std::move(summary);
  s.make = std::move(make);
  return s;
}

}  // namespace

ScenarioCatalog::ScenarioCatalog() {
  auto add = [this](Scenario s) {
    // Fill the per-seed-invariant descriptors from a probe draw.
    const Instance probe = s.make(1);
    s.jobs = probe.n();
    s.processors = probe.processors;
    scenarios_.emplace(s.name, std::move(s));
  };

  // -- the gen/ families, under stable names ------------------------------
  Scenario s = wrap("uniform_loose",
                    "uniform windows, moderate slack; may be infeasible",
                    [](std::uint64_t seed) {
                      Prng rng(mix(seed, 1));
                      return gen_uniform_one_interval(rng, 9, 18, 6);
                    });
  add(std::move(s));

  s = wrap("feasible_spread",
           "anchored one-interval jobs, slack 3; feasible by construction",
           [](std::uint64_t seed) {
             Prng rng(mix(seed, 2));
             return gen_feasible_one_interval(rng, 9, 18, 3);
           });
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("bursty_clusters",
           "3 bursts x 3 jobs, window 4; the sensor duty-cycle shape",
           [](std::uint64_t seed) {
             Prng rng(mix(seed, 3));
             return gen_bursty(rng, 3, 3, 12, 4);
           });
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("multi_interval_decoys",
           "anchored 2-interval jobs (Section 5 shape)",
           [](std::uint64_t seed) {
             Prng rng(mix(seed, 4));
             return gen_multi_interval(rng, 8, 20, 2, 2);
           });
  s.always_feasible = true;
  s.one_interval = false;
  add(std::move(s));

  s = wrap("unit_points", "anchored 3-unit point jobs (Section 5 shape)",
           [](std::uint64_t seed) {
             Prng rng(mix(seed, 5));
             return gen_unit_points(rng, 8, 18, 3);
           });
  s.always_feasible = true;
  s.one_interval = false;
  add(std::move(s));

  s = wrap("online_adversarial",
           "paper's Omega(n) online lower-bound family (deterministic)",
           [](std::uint64_t) { return gen_online_adversarial(5); });
  s.always_feasible = true;
  add(std::move(s));

  // -- adversarial additions ---------------------------------------------
  s = wrap("nested_windows", "strictly nested windows, shuffled job order",
           make_nested_windows);
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("sparse_spread",
           "wide windows far apart; one forced span per job",
           make_sparse_spread);
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("power_longhaul",
           "few wide-window jobs, long horizon; gaps straddle alpha",
           make_power_longhaul);
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("hall_critical",
           "zero-slack Hall-equality blocks; every schedule is forced",
           make_hall_critical);
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("staircase_multiproc",
           "p=3 staircase occupancy {1,2,3,3,2,1} with unit widening",
           make_staircase_multiproc);
  s.always_feasible = true;
  add(std::move(s));

  s = wrap("infeasible_by_one",
           "Hall block with one job too many, plus feasible filler",
           make_infeasible_by_one);
  s.always_infeasible = true;
  add(std::move(s));

  s = wrap("overloaded_point", "all jobs pinned to one instant (p=1)",
           make_overloaded_point);
  s.always_infeasible = true;
  add(std::move(s));

  s = wrap("straddled_clusters",
           "multi-interval jobs straddle two far-apart clusters; only "
           "compression removes the welded dead run",
           make_straddled_clusters);
  s.always_feasible = true;
  s.one_interval = false;
  add(std::move(s));

  s = wrap("mega_mixed",
           "4 far-apart Hall blocks; ~half the seeds overload one block "
           "(mixed feasible/infeasible mega-batches)",
           make_mega_mixed);
  add(std::move(s));

  s = wrap("poly_chain",
           "small draw of the poly_scale chain (shared release classes, "
           "local deadline inversions); scales via poly_scale:<n>",
           [](std::uint64_t seed) { return make_poly_scale(12, seed); });
  s.always_feasible = true;
  add(std::move(s));
}

const ScenarioCatalog& ScenarioCatalog::instance() {
  static const ScenarioCatalog catalog;
  return catalog;
}

const Scenario* ScenarioCatalog::find(std::string_view name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<const Scenario*> ScenarioCatalog::all() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, s] : scenarios_) out.push_back(&s);
  return out;
}

std::vector<std::string> ScenarioCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, s] : scenarios_) out.push_back(name);
  return out;
}

std::optional<Instance> make_scenario(std::string_view name,
                                      std::uint64_t seed) {
  // The dynamic time-dilation wrapper: "stretched:<k>:<base>" draws the
  // base scenario and dilates every interior dead run of length at least
  // kStretchMinRun by k. Wrappers nest ("stretched:2:stretched:3:x" dilates
  // by 6), though one level is the common use. Layers are folded into one
  // combined factor, applied once — equivalent to applying them in
  // sequence (a run either clears the floor, and every layer multiplies
  // it, or stays below it untouched) — and the COMBINED factor is bounded
  // by kMaxStretchFactor, so stacked layers cannot multiply past the
  // per-layer cap into Time overflow, and a pathological
  // "stretched:2:stretched:2:..." name cannot recurse unboundedly.
  Time combined = 1;
  bool wrapped = false;
  std::string_view spec = name;
  for (Time k = 0; true;) {
    std::string_view base;
    if (!parse_stretched(spec, &k, &base)) break;
    if (combined > kMaxStretchFactor / k) return std::nullopt;
    combined *= k;
    wrapped = true;
    spec = base;
  }
  if (wrapped) {
    std::optional<Instance> inner = make_scenario(spec, seed);
    if (!inner.has_value()) return std::nullopt;
    return stretch_dead_time(*inner, combined, kStretchMinRun);
  }
  // The dynamic scaling families: "poly_scale:<n>" draws the poly_chain
  // shape and "poly_wide:<n>" its wide-window companion at any size up to
  // kMaxPolyScaleJobs. Deliberately NOT in the static catalog: catalog-wide
  // sweeps run every registered family, and at these sizes the exponential
  // exact solvers would hang (poly_scale) or reject (poly_wide) rather
  // than answer.
  if (std::size_t jobs = 0; parse_sized_family(name, "poly_scale:", &jobs)) {
    return make_poly_scale(jobs, seed);
  }
  if (std::size_t jobs = 0; parse_sized_family(name, "poly_wide:", &jobs)) {
    return make_poly_wide(jobs, seed);
  }
  const Scenario* s = ScenarioCatalog::instance().find(name);
  if (s == nullptr) return std::nullopt;
  return s->make(seed);
}

}  // namespace gapsched::scenarios

#include "gapsched/greedy/fhkn_greedy.hpp"

#include <algorithm>
#include <limits>

#include "gapsched/matching/feasibility.hpp"

namespace gapsched {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);
constexpr std::int64_t kInfLen = std::numeric_limits<std::int64_t>::max() / 2;

// Matching of jobs to slot indices with a mutable blocked set, supporting
// cheap "would blocking these slots stay feasible?" trials that only rematch
// the displaced jobs.
class BlockableMatcher {
 public:
  BlockableMatcher(const Instance& inst, const std::vector<Time>& slot_times)
      : adj_(inst.n()),
        match_job_(inst.n(), kNone),
        match_slot_(slot_times.size(), kNone),
        blocked_(slot_times.size(), 0) {
    for (std::size_t j = 0; j < inst.n(); ++j) {
      for (const Interval& iv : inst.jobs[j].allowed.intervals()) {
        auto lo = std::lower_bound(slot_times.begin(), slot_times.end(), iv.lo);
        auto hi = std::upper_bound(lo, slot_times.end(), iv.hi);
        for (auto it = lo; it != hi; ++it) {
          adj_[j].push_back(static_cast<std::size_t>(it - slot_times.begin()));
        }
      }
    }
  }

  bool match_all() {
    for (std::size_t j = 0; j < adj_.size(); ++j) {
      if (match_job_[j] == kNone && !augment(j)) return false;
    }
    return true;
  }

  /// Tests whether all jobs remain matchable if slots [s_lo, s_hi] are also
  /// blocked. Leaves the matcher state unchanged.
  bool feasible_if_blocked(std::size_t s_lo, std::size_t s_hi) {
    const auto saved_job = match_job_;
    const auto saved_slot = match_slot_;
    std::vector<std::size_t> newly_blocked;
    for (std::size_t s = s_lo; s <= s_hi; ++s) {
      if (!blocked_[s]) {
        blocked_[s] = 1;
        newly_blocked.push_back(s);
      }
    }
    bool ok = true;
    for (std::size_t s = s_lo; s <= s_hi && ok; ++s) {
      const std::size_t j = match_slot_[s];
      if (j == kNone) continue;
      match_slot_[s] = kNone;
      match_job_[j] = kNone;
      ok = augment(j);
    }
    for (std::size_t s : newly_blocked) blocked_[s] = 0;
    match_job_ = saved_job;
    match_slot_ = saved_slot;
    return ok;
  }

  /// Permanently blocks slots [s_lo, s_hi], rematching displaced jobs.
  /// Must only be called after feasible_if_blocked succeeded.
  void commit_block(std::size_t s_lo, std::size_t s_hi) {
    for (std::size_t s = s_lo; s <= s_hi; ++s) blocked_[s] = 1;
    for (std::size_t s = s_lo; s <= s_hi; ++s) {
      const std::size_t j = match_slot_[s];
      if (j == kNone) continue;
      match_slot_[s] = kNone;
      match_job_[j] = kNone;
      augment(j);
    }
  }

  bool is_blocked(std::size_t s) const { return blocked_[s] != 0; }
  std::size_t slot_of(std::size_t job) const { return match_job_[job]; }

 private:
  bool augment(std::size_t j) {
    std::vector<char> visited(match_slot_.size(), 0);
    return try_augment(j, visited);
  }

  bool try_augment(std::size_t j, std::vector<char>& visited) {
    for (std::size_t s : adj_[j]) {
      if (blocked_[s] || visited[s]) continue;
      visited[s] = 1;
      if (match_slot_[s] == kNone || try_augment(match_slot_[s], visited)) {
        match_slot_[s] = j;
        match_job_[j] = s;
        return true;
      }
    }
    return false;
  }

  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::size_t> match_job_;
  std::vector<std::size_t> match_slot_;
  std::vector<char> blocked_;
};

}  // namespace

FhknResult fhkn_greedy(const Instance& inst) {
  Instance single = inst;
  single.processors = 1;
  if (single.n() == 0) return FhknResult{true, 0, {}, Schedule(0)};

  const SlotSpace slots = make_slot_space(single);
  const std::vector<Time>& vt = slots.slot_times;
  const std::size_t m = vt.size();

  BlockableMatcher matcher(single, vt);
  if (!matcher.match_all()) {
    return FhknResult{false, 0, {}, Schedule(single.n())};
  }

  // alive[s]: slot not yet removed from the timeline.
  std::vector<char> alive(m, 1);
  std::vector<Interval> committed;

  for (;;) {
    // Alive slot indices in order.
    std::vector<std::size_t> live;
    live.reserve(m);
    for (std::size_t s = 0; s < m; ++s) {
      if (alive[s]) live.push_back(s);
    }
    if (live.empty()) break;

    // Real-time extent of blocking live[i..j]: dead time on both sides is
    // free, so the gap stretches to the neighbouring live slots (or to
    // infinity at the timeline edges).
    auto gap_length = [&](std::size_t i, std::size_t j) -> std::int64_t {
      if (i == 0 || j + 1 == live.size()) return kInfLen;
      return vt[live[j + 1]] - vt[live[i - 1]] - 1;
    };

    std::int64_t best_len = 0;
    std::size_t best_i = kNone, best_j = kNone;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (!matcher.feasible_if_blocked(live[i], live[i])) continue;
      // Largest j >= i with live[i..j] blockable (monotone in j).
      std::size_t lo = i, hi = live.size() - 1;
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo + 1) / 2;
        if (matcher.feasible_if_blocked(live[i], live[mid])) {
          lo = mid;
        } else {
          hi = mid - 1;
        }
      }
      const std::int64_t len = gap_length(i, lo);
      // Prefer longer gaps; among infinite (edge) gaps, prefer more slots.
      const std::int64_t tie = static_cast<std::int64_t>(lo - i);
      if (len > best_len ||
          (len == best_len && best_i != kNone &&
           tie > static_cast<std::int64_t>(best_j - best_i))) {
        best_len = len;
        best_i = i;
        best_j = lo;
      }
    }
    if (best_i == kNone) break;  // no further gap can be introduced

    matcher.commit_block(live[best_i], live[best_j]);
    for (std::size_t s = live[best_i]; s <= live[best_j]; ++s) alive[s] = 0;
    committed.push_back(Interval{vt[live[best_i]], vt[live[best_j]]});
  }

  Schedule sched(single.n());
  for (std::size_t j = 0; j < single.n(); ++j) {
    sched.place(j, vt[matcher.slot_of(j)], 0);
  }
  const std::int64_t transitions = sched.profile().transitions();
  return FhknResult{true, transitions, std::move(committed), std::move(sched)};
}

}  // namespace gapsched

#include "gapsched/greedy/lazy.hpp"

#include <algorithm>
#include <cassert>

#include "gapsched/matching/feasibility.hpp"

namespace gapsched {

namespace {

// Feasibility of scheduling every job of `ids` within allowed times > t.
bool deferrable(const Instance& inst, const std::vector<std::size_t>& ids,
                Time t) {
  Instance rest;
  rest.processors = 1;
  rest.jobs.reserve(ids.size());
  for (std::size_t j : ids) {
    TimeSet clipped = inst.jobs[j].allowed.restricted_to(
        {t + 1, inst.jobs[j].deadline()});
    if (clipped.empty()) return false;
    rest.jobs.push_back(Job{std::move(clipped)});
  }
  return rest.jobs.empty() || is_feasible(rest);
}

}  // namespace

LazyResult lazy_schedule(const Instance& inst) {
  assert(inst.is_one_interval() &&
         "the procrastination heuristic runs on one-interval jobs");
  Instance single = inst;
  single.processors = 1;

  LazyResult out;
  out.schedule = Schedule(single.n());
  if (single.n() == 0) {
    out.feasible = true;
    return out;
  }
  if (!is_feasible(single)) return out;

  const SlotSpace slots = make_slot_space(single);
  std::vector<char> done(single.n(), 0);
  std::vector<std::size_t> unscheduled;

  for (Time t : slots.slot_times) {
    unscheduled.clear();
    bool any_pending = false;
    for (std::size_t j = 0; j < single.n(); ++j) {
      if (done[j]) continue;
      unscheduled.push_back(j);
      if (single.jobs[j].release() <= t) any_pending = true;
    }
    if (unscheduled.empty()) break;
    if (!any_pending) continue;
    if (deferrable(single, unscheduled, t)) continue;

    // Must run: earliest-deadline pending job takes this unit.
    std::size_t pick = static_cast<std::size_t>(-1);
    for (std::size_t j : unscheduled) {
      if (single.jobs[j].release() > t || single.jobs[j].deadline() < t) {
        continue;
      }
      if (pick == static_cast<std::size_t>(-1) ||
          single.jobs[j].deadline() < single.jobs[pick].deadline()) {
        pick = j;
      }
    }
    assert(pick != static_cast<std::size_t>(-1) &&
           "deferral infeasible but nothing runnable");
    out.schedule.place(pick, t, 0);
    done[pick] = 1;
  }

  // A feasible instance is always fully scheduled: deferral only fails when
  // something is runnable now, and running the EDF job preserves
  // feasibility of the remainder.
  out.feasible = out.schedule.complete();
  if (out.feasible) {
    out.transitions = out.schedule.profile().transitions();
  }
  return out;
}

}  // namespace gapsched

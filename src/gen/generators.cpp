#include "gapsched/gen/generators.hpp"

#include <algorithm>
#include <cassert>

namespace gapsched {

namespace {

// n distinct (time, processor) anchor slots within [0, horizon) x [0, p).
std::vector<Time> sample_anchor_times(Prng& rng, std::size_t n, Time horizon,
                                      int processors) {
  assert(horizon * processors >= static_cast<Time>(n) &&
         "not enough slots for anchors");
  // Sample distinct slot ids, then map to times (slot id / p).
  const std::int64_t total = horizon * processors;
  std::vector<std::int64_t> ids;
  ids.reserve(n);
  // Floyd's algorithm for a distinct sample.
  for (std::int64_t j = total - static_cast<std::int64_t>(n); j < total; ++j) {
    std::int64_t t = rng.uniform(0, j);
    if (std::find(ids.begin(), ids.end(), t) != ids.end()) t = j;
    ids.push_back(t);
  }
  std::vector<Time> anchors;
  anchors.reserve(n);
  for (std::int64_t id : ids) anchors.push_back(id / processors);
  return anchors;
}

}  // namespace

Instance gen_uniform_one_interval(Prng& rng, std::size_t n, Time horizon,
                                  Time max_window, int processors) {
  Instance inst;
  inst.processors = processors;
  inst.jobs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Time a = rng.uniform(0, horizon - 1);
    const Time len = rng.uniform(1, max_window);
    inst.jobs.push_back(Job{TimeSet::window(a, a + len - 1)});
  }
  return inst;
}

Instance gen_feasible_one_interval(Prng& rng, std::size_t n, Time horizon,
                                   Time slack, int processors) {
  const std::vector<Time> anchors =
      sample_anchor_times(rng, n, horizon, processors);
  Instance inst;
  inst.processors = processors;
  inst.jobs.reserve(n);
  for (Time t : anchors) {
    const Time lo = std::max<Time>(0, t - rng.uniform(0, slack));
    const Time hi = t + rng.uniform(0, slack);
    inst.jobs.push_back(Job{TimeSet::window(lo, hi)});
  }
  return inst;
}

Instance gen_bursty(Prng& rng, std::size_t bursts, std::size_t per_burst,
                    Time spacing, Time window_len, int processors) {
  Instance inst;
  inst.processors = processors;
  inst.jobs.reserve(bursts * per_burst);
  for (std::size_t b = 0; b < bursts; ++b) {
    const Time start = static_cast<Time>(b) * spacing;
    for (std::size_t j = 0; j < per_burst; ++j) {
      const Time a = start + rng.uniform(0, std::max<Time>(1, window_len / 4));
      inst.jobs.push_back(Job{TimeSet::window(a, a + window_len - 1)});
    }
  }
  return inst;
}

Instance gen_multi_interval(Prng& rng, std::size_t n, Time horizon,
                            std::size_t intervals, Time interval_len,
                            int processors) {
  assert(intervals >= 1);
  const std::vector<Time> anchors =
      sample_anchor_times(rng, n, horizon, processors);
  Instance inst;
  inst.processors = processors;
  inst.jobs.reserve(n);
  for (Time t : anchors) {
    std::vector<Interval> ivs{{t, t}};
    for (std::size_t d = 1; d < intervals; ++d) {
      const Time lo = rng.uniform(0, std::max<Time>(0, horizon - interval_len));
      ivs.push_back({lo, lo + interval_len - 1});
    }
    inst.jobs.push_back(Job{TimeSet(std::move(ivs))});
  }
  return inst;
}

Instance gen_unit_points(Prng& rng, std::size_t n, Time horizon, std::size_t k,
                         int processors) {
  assert(k >= 1);
  const std::vector<Time> anchors =
      sample_anchor_times(rng, n, horizon, processors);
  Instance inst;
  inst.processors = processors;
  inst.jobs.reserve(n);
  for (Time t : anchors) {
    std::vector<Time> pts{t};
    for (std::size_t d = 1; d < k; ++d) pts.push_back(rng.uniform(0, horizon - 1));
    inst.jobs.push_back(Job{TimeSet::points(pts)});
  }
  return inst;
}

Instance gen_online_adversarial(std::size_t n) {
  Instance inst;
  inst.processors = 1;
  const Time nn = static_cast<Time>(n);
  inst.jobs.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    inst.jobs.push_back(Job{TimeSet::window(0, 3 * nn)});
  }
  for (std::size_t i = 0; i < n; ++i) {
    const Time a = nn + 2 * static_cast<Time>(i);
    inst.jobs.push_back(Job{TimeSet::window(a, a + 1)});
  }
  return inst;
}

}  // namespace gapsched

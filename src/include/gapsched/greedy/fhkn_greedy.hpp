#pragma once
// The FHKN06 greedy for offline one-interval gap scheduling (cited by the
// paper as a 3-approximation, Section 1): repeatedly choose the largest time
// interval that can be declared idle while a feasible schedule still exists
// (checked by maximum-cardinality matching), remove it from the timeline,
// and repeat until no further interval can be introduced.
//
// Concretely over the compressed slot axis: a candidate gap blocks a
// contiguous run of still-available slot times and extends through the
// adjacent dead time on both sides; its length is measured in real time
// (runs touching the timeline edges count as infinite — an infinite idle
// interval is free under the transition objective). Blocking a superset of
// slots is never easier, so the largest feasible run per start index is
// found by binary search, with incremental rematching of only the displaced
// jobs. At termination every remaining slot is used by *every* feasible
// schedule, so the final matching's profile is the greedy's schedule.
//
// The 3-approximation guarantee applies to one-interval instances; the
// routine itself accepts any single-processor instance (multi-interval
// inputs exercise the Section 5 hardness territory and are used as such in
// the experiments).

#include <cstdint>

#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct FhknResult {
  bool feasible = false;
  /// Transitions (= spans for p = 1) of the produced schedule.
  std::int64_t transitions = 0;
  /// Committed gap intervals, in commit order (diagnostic).
  std::vector<Interval> committed_gaps;
  Schedule schedule;
};

/// Runs the FHKN greedy. Treats the instance as single-processor
/// (inst.processors is ignored).
FhknResult fhkn_greedy(const Instance& inst);

}  // namespace gapsched

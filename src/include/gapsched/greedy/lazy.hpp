#pragma once
// Deadline-procrastination heuristic for one-interval gap scheduling.
//
// The dual of the forced online EDF (online/online_edf.hpp): instead of
// running work as soon as it arrives, defer every job as long as the whole
// remaining instance stays feasible (checked by the matching oracle), and
// when deferral would break feasibility run the earliest-deadline pending
// job. Procrastination batches work at deadline-pressure points, the
// classic power-saving intuition ([ISG03]/[IP05] discuss this family of
// strategies); it is feasibility-preserving offline but carries no
// worst-case gap guarantee. Experiment T8 measures it: on loose workloads
// pure procrastination actually trails even eager EDF for the gap
// objective (deferring to deadlines scatters the forced runs), which is
// precisely why the paper's algorithms reason globally instead.

#include <cstdint>

#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct LazyResult {
  bool feasible = false;
  /// Transitions (= spans on one processor) of the produced schedule.
  std::int64_t transitions = 0;
  Schedule schedule;
};

/// Runs the procrastination heuristic. One-interval jobs, treated as
/// single-processor.
LazyResult lazy_schedule(const Instance& inst);

}  // namespace gapsched

#pragma once
// gapsched::serve protocol layer — newline-delimited JSON frames over TCP.
//
// Every frame is one io/json.hpp document on a single line, terminated by
// '\n', with a routing header spliced into the top-level object:
//
//   client -> server
//     {"frame":"request","id":7,"deadline_ms":2000, <request document>}
//     {"frame":"stats"}                 ask for the server's tallies
//     {"frame":"drain"}                 begin graceful server drain
//   server -> client
//     {"frame":"hello","id":-1, "server":..,"protocol":1,"shards":N,...}
//     {"frame":"result","id":7, <result document>}     completion order!
//     {"frame":"stats","id":-1, <server stats document>}
//     {"frame":"drain","id":-1}         drain acknowledged
//     {"frame":"error","id":7,"message":"..."}         id -1 = no request
//
// The body fields live at the same top level as the header, so the
// io/json.hpp readers — which ignore unknown fields — parse a frame
// directly: io::frame_head_from_json for routing, then
// io::request_from_json / io::result_from_json / io::server_stats_from_json
// for the payload. One codec end to end.
//
// Responses stream back in *completion* order, not request order: exact
// solvers have wildly heterogeneous per-request latency, and holding a
// finished answer hostage to an older slow one would serialize the whole
// connection. The client contract is therefore: tag every request with a
// unique id, match each result frame by its id, and reorder locally
// (Client::LoadGen and solver_cli --connect both do).
//
// This header also carries the minimal blocking TCP plumbing the server
// and the clients share (no third-party dependency): a listener, a stream,
// and the LineBuffer that turns a byte stream back into bounded frames.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gapsched/engine/types.hpp"
#include "gapsched/io/json.hpp"

namespace gapsched::serve {

/// Wire protocol revision; the hello frame carries it and clients refuse
/// to speak to a different one.
inline constexpr int kProtocolVersion = 1;

/// Frames larger than this are a protocol violation: the connection gets
/// one error frame and is closed (a line that never ends would otherwise
/// grow the reassembly buffer without bound).
inline constexpr std::size_t kDefaultMaxFrameBytes = 8u << 20;

// ---------------------------------------------------------- frame text --

/// {"frame":"hello",...}: protocol version, shard count, solver count.
std::string hello_frame(std::size_t shards, std::size_t solvers);

/// {"frame":"request","id":id,...}: a full request document with routing
/// header. `deadline_ms` <= 0 omits the deadline.
std::string request_frame(std::int64_t id, std::string_view solver,
                          const engine::SolveRequest& request,
                          double deadline_ms = 0.0);

/// {"frame":"result","id":id,...}: a full result document.
std::string result_frame(std::int64_t id, const engine::SolveResult& result);

/// {"frame":"stats"} with no body: the client-side stats request.
std::string stats_request_frame();

/// {"frame":"stats",...}: the server stats document.
std::string stats_frame(const io::ServerStatsWire& stats);

/// {"frame":"drain"}: request (client) or acknowledgement (server).
std::string drain_frame();

/// {"frame":"error","id":id,"message":...}; id -1 when the error is not
/// attributable to one request (malformed frame, drain rejection, ...).
std::string error_frame(std::int64_t id, std::string_view message);

/// Parsed routing header of one frame line (io::frame_head_from_json).
using FrameHead = io::FrameHead;

// --------------------------------------------------------- line frames --

/// Incremental newline splitter with a hard per-line bound. Feed raw
/// socket bytes with append(); take complete frames with next(). When a
/// line exceeds `max_line` the buffer enters a poisoned state: next()
/// reports the overflow once and the connection must be closed (framing
/// cannot be resynchronized after an unbounded line).
class LineBuffer {
 public:
  explicit LineBuffer(std::size_t max_line = kDefaultMaxFrameBytes);

  /// Appends raw bytes. Returns false when the buffer is poisoned by an
  /// over-long line (bytes are dropped from then on).
  bool append(std::string_view bytes);

  /// Next complete line without its '\n' (empty lines are skipped as
  /// keep-alives); nullopt when no full line is buffered.
  std::optional<std::string> next();

  bool overflowed() const { return overflowed_; }
  std::size_t buffered() const { return buffer_.size() - start_; }

 private:
  std::size_t max_line_;
  std::string buffer_;
  std::size_t start_ = 0;  // consumed prefix, compacted lazily
  bool overflowed_ = false;
};

// ------------------------------------------------------- TCP plumbing --

/// Splits "host:port"; false on a malformed spec.
bool parse_host_port(std::string_view spec, std::string* host, int* port);

/// A connected blocking socket (move-only RAII over the fd).
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();

  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Blocking connect to host:port (IPv4 dotted or "localhost").
  static std::optional<TcpStream> connect(const std::string& host, int port,
                                          std::string* error);

  bool valid() const { return fd_ >= 0; }

  /// Sends every byte (loops over partial writes, SIGPIPE suppressed).
  bool send_all(std::string_view bytes, std::string* error = nullptr);

  /// Blocking read into `buf`; > 0 bytes, 0 on orderly EOF, < 0 on error.
  long recv_some(char* buf, std::size_t cap);

  /// Shuts down both directions (unblocks a peer's recv) without
  /// releasing the fd.
  /// Half-close: flush-side FIN (SHUT_WR). The peer sees EOF after
  /// receiving everything already sent; data it is still sending is NOT
  /// destroyed (unlike shutting the read side, which RSTs late arrivals).
  void shutdown_write();
  void shutdown_both();

  void close();

 private:
  int fd_ = -1;
};

/// A listening socket. close() only shuts the socket down so a blocked
/// accept() returns cleanly; the fd is released by the destructor.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on host:port; port 0 picks an ephemeral port
  /// (report it back through port()).
  static std::optional<TcpListener> listen(const std::string& host, int port,
                                           std::string* error);

  bool valid() const { return fd_ >= 0; }
  int port() const { return port_; }

  /// Blocking accept; nullopt once the listener was close()d.
  std::optional<TcpStream> accept();

  void close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Blocking frame-level client connection: dial, send frames, read frames.
/// Shared by solver_cli --connect, gapsched_loadgen, and the tests.
class ClientChannel {
 public:
  static std::optional<ClientChannel> dial(const std::string& host, int port,
                                           std::string* error);

  bool send(const std::string& frame, std::string* error = nullptr);

  /// Blocks for the next complete frame line. nullopt with *error set on
  /// a malformed peer (oversized line) or transport error; nullopt with
  /// an empty *error on orderly EOF.
  std::optional<std::string> next_frame(std::string* error = nullptr);

  void close() { stream_.close(); }

 private:
  TcpStream stream_;
  LineBuffer lines_;
};

}  // namespace gapsched::serve

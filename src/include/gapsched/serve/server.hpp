#pragma once
// gapsched::serve::Server — the long-lived network front end over the
// engine::Session seam.
//
// Topology (one process):
//
//   acceptor thread ──► per-connection reader ──► shard queues (bounded)
//                                                   │  N worker shards,
//                                                   │  routed by
//                                                   │  canonical-key hash
//                                                   ▼
//                       per-connection writer ◄── result frames
//                         (bounded outbound queue, completion order)
//
// One SolverRegistry and one content-addressed SolveCache are shared by
// everything; each connection owns an engine::Session around them — the
// per-tenant shape the Session layer was built for. Requests travel the
// shard whose index is the canonical-key hash of their content, so
// identical (post-canonicalization) instances execute serially on one
// worker and dedup in the shared cache instead of racing.
//
// Backpressure: both queues are bounded. A slow shard blocks the readers
// feeding it; a slow client blocks the shard workers trying to deliver to
// it; blocked readers stop draining the TCP window. Nothing in the server
// buffers without bound.
//
// Graceful drain (SIGTERM in gapsched_serve, or a client "drain" frame):
// stop accepting connections, reject new request frames with an error
// frame, complete every request already accepted onto a shard, flush every
// outbound queue, then close. drain() returns only when all of that is
// done, so a front end can exit 0 knowing no accepted request was dropped.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gapsched/engine/cache.hpp"
#include "gapsched/engine/registry.hpp"
#include "gapsched/engine/session.hpp"
#include "gapsched/io/json.hpp"
#include "gapsched/serve/protocol.hpp"
#include "gapsched/serve/shard.hpp"

namespace gapsched::store {
class DiskStore;
}

namespace gapsched::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Worker shards; 0 picks min(4, hardware concurrency).
  std::size_t shards = 0;
  /// Bounded depth of each shard's task queue (backpressure).
  std::size_t shard_queue = 128;
  /// Bounded depth of each connection's outbound frame queue.
  std::size_t outbound_queue = 256;
  /// Entry cap of the shared content-addressed solve cache.
  std::size_t cache_capacity = 1u << 16;
  /// Hard per-frame byte bound; an over-long line closes the connection.
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Path of the persistent on-disk solve store shared by every shard
  /// (and with CLI sessions and future restarts); empty = memory-only.
  /// Opened at start(), which fails if the file is corrupt or foreign —
  /// a server asked to persist must not silently run without it.
  std::string store_path = {};
  /// Cost-weighted spill admission threshold (ms of solve wall time).
  double store_spill_min_ms = 0.1;
  /// Store file size budget (keep-most-expensive compaction); 0 = unbounded.
  std::size_t store_max_bytes = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor and shard workers. False
  /// with *error set when the port cannot be bound.
  bool start(std::string* error);

  /// The bound port (after start(); resolves port 0 requests).
  int port() const { return port_; }

  std::size_t shards() const;

  /// True once a drain began (no new requests are accepted).
  bool draining() const { return draining_.load(); }

  /// True once some client sent a "drain" frame. The owning front end is
  /// expected to react by calling drain() — the request is recorded, not
  /// executed, so drain() never runs on a connection thread.
  bool drain_requested() const { return drain_requested_.load(); }

  /// Blocks up to `timeout_s` for a drain request; true when one arrived.
  bool wait_drain_requested(double timeout_s);

  /// Graceful shutdown: stop accepting, complete all in-flight requests,
  /// flush and close every connection, join every thread. Idempotent;
  /// must not be called from a connection/shard thread.
  void drain();

  /// Current tallies: shared cache counters, aggregate pipeline roll-up,
  /// and the per-shard view — the body of the `stats` frame.
  io::ServerStatsWire stats() const;

  const engine::SolverRegistry& registry() const { return *registry_; }

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(const std::shared_ptr<Connection>& conn);
  void writer_loop(const std::shared_ptr<Connection>& conn);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   const std::string& line);
  void dispatch_request(const std::shared_ptr<Connection>& conn,
                        const FrameHead& head, const std::string& line);
  /// Joins and erases finished connections (called from the acceptor).
  void reap_finished_locked();

  ServerOptions options_;
  int port_ = 0;

  std::unique_ptr<engine::SolverRegistry> registry_;
  // Declared before cache_: ~SolveCache joins the spill worker that
  // appends to this store.
  std::unique_ptr<store::DiskStore> store_;
  std::unique_ptr<engine::SolveCache> cache_;

  /// One tally per shard; workers write their own entry, stats() snapshots
  /// under the mutex.
  struct ShardState {
    mutable std::mutex mu;
    ShardTally tally;
  };
  std::vector<std::unique_ptr<ShardState>> shard_states_;
  std::unique_ptr<ShardPool> shard_pool_;

  TcpListener listener_;
  std::thread acceptor_;

  struct ConnEntry {
    std::shared_ptr<Connection> conn;
    std::thread reader;
    std::thread writer;
  };
  std::mutex conns_mu_;
  std::vector<ConnEntry> conns_;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<bool> drain_requested_{false};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace gapsched::serve

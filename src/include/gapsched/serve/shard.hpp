#pragma once
// gapsched::serve sharding layer — how a mega-batch of requests spreads
// across worker shards without losing the cache's dedup wins.
//
// Requests are routed by *canonical-key hash*: the same content digest the
// engine's solve cache keys by (solver + objective + consumed params +
// prep-canonicalized instance). Identical clusters — byte-identical after
// canonicalization, however they were shifted or permuted on the wire —
// therefore always land on the same shard, where they execute serially:
// the first one populates the shared SolveCache and every duplicate is a
// hit instead of a racing duplicate solve. Distinct content spreads
// uniformly, which is what load-balances the heterogeneous per-request
// latencies of the exact solver families.
//
// Each shard runs one worker thread over a *bounded* queue. A full queue
// blocks the producer (the connection reader), which stops reading the
// socket, which backs the TCP window up to the client — end-to-end
// backpressure with no unbounded buffering anywhere in the server.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "gapsched/engine/solver.hpp"
#include "gapsched/engine/types.hpp"
#include "gapsched/io/json.hpp"

namespace gapsched::serve {

/// Content digest used for shard routing: the engine cache key's FNV-1a
/// digest of (solver, objective, consumed params, canonicalized instance).
/// Canonical-equivalent requests — time-shifted or job-permuted copies —
/// share a key, so they share a shard and dedup in its cache walk.
std::uint64_t shard_key(const engine::Solver& solver,
                        const engine::SolveRequest& request);

/// Routing fallback for requests naming an unknown solver (they still
/// travel a shard to produce their rejection in order).
std::uint64_t shard_key(std::string_view solver_name);

/// Maps a key onto one of `shards` workers (shards >= 1).
std::size_t shard_of(std::uint64_t key, std::size_t shards);

/// Per-shard roll-up, aggregated into the server's `stats` frame.
struct ShardTally {
  std::uint64_t requests = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t refuted = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t component_cache_hits = 0;
  engine::pipeline::PipelineStats pipeline;

  /// Folds one finished response into the tallies.
  void absorb(const engine::SolveResult& result);

  /// The wire form of this tally for shard index `shard`.
  io::ShardStatsWire wire(std::size_t shard) const;
};

/// A bounded multi-producer single-consumer queue. push() blocks while the
/// queue is at capacity — that block is the backpressure seam — and
/// returns false once the queue is closed. pop() blocks for the next item
/// and returns nullopt when the queue is closed *and* empty, so a closed
/// queue still drains everything that was accepted.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  bool push(T item) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_space_.wait(lk,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    cv_item_.notify_one();
    return true;
  }

  std::optional<T> pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_item_.wait(lk, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    cv_space_.notify_one();
    return item;
  }

  /// Stops accepting pushes; queued items remain poppable.
  void close() {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
    cv_item_.notify_all();
    cv_space_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_item_;
  std::condition_variable cv_space_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// N worker shards, each a thread draining its own bounded task queue.
/// Tasks routed to one shard run serially in submission order; distinct
/// shards run concurrently. drain() closes every queue, lets the workers
/// finish everything already accepted, and joins them — no accepted task
/// is ever dropped.
class ShardPool {
 public:
  using Task = std::function<void()>;

  /// `shards` workers (>= 1 enforced), each with a `queue_capacity`-deep
  /// bounded queue.
  ShardPool(std::size_t shards, std::size_t queue_capacity);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  std::size_t shards() const { return workers_.size(); }

  /// Enqueues onto shard `shard` (mod shards()). Blocks while that
  /// shard's queue is full; false once the pool is draining.
  bool submit(std::size_t shard, Task task);

  /// Queue depth of one shard (diagnostic).
  std::size_t queued(std::size_t shard) const;

  /// Completes every accepted task, then joins the workers. Idempotent.
  void drain();

 private:
  std::vector<std::unique_ptr<BoundedQueue<Task>>> queues_;
  std::vector<std::thread> workers_;
  std::mutex drain_mu_;
  bool drained_ = false;
};

}  // namespace gapsched::serve

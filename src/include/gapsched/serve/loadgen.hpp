#pragma once
// gapsched::serve load generator — the client half of the serving stack.
//
// run_load() opens N concurrent connections to a gapsched_serve endpoint
// and drives a mixed scenario burst through them, each connection running
// a sliding window of in-flight requests (send until the window is full,
// then block on the next response). Every response is matched back to its
// request id — the reorder contract: the server streams results in
// *completion* order, the client is the one that restores request order —
// and per-family latency is summarized as p50/p95/p99.
//
// The report is strict by construction: a request without a matching
// response is a drop, a response with an unknown id is a protocol error,
// and a server-side oracle refutation (params.validate is on by default)
// is counted and fails the run. bench/tab11_serve_load exits non-zero on
// any of them.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gapsched/engine/types.hpp"
#include "gapsched/io/json.hpp"

namespace gapsched::serve {

/// One scenario family of the burst: `requests` draws of `scenario`,
/// solved by `solver` under `objective`.
struct LoadSpec {
  /// Catalog or dynamic scenario name ("mega_mixed", "poly_scale:600",
  /// "stretched:16:power_longhaul", ...).
  std::string scenario;
  std::string solver;
  engine::Objective objective = engine::Objective::kGaps;
  engine::SolveParams params;  // validate defaults true via run_load
  std::size_t requests = 0;
  /// Seeds are seed_base, seed_base+1, ... except every
  /// `duplicate_every`-th request reuses seed_base — canonical-identical
  /// traffic that must dedup on one shard (0 disables duplicates).
  std::uint64_t seed_base = 1;
  std::size_t duplicate_every = 0;
  /// Per-request deadline on the wire; 0 sends none.
  double deadline_ms = 0.0;
};

/// Order statistics of one family's response latencies.
struct LatencySummary {
  std::size_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

/// Destructively summarizes a latency sample (sorts in place).
LatencySummary summarize_latencies(std::vector<double>& latencies_ms);

/// Per-family outcome tallies.
struct FamilyReport {
  std::string label;  // "<scenario>/<solver>"
  LatencySummary latency;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t ok = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t refuted = 0;
  std::uint64_t error_frames = 0;
};

/// The whole-burst verdict.
struct LoadReport {
  bool ok = false;          // every check below passed
  std::string error;        // first fatal problem (transport, protocol)
  std::vector<FamilyReport> families;

  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t dropped = 0;         // sent - received (must be 0)
  std::uint64_t refuted = 0;         // server-audited oracle refutations
  std::uint64_t error_frames = 0;    // error frames answering requests
  std::uint64_t duplicate_ids = 0;   // same id answered twice (must be 0)
  std::uint64_t unknown_ids = 0;     // response id never sent (must be 0)

  /// Responses observed arriving out of submission order — evidence the
  /// completion-order stream really is unordered and the id-based reorder
  /// on the client is doing work. Informational, not a failure.
  std::uint64_t out_of_order = 0;

  double wall_s = 0.0;
  double throughput_rps = 0.0;

  /// The server's `stats` frame fetched after the burst.
  bool server_stats_ok = false;
  io::ServerStatsWire server_stats;
};

struct LoadOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Concurrent client connections; the burst is dealt round-robin.
  std::size_t connections = 4;
  /// Max in-flight requests per connection (sliding window).
  std::size_t window = 16;
  /// Fetch a `stats` frame after the burst completes.
  bool fetch_stats = true;
  /// Force params.validate on every request (server-side oracle audit).
  bool validate = true;
};

/// Runs the burst and returns the verdict. report.ok is true iff every
/// request got exactly one response, nothing was refuted, and no error
/// frame answered a well-formed request.
LoadReport run_load(const LoadOptions& options,
                    const std::vector<LoadSpec>& specs);

}  // namespace gapsched::serve

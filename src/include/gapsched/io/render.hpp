#pragma once
// ASCII Gantt rendering of schedules, used by the example binaries.

#include <string>

#include "gapsched/core/instance.hpp"
#include "gapsched/core/schedule.hpp"

namespace gapsched {

/// Renders the schedule as one row per processor over the instance horizon,
/// with job indices (mod 10) in busy cells and '.' in idle cells. Dead
/// stretches longer than 6 units are elided as "~~g~~" (g = length). Jobs
/// without explicit processors are placed in staircase order. Intended for
/// horizons up to a few hundred units.
std::string render_gantt(const Instance& inst, const Schedule& schedule);

/// One-line summary of a schedule's objective values:
/// "transitions=3 interior_gaps=1 busy=7 power(alpha)=12.5".
std::string describe_schedule(const Schedule& schedule, double alpha);

}  // namespace gapsched

#pragma once
// Plain-text (de)serialization of instances and schedules.
//
// Format (line oriented, '#' comments allowed):
//   gapsched-instance v1
//   processors <p>
//   jobs <n>
//   job <k> <lo1> <hi1> ... <lok> <hik>     (one line per job)
//
//   gapsched-schedule v1
//   jobs <n>
//   slot <job> <time> <processor|->          (one line per scheduled job)

#include <iosfwd>
#include <optional>
#include <string>

#include "gapsched/core/instance.hpp"
#include "gapsched/core/schedule.hpp"

namespace gapsched {

void write_instance(std::ostream& os, const Instance& inst);
std::string instance_to_string(const Instance& inst);

/// Parses an instance; returns nullopt (with *error set when non-null) on a
/// malformed document.
std::optional<Instance> read_instance(std::istream& is,
                                      std::string* error = nullptr);
std::optional<Instance> instance_from_string(const std::string& text,
                                             std::string* error = nullptr);

void write_schedule(std::ostream& os, const Schedule& s);
std::optional<Schedule> read_schedule(std::istream& is,
                                      std::string* error = nullptr);

}  // namespace gapsched

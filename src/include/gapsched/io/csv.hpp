#pragma once
// CSV emission helper: every experiment binary writes the table it printed
// next to its own binary so figures can be re-plotted without re-running.

#include <string>

#include "gapsched/util/table.hpp"

namespace gapsched {

/// Writes `table` as CSV to `path`. Returns false (and leaves no partial
/// file guarantees) on I/O failure.
bool write_csv(const std::string& path, const Table& table);

}  // namespace gapsched

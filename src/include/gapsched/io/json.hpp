#pragma once
// JSON request/response codec for the solver engine: the one wire
// representation shared by `solver_cli --json`, the benches, and any
// server front end, so every consumer reads and writes the same documents.
//
// Request document:
//   {
//     "gapsched": "request",
//     "solver": "power_dp",
//     "objective": "power",
//     "params": { "alpha": 2.5, "max_spans": 1, "powerdown_threshold": -1,
//                 "swap_size": 2, "block_size": 2, "time_limit_s": 0,
//                 "validate": false, "decompose": true, "compress": true },
//     "instance": { "processors": 1,
//                   "jobs": [ [[0, 5]], [[2, 3], [8, 9]] ] }
//   }
// (each job is its list of inclusive [lo, hi] allowed intervals; omitted
// params keep their defaults).
//
// Response document:
//   {
//     "gapsched": "result",
//     "ok": true, "error": "", "feasible": true, "cost": 2,
//     "transitions": 2, "timed_out": false,
//     "audited": false, "audit_error": "",
//     "stats": { "wall_ms": ..., "states": ..., "nodes": ...,
//                "scheduled": ..., "components": ..., "cache_hit": false,
//                "component_cache_hits": 0, "components_deduped": 0,
//                "dead_time_removed": 0,
//                "memo_arena_solves": 0, "memo_hash_solves": 0,
//                "memo_parallel_solves": 0, "memo_find_calls": 0,
//                "memo_probe_steps": 0, "memo_pruned": 0,
//                "stages": { "canonicalize": { "ran": false, "ms": 0 },
//                            ... one entry per pipeline stage, in order:
//                            canonicalize, decompose, compress,
//                            cache_lookup, dispatch, recombine, audit } },
//     "schedule": { "jobs": 5,
//                   "slots": [ { "job": 0, "time": 10, "processor": -1 } ] }
//   }
// (slots list only scheduled jobs; processor -1 means profile form; the
// stats object always reports all seven stages with their ran/skip verdict
// and per-request wall time — see engine::PipelineStage).
//
// The readers accept any standard JSON document with these fields (extra
// fields are ignored) and return nullopt with *error set on malformed
// input. Non-finite doubles degrade to null on write, matching
// bench/json_report.hpp.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gapsched/engine/cache.hpp"
#include "gapsched/engine/pipeline.hpp"
#include "gapsched/engine/types.hpp"

namespace gapsched::io {

/// Deepest accepted nesting of any document on the wire. The parser reads
/// untrusted socket bytes (serve/protocol.hpp), so recursion depth is a
/// resource limit, not a style choice: a document nested deeper than this
/// is rejected with a clean parse error instead of recursing toward a
/// stack overflow. Engine documents nest 6 levels; 64 leaves an order of
/// magnitude of headroom.
inline constexpr int kMaxParseDepth = 64;

/// Serializes a named engine request.
std::string request_to_json(std::string_view solver,
                            const engine::SolveRequest& request);

/// Parses a request document; fills *solver with the "solver" field.
std::optional<engine::SolveRequest> request_from_json(
    std::string_view text, std::string* solver, std::string* error = nullptr);

/// Serializes an engine result.
std::string result_to_json(const engine::SolveResult& result);

/// Parses a result document.
std::optional<engine::SolveResult> result_from_json(
    std::string_view text, std::string* error = nullptr);

// ----------------------------------------------------- stats documents --
// One codec for every tally the engine exposes: the server's `stats`
// frame, `solver_cli --cache-stats`, and the benches all read and write
// these documents instead of ad-hoc printing. Readers are tolerant to
// missing fields (they keep their defaults, like the result codec's
// `stages` object) but reject wrong types and unknown stage names.

/// Serializes SolveCache tallies:
///   {"gapsched": "cache_stats", "hits": 0, "misses": 0, "insertions": 0,
///    "evictions": 0, "entries": 0, "capacity": 0}
std::string cache_stats_to_json(const engine::CacheStats& stats);
std::optional<engine::CacheStats> cache_stats_from_json(
    std::string_view text, std::string* error = nullptr);

/// Serializes a Session's per-stage pipeline roll-up:
///   {"gapsched": "pipeline_stats", "requests": 0,
///    "stages": {"canonicalize": {"runs": 0, "skips": 0, "total_ms": 0},
///               ... one entry per PipelineStage ...}}
std::string pipeline_stats_to_json(
    const engine::pipeline::PipelineStats& stats);
std::optional<engine::pipeline::PipelineStats> pipeline_stats_from_json(
    std::string_view text, std::string* error = nullptr);

/// One worker shard's roll-up on the wire (serve/shard.hpp fills it).
struct ShardStatsWire {
  std::int64_t shard = 0;
  std::uint64_t requests = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t refuted = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t component_cache_hits = 0;
  engine::pipeline::PipelineStats pipeline;
};

/// The server `stats` frame body: the shared cache's tallies, the
/// aggregate pipeline roll-up, and one entry per worker shard.
struct ServerStatsWire {
  engine::CacheStats cache;
  engine::pipeline::PipelineStats pipeline;
  std::vector<ShardStatsWire> shards;
};

std::string server_stats_to_json(const ServerStatsWire& stats);
std::optional<ServerStatsWire> server_stats_from_json(
    std::string_view text, std::string* error = nullptr);

// ------------------------------------------------------- frame headers --
// serve/protocol.hpp frames are ordinary documents of this codec with a
// routing header spliced in ("frame", "id", "deadline_ms", "message").
// The header is parsed here so the server and every client agree on one
// reader; the frame body (request/result/stats fields at the same top
// level) goes through the matching *_from_json above, which ignores the
// header fields like any other extras.

struct FrameHead {
  /// Frame type: "hello", "request", "result", "stats", "drain", "error".
  std::string frame;
  /// Request/response correlation id; -1 when the frame carries none.
  std::int64_t id = -1;
  /// Per-request deadline in milliseconds from receipt; 0 disables it.
  double deadline_ms = 0.0;
  /// Human-readable diagnostic of an "error" frame.
  std::string message;
};

/// Parses the routing header of one frame. Fails on documents without a
/// string "frame" field, negative deadlines, or non-integer ids.
std::optional<FrameHead> frame_head_from_json(std::string_view text,
                                              std::string* error = nullptr);

}  // namespace gapsched::io

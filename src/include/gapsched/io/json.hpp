#pragma once
// JSON request/response codec for the solver engine: the one wire
// representation shared by `solver_cli --json`, the benches, and any
// server front end, so every consumer reads and writes the same documents.
//
// Request document:
//   {
//     "gapsched": "request",
//     "solver": "power_dp",
//     "objective": "power",
//     "params": { "alpha": 2.5, "max_spans": 1, "powerdown_threshold": -1,
//                 "swap_size": 2, "block_size": 2, "time_limit_s": 0,
//                 "validate": false, "decompose": true, "compress": true },
//     "instance": { "processors": 1,
//                   "jobs": [ [[0, 5]], [[2, 3], [8, 9]] ] }
//   }
// (each job is its list of inclusive [lo, hi] allowed intervals; omitted
// params keep their defaults).
//
// Response document:
//   {
//     "gapsched": "result",
//     "ok": true, "error": "", "feasible": true, "cost": 2,
//     "transitions": 2, "timed_out": false,
//     "audited": false, "audit_error": "",
//     "stats": { "wall_ms": ..., "states": ..., "nodes": ...,
//                "scheduled": ..., "components": ..., "cache_hit": false,
//                "component_cache_hits": 0, "components_deduped": 0,
//                "dead_time_removed": 0,
//                "memo_arena_solves": 0, "memo_hash_solves": 0,
//                "memo_parallel_solves": 0, "memo_find_calls": 0,
//                "memo_probe_steps": 0, "memo_pruned": 0,
//                "stages": { "canonicalize": { "ran": false, "ms": 0 },
//                            ... one entry per pipeline stage, in order:
//                            canonicalize, decompose, compress,
//                            cache_lookup, dispatch, recombine, audit } },
//     "schedule": { "jobs": 5,
//                   "slots": [ { "job": 0, "time": 10, "processor": -1 } ] }
//   }
// (slots list only scheduled jobs; processor -1 means profile form; the
// stats object always reports all seven stages with their ran/skip verdict
// and per-request wall time — see engine::PipelineStage).
//
// The readers accept any standard JSON document with these fields (extra
// fields are ignored) and return nullopt with *error set on malformed
// input. Non-finite doubles degrade to null on write, matching
// bench/json_report.hpp.

#include <optional>
#include <string>
#include <string_view>

#include "gapsched/engine/types.hpp"

namespace gapsched::io {

/// Serializes a named engine request.
std::string request_to_json(std::string_view solver,
                            const engine::SolveRequest& request);

/// Parses a request document; fills *solver with the "solver" field.
std::optional<engine::SolveRequest> request_from_json(
    std::string_view text, std::string* solver, std::string* error = nullptr);

/// Serializes an engine result.
std::string result_to_json(const engine::SolveResult& result);

/// Parses a result document.
std::optional<engine::SolveResult> result_from_json(
    std::string_view text, std::string* error = nullptr);

}  // namespace gapsched::io

#pragma once
// gapsched::prep — instance canonicalization and independent-component
// decomposition, the preprocessing stage of the solver engine.
//
// On sparse long-horizon workloads (scenario:sparse_spread,
// scenario:power_longhaul) the Theorem 1/2 DPs pay for the full Prop 2.1
// candidate-time axis — and its O(n^5)-ish state space — even when the jobs
// form far-apart clusters that provably cannot interact. Baptiste–Chrobak–
// Dürr's minimum-energy algorithms and the gap-model survey both exploit
// exactly this locality; this module brings it into the engine:
//
//   canonicalize()  sort jobs by (release, deadline, id) and shift the
//                   origin to time 0, with the inverse job/time maps;
//   decompose()     split the canonical instance into independent
//                   components wherever consecutive job clusters are
//                   separated by more than a threshold of empty time units;
//   recombine()     merge per-component schedules back into an n-job
//                   schedule in original job ids and original times.
//
// Soundness of the cut (gap objective): a component's cluster interval
// covers every member job's allowed set, so no job can ever execute in the
// dead run between two components and every schedule's occupancy is 0
// there. With at least one guaranteed-idle unit between clusters, staircase
// transitions are additive across components, hence the joint optimum is
// the sum of the component optima. The engine cuts at separation > n
// (Prop 2.1: no candidate-time neighbourhood reaches further than n+1 past
// a release or deadline, so the per-component candidate axes cannot touch).
//
// Soundness of the cut (power objective): additionally requires the dead
// run to be at least alpha long. Then bridging a processor across the cut
// (cost = run length) is never cheaper than sleeping and paying the fresh
// wake-up alpha that the right component's independent optimum already
// charges, so the joint optimum again equals the sum — the closed-form
// "bridge term" min(gap, alpha) degenerates to alpha, i.e. to the wake-ups
// the components price themselves. The engine therefore cuts power solves
// at separation > max(n, ceil(alpha)).
//
// Dead time the cut cannot remove (interior runs of at most the threshold,
// or runs welded into one component by a straddling multi-interval job) is
// handled by the pipeline's length-aware compression instead
// (core/transforms): gap components shrink every interior dead run to one
// unit, power components to min(run, ceil(alpha) + 1) — the smallest cap
// that keeps every min(gap, alpha) bridge term exact, because a truncated
// run is already longer than alpha on both sides of the map. Compression
// is what normalizes component cache keys across dead-run lengths.

#include <cstddef>
#include <vector>

#include "gapsched/core/instance.hpp"
#include "gapsched/core/schedule.hpp"

namespace gapsched::prep {

/// The canonical form of an instance plus the maps back to the original.
struct Canonical {
  /// Jobs sorted by (release, deadline, original id), every allowed set
  /// shifted so the earliest release sits at time 0.
  Instance instance;
  /// original time = canonical time + shift.
  Time shift = 0;
  /// order[i] = original index of canonical job i.
  std::vector<std::size_t> order;
};

/// Canonicalizes `inst`. Idempotent: canonicalizing a canonical instance
/// yields shift 0 and the identity order.
Canonical canonicalize(const Instance& inst);

/// One independent sub-instance of a decomposition.
struct Component {
  /// The component's jobs, origin shifted to time 0.
  Instance instance;
  /// original time = component-local time + shift.
  Time shift = 0;
  /// jobs[i] = original index of component job i.
  std::vector<std::size_t> jobs;
};

/// A split of an instance into independent components, in time order.
struct Decomposition {
  std::vector<Component> components;
  /// Dead time units strictly between consecutive components' clusters
  /// (size components.size() - 1); every entry exceeds the cut threshold.
  std::vector<Time> separations;
};

/// Splits `inst` into independent components wherever consecutive job
/// clusters — grouped by the span [allowed.min(), allowed.max()], so a
/// multi-interval job welds together everything it straddles — are
/// separated by strictly more than `threshold` empty time units. With
/// threshold >= n the components' gap optima are additive; see the file
/// comment for the power-objective threshold. threshold < 0 is treated
/// as 0. n == 0 yields zero components.
Decomposition decompose(const Instance& inst, Time threshold);

/// Merges per-component schedules (parts[c] solves components[c].instance
/// in its local coordinates) back into one n-job schedule in original job
/// ids and original times. Unscheduled component jobs stay unscheduled.
Schedule recombine(const Decomposition& dec,
                   const std::vector<Schedule>& parts, std::size_t n);

}  // namespace gapsched::prep

#pragma once
// Monotonic wall-clock stopwatch used by the experiment harness.

#include <chrono>

namespace gapsched {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last reset.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gapsched

#pragma once
// Seeded pseudo-random number utilities.
//
// All stochastic components of the library (workload generators, randomized
// tie-breaking in local search) draw from an explicitly seeded engine so that
// every experiment in bench/ is reproducible from the seed it prints.

#include <cstdint>
#include <random>
#include <vector>

namespace gapsched {

/// The splitmix64 finalizer: a cheap bijective mixer used to derive
/// decorrelated seeds (scenario salts, test-site seeds) from related inputs.
inline std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Deterministic 64-bit PRNG wrapper around std::mt19937_64 with convenience
/// sampling helpers. Copyable; copying forks the stream deterministically.
class Prng {
 public:
  explicit Prng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Seed this engine was constructed with (for experiment logging).
  std::uint64_t seed() const { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Bernoulli trial with success probability p.
  bool chance(double p);

  /// Uniformly chosen index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derive an independent child stream (used to hand sub-seeds to worker
  /// threads without sharing mutable state).
  Prng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace gapsched

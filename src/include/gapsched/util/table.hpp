#pragma once
// Aligned plain-text table printer used by every experiment binary to emit
// the paper-style rows it reproduces.

#include <iosfwd>
#include <string>
#include <vector>

namespace gapsched {

/// Collects rows of string cells and prints them with per-column alignment.
/// Numeric convenience overloads format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls append cells to it.
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(std::int64_t v);
  Table& add(std::size_t v);
  Table& add(int v);
  Table& add(double v, int precision = 3);

  /// Number of data rows accumulated so far.
  std::size_t rows() const { return rows_.size(); }

  /// Render with space-padded columns and a rule under the header.
  void print(std::ostream& os) const;

  /// Render as CSV (no padding, comma separated, no escaping needed for the
  /// numeric/identifier cells this library produces).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gapsched

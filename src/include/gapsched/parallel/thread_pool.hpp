#pragma once
// Minimal work-stealing-free thread pool used by the benchmark sweeps to
// evaluate independent instances in parallel. The solver code itself is
// single-threaded and deterministic; parallelism lives only at the harness
// level, which keeps results bitwise reproducible regardless of thread count.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gapsched {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
/// fn must be safe to invoke concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace gapsched

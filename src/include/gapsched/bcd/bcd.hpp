#pragma once
// Public surface of the Baptiste-Chrobak-Durr polynomial solver family
// ([BCD07], arXiv:0908.3505): minimum-gap and minimum-energy scheduling of
// one-interval unit jobs on a single processor in polynomial time — the
// registry's `bcd_poly_gap` / `bcd_poly_power` families, and the algorithm
// behind the `baptiste` alias. The DP itself (release-class decomposition
// with Pareto frontiers per subproblem) lives in bcd_core.hpp; this header
// is the result-struct API mirroring gap_dp.hpp / power_dp.hpp so callers
// and the engine treat the families uniformly.
//
// Both solvers ignore `Instance::processors` and treat the instance as
// single-machine, matching solve_baptiste's historical contract; the engine
// registration separately enforces max_processors = 1 for the families.

#include <cstddef>
#include <cstdint>
#include <string>

#include "gapsched/bcd/bcd_core.hpp"
#include "gapsched/core/instance.hpp"
#include "gapsched/core/schedule.hpp"

namespace gapsched {

/// Minimum-gap answer. `transitions` counts sleep->active wake-ups, i.e.
/// the number of busy blocks (interior gaps + 1) — identical semantics to
/// GapDpResult on one processor.
struct BcdGapResult {
  bool feasible = false;
  std::int64_t transitions = 0;
  Schedule schedule;
  /// Memoized (prefix, release-band) subproblems touched.
  std::size_t states = 0;
  /// Pareto frontier entries kept across all subproblems (table cells).
  std::size_t entries = 0;
  /// Non-empty when the solve was refused (shape guard or budget valve);
  /// feasible/transitions/schedule are meaningless then.
  std::string error;
};

/// Minimum-energy answer: power = n + alpha + sum over interior gaps of
/// min(gap, alpha) — the same objective solve_power_dp reports.
struct BcdPowerResult {
  bool feasible = false;
  double power = 0.0;
  Schedule schedule;
  std::size_t states = 0;
  std::size_t entries = 0;
  std::string error;
};

BcdGapResult solve_bcd_gap(const Instance& inst);
BcdGapResult solve_bcd_gap(const Instance& inst, const bcd::BcdOptions& opts);

BcdPowerResult solve_bcd_power(const Instance& inst, double alpha);
BcdPowerResult solve_bcd_power(const Instance& inst, double alpha,
                               const bcd::BcdOptions& opts);

}  // namespace gapsched

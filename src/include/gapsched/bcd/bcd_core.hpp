#pragma once
// The Baptiste-Chrobak-Durr polynomial dynamic program for single-processor
// gap/energy minimization of one-interval unit jobs ([BCD07] / arXiv:
// 0908.3505 — the polynomial-time algorithms the exponential Theorem 1/2
// window DPs are benchmarked against). One templated engine serves both
// objectives; the seam-cost policy is the only difference (gap: 1 per
// non-empty idle seam; power: min(seam, alpha), the Section 2 bridging term).
//
// Structure. Jobs are sorted by (deadline, id); releases are bucketed into
// classes (the sorted distinct release values). A subproblem is the job set
//
//   J(k, lo, hi) = { j <= k : rel[lo] < r_j <= rel[hi] }
//
// — a deadline prefix restricted to a release band — identified by its
// canonical key (k shrunk to the largest in-band position, lo/hi shrunk to
// the band's present classes). The decomposition behind the recurrence is a
// push-late exchange: in any feasible schedule the max-deadline job k can be
// swapped rightward (preserving the slot set, hence the cost) until every
// job scheduled after k's slot t* has release > t*. The set therefore splits
// at a release class: jobs released <= t* occupy slots <= t* (with k last),
// jobs released > t* occupy slots beyond — two independent subproblems of
// the same shape, joined by one idle seam. When no set job is released after
// t*, k is simply appended last (the terminal branch).
//
// A subproblem's value is a Pareto frontier over (t, e, c):
//
//   t  last slot used,
//   e  capped lead-in slack min(first_slot - m, cap), m = the set's least
//      release; cap = 1 for gaps, ceil(alpha) for power — the smallest
//      summary of the first slot that keeps every parent seam cost
//      min(D + e, alpha) exact (beyond the cap the seam saturates),
//   c  internal cost: seam costs summed over the schedule's interior gaps.
//
// The frontier is stored as SEGMENTS: maximal runs [t_lo, t_hi] of last
// slots sharing one (e, c) value and one derivation. Every seam cost
// saturates within `cap` slots, so wide windows produce long flat runs and
// each combine step emits O(cap) segments per child segment: frontier sizes
// are governed by the release/deadline structure, not by window widths or
// the horizon. That is what keeps the DP polynomial on wide-window
// instances whose candidate-time axis overflows the exponential DPs'
// packed-key limits.
//
// Dominance: at every time t, entries with equal lead keep the least c, and
// ascending lead must strictly improve c (smaller lead and smaller c are
// both weakly better upstream). t itself is kept exact — both "later is
// cheaper for the next seam" and "earlier leaves room to append k" are
// live, so t never collapses — but equal-value runs merge into one segment.
//
// The state space is polynomial (O(n) prefixes x O(n^2) release bands) but
// the engine is a reachability-driven top-down memo: structured instances
// (chains, bursts, the poly_scale families) touch a tiny fraction of the
// box. A cumulative state/segment budget valve turns adversarial blowups
// into a clean error (the engine maps it to a rejected request) instead of
// a wrong answer or an unbounded solve.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gapsched/core/instance.hpp"
#include "gapsched/core/schedule.hpp"

namespace gapsched::bcd {

/// Budget valve for the memoized reachability sweep. Exceeding either limit
/// aborts the solve with a non-empty error (no partial answer is reported).
struct BcdOptions {
  /// Maximum memoized (k, lo, hi) states.
  std::size_t max_states = 200'000;
  /// Maximum frontier segments generated across the whole solve (counted
  /// before pruning, so pathological combine fan-outs trip it too).
  std::size_t max_entries = 2'000'000;
};

/// Gap objective: an idle seam costs 1 block boundary when non-empty. The
/// lead cap of 1 distinguishes "starts at its least release" from "starts
/// later" — all a parent seam ever needs.
struct GapSeamPolicy {
  using Cost = std::int64_t;
  Time lead_cap() const { return 1; }
  Cost seam(Time gap) const { return gap > 0 ? 1 : 0; }
};

/// Power objective: an idle seam costs min(gap, alpha) (bridge or sleep,
/// Section 2). The lead cap ceil(alpha) keeps min(D + e, alpha) exact: below
/// the cap e is the true slack, at the cap the seam has saturated at alpha.
struct PowerSeamPolicy {
  using Cost = double;
  double alpha = 0.0;
  Time cap = 0;  // smallest integer >= alpha
  Time lead_cap() const { return cap; }
  Cost seam(Time gap) const {
    return std::min(static_cast<double>(gap), alpha);
  }
};

/// One DP run; answers in deadline-sorted job order are resolved back to
/// the caller's indices by extract_schedule().
template <class Policy>
class BcdEngine {
 public:
  using Cost = typename Policy::Cost;

  BcdEngine(const Instance& inst, Policy policy, const BcdOptions& opts)
      : inst_(inst), policy_(policy), opts_(opts) {}

  /// Runs the DP. Returns false with error() set when the instance shape is
  /// unsupported or a budget tripped; otherwise feasible()/cost()/... are
  /// valid.
  bool run() {
    const std::size_t n = inst_.n();
    if (!inst_.is_one_interval()) {
      error_ = "bcd DP requires one-interval (release/deadline) jobs";
      return false;
    }
    if (n == 0) {
      feasible_ = true;
      best_cost_ = Cost{};
      return true;
    }
    if (n >= (std::size_t{1} << 21)) {
      error_ = "bcd DP key packing is capped at n < 2^21";
      return false;
    }
    build_index();
    overflow_.clear();
    const std::uint32_t root =
        solve(static_cast<std::uint32_t>(n), -1,
              static_cast<std::int32_t>(rel_.size()) - 1);
    if (!overflow_.empty()) {
      error_ = overflow_;
      return false;
    }
    if (root == kEmptyState || states_[root].segments.empty()) {
      feasible_ = false;  // no derivation: the instance is infeasible
      return true;
    }
    const std::vector<Segment>& frontier = states_[root].segments;
    std::size_t best = 0;
    for (std::size_t i = 1; i < frontier.size(); ++i) {
      if (frontier[i].c < frontier[best].c) best = i;
    }
    feasible_ = true;
    best_cost_ = frontier[best].c;
    root_state_ = root;
    root_seg_ = static_cast<std::uint32_t>(best);
    return true;
  }

  bool feasible() const { return feasible_; }
  /// Minimum internal cost: interior-gap count (gap policy) or the sum of
  /// min(gap, alpha) bridging terms (power policy). The caller adds the
  /// objective's constants (the +1 block / n + alpha base).
  Cost cost() const { return best_cost_; }
  const std::string& error() const { return error_; }
  std::size_t states() const { return states_.size(); }
  std::size_t entries_kept() const { return entries_kept_; }

  /// Reconstructs an optimal schedule (original job indices, processor 0).
  /// Only valid after run() returned true with feasible().
  Schedule extract_schedule() const {
    Schedule out(inst_.n());
    if (inst_.n() == 0 || !feasible_) return out;
    struct Pick {
      std::uint32_t sid, seg;
      Time t;  // chosen last slot within the segment's [lo, hi] run
    };
    std::vector<Pick> stack;
    stack.push_back({root_state_, root_seg_,
                     states_[root_state_].segments[root_seg_].lo});
    while (!stack.empty()) {
      const Pick p = stack.back();
      stack.pop_back();
      const State& st = states_[p.sid];
      const Segment& s = st.segments[p.seg];
      switch (s.kind) {
        case Segment::kBase:
          out.place(ord_[st.k - 1], p.t, 0);
          break;
        case Segment::kTerminalAdj:
          // k sits flush against the rest: the rest's last slot is t - 1.
          out.place(ord_[st.k - 1], p.t, 0);
          stack.push_back({s.child1_state, s.child1_seg, p.t - 1});
          break;
        case Segment::kTerminalGap:
          out.place(ord_[st.k - 1], p.t, 0);
          stack.push_back({s.child1_state, s.child1_seg, s.child1_t});
          break;
        case Segment::kSplit:
          stack.push_back({s.child1_state, s.child1_seg, s.child1_t});
          stack.push_back({s.child2_state, s.child2_seg, p.t});
          break;
      }
    }
    return out;
  }

 private:
  static constexpr std::uint32_t kEmptyState =
      std::numeric_limits<std::uint32_t>::max();

  struct Segment {
    enum Kind : std::uint8_t { kBase, kTerminalAdj, kTerminalGap, kSplit };
    Time lo = 0, hi = 0;  // inclusive last-slot run sharing this (e, c)
    Time lead = 0;        // capped first-slot slack over the set's least release
    Cost c{};             // internal seam cost
    Time child1_t = 0;    // kTerminalGap: rest's last slot; kSplit: left's
    std::uint32_t child1_state = 0, child1_seg = 0;  // rest / left part
    std::uint32_t child2_state = 0, child2_seg = 0;  // right part (kSplit)
    Kind kind = kBase;
  };

  struct State {
    std::uint32_t k = 0;   // canonical prefix length (1-based, in-band max)
    std::int32_t lo = -1;  // (min present class) - 1
    std::int32_t hi = 0;   // max present class
    std::vector<Segment> segments;
  };

  void build_index() {
    const std::size_t n = inst_.n();
    ord_.resize(n);
    for (std::size_t j = 0; j < n; ++j) ord_[j] = j;
    std::sort(ord_.begin(), ord_.end(), [this](std::size_t a, std::size_t b) {
      const Time da = inst_.jobs[a].deadline(), db = inst_.jobs[b].deadline();
      return da != db ? da < db : a < b;
    });
    rel_.clear();
    rel_.reserve(n);
    for (const Job& job : inst_.jobs) rel_.push_back(job.release());
    std::sort(rel_.begin(), rel_.end());
    rel_.erase(std::unique(rel_.begin(), rel_.end()), rel_.end());
    pos_r_.resize(n + 1);
    pos_d_.resize(n + 1);
    pos_cls_.resize(n + 1);
    minpos_.assign(rel_.size(), static_cast<std::uint32_t>(n) + 1);
    for (std::size_t p = 1; p <= n; ++p) {
      const Job& job = inst_.jobs[ord_[p - 1]];
      pos_r_[p] = job.release();
      pos_d_[p] = job.deadline();
      const std::int32_t c = static_cast<std::int32_t>(
          std::lower_bound(rel_.begin(), rel_.end(), job.release()) -
          rel_.begin());
      pos_cls_[p] = c;
      minpos_[c] = std::min(minpos_[c], static_cast<std::uint32_t>(p));
    }
  }

  static std::uint64_t pack(std::uint32_t k, std::int32_t lo,
                            std::int32_t hi) {
    return (static_cast<std::uint64_t>(k) << 42) |
           (static_cast<std::uint64_t>(lo + 1) << 21) |
           static_cast<std::uint64_t>(hi);
  }

  /// Budget-checked push of a candidate segment (empty ranges are dropped).
  bool push_segment(std::vector<Segment>& raw, const Segment& s) {
    if (s.lo > s.hi) return true;
    ++segments_generated_;
    if (segments_generated_ > opts_.max_entries) {
      overflow_ = "bcd DP segment budget exceeded (" +
                  std::to_string(opts_.max_entries) +
                  "): instance shape is adversarial for the release-class "
                  "decomposition";
      return false;
    }
    raw.push_back(s);
    return true;
  }

  /// Memoized subproblem solve. `k` may name a position outside the band;
  /// canonicalization shrinks (k, lo, hi) to the unique in-band key.
  /// Returns kEmptyState for the empty set, or the state id (possibly with
  /// an empty frontier: an infeasible subset). On overflow_ the return
  /// value is meaningless and the caller unwinds.
  std::uint32_t solve(std::uint32_t k, std::int32_t lo, std::int32_t hi) {
    if (!overflow_.empty()) return kEmptyState;
    while (k >= 1) {
      const std::int32_t c = pos_cls_[k];
      if (c > lo && c <= hi) break;
      --k;
    }
    if (k == 0) return kEmptyState;
    while (minpos_[hi] > k) --hi;      // stops at pos_cls_[k] > lo
    while (minpos_[lo + 1] > k) ++lo;  // ditto
    const std::uint64_t key = pack(k, lo, hi);
    if (const auto it = memo_.find(key); it != memo_.end()) {
      return it->second;
    }
    if (states_.size() >= opts_.max_states) {
      overflow_ = "bcd DP state budget exceeded (" +
                  std::to_string(opts_.max_states) +
                  "): instance shape is adversarial for the release-class "
                  "decomposition";
      return kEmptyState;
    }
    const std::uint32_t id = static_cast<std::uint32_t>(states_.size());
    states_.push_back(State{k, lo, hi, {}});
    memo_.emplace(key, id);

    const Time r_k = pos_r_[k];
    const Time d_k = pos_d_[k];
    const Time cap = policy_.lead_cap();
    std::vector<Segment> raw;

    // Present release classes of the band (each holds a set job).
    std::vector<std::int32_t> present;
    for (std::int32_t c = lo + 1; c <= hi; ++c) {
      if (minpos_[c] <= k) present.push_back(c);
    }
    bool rest_nonempty = false;
    for (const std::int32_t c : present) {
      if (minpos_[c] < k) {
        rest_nonempty = true;
        break;
      }
    }

    if (!rest_nonempty) {
      // Base: the set is {k} alone. lead = min(t - r_k, cap): one unit
      // segment per unsaturated lead value, then one flat saturated run —
      // O(cap) segments however wide the window is.
      for (Time i = 0; i < cap && r_k + i <= d_k; ++i) {
        Segment s;
        s.lo = s.hi = r_k + i;
        s.lead = i;
        s.kind = Segment::kBase;
        if (!push_segment(raw, s)) return id;
      }
      Segment sat;
      sat.lo = r_k + cap;
      sat.hi = d_k;
      sat.lead = cap;
      sat.kind = Segment::kBase;
      if (!push_segment(raw, sat)) return id;
    } else {
      // Terminal branch: k appended after the whole rest of the set. Per
      // rest segment [a, b]: while t - 1 lands inside the run the seam is
      // empty (flush placement, rest ends at t - 1); past it the rest is
      // pinned at b and the seam grows until it saturates — O(cap) output
      // segments per rest segment, independent of the window width.
      const std::uint32_t rest = solve(k - 1, lo, hi);
      if (!overflow_.empty()) return id;
      if (rest != kEmptyState) {
        const Time delta = rel_[states_[rest].lo + 1] - rel_[lo + 1];
        const std::vector<Segment>& rsegs = states_[rest].segments;
        for (std::uint32_t si = 0; si < rsegs.size(); ++si) {
          const Segment& rs = rsegs[si];
          const Time lead_out = std::min(rs.lead + delta, cap);
          Segment adj;
          adj.lo = std::max(r_k, rs.lo + 1);
          adj.hi = std::min(d_k, rs.hi + 1);
          adj.lead = lead_out;
          adj.c = rs.c;
          adj.kind = Segment::kTerminalAdj;
          adj.child1_state = rest;
          adj.child1_seg = si;
          if (!push_segment(raw, adj)) return id;
          for (Time g = 1; g < cap; ++g) {
            const Time t = rs.hi + 1 + g;
            if (t > d_k) break;
            if (t < r_k) continue;
            Segment unit;
            unit.lo = unit.hi = t;
            unit.lead = lead_out;
            unit.c = rs.c + policy_.seam(g);
            unit.kind = Segment::kTerminalGap;
            unit.child1_state = rest;
            unit.child1_seg = si;
            unit.child1_t = rs.hi;
            if (!push_segment(raw, unit)) return id;
          }
          Segment sat;
          sat.lo = std::max(r_k, rs.hi + 1 + std::max<Time>(cap, 1));
          sat.hi = d_k;
          sat.lead = lead_out;
          sat.c = rs.c + policy_.seam(std::max<Time>(cap, 1));
          sat.kind = Segment::kTerminalGap;
          sat.child1_state = rest;
          sat.child1_seg = si;
          sat.child1_t = rs.hi;
          if (!push_segment(raw, sat)) return id;
        }
      }

      // Split branches: cut the band after a present class >= k's own, so
      // jobs released later form an independent right part. The left part
      // keeps k (and the set's least release: its lead carries over); the
      // right part starts at m_r = rel[present[i + 1]], giving seam
      // D + e_r with D = m_r - t_left - 1. The output's t coordinate is the
      // RIGHT part's last slot, so the left choice collapses per lead pair:
      // inside a left segment the seam is nondecreasing in the distance to
      // m_r, so the latest admissible left slot is optimal.
      for (std::size_t i = 0; i + 1 < present.size(); ++i) {
        if (rel_[present[i]] < r_k) continue;
        const std::uint32_t left = solve(k, lo, present[i]);
        if (!overflow_.empty()) return id;
        const std::uint32_t right = solve(k - 1, present[i], hi);
        if (!overflow_.empty()) return id;
        if (left == kEmptyState || right == kEmptyState) continue;
        const Time m_r = rel_[present[i + 1]];

        struct BestCut {
          bool valid = false;
          Cost c{};
          std::uint32_t seg = 0;
          Time t = 0;
        };
        // best[e_l * lanes + e_r]: cheapest left-cost + seam over left
        // segments of lead e_l against a right part of lead e_r, with the
        // attaining (segment, slot) kept for reconstruction.
        const std::size_t lanes = static_cast<std::size_t>(cap) + 1;
        std::vector<BestCut> best(lanes * lanes);
        const std::vector<Segment>& lsegs = states_[left].segments;
        for (std::uint32_t li = 0; li < lsegs.size(); ++li) {
          const Segment& seg = lsegs[li];
          if (seg.lo >= m_r) continue;  // left part must finish before m_r
          const Time t_l = std::min(seg.hi, m_r - 1);
          const Time d_gap = m_r - t_l - 1;
          for (std::size_t e_r = 0; e_r < lanes; ++e_r) {
            const Cost combined =
                seg.c + policy_.seam(d_gap + static_cast<Time>(e_r));
            BestCut& slot =
                best[static_cast<std::size_t>(seg.lead) * lanes + e_r];
            if (!slot.valid || combined < slot.c) {
              slot = {true, combined, li, t_l};
            }
          }
        }
        const std::vector<Segment>& rsegs = states_[right].segments;
        for (std::uint32_t ri = 0; ri < rsegs.size(); ++ri) {
          const Segment& rseg = rsegs[ri];
          const std::size_t e_r = static_cast<std::size_t>(rseg.lead);
          for (std::size_t e_l = 0; e_l < lanes; ++e_l) {
            const BestCut& cut = best[e_l * lanes + e_r];
            if (!cut.valid) continue;
            Segment s;
            s.lo = rseg.lo;
            s.hi = rseg.hi;
            s.lead = static_cast<Time>(e_l);
            s.c = cut.c + rseg.c;
            s.kind = Segment::kSplit;
            s.child1_state = left;
            s.child1_seg = cut.seg;
            s.child1_t = cut.t;
            s.child2_state = right;
            s.child2_seg = ri;
            if (!push_segment(raw, s)) return id;
          }
        }
      }
    }

    states_[id].segments = prune(std::move(raw));
    entries_kept_ += states_[id].segments.size();
    return id;
  }

  /// Pareto prune: sweep the elementary t-intervals induced by segment
  /// boundaries; within each, keep the (lead asc, c strictly desc) skyline;
  /// re-coalesce adjacent intervals that kept the same derivation.
  std::vector<Segment> prune(std::vector<Segment> raw) const {
    if (raw.empty()) return raw;
    std::vector<Time> bounds;
    bounds.reserve(2 * raw.size());
    for (const Segment& s : raw) {
      bounds.push_back(s.lo);
      bounds.push_back(s.hi + 1);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    std::vector<Segment> kept;
    std::vector<std::size_t> prev_runs, cur_runs;  // kept indices per interval
    // (lead, (c, raw index)) triples active on the elementary interval.
    std::vector<std::pair<Time, std::pair<Cost, std::uint32_t>>> active;
    for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
      const Time t0 = bounds[b];
      const Time t1 = bounds[b + 1] - 1;
      active.clear();
      for (std::uint32_t i = 0; i < raw.size(); ++i) {
        if (raw[i].lo <= t0 && raw[i].hi >= t1) {
          active.push_back({raw[i].lead, {raw[i].c, i}});
        }
      }
      cur_runs.clear();
      if (!active.empty()) {
        std::sort(active.begin(), active.end());
        bool first = true;
        Cost best{};
        for (const auto& [lead, payload] : active) {
          const auto& [c, idx] = payload;
          if (!first && !(c < best)) continue;  // same-lead dup or dominated
          first = false;
          best = c;
          // Extend the previous interval's matching run instead of emitting
          // a new segment when the same derivation continues across the
          // boundary (same_derivation ignores the [lo, hi] coordinates).
          bool extended = false;
          for (const std::size_t p : prev_runs) {
            if (kept[p].hi == t0 - 1 && same_derivation(raw[idx], kept[p])) {
              kept[p].hi = t1;
              cur_runs.push_back(p);
              extended = true;
              break;
            }
          }
          if (extended) continue;
          Segment out = raw[idx];
          out.lo = t0;
          out.hi = t1;
          cur_runs.push_back(kept.size());
          kept.push_back(out);
        }
      }
      std::swap(prev_runs, cur_runs);
    }
    return kept;
  }

  static bool same_derivation(const Segment& a, const Segment& b) {
    return a.lead == b.lead && a.c == b.c && a.kind == b.kind &&
           a.child1_state == b.child1_state && a.child1_seg == b.child1_seg &&
           a.child1_t == b.child1_t && a.child2_state == b.child2_state &&
           a.child2_seg == b.child2_seg;
  }

  const Instance& inst_;
  Policy policy_;
  BcdOptions opts_;

  std::vector<std::size_t> ord_;       // positions 1..n -> original index
  std::vector<Time> rel_;              // sorted distinct releases (classes)
  std::vector<Time> pos_r_, pos_d_;    // release/deadline by position
  std::vector<std::int32_t> pos_cls_;  // release class by position
  std::vector<std::uint32_t> minpos_;  // least position per class (n+1: none)

  std::vector<State> states_;
  std::unordered_map<std::uint64_t, std::uint32_t> memo_;
  std::size_t segments_generated_ = 0;
  std::size_t entries_kept_ = 0;
  std::string overflow_;

  bool feasible_ = false;
  Cost best_cost_{};
  std::uint32_t root_state_ = 0, root_seg_ = 0;
  std::string error_;
};

}  // namespace gapsched::bcd

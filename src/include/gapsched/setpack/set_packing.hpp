#pragma once
// Maximum set packing substrate for the Theorem 3 approximation.
//
// Hurkens and Schrijver [HS89] show that local search with swaps of bounded
// size approximates maximum k-set packing within k/2 + eps. This module
// implements the packing black box the paper invokes (Lemma 5):
//
//   swap_size 0: greedy maximal packing only (k-approximate);
//   swap_size 1: additionally replace 1 chosen set by 2 disjoint candidates;
//   swap_size 2: additionally replace 2 chosen sets by 3 disjoint candidates.
//
// Increasing swap size tightens the guarantee toward k/2 at polynomially
// higher cost; the T3 ablation experiment measures this trade-off.

#include <cstddef>
#include <vector>

namespace gapsched {

/// Sets over the universe {0, ..., universe-1}; each set is a sorted vector
/// of distinct element ids.
struct SetPackingInstance {
  std::size_t universe = 0;
  std::vector<std::vector<std::size_t>> sets;
};

struct PackingResult {
  /// Indices into instance.sets of pairwise-disjoint chosen sets.
  std::vector<std::size_t> chosen;
};

/// Greedy maximal packing in set-index order.
PackingResult greedy_packing(const SetPackingInstance& inst);

/// Greedy packing followed by (s -> s+1)-swap local search for all
/// s <= swap_size. swap_size in {0, 1, 2}.
PackingResult local_search_packing(const SetPackingInstance& inst,
                                   int swap_size);

/// True iff `chosen` indexes pairwise-disjoint sets of `inst`.
bool is_valid_packing(const SetPackingInstance& inst,
                      const std::vector<std::size_t>& chosen);

}  // namespace gapsched

#pragma once
// Theorem 11: the O(sqrt(n))-approximation for the minimum-restart problem —
// maximize the number of scheduled jobs subject to at most k gaps (restarts).
//
// Greedy with k rounds: each round finds the longest time interval [a, b]
// that can be *completely filled* with b - a + 1 distinct still-unscheduled
// jobs (a perfect matching of the interval's time units into the available
// jobs), commits it as one working interval, and removes its jobs and times.
// Fillability is monotone (a sub-interval of a fillable interval is
// fillable), so the longest length is found by binary search; positions are
// scanned within maximal runs of usable slot times.

#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct RestartResult {
  /// Number of jobs scheduled (the objective).
  std::size_t scheduled = 0;
  /// Committed working intervals in commit order (each is one span, so the
  /// schedule has at most k spans / "restarts").
  std::vector<Interval> working_intervals;
  /// Partial schedule: exactly the jobs inside working intervals.
  Schedule schedule;
};

/// Runs the Theorem 11 greedy with a budget of `max_spans` working intervals
/// ("k gaps" in the paper's consultant story). Treats the instance as
/// single-processor.
RestartResult restart_greedy(const Instance& inst, std::size_t max_spans);

/// Exact optimum of the minimum-restart problem by exhaustive search over
/// span placements; exponential, for tests/benches with inst.n() <= ~10.
std::size_t restart_exact_max_jobs(const Instance& inst,
                                   std::size_t max_spans);

}  // namespace gapsched

#pragma once
// Candidate execution times ("Theta").
//
// Baptiste [Bap06, Prop 2.1], reused by Theorem 1: some optimal schedule
// executes every job within distance n of a release date or deadline. For
// one-interval instances we therefore restrict the DP (and the brute-force
// ground truth) to
//
//   Theta = union_i ( [a_i, a_i + n + 1] u [d_i - n - 1, d_i] )  ∩  [a_i, d_i]
//
// closed under +1 inside the global horizon, giving |Theta| = O(n^2) times.
// For multi-interval instances the allowed sets are explicit and finite, so
// Theta is simply the union of all allowed times (plus the +1 closure used
// for window seams).

#include <vector>

#include "gapsched/core/instance.hpp"

namespace gapsched {

/// Sorted, duplicate-free candidate time list for `inst`.
/// `plus_one_closure` additionally inserts t+1 for every candidate t (clipped
/// to the global horizon); the Theorem 1 DP needs this for window seams.
std::vector<Time> candidate_times(const Instance& inst,
                                  bool plus_one_closure = true);

}  // namespace gapsched

#pragma once
// Canonical content hashing of the core containers.
//
// The engine's content-addressed solve cache keys requests by the canonical
// form of their instance (gapsched::prep sorts jobs and shifts the origin to
// time 0), so time-shifted and job-permuted copies of the same workload hash
// equal and share one cache entry. The digests here are plain FNV-1a over a
// stable byte/field ordering — deterministic across runs and platforms with
// the same integer widths, and independent of any solver code.

#include <cstdint>
#include <string_view>

#include "gapsched/core/instance.hpp"

namespace gapsched {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a over raw bytes, seedable for chaining.
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t seed = kFnvOffsetBasis);

/// Folds one 64-bit word into a running FNV-1a digest (little-endian bytes).
std::uint64_t fnv1a64_word(std::uint64_t word, std::uint64_t seed);

/// Content digest of a TimeSet: its interval endpoints in order.
std::uint64_t digest(const TimeSet& set, std::uint64_t seed = kFnvOffsetBasis);

/// Content digest of an Instance: processor count, job count, and every
/// job's allowed intervals, in job order. Two instances digest equal iff
/// they are field-for-field identical (up to 64-bit collisions), so
/// canonical-form equivalence is `digest(canonicalize(a).instance) ==
/// digest(canonicalize(b).instance)`.
std::uint64_t digest(const Instance& inst,
                     std::uint64_t seed = kFnvOffsetBasis);

}  // namespace gapsched

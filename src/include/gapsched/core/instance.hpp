#pragma once
// Job and Instance: the scheduling inputs shared by every algorithm.

#include <cstddef>
#include <string>
#include <vector>

#include "gapsched/core/timeset.hpp"

namespace gapsched {

/// A unit-processing-time job with its allowed execution times.
struct Job {
  TimeSet allowed;

  /// Release time a_i (earliest allowed time). Requires non-empty allowed.
  Time release() const { return allowed.min(); }
  /// Deadline d_i (latest allowed time). Requires non-empty allowed.
  Time deadline() const { return allowed.max(); }
};

/// A scheduling instance: n unit jobs on p identical processors.
/// p = 1 gives the single-processor problems of Sections 3-6; p > 1 with
/// one-interval jobs is the Section 2 multiprocessor problem.
struct Instance {
  std::vector<Job> jobs;
  int processors = 1;

  std::size_t n() const { return jobs.size(); }

  /// True iff every job's allowed set is one contiguous [a, d] window
  /// (the classic arrival/deadline model required by the Theorem 1 DP).
  bool is_one_interval() const;

  /// True iff every job's allowed set is a union of singleton times.
  bool is_unit_points() const;

  /// Maximum number of allowed intervals over all jobs (the "k" in
  /// k-interval gap scheduling).
  std::size_t max_intervals_per_job() const;

  /// Earliest release over all jobs. Requires n >= 1.
  Time earliest_release() const;
  /// Latest deadline over all jobs. Requires n >= 1.
  Time latest_deadline() const;

  /// Basic well-formedness: >=1 processor, every job has a non-empty
  /// allowed set. Returns an empty string when OK, else a diagnostic.
  std::string validate() const;

  /// Convenience builder for one-interval jobs.
  static Instance one_interval(
      const std::vector<std::pair<Time, Time>>& windows, int processors = 1);
};

}  // namespace gapsched

#pragma once
// OccupancyProfile: the number of busy processors at each time, and the
// paper's cost functions evaluated on it.
//
// Lemma 1 / Lemma 2 (staircase normal form: the jobs running at time t occupy
// the lowest-numbered processors) make both objectives pure functions of the
// profile:
//
//   transitions(l) = sum_t max(0, l(t) - l(t-1))        (gap objective)
//   power(m)       = sum_t m(t) + alpha * transitions(m), minimized over
//                    active-count profiles m >= l       (power objective)
//
// "Transitions" counts sleep->active wake-ups with every processor initially
// asleep. This is the objective under which Lemma 1 is sound; the classic
// "interior gaps only" count equals transitions - (#processors ever used)
// and is exposed separately. For p = 1, transitions = #spans =
// interior gaps + 1, matching Section 5's convention that one infinite idle
// interval counts as a gap.
//
// The optimal bridging in power() is computed level-by-level: processor level
// q is busy at t iff l(t) >= q; an interior idle run of length g at level q
// is bridged (kept active) iff g <= alpha, costing min(g, alpha); each level
// ever used pays one initial wake-up alpha. Level sets are nested, and
// bridged level sets remain nested (a bridged level-(q+1) idle run of length
// g <= alpha decomposes at level q into sub-runs of length <= g, every one of
// which is bridged too), so the per-level optima assemble into a valid
// active-count profile m.

#include <cstdint>
#include <vector>

#include "gapsched/core/timeset.hpp"

namespace gapsched {

/// Sparse occupancy profile: (time, count) entries for busy times only,
/// strictly increasing in time, counts >= 1.
class OccupancyProfile {
 public:
  OccupancyProfile() = default;

  /// Builds from the multiset of execution times of a schedule.
  /// `times` need not be sorted.
  static OccupancyProfile from_times(std::vector<Time> times);

  const std::vector<std::pair<Time, int>>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  /// Total busy processor-time units (= number of scheduled jobs).
  std::int64_t busy_time() const;

  /// Maximum simultaneous occupancy (= processors used in staircase form).
  int max_occupancy() const;

  /// Number of sleep->active transitions (the canonical gap objective).
  std::int64_t transitions() const;

  /// Interior gaps in staircase form: transitions() - max_occupancy().
  std::int64_t interior_gaps() const;

  /// Number of spans (maximal busy stretches of the whole system, i.e. times
  /// with occupancy >= 1). For p = 1 this equals transitions().
  std::int64_t spans() const;

  /// Minimum total power over all active-count profiles m >= this profile:
  /// busy time + per-level optimal idle bridging (see file comment).
  /// alpha >= 0 is the sleep->active transition cost.
  double optimal_power(double alpha) const;

  /// Power when the processor sleeps in every gap (no bridging):
  /// busy_time() + alpha * transitions().
  double power_without_bridging(double alpha) const;

 private:
  std::vector<std::pair<Time, int>> entries_;
};

}  // namespace gapsched

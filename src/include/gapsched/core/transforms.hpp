#pragma once
// Objective-preserving instance transforms over dead time (times no job can
// ever use).

#include "gapsched/core/instance.hpp"
#include "gapsched/core/schedule.hpp"

namespace gapsched {

/// Result of compress_dead_time[_capped]: the compressed instance plus the
/// time map.
struct CompressedInstance {
  Instance instance;
  /// Maps a compressed time back to the original time.
  Time to_original(Time compressed) const;
  /// Maps an original allowed time to its compressed time.
  Time to_compressed(Time original) const;
  /// Total dead time units removed by the transform (0 when nothing was
  /// truncated, i.e. the instance was already in compressed form).
  Time dead_time_removed() const;

  /// Sorted pairs (compressed interval start, original interval start) for
  /// each maximal allowed-union interval; dead runs sit between them with
  /// length min(original run, cap) in compressed coordinates.
  std::vector<std::pair<Time, Time>> anchors;
  std::vector<Interval> compressed_intervals;
  std::vector<Interval> original_intervals;
};

/// Shrinks every maximal "dead" run (times no job can use) to a single unit
/// and rebases the timeline at 0. No job can ever be scheduled in dead time,
/// so busy-time adjacency — and hence the transition/gap objective — is
/// preserved exactly. (Power objectives are NOT preserved at cap 1: idle-
/// bridging costs depend on real gap lengths; use compress_dead_time_capped
/// with cap >= ceil(alpha) + 1 instead.)
CompressedInstance compress_dead_time(const Instance& inst);

/// Length-aware variant: every interior dead run of length d shrinks to
/// min(d, cap) units (cap >= 1), and the timeline is rebased at 0.
///
/// With cap = ceil(alpha) + 1 the POWER objective is preserved exactly:
/// schedules of the original and compressed instances correspond one-to-one
/// (jobs can only occupy live times, which map bijectively), active time is
/// unchanged, and every idle run's bridge term min(gap, alpha) survives —
/// a gap is shortened only when it contains a truncated dead run, and a
/// truncated run alone already has compressed length cap > alpha, so the
/// gap sits at the min's alpha-saturated plateau on both sides of the map.
/// Gaps shorter than alpha are never touched (each of their dead runs is
/// < cap). cap = 1 degenerates to compress_dead_time and preserves only the
/// gap objective; cap = ceil(alpha) - 1 is genuinely unsound (a gap of
/// exactly ceil(alpha) compresses below alpha and its bridge term shrinks —
/// the fuzz harness pins this).
CompressedInstance compress_dead_time_capped(const Instance& inst, Time cap);

/// Inverse-direction transform for metamorphic tests and the
/// `stretched:<k>` scenario wrapper: every interior dead run of length
/// >= min_run is dilated by the integer factor k (>= 1); shorter runs and
/// all live times keep their relative layout (the origin is preserved).
/// The gap objective is always invariant under this map, and the power
/// objective is invariant whenever min_run > alpha (dilated gaps stay on
/// the min(gap, alpha) plateau) — the exact inverse statement of the
/// capped-compression rule above.
Instance stretch_dead_time(const Instance& inst, Time k, Time min_run);

}  // namespace gapsched

#pragma once
// Gap-objective-preserving instance transforms.

#include "gapsched/core/instance.hpp"
#include "gapsched/core/schedule.hpp"

namespace gapsched {

/// Result of compress_dead_time: the compressed instance plus the time map.
struct CompressedInstance {
  Instance instance;
  /// Maps a compressed time back to the original time.
  Time to_original(Time compressed) const;
  /// Maps an original allowed time to its compressed time.
  Time to_compressed(Time original) const;

  /// Sorted pairs (compressed interval start, original interval start) for
  /// each maximal allowed-union interval; dead runs sit between them with
  /// length exactly 1 in compressed coordinates.
  std::vector<std::pair<Time, Time>> anchors;
  std::vector<Interval> compressed_intervals;
  std::vector<Interval> original_intervals;
};

/// Shrinks every maximal "dead" run (times no job can use) to a single unit
/// and rebases the timeline at 0. No job can ever be scheduled in dead time,
/// so busy-time adjacency — and hence the transition/gap objective — is
/// preserved exactly. (Power objectives are NOT preserved: idle-bridging
/// costs depend on real gap lengths.)
CompressedInstance compress_dead_time(const Instance& inst);

}  // namespace gapsched

#pragma once
// Schedule: a (possibly partial) assignment of jobs to execution times and
// processors, plus validation and metric helpers.

#include <optional>
#include <string>
#include <vector>

#include "gapsched/core/instance.hpp"
#include "gapsched/core/profile.hpp"

namespace gapsched {

/// Assignment of one job.
struct Placement {
  Time time = 0;
  /// Processor index in [0, p). kUnassigned means "profile form": only the
  /// time is fixed and processors are implied by the staircase normal form.
  int processor = kUnassigned;

  static constexpr int kUnassigned = -1;
  bool operator==(const Placement&) const = default;
};

/// Per-job placements; entry i is nullopt when job i is unscheduled (partial
/// schedules arise in the Theorem 11 throughput problem and during the
/// Lemma 3 extension).
class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::size_t n) : slots_(n) {}

  std::size_t size() const { return slots_.size(); }
  bool is_scheduled(std::size_t job) const { return slots_[job].has_value(); }
  std::size_t scheduled_count() const;
  bool complete() const { return scheduled_count() == size(); }

  void place(std::size_t job, Time t, int processor = Placement::kUnassigned);
  void unschedule(std::size_t job);
  const std::optional<Placement>& at(std::size_t job) const {
    return slots_[job];
  }

  /// Sorted multiset of execution times of the scheduled jobs.
  std::vector<Time> times() const;

  /// Occupancy profile of the scheduled jobs.
  OccupancyProfile profile() const;

  /// Checks the schedule against the instance: allowed times, occupancy
  /// <= p at every time, and (where processors are assigned) processor
  /// indices in range with no (time, processor) collisions. When
  /// `require_complete`, also checks that every job is scheduled.
  /// Returns empty string when valid, else a diagnostic.
  std::string validate(const Instance& inst, bool require_complete = true) const;

  /// Assigns processors in staircase form (Lemma 1): at each time the jobs
  /// occupy processors 0..l(t)-1, in increasing job-index order. Overwrites
  /// any existing processor assignment of scheduled jobs.
  void assign_processors_staircase();

  /// Sum over processors of the number of busy-run starts, computed from the
  /// explicit processor assignment (requires all scheduled jobs to have
  /// processors). Equals profile().transitions() in staircase form; may be
  /// larger for other assignments.
  std::int64_t per_processor_transitions(const Instance& inst) const;

  bool operator==(const Schedule&) const = default;

 private:
  std::vector<std::optional<Placement>> slots_;
};

}  // namespace gapsched

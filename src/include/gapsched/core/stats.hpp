#pragma once
// Instance statistics: the workload descriptors the experiment harness and
// examples use to characterize generated families.

#include <cstdint>

#include "gapsched/core/instance.hpp"

namespace gapsched {

struct InstanceStats {
  std::size_t jobs = 0;
  int processors = 1;
  /// Horizon [earliest release, latest deadline] length (0 when empty).
  std::int64_t horizon = 0;
  /// Total distinct times some job may use.
  std::int64_t live_time = 0;
  /// Jobs per live time unit per processor (load factor in [0, 1] for
  /// feasible instances; > 1 certifies infeasibility).
  double contention = 0.0;
  /// Mean and max slack = |allowed| - 1 (0 = pinned job).
  double mean_slack = 0.0;
  std::int64_t max_slack = 0;
  /// Fraction of jobs with slack 0 (pinned).
  double pinned_fraction = 0.0;
  /// Max number of allowed intervals over jobs (1 = one-interval instance).
  std::size_t max_intervals = 0;
};

/// Computes descriptive statistics of an instance.
InstanceStats compute_stats(const Instance& inst);

}  // namespace gapsched

#pragma once
// TimeSet: the set of integer times at which a unit job may execute,
// represented as a sorted list of disjoint, inclusive intervals.
//
// This is the paper's `T_i` (Sections 3, 5, 6). One-interval jobs (Section 2)
// are the special case of a single [release, deadline] interval; "k-unit"
// jobs (Section 5) are k singleton intervals.

#include <cstdint>
#include <initializer_list>
#include <vector>

namespace gapsched {

/// Discrete time. Times may be as large as the Theorem 4 reduction's n^3
/// spacing requires, hence 64-bit.
using Time = std::int64_t;

/// Inclusive integer interval [lo, hi]. Empty iff lo > hi.
struct Interval {
  Time lo = 0;
  Time hi = -1;

  bool empty() const { return lo > hi; }
  /// Number of integer points in the interval (0 when empty).
  std::int64_t length() const { return empty() ? 0 : hi - lo + 1; }
  bool contains(Time t) const { return lo <= t && t <= hi; }
  bool operator==(const Interval&) const = default;
};

/// Immutable-after-construction union of disjoint inclusive intervals,
/// normalized (sorted, non-adjacent, non-empty).
class TimeSet {
 public:
  TimeSet() = default;

  /// Builds from arbitrary (possibly overlapping, unsorted) intervals;
  /// empty intervals are dropped and adjacent/overlapping ones merged.
  explicit TimeSet(std::vector<Interval> intervals);
  TimeSet(std::initializer_list<Interval> intervals);

  /// Single window [a, d]; the one-interval job shape. Requires a <= d.
  static TimeSet window(Time a, Time d);

  /// Set of singleton times (need not be sorted or distinct).
  static TimeSet points(const std::vector<Time>& times);

  bool empty() const { return intervals_.empty(); }
  /// Number of integer times in the set.
  std::int64_t size() const;
  /// Number of maximal intervals ("k" in the paper's k-interval problems).
  std::size_t interval_count() const { return intervals_.size(); }
  /// True iff the set is one contiguous interval.
  bool is_single_interval() const { return intervals_.size() == 1; }
  /// True iff every interval is an isolated single point. Note this is a
  /// representation-level check: adjacent unit times merge during
  /// normalization ({3} u {4} becomes [3,4]), so the paper's "k-unit job"
  /// property is the semantic size() <= k, not this predicate.
  bool is_unit_points() const;

  bool contains(Time t) const;
  /// Earliest allowed time. Requires non-empty.
  Time min() const { return intervals_.front().lo; }
  /// Latest allowed time. Requires non-empty.
  Time max() const { return intervals_.back().hi; }

  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Set intersection.
  TimeSet intersect(const TimeSet& other) const;
  /// Intersection with one interval.
  TimeSet restricted_to(Interval window) const;
  /// Set difference (this \ other).
  TimeSet subtract(const TimeSet& other) const;
  /// Set union.
  TimeSet unite(const TimeSet& other) const;
  /// The whole set shifted by delta.
  TimeSet shifted(Time delta) const;

  /// Enumerates every time in the set in increasing order. Only sensible for
  /// small sets; callers working with wide windows must iterate intervals.
  std::vector<Time> to_vector() const;

  bool operator==(const TimeSet&) const = default;

 private:
  void normalize();
  std::vector<Interval> intervals_;
};

}  // namespace gapsched

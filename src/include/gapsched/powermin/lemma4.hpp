#pragma once
// Lemma 4 (Section 3): alignment counting.
//
// For a schedule S whose busy set has n time units in M spans and any
// k > 1, some residue class i (mod k) has at least (n - M(k-1)) / k aligned
// fully-busy blocks [t, t+k) with t == i (mod k). This is the combinatorial
// engine behind the Theorem 3 packing construction: it guarantees the
// (k+1)-set packing instance contains a large packing. Exposed standalone
// so the lemma itself is property-tested (tests/powermin/lemma4_test.cpp).

#include <vector>

#include "gapsched/core/timeset.hpp"

namespace gapsched {

struct AlignedBlocks {
  /// The winning residue class in [0, k).
  int residue = 0;
  /// Starts t of the aligned fully-busy blocks [t, t+k), t == residue
  /// (mod k), in increasing order.
  std::vector<Time> block_starts;
};

/// Counts aligned fully-busy blocks per residue class over the busy time
/// multiset `busy_times` (treated as a set; single processor) and returns
/// the best class. Requires k >= 2.
AlignedBlocks best_aligned_blocks(const std::vector<Time>& busy_times, int k);

/// The Lemma 4 lower bound on the best class's block count:
/// (n - M(k-1)) / k, where n = busy units and M = spans.
double lemma4_bound(std::int64_t busy_units, std::int64_t spans, int k);

}  // namespace gapsched

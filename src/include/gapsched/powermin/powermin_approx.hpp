#pragma once
// Theorem 3: the (1 + (2/3 + eps) * alpha)-approximation for multi-interval
// power minimization on a single processor.
//
// Pipeline (Section 3 with k = 2):
//  1. Feasibility check by maximum matching.
//  2. For each residue i in {0, 1}: build the 3-set packing instance whose
//     base set is {jobs} u {candidate times t == i (mod 2)} and whose sets
//     are {job_a, job_b, t} such that job_a can run at t and job_b at t+1
//     (Lemma 5's construction). Pack it with the [HS89]-style local search
//     (setpack/, swap size configurable — the T3 ablation).
//  3. Keep the larger packing; schedule each packed pair at (t, t+1).
//  4. Extend the partial schedule to all jobs by augmenting paths (Lemma 3),
//     adding at most one span per remaining job.
//  5. Evaluate with optimal idle bridging (core/profile.hpp).
//
// Lemma 4 guarantees some residue admits a packing of size
// >= (n - M) / 2 when an M-span schedule exists, which yields the
// 1 + (2/3 + eps) * alpha bound of Theorem 3.

#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct PowerMinApproxOptions {
  /// Swap size handed to the set-packing local search (0, 1 or 2).
  int swap_size = 2;
  /// Block length k of the Lemma 5 construction (Corollary 1's parameter).
  /// k = 2 gives Theorem 3's (1 + (2/3 + eps) alpha) factor; larger k
  /// trades the per-span saving (k-1)/k against the packing factor
  /// 2/(k+1). Supported: 2..4.
  int block_size = 2;
};

struct PowerMinApproxResult {
  bool feasible = false;
  /// Power of the produced schedule with optimal idle bridging.
  double power = 0.0;
  /// Power if the processor slept in every gap (the analysis' upper bound).
  double power_no_bridge = 0.0;
  /// Number of aligned job blocks packed in step 3 (pairs when k = 2).
  std::size_t pairs_packed = 0;
  /// Residue class in [0, block_size) whose packing won.
  int residue = 0;
  /// Transitions of the produced schedule.
  std::int64_t transitions = 0;
  Schedule schedule;
};

/// Runs the Theorem 3 approximation. The instance is treated as
/// single-processor (Section 3's setting); alpha >= 0.
PowerMinApproxResult powermin_approx(const Instance& inst, double alpha,
                                     const PowerMinApproxOptions& opts = {});

/// The paper's guarantee for the produced schedule, for comparison in tests
/// and benches: 1 + (2/3 + eps) * alpha.
inline double theorem3_bound(double alpha, double eps = 1.0 / 6.0) {
  return 1.0 + (2.0 / 3.0 + eps) * alpha;
}

}  // namespace gapsched

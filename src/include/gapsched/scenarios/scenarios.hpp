#pragma once
// Named scenario catalog: every workload family the project tests against,
// registered under a stable name so the CLI, the test suites, and the
// benches can address the same instance distributions ("run gap_dp on
// scenario:hall_critical seed 7"). The catalog wraps the low-level gen/
// generators and adds adversarial families in the spirit of the gap-model
// taxonomy of Chrobak–Golin–Lam–Nogneng: nested windows, sparse max-gap
// spreads, Hall-critical zero-slack blocks, long-horizon power stressors,
// multiprocessor staircases, and infeasible-by-one perturbations.
//
// Every scenario is a pure function of its 64-bit seed: the same
// (name, seed) pair draws the same instance in every binary, which is what
// lets a failing differential run be replayed from its printed seed.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gapsched/core/instance.hpp"

namespace gapsched::scenarios {

/// A registered workload family.
struct Scenario {
  /// Stable registry key, e.g. "hall_critical".
  std::string name;
  /// One-line description for --scenarios listings and the README table.
  std::string summary;
  /// Guarantees that hold for every seed (the differential harness asserts
  /// them against the exact solvers).
  bool always_feasible = false;
  bool always_infeasible = false;
  /// True when every draw is one-interval (release/deadline) shaped.
  bool one_interval = true;
  /// Processor count of every draw.
  int processors = 1;
  /// Job count of every draw (all families are fixed-size so exponential
  /// reference solvers stay inside their envelopes).
  std::size_t jobs = 0;
  /// Draws the instance for `seed`; deterministic.
  std::function<Instance(std::uint64_t seed)> make;
};

/// The process-wide catalog, fully populated on first access.
class ScenarioCatalog {
 public:
  static const ScenarioCatalog& instance();

  /// Looks a scenario up by name; nullptr when unknown.
  const Scenario* find(std::string_view name) const;

  /// All scenarios, sorted by name.
  std::vector<const Scenario*> all() const;

  /// Sorted scenario names.
  std::vector<std::string> names() const;

  std::size_t size() const { return scenarios_.size(); }

 private:
  ScenarioCatalog();

  std::map<std::string, Scenario, std::less<>> scenarios_;
};

/// Dead runs of at least this length are dilated by the `stretched:<k>`
/// wrapper (shorter runs are left alone). The floor is chosen one past
/// ceil(alpha) for every alpha <= 3 — which covers the test suites' and
/// benches' canonical alpha = 2.5 — so stretching preserves the power
/// optimum (every dilated gap stays on the min(gap, alpha) plateau) as
/// well as the gap optimum (always invariant: dead runs are unusable).
inline constexpr Time kStretchMinRun = 4;

/// Largest accepted `stretched:<k>` dilation — bounding the COMBINED
/// factor of nested wrappers, not each layer alone, so stacked layers
/// cannot multiply dilated horizons anywhere near Time overflow for any
/// catalog family.
inline constexpr Time kMaxStretchFactor = 1'000'000;

/// Largest `poly_scale:<n>` / `poly_wide:<n>` job count. Big enough for
/// the n = 2000 crossover studies with headroom, small enough that a
/// mistyped name cannot allocate absurd instances.
inline constexpr std::size_t kMaxPolyScaleJobs = 5000;

/// Convenience: draw catalog scenario `name` with `seed`; nullopt when the
/// name is unknown. Beyond the static catalog, two dynamic forms are
/// accepted:
///   * "stretched:<k>:<base>" (k >= 1) draws `base` and dilates every
///     interior dead run of length >= kStretchMinRun by k — the
///     time-dilation families the capped power compression must be
///     invariant against;
///   * "poly_scale:<n>" (1 <= n <= kMaxPolyScaleJobs) draws the poly_chain
///     shape at size n — the scaling axis for the polynomial bcd solvers,
///     kept out of the static catalog so catalog-wide sweeps never feed
///     thousand-job draws to the exponential families;
///   * "poly_wide:<n>" (same bounds) draws the wide-window companion: one
///     connected run of usable time ~600 slots per job, so by n = 2000 the
///     distinct candidate-time mass overflows the exponential window DPs'
///     2^20 theta limit (a genuine envelope rejection) while the bcd
///     segment frontiers stay width-independent.
/// Wrappers compose with seeds everywhere a scenario name is accepted, e.g.
/// `solver_cli power_dp scenario:stretched:8:power_longhaul:7` or
/// `solver_cli bcd_poly_gap scenario:poly_scale:2000:7`.
std::optional<Instance> make_scenario(std::string_view name,
                                      std::uint64_t seed);

}  // namespace gapsched::scenarios

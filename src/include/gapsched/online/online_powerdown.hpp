#pragma once
// Online power-down baseline (the setting of Augustine-Irani-Swamy [AIS04],
// cited by the paper as the online power-saving state of the art).
//
// The job schedule is forced to work-conserving EDF (see online_edf.hpp);
// the remaining online decision is when to power down during an idle
// period. The classic ski-rental threshold strategy stays active for
// `threshold` time units after going idle, then sleeps; threshold = alpha
// is the deterministic 2-competitive choice per idle period. The offline
// comparator is the Theorem 2 power DP.

#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct OnlinePowerdownResult {
  bool feasible = false;
  /// Total power paid by the online strategy (active time + alpha wake-ups).
  double power = 0.0;
  /// Transitions (wake-ups) the strategy performed.
  std::int64_t transitions = 0;
  /// The underlying EDF schedule.
  Schedule schedule;
};

/// Simulates online EDF execution with the threshold power-down policy.
/// `threshold` < 0 selects the canonical 2-competitive value (= alpha).
/// One-interval single-processor instances only.
OnlinePowerdownResult online_powerdown(const Instance& inst, double alpha,
                                       double threshold = -1.0);

}  // namespace gapsched

#pragma once
// Online one-interval gap scheduling (Section 1's negative discussion).
//
// An online algorithm that must guarantee feasibility whenever a feasible
// schedule exists is forced to run earliest-deadline-first work-conserving:
// at every time unit with pending jobs it must execute one (delaying can be
// fatal against future tight arrivals). This module implements that
// obligatory strategy and, with gen_online_adversarial (gen/), reproduces
// the paper's Omega(n) competitive-ratio lower bound (experiment F4).

#include <cstdint>

#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct OnlineResult {
  bool feasible = false;
  /// Transitions (= spans on one processor) of the online schedule.
  std::int64_t transitions = 0;
  Schedule schedule;
};

/// Simulates the work-conserving EDF online scheduler on a one-interval
/// single-processor instance: jobs become known at their release times; at
/// each time unit the pending job with the earliest deadline runs.
/// Reports infeasible if some job misses its deadline under EDF (in the
/// one-interval unit-job setting EDF misses a deadline only when every
/// schedule does).
OnlineResult online_edf(const Instance& inst);

}  // namespace gapsched

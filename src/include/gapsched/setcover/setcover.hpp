#pragma once
// Set cover substrate for the Section 4/5 hardness reductions.
//
// The paper's inapproximability results transfer set-cover hardness to
// multi-interval power minimization and gap scheduling. We reproduce the
// reductions constructively (reductions/), which requires solving set cover
// on both ends: a greedy (ln n)-approximation and an exact solver for the
// small instances used in the validation experiments (T4, T5).

#include <cstddef>
#include <vector>

#include "gapsched/util/prng.hpp"

namespace gapsched {

/// Universe {0, ..., universe-1}; each set is a sorted vector of distinct
/// element ids.
struct SetCoverInstance {
  std::size_t universe = 0;
  std::vector<std::vector<std::size_t>> sets;

  /// Largest set cardinality (the "B" of B-set cover, Theorems 5/10).
  std::size_t max_set_size() const;
};

struct SetCoverResult {
  bool coverable = false;
  /// Indices of chosen sets (a cover when coverable).
  std::vector<std::size_t> chosen;
};

/// Classic greedy: repeatedly take the set covering the most uncovered
/// elements. (1 + ln n)-approximate.
SetCoverResult greedy_set_cover(const SetCoverInstance& inst);

/// Exact minimum set cover by DP over element subsets. Requires
/// universe <= 20.
SetCoverResult exact_set_cover(const SetCoverInstance& inst);

/// True iff `chosen` covers the whole universe.
bool is_valid_cover(const SetCoverInstance& inst,
                    const std::vector<std::size_t>& chosen);

/// Random coverable instance: `num_sets` sets of size <= max_set_size, with
/// every element inserted into at least one set.
SetCoverInstance gen_random_set_cover(Prng& rng, std::size_t universe,
                                      std::size_t num_sets,
                                      std::size_t max_set_size);

}  // namespace gapsched

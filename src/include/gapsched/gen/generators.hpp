#pragma once
// Seeded workload generators for the test suite and the experiment harness.
//
// The paper has no testbed; these synthetic families are the substitution
// (see DESIGN.md section 4). Families marked *feasible by construction*
// embed a witness schedule (anchor times with at most p jobs per time) and
// then widen each job's allowed set around its anchor, so every generated
// instance admits a feasible schedule; the remaining families may be
// infeasible and are used to exercise infeasibility paths.

#include "gapsched/core/instance.hpp"
#include "gapsched/util/prng.hpp"

namespace gapsched {

/// Uniform one-interval jobs: release ~ U[0, horizon), window length
/// ~ U[1, max_window]. May be infeasible.
Instance gen_uniform_one_interval(Prng& rng, std::size_t n, Time horizon,
                                  Time max_window, int processors = 1);

/// One-interval jobs, feasible by construction: n distinct anchor
/// (time, processor) slots in [0, horizon), window widened by up to
/// `slack` on each side of the anchor. Requires horizon * p >= n.
Instance gen_feasible_one_interval(Prng& rng, std::size_t n, Time horizon,
                                   Time slack, int processors = 1);

/// Bursty arrivals (the sensor/power-management motivation): `bursts`
/// clusters of `per_burst` jobs; cluster starts are `spacing` apart; each
/// job's window starts within the cluster and has length window_len.
/// Feasible whenever window_len * p >= per_burst.
Instance gen_bursty(Prng& rng, std::size_t bursts, std::size_t per_burst,
                    Time spacing, Time window_len, int processors = 1);

/// Multi-interval jobs, feasible by construction: each job gets an anchor
/// slot plus up to `intervals - 1` random decoy intervals of length
/// `interval_len` in [0, horizon).
Instance gen_multi_interval(Prng& rng, std::size_t n, Time horizon,
                            std::size_t intervals, Time interval_len,
                            int processors = 1);

/// k-unit jobs (each allowed set is k singleton times), feasible by
/// construction: one anchor point plus k-1 random decoy points.
Instance gen_unit_points(Prng& rng, std::size_t n, Time horizon,
                         std::size_t k, int processors = 1);

/// The paper's online lower-bound family (Section 1): n loose jobs with
/// window [0, 3n] plus n tight jobs with windows [n + 2i, n + 2i + 1].
/// Offline OPT has O(1) spans; any safe online scheduler is forced into
/// Omega(n) spans.
Instance gen_online_adversarial(std::size_t n);

}  // namespace gapsched

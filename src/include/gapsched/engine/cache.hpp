#pragma once
// Content-addressed solve cache: the cross-request memo behind
// gapsched::engine::Engine.
//
// Entries are keyed by the canonical form of a solve — solver name,
// objective, the parameter fields the solver actually consumes (per
// SolverInfo::params), and the prep-canonicalized instance (jobs sorted,
// origin at 0; decomposed components additionally dead-time compressed at
// the objective's length-aware cap — one unit for gap solves,
// ceil(alpha) + 1 for power solves, so power keys normalize across
// dead-run lengths without disturbing any min(gap, alpha) bridge term).
// Time-shifted, job-permuted, and dead-run-stretched copies of a workload
// therefore share one entry, and identical components inside one
// decomposed instance collapse onto the same key. The key carries both a 64-bit FNV-1a digest (the hash
// bucket — the "content address") and the full canonical text, compared on
// lookup so digest collisions can never alias two different solves.
//
// Thread safety: all operations take an internal mutex; the cache is shared
// by Engine::solve_stream workers and by the prep pipeline's component
// fan-out. Capacity is enforced LRU.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "gapsched/engine/solver.hpp"
#include "gapsched/engine/types.hpp"

namespace gapsched::engine {

/// Canonical-form cache key: FNV-1a digest + the exact canonical text.
struct CacheKey {
  std::uint64_t digest = 0;
  std::string text;
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const {
    return static_cast<std::size_t>(key.digest);
  }
};

/// Builds the key for solving `canonical` (which must already be in
/// canonical form — prep::canonicalize output, a prep::decompose component,
/// or its dead-time-compressed image) with this solver. Only parameter
/// fields the solver consumes (info.params) enter the key, so e.g. changing
/// alpha busts power_dp entries but not gap_dp ones. validate, time_limit_s,
/// decompose and compress are post-processing / routing concerns and never
/// key directly (compress determines which instance form is hashed, so a
/// compressed and an uncompressed component naturally key apart).
CacheKey make_cache_key(const SolverInfo& info, Objective objective,
                        const SolveParams& params, const Instance& canonical);

/// Cumulative counters; `entries` is the current size.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
};

class SolveCache {
 public:
  /// `capacity` caps the entry count (LRU eviction); 0 means unbounded.
  explicit SolveCache(std::size_t capacity = 4096);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Returns the cached result (schedule in the key's canonical
  /// coordinates; nullptr on a miss) and bumps the entry to
  /// most-recently-used. Counts a hit or a miss either way. Entries are
  /// immutable and shared: only a pointer is copied under the cache lock,
  /// so concurrent hits on large schedules do not serialize on the mutex.
  std::shared_ptr<const SolveResult> lookup(const CacheKey& key);

  /// Stores `result` under `key`, normalized to be request-independent:
  /// wall time, timeout and audit fields are cleared so a later hit can
  /// re-derive them for its own request. Re-inserting an existing key only
  /// refreshes its LRU position.
  void insert(const CacheKey& key, const SolveResult& result);

  CacheStats stats() const;
  void clear();

 private:
  void evict_locked();

  struct Entry {
    std::shared_ptr<const SolveResult> result;
    std::list<const CacheKey*>::iterator lru;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  // front = most recently used; pointers reference map_ keys (stable).
  std::list<const CacheKey*> lru_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t insertions_ = 0;
  std::size_t evictions_ = 0;
};

}  // namespace gapsched::engine

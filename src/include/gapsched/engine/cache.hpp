#pragma once
// Content-addressed solve cache: the cross-request memo behind
// gapsched::engine::Engine.
//
// Entries are keyed by the canonical form of a solve — solver name,
// objective, the parameter fields the solver actually consumes (per
// SolverInfo::params), and the prep-canonicalized instance (jobs sorted,
// origin at 0; decomposed components additionally dead-time compressed at
// the objective's length-aware cap — one unit for gap solves,
// ceil(alpha) + 1 for power solves, so power keys normalize across
// dead-run lengths without disturbing any min(gap, alpha) bridge term).
// Time-shifted, job-permuted, and dead-run-stretched copies of a workload
// therefore share one entry, and identical components inside one
// decomposed instance collapse onto the same key. The key carries both a 64-bit FNV-1a digest (the hash
// bucket — the "content address") and the full canonical text, compared on
// lookup so digest collisions can never alias two different solves.
//
// Thread safety: all operations take an internal mutex; the cache is shared
// by Engine::solve_stream workers and by the prep pipeline's component
// fan-out. Capacity is enforced LRU.
//
// Second tier (optional): attach_store() hangs a persistent
// store::DiskStore under the LRU as a read-through/write-behind spill.
// Misses may probe_disk(); the pipeline re-audits every disk candidate
// with the independent oracle before admit_disk() promotes it into the
// LRU — a corrupt or stale record degrades to a fresh solve, never a
// wrong answer. Writes are behind: insert() enqueues qualifying entries
// (admission is cost-weighted — only solves that took at least the spill
// threshold are worth disk) and a background worker serializes and
// appends them, so persistence never sits on the solve path.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "gapsched/engine/solver.hpp"
#include "gapsched/engine/types.hpp"

namespace gapsched::store {
class DiskStore;
}

namespace gapsched::engine {

/// Canonical-form cache key: FNV-1a digest + the exact canonical text.
struct CacheKey {
  std::uint64_t digest = 0;
  std::string text;
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& key) const {
    return static_cast<std::size_t>(key.digest);
  }
};

/// Builds the key for solving `canonical` (which must already be in
/// canonical form — prep::canonicalize output, a prep::decompose component,
/// or its dead-time-compressed image) with this solver. Only parameter
/// fields the solver consumes (info.params) enter the key, so e.g. changing
/// alpha busts power_dp entries but not gap_dp ones. validate, time_limit_s,
/// decompose and compress are post-processing / routing concerns and never
/// key directly (compress determines which instance form is hashed, so a
/// compressed and an uncompressed component naturally key apart).
CacheKey make_cache_key(const SolverInfo& info, Objective objective,
                        const SolveParams& params, const Instance& canonical);

/// Cumulative counters; `entries` is the current size. The disk_* /
/// spilled fields are zero unless a persistent store is attached.
struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t insertions = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
  std::size_t capacity = 0;
  /// Disk-tier records admitted into the LRU after the oracle re-audit.
  std::size_t disk_hits = 0;
  /// Disk-tier records rejected: framing/checksum failures seen by the
  /// store's scans and loads, plus deserialization and oracle refusals.
  std::size_t disk_rejects = 0;
  /// Entries durably appended to the store by this cache's spill worker.
  std::size_t spilled = 0;
  /// Loadable records currently indexed in the attached store.
  std::size_t disk_entries = 0;
};

class SolveCache {
 public:
  /// `capacity` caps the entry count (LRU eviction); 0 means unbounded.
  explicit SolveCache(std::size_t capacity = 4096);
  ~SolveCache();

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// Attaches the persistent second tier and starts the spill worker.
  /// Entries whose recorded solve wall time is below `spill_min_ms` are
  /// not persisted (cost-weighted admission). Must be called before the
  /// cache is shared across threads; the store must outlive the cache
  /// (owners declare the store member first).
  void attach_store(store::DiskStore* store, double spill_min_ms);
  bool has_store() const { return store_ != nullptr; }

  /// Returns the cached result (schedule in the key's canonical
  /// coordinates; nullptr on a miss) and bumps the entry to
  /// most-recently-used. Counts a hit or a miss either way. Entries are
  /// immutable and shared: only a pointer is copied under the cache lock,
  /// so concurrent hits on large schedules do not serialize on the mutex.
  std::shared_ptr<const SolveResult> lookup(const CacheKey& key);

  /// Stores `result` under `key`, normalized to be request-independent:
  /// wall time, timeout and audit fields are cleared so a later hit can
  /// re-derive them for its own request. Re-inserting an existing key only
  /// refreshes its LRU position. `solve_ms` is the fresh solve's wall time
  /// — the admission weight the disk tier spills and compacts by.
  void insert(const CacheKey& key, const SolveResult& result,
              double solve_ms = 0.0);

  /// Disk-tier probe on an LRU miss: loads and deserializes the record
  /// under `key`, if any. The candidate is UNTRUSTED — the caller (the
  /// pipeline's CacheLookup stage) must re-audit it with the independent
  /// oracle and then either admit_disk() or reject_disk() it. Records
  /// that fail framing, checksum, key comparison, or deserialization are
  /// rejected here directly.
  std::shared_ptr<const SolveResult> probe_disk(const CacheKey& key);

  /// Promotes an oracle-approved disk candidate into the LRU (counted in
  /// disk_hits; not re-spilled).
  void admit_disk(const CacheKey& key, const SolveResult& result);

  /// Records an oracle/policy refusal of a disk candidate and quarantines
  /// the record so it can never serve again.
  void reject_disk(const CacheKey& key);

  /// Blocks until every queued spill has been serialized and appended (or
  /// skipped); the barrier benches, tests, and graceful drains sit on.
  void flush_spill();

  CacheStats stats() const;
  /// Drops the in-memory tier only; the attached store is untouched.
  void clear();

 private:
  void evict_locked();
  void spill_worker();

  struct Entry {
    std::shared_ptr<const SolveResult> result;
    std::list<const CacheKey*>::iterator lru;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  // front = most recently used; pointers reference map_ keys (stable).
  std::list<const CacheKey*> lru_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t insertions_ = 0;
  std::size_t evictions_ = 0;
  std::size_t disk_hits_ = 0;
  std::size_t disk_rejects_ = 0;  // deserialize + oracle/policy refusals
  std::size_t spilled_ = 0;

  // --- persistent tier (immutable after attach_store) ---
  store::DiskStore* store_ = nullptr;  // not owned; outlives this cache
  double spill_min_ms_ = 0.0;

  struct SpillItem {
    std::uint64_t digest = 0;
    std::string key_text;
    std::shared_ptr<const SolveResult> result;  // normalized entry
    double cost_ms = 0.0;
  };
  std::mutex spill_mu_;
  std::condition_variable spill_cv_;       // wakes the worker
  std::condition_variable spill_idle_cv_;  // wakes flush_spill waiters
  std::deque<SpillItem> spill_queue_;
  bool spill_stop_ = false;
  bool spill_busy_ = false;  // worker is serializing/appending an item
  std::thread spill_thread_;
};

}  // namespace gapsched::engine

#pragma once
// Common request/result currency of the solver engine.
//
// Every solver family in the library — the Theorem 1/2 exact DPs, the
// reference brute forces, the span search, the FHKN and procrastination
// greedies, the Theorem 3 approximation, the Theorem 11 restart greedy, and
// the online strategies — is adapted behind one (SolveRequest -> SolveResult)
// interface so that the CLI, the benches, and batched drivers can treat them
// uniformly (the solver-shootout / heuristic-ladder methodology of
// Baptiste-Chrobak-Durr and related minimum-energy scheduling work).

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "gapsched/core/instance.hpp"
#include "gapsched/core/schedule.hpp"

namespace gapsched::engine {

/// The three objectives the paper studies.
enum class Objective {
  /// Minimize sleep->active transitions (Sections 2, 4, 5).
  kGaps,
  /// Minimize active time + alpha * wake-ups (Sections 2, 3).
  kPower,
  /// Maximize scheduled jobs under a span budget (Section 6, Theorem 11).
  kThroughput,
};

std::string_view to_string(Objective objective);
std::optional<Objective> objective_from_string(std::string_view name);

/// The named stages of the engine's solve pipeline
/// (gapsched::engine::pipeline), in execution order. Every solve walks the
/// same sequence; stages that do not apply to a request are skipped and
/// say so in their StageStats entry.
enum class PipelineStage : std::size_t {
  kCanonicalize = 0,  // canonical form + cache key of a whole-instance solve
  kDecompose,         // split far-apart job clusters (prep::decompose)
  kCompress,          // length-aware dead-time compression per component
  kCacheLookup,       // content-addressed lookup + intra-request dedup
  kDispatch,          // the family adapter (do_solve), fanned out per component
  kRecombine,         // merge parts, map schedules back, aggregate stats
  kAudit,             // independent oracle re-derivation (params.validate)
};

inline constexpr std::size_t kPipelineStageCount = 7;

std::string_view to_string(PipelineStage stage);
std::optional<PipelineStage> pipeline_stage_from_string(std::string_view name);

/// Per-request accounting of one pipeline stage.
struct StageStats {
  /// Wall time spent inside the stage for this request.
  double ms = 0.0;
  /// True when the stage did real work for this request; false when the
  /// pipeline skipped it (e.g. CacheLookup on a cache-off engine, Dispatch
  /// when every component was served from the cache, Audit without
  /// params.validate).
  bool ran = false;
};

/// Solver-family parameters beyond the instance itself. Unused fields are
/// ignored by solvers that do not consume them.
struct SolveParams {
  /// Wake-up cost for the power objectives. Must be >= 0.
  double alpha = 2.0;
  /// Span budget for the throughput objective ("k gaps"). Must be >= 1.
  std::size_t max_spans = 1;
  /// Idle threshold for the online power-down strategy; < 0 selects the
  /// canonical 2-competitive value (= alpha).
  double powerdown_threshold = -1.0;
  /// Swap size of the Theorem 3 set-packing local search (0, 1 or 2).
  int swap_size = 2;
  /// Block length k of the Theorem 3 / Lemma 5 construction (2..4).
  int block_size = 2;
  /// Advisory wall-clock budget in seconds; 0 means unlimited. Solvers are
  /// single-shot and not preemptible, so the engine cannot abort a running
  /// solve — it flags SolveResult::timed_out when the budget was exceeded so
  /// batch drivers and ladders can discard or demote the result.
  double time_limit_s = 0.0;
  /// When true, the engine re-checks the returned schedule and cost with
  /// the independent gapsched::oracle layer after the solve; any violation
  /// lands in SolveResult::audit_error (audit time is excluded from
  /// stats.wall_ms).
  bool validate = false;
  /// When true (the default), the engine runs the gapsched::prep pipeline
  /// before exact gap/power solves: the instance is canonicalized and split
  /// into independent components wherever job clusters are separated by
  /// more than n (and, for power, at least ceil(alpha)) empty time units —
  /// cuts across which the optima are provably additive. Components are
  /// solved separately and the schedule/cost/stats recombined; the oracle
  /// audit (params.validate) runs on the recombined result. Heuristic and
  /// throughput families ignore this flag. `solver_cli --no-decompose`
  /// clears it.
  bool decompose = true;
  /// When true (the default), components of a decomposed exact solve are
  /// dead-time compressed before the solver sees them: interior idle runs
  /// no job can use shrink to one unit for gap solves and to
  /// ceil(alpha) + 1 units for power solves — the length-aware cap that
  /// preserves every min(gap, alpha) bridge term exactly. Compression also
  /// normalizes cache keys across dead-run lengths. Heuristic and
  /// throughput families ignore this flag, and it has no effect when
  /// `decompose` is false (compression lives inside the prep pipeline).
  /// `solver_cli --no-compress` clears it.
  bool compress = true;
};

/// One unit of engine work: an instance, an objective, and parameters.
struct SolveRequest {
  Instance instance;
  Objective objective = Objective::kGaps;
  SolveParams params;
};

/// One batch entry: a request routed to a named solver, so a single batch
/// can mix families (the shootout/ladder pattern). Consumed by
/// Engine::solve_batch / Engine::solve_stream.
struct BatchJob {
  std::string solver;
  SolveRequest request;
};

/// Solver-reported diagnostics, uniform across families (fields a family
/// does not produce stay 0).
struct SolveStats {
  /// Wall time of the underlying solver call (excludes request validation).
  double wall_ms = 0.0;
  /// Memoized DP states (Theorem 1/2 DPs; bcd_poly_* subproblem count) —
  /// the F1 scaling measurement.
  std::size_t states = 0;
  /// Search nodes expanded (span search); Pareto table cells kept
  /// (bcd_poly_* families).
  std::size_t nodes = 0;
  /// Jobs scheduled. Equals n for complete schedules; the objective value
  /// for the (partial-schedule) throughput solvers.
  std::size_t scheduled = 0;
  /// Independent components the prep pipeline solved (1 when the pipeline
  /// ran but found no cut; 0 when decomposition was off or not applicable).
  std::size_t components = 0;
  /// True when the whole answer was served from the engine's
  /// content-addressed solve cache without invoking any solver — a
  /// whole-instance hit, or a decomposition all of whose components hit.
  /// `states`/`nodes` always sum the solver work embodied in the answer's
  /// unique parts: fresh solves plus the work that originally produced
  /// each cached entry; deduplicated component copies add nothing.
  bool cache_hit = false;
  /// Components of this solve served from the cross-request solve cache.
  std::size_t component_cache_hits = 0;
  /// Components that were byte-identical (post canonicalization and
  /// dead-time compression) to an earlier component of the same request
  /// and reused its result instead of solving again.
  std::size_t components_deduped = 0;
  /// Dead time units removed by the prep pipeline's length-aware
  /// compression, summed over components (0 when compression did not run
  /// or found nothing to truncate).
  std::int64_t dead_time_removed = 0;

  /// Per-stage wall time and ran/skipped verdicts of the solve pipeline,
  /// indexed by PipelineStage. Every request reports all seven stages; a
  /// stage the request never needed has ran = false and ms ~ 0. Summed
  /// across a Session's lifetime in PipelineStats.
  std::array<StageStats, kPipelineStageCount> stages{};

  // DP memo-layer diagnostics (Theorem 1/2 execution layer), summed over
  // components. Serialized on the io/json wire alongside the stage
  // timings: a server front end reports how an answer was computed, not
  // just what it is.
  /// Component solves whose state box was dense enough for the flat arena
  /// memo / that fell back to the packed-key hash table.
  std::size_t memo_arena_solves = 0;
  std::size_t memo_hash_solves = 0;
  /// Component solves whose top-level candidate scan ran on a thread pool.
  std::size_t memo_parallel_solves = 0;
  /// Memo lookups, hash probe-chain steps (0 for arena solves), and
  /// candidate branches cut by the dominance prunes.
  std::uint64_t memo_find_calls = 0;
  std::uint64_t memo_probe_steps = 0;
  std::uint64_t memo_pruned = 0;
};

/// Uniform outcome of a dispatch.
///
/// `ok` is the engine-level verdict: the request was well-formed, inside the
/// solver's capability envelope, and the solver ran. A rejected request
/// (wrong objective, multi-interval jobs handed to a one-interval DP, n over
/// a brute-force cap, ...) yields ok = false with `error` set and no solver
/// call. `feasible`/`cost`/`schedule` are only meaningful when ok.
struct SolveResult {
  bool ok = false;
  std::string error;

  bool feasible = false;
  /// Objective value: transitions (kGaps), total power (kPower), or the
  /// number of scheduled jobs (kThroughput — a maximization, larger is
  /// better; every other objective minimizes).
  double cost = 0.0;
  /// Sleep->active transitions of the produced schedule (diagnostic; for
  /// kGaps this equals cost).
  std::int64_t transitions = 0;
  Schedule schedule;
  SolveStats stats;
  /// True when params.time_limit_s > 0 and the solve ran longer than that.
  bool timed_out = false;

  /// True when the independent oracle audit ran (params.validate on a
  /// non-rejected result).
  bool audited = false;
  /// Non-empty when the audit found a violation — the solver's claim does
  /// not survive independent re-derivation (i.e. a solver bug, not a bad
  /// request). `ok` is left untouched so callers can distinguish "request
  /// rejected" from "answer refuted".
  std::string audit_error;

  /// Convenience factory for an engine-level rejection.
  static SolveResult rejected(std::string why) {
    SolveResult r;
    r.ok = false;
    r.error = std::move(why);
    return r;
  }
};

}  // namespace gapsched::engine

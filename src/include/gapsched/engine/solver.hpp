#pragma once
// The Solver interface: one virtual seam between the engine and every
// algorithm family. Concrete adapters live in src/engine/builtin_solvers.cpp
// and register themselves with the SolverRegistry. The solve path itself is
// the staged request pipeline in engine/pipeline.hpp; this header only owns
// the family seam and the pipeline's environment (SolveHooks).

#include <cstddef>
#include <string>

#include "gapsched/engine/types.hpp"

namespace gapsched {
class ThreadPool;
}  // namespace gapsched

namespace gapsched::engine {

class SolveCache;

namespace pipeline {
class Pipeline;
}  // namespace pipeline

/// The pipeline's environment: every piece of cross-request state a
/// stateful front end (Engine / Session) threads through one solve. The
/// default-constructed form shares nothing across calls — that is the
/// stateless path, and the cache-off Engine configuration.
struct SolveHooks {
  /// Content-addressed solve cache. When set, the CacheLookup stage keys
  /// whole solves and decomposition components by canonical form,
  /// deduplicates identical components within one request, and Dispatch
  /// publishes fresh results back. When null, CacheLookup is skipped and
  /// nothing is shared across calls.
  SolveCache* cache = nullptr;
  /// Worker pool the Dispatch stage fans large decompositions over; null
  /// selects the process-wide shared fan-out pool. A server front end can
  /// pin a session-owned pool here to isolate tenants. Component tasks
  /// must never submit back into this pool (fan-out would deadlock).
  ThreadPool* fanout = nullptr;
};

/// Which SolveParams fields a family reads. Front ends use this to reject
/// options the selected solver would silently ignore; check() uses it to
/// validate only the parameters that are actually consumed.
enum ParamFlag : unsigned {
  kUsesAlpha = 1u << 0,      // SolveParams::alpha
  kUsesMaxSpans = 1u << 1,   // SolveParams::max_spans
  kUsesThreshold = 1u << 2,  // SolveParams::powerdown_threshold
  kUsesPacking = 1u << 3,    // SolveParams::swap_size / block_size
};

/// Static description of a solver family, used for dispatch-time capability
/// checks, `solver_cli --list`, and the README solver table.
struct SolverInfo {
  /// Registry key, e.g. "gap_dp". Lowercase identifier, unique.
  std::string name;
  Objective objective = Objective::kGaps;
  /// One-line description.
  std::string summary;
  /// Where the algorithm comes from, e.g. "Theorem 1 (Section 2)".
  std::string paper_ref;
  /// Asymptotic cost, e.g. "O(n^7 p^5)".
  std::string complexity;
  /// True for provably optimal solvers (within their envelope).
  bool exact = false;
  /// True when the family requires one-interval (release/deadline) jobs.
  bool requires_one_interval = false;
  /// Maximum supported processor count; 0 means unlimited. Families that
  /// define the problem on a single processor set 1 (the engine rejects
  /// p > 1 rather than silently ignoring the extra processors).
  int max_processors = 0;
  /// Hard instance-size cap (exponential reference solvers); 0 = unlimited.
  std::size_t max_n = 0;
  /// Bitmask of ParamFlag: the SolveParams fields this family consumes.
  unsigned params = 0;
};

/// Abstract solver. Implementations must be stateless across calls (solve()
/// is invoked concurrently from Engine::solve_batch's worker threads).
class Solver {
 public:
  virtual ~Solver() = default;

  virtual const SolverInfo& info() const = 0;

  /// Validates the request against info() and the instance's own
  /// well-formedness, then walks the staged pipeline (engine/pipeline.hpp)
  /// with an empty environment; fills stats.wall_ms, stats.stages, and
  /// timed_out. Never throws: rejections come back as
  /// SolveResult::rejected.
  SolveResult solve(const SolveRequest& request) const;

  /// Stateful variant: same pipeline, threaded through the front-end-owned
  /// environment in `hooks` (see SolveHooks). solve(request) is exactly
  /// solve(request, {}).
  SolveResult solve(const SolveRequest& request,
                    const SolveHooks& hooks) const;

  /// Returns a non-empty diagnostic when `solve` would reject the request
  /// without running the underlying algorithm.
  std::string check(const SolveRequest& request) const;

 protected:
  /// The family-specific adapter, invoked by the pipeline's Dispatch
  /// stage. Called only with requests that passed check(); must fill
  /// ok/feasible/cost/transitions/schedule/stats fields other than
  /// wall_ms.
  virtual SolveResult do_solve(const SolveRequest& request) const = 0;

 private:
  /// The Dispatch stage is the only caller of do_solve outside this class.
  friend class pipeline::Pipeline;
};

}  // namespace gapsched::engine

#pragma once
// Batched parallel driver: fan independent SolveRequests out over a
// ThreadPool with deterministic result ordering (results[i] always answers
// jobs[i], bitwise identical regardless of thread count — the solvers are
// single-threaded and deterministic, so parallelism lives only here).

#include <cstddef>
#include <string>
#include <vector>

#include "gapsched/engine/registry.hpp"
#include "gapsched/engine/solver.hpp"
#include "gapsched/parallel/thread_pool.hpp"

namespace gapsched::engine {

/// One batch entry: a request routed to a named solver, so a single batch
/// can mix families (the shootout/ladder pattern).
struct BatchJob {
  std::string solver;
  SolveRequest request;
};

/// Solves every job on `pool`'s workers. results[i] corresponds to jobs[i];
/// unknown solver names yield per-entry rejections, never an exception.
std::vector<SolveResult> solve_many(const std::vector<BatchJob>& jobs,
                                    ThreadPool& pool);

/// Same-solver convenience overload.
std::vector<SolveResult> solve_many(const Solver& solver,
                                    const std::vector<SolveRequest>& requests,
                                    ThreadPool& pool);

/// Owns a transient pool of `threads` workers (0 = hardware concurrency).
std::vector<SolveResult> solve_many(const std::vector<BatchJob>& jobs,
                                    std::size_t threads = 0);
std::vector<SolveResult> solve_many(const Solver& solver,
                                    const std::vector<SolveRequest>& requests,
                                    std::size_t threads = 0);

}  // namespace gapsched::engine

#pragma once
// DEPRECATED batched driver (kept as thin stateless shims for one release):
// fan independent SolveRequests out over a ThreadPool with deterministic
// result ordering (results[i] always answers jobs[i], bitwise identical
// regardless of thread count — the solvers are single-threaded and
// deterministic, so parallelism lives only here).
//
// New code should construct a gapsched::engine::Engine and use
// Engine::solve_batch / Engine::solve_stream, which add the persistent
// worker pool, the content-addressed solve cache, and streaming delivery.
// These free functions share no state across calls and never cache.

#include <cstddef>
#include <string>
#include <vector>

#include "gapsched/engine/registry.hpp"
#include "gapsched/engine/solver.hpp"
#include "gapsched/parallel/thread_pool.hpp"

namespace gapsched::engine {

/// Deprecated: solves every job on `pool`'s workers. results[i] corresponds
/// to jobs[i]; unknown solver names yield per-entry rejections, never an
/// exception. Prefer Engine::solve_batch.
std::vector<SolveResult> solve_many(const std::vector<BatchJob>& jobs,
                                    ThreadPool& pool);

/// Deprecated same-solver convenience overload.
std::vector<SolveResult> solve_many(const Solver& solver,
                                    const std::vector<SolveRequest>& requests,
                                    ThreadPool& pool);

/// Deprecated: owns a transient pool of `threads` workers (0 = hardware
/// concurrency). Prefer Engine, which keeps its pool alive across batches.
std::vector<SolveResult> solve_many(const std::vector<BatchJob>& jobs,
                                    std::size_t threads = 0);
std::vector<SolveResult> solve_many(const Solver& solver,
                                    const std::vector<SolveRequest>& requests,
                                    std::size_t threads = 0);

}  // namespace gapsched::engine

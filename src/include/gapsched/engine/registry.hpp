#pragma once
// SolverRegistry: the static catalogue of every solver family in the
// library. The built-in adapters (src/engine/builtin_solvers.cpp) are
// registered on first access, so `SolverRegistry::instance()` always starts
// fully populated — no reliance on static-initializer link order.

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gapsched/engine/solver.hpp"

namespace gapsched::engine {

class SolverRegistry {
 public:
  /// The process-wide registry, with all built-in solvers registered.
  /// Read-only convenience for code that needs solver metadata without an
  /// engine; solving code should own a registry through
  /// gapsched::engine::Engine.
  static SolverRegistry& instance();

  /// A fresh registry populated with every built-in solver — the form an
  /// Engine owns, so per-engine add() calls never leak into the process-
  /// wide instance().
  static std::unique_ptr<SolverRegistry> create_with_builtins();

  /// Registers a solver. Returns false (and drops `solver`) when a solver
  /// with the same name already exists.
  bool add(std::unique_ptr<Solver> solver);

  /// Looks up a solver by registry name; nullptr when unknown.
  const Solver* find(std::string_view name) const;

  /// All solvers, sorted by name.
  std::vector<const Solver*> all() const;

  /// The solvers handling one objective, sorted by name.
  std::vector<const Solver*> for_objective(Objective objective) const;

  /// Sorted registry names.
  std::vector<std::string> names() const;

  std::size_t size() const { return solvers_.size(); }

 private:
  SolverRegistry() = default;

  std::map<std::string, std::unique_ptr<Solver>, std::less<>> solvers_;
};

}  // namespace gapsched::engine

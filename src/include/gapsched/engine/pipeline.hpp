#pragma once
// gapsched::engine::pipeline — the staged solve path behind Solver::solve.
//
// Every request walks the same seven named stages, in order:
//
//   Canonicalize → Decompose → Compress → CacheLookup → Dispatch
//                                                → Recombine → Audit
//
// Each stage is a small unit operating on an explicit per-request
// SolveContext (the request, its canonical forms, the component set, cache
// keys and hits, the partial results, and per-stage timings) instead of
// locals threaded through one monolithic function. Stages that do not
// apply to a request are skipped — and say so in SolveStats::stages, so a
// caller can see exactly which parts of the pipeline served its answer:
//
//   * Canonicalize runs for whole-instance solves on a cache-carrying
//     environment (decomposed solves canonicalize per component inside
//     Decompose, whose components come out sorted and origin-shifted);
//   * Decompose / Compress run for exact gap/power solves that opted into
//     the prep pipeline (SolveParams::decompose / compress);
//   * CacheLookup runs whenever the environment carries a SolveCache;
//   * Dispatch runs the family adapter (do_solve) — skipped entirely when
//     every component (or the whole solve) was served from the cache;
//   * Recombine merges component parts, maps cached schedules back to the
//     requester's coordinates, and aggregates stats;
//   * Audit re-derives the answer with the independent oracle under
//     params.validate.
//
// The SolveHooks environment (engine/solver.hpp) is what a stateful front
// end (Engine / Session) threads through the pipeline: the solve cache and
// the component fan-out pool. The pipeline itself is stateless across
// requests; behavior with a default-constructed environment is exactly the
// old stateless solve path.

#include <array>
#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "gapsched/core/transforms.hpp"
#include "gapsched/engine/cache.hpp"
#include "gapsched/engine/solver.hpp"
#include "gapsched/engine/types.hpp"
#include "gapsched/prep/prep.hpp"

namespace gapsched::engine::pipeline {

/// Explicit per-request state of one pipeline walk. Created by
/// Pipeline::run, filled in stage by stage; owns every intermediate the
/// stages exchange so nothing is threaded through function locals.
struct SolveContext {
  SolveContext(const Solver& solver_in, const SolveRequest& request_in,
               const SolveHooks& env_in)
      : solver(solver_in), request(request_in), env(env_in) {}

  const Solver& solver;
  const SolveRequest& request;
  /// The pipeline's environment: cross-request cache + fan-out pool.
  const SolveHooks& env;

  // ---- routing, decided by Canonicalize ----
  /// Request goes through the component pipeline (exact family, additive
  /// objective, params.decompose).
  bool decomposing = false;
  /// Decompose found a single component and neither the cache nor the
  /// compressor needs the component form: Dispatch solves the request
  /// whole, exactly like the monolithic path.
  bool single_component_fast_path = false;
  /// Length-aware dead-time cap for Compress; 0 disables compression.
  Time cap = 0;

  // ---- Canonicalize products (whole-instance route) ----
  std::optional<prep::Canonical> canonical;
  CacheKey whole_key;

  // ---- Decompose / Compress products ----
  prep::Decomposition dec;
  std::vector<CompressedInstance> compressed;
  /// The per-component instance Dispatch actually solves: the compressed
  /// image when Compress ran, the raw component otherwise.
  std::vector<Instance*> solve_inst;

  // ---- CacheLookup products ----
  std::shared_ptr<const SolveResult> whole_hit;
  std::vector<CacheKey> keys;
  /// Components left to genuinely solve / served from the cross-request
  /// cache / intra-request duplicates of an earlier component.
  std::vector<std::size_t> to_solve;
  std::vector<std::size_t> hit_components;
  std::vector<std::size_t> dup_of;

  // ---- Dispatch / Recombine products ----
  std::vector<SolveResult> parts;
  /// Prep/caching stats aggregated across stages, folded into the final
  /// result by Recombine.
  SolveStats agg;

  /// The answer under construction; final after Recombine + Audit.
  SolveResult result;

  /// Per-stage wall time and ran/skipped verdicts, copied into
  /// result.stats.stages when the walk completes.
  std::array<StageStats, kPipelineStageCount> stages{};
};

/// The staged request pipeline. `run` drives the fixed stage sequence over
/// a fresh SolveContext; the per-stage units are private — callers go
/// through Solver::solve (stateless) or Engine/Session (stateful), which
/// both land here.
class Pipeline {
 public:
  /// Walks all seven stages for one pre-validated request (Solver::check
  /// must have passed) and returns the finished result, stage timings
  /// included. Bit-for-bit equivalent to the former monolithic
  /// Solver::solve body.
  static SolveResult run(const Solver& solver, const SolveRequest& request,
                         const SolveHooks& env);

 private:
  static void canonicalize(SolveContext& ctx);
  static void decompose(SolveContext& ctx);
  static void compress(SolveContext& ctx);
  static void cache_lookup(SolveContext& ctx);
  static void dispatch(SolveContext& ctx);
  static void recombine(SolveContext& ctx);
  static void audit(SolveContext& ctx);
};

/// Lifetime tallies of one pipeline stage across a Session (or any other
/// accumulator): how often it ran, how often the pipeline skipped it, and
/// the summed wall time of the runs.
struct StageTally {
  std::uint64_t runs = 0;
  std::uint64_t skips = 0;
  double total_ms = 0.0;
};

/// Per-stage roll-up of every request a Session pushed through the
/// pipeline, indexed by PipelineStage.
struct PipelineStats {
  std::array<StageTally, kPipelineStageCount> stages{};
  /// Results absorbed. Requests rejected at Solver::check never enter the
  /// pipeline and show up as an all-skip row.
  std::uint64_t requests = 0;

  /// Folds one finished result's stage record into the tallies.
  void absorb(const SolveStats& stats) {
    ++requests;
    for (std::size_t i = 0; i < kPipelineStageCount; ++i) {
      const StageStats& s = stats.stages[i];
      if (s.ran) {
        ++stages[i].runs;
        stages[i].total_ms += s.ms;
      } else {
        ++stages[i].skips;
      }
    }
  }
};

}  // namespace gapsched::engine::pipeline

#pragma once
// gapsched::engine::Engine — the persistent, stateful front end of the
// solver engine, and the API every downstream consumer (CLI, benches,
// tests, a future server) sits on.
//
// An Engine owns the three pieces of cross-request state the free-function
// entry points had nowhere to hang:
//
//   * its solver registry (every built-in family pre-registered; add() more
//     per engine without touching the process-wide instance()),
//   * an execution Session (engine/session.hpp): the single seam
//     solve/solve_batch/solve_stream go through, owning the pipeline's
//     SolveHooks environment, the lazily-spawned batch worker pool, and
//     the lifetime per-stage PipelineStats roll-up (pipeline_stats()),
//   * a content-addressed solve cache (engine/cache.hpp): requests are
//     keyed by the canonical form of (prep-canonicalized — and, for gap
//     components, dead-time-compressed — instance, objective, the
//     parameters the solver consumes). Repeated solves, time-shifted or
//     job-permuted copies, and identical components inside one decomposed
//     instance all collapse onto one entry; SolveStats::cache_hit /
//     component_cache_hits / components_deduped report what was reused.
//     Cached entries store no audit state: a hit under params.validate is
//     re-audited against the requester's own instance by the independent
//     oracle.
//
// Batches: solve_batch() is the bulk call — results[i] always answers
// jobs[i]. solve_stream() is the same with a completion callback — each
// SolveResult is delivered as it finishes (callback invocations are
// serialized, completion order is non-deterministic) while the returned
// vector keeps request order; this is the seam a sharded server front end
// streams results through.
//
// Determinism: with the cache DISABLED, batch results are bitwise
// reproducible at any thread count (solvers are single-threaded and
// deterministic). With the cache enabled, a canonical-equivalent request
// may be served from an entry another request populated, and whether it
// hits depends on cache state and completion timing — costs of exact
// families and all feasibility verdicts are unaffected (any served answer
// is optimal and oracle-checked), but heuristic families, being job-order
// sensitive, may return a different valid answer than a fresh solve
// would. Benches that require reproducible output use {.cache = false}.
//
// The deprecated free-function shims solve_with() / solve_many() were
// removed one release after the Engine landed; every consumer now goes
// through an Engine.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "gapsched/engine/cache.hpp"
#include "gapsched/engine/registry.hpp"
#include "gapsched/engine/session.hpp"
#include "gapsched/engine/solver.hpp"
#include "gapsched/engine/types.hpp"

namespace gapsched::store {
class DiskStore;
}

namespace gapsched::engine {

struct EngineOptions {
  /// Worker threads for solve_batch/solve_stream; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Enables the content-addressed solve cache.
  bool cache = true;
  /// Cache entry cap (LRU eviction); 0 = unbounded. Ignored when !cache.
  std::size_t cache_capacity = 4096;
  /// Path of the persistent on-disk solve store (store/store.hpp), shared
  /// across processes and restarts; empty keeps the cache memory-only.
  /// Opened (created when missing) at construction; an open failure is
  /// recorded in Engine::store_error() and the engine runs memory-only —
  /// a broken store file can cost speed, never correctness or startup.
  /// Requires cache.
  std::string store_path = {};
  /// Cost-weighted spill admission: only entries whose solve wall time was
  /// at least this many ms are persisted (a cached 10 ms DP answer is
  /// worth a disk record; a 10 us one is not).
  double store_spill_min_ms = 0.1;
  /// Store file size budget in bytes; exceeding appends trigger
  /// keep-most-expensive compaction. 0 = unbounded.
  std::size_t store_max_bytes = 0;
};

/// Roll-up of a batch's outcomes. `timed_out` results are counted
/// separately from `ok` — a timed-out answer is advisory at best, and a
/// batch that produced one must not be reported as an unqualified success.
struct BatchSummary {
  std::size_t total = 0;
  std::size_t ok = 0;        // engine accepted and a solver ran
  std::size_t rejected = 0;  // !ok: outside the solver's envelope
  std::size_t feasible = 0;
  std::size_t infeasible = 0;
  std::size_t timed_out = 0;  // ok, but over params.time_limit_s
  std::size_t audited = 0;
  std::size_t refuted = 0;  // audited with a non-empty audit_error
  std::size_t cache_hits = 0;
  std::size_t component_cache_hits = 0;
  std::size_t components_deduped = 0;

  /// True when every entry ran inside its envelope, none exceeded its time
  /// budget, and no audited answer was refuted.
  bool success() const {
    return rejected == 0 && timed_out == 0 && refuted == 0;
  }
};

BatchSummary summarize(const std::vector<SolveResult>& results);

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineOptions& options() const { return options_; }

  /// This engine's registry (mutable so custom solvers can be add()ed
  /// per engine).
  SolverRegistry& registry() { return *registry_; }
  const SolverRegistry& registry() const { return *registry_; }

  /// One cache-aware solve. Unknown names come back as a rejection.
  SolveResult solve(std::string_view solver, const SolveRequest& request);
  SolveResult solve(const Solver& solver, const SolveRequest& request);

  /// Bulk batch: results[i] answers jobs[i]. Bitwise reproducible at any
  /// thread count when the cache is disabled; see the header comment for
  /// the cache-on determinism caveat.
  std::vector<SolveResult> solve_batch(const std::vector<BatchJob>& jobs);

  /// Called once per completed entry with its request index. Invocations
  /// are serialized (no locking needed inside), but arrive in completion
  /// order, not request order; the returned vector restores request order.
  using StreamCallback = Session::StreamCallback;

  /// Streaming batch: like solve_batch, delivering each result through
  /// `on_result` the moment it completes. A null callback degenerates to
  /// solve_batch.
  std::vector<SolveResult> solve_stream(const std::vector<BatchJob>& jobs,
                                        const StreamCallback& on_result);

  /// This engine's execution session — the seam a server front end would
  /// hold directly (one per tenant around a shared registry and cache).
  Session& session() { return *session_; }

  /// Per-stage pipeline roll-up (runs/skips/summed wall time, indexed by
  /// PipelineStage) across every request this engine served.
  pipeline::PipelineStats pipeline_stats() const {
    return session_->pipeline_stats();
  }

  /// Hit/miss/eviction counters of the solve cache (zeros when disabled).
  /// With a store attached this includes the disk tier: disk_hits,
  /// disk_rejects, spilled, disk_entries.
  CacheStats cache_stats() const;
  /// Drops the in-memory cache tier; the persistent store is untouched.
  void clear_cache();

  /// The persistent store, if one was opened (null otherwise).
  store::DiskStore* store() { return store_.get(); }
  /// Why store_path could not be opened ("" when it was, or none was set).
  const std::string& store_error() const { return store_error_; }
  /// Blocks until every queued write-behind spill reached the store — the
  /// barrier to call before handing the store file to another process.
  void flush_store();

 private:
  EngineOptions options_;
  std::unique_ptr<SolverRegistry> registry_;
  // Declared before cache_: the cache's spill worker must join (in
  // ~SolveCache) while the store it appends to is still alive.
  std::unique_ptr<store::DiskStore> store_;
  std::string store_error_;
  std::unique_ptr<SolveCache> cache_;  // null when options_.cache is false
  std::unique_ptr<Session> session_;   // owns batch pool + pipeline stats
};

}  // namespace gapsched::engine

#pragma once
// gapsched::engine::Session — the execution seam between a stateful front
// end and the staged solve pipeline (engine/pipeline.hpp).
//
// A Session owns the pipeline's per-deployment configuration and runtime:
//
//   * the SolveHooks environment every request is threaded through — the
//     content-addressed solve cache (owned by the caller, typically an
//     Engine; null disables sharing) and, optionally, a pinned component
//     fan-out pool,
//   * the batch worker pool solve_batch/solve_stream fan requests over,
//     lazily spawned on the first batch,
//   * the lifetime PipelineStats roll-up: per-stage run/skip counts and
//     summed wall time of every request this session pushed through the
//     pipeline.
//
// Engine::solve / solve_batch / solve_stream all delegate here, and a
// server front end is expected to hold one Session per tenant (or one
// shared one) around the same registry and cache. The Session itself is
// thread-safe: concurrent solve()/solve_stream() calls share the cache and
// the stats roll-up under their own locks.

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "gapsched/engine/pipeline.hpp"
#include "gapsched/engine/registry.hpp"
#include "gapsched/engine/solver.hpp"
#include "gapsched/engine/types.hpp"

namespace gapsched {
class ThreadPool;
}  // namespace gapsched

namespace gapsched::engine {

class SolveCache;

class Session {
 public:
  /// `registry` and `cache` are borrowed and must outlive the session;
  /// `cache` may be null (nothing shared across requests). `threads` sizes
  /// the batch worker pool (0 = hardware concurrency).
  Session(const SolverRegistry& registry, SolveCache* cache,
          std::size_t threads);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// One pipeline walk. Unknown names come back as a rejection. Every
  /// result — including rejections — is folded into pipeline_stats().
  SolveResult solve(std::string_view solver, const SolveRequest& request);
  SolveResult solve(const Solver& solver, const SolveRequest& request);

  /// Called once per completed entry with its request index. Invocations
  /// are serialized (no locking needed inside), but arrive in completion
  /// order, not request order; the returned vector restores request order.
  using StreamCallback =
      std::function<void(std::size_t index, const SolveResult& result)>;

  /// Bulk batch: results[i] answers jobs[i].
  std::vector<SolveResult> solve_batch(const std::vector<BatchJob>& jobs);

  /// Streaming batch: like solve_batch, delivering each result through
  /// `on_result` the moment it completes. A null callback degenerates to
  /// solve_batch.
  std::vector<SolveResult> solve_stream(const std::vector<BatchJob>& jobs,
                                        const StreamCallback& on_result);

  /// Snapshot of the lifetime per-stage roll-up (runs, skips, summed ms,
  /// absorbed request count).
  pipeline::PipelineStats pipeline_stats() const;
  void reset_pipeline_stats();

 private:
  ThreadPool& batch_pool();
  /// Folds one finished result into the stats roll-up.
  void record(const SolveResult& result);

  const SolverRegistry& registry_;
  SolveCache* cache_;  // borrowed; null when caching is off
  std::size_t threads_;

  std::mutex pool_mu_;
  std::unique_ptr<ThreadPool> pool_;  // lazily spawned by batch_pool()

  mutable std::mutex stats_mu_;
  pipeline::PipelineStats stats_;
};

}  // namespace gapsched::engine

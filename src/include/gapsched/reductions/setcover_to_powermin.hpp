#pragma once
// Theorems 4, 5 and 6: the approximation-preserving reduction from set cover
// to multi-interval power minimization / gap scheduling.
//
// For each set c_i, an interval I_i of length |c_i| is created, any two
// intervals more than n^3 apart; each element's job may run anywhere inside
// the intervals of the sets containing it; one extra unit interval with a
// dedicated job forces at least one span. Theorem 4 sets alpha = n
// (universe size); Theorem 5 sets alpha = B (max set size); Theorem 6 reads
// the same construction through the gap objective.
//
// Value correspondence (transitions convention; the paper's "gaps" equal
// transitions - 1 on one processor):
//   cover of size k  <->  schedule with k + 1 transitions
//                    <->  power (n + 1) + alpha * (k + 1) with no bridging
// (the n^3 spacing makes bridging across intervals useless, and jobs inside
// an interval pack consecutively).

#include "gapsched/core/schedule.hpp"
#include "gapsched/setcover/setcover.hpp"

namespace gapsched {

struct SetCoverReduction {
  /// The produced single-processor multi-interval instance. Job e
  /// (e < universe) is element e's job; job `universe` is the extra job.
  Instance instance;
  /// Transition cost for the power version (n for Thm 4, B for Thm 5).
  double alpha = 0.0;
  /// Interval laid out for each set, aligned with the source sets.
  std::vector<Interval> set_intervals;
  Interval extra_interval;

  /// Cover size -> minimum transitions of the reduced instance.
  static std::int64_t cover_to_transitions(std::size_t k) {
    return static_cast<std::int64_t>(k) + 1;
  }
  /// Transitions -> cover size (inverse of the above).
  static std::size_t transitions_to_cover(std::int64_t t) {
    return static_cast<std::size_t>(t - 1);
  }
  /// Cover size -> minimum power of the reduced instance.
  double cover_to_power(std::size_t k) const {
    return static_cast<double>(instance.n()) +
           alpha * static_cast<double>(cover_to_transitions(k));
  }

  /// Extracts the cover read off a schedule: every set whose interval hosts
  /// at least one job (the extra interval excluded).
  std::vector<std::size_t> cover_from_schedule(const Schedule& s) const;
};

/// Builds the reduction. alpha_override < 0 selects the Theorem 4 default
/// (alpha = universe size); Theorem 5 passes the source's max_set_size().
SetCoverReduction reduce_setcover_to_powermin(const SetCoverInstance& sc,
                                              double alpha_override = -1.0);

}  // namespace gapsched

#pragma once
// Theorem 8: approximation-preserving reduction from multi-interval gap
// scheduling to 3-unit gap scheduling (every job has at most three allowed
// times, each a single unit).
//
// A job executable at k > 3 unit times t_1..t_k is replaced by an extra
// interval of length 2k-1 (positions 1..2k-1), k dummy jobs pinned at the
// odd positions, and k replacement jobs:
//   j_i (i < k):  { t_i, pos(2i), pos(2i+2) }   (the last wraps to pos(2))
//   j_k:          { t_k, pos(2), pos(4) }
// Any k-1 of the replacement jobs can fill the even positions (shifting via
// the wrap slots), so exactly one replacement job runs outside, exactly
// mirroring the original job's choice of t_i. Extra intervals are laid out
// back to back: reduced optimum = original optimum + 1 (+0 when no job was
// replaced).
//
// The input's allowed sets are enumerated as explicit unit times, so the
// reduction expects sets of moderate total size ([Bap06, Prop 2.1] bounds
// the useful ones polynomially).

#include "gapsched/core/instance.hpp"

namespace gapsched {

struct ThreeUnitReduction {
  /// The reduced instance: every job has at most three allowed unit times.
  Instance instance;
  bool has_extra_block = false;
  Interval extra_block;

  std::int64_t original_to_reduced(std::int64_t t) const {
    return t + (has_extra_block ? 1 : 0);
  }
};

/// Builds the Theorem 8 reduction. The input is treated as
/// single-processor.
ThreeUnitReduction reduce_multi_to_three_unit(const Instance& inst);

}  // namespace gapsched

#pragma once
// The Section 2 observation: p-processor (one-interval) gap scheduling is a
// special case of single-processor multi-interval scheduling where every
// job's intervals form an arithmetic progression with one long period x.
//
// Processor q's timeline is laid out at offset q*x; a job with window
// [a, d] becomes allowed in [a, d], [a+x, d+x], ..., [a+(p-1)x, d+(p-1)x].
// With x exceeding the original horizon span plus one, segment contents can
// never touch, so transitions correspond exactly: sum of per-processor run
// starts == single-processor run starts of the embedded schedule.

#include "gapsched/core/instance.hpp"
#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct ArithmeticEmbedding {
  /// Equivalent single-processor multi-interval instance.
  Instance embedded;
  /// The arithmetic period x.
  Time period = 0;
  /// Original horizon start (segment q spans [origin + q*x, ...]).
  Time origin = 0;
  int processors = 1;

  /// Maps an embedded time to (processor, original time).
  std::pair<int, Time> unembed_time(Time t) const;
  /// Converts a schedule of the embedded instance into a schedule of the
  /// original multiprocessor instance (same job indexing).
  Schedule unembed_schedule(const Schedule& s) const;
};

/// Embeds a one-interval multiprocessor instance. Requires
/// inst.is_one_interval().
ArithmeticEmbedding embed_multiprocessor(const Instance& inst);

}  // namespace gapsched

#pragma once
// Theorem 9: the two-way equivalence between two-unit gap scheduling (every
// job has at most two allowed unit times) and disjoint-unit gap scheduling
// (all jobs' allowed sets pairwise disjoint).
//
// Both directions run on the dead-time-compressed timeline (every maximal
// run of unusable times becomes one unit) and produce an instance whose
// schedules are the pointwise *complement* of the source's schedules within
// the horizon:
//
//  * two-unit -> disjoint: in the bipartite job/time graph each connected
//    component with |times| = |jobs| + 1 leaves exactly one idle time,
//    freely choosable (alternating-path argument); it becomes one new job
//    allowed at the component's times. Dead units become pinned jobs.
//  * disjoint -> two-unit: a job allowed at t_1 < ... < t_k becomes the
//    chain {t_1,t_2}, {t_2,t_3}, ..., {t_{k-1},t_k}, which occupies all but
//    exactly one (freely choosable) of the k times. Dead units become
//    pinned jobs.
//
// Complementing a busy set changes the span count by at most one, so the
// optima differ by at most 1 (verified empirically in tests/benches).

#include "gapsched/core/instance.hpp"
#include "gapsched/core/transforms.hpp"

namespace gapsched {

struct TwoUnitDisjointReduction {
  /// The produced instance, on the compressed timeline.
  Instance instance;
  /// The compressed form of the source (for mapping times back).
  CompressedInstance compressed_source;
  /// False when the source was structurally infeasible (some component has
  /// fewer times than jobs); `instance` is empty in that case.
  bool feasible_input = false;
};

/// Theorem 9 forward direction. Requires every job to have at most two
/// allowed times, each a unit point.
TwoUnitDisjointReduction reduce_two_unit_to_disjoint(const Instance& inst);

/// Theorem 9 backward direction. Requires pairwise-disjoint unit-point
/// allowed sets.
TwoUnitDisjointReduction reduce_disjoint_to_two_unit(const Instance& inst);

}  // namespace gapsched

#pragma once
// Theorem 7: approximation-preserving reduction from multi-interval gap
// scheduling to 2-interval gap scheduling.
//
// Every job with more than two allowed intervals I_1..I_k is replaced by an
// "extra interval" of length 2k-1, k dummy jobs pinned to its odd positions,
// and k replacement jobs r_i allowed in I_i or anywhere in the extra
// interval. All extra intervals are laid out back to back, so in an optimal
// schedule they form exactly one additional span: the reduced optimum is
// the original optimum plus one (plus zero when no job needed replacing).

#include "gapsched/core/instance.hpp"

namespace gapsched {

struct TwoIntervalReduction {
  /// The reduced instance: every job has at most two allowed intervals.
  Instance instance;
  /// True iff any job was replaced (i.e. an extra block exists).
  bool has_extra_block = false;
  /// The contiguous region holding all extra intervals (empty if none).
  Interval extra_block;

  /// Original optimum transitions -> reduced optimum transitions.
  std::int64_t original_to_reduced(std::int64_t t) const {
    return t + (has_extra_block ? 1 : 0);
  }
};

/// Builds the Theorem 7 reduction. The input is treated as
/// single-processor.
TwoIntervalReduction reduce_multi_to_two_interval(const Instance& inst);

}  // namespace gapsched

#pragma once
// Theorem 10: reduction from B-set cover to disjoint-unit gap scheduling
// (all jobs' allowed sets are pairwise-disjoint unit times), showing the
// latter has no constant-factor approximation.
//
// For each set c_i and each non-empty subset A of c_i, an interval of
// length |A| is laid out (intervals pairwise disjoint and non-adjacent);
// element e's job may run at the position ranking e within A, for every
// (i, A) with e in A. Positions of distinct elements never collide, so all
// allowed sets are disjoint.
//
// Value correspondence (transitions convention): minimum transitions of the
// reduced instance == minimum cover size (a cover packs one full interval
// per chosen set; conversely every span lies inside one interval and used
// intervals of one set merge into one chosen set).
//
// The construction enumerates 2^|c_i| subsets per set, so it requires
// bounded B (the theorem's hypothesis).

#include "gapsched/core/instance.hpp"
#include "gapsched/setcover/setcover.hpp"

namespace gapsched {

struct DisjointUnitReduction {
  /// The reduced single-processor disjoint-unit instance. Job e corresponds
  /// to element e.
  Instance instance;
  /// One entry per laid-out interval: the source set index and the subset
  /// (sorted element ids) it represents.
  std::vector<std::pair<std::size_t, std::vector<std::size_t>>> subsets;
  std::vector<Interval> intervals;

  /// Cover size <-> reduced transitions (identity map).
  static std::int64_t cover_to_transitions(std::size_t k) {
    return static_cast<std::int64_t>(k);
  }
};

/// Builds the Theorem 10 reduction. Requires max_set_size() <= 10
/// (exponential subset enumeration).
DisjointUnitReduction reduce_setcover_to_disjoint_unit(
    const SetCoverInstance& sc);

}  // namespace gapsched

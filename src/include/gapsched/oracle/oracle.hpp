#pragma once
// Independent schedule oracle: re-validates a returned schedule and
// re-derives its objective costs directly from the raw placements, sharing
// no code with any solver family (no DP, matching, profile, or greedy
// helpers — only the Instance/Schedule data containers are read). This is
// the cross-checking layer of the Baptiste–Chrobak–Dürr experimental
// methodology: a solver's claim is only trusted once an implementation that
// cannot share its bugs re-derives the same numbers.
//
// Three entry points:
//   audit_schedule()  feasibility re-validation + cost re-derivation
//   min_power()       least power any execution of the schedule can pay
//   check_result()    verdict on one engine SolveResult (engine/CLI/bench
//                     wiring; SolveParams::validate routes through here)

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gapsched/core/instance.hpp"
#include "gapsched/core/schedule.hpp"
#include "gapsched/engine/types.hpp"

namespace gapsched::oracle {

/// Outcome of the independent re-validation and cost re-derivation.
/// Cost fields are derived by the oracle's own counting sweep over the raw
/// placements and are only meaningful when `valid`.
struct ScheduleAudit {
  /// True when every structural check passed.
  bool valid = false;
  /// Every violation found (the oracle keeps scanning after the first, so
  /// a broken solver surfaces all of its sins at once).
  std::vector<std::string> violations;

  /// Jobs with a placement.
  std::size_t scheduled = 0;
  /// True when every job is placed.
  bool complete = false;
  /// (time, #jobs) for busy times, sorted by time.
  std::vector<std::pair<Time, int>> occupancy;
  /// Total busy processor-time units (= scheduled, unit jobs).
  std::int64_t busy_time = 0;
  int max_occupancy = 0;
  /// Sleep->active transitions under the staircase normal form (the gap
  /// objective): sum over times of the occupancy increase vs. time - 1.
  std::int64_t transitions = 0;
  /// Maximal busy stretches of the whole system (span count; equals
  /// transitions on one processor).
  std::int64_t spans = 0;

  /// One diagnostic line joining all violations (empty when valid).
  std::string violation_summary() const;
};

/// Re-validates `schedule` against `inst`: per-job window membership,
/// per-time occupancy <= processors, processor indices in range with no
/// (time, processor) collisions, and completeness when `require_complete`.
/// Always fills the cost fields from whatever placements exist.
ScheduleAudit audit_schedule(const Instance& inst, const Schedule& schedule,
                             bool require_complete = true);

/// Minimum total power (active time + alpha * wake-ups) any execution of
/// the audited schedule can pay, i.e. with optimal idle bridging: processor
/// level q must be awake whenever occupancy >= q, and an interior idle run
/// of length g at a level costs min(g, alpha). No solver's reported power
/// may ever be below this for its own schedule; exact power solvers must
/// match it. Requires alpha >= 0.
double min_power(const ScheduleAudit& audit, double alpha);

/// Re-checks one solver outcome against its request:
///   kGaps        schedule valid + complete, transitions re-derived and
///                equal to both `transitions` and `cost`
///   kPower       schedule valid + complete, cost >= min_power(schedule)
///                (== when `exact`)
///   kThroughput  schedule valid (partial allowed), cost == #scheduled,
///                span count within params.max_spans
/// Rejections and infeasible verdicts carry no schedule and pass trivially
/// (the differential suite cross-checks those *between* solvers instead).
/// Returns "" when the claim survives, else a diagnostic.
std::string check_result(const engine::SolveRequest& request,
                         const engine::SolveResult& result, bool exact);

}  // namespace gapsched::oracle

#pragma once
// Infeasibility certificates via Hall's theorem.
//
// A unit-job instance is infeasible exactly when some set U of jobs has
// fewer available (time x processor) slots than |U|. This module extracts
// such a witness from a maximum matching (the Koenig/alternating-path
// closure of the unmatched jobs), giving downstream users an explanation —
// "these 5 jobs only fit into these 4 slots" — rather than a bare `false`.
// For one-interval instances the witness is always an interval window
// [s, e] containing more jobs than p * (e - s + 1) slots.

#include <optional>
#include <vector>

#include "gapsched/core/instance.hpp"

namespace gapsched {

/// A Hall violator: |jobs| > processors * |times| and every listed job can
/// only run at the listed times.
struct HallViolation {
  std::vector<std::size_t> jobs;
  std::vector<Time> times;
};

/// Returns a Hall violator when the instance is infeasible, nullopt when a
/// feasible schedule exists.
std::optional<HallViolation> hall_certificate(const Instance& inst);

/// Checks that `v` really certifies infeasibility of `inst`: every job's
/// allowed set is contained in v.times and the counting inequality holds.
bool is_valid_violation(const Instance& inst, const HallViolation& v);

}  // namespace gapsched

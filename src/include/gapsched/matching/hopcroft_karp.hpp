#pragma once
// Hopcroft-Karp maximum bipartite matching: O(E sqrt(V)). Used by the
// feasibility oracle where whole-matching cardinality is all that matters
// (FHKN greedy candidate tests, Theorem 11 interval tests).

#include "gapsched/matching/bipartite.hpp"

namespace gapsched {

/// Result of a maximum matching computation.
struct MatchingResult {
  std::size_t cardinality = 0;
  /// mate_of_left[l] = matched right vertex or KuhnMatcher::npos.
  std::vector<std::size_t> mate_of_left;
  /// mate_of_right[r] = matched left vertex or KuhnMatcher::npos.
  std::vector<std::size_t> mate_of_right;
};

/// Maximum matching of `g` via Hopcroft-Karp.
MatchingResult hopcroft_karp(const Bipartite& g);

}  // namespace gapsched

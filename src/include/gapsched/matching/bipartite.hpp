#pragma once
// Bipartite maximum matching via augmenting paths (Kuhn's algorithm).
//
// This is the substrate behind Lemma 3 (extending a partial schedule one
// augmenting path at a time), the feasibility oracle used by the FHKN greedy
// and Theorem 11, and the Theorem 9 connected-component analysis.
// Kuhn is used where incremental augmentation matters; Hopcroft-Karp
// (hopcroft_karp.hpp) where only the maximum cardinality is needed.

#include <cstddef>
#include <vector>

namespace gapsched {

/// Adjacency of a bipartite graph with `left` and `right` vertex counts.
struct Bipartite {
  std::size_t n_left = 0;
  std::size_t n_right = 0;
  /// adj[l] = right-neighbours of left vertex l.
  std::vector<std::vector<std::size_t>> adj;

  explicit Bipartite(std::size_t left = 0, std::size_t right = 0)
      : n_left(left), n_right(right), adj(left) {}

  void add_edge(std::size_t l, std::size_t r) { adj[l].push_back(r); }
  std::size_t edge_count() const;
};

/// Incremental Kuhn matcher. Supports seeding with an existing partial
/// matching and augmenting one left vertex at a time; augmentation never
/// unmatches a previously matched left vertex and never abandons a used
/// right vertex (the Lemma 3 property: the set of used right vertices only
/// grows, by exactly one per successful augmentation).
class KuhnMatcher {
 public:
  explicit KuhnMatcher(const Bipartite& graph);

  /// Pre-assign left -> right (must be a valid edge and both free).
  /// Returns false if the seed conflicts.
  bool seed(std::size_t l, std::size_t r);

  /// Try to match left vertex l (no-op true if already matched).
  bool augment(std::size_t l);

  /// Augment every unmatched left vertex; returns the matching cardinality.
  std::size_t solve();

  std::size_t cardinality() const { return matched_; }
  /// Right mate of l, or npos.
  std::size_t mate_of_left(std::size_t l) const { return match_l_[l]; }
  /// Left mate of r, or npos.
  std::size_t mate_of_right(std::size_t r) const { return match_r_[r]; }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  bool try_augment(std::size_t l, std::vector<char>& visited);

  const Bipartite& g_;
  std::vector<std::size_t> match_l_;
  std::vector<std::size_t> match_r_;
  std::size_t matched_ = 0;
};

}  // namespace gapsched

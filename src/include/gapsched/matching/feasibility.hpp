#pragma once
// Instance-level feasibility oracle and the Lemma 3 schedule extender.
//
// A schedule of unit jobs is exactly a matching in the bipartite graph
// (jobs) x (time slots), where each candidate time contributes p slot copies
// (one per processor). Feasibility of the whole instance, feasibility with a
// forbidden time region (the FHKN greedy's candidate-gap test), and the
// Lemma 3 "extend a partial schedule by augmenting paths, adding at most one
// new busy time unit per added job" all reduce to matching questions here.

#include <optional>

#include "gapsched/core/candidate_times.hpp"
#include "gapsched/core/schedule.hpp"
#include "gapsched/matching/bipartite.hpp"
#include "gapsched/matching/hopcroft_karp.hpp"

namespace gapsched {

/// The right-hand vertex space of the job/slot graph: sorted candidate times,
/// each replicated `copies` (= processors) times. Right vertex r corresponds
/// to time slot_times[r / copies], processor copy r % copies.
struct SlotSpace {
  std::vector<Time> slot_times;
  int copies = 1;

  std::size_t n_right() const { return slot_times.size() * copies; }
  Time time_of(std::size_t r) const {
    return slot_times[r / static_cast<std::size_t>(copies)];
  }
  int copy_of(std::size_t r) const {
    return static_cast<int>(r % static_cast<std::size_t>(copies));
  }
};

/// Builds the slot space from the instance's candidate times (Prop 2.1
/// closure for one-interval jobs; all allowed times otherwise). Restricting
/// to candidate times preserves feasibility: any non-idling (EDF) schedule
/// runs every job within distance n of a release date.
SlotSpace make_slot_space(const Instance& inst);

/// Job -> slot adjacency. Slots whose time lies in `forbidden` are omitted.
Bipartite build_job_slot_graph(const Instance& inst, const SlotSpace& slots,
                               const TimeSet* forbidden = nullptr);

/// True iff every job can be scheduled (possibly avoiding `forbidden`).
bool is_feasible(const Instance& inst);
bool is_feasible_excluding(const Instance& inst, const TimeSet& forbidden);

/// Some complete feasible schedule (no objective), or nullopt if infeasible.
/// Processor indices are the slot copies (already collision-free).
std::optional<Schedule> any_feasible_schedule(const Instance& inst);

/// Lemma 3: completes `partial` to a schedule of all jobs by augmenting
/// paths. Previously scheduled jobs stay scheduled and the set of *used time
/// slots* grows by exactly one slot per newly scheduled job, so the span
/// count grows by at most (n - n') and transitions by at most the same.
/// Returns nullopt if the full instance is infeasible or if `partial` uses a
/// time outside the slot space.
std::optional<Schedule> extend_schedule(const Instance& inst,
                                        const Schedule& partial);

}  // namespace gapsched

#pragma once
// Baptiste's problem [Bap06]: exact single-processor gap scheduling for
// one-interval unit jobs — the baseline the paper builds Theorem 1 on.
//
// Historically this module forwarded to the exponential Theorem 1 window DP
// restricted to p = 1. It now runs the polynomial Baptiste-Chrobak-Durr
// algorithm (src/bcd, [BCD07] arXiv:0908.3505) — same answers wherever both
// are in range, but live at n in the thousands — and keeps the interface
// downstream users expect (spans / interior gaps rather than multiprocessor
// transitions). The registry's `baptiste` family is an alias of
// `bcd_poly_gap` through this entry point.

#include <cstdint>
#include <string>

#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct BaptisteResult {
  bool feasible = false;
  /// Number of spans (maximal busy stretches) = transitions for p = 1.
  std::int64_t spans = 0;
  /// Interior gaps between spans: spans - 1 (0 when infeasible/empty).
  std::int64_t gaps = 0;
  Schedule schedule;
  /// Non-empty when the underlying DP refused the instance (shape guard or
  /// state/entry budget valve); `feasible` is then meaningless.
  std::string error;
};

/// Exact single-processor gap scheduling. Requires a one-interval instance;
/// `inst.processors` is ignored (treated as 1).
BaptisteResult solve_baptiste(const Instance& inst);

}  // namespace gapsched

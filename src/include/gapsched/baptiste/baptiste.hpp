#pragma once
// Baptiste's algorithm [Bap06]: exact single-processor gap scheduling for
// one-interval unit jobs — the baseline the paper builds Theorem 1 on.
//
// The paper's multiprocessor DP instantiated at p = 1 *is* Baptiste's
// dynamic program (the q / l1 / l2 indices collapse to {0, 1}); this module
// is the single-processor entry point with the interface downstream users
// expect (spans / interior gaps rather than multiprocessor transitions).

#include <cstdint>
#include <string>

#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct BaptisteResult {
  bool feasible = false;
  /// Number of spans (maximal busy stretches) = transitions for p = 1.
  std::int64_t spans = 0;
  /// Interior gaps between spans: spans - 1 (0 when infeasible/empty).
  std::int64_t gaps = 0;
  Schedule schedule;
  /// Non-empty when the underlying DP rejected the instance over its
  /// packed-state key limits; `feasible` is then meaningless.
  std::string error;
};

/// Exact single-processor gap scheduling. Requires a one-interval instance;
/// `inst.processors` is ignored (treated as 1).
BaptisteResult solve_baptiste(const Instance& inst);

}  // namespace gapsched

#pragma once
// Exact single-processor multi-interval gap scheduling by iterative
// deepening over the span count.
//
// A schedule with T transitions (= T spans on one processor) is exactly a
// choice of T pairwise non-adjacent time intervals, of total length n,
// whose time units can be perfectly matched to distinct jobs. The solver
// deepens T = 1, 2, ... and searches interval placements left to right,
// pruning with (a) span-capacity bounds and (b) incremental matching
// feasibility (fillability is monotone: extending an unfillable prefix
// never helps).
//
// Still worst-case exponential (the problem is set-cover hard, Section 5),
// but far stronger than the subset-DP brute force in practice: handles
// n ~ 16-24 on the bench families where the brute force stops at ~12. Used
// as the mid-size exact baseline in tests and experiments.

#include <cstdint>

#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct SpanSearchResult {
  bool feasible = false;
  /// Minimum number of transitions (= spans).
  std::int64_t transitions = 0;
  Schedule schedule;
  /// Search nodes expanded (diagnostic).
  std::size_t nodes = 0;
};

/// Exact minimum-transition schedule. Treats the instance as
/// single-processor.
SpanSearchResult span_search_min_transitions(const Instance& inst);

}  // namespace gapsched

#pragma once
// Exact reference solver for (multiprocessor, multi-interval) power
// minimization with transition cost alpha, independent of the Theorem 2 DP.
//
// Same layered subset DP as brute_force.hpp, with the state extended by the
// active-processor count at the previous candidate time. Between candidate
// times a processor either stays active for the whole idle stretch or
// sleeps (any other profile is dominated), so the inter-layer cost has the
// closed form: each of the m_new active processors at the next time pays
// min(idle_len, alpha) if it can be matched to one of the m_prev previously
// active processors and alpha otherwise, plus 1 active time unit.

#include <optional>

#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct ExactPowerResult {
  bool feasible = false;
  /// Minimum total power: active time units + alpha * wake-ups.
  double power = 0.0;
  /// An optimal schedule (staircase form). Active-state bridging is implied
  /// by profile().optimal_power(alpha) of this schedule.
  Schedule schedule;
};

/// Solves power minimization exactly by subset DP. Requires inst.n() <= 20
/// and alpha >= 0.
ExactPowerResult brute_force_min_power(const Instance& inst, double alpha);

}  // namespace gapsched

#pragma once
// Exact reference solver for (multiprocessor, multi-interval) gap scheduling,
// independent of the paper's Theorem 1 dynamic program.
//
// Layered subset DP over the candidate times Theta: process times left to
// right; state = (set of jobs already scheduled, occupancy at the previous
// time). Choosing the set S of jobs to run at time t costs
// (|S| - prev)^+ transitions when t is adjacent to the previous candidate
// time and |S| otherwise (waking from a fully idle unit). Exponential in n
// (O(3^n |Theta| p)); intended as ground truth for n <= ~14 in tests and the
// exactness experiment (T1), not as a production solver.

#include <cstdint>
#include <optional>

#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct ExactGapResult {
  bool feasible = false;
  /// Minimum number of sleep->active transitions (see core/profile.hpp for
  /// the objective convention). 0 when infeasible.
  std::int64_t transitions = 0;
  /// An optimal schedule in staircase processor form (empty when infeasible).
  Schedule schedule;
};

/// Solves gap scheduling exactly by subset DP. Requires inst.n() <= 20.
ExactGapResult brute_force_min_transitions(const Instance& inst);

}  // namespace gapsched

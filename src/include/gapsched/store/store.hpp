#pragma once
// gapsched::store::DiskStore — the persistent, shared second tier of the
// content-addressed solve cache (engine/cache.hpp).
//
// One append-only file holds digest-keyed records of canonical cache
// entries, shared by CLI sessions, every server shard, and successive
// restarts. The engine treats everything read back as UNTRUSTED input: a
// record must survive framing + checksum verification here AND an
// independent oracle re-audit in the pipeline before it may serve a
// request, so a flipped bit, a torn write, or a stale format degrades to a
// cache miss (and a fresh solve) — never a wrong answer.
//
// File layout (all integers little-endian, fixed width):
//
//   file   := header record*
//   header := magic[8] = "gapstore"     — identifies the file type
//             version  : u32            — kFormatVersion; mismatch fails open
//             reserved : u32            — zero
//   record := rmagic      : u32         — kRecordMagic, per-record resync
//             key_len     : u32
//             payload_len : u32
//             reserved    : u32         — zero
//             digest      : u64         — the cache key's content digest
//             cost_ms     : f64         — recorded solve wall time (the
//                                         admission/compaction weight)
//             key[key_len]              — full canonical key text; compared
//                                         on load so digest collisions can
//                                         never alias two solves
//             payload[payload_len]      — io/json.hpp result document
//             checksum    : u64         — FNV-1a over every preceding byte
//                                         of the record
//
// Crash safety: append = write the whole record at EOF, fsync, then
// publish it in the in-memory index — a reader never sees a record whose
// bytes are not durable. On open (and before every append) the tail is
// re-scanned: a record whose bytes run past EOF is a torn write and is
// truncated away; a structurally complete record with a bad checksum is
// skipped (later records stay reachable — the framing after it still
// lines up); a broken record magic means the framing itself is lost, so
// the rest of the file is dropped as unrecoverable. Every rejected or
// truncated record is counted in StoreStats.
//
// Sharing: appends hold an exclusive flock(2) on the file for the whole
// write+fsync, so concurrent writers — other processes, other DiskStore
// handles, server shards — never interleave record bytes. flock is
// per-open-file-description, so two handles in one process contend
// exactly like two processes do. Loads of already-indexed records need no
// file lock (the file is append-only and compaction replaces it via
// rename, keeping this handle's inode alive); an index miss triggers a
// shared-lock tail scan to pick up records other writers published.
//
// Budget: with max_bytes set, an append that pushes the file over the
// budget compacts it — the surviving records are the most expensive ones
// by recorded solve cost (a cached 10 ms DP answer is worth keeping; a
// 10 us one is not), rewritten through a temp file + rename so a crash
// mid-compaction leaves either the old file or the new one, never a
// hybrid. Writers on the replaced inode notice (device/inode check under
// the append lock) and reopen.
//
// Versioning/compat: kFormatVersion is bumped on any layout change; open()
// refuses other versions (and foreign magic) with an error, and the engine
// then runs memory-only — old stores are abandoned cold, never migrated or
// half-read.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gapsched::store {

inline constexpr char kFileMagic[8] = {'g', 'a', 'p', 's', 't', 'o', 'r', 'e'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kFileHeaderBytes = 16;
inline constexpr std::uint32_t kRecordMagic = 0x47535243u;  // "CRSG" LE
inline constexpr std::size_t kRecordHeaderBytes = 32;
inline constexpr std::size_t kRecordChecksumBytes = 8;
/// Per-field byte cap; a length field beyond this is corruption, not data.
inline constexpr std::size_t kMaxFieldBytes = std::size_t{1} << 30;

/// Total on-disk size of a record with these field lengths.
constexpr std::size_t record_bytes(std::size_t key_len,
                                   std::size_t payload_len) {
  return kRecordHeaderBytes + key_len + payload_len + kRecordChecksumBytes;
}

struct StoreOptions {
  /// File size budget in bytes; appends beyond it trigger compaction
  /// (keep-most-expensive). 0 = unbounded.
  std::size_t max_bytes = 0;
  /// Fault injection for crash tests: when > 0, the next append writes only
  /// the first N bytes of the record, skips the fsync, and poisons the
  /// handle (as a crashed process would leave it). 0 = off.
  std::size_t fail_append_after = 0;
};

/// Cumulative counters for one DiskStore handle, plus what its scans saw.
struct StoreStats {
  std::size_t entries = 0;          // loadable records currently indexed
  std::size_t file_bytes = 0;       // current file size
  std::size_t appends = 0;          // records durably appended by this handle
  std::size_t loads = 0;            // successful record loads
  std::size_t rejected_records = 0;  // checksum/framing/identity failures
  std::size_t truncated_bytes = 0;   // torn-tail bytes discarded by recovery
  std::size_t compactions = 0;
  std::size_t dropped_records = 0;  // records dropped by compaction
};

/// Index entry; exposed (records()) so tests and tools can locate records.
struct RecordInfo {
  std::uint64_t digest = 0;
  std::uint64_t offset = 0;  // file offset of the record's first byte
  std::size_t bytes = 0;     // total record length on disk
  double cost_ms = 0.0;
};

class DiskStore {
 public:
  /// Opens (creating if absent) the store at `path`, recovers any torn
  /// tail, and indexes every intact record. Returns nullptr with *error
  /// set on I/O failure, foreign magic, or a format version mismatch —
  /// callers are expected to fall back to a memory-only cache.
  static std::unique_ptr<DiskStore> open(const std::string& path,
                                         StoreOptions options,
                                         std::string* error);

  ~DiskStore();
  DiskStore(const DiskStore&) = delete;
  DiskStore& operator=(const DiskStore&) = delete;

  const std::string& path() const { return path_; }

  /// Number of loadable records in the index.
  std::size_t size() const;

  /// Index-only probe (no tail rescan, no I/O).
  bool contains(std::uint64_t digest) const;

  /// Loads the payload stored under `digest`, re-verifying the record's
  /// checksum and comparing the stored key text against `key_text` byte
  /// for byte. Any mismatch quarantines the record (counted in
  /// rejected_records) and returns nullopt. An index miss first rescans
  /// the tail under a shared lock, so records appended by other processes
  /// are visible without reopening.
  std::optional<std::string> load(std::uint64_t digest,
                                  std::string_view key_text);

  /// Durably appends one record (exclusive flock across write + fsync).
  /// A digest already in the index is skipped (idempotent; first writer
  /// wins). False with *error set on I/O failure or a poisoned handle.
  bool append(std::uint64_t digest, std::string_view key_text,
              std::string_view payload, double cost_ms,
              std::string* error = nullptr);

  /// Drops a digest from this handle's index so it can never serve again
  /// (the bytes stay until compaction). Called by the cache tier when a
  /// record fails deserialization or the oracle re-audit.
  void invalidate(std::uint64_t digest);

  /// Rescans the tail for records appended by other handles/processes.
  void refresh();

  /// Forces a keep-most-expensive rewrite down to the max_bytes budget
  /// (no-op without a budget). Appends do this automatically.
  bool compact(std::string* error = nullptr);

  StoreStats stats() const;

  /// Snapshot of the index, offset-ordered (tests and tools).
  std::vector<RecordInfo> records() const;

 private:
  DiskStore(std::string path, StoreOptions options);

  bool open_locked(std::string* error);
  /// Scans records in [scan_end_, EOF). With `writable`, a torn tail is
  /// truncated away; otherwise the scan just stops before it.
  void scan_locked(bool writable);
  /// Re-syncs with the file under the append lock: reopens if the path was
  /// replaced (compaction by another handle), then scans any new tail.
  bool sync_for_append_locked(std::string* error);
  bool compact_locked(std::string* error);
  bool lock_file_locked(int op) const;

  std::string path_;
  StoreOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  bool poisoned_ = false;  // simulated crash: handle refuses further writes
  std::uint64_t scan_end_ = 0;  // file offset one past the last scanned record
  std::unordered_map<std::uint64_t, RecordInfo> index_;

  std::size_t appends_ = 0;
  std::size_t loads_ = 0;
  std::size_t rejected_records_ = 0;
  std::size_t truncated_bytes_ = 0;
  std::size_t compactions_ = 0;
  std::size_t dropped_records_ = 0;
};

}  // namespace gapsched::store

#pragma once
// Shared machinery for the Theorem 1 / Theorem 2 dynamic programs.
//
// State layout (Section 2 of the paper, notation adapted):
//   W(t1, t2, k, q, l1, l2)
// where [t1, t2] is a window of candidate times, the job set is the k
// earliest-deadline jobs (global (deadline, id) order) released in [t1, t2],
// q of the occupants of time t2 were committed by ancestor subproblems, and
// l1 / l2 are the occupancy (gap version) or active-processor count (power
// version) at t1 / t2. The window owns the boundary cost Delta(t) for every
// t in (t1, t2]; parents own the glue Delta at child seams.
//
// Scheduling times t' for the split job jk range over *core* candidate times
// (Prop 2.1 neighbourhoods); window seams t'+1 live in the +1 closure.
//
// Two memo layouts back the recursion (selected per solve, see
// dp_engine.hpp): the open-addressing MemoTable keyed on the 128-bit packed
// StateKey, and a dense direct-indexed ArenaMemo over the state box.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "gapsched/core/candidate_times.hpp"
#include "gapsched/core/instance.hpp"
#include "gapsched/dp/dp_stats.hpp"

namespace gapsched::dp {

/// Shared "infinite cost" sentinel for the integer-valued DPs. Kept far
/// below INT64_MAX so that a few stray additions cannot wrap, but all cost
/// additions must still go through add_sat so sums of near-sentinel values
/// clamp at the sentinel instead of drifting past it (and eventually
/// overflowing) on near-infeasible instances.
constexpr std::int64_t kInfCost = std::numeric_limits<std::int64_t>::max() / 4;

/// Saturating cost addition: any operand at or beyond the sentinel, or any
/// sum that would cross it, yields exactly kInfCost. Requires a, b >= 0
/// (the overflow test `a > kInfCost - b` is only sound for non-negative
/// operands; DP costs are counts and never go negative — asserted here so
/// a future negative-cost path fails fast instead of wrapping).
constexpr std::int64_t add_sat(std::int64_t a, std::int64_t b) {
  assert(a >= 0 && b >= 0 && "add_sat requires non-negative operands");
  return (a >= kInfCost || b >= kInfCost || a > kInfCost - b) ? kInfCost
                                                              : a + b;
}

/// Bit widths of the packed 128-bit state key (StateKey): the two window
/// indices i1/i2 get kThetaIndexBits each, and k/q/l1/l2 get kCountBits
/// each. Every capacity limit below derives from these widths, so the
/// limit text in limit_violation() cannot drift from the real key layout.
constexpr unsigned kThetaIndexBits = 20;
constexpr unsigned kCountBits = 12;

constexpr std::size_t kMaxThetaSize = std::size_t{1} << kThetaIndexBits;
constexpr std::size_t kMaxDpJobs = (std::size_t{1} << kCountBits) - 1;
constexpr int kMaxDpProcessors = (1 << kCountBits) - 1;

/// Packed 2x64-bit state key: i1 | i2 | k in the high word (20+20+12 bits)
/// and q | l1 | l2 in the low word (12+12+12 bits). Limits
/// (|theta| < 2^20, n <= 4095, p <= 4095) are enforced by
/// DpContext::limit_violation(), which every Theorem 1/2 solver checks
/// before its first pack_state call — an oversized instance would alias
/// keys and silently return wrong optima.
struct StateKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const StateKey& a, const StateKey& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const StateKey& a, const StateKey& b) {
    return !(a == b);
  }
};

inline StateKey pack_state(std::size_t i1, std::size_t i2, std::size_t k,
                           int q, int l1, int l2) {
  StateKey key;
  key.hi = (static_cast<std::uint64_t>(i1) << (kThetaIndexBits + kCountBits)) |
           (static_cast<std::uint64_t>(i2) << kCountBits) |
           static_cast<std::uint64_t>(k);
  key.lo = (static_cast<std::uint64_t>(q) << (2 * kCountBits)) |
           (static_cast<std::uint64_t>(l1) << kCountBits) |
           static_cast<std::uint64_t>(l2);
  return key;
}

/// Immutable per-solve context: deadline-sorted jobs and the candidate-time
/// axis with core flags.
struct DpContext {
  const Instance* inst = nullptr;
  /// Job indices sorted by (deadline, id); the DP's canonical job order.
  std::vector<std::size_t> by_deadline;
  /// Sorted candidate times (core + plus-one closure).
  std::vector<Time> theta;
  /// is_core[i]: theta[i] is a legal scheduling time (Prop 2.1 core).
  std::vector<char> is_core;
  /// release/deadline of by_deadline[x], flattened so the hot job-set scan
  /// reads two contiguous arrays instead of chasing Job objects.
  std::vector<Time> release_bd;
  std::vector<Time> deadline_bd;

  explicit DpContext(const Instance& instance) : inst(&instance) {
    assert(instance.is_one_interval() &&
           "the Theorem 1/2 DP requires one-interval (release/deadline) jobs");
    by_deadline.resize(instance.n());
    for (std::size_t i = 0; i < instance.n(); ++i) by_deadline[i] = i;
    std::sort(by_deadline.begin(), by_deadline.end(),
              [&](std::size_t a, std::size_t b) {
                const Time da = instance.jobs[a].deadline();
                const Time db = instance.jobs[b].deadline();
                return da != db ? da < db : a < b;
              });
    release_bd.reserve(instance.n());
    deadline_bd.reserve(instance.n());
    for (std::size_t j : by_deadline) {
      release_bd.push_back(instance.jobs[j].release());
      deadline_bd.push_back(instance.jobs[j].deadline());
    }
    theta = candidate_times(instance, /*plus_one_closure=*/true);
    const std::vector<Time> core = candidate_times(instance, false);
    is_core.assign(theta.size(), 0);
    std::size_t ci = 0;
    for (std::size_t i = 0; i < theta.size(); ++i) {
      while (ci < core.size() && core[ci] < theta[i]) ++ci;
      if (ci < core.size() && core[ci] == theta[i]) is_core[i] = 1;
    }
  }

  /// Non-empty diagnostic when the instance exceeds the StateKey bit-field
  /// capacity (|theta| < 2^20, n <= 4095, p <= 4095 — all derived from
  /// kThetaIndexBits / kCountBits). Solving past these limits silently
  /// aliases memo keys and returns wrong optima, so the Theorem 1/2
  /// solvers reject instead. The engine's prep decomposition usually
  /// shrinks components far below the limits before they bind, so a
  /// rejection means a single cluster is genuinely too big.
  std::string limit_violation() const {
    if (theta.size() >= kMaxThetaSize) {
      return "candidate-time axis has " + std::to_string(theta.size()) +
             " entries; the DP's packed state keys hold at most " +
             std::to_string(kMaxThetaSize - 1);
    }
    if (inst->n() > kMaxDpJobs) {
      return "n = " + std::to_string(inst->n()) +
             " exceeds the DP's packed-key job limit " +
             std::to_string(kMaxDpJobs);
    }
    if (inst->processors > kMaxDpProcessors) {
      return "p = " + std::to_string(inst->processors) +
             " exceeds the DP's packed-key processor limit " +
             std::to_string(kMaxDpProcessors);
    }
    return "";
  }

  std::size_t index_of(Time t) const {
    auto it = std::lower_bound(theta.begin(), theta.end(), t);
    assert(it != theta.end() && *it == t);
    return static_cast<std::size_t>(it - theta.begin());
  }

  /// The k earliest-deadline jobs released in [t1, t2] (original job ids, in
  /// deadline order). Returns fewer than k entries if not enough exist.
  std::vector<std::size_t> job_set(Time t1, Time t2, std::size_t k) const {
    std::vector<std::size_t> out;
    out.reserve(k);
    fill_job_set(t1, t2, k, out);
    return out;
  }

  /// Allocation-free job_set: fills `out` with positions into by_deadline
  /// (not original job ids) so callers can read release_bd/deadline_bd
  /// directly. The recursion reuses per-depth scratch vectors through this.
  void fill_job_positions(Time t1, Time t2, std::size_t k,
                          std::vector<std::size_t>& out) const {
    out.clear();
    for (std::size_t x = 0; x < release_bd.size(); ++x) {
      if (out.size() == k) break;
      const Time a = release_bd[x];
      if (t1 <= a && a <= t2) out.push_back(x);
    }
  }

 private:
  void fill_job_set(Time t1, Time t2, std::size_t k,
                    std::vector<std::size_t>& out) const {
    for (std::size_t x = 0; x < release_bd.size(); ++x) {
      if (out.size() == k) break;
      const Time a = release_bd[x];
      if (t1 <= a && a <= t2) out.push_back(by_deadline[x]);
    }
  }
};

/// How the optimum of a state was achieved, for schedule reconstruction.
/// Kept trivial (no default member initializers) and 12 bytes wide so the
/// arena can leave its choice plane uninitialized; always value-initialize
/// (`Choice c{};`) at construction sites.
struct Choice {
  enum class Kind : std::uint8_t {
    kBaseEmpty,   // k == 0 (the all-zero default, matching value-init)
    kBasePoint,   // t1 == t2, all k jobs there
    kAtRightEdge, // jk at t' == t2, recurse (k-1, q+1)
    kSplit,       // jk at t' < t2, left/right children
  };
  std::uint32_t tprime_idx; // index into theta (kAtRightEdge/kSplit)
  std::uint16_t right_jobs; // jobs released after t' (kSplit); < n <= 4095
  std::int16_t lprime;      // occupancy/active at t' (kSplit)
  std::int16_t ldprime;     // occupancy/active at t'+1 (kSplit)
  Kind kind;
};
static_assert(sizeof(Choice) <= 12, "Choice packing regressed");

/// Memoization table shared by the Theorem 1/2 solvers: an insert-only
/// open-addressing hash map from packed state keys to (value, Choice), i.e.
/// one probe serves both the memo hit and the later reconstruction walk.
/// Linear probing over a power-of-two slot array of plain structs keeps the
/// hot path allocation-free and cache-friendly. Serial only — the parallel
/// candidate scan requires the (lock-free) ArenaMemo below.
template <class Value>
class MemoTable {
 public:
  struct Entry {
    StateKey key;
    Value value{};
    Choice choice{};
  };

  explicit MemoTable(std::size_t expected = 0) {
    // Smallest power-of-two capacity with load factor <= 0.7 for the hint.
    // The naive `cap * 7 < expected * 10` comparison overflows `expected *
    // 10` (and then `cap * 7`) for very large hints, turning the loop into
    // an allocation bomb; keep both products inside 64 bits by dividing
    // instead, and clamp the pre-allocation — grow() covers any honest
    // hint beyond the clamp at the usual amortized cost. The floor is
    // deliberately small: component solves from the prep decomposition
    // pipeline memoize a handful of states, and zeroing a large table was
    // the dominant cost of solving a tiny cluster.
    constexpr std::size_t kMaxInitialCap = std::size_t{1} << 18;
    std::size_t cap = 64;
    while (cap < kMaxInitialCap && cap * 7 / 10 < expected) cap <<= 1;
    slots_.resize(cap);
    used_.assign(cap, 0);
  }

  std::size_t size() const { return size_; }

  /// Linear-probe steps beyond the home slot, summed over all find()s —
  /// the collision cost the dense arena layout eliminates.
  std::uint64_t probe_steps() const { return probe_steps_; }

  /// Entry for `key`, or nullptr. The pointer is invalidated by insert().
  const Entry* find(const StateKey& key) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
      if (!used_[i]) return nullptr;
      if (slots_[i].key == key) return &slots_[i];
      ++probe_steps_;
    }
  }

  /// Inserts a new entry; `key` must not be present.
  void insert(const StateKey& key, const Value& value, const Choice& choice) {
    if ((size_ + 1) * 10 > slots_.size() * 7) grow();
    place(key, value, choice);
    ++size_;
  }

 private:
  /// splitmix64 finalizer over a fold of both words. pack_state keys share
  /// long runs of equal bits within one solve; full-avalanche mixing
  /// spreads them across the table so probe chains stay short.
  static std::uint64_t mix(const StateKey& key) {
    std::uint64_t x = key.lo ^ (key.hi * 0x9e3779b97f4a7c15ull);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void place(const StateKey& key, const Value& value, const Choice& choice) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (used_[i]) i = (i + 1) & mask;
    used_[i] = 1;
    slots_[i] = Entry{key, value, choice};
  }

  void grow() {
    std::vector<Entry> old_slots = std::move(slots_);
    std::vector<char> old_used = std::move(used_);
    slots_.assign(old_slots.size() * 2, Entry{});
    used_.assign(old_slots.size() * 2, 0);
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_used[i]) {
        place(old_slots[i].key, old_slots[i].value, old_slots[i].choice);
      }
    }
  }

  std::vector<Entry> slots_;
  std::vector<char> used_;
  std::size_t size_ = 0;
  mutable std::uint64_t probe_steps_ = 0;
};

/// Dense direct-indexed memo over the state box
///   [i_base, i_base + extent) ^ 2  x  [0, k_max]  x  [0, q_max]
///   x  [0, l_max] ^ 2
/// chosen when the box volume fits DpOptions::arena_max_entries. A lookup
/// is one mixed-radix index computation and one byte load — no hashing, no
/// probing, no growth.
///
/// Concurrency: safe for the parallel candidate scan. A per-entry byte
/// flag moves 0 (absent) -> 1 (claimed, via CAS) -> 2 (published, release
/// store); readers acquire-load the flag and treat anything below 2 as
/// absent, recomputing instead of waiting. Both DPs compute a pure
/// function of the state, so a lost claim race only duplicates work and
/// every published value is identical — answers stay deterministic.
template <class Value>
class ArenaMemo {
 public:
  ArenaMemo(std::size_t i_base, std::size_t extent, std::size_t k_max,
            int q_max, int l_max)
      : i_base_(i_base),
        d_q_(static_cast<std::uint64_t>(q_max) + 1),
        d_l_(static_cast<std::uint64_t>(l_max) + 1),
        stride_k_(d_q_ * d_l_ * d_l_),
        stride_i2_(stride_k_ * (static_cast<std::uint64_t>(k_max) + 1)),
        stride_i1_(stride_i2_ * extent),
        volume_(stride_i1_ * extent),
        flags_(new std::atomic<std::uint8_t>[volume_]()),
        values_(new Value[volume_]),
        choices_(new Choice[volume_]) {}

  std::uint64_t volume() const { return volume_; }
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  bool find(std::size_t i1, std::size_t i2, std::size_t k, int q, int l1,
            int l2, Value* value) const {
    const std::uint64_t at = index(i1, i2, k, q, l1, l2);
    if (flags_[at].load(std::memory_order_acquire) != 2) return false;
    *value = values_[at];
    return true;
  }

  void insert(std::size_t i1, std::size_t i2, std::size_t k, int q, int l1,
              int l2, const Value& value, const Choice& choice) {
    const std::uint64_t at = index(i1, i2, k, q, l1, l2);
    std::uint8_t expected = 0;
    if (!flags_[at].compare_exchange_strong(expected, 1,
                                            std::memory_order_acq_rel)) {
      // Another worker claimed this state; its (identical) value wins.
      return;
    }
    values_[at] = value;
    choices_[at] = choice;
    flags_[at].store(2, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Choice of a published state (reconstruction walk; serial, after the
  /// solve has completed).
  const Choice& choice_at(std::size_t i1, std::size_t i2, std::size_t k,
                          int q, int l1, int l2) const {
    const std::uint64_t at = index(i1, i2, k, q, l1, l2);
    assert(flags_[at].load(std::memory_order_acquire) == 2);
    return choices_[at];
  }

 private:
  std::uint64_t index(std::size_t i1, std::size_t i2, std::size_t k, int q,
                      int l1, int l2) const {
    assert(i1 >= i_base_ && i2 >= i_base_);
    const std::uint64_t at =
        (i1 - i_base_) * stride_i1_ + (i2 - i_base_) * stride_i2_ +
        k * stride_k_ +
        (static_cast<std::uint64_t>(q) * d_l_ +
         static_cast<std::uint64_t>(l1)) *
            d_l_ +
        static_cast<std::uint64_t>(l2);
    assert(at < volume_);
    return at;
  }

  std::size_t i_base_;
  std::uint64_t d_q_, d_l_;
  std::uint64_t stride_k_, stride_i2_, stride_i1_;
  std::uint64_t volume_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> flags_;
  std::unique_ptr<Value[]> values_;
  std::unique_ptr<Choice[]> choices_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace gapsched::dp

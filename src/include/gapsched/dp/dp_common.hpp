#pragma once
// Shared machinery for the Theorem 1 / Theorem 2 dynamic programs.
//
// State layout (Section 2 of the paper, notation adapted):
//   W(t1, t2, k, q, l1, l2)
// where [t1, t2] is a window of candidate times, the job set is the k
// earliest-deadline jobs (global (deadline, id) order) released in [t1, t2],
// q of the occupants of time t2 were committed by ancestor subproblems, and
// l1 / l2 are the occupancy (gap version) or active-processor count (power
// version) at t1 / t2. The window owns the boundary cost Delta(t) for every
// t in (t1, t2]; parents own the glue Delta at child seams.
//
// Scheduling times t' for the split job jk range over *core* candidate times
// (Prop 2.1 neighbourhoods); window seams t'+1 live in the +1 closure.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gapsched/core/candidate_times.hpp"
#include "gapsched/core/instance.hpp"

namespace gapsched::dp {

/// Shared "infinite cost" sentinel for the integer-valued DPs. Kept far
/// below INT64_MAX so that a few stray additions cannot wrap, but all cost
/// additions must still go through add_sat so sums of near-sentinel values
/// clamp at the sentinel instead of drifting past it (and eventually
/// overflowing) on near-infeasible instances.
constexpr std::int64_t kInfCost = std::numeric_limits<std::int64_t>::max() / 4;

/// Saturating cost addition: any operand at or beyond the sentinel, or any
/// sum that would cross it, yields exactly kInfCost. Requires a, b >= 0
/// (the overflow test `a > kInfCost - b` is only sound for non-negative
/// operands; DP costs are counts and never go negative — asserted here so
/// a future negative-cost path fails fast instead of wrapping).
constexpr std::int64_t add_sat(std::int64_t a, std::int64_t b) {
  assert(a >= 0 && b >= 0 && "add_sat requires non-negative operands");
  return (a >= kInfCost || b >= kInfCost || a > kInfCost - b) ? kInfCost
                                                              : a + b;
}

/// Capacity limits of the packed 64-bit state key (pack_state): window
/// indices i1/i2 get 16 bits each, and k/q/l1/l2 get 8 bits each.
constexpr std::size_t kMaxThetaSize = std::size_t{1} << 16;
constexpr std::size_t kMaxDpJobs = 255;
constexpr int kMaxDpProcessors = 255;

/// Immutable per-solve context: deadline-sorted jobs and the candidate-time
/// axis with core flags.
struct DpContext {
  const Instance* inst = nullptr;
  /// Job indices sorted by (deadline, id); the DP's canonical job order.
  std::vector<std::size_t> by_deadline;
  /// Sorted candidate times (core + plus-one closure).
  std::vector<Time> theta;
  /// is_core[i]: theta[i] is a legal scheduling time (Prop 2.1 core).
  std::vector<char> is_core;

  explicit DpContext(const Instance& instance) : inst(&instance) {
    assert(instance.is_one_interval() &&
           "the Theorem 1/2 DP requires one-interval (release/deadline) jobs");
    by_deadline.resize(instance.n());
    for (std::size_t i = 0; i < instance.n(); ++i) by_deadline[i] = i;
    std::sort(by_deadline.begin(), by_deadline.end(),
              [&](std::size_t a, std::size_t b) {
                const Time da = instance.jobs[a].deadline();
                const Time db = instance.jobs[b].deadline();
                return da != db ? da < db : a < b;
              });
    theta = candidate_times(instance, /*plus_one_closure=*/true);
    const std::vector<Time> core = candidate_times(instance, false);
    is_core.assign(theta.size(), 0);
    std::size_t ci = 0;
    for (std::size_t i = 0; i < theta.size(); ++i) {
      while (ci < core.size() && core[ci] < theta[i]) ++ci;
      if (ci < core.size() && core[ci] == theta[i]) is_core[i] = 1;
    }
  }

  /// Non-empty diagnostic when the instance exceeds the pack_state key
  /// capacity (|theta| < 2^16, n <= 255, p <= 255). Solving past these
  /// limits silently aliases memo keys and returns wrong optima, so the
  /// Theorem 1/2 solvers reject instead. The engine's prep decomposition
  /// usually shrinks components far below the limits before they bind, so
  /// a rejection means a single cluster is genuinely too big.
  std::string limit_violation() const {
    if (theta.size() >= kMaxThetaSize) {
      return "candidate-time axis has " + std::to_string(theta.size()) +
             " entries; the DP's packed state keys hold at most " +
             std::to_string(kMaxThetaSize - 1);
    }
    if (inst->n() > kMaxDpJobs) {
      return "n = " + std::to_string(inst->n()) +
             " exceeds the DP's packed-key job limit " +
             std::to_string(kMaxDpJobs);
    }
    if (inst->processors > kMaxDpProcessors) {
      return "p = " + std::to_string(inst->processors) +
             " exceeds the DP's packed-key processor limit " +
             std::to_string(kMaxDpProcessors);
    }
    return "";
  }

  std::size_t index_of(Time t) const {
    auto it = std::lower_bound(theta.begin(), theta.end(), t);
    assert(it != theta.end() && *it == t);
    return static_cast<std::size_t>(it - theta.begin());
  }

  /// The k earliest-deadline jobs released in [t1, t2] (original job ids, in
  /// deadline order). Returns fewer than k entries if not enough exist.
  std::vector<std::size_t> job_set(Time t1, Time t2, std::size_t k) const {
    std::vector<std::size_t> out;
    out.reserve(k);
    for (std::size_t j : by_deadline) {
      if (out.size() == k) break;
      const Time a = inst->jobs[j].release();
      if (t1 <= a && a <= t2) out.push_back(j);
    }
    return out;
  }
};

/// Packed 64-bit state key. Limits: |theta| < 2^16, n <= 255, p <= 255 —
/// enforced by DpContext::limit_violation(), which every Theorem 1/2 solver
/// checks before its first pack_state call (an oversized instance would
/// otherwise alias keys and silently return wrong optima).
inline std::uint64_t pack_state(std::size_t i1, std::size_t i2, std::size_t k,
                                int q, int l1, int l2) {
  return (static_cast<std::uint64_t>(i1) << 48) |
         (static_cast<std::uint64_t>(i2) << 32) |
         (static_cast<std::uint64_t>(k) << 24) |
         (static_cast<std::uint64_t>(q) << 16) |
         (static_cast<std::uint64_t>(l1) << 8) |
         static_cast<std::uint64_t>(l2);
}

/// How the optimum of a state was achieved, for schedule reconstruction.
struct Choice {
  enum class Kind : std::uint8_t {
    kBasePoint,   // t1 == t2, all k jobs there
    kBaseEmpty,   // k == 0
    kAtRightEdge, // jk at t' == t2, recurse (k-1, q+1)
    kSplit,       // jk at t' < t2, left/right children
  };
  Kind kind = Kind::kBaseEmpty;
  std::size_t tprime_idx = 0;  // index into theta (kAtRightEdge/kSplit)
  std::size_t right_jobs = 0;  // i = jobs released after t' (kSplit)
  int lprime = 0;              // occupancy/active at t' (kSplit)
  int ldprime = 0;             // occupancy/active at t'+1 (kSplit)
};

/// Memoization table shared by the Theorem 1/2 solvers: an insert-only
/// open-addressing hash map from packed state keys to (value, Choice), i.e.
/// one probe serves both the memo hit and the later reconstruction walk
/// (the previous layout paid two std::unordered_map node lookups per state).
/// Linear probing over a power-of-two slot array of plain structs keeps the
/// hot path allocation-free and cache-friendly.
template <class Value>
class MemoTable {
 public:
  struct Entry {
    std::uint64_t key = 0;
    Value value{};
    Choice choice;
  };

  explicit MemoTable(std::size_t expected = 0) {
    // Smallest power-of-two capacity with load factor <= 0.7 for the hint.
    // The naive `cap * 7 < expected * 10` comparison overflows `expected *
    // 10` (and then `cap * 7`) for very large hints, turning the loop into
    // an allocation bomb; keep both products inside 64 bits by dividing
    // instead, and clamp the pre-allocation — grow() covers any honest
    // hint beyond the clamp at the usual amortized cost. The floor is
    // deliberately small: component solves from the prep decomposition
    // pipeline memoize a handful of states, and zeroing a large table was
    // the dominant cost of solving a tiny cluster.
    constexpr std::size_t kMaxInitialCap = std::size_t{1} << 18;
    std::size_t cap = 64;
    while (cap < kMaxInitialCap && cap * 7 / 10 < expected) cap <<= 1;
    slots_.resize(cap);
    used_.assign(cap, 0);
  }

  std::size_t size() const { return size_; }

  /// Entry for `key`, or nullptr. The pointer is invalidated by insert().
  const Entry* find(std::uint64_t key) const {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
      if (!used_[i]) return nullptr;
      if (slots_[i].key == key) return &slots_[i];
    }
  }

  /// Inserts a new entry; `key` must not be present.
  void insert(std::uint64_t key, const Value& value, const Choice& choice) {
    if ((size_ + 1) * 10 > slots_.size() * 7) grow();
    place(key, value, choice);
    ++size_;
  }

 private:
  /// splitmix64 finalizer. pack_state keys share long runs of equal high
  /// bits within one solve; full-avalanche mixing spreads them across the
  /// table so probe chains stay short.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void place(std::uint64_t key, const Value& value, const Choice& choice) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (used_[i]) i = (i + 1) & mask;
    used_[i] = 1;
    slots_[i] = Entry{key, value, choice};
  }

  void grow() {
    std::vector<Entry> old_slots = std::move(slots_);
    std::vector<char> old_used = std::move(used_);
    slots_.assign(old_slots.size() * 2, Entry{});
    used_.assign(old_slots.size() * 2, 0);
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_used[i]) {
        place(old_slots[i].key, old_slots[i].value, old_slots[i].choice);
      }
    }
  }

  std::vector<Entry> slots_;
  std::vector<char> used_;
  std::size_t size_ = 0;
};

}  // namespace gapsched::dp

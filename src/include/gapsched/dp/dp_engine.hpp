#pragma once
// Unified execution core of the Theorem 1 (gap) and Theorem 2 (power)
// dynamic programs. The two objectives share one recursion shape — the
// W(t1, t2, k, q, l1, l2) window decomposition of dp_common.hpp — and
// differ only in base-case feasibility, glue cost, and value arithmetic,
// captured here as a Policy. The engine adds four coordinated
// optimisations over the per-objective solvers it replaced:
//
//  1. Memo layout selection (run_dp): a dense direct-indexed ArenaMemo
//     when the state box [i_min, i_max]^2 x [0,n] x [0,q_max] x [0,p]^2
//     fits DpOptions::arena_max_entries, else the open-addressing
//     MemoTable. Which layout ran, and its probe/volume statistics, are
//     reported through MemoStats.
//
//  2. Candidate-axis pruning (DpOptions::prune). Every rule is a
//     dominance or infeasibility argument, so pruned and unpruned solves
//     return identical values *and* identical reconstruction choices:
//       - capacity: a split at t' is skipped when the left window cannot
//         seat left_jobs + 1 unit jobs ((t'-t1+1) * p slots) or the right
//         window cannot seat right_jobs + q — a necessary condition for
//         any feasible child, both objectives;
//       - occupancy caps (gap only, where l counts *jobs*): occupancy at
//         t1 can only come from jobs released exactly at t1, occupancy at
//         the seam t'+1 only from jobs released exactly there (plus the q
//         ancestors when the seam is t2), and occupancy at t' from jobs
//         whose window covers t' (plus jk). States and (l', l'') branches
//         above these counts are infeasible by counting, value inf;
//       - empty-right shortcut (power only): with no right jobs, no
//         ancestors (q = 0) and no interface demand (l2 = 0), any
//         l'' > 0 pays glue >= l'' to bridge into a window that needs
//         nothing — l'' = 0 strictly dominates;
//       - root interface caps (both): active/occupied processors at t_min
//         beyond the jobs released at t_min are strictly dominated (they
//         pay their wake at the root and could instead wake later), and
//         at t_max beyond the jobs due at t_max there is nothing left to
//         bridge to. The alpha-bounded useful-gap horizon for power is
//         enforced upstream of the DP: the prep pipeline's dead-time
//         compression truncates interior idle runs to ceil(alpha) + 1
//         units, so the candidate axis never extends past the horizon
//         where min(gap, alpha) saturates.
//
//  3. Wider state packing: the 128-bit StateKey of dp_common.hpp
//     (n <= 4095, |Theta| < 2^20, p <= 4095).
//
//  4. Intra-component parallel DP (DpOptions::pool): the root candidate
//     axis is cut into contiguous chunks evaluated concurrently over the
//     shared lock-free arena, then merged in candidate order with strict
//     '<'. Every DP state's value is a pure function of the state, the
//     arena publishes each state exactly once, and the merge visits
//     chunks in the same order the serial scan visits candidates — so
//     feasibility, optimum, schedule, and the memoized state count are
//     bit-identical for every thread count (only the find/prune tallies,
//     which count racing duplicate work, may vary).

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <mutex>
#include <utility>
#include <vector>

#include "gapsched/core/schedule.hpp"
#include "gapsched/dp/dp_common.hpp"
#include "gapsched/parallel/thread_pool.hpp"

namespace gapsched::dp {

// ------------------------------------------------------------- policies --

/// Theorem 1: minimize sleep->active transitions. Values are saturating
/// int64 counts; l1/l2 are job occupancy at the window edges.
struct GapPolicy {
  using Value = std::int64_t;
  /// l counts jobs (enables the occupancy-cap pruning rules).
  static constexpr bool kOccupancy = true;

  static Value inf() { return kInfCost; }
  static bool is_inf(Value v) { return v >= kInfCost; }
  bool point_feasible(int jobs_total, int l) const { return l == jobs_total; }
  bool empty_feasible(int l1, int q, int l2) const {
    return l1 == 0 && l2 == q;
  }
  Value empty_cost(int /*l1*/, int l2, std::int64_t /*idle*/) const {
    // The q jobs at t2 wake from a fully idle previous unit.
    return l2;
  }
  Value glue(int lp, int ldp) const { return std::max(0, ldp - lp); }
  Value combine(Value left, Value g, Value right) const {
    return add_sat(add_sat(left, g), right);
  }
  /// Top level owns t_min: l1 occupants wake there.
  Value root_total(int l1, Value w) const { return add_sat(l1, w); }
};

/// Theorem 2: minimize active time + alpha * wake-ups. Values are doubles;
/// l1/l2 are active-processor counts (>= job occupancy, bridging allowed).
struct PowerPolicy {
  using Value = double;
  static constexpr bool kOccupancy = false;

  double alpha = 0.0;

  static Value inf() { return std::numeric_limits<double>::infinity(); }
  static bool is_inf(Value v) {
    return v == std::numeric_limits<double>::infinity();
  }
  bool point_feasible(int jobs_total, int l) const { return jobs_total <= l; }
  bool empty_feasible(int /*l1*/, int q, int l2) const { return q <= l2; }
  Value empty_cost(int l1, int l2, std::int64_t idle) const {
    return step_cost(l1, l2, idle);
  }
  /// Glue owns time t'+1: its active units plus its wake-ups.
  Value glue(int lp, int ldp) const {
    return ldp + alpha * std::max(0, ldp - lp);
  }
  Value combine(Value left, Value g, Value right) const {
    return left + g + right;
  }
  /// Top level owns t_min: l1 processors wake and run one unit there.
  Value root_total(int l1, Value w) const { return l1 * (1.0 + alpha) + w; }

  /// Power cost of moving from m_prev active processors to m_new active
  /// ones across `idle` fully idle time units, including m_new's active
  /// unit: carried processors pay min(idle, alpha), fresh ones pay alpha.
  double step_cost(int m_prev, int m_new, std::int64_t idle) const {
    if (m_new == 0) return 0.0;
    double cost = static_cast<double>(m_new);
    if (idle == 0) return cost + alpha * std::max(0, m_new - m_prev);
    const int carried = std::min(m_prev, m_new);
    const double carry_unit = std::min(static_cast<double>(idle), alpha);
    return cost + carried * carry_unit + alpha * (m_new - carried);
  }
};

// -------------------------------------------------------- memo adapters --

/// MemoTable behind the index-based interface the engine uses (the arena
/// consumes indices natively; the hash layout packs them into a StateKey).
template <class Value>
class HashMemo {
 public:
  static constexpr bool kConcurrent = false;

  bool find(std::size_t i1, std::size_t i2, std::size_t k, int q, int l1,
            int l2, Value* value) const {
    const auto* e = table_.find(pack_state(i1, i2, k, q, l1, l2));
    if (e == nullptr) return false;
    *value = e->value;
    return true;
  }
  void insert(std::size_t i1, std::size_t i2, std::size_t k, int q, int l1,
              int l2, const Value& value, const Choice& choice) {
    table_.insert(pack_state(i1, i2, k, q, l1, l2), value, choice);
  }
  const Choice& choice_at(std::size_t i1, std::size_t i2, std::size_t k,
                          int q, int l1, int l2) const {
    return table_.find(pack_state(i1, i2, k, q, l1, l2))->choice;
  }
  std::size_t size() const { return table_.size(); }
  std::uint64_t probe_steps() const { return table_.probe_steps(); }

 private:
  MemoTable<Value> table_;
};

/// ArenaMemo already speaks the index interface; this shim only adds the
/// trait + probe accessor so the engine can treat both layouts uniformly.
template <class Value>
class DenseMemo : public ArenaMemo<Value> {
 public:
  static constexpr bool kConcurrent = true;
  using ArenaMemo<Value>::ArenaMemo;
  std::uint64_t probe_steps() const { return 0; }
};

// ---------------------------------------------------------------- engine --

template <class Policy, class Memo>
class DpEngine {
 public:
  using Value = typename Policy::Value;

  struct Outcome {
    bool feasible = false;
    Value value{};
    Schedule schedule{0};
    std::uint64_t find_calls = 0;
    std::uint64_t pruned = 0;
    bool parallel = false;
  };

  DpEngine(const DpContext& ctx, const Policy& policy, const DpOptions& opts,
           Memo& memo)
      : ctx_(ctx),
        policy_(policy),
        opts_(opts),
        memo_(memo),
        p_(ctx.inst->processors),
        prune_(opts.prune) {}

  Outcome run(std::uint64_t box_volume) {
    Outcome out;
    const std::size_t n = ctx_.inst->n();
    const std::size_t i_min = ctx_.index_of(ctx_.inst->earliest_release());
    const std::size_t i_max = ctx_.index_of(ctx_.inst->latest_deadline());

    // Root interface caps (see the dominance note in the file header).
    int cap_l1 = p_;
    int cap_l2 = p_;
    if (prune_) {
      const Time t_min = ctx_.theta[i_min];
      const Time t_max = ctx_.theta[i_max];
      int e1 = 0, e2 = 0;
      for (std::size_t x = 0; x < n; ++x) {
        if (ctx_.release_bd[x] == t_min) ++e1;
        if (ctx_.deadline_bd[x] == t_max) ++e2;
      }
      cap_l1 = std::min(p_, e1);
      cap_l2 = std::min(p_, e2);
    }

    Worker main_worker;
    bool ran_parallel = false;
    if constexpr (Memo::kConcurrent) {
      if (opts_.pool != nullptr && opts_.pool->thread_count() > 1 &&
          n >= 2 && i_min < i_max && box_volume >= opts_.parallel_min_box) {
        run_root_parallel(main_worker, i_min, i_max, n, cap_l1, cap_l2);
        ran_parallel = true;
      }
    }

    Value best = Policy::inf();
    int best_l1 = -1, best_l2 = -1;
    for (int l1 = 0; l1 <= cap_l1; ++l1) {
      for (int l2 = 0; l2 <= cap_l2; ++l2) {
        const Value w = solve(main_worker, i_min, i_max, n, 0, l1, l2, 0);
        const Value total = policy_.root_total(l1, w);
        if (total < best) {
          best = total;
          best_l1 = l1;
          best_l2 = l2;
        }
      }
    }

    out.find_calls = main_worker.find_calls + shared_find_calls_;
    out.pruned = main_worker.pruned + shared_pruned_;
    out.parallel = ran_parallel;
    if (best_l1 < 0) {
      out.schedule = Schedule(n);
      return out;
    }
    out.feasible = true;
    out.value = best;
    Schedule sched(n);
    reconstruct(i_min, i_max, n, 0, best_l1, best_l2, sched);
    sched.assign_processors_staircase();
    out.schedule = std::move(sched);
    return out;
  }

 private:
  /// Per-thread recursion state: depth-indexed job-set scratch (a deque so
  /// references survive growth) and local diagnostics counters.
  struct Worker {
    std::deque<std::vector<std::size_t>> scratch;
    std::uint64_t find_calls = 0;
    std::uint64_t pruned = 0;

    std::vector<std::size_t>& jobs_at(std::size_t depth) {
      while (scratch.size() <= depth) scratch.emplace_back();
      return scratch[depth];
    }
  };

  Value solve(Worker& w, std::size_t i1, std::size_t i2, std::size_t k,
              int q, int l1, int l2, std::size_t depth) {
    ++w.find_calls;
    Value v{};
    if (memo_.find(i1, i2, k, q, l1, l2, &v)) return v;
    Choice choice{};
    const Value best = compute(w, i1, i2, k, q, l1, l2, depth, 0,
                               std::numeric_limits<std::size_t>::max(),
                               &choice);
    memo_.insert(i1, i2, k, q, l1, l2, best, choice);
    return best;
  }

  // W(t1, t2, k, q, l1, l2): the window recursion. [cand_begin, cand_end)
  // optionally restricts the candidate scan for jk (the parallel root
  // chunks); base cases ignore it (chunked calls are never base cases).
  Value compute(Worker& w, std::size_t i1, std::size_t i2, std::size_t k,
                int q, int l1, int l2, std::size_t depth,
                std::size_t cand_begin, std::size_t cand_end,
                Choice* out_choice) {
    const Time t1 = ctx_.theta[i1];
    const Time t2 = ctx_.theta[i2];
    Value best = Policy::inf();
    Choice choice{};

    if (i1 == i2) {
      // Point window: q ancestors + k own jobs sit at t1.
      if (l1 == l2 && l1 <= p_ &&
          policy_.point_feasible(q + static_cast<int>(k), l1)) {
        best = Value{};
        choice.kind = Choice::Kind::kBasePoint;
      }
    } else if (k == 0) {
      // Empty window: only the interface counts matter.
      if (policy_.empty_feasible(l1, q, l2)) {
        best = policy_.empty_cost(l1, l2, t2 - t1 - 1);
        choice.kind = Choice::Kind::kBaseEmpty;
      }
    } else {
      std::vector<std::size_t>& jobs = w.jobs_at(depth);
      ctx_.fill_job_positions(t1, t2, k, jobs);
      bool viable = jobs.size() == k;
      if (viable && Policy::kOccupancy && prune_) {
        // Occupancy quick check: occupants at t1 must be released exactly
        // at t1; occupants at t2 are the q ancestors plus jobs still alive
        // at t2. States demanding more are infeasible by counting.
        int e1 = 0, e2 = 0;
        for (std::size_t x : jobs) {
          if (ctx_.release_bd[x] == t1) ++e1;
          if (ctx_.deadline_bd[x] >= t2) ++e2;
        }
        if (l1 > e1 || l2 > q + e2) {
          ++w.pruned;
          viable = false;
        }
      }
      if (viable) {
        const std::size_t jk_pos = jobs.back();
        const Time lo = std::max(t1, ctx_.release_bd[jk_pos]);
        const Time hi = std::min(t2, ctx_.deadline_bd[jk_pos]);
        auto it = std::lower_bound(ctx_.theta.begin(), ctx_.theta.end(), lo);
        std::size_t first = static_cast<std::size_t>(it - ctx_.theta.begin());
        std::size_t last = first;
        while (last < ctx_.theta.size() && ctx_.theta[last] <= hi) ++last;
        first = std::max(first, cand_begin);
        last = std::min(last, cand_end);

        for (std::size_t idx = first; idx < last; ++idx) {
          if (!ctx_.is_core[idx]) continue;
          const Time tp = ctx_.theta[idx];
          if (tp == t2) {
            // jk takes one of the t2 slots; same window, one fewer job.
            if (l2 >= q + 1) {
              const Value v = solve(w, i1, i2, k - 1, q + 1, l1, l2,
                                    depth + 1);
              if (v < best) {
                best = v;
                choice = Choice{};
                choice.kind = Choice::Kind::kAtRightEdge;
                choice.tprime_idx = static_cast<std::uint32_t>(idx);
              }
            }
            continue;
          }
          const std::size_t ridx = idx + 1;
          // The +1 closure guarantees tp+1 is the next candidate time.
          if (ridx >= ctx_.theta.size() || ctx_.theta[ridx] != tp + 1) {
            continue;
          }
          // Split: jobs released after tp go right; the rest (minus jk,
          // which sits at tp) go left with q' = 1 encoding jk's slot. One
          // pass gathers the split count and the occupancy-cap tallies.
          int right_jobs = 0, left_at_tp = 0, right_at_seam = 0;
          for (std::size_t x = 0; x + 1 < k; ++x) {
            const std::size_t pos = jobs[x];
            const Time r = ctx_.release_bd[pos];
            if (r > tp) {
              ++right_jobs;
              if (r == tp + 1) ++right_at_seam;
            } else if (ctx_.deadline_bd[pos] >= tp) {
              ++left_at_tp;
            }
          }
          const std::size_t left_jobs =
              k - 1 - static_cast<std::size_t>(right_jobs);
          if (prune_) {
            // Capacity: every feasible child seats its jobs in its window.
            if (static_cast<std::int64_t>(left_jobs) + 1 >
                    (tp - t1 + 1) * static_cast<std::int64_t>(p_) ||
                static_cast<std::int64_t>(right_jobs) + q >
                    (t2 - tp) * static_cast<std::int64_t>(p_)) {
              ++w.pruned;
              continue;
            }
          }
          int lp_hi = p_;
          int ldp_hi = p_;
          if (prune_) {
            if (Policy::kOccupancy) {
              lp_hi = std::min(p_, 1 + left_at_tp);
              ldp_hi = std::min(
                  p_, right_at_seam + (ridx == i2 ? q : 0));
            } else if (right_jobs == 0 && q == 0 && l2 == 0) {
              // Empty-right shortcut (power): bridging into a window that
              // needs nothing strictly loses.
              ldp_hi = 0;
            }
          }
          for (int lp = 1; lp <= lp_hi; ++lp) {
            const Value left =
                solve(w, i1, idx, left_jobs, 1, l1, lp, depth + 1);
            if (Policy::is_inf(left)) continue;
            for (int ldp = 0; ldp <= ldp_hi; ++ldp) {
              const Value right = solve(w, ridx, i2,
                                        static_cast<std::size_t>(right_jobs),
                                        q, ldp, l2, depth + 1);
              if (Policy::is_inf(right)) continue;
              const Value total =
                  policy_.combine(left, policy_.glue(lp, ldp), right);
              if (total < best) {
                best = total;
                choice = Choice{};
                choice.kind = Choice::Kind::kSplit;
                choice.tprime_idx = static_cast<std::uint32_t>(idx);
                choice.right_jobs = static_cast<std::uint16_t>(right_jobs);
                choice.lprime = static_cast<std::int16_t>(lp);
                choice.ldprime = static_cast<std::int16_t>(ldp);
              }
            }
          }
        }
      }
    }

    *out_choice = choice;
    return best;
  }

  /// Parallel top-level scan: the root candidate axis is cut into
  /// contiguous chunks; each task evaluates every root (l1, l2) interface
  /// over its chunk against the shared arena, and the merge folds chunks
  /// in candidate order with strict '<' — reproducing exactly the serial
  /// first-improvement scan. Merged root entries are published to the
  /// memo, so the root loop in run() afterwards only re-reads them.
  void run_root_parallel(Worker& main_worker, std::size_t i_min,
                         std::size_t i_max, std::size_t n, int cap_l1,
                         int cap_l2) {
    std::vector<std::size_t>& jobs = main_worker.jobs_at(0);
    const Time t_min = ctx_.theta[i_min];
    const Time t_max = ctx_.theta[i_max];
    ctx_.fill_job_positions(t_min, t_max, n, jobs);
    if (jobs.size() != n) return;  // serial path recomputes the (inf) roots
    const std::size_t jk_pos = jobs.back();
    const Time lo = std::max(t_min, ctx_.release_bd[jk_pos]);
    const Time hi = std::min(t_max, ctx_.deadline_bd[jk_pos]);
    auto it = std::lower_bound(ctx_.theta.begin(), ctx_.theta.end(), lo);
    const std::size_t first = static_cast<std::size_t>(it - ctx_.theta.begin());
    std::size_t last = first;
    while (last < ctx_.theta.size() && ctx_.theta[last] <= hi) ++last;
    if (last <= first) return;

    const std::size_t span = last - first;
    const std::size_t chunks =
        std::min(span, opts_.pool->thread_count() * 4);
    const std::size_t combos = static_cast<std::size_t>(cap_l1 + 1) *
                               static_cast<std::size_t>(cap_l2 + 1);
    struct Cell {
      Value value;
      Choice choice;
    };
    std::vector<std::vector<Cell>> partial(chunks);
    std::mutex stats_mu;

    parallel_for(*opts_.pool, chunks, [&](std::size_t c) {
      const std::size_t base = span / chunks;
      const std::size_t rem = span % chunks;
      const std::size_t b =
          first + c * base + std::min(c, rem);
      const std::size_t e = b + base + (c < rem ? 1 : 0);
      Worker w;
      std::vector<Cell>& cells = partial[c];
      cells.reserve(combos);
      for (int l1 = 0; l1 <= cap_l1; ++l1) {
        for (int l2 = 0; l2 <= cap_l2; ++l2) {
          Cell cell;
          cell.choice = Choice{};
          cell.value = compute(w, i_min, i_max, n, 0, l1, l2, 0, b, e,
                               &cell.choice);
          cells.push_back(cell);
        }
      }
      std::lock_guard<std::mutex> lock(stats_mu);
      shared_find_calls_ += w.find_calls;
      shared_pruned_ += w.pruned;
    });

    // Deterministic merge in candidate order, then publish the true root
    // values so run()'s scan (and reconstruct) reads them as memo hits.
    std::size_t combo = 0;
    for (int l1 = 0; l1 <= cap_l1; ++l1) {
      for (int l2 = 0; l2 <= cap_l2; ++l2, ++combo) {
        Value best = Policy::inf();
        Choice choice{};
        for (std::size_t c = 0; c < chunks; ++c) {
          const Cell& cell = partial[c][combo];
          if (cell.value < best) {
            best = cell.value;
            choice = cell.choice;
          }
        }
        memo_.insert(i_min, i_max, n, 0, l1, l2, best, choice);
      }
    }
  }

  void reconstruct(std::size_t i1, std::size_t i2, std::size_t k, int q,
                   int l1, int l2, Schedule& out) {
    const Choice& c = memo_.choice_at(i1, i2, k, q, l1, l2);
    const Time t1 = ctx_.theta[i1];
    const Time t2 = ctx_.theta[i2];
    switch (c.kind) {
      case Choice::Kind::kBasePoint: {
        for (std::size_t j : ctx_.job_set(t1, t2, k)) out.place(j, t1);
        return;
      }
      case Choice::Kind::kBaseEmpty:
        return;
      case Choice::Kind::kAtRightEdge: {
        const std::vector<std::size_t> jobs = ctx_.job_set(t1, t2, k);
        out.place(jobs.back(), t2);
        reconstruct(i1, i2, k - 1, q + 1, l1, l2, out);
        return;
      }
      case Choice::Kind::kSplit: {
        const std::vector<std::size_t> jobs = ctx_.job_set(t1, t2, k);
        out.place(jobs.back(), ctx_.theta[c.tprime_idx]);
        reconstruct(i1, c.tprime_idx, k - 1 - c.right_jobs, 1, l1, c.lprime,
                    out);
        reconstruct(c.tprime_idx + 1, i2, c.right_jobs, q, c.ldprime, l2,
                    out);
        return;
      }
    }
  }

  const DpContext& ctx_;
  Policy policy_;
  const DpOptions& opts_;
  Memo& memo_;
  int p_;
  bool prune_;
  std::uint64_t shared_find_calls_ = 0;
  std::uint64_t shared_pruned_ = 0;
};

// ------------------------------------------------------------ run_dp(...) --

template <class Policy>
struct DpRun {
  bool feasible = false;
  typename Policy::Value value{};
  Schedule schedule{0};
  std::size_t states = 0;
  MemoStats memo;
};

/// Runs one DP solve end to end: estimates the state box from the instance
/// shape, selects the memo layout, executes (serially or with the parallel
/// root scan), and reports the memo diagnostics. The caller has already
/// checked ctx.limit_violation() and n > 0.
template <class Policy>
DpRun<Policy> run_dp(const DpContext& ctx, const Policy& policy,
                     const DpOptions& opts) {
  using Value = typename Policy::Value;
  const std::size_t n = ctx.inst->n();
  const int p = ctx.inst->processors;
  const std::size_t i_min = ctx.index_of(ctx.inst->earliest_release());
  const std::size_t i_max = ctx.index_of(ctx.inst->latest_deadline());
  const std::size_t extent = i_max - i_min + 1;
  // q counts ancestor commitments at t2: bounded by both the job count and
  // the processor count (incrementing q requires l2 >= q + 1 <= p).
  const int q_max = static_cast<int>(
      std::min<std::size_t>(n, static_cast<std::size_t>(p)));

  const auto mul_sat = [](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t cap = std::numeric_limits<std::uint64_t>::max();
    return (a != 0 && b > cap / a) ? cap : a * b;
  };
  std::uint64_t volume = mul_sat(extent, extent);
  volume = mul_sat(volume, n + 1);
  volume = mul_sat(volume, static_cast<std::uint64_t>(q_max) + 1);
  volume = mul_sat(volume, static_cast<std::uint64_t>(p) + 1);
  volume = mul_sat(volume, static_cast<std::uint64_t>(p) + 1);

  const bool arena = opts.layout != MemoLayout::kHash &&
                     volume <= opts.arena_max_entries;

  DpRun<Policy> out;
  out.memo.box_volume = volume;
  if (arena) {
    DenseMemo<Value> memo(i_min, extent, n, q_max, p);
    DpEngine<Policy, DenseMemo<Value>> engine(ctx, policy, opts, memo);
    auto run = engine.run(volume);
    out.feasible = run.feasible;
    out.value = run.value;
    out.schedule = std::move(run.schedule);
    out.states = memo.size();
    out.memo.layout = MemoLayout::kArena;
    out.memo.entries = memo.size();
    out.memo.find_calls = run.find_calls;
    out.memo.pruned = run.pruned;
    out.memo.parallel = run.parallel;
  } else {
    HashMemo<Value> memo;
    DpEngine<Policy, HashMemo<Value>> engine(ctx, policy, opts, memo);
    auto run = engine.run(volume);
    out.feasible = run.feasible;
    out.value = run.value;
    out.schedule = std::move(run.schedule);
    out.states = memo.size();
    out.memo.layout = MemoLayout::kHash;
    out.memo.entries = memo.size();
    out.memo.find_calls = run.find_calls;
    out.memo.probe_steps = memo.probe_steps();
    out.memo.pruned = run.pruned;
    out.memo.parallel = run.parallel;
  }
  return out;
}

}  // namespace gapsched::dp

#pragma once
// Tuning knobs and per-solve memo diagnostics of the Theorem 1/2 DP
// execution layer. Split out of dp_common.hpp so result headers
// (gap_dp.hpp / power_dp.hpp) can carry MemoStats without pulling in the
// memo-table machinery, and so DpOptions can name a ThreadPool without a
// heavyweight include.

#include <cstddef>
#include <cstdint>

namespace gapsched {

class ThreadPool;

namespace dp {

/// Memo storage strategy for one DP solve.
enum class MemoLayout : std::uint8_t {
  /// Pick per solve: dense direct-indexed arena when the state box fits the
  /// entry budget, hash table otherwise.
  kAuto,
  /// Force the open-addressing hash table (the pre-arena layout).
  kHash,
  /// Prefer the dense arena; still falls back to hash when the state box
  /// exceeds the entry budget (an unconditional arena could be an
  /// allocation bomb).
  kArena,
};

/// Execution options of one Theorem 1/2 DP solve. The defaults reproduce
/// the engine's production configuration; benches and tests override
/// individual knobs to A/B layouts, pruning, and thread counts.
struct DpOptions {
  MemoLayout layout = MemoLayout::kAuto;
  /// Candidate-axis and occupancy-cap pruning (see dp_engine.hpp for the
  /// dominance arguments). Off reproduces the unpruned enumeration.
  bool prune = true;
  /// Largest state-box volume (entries, not bytes) the arena layout may
  /// allocate; ~21 bytes per entry. Above this kAuto / kArena fall back to
  /// the hash table.
  std::size_t arena_max_entries = std::size_t{1} << 21;
  /// Worker pool for the intra-solve parallel top-level candidate scan.
  /// nullptr (the default) keeps the solve fully serial. The answer is
  /// bit-identical for every pool size — see the determinism note in
  /// dp_engine.hpp.
  ThreadPool* pool = nullptr;
  /// Minimum state-box volume before the parallel scan is worth its task
  /// overhead; solves below it stay serial even with a pool.
  std::size_t parallel_min_box = std::size_t{1} << 15;
};

/// Per-solve memo diagnostics, surfaced through Gap/PowerDpResult and the
/// engine's SolveStats.
struct MemoStats {
  /// Layout actually used (never kAuto).
  MemoLayout layout = MemoLayout::kHash;
  /// Memoized states (== the result's `states` field).
  std::size_t entries = 0;
  /// Full state-box volume the arena heuristic evaluated (0 when n == 0).
  std::uint64_t box_volume = 0;
  /// Memo lookups issued by the recursion.
  std::uint64_t find_calls = 0;
  /// Linear-probe steps beyond the home slot (hash layout only; the arena
  /// is direct-indexed and never probes).
  std::uint64_t probe_steps = 0;
  /// Candidate-axis branches skipped by the pruning rules.
  std::uint64_t pruned = 0;
  /// True when the parallel top-level scan ran.
  bool parallel = false;
};

/// Process-wide worker pool for intra-component parallel DP, created
/// lazily on first use (hardware-concurrency threads). Distinct from the
/// engine's batch/fanout pools so a DP running *on* one of those pools can
/// fan its candidate scan out without self-deadlocking on wait_idle().
ThreadPool& dp_pool();

}  // namespace dp
}  // namespace gapsched

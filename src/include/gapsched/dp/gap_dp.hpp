#pragma once
// Theorem 1: polynomial-time exact multiprocessor gap scheduling.
//
// Minimizes the number of sleep->active transitions (see core/profile.hpp
// for why transitions are the sound reading of the paper's gap count) for n
// one-interval unit jobs on p processors, via the paper's dynamic program
// over windows of candidate times with the 6-index state
// (t1, t2, k, q, l1, l2). Implemented top-down with memoization so only
// reachable states are materialized; the paper's bound is O(n^5 p^3) states
// and O(n^7 p^5) time, and the exactness experiment (T1) checks the solver
// against brute force while the scaling experiment (F1) measures the actual
// reachable-state counts. The execution layer (dp_engine.hpp) selects a
// dense arena or hash memo per solve, prunes dominated candidate branches,
// and can parallelize the top-level candidate scan — all answer-preserving.
//
// p = 1 reproduces Baptiste's algorithm [Bap06] (see baptiste/baptiste.hpp).

#include <cstdint>
#include <string>

#include "gapsched/core/schedule.hpp"
#include "gapsched/dp/dp_stats.hpp"

namespace gapsched {

struct GapDpResult {
  bool feasible = false;
  /// Minimum number of sleep->active transitions.
  std::int64_t transitions = 0;
  /// An optimal schedule, staircase processor assignment.
  Schedule schedule;
  /// Number of memoized DP states (for the F1 scaling experiment).
  std::size_t states = 0;
  /// Memo layout/pruning diagnostics of this solve.
  dp::MemoStats memo;
  /// Non-empty when the instance exceeds the DP's packed-state key limits
  /// (|Theta| < 2^20, n <= 4095, p <= 4095 — dp::kMaxThetaSize /
  /// kMaxDpJobs / kMaxDpProcessors): no solve was attempted and `feasible`
  /// is meaningless. Solving anyway would silently alias memo keys and
  /// return wrong optima.
  std::string error;
};

/// Solves multiprocessor gap scheduling exactly. Requires a one-interval
/// instance; rejects (GapDpResult::error) instances over the packed-state
/// limits dp::kMaxDpJobs / kMaxDpProcessors / kMaxThetaSize.
GapDpResult solve_gap_dp(const Instance& inst);

/// As above with explicit execution options (memo layout, pruning,
/// parallel candidate-scan pool). Every option combination returns
/// bit-identical answers; only speed and diagnostics differ.
GapDpResult solve_gap_dp(const Instance& inst, const dp::DpOptions& opts);

}  // namespace gapsched

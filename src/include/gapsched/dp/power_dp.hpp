#pragma once
// Theorem 2: polynomial-time exact multiprocessor power minimization, where
// a processor may stay in the active state through a gap (a gap of length g
// costs min(g, alpha) per bridging processor).
//
// Same dynamic program as Theorem 1 with the Lemma 2 staircase applying to
// *active* processors: the interface counts l1, l2 are active-processor
// counts (>= the job counts, which the q mechanism bounds at window edges),
// the value adds 1 per active processor-time unit and alpha per wake-up, and
// the empty-window base case uses the closed-form optimal bridging
// min_x [ x * idle + (l2 - x) * alpha ]. Shares the execution layer
// (dp_engine.hpp) with Theorem 1: arena/hash memo selection, dominance
// pruning, optional parallel top-level scan.

#include <string>

#include "gapsched/core/schedule.hpp"
#include "gapsched/dp/dp_stats.hpp"

namespace gapsched {

struct PowerDpResult {
  bool feasible = false;
  /// Minimum total power: active time units + alpha * wake-ups.
  double power = 0.0;
  /// An optimal schedule (staircase form). The active-state bridging that
  /// realizes `power` is schedule.profile().optimal_power(alpha).
  Schedule schedule;
  /// Number of memoized DP states.
  std::size_t states = 0;
  /// Memo layout/pruning diagnostics of this solve.
  dp::MemoStats memo;
  /// Non-empty when the instance exceeds the DP's packed-state key limits
  /// (|Theta| < 2^20, n <= 4095, p <= 4095 — dp::kMaxThetaSize /
  /// kMaxDpJobs / kMaxDpProcessors): no solve was attempted and `feasible`
  /// is meaningless.
  std::string error;
};

/// Solves multiprocessor power minimization exactly. Requires a
/// one-interval instance and alpha >= 0; rejects (PowerDpResult::error)
/// instances over the packed-state limits dp::kMaxDpJobs /
/// kMaxDpProcessors / kMaxThetaSize.
PowerDpResult solve_power_dp(const Instance& inst, double alpha);

/// As above with explicit execution options (memo layout, pruning,
/// parallel candidate-scan pool). Every option combination returns
/// bit-identical answers; only speed and diagnostics differ.
PowerDpResult solve_power_dp(const Instance& inst, double alpha,
                             const dp::DpOptions& opts);

}  // namespace gapsched

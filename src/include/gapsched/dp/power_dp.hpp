#pragma once
// Theorem 2: polynomial-time exact multiprocessor power minimization, where
// a processor may stay in the active state through a gap (a gap of length g
// costs min(g, alpha) per bridging processor).
//
// Same dynamic program as Theorem 1 with the Lemma 2 staircase applying to
// *active* processors: the interface counts l1, l2 are active-processor
// counts (>= the job counts, which the q mechanism bounds at window edges),
// the value adds 1 per active processor-time unit and alpha per wake-up, and
// the empty-window base case uses the closed-form optimal bridging
// min_x [ x * idle + (l2 - x) * alpha ].

#include <string>

#include "gapsched/core/schedule.hpp"

namespace gapsched {

struct PowerDpResult {
  bool feasible = false;
  /// Minimum total power: active time units + alpha * wake-ups.
  double power = 0.0;
  /// An optimal schedule (staircase form). The active-state bridging that
  /// realizes `power` is schedule.profile().optimal_power(alpha).
  Schedule schedule;
  /// Number of memoized DP states.
  std::size_t states = 0;
  /// Non-empty when the instance exceeds the DP's packed-state key limits
  /// (|Theta| < 2^16, n <= 255, p <= 255): no solve was attempted and
  /// `feasible` is meaningless.
  std::string error;
};

/// Solves multiprocessor power minimization exactly. Requires a one-interval
/// instance and alpha >= 0; rejects (PowerDpResult::error) instances over
/// the packed-state limits n <= 255, p <= 255, |Theta| < 2^16.
PowerDpResult solve_power_dp(const Instance& inst, double alpha);

}  // namespace gapsched

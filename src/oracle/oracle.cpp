#include "gapsched/oracle/oracle.hpp"

#include <algorithm>
#include <cmath>

namespace gapsched::oracle {

namespace {

using engine::Objective;

/// Window membership by direct interval scan (deliberately not
/// TimeSet::contains, so a search bug there cannot hide a matching bug
/// here).
bool allowed_at(const Job& job, Time t) {
  for (const Interval& iv : job.allowed.intervals()) {
    if (iv.lo <= t && t <= iv.hi) return true;
  }
  return false;
}

std::string fmt_time(Time t) { return std::to_string(t); }

}  // namespace

std::string ScheduleAudit::violation_summary() const {
  std::string out;
  for (const std::string& v : violations) {
    if (!out.empty()) out += "; ";
    out += v;
  }
  return out;
}

ScheduleAudit audit_schedule(const Instance& inst, const Schedule& schedule,
                             bool require_complete) {
  ScheduleAudit a;
  if (schedule.size() != inst.n()) {
    a.violations.push_back("schedule covers " +
                           std::to_string(schedule.size()) + " jobs, instance has " +
                           std::to_string(inst.n()));
    return a;
  }

  // Collect raw placements; every structural check is a direct scan.
  std::vector<Time> times;
  std::vector<std::pair<Time, int>> proc_slots;  // explicit (time, processor)
  times.reserve(inst.n());
  for (std::size_t i = 0; i < inst.n(); ++i) {
    const auto& slot = schedule.at(i);
    if (!slot.has_value()) {
      if (require_complete) {
        a.violations.push_back("job " + std::to_string(i) + " unscheduled");
      }
      continue;
    }
    ++a.scheduled;
    times.push_back(slot->time);
    if (!allowed_at(inst.jobs[i], slot->time)) {
      a.violations.push_back("job " + std::to_string(i) +
                             " runs at disallowed time " + fmt_time(slot->time));
    }
    if (slot->processor != Placement::kUnassigned) {
      if (slot->processor < 0 || slot->processor >= inst.processors) {
        a.violations.push_back("job " + std::to_string(i) +
                               " on out-of-range processor " +
                               std::to_string(slot->processor));
      } else {
        proc_slots.emplace_back(slot->time, slot->processor);
      }
    }
  }
  a.complete = a.scheduled == inst.n();
  a.busy_time = static_cast<std::int64_t>(times.size());

  // Occupancy sweep: sort + run-length count, then capacity check.
  std::sort(times.begin(), times.end());
  for (std::size_t i = 0; i < times.size();) {
    std::size_t j = i;
    while (j < times.size() && times[j] == times[i]) ++j;
    a.occupancy.emplace_back(times[i], static_cast<int>(j - i));
    i = j;
  }
  for (const auto& [t, count] : a.occupancy) {
    if (count > inst.processors) {
      a.violations.push_back(std::to_string(count) + " jobs at time " +
                             fmt_time(t) + " on " +
                             std::to_string(inst.processors) + " processor(s)");
    }
    a.max_occupancy = std::max(a.max_occupancy, count);
  }

  // Explicit processor assignments must not collide.
  std::sort(proc_slots.begin(), proc_slots.end());
  for (std::size_t i = 1; i < proc_slots.size(); ++i) {
    if (proc_slots[i] == proc_slots[i - 1]) {
      a.violations.push_back("two jobs share time " +
                             fmt_time(proc_slots[i].first) + " on processor " +
                             std::to_string(proc_slots[i].second));
    }
  }

  // Staircase transitions and system spans from the occupancy sweep.
  Time prev_t = 0;
  int prev_count = 0;
  for (const auto& [t, count] : a.occupancy) {
    const int carried = (prev_count > 0 && t == prev_t + 1) ? prev_count : 0;
    if (carried == 0) ++a.spans;
    a.transitions += std::max(0, count - carried);
    prev_t = t;
    prev_count = count;
  }

  a.valid = a.violations.empty();
  return a;
}

double min_power(const ScheduleAudit& audit, double alpha) {
  // Level decomposition: processor level q (1-based) must be awake at every
  // time with occupancy >= q. Per level, each first wake-up costs alpha and
  // each interior idle run of length g costs min(g, alpha); busy units cost
  // 1 each. Level busy sets are nested, so per-level optima sum to the
  // schedule's optimum (see core/profile.hpp for the proof sketch — the
  // oracle re-derives the number by its own sweep, not by calling it).
  double total = 0.0;
  for (int level = 1; level <= audit.max_occupancy; ++level) {
    bool awake_before = false;
    Time last_busy = 0;
    for (const auto& [t, count] : audit.occupancy) {
      if (count < level) continue;
      if (!awake_before) {
        total += alpha;  // initial wake-up of this level
      } else if (t > last_busy + 1) {
        const double gap = static_cast<double>(t - last_busy - 1);
        total += std::min(gap, alpha);  // bridge or sleep+rewake, cheapest
      }
      total += 1.0;  // the busy unit itself
      awake_before = true;
      last_busy = t;
    }
  }
  return total;
}

std::string check_result(const engine::SolveRequest& request,
                         const engine::SolveResult& result, bool exact) {
  if (!result.ok || !result.feasible) return "";

  const bool partial_ok = request.objective == Objective::kThroughput;
  const ScheduleAudit audit =
      audit_schedule(request.instance, result.schedule, !partial_ok);
  if (!audit.valid) return "invalid schedule: " + audit.violation_summary();
  if (result.stats.scheduled != audit.scheduled) {
    return "stats.scheduled = " + std::to_string(result.stats.scheduled) +
           " but " + std::to_string(audit.scheduled) + " jobs are placed";
  }

  switch (request.objective) {
    case Objective::kGaps: {
      if (result.transitions != audit.transitions) {
        return "claimed " + std::to_string(result.transitions) +
               " transitions, schedule has " +
               std::to_string(audit.transitions);
      }
      if (result.cost != static_cast<double>(audit.transitions)) {
        return "gap cost " + std::to_string(result.cost) +
               " disagrees with re-derived transitions " +
               std::to_string(audit.transitions);
      }
      break;
    }
    case Objective::kPower: {
      const double floor = min_power(audit, request.params.alpha);
      const double tol =
          1e-9 * std::max({1.0, std::fabs(result.cost), std::fabs(floor)});
      if (result.cost < floor - tol) {
        return "claimed power " + std::to_string(result.cost) +
               " is below the schedule's minimum " + std::to_string(floor);
      }
      if (exact && std::fabs(result.cost - floor) > tol) {
        return "exact solver's power " + std::to_string(result.cost) +
               " differs from the schedule's optimal bridging " +
               std::to_string(floor);
      }
      break;
    }
    case Objective::kThroughput: {
      if (result.cost != static_cast<double>(audit.scheduled)) {
        return "throughput cost " + std::to_string(result.cost) +
               " disagrees with " + std::to_string(audit.scheduled) +
               " placed jobs";
      }
      if (audit.spans >
          static_cast<std::int64_t>(request.params.max_spans)) {
        return "schedule uses " + std::to_string(audit.spans) +
               " spans, budget is " + std::to_string(request.params.max_spans);
      }
      break;
    }
  }
  return "";
}

}  // namespace gapsched::oracle

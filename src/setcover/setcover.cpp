#include "gapsched/setcover/setcover.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace gapsched {

std::size_t SetCoverInstance::max_set_size() const {
  std::size_t b = 0;
  for (const auto& s : sets) b = std::max(b, s.size());
  return b;
}

SetCoverResult greedy_set_cover(const SetCoverInstance& inst) {
  std::vector<char> covered(inst.universe, 0);
  std::size_t uncovered = inst.universe;
  SetCoverResult out;
  while (uncovered > 0) {
    std::size_t best_set = inst.sets.size();
    std::size_t best_gain = 0;
    for (std::size_t s = 0; s < inst.sets.size(); ++s) {
      std::size_t gain = 0;
      for (std::size_t e : inst.sets[s]) {
        if (!covered[e]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_set = s;
      }
    }
    if (best_set == inst.sets.size()) return {};  // uncoverable
    out.chosen.push_back(best_set);
    for (std::size_t e : inst.sets[best_set]) {
      if (!covered[e]) {
        covered[e] = 1;
        --uncovered;
      }
    }
  }
  out.coverable = true;
  std::sort(out.chosen.begin(), out.chosen.end());
  return out;
}

SetCoverResult exact_set_cover(const SetCoverInstance& inst) {
  assert(inst.universe <= 20 && "exact set cover is exponential in universe");
  const std::size_t u = inst.universe;
  const std::uint32_t full = (u == 0) ? 0 : ((std::uint32_t{1} << u) - 1);
  if (full == 0) return SetCoverResult{true, {}};

  std::vector<std::uint32_t> set_mask(inst.sets.size(), 0);
  for (std::size_t s = 0; s < inst.sets.size(); ++s) {
    for (std::size_t e : inst.sets[s]) set_mask[s] |= std::uint32_t{1} << e;
  }

  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max() / 2;
  std::vector<std::size_t> dp(full + 1, kInf);
  std::vector<std::pair<std::uint32_t, std::size_t>> parent(full + 1,
                                                            {0, kInf});
  dp[0] = 0;
  for (std::uint32_t mask = 0; mask <= full; ++mask) {
    if (dp[mask] == kInf || mask == full) continue;
    // Branch on the lowest uncovered element: some chosen set must cover it.
    std::uint32_t uncovered = full & ~mask;
    const int e = std::countr_zero(uncovered);
    for (std::size_t s = 0; s < inst.sets.size(); ++s) {
      if ((set_mask[s] >> e & 1u) == 0) continue;
      const std::uint32_t nm = mask | set_mask[s];
      if (dp[mask] + 1 < dp[nm]) {
        dp[nm] = dp[mask] + 1;
        parent[nm] = {mask, s};
      }
    }
  }
  if (dp[full] == kInf) return {};

  SetCoverResult out;
  out.coverable = true;
  std::uint32_t cur = full;
  while (cur != 0) {
    out.chosen.push_back(parent[cur].second);
    cur = parent[cur].first;
  }
  std::sort(out.chosen.begin(), out.chosen.end());
  return out;
}

bool is_valid_cover(const SetCoverInstance& inst,
                    const std::vector<std::size_t>& chosen) {
  std::vector<char> covered(inst.universe, 0);
  for (std::size_t s : chosen) {
    if (s >= inst.sets.size()) return false;
    for (std::size_t e : inst.sets[s]) covered[e] = 1;
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](char c) { return c != 0; });
}

SetCoverInstance gen_random_set_cover(Prng& rng, std::size_t universe,
                                      std::size_t num_sets,
                                      std::size_t max_set_size) {
  assert(max_set_size >= 1 && num_sets >= 1);
  assert(num_sets * max_set_size >= universe &&
         "not enough set capacity to cover the universe");
  SetCoverInstance inst;
  inst.universe = universe;
  inst.sets.assign(num_sets, {});
  // Base coverage: scatter every element into a random set with room.
  for (std::size_t e = 0; e < universe; ++e) {
    std::size_t s = rng.index(num_sets);
    while (inst.sets[s].size() >= max_set_size) s = (s + 1) % num_sets;
    inst.sets[s].push_back(e);
  }
  // Random redundancy: top sets up with extra elements (this is what makes
  // the covering problem non-trivial).
  for (auto& set : inst.sets) {
    const std::size_t target = std::min(universe, 1 + rng.index(max_set_size));
    while (set.size() < target) {
      const std::size_t e = rng.index(universe);
      if (std::find(set.begin(), set.end(), e) == set.end()) set.push_back(e);
    }
    std::sort(set.begin(), set.end());
  }
  return inst;
}

}  // namespace gapsched

#include "gapsched/restart/restart_greedy.hpp"

#include <algorithm>
#include <cassert>

#include "gapsched/matching/feasibility.hpp"

namespace gapsched {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

// Kuhn matching from the time side: tries to give every time in
// `times` (indices into slot_times) a distinct job from `allowed_jobs`.
// Returns the time->job assignment, or empty if not perfectly fillable.
class FillMatcher {
 public:
  FillMatcher(const Instance& inst, const std::vector<Time>& slot_times,
              const std::vector<char>& job_used)
      : inst_(inst), slot_times_(slot_times), job_used_(job_used) {}

  /// Perfectly matches all given slot indices to distinct unused jobs.
  bool fill(const std::vector<std::size_t>& slot_idxs,
            std::vector<std::size_t>* job_of_slot) {
    match_job_.assign(inst_.n(), kNone);
    job_of_slot->assign(slot_idxs.size(), kNone);
    for (std::size_t i = 0; i < slot_idxs.size(); ++i) {
      std::vector<char> visited(inst_.n(), 0);
      if (!augment(i, slot_idxs, visited, job_of_slot)) return false;
    }
    return true;
  }

 private:
  bool augment(std::size_t i, const std::vector<std::size_t>& slot_idxs,
               std::vector<char>& visited,
               std::vector<std::size_t>* job_of_slot) {
    const Time t = slot_times_[slot_idxs[i]];
    for (std::size_t j = 0; j < inst_.n(); ++j) {
      if (job_used_[j] || visited[j] || !inst_.jobs[j].allowed.contains(t)) {
        continue;
      }
      visited[j] = 1;
      const std::size_t holder = match_job_[j];
      if (holder == kNone ||
          augment(holder, slot_idxs, visited, job_of_slot)) {
        match_job_[j] = i;
        (*job_of_slot)[i] = j;
        return true;
      }
    }
    return false;
  }

  const Instance& inst_;
  const std::vector<Time>& slot_times_;
  const std::vector<char>& job_used_;
  std::vector<std::size_t> match_job_;  // job -> position index in slot_idxs
};

// Maximal runs of consecutive usable slot indices.
std::vector<std::pair<std::size_t, std::size_t>> usable_runs(
    const std::vector<Time>& slot_times, const std::vector<char>& usable) {
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  for (std::size_t s = 0; s < slot_times.size(); ++s) {
    if (!usable[s]) continue;
    if (!runs.empty() && runs.back().second + 1 == s &&
        slot_times[s - 1] + 1 == slot_times[s]) {
      runs.back().second = s;
    } else {
      runs.push_back({s, s});
    }
  }
  return runs;
}

}  // namespace

RestartResult restart_greedy(const Instance& inst, std::size_t max_spans) {
  Instance single = inst;
  single.processors = 1;
  RestartResult out;
  out.schedule = Schedule(single.n());
  if (single.n() == 0) return out;

  const SlotSpace slots = make_slot_space(single);
  const std::vector<Time>& vt = slots.slot_times;
  std::vector<char> job_used(single.n(), 0);
  std::vector<char> slot_blocked(vt.size(), 0);

  for (std::size_t round = 0; round < max_spans; ++round) {
    // Usable slots: unblocked with at least one unused job available.
    std::vector<char> usable(vt.size(), 0);
    std::size_t remaining_jobs = 0;
    for (std::size_t j = 0; j < single.n(); ++j) {
      if (!job_used[j]) ++remaining_jobs;
    }
    for (std::size_t s = 0; s < vt.size(); ++s) {
      if (slot_blocked[s]) continue;
      for (std::size_t j = 0; j < single.n(); ++j) {
        if (!job_used[j] && single.jobs[j].allowed.contains(vt[s])) {
          usable[s] = 1;
          break;
        }
      }
    }
    const auto runs = usable_runs(vt, usable);
    if (runs.empty() || remaining_jobs == 0) break;

    std::size_t longest_run = 0;
    for (const auto& [lo, hi] : runs) {
      longest_run = std::max(longest_run, hi - lo + 1);
    }

    FillMatcher matcher(single, vt, job_used);
    // Fillability of length L anywhere is monotone in L: binary search.
    auto find_at_length =
        [&](std::size_t len) -> std::pair<std::size_t, std::vector<std::size_t>> {
      for (const auto& [lo, hi] : runs) {
        if (hi - lo + 1 < len) continue;
        for (std::size_t a = lo; a + len - 1 <= hi; ++a) {
          std::vector<std::size_t> idxs(len);
          for (std::size_t i = 0; i < len; ++i) idxs[i] = a + i;
          std::vector<std::size_t> job_of_slot;
          if (matcher.fill(idxs, &job_of_slot)) return {a, job_of_slot};
        }
      }
      return {kNone, {}};
    };

    std::size_t lo_len = 1;
    std::size_t hi_len = std::min(longest_run, remaining_jobs);
    if (find_at_length(1).first == kNone) break;
    while (lo_len < hi_len) {
      const std::size_t mid = hi_len - (hi_len - lo_len) / 2;
      if (find_at_length(mid).first != kNone) {
        lo_len = mid;
      } else {
        hi_len = mid - 1;
      }
    }
    const auto [start, job_of_slot] = find_at_length(lo_len);
    assert(start != kNone);

    for (std::size_t i = 0; i < lo_len; ++i) {
      const std::size_t s = start + i;
      const std::size_t j = job_of_slot[i];
      out.schedule.place(j, vt[s], 0);
      job_used[j] = 1;
      slot_blocked[s] = 1;
      ++out.scheduled;
    }
    out.working_intervals.push_back({vt[start], vt[start + lo_len - 1]});
  }
  return out;
}

std::size_t restart_exact_max_jobs(const Instance& inst,
                                   std::size_t max_spans) {
  Instance single = inst;
  single.processors = 1;
  if (single.n() == 0) return 0;
  const SlotSpace slots = make_slot_space(single);
  const std::vector<Time>& vt = slots.slot_times;
  const std::vector<char> no_jobs_used(single.n(), 0);

  // All candidate intervals as (first slot, last slot) over consecutive
  // slot-time runs.
  std::vector<std::pair<std::size_t, std::size_t>> candidates;
  for (std::size_t a = 0; a < vt.size(); ++a) {
    for (std::size_t b = a; b < vt.size(); ++b) {
      if (b > a && vt[b] != vt[b - 1] + 1) break;
      if (b - a + 1 > single.n()) break;
      candidates.push_back({a, b});
    }
  }

  std::size_t best = 0;
  FillMatcher matcher(single, vt, no_jobs_used);
  std::vector<std::size_t> picked_times;

  // DFS over at most max_spans disjoint intervals (in slot order), testing
  // perfect fillability of the union at every node.
  auto dfs = [&](auto&& self, std::size_t min_start,
                 std::size_t spans_left) -> void {
    best = std::max(best, picked_times.size());
    if (spans_left == 0) return;
    for (const auto& [a, b] : candidates) {
      if (a < min_start) continue;
      const std::size_t added = b - a + 1;
      if (picked_times.size() + added > single.n()) continue;
      for (std::size_t s = a; s <= b; ++s) picked_times.push_back(s);
      std::vector<std::size_t> job_of_slot;
      if (matcher.fill(picked_times, &job_of_slot)) {
        self(self, b + 1, spans_left - 1);
      }
      picked_times.resize(picked_times.size() - added);
    }
  };
  dfs(dfs, 0, max_spans);
  return best;
}

}  // namespace gapsched

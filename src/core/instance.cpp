#include "gapsched/core/instance.hpp"

#include <algorithm>

namespace gapsched {

bool Instance::is_one_interval() const {
  return std::all_of(jobs.begin(), jobs.end(), [](const Job& j) {
    return j.allowed.is_single_interval();
  });
}

bool Instance::is_unit_points() const {
  return std::all_of(jobs.begin(), jobs.end(), [](const Job& j) {
    return j.allowed.is_unit_points();
  });
}

std::size_t Instance::max_intervals_per_job() const {
  std::size_t k = 0;
  for (const Job& j : jobs) k = std::max(k, j.allowed.interval_count());
  return k;
}

Time Instance::earliest_release() const {
  Time best = jobs.front().release();
  for (const Job& j : jobs) best = std::min(best, j.release());
  return best;
}

Time Instance::latest_deadline() const {
  Time best = jobs.front().deadline();
  for (const Job& j : jobs) best = std::max(best, j.deadline());
  return best;
}

std::string Instance::validate() const {
  if (processors < 1) return "instance has fewer than one processor";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].allowed.empty()) {
      return "job " + std::to_string(i) + " has an empty allowed set";
    }
  }
  return {};
}

Instance Instance::one_interval(
    const std::vector<std::pair<Time, Time>>& windows, int processors) {
  Instance inst;
  inst.processors = processors;
  inst.jobs.reserve(windows.size());
  for (const auto& [a, d] : windows) {
    inst.jobs.push_back(Job{TimeSet::window(a, d)});
  }
  return inst;
}

}  // namespace gapsched

#include "gapsched/core/stats.hpp"

#include <algorithm>

namespace gapsched {

InstanceStats compute_stats(const Instance& inst) {
  InstanceStats s;
  s.jobs = inst.n();
  s.processors = inst.processors;
  if (inst.n() == 0) return s;

  s.horizon = inst.latest_deadline() - inst.earliest_release() + 1;
  TimeSet live;
  double slack_sum = 0.0;
  std::size_t pinned = 0;
  for (const Job& j : inst.jobs) {
    live = live.unite(j.allowed);
    const std::int64_t slack = j.allowed.size() - 1;
    slack_sum += static_cast<double>(slack);
    s.max_slack = std::max(s.max_slack, slack);
    if (slack == 0) ++pinned;
    s.max_intervals = std::max(s.max_intervals, j.allowed.interval_count());
  }
  s.live_time = live.size();
  s.mean_slack = slack_sum / static_cast<double>(inst.n());
  s.pinned_fraction =
      static_cast<double>(pinned) / static_cast<double>(inst.n());
  s.contention = static_cast<double>(inst.n()) /
                 (static_cast<double>(s.live_time) *
                  static_cast<double>(inst.processors));
  return s;
}

}  // namespace gapsched

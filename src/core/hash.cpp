#include "gapsched/core/hash.hpp"

namespace gapsched {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64_word(std::uint64_t word, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t digest(const TimeSet& set, std::uint64_t seed) {
  std::uint64_t h = fnv1a64_word(set.interval_count(), seed);
  for (const Interval& iv : set.intervals()) {
    h = fnv1a64_word(static_cast<std::uint64_t>(iv.lo), h);
    h = fnv1a64_word(static_cast<std::uint64_t>(iv.hi), h);
  }
  return h;
}

std::uint64_t digest(const Instance& inst, std::uint64_t seed) {
  std::uint64_t h = fnv1a64_word(static_cast<std::uint64_t>(inst.processors),
                                 seed);
  h = fnv1a64_word(inst.n(), h);
  for (const Job& job : inst.jobs) h = digest(job.allowed, h);
  return h;
}

}  // namespace gapsched

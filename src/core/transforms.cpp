#include "gapsched/core/transforms.hpp"

#include <algorithm>
#include <cassert>

namespace gapsched {

Time CompressedInstance::to_original(Time compressed) const {
  // Find the compressed interval containing the time.
  for (std::size_t i = 0; i < compressed_intervals.size(); ++i) {
    if (compressed_intervals[i].contains(compressed)) {
      return original_intervals[i].lo +
             (compressed - compressed_intervals[i].lo);
    }
  }
  assert(false && "time is not in any allowed interval");
  return compressed;
}

Time CompressedInstance::to_compressed(Time original) const {
  for (std::size_t i = 0; i < original_intervals.size(); ++i) {
    if (original_intervals[i].contains(original)) {
      return compressed_intervals[i].lo +
             (original - original_intervals[i].lo);
    }
  }
  assert(false && "time is not in any allowed interval");
  return original;
}

CompressedInstance compress_dead_time(const Instance& inst) {
  CompressedInstance out;
  out.instance.processors = inst.processors;
  if (inst.n() == 0) return out;

  // Union of all allowed times: its maximal intervals are the live regions.
  TimeSet live;
  for (const Job& j : inst.jobs) live = live.unite(j.allowed);

  // Lay live intervals out left to right, one dead unit between them.
  Time cursor = 0;
  for (const Interval& iv : live.intervals()) {
    out.original_intervals.push_back(iv);
    out.compressed_intervals.push_back({cursor, cursor + iv.length() - 1});
    out.anchors.push_back({cursor, iv.lo});
    cursor += iv.length() + 1;  // +1 = the single compressed dead unit
  }

  out.instance.jobs.reserve(inst.n());
  for (const Job& j : inst.jobs) {
    std::vector<Interval> mapped;
    mapped.reserve(j.allowed.interval_count());
    for (const Interval& iv : j.allowed.intervals()) {
      const Time lo = out.to_compressed(iv.lo);
      mapped.push_back({lo, lo + iv.length() - 1});
    }
    out.instance.jobs.push_back(Job{TimeSet(std::move(mapped))});
  }
  return out;
}

}  // namespace gapsched

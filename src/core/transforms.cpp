#include "gapsched/core/transforms.hpp"

#include <algorithm>
#include <cassert>

namespace gapsched {

namespace {

/// Union of all allowed times: its maximal intervals are the live regions.
TimeSet live_regions(const Instance& inst) {
  TimeSet live;
  for (const Job& j : inst.jobs) live = live.unite(j.allowed);
  return live;
}

/// Rewrites every job's intervals through `map` (a per-live-interval time
/// map that preserves interval lengths, so only each interval's lo needs
/// mapping).
template <typename MapLo>
std::vector<Job> map_jobs(const Instance& inst, MapLo&& map_lo) {
  std::vector<Job> out;
  out.reserve(inst.n());
  for (const Job& j : inst.jobs) {
    std::vector<Interval> mapped;
    mapped.reserve(j.allowed.interval_count());
    for (const Interval& iv : j.allowed.intervals()) {
      const Time lo = map_lo(iv.lo);
      mapped.push_back({lo, lo + iv.length() - 1});
    }
    out.push_back(Job{TimeSet(std::move(mapped))});
  }
  return out;
}

}  // namespace

Time CompressedInstance::to_original(Time compressed) const {
  // Find the compressed interval containing the time.
  for (std::size_t i = 0; i < compressed_intervals.size(); ++i) {
    if (compressed_intervals[i].contains(compressed)) {
      return original_intervals[i].lo +
             (compressed - compressed_intervals[i].lo);
    }
  }
  assert(false && "time is not in any allowed interval");
  return compressed;
}

Time CompressedInstance::to_compressed(Time original) const {
  for (std::size_t i = 0; i < original_intervals.size(); ++i) {
    if (original_intervals[i].contains(original)) {
      return compressed_intervals[i].lo +
             (original - original_intervals[i].lo);
    }
  }
  assert(false && "time is not in any allowed interval");
  return original;
}

Time CompressedInstance::dead_time_removed() const {
  if (original_intervals.empty()) return 0;
  const Time original_span =
      original_intervals.back().hi - original_intervals.front().lo;
  const Time compressed_span =
      compressed_intervals.back().hi - compressed_intervals.front().lo;
  return original_span - compressed_span;
}

CompressedInstance compress_dead_time(const Instance& inst) {
  return compress_dead_time_capped(inst, 1);
}

CompressedInstance compress_dead_time_capped(const Instance& inst, Time cap) {
  assert(cap >= 1 && "dead runs cannot shrink below one unit");
  CompressedInstance out;
  out.instance.processors = inst.processors;
  if (inst.n() == 0) return out;

  const TimeSet live = live_regions(inst);

  // Lay live intervals out left to right, truncating each interior dead run
  // of length d to min(d, cap) units.
  Time cursor = 0;
  Time prev_hi = 0;
  bool first = true;
  for (const Interval& iv : live.intervals()) {
    if (!first) {
      cursor += std::min<Time>(iv.lo - prev_hi - 1, cap);
    }
    out.original_intervals.push_back(iv);
    out.compressed_intervals.push_back({cursor, cursor + iv.length() - 1});
    out.anchors.push_back({cursor, iv.lo});
    cursor += iv.length();
    prev_hi = iv.hi;
    first = false;
  }

  out.instance.jobs =
      map_jobs(inst, [&](Time lo) { return out.to_compressed(lo); });
  return out;
}

Instance stretch_dead_time(const Instance& inst, Time k, Time min_run) {
  assert(k >= 1 && "dilation factor must be at least 1");
  Instance out;
  out.processors = inst.processors;
  if (inst.n() == 0) return out;

  const TimeSet live = live_regions(inst);

  // New lo of each live interval: the origin is preserved, and each
  // interior dead run of length d >= min_run grows to k * d.
  std::vector<Time> new_lo;
  new_lo.reserve(live.intervals().size());
  Time cursor = live.min();
  Time prev_hi = 0;
  bool first = true;
  for (const Interval& iv : live.intervals()) {
    if (!first) {
      const Time dead = iv.lo - prev_hi - 1;
      cursor += dead >= min_run ? dead * k : dead;
    }
    new_lo.push_back(cursor);
    cursor += iv.length();
    prev_hi = iv.hi;
    first = false;
  }

  const auto map_lo = [&](Time lo) {
    for (std::size_t i = 0; i < live.intervals().size(); ++i) {
      if (live.intervals()[i].contains(lo)) {
        return new_lo[i] + (lo - live.intervals()[i].lo);
      }
    }
    assert(false && "time is not in any allowed interval");
    return lo;
  };
  out.jobs = map_jobs(inst, map_lo);
  return out;
}

}  // namespace gapsched

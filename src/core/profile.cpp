#include "gapsched/core/profile.hpp"

#include <algorithm>
#include <cassert>

namespace gapsched {

OccupancyProfile OccupancyProfile::from_times(std::vector<Time> times) {
  std::sort(times.begin(), times.end());
  OccupancyProfile p;
  for (Time t : times) {
    if (!p.entries_.empty() && p.entries_.back().first == t) {
      ++p.entries_.back().second;
    } else {
      p.entries_.push_back({t, 1});
    }
  }
  return p;
}

std::int64_t OccupancyProfile::busy_time() const {
  std::int64_t total = 0;
  for (const auto& [t, c] : entries_) total += c;
  return total;
}

int OccupancyProfile::max_occupancy() const {
  int best = 0;
  for (const auto& [t, c] : entries_) best = std::max(best, c);
  return best;
}

std::int64_t OccupancyProfile::transitions() const {
  std::int64_t total = 0;
  Time prev_t = 0;
  int prev_c = 0;
  bool have_prev = false;
  for (const auto& [t, c] : entries_) {
    if (have_prev && t == prev_t + 1) {
      total += std::max(0, c - prev_c);
    } else {
      total += c;  // woke from a fully idle time unit (or schedule start)
    }
    prev_t = t;
    prev_c = c;
    have_prev = true;
  }
  return total;
}

std::int64_t OccupancyProfile::interior_gaps() const {
  return transitions() - max_occupancy();
}

std::int64_t OccupancyProfile::spans() const {
  std::int64_t total = 0;
  Time prev_t = 0;
  bool have_prev = false;
  for (const auto& [t, c] : entries_) {
    (void)c;
    if (!have_prev || t != prev_t + 1) ++total;
    prev_t = t;
    have_prev = true;
  }
  return total;
}

double OccupancyProfile::optimal_power(double alpha) const {
  assert(alpha >= 0);
  double total = static_cast<double>(busy_time());
  const int levels = max_occupancy();
  for (int q = 1; q <= levels; ++q) {
    total += alpha;  // initial wake-up of processor level q
    bool have_prev = false;
    Time prev_t = 0;
    for (const auto& [t, c] : entries_) {
      if (c < q) continue;
      if (have_prev && t > prev_t + 1) {
        const double idle = static_cast<double>(t - prev_t - 1);
        total += std::min(idle, alpha);  // bridge iff cheaper than re-waking
      }
      prev_t = t;
      have_prev = true;
    }
  }
  return total;
}

double OccupancyProfile::power_without_bridging(double alpha) const {
  return static_cast<double>(busy_time()) +
         alpha * static_cast<double>(transitions());
}

}  // namespace gapsched

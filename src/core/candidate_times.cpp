#include "gapsched/core/candidate_times.hpp"

#include <algorithm>

namespace gapsched {

std::vector<Time> candidate_times(const Instance& inst,
                                  bool plus_one_closure) {
  if (inst.n() == 0) return {};
  const auto n = static_cast<Time>(inst.n());

  // Prop 2.1 anchors: every interval endpoint of every job (releases and
  // deadlines in the one-interval case). Some optimal schedule runs every
  // job within distance n of SOME anchor — note: any job's anchor, not just
  // the job's own.
  std::vector<Interval> neighbourhoods;
  std::vector<Interval> allowed_union;
  for (const Job& j : inst.jobs) {
    for (const Interval& iv : j.allowed.intervals()) {
      neighbourhoods.push_back({iv.lo - (n + 1), iv.lo + (n + 1)});
      neighbourhoods.push_back({iv.hi - (n + 1), iv.hi + (n + 1)});
      allowed_union.push_back(iv);
    }
  }
  // A candidate is useful only if some job may run there.
  TimeSet core =
      TimeSet(std::move(neighbourhoods)).intersect(TimeSet(std::move(allowed_union)));

  if (plus_one_closure) {
    const Time horizon_max = inst.latest_deadline();
    std::vector<Interval> widened = core.intervals();
    for (Interval& iv : widened) iv.hi = std::min(iv.hi + 1, horizon_max);
    core = TimeSet(std::move(widened));
  }
  return core.to_vector();
}

}  // namespace gapsched

#include "gapsched/core/schedule.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace gapsched {

std::size_t Schedule::scheduled_count() const {
  std::size_t c = 0;
  for (const auto& s : slots_) {
    if (s.has_value()) ++c;
  }
  return c;
}

void Schedule::place(std::size_t job, Time t, int processor) {
  slots_[job] = Placement{t, processor};
}

void Schedule::unschedule(std::size_t job) { slots_[job].reset(); }

std::vector<Time> Schedule::times() const {
  std::vector<Time> out;
  out.reserve(slots_.size());
  for (const auto& s : slots_) {
    if (s) out.push_back(s->time);
  }
  std::sort(out.begin(), out.end());
  return out;
}

OccupancyProfile Schedule::profile() const {
  return OccupancyProfile::from_times(times());
}

std::string Schedule::validate(const Instance& inst,
                               bool require_complete) const {
  if (slots_.size() != inst.n()) return "schedule size differs from instance";
  std::map<Time, int> occupancy;
  std::set<std::pair<Time, int>> proc_slots;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i]) {
      if (require_complete) return "job " + std::to_string(i) + " unscheduled";
      continue;
    }
    const Placement& pl = *slots_[i];
    if (!inst.jobs[i].allowed.contains(pl.time)) {
      return "job " + std::to_string(i) + " scheduled at disallowed time " +
             std::to_string(pl.time);
    }
    if (pl.processor != Placement::kUnassigned) {
      if (pl.processor < 0 || pl.processor >= inst.processors) {
        return "job " + std::to_string(i) + " on out-of-range processor";
      }
      if (!proc_slots.insert({pl.time, pl.processor}).second) {
        return "two jobs share time " + std::to_string(pl.time) +
               " on processor " + std::to_string(pl.processor);
      }
    }
    if (++occupancy[pl.time] > inst.processors) {
      return "more than p jobs at time " + std::to_string(pl.time);
    }
  }
  return {};
}

void Schedule::assign_processors_staircase() {
  std::map<Time, int> next_proc;
  for (auto& s : slots_) {
    if (s) s->processor = next_proc[s->time]++;
  }
}

std::int64_t Schedule::per_processor_transitions(const Instance& inst) const {
  // Busy time lists per processor, then count run starts on each.
  std::vector<std::vector<Time>> busy(
      static_cast<std::size_t>(inst.processors));
  for (const auto& s : slots_) {
    if (s && s->processor != Placement::kUnassigned) {
      busy[static_cast<std::size_t>(s->processor)].push_back(s->time);
    }
  }
  std::int64_t total = 0;
  for (auto& b : busy) {
    std::sort(b.begin(), b.end());
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (i == 0 || b[i] != b[i - 1] + 1) ++total;
    }
  }
  return total;
}

}  // namespace gapsched

#include "gapsched/core/timeset.hpp"

#include <algorithm>
#include <cassert>

namespace gapsched {

TimeSet::TimeSet(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  normalize();
}

TimeSet::TimeSet(std::initializer_list<Interval> intervals)
    : intervals_(intervals) {
  normalize();
}

TimeSet TimeSet::window(Time a, Time d) {
  assert(a <= d && "window requires release <= deadline");
  return TimeSet({Interval{a, d}});
}

TimeSet TimeSet::points(const std::vector<Time>& times) {
  std::vector<Interval> ivs;
  ivs.reserve(times.size());
  for (Time t : times) ivs.push_back({t, t});
  return TimeSet(std::move(ivs));
}

void TimeSet::normalize() {
  std::erase_if(intervals_, [](const Interval& iv) { return iv.empty(); });
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  for (const Interval& iv : intervals_) {
    if (!merged.empty() && iv.lo <= merged.back().hi + 1) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  intervals_ = std::move(merged);
}

std::int64_t TimeSet::size() const {
  std::int64_t total = 0;
  for (const Interval& iv : intervals_) total += iv.length();
  return total;
}

bool TimeSet::is_unit_points() const {
  if (intervals_.empty()) return false;
  return std::all_of(intervals_.begin(), intervals_.end(),
                     [](const Interval& iv) { return iv.lo == iv.hi; });
}

bool TimeSet::contains(Time t) const {
  // First interval with hi >= t; contains t iff its lo <= t.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), t,
      [](const Interval& iv, Time v) { return iv.hi < v; });
  return it != intervals_.end() && it->lo <= t;
}

TimeSet TimeSet::intersect(const TimeSet& other) const {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    Interval cut{std::max(a.lo, b.lo), std::min(a.hi, b.hi)};
    if (!cut.empty()) out.push_back(cut);
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return TimeSet(std::move(out));
}

TimeSet TimeSet::restricted_to(Interval window) const {
  if (window.empty()) return TimeSet{};
  return intersect(TimeSet({window}));
}

TimeSet TimeSet::subtract(const TimeSet& other) const {
  std::vector<Interval> out;
  std::size_t j = 0;
  for (Interval cur : intervals_) {
    // Walk the subtrahend intervals overlapping `cur`, carving pieces off.
    while (j < other.intervals_.size() && other.intervals_[j].hi < cur.lo) {
      ++j;
    }
    std::size_t jj = j;
    while (!cur.empty() && jj < other.intervals_.size() &&
           other.intervals_[jj].lo <= cur.hi) {
      const Interval& cut = other.intervals_[jj];
      if (cut.lo > cur.lo) out.push_back({cur.lo, cut.lo - 1});
      cur.lo = std::max(cur.lo, cut.hi + 1);
      ++jj;
    }
    if (!cur.empty()) out.push_back(cur);
  }
  return TimeSet(std::move(out));
}

TimeSet TimeSet::unite(const TimeSet& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return TimeSet(std::move(all));
}

TimeSet TimeSet::shifted(Time delta) const {
  std::vector<Interval> out = intervals_;
  for (Interval& iv : out) {
    iv.lo += delta;
    iv.hi += delta;
  }
  return TimeSet(std::move(out));
}

std::vector<Time> TimeSet::to_vector() const {
  std::vector<Time> out;
  out.reserve(static_cast<std::size_t>(size()));
  for (const Interval& iv : intervals_) {
    for (Time t = iv.lo; t <= iv.hi; ++t) out.push_back(t);
  }
  return out;
}

}  // namespace gapsched

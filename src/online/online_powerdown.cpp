#include "gapsched/online/online_powerdown.hpp"

#include <algorithm>

#include "gapsched/online/online_edf.hpp"

namespace gapsched {

OnlinePowerdownResult online_powerdown(const Instance& inst, double alpha,
                                       double threshold) {
  if (threshold < 0.0) threshold = alpha;
  OnlinePowerdownResult out;

  const OnlineResult edf = online_edf(inst);
  out.feasible = edf.feasible;
  out.schedule = edf.schedule;
  if (!edf.feasible) return out;

  // Busy times of the EDF schedule, in order. Between consecutive busy
  // times with an idle stretch g: stay active min(g, threshold) units, then
  // sleep; re-waking costs alpha iff we actually slept.
  const std::vector<Time> busy = out.schedule.times();
  double power = 0.0;
  std::int64_t wakes = 0;
  for (std::size_t i = 0; i < busy.size(); ++i) {
    power += 1.0;  // execution unit
    if (i == 0) {
      ++wakes;
      power += alpha;  // initial wake from sleep
      continue;
    }
    const double idle = static_cast<double>(busy[i] - busy[i - 1] - 1);
    if (idle <= 0.0) continue;
    if (idle <= threshold) {
      power += idle;  // bridged the whole gap in the active state
    } else {
      power += threshold + alpha;  // lingered, slept, re-woke
      ++wakes;
    }
  }
  out.power = power;
  out.transitions = wakes;
  return out;
}

}  // namespace gapsched

#include "gapsched/online/online_edf.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace gapsched {

OnlineResult online_edf(const Instance& inst) {
  assert(inst.is_one_interval() && "online EDF runs on one-interval jobs");
  OnlineResult out;
  out.schedule = Schedule(inst.n());
  if (inst.n() == 0) {
    out.feasible = true;
    return out;
  }

  // Releases in time order.
  std::vector<std::size_t> by_release(inst.n());
  for (std::size_t i = 0; i < inst.n(); ++i) by_release[i] = i;
  std::sort(by_release.begin(), by_release.end(),
            [&](std::size_t a, std::size_t b) {
              return inst.jobs[a].release() < inst.jobs[b].release();
            });

  // Pending jobs keyed by (deadline, id).
  using Entry = std::pair<Time, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pending;

  std::size_t next_release = 0;
  Time t = inst.jobs[by_release[0]].release();
  while (next_release < inst.n() || !pending.empty()) {
    if (pending.empty() && next_release < inst.n()) {
      // Idle until the next arrival (the work-conserving scheduler sleeps).
      t = std::max(t, inst.jobs[by_release[next_release]].release());
    }
    while (next_release < inst.n() &&
           inst.jobs[by_release[next_release]].release() <= t) {
      const std::size_t j = by_release[next_release++];
      pending.push({inst.jobs[j].deadline(), j});
    }
    if (pending.empty()) continue;
    const auto [d, j] = pending.top();
    pending.pop();
    if (d < t) return out;  // deadline miss: infeasible under any schedule
    out.schedule.place(j, t, 0);
    ++t;
  }
  out.feasible = true;
  out.transitions = out.schedule.profile().transitions();
  return out;
}

}  // namespace gapsched

#include "gapsched/prep/prep.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace gapsched::prep {

Canonical canonicalize(const Instance& inst) {
  Canonical out;
  out.instance.processors = inst.processors;
  out.order.resize(inst.n());
  std::iota(out.order.begin(), out.order.end(), std::size_t{0});
  if (inst.n() == 0) return out;

  std::sort(out.order.begin(), out.order.end(),
            [&](std::size_t a, std::size_t b) {
              const Time ra = inst.jobs[a].allowed.min();
              const Time rb = inst.jobs[b].allowed.min();
              if (ra != rb) return ra < rb;
              const Time da = inst.jobs[a].allowed.max();
              const Time db = inst.jobs[b].allowed.max();
              if (da != db) return da < db;
              return a < b;
            });
  out.shift = inst.earliest_release();
  out.instance.jobs.reserve(inst.n());
  for (std::size_t i : out.order) {
    out.instance.jobs.push_back(Job{inst.jobs[i].allowed.shifted(-out.shift)});
  }
  return out;
}

Decomposition decompose(const Instance& inst, Time threshold) {
  Decomposition dec;
  if (inst.n() == 0) return dec;
  threshold = std::max<Time>(threshold, 0);

  // Canonical order gives the release-sorted sweep; clusters grow while the
  // next job's span starts within `threshold` dead units of the running
  // cluster's right edge.
  const Canonical canon = canonicalize(inst);
  std::vector<std::pair<std::size_t, std::size_t>> groups;  // [first, last)
  std::size_t first = 0;
  Time cluster_hi = canon.instance.jobs[0].allowed.max();
  for (std::size_t i = 1; i < canon.instance.jobs.size(); ++i) {
    const Job& job = canon.instance.jobs[i];
    const Time dead = job.allowed.min() - cluster_hi - 1;
    if (dead > threshold) {
      groups.emplace_back(first, i);
      dec.separations.push_back(dead);
      first = i;
      cluster_hi = job.allowed.max();
    } else {
      cluster_hi = std::max(cluster_hi, job.allowed.max());
    }
  }
  groups.emplace_back(first, canon.instance.jobs.size());

  dec.components.reserve(groups.size());
  for (const auto& [lo, hi] : groups) {
    Component comp;
    comp.instance.processors = inst.processors;
    comp.instance.jobs.reserve(hi - lo);
    comp.jobs.reserve(hi - lo);
    // Each component is itself re-anchored at time 0; the canonical shift
    // composes with the cluster's local offset.
    Time local_min = canon.instance.jobs[lo].allowed.min();
    for (std::size_t i = lo; i < hi; ++i) {
      local_min = std::min(local_min, canon.instance.jobs[i].allowed.min());
    }
    comp.shift = canon.shift + local_min;
    for (std::size_t i = lo; i < hi; ++i) {
      comp.instance.jobs.push_back(
          Job{canon.instance.jobs[i].allowed.shifted(-local_min)});
      comp.jobs.push_back(canon.order[i]);
    }
    dec.components.push_back(std::move(comp));
  }
  return dec;
}

Schedule recombine(const Decomposition& dec,
                   const std::vector<Schedule>& parts, std::size_t n) {
  assert(parts.size() == dec.components.size());
  Schedule out(n);
  for (std::size_t c = 0; c < dec.components.size(); ++c) {
    const Component& comp = dec.components[c];
    assert(parts[c].size() == comp.jobs.size());
    for (std::size_t j = 0; j < comp.jobs.size(); ++j) {
      const auto& slot = parts[c].at(j);
      if (!slot.has_value()) continue;
      out.place(comp.jobs[j], slot->time + comp.shift, slot->processor);
    }
  }
  return out;
}

}  // namespace gapsched::prep
